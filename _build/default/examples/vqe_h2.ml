(* End-to-end Variational Quantum Eigensolver on the H2 molecule.

   The real 2-qubit H2 Hamiltonian (published coefficients), a
   Hartree-Fock-prepared UCCSD-structured ansatz, and Nelder-Mead — with
   per-iteration compilation-latency accounting that shows why partial
   compilation matters: full GRAPE's latency is paid at every one of the
   variational iterations, partial compilation's is not (paper Section 8.4).

   Run with: dune exec examples/vqe_h2.exe *)

module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Table = Pqc_util.Table
open Pqc_vqe
open Pqc_core

let () =
  (* Hartree-Fock reference state |10> then the UCCSD ansatz. *)
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Uccsd.ansatz Molecule.h2) in
  Printf.printf "H2 UCCSD ansatz: %d qubits, %d parameters, %d gates\n"
    (Circuit.n_qubits ansatz)
    (List.length (Circuit.depends ansatz))
    (Circuit.length ansatz);

  (* The hybrid loop: quantum expectation values on the state-vector
     simulator, classical Nelder-Mead updates. *)
  let result = Vqe.run ~hamiltonian:Chemistry.h2 ~ansatz () in
  Printf.printf "VQE energy:   %.6f Ha\n" result.energy;
  Printf.printf "Exact energy: %.6f Ha\n" Chemistry.h2_exact_energy;
  Printf.printf "Error:        %.2e Ha in %d variational iterations\n\n"
    (Float.abs (result.energy -. Chemistry.h2_exact_energy))
    result.evaluations;

  (* What would each compilation strategy have cost over this run? *)
  let prepared = Compiler.prepare ansatz in
  let engine = Engine.model in
  let iterations = result.evaluations in
  let table =
    Table.create [ "strategy"; "pulse (ns)"; "total compile latency" ]
  in
  List.iter
    (fun strategy ->
      let r = Compiler.compile ~engine strategy prepared ~theta:result.theta in
      let total =
        r.Strategy.precompute.Engine.seconds
        +. (float_of_int iterations *. r.Strategy.per_iteration.Engine.seconds)
      in
      Table.add_row table
        [ r.Strategy.strategy;
          Table.cell_f r.Strategy.duration_ns;
          Printf.sprintf "%.1f s over %d iterations" total iterations ])
    Compiler.all_strategies;
  Table.print table;
  print_newline ();
  print_endline
    "Full GRAPE pays its search at every iteration; strict partial\n\
     compilation pays a one-off precompute and then compiles for free."
