(* Why pulse duration is existential, not cosmetic: simulate the H2 VQE
   circuit on a decohering device (density-matrix simulation with T1/T2
   channels) and watch the measured ground-state energy drift away from the
   ideal as qubit lifetimes shrink — then watch partial compilation pull it
   back by compressing the schedule.

   Run with: dune exec examples/noise_impact.exe *)

module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Statevec = Pqc_quantum.Statevec
module Density = Pqc_quantum.Density
module Schedule = Pqc_transpile.Schedule
module Gate_times = Pqc_pulse.Gate_times
module Table = Pqc_util.Table
open Pqc_vqe
open Pqc_core

let () =
  (* Converge VQE noiselessly first; then study execution noise at the
     optimum. *)
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Uccsd.ansatz Molecule.h2) in
  let vqe = Vqe.run ~hamiltonian:Chemistry.h2 ~ansatz () in
  Printf.printf "Ideal VQE energy: %.6f Ha (exact %.6f)\n\n" vqe.energy
    Chemistry.h2_exact_energy;

  let bound = Circuit.bind ansatz vqe.theta in
  let ideal_state = Statevec.run bound in
  let sched = Schedule.schedule ~duration:Gate_times.instr_duration bound in
  let timings =
    Array.to_list
      (Array.map
         (fun (e : Schedule.entry) ->
           { Density.instr = e.instr; start_time = e.start_time;
             duration = e.finish_time -. e.start_time })
         sched.entries)
  in

  let prepared = Compiler.prepare ansatz in
  let baseline = Compiler.gate_based prepared ~theta:vqe.theta in
  let engine = Engine.model in
  let t2 = 2_000.0 (* a pessimistic 2 us device *) in
  Printf.printf "Noisy execution at T1 = 3 us, T2 = 2 us:\n";
  let table =
    Table.create [ "strategy"; "pulse (ns)"; "state fidelity"; "energy (Ha)"; "error (mHa)" ]
  in
  List.iter
    (fun strategy ->
      let r = Compiler.compile ~engine strategy prepared ~theta:vqe.theta in
      let scale = r.Strategy.duration_ns /. baseline.Strategy.duration_ns in
      let scaled =
        List.map
          (fun (tm : Density.timing) ->
            { tm with Density.start_time = tm.start_time *. scale;
              duration = tm.duration *. scale })
          timings
      in
      let rho = Density.run_noisy ~t1_ns:3_000.0 ~t2_ns:t2 ~n:2 scaled in
      let energy = Density.expectation Chemistry.h2 rho in
      Table.add_row table
        [ r.Strategy.strategy;
          Table.cell_f r.Strategy.duration_ns;
          Table.cell_f ~decimals:4 (Density.fidelity_to rho ideal_state);
          Table.cell_f ~decimals:5 energy;
          Table.cell_f ~decimals:2 (1000.0 *. Float.abs (energy -. vqe.energy)) ])
    Compiler.all_strategies;
  Table.print table;
  print_newline ();
  print_endline
    "The same variational circuit, the same parameters — only the pulse\n\
     compilation differs.  Shorter pulses keep the answer chemical."
