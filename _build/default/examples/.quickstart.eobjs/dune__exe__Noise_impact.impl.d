examples/noise_impact.ml: Array Chemistry Compiler Engine Float List Molecule Pqc_core Pqc_pulse Pqc_quantum Pqc_transpile Pqc_util Pqc_vqe Printf Strategy Uccsd Vqe
