examples/quickstart.mli:
