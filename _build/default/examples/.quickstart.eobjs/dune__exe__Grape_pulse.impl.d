examples/grape_pulse.ml: Array Float Grape Hamiltonian List Pqc_grape Pqc_pulse Pqc_quantum Pqc_util Printf String
