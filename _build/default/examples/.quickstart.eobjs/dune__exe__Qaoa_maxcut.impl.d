examples/qaoa_maxcut.ml: Compiler Engine Format Graph List Maxcut Pqc_core Pqc_qaoa Pqc_util Printf Qaoa Strategy
