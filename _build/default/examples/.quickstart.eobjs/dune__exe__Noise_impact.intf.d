examples/noise_impact.mli:
