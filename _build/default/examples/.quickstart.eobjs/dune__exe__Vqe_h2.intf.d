examples/vqe_h2.mli:
