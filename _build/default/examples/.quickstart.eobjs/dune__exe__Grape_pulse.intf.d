examples/grape_pulse.mli:
