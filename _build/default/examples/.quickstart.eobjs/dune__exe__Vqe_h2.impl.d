examples/vqe_h2.ml: Chemistry Compiler Engine Float List Molecule Pqc_core Pqc_quantum Pqc_util Pqc_vqe Printf Strategy Uccsd Vqe
