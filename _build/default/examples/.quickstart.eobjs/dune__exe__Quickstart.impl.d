examples/quickstart.ml: Compiler Engine Format List Pqc_core Pqc_pulse Pqc_quantum Pqc_util Printf Strategy
