(* Run the real numeric GRAPE engine on the compiler's basis gates and
   compare the discovered minimal pulse durations against the Table 1
   lookup values.  Also demonstrates the control-field asymmetry story of
   Section 5.1: GRAPE realizes H with mostly flux (Z) drive, rediscovering
   the Rz Rx Rz decomposition instead of the textbook Rx Rz Rx.

   This example runs actual optimal-control optimizations: expect a minute
   or two of compute.

   Run with: dune exec examples/grape_pulse.exe *)

module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Table = Pqc_util.Table
open Pqc_grape

let settings =
  { Grape.fast_settings with Grape.dt = 0.1; max_iters = 400;
    target_fidelity = 0.999 }

let minimal name n gates upper =
  let circuit = Circuit.of_gates n gates in
  let sys = Hamiltonian.gmon n in
  match
    Grape.minimal_time ~settings ~upper_bound:upper sys
      ~target:(Circuit.unitary circuit)
  with
  | Some s -> (name, Gate_times.circuit_duration circuit, Some s.minimal)
  | None -> (name, Gate_times.circuit_duration circuit, None)

(* Total drive "area" per channel family, to show where the H pulse's
   effort goes. *)
let channel_area (sys : Hamiltonian.t) (r : Grape.result) prefix =
  let total = ref 0.0 in
  Array.iteri
    (fun j (c : Hamiltonian.control) ->
      if String.length c.label > 0 && c.label.[0] = prefix then
        Array.iter (fun u -> total := !total +. Float.abs u) r.controls.(j))
    sys.Hamiltonian.controls;
  !total *. settings.Grape.dt

let () =
  print_endline "Minimal GRAPE pulse durations vs the Table 1 lookup:";
  let rows =
    [ minimal "Rz(pi)" 1 [ (Gate.Rz (Param.const Float.pi), [ 0 ]) ] 2.0;
      minimal "Rx(pi)" 1 [ (Gate.Rx (Param.const Float.pi), [ 0 ]) ] 5.0;
      minimal "H" 1 [ (Gate.H, [ 0 ]) ] 4.0;
      minimal "CX" 2 [ (Gate.CX, [ 0; 1 ]) ] 8.0;
      minimal "SWAP" 2 [ (Gate.Swap, [ 0; 1 ]) ] 10.0 ]
  in
  let table = Table.create [ "gate"; "lookup (ns)"; "GRAPE (ns)"; "fidelity" ] in
  List.iter
    (fun (name, lookup, result) ->
      match result with
      | Some (r : Grape.result) ->
        Table.add_row table
          [ name; Table.cell_f lookup; Table.cell_f r.total_time;
            Table.cell_f ~decimals:4 r.fidelity ]
      | None -> Table.add_row table [ name; Table.cell_f lookup; "did not converge" ])
    rows;
  Table.print table;

  (* The H gate's discovered pulse leans on the 15x-faster flux drive. *)
  print_newline ();
  let sys = Hamiltonian.gmon 1 in
  let h = Grape.optimize ~settings sys ~target:(Circuit.unitary (Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ])) ~total_time:1.5 in
  let charge = channel_area sys h 'c' and flux = channel_area sys h 'f' in
  Printf.printf
    "H pulse drive areas: charge (X-axis) %.2f rad, flux (Z-axis) %.2f rad\n"
    charge flux;
  Printf.printf
    "Flux/charge ratio %.1f: GRAPE leans on the fast Z drive, the\n\
     Rz.Rx.Rz trick of Section 5.1 (one X quarter-turn instead of two).\n"
    (flux /. charge)
