(* Quickstart: build a small variational circuit, compile it under all four
   strategies, and compare pulse durations and compilation latencies.

   Run with: dune exec examples/quickstart.exe *)

module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Table = Pqc_util.Table
open Pqc_core

(* A 3-qubit, 2-parameter variational circuit in the QAOA mold:
   entangle, phase by theta_0, mix by theta_1. *)
let variational_circuit () =
  let b = Circuit.Builder.create 3 in
  List.iter (fun q -> Circuit.Builder.add b Gate.H [ q ]) [ 0; 1; 2 ];
  List.iter
    (fun (u, v) ->
      Circuit.Builder.add b Gate.CX [ u; v ];
      Circuit.Builder.add b (Gate.Rz (Param.var 0)) [ v ];
      Circuit.Builder.add b Gate.CX [ u; v ])
    [ (0, 1); (1, 2) ];
  List.iter
    (fun q -> Circuit.Builder.add b (Gate.Rx (Param.var ~scale:2.0 1)) [ q ])
    [ 0; 1; 2 ];
  Circuit.Builder.to_circuit b

let () =
  let circuit = variational_circuit () in
  Format.printf "Variational circuit:@.%a@." Circuit.pp circuit;

  (* Transpile: optimization passes + routing to a line device. *)
  let prepared = Compiler.prepare circuit in
  Printf.printf "Prepared: %d gates after optimization and routing\n\n"
    (Circuit.length prepared);

  (* This iteration's parameters (a variational optimizer would supply
     new values every iteration). *)
  let theta = [| 0.8; 0.35 |] in

  let engine = Engine.model in
  let table =
    Table.create
      [ "strategy"; "pulse (ns)"; "speedup"; "latency/iter"; "precompute" ]
  in
  let gate = Compiler.gate_based prepared ~theta in
  List.iter
    (fun strategy ->
      let r = Compiler.compile ~engine strategy prepared ~theta in
      Table.add_row table
        [ r.Strategy.strategy;
          Table.cell_f r.Strategy.duration_ns;
          Table.cell_x (Strategy.speedup ~baseline:gate r);
          Printf.sprintf "%.2f s" r.Strategy.per_iteration.Engine.seconds;
          Printf.sprintf "%.2f s" r.Strategy.precompute.Engine.seconds ])
    Compiler.all_strategies;
  Table.print table;

  print_newline ();
  print_endline "Pulse schedule under strict partial compilation:";
  let strict = Compiler.strict_partial ~engine prepared ~theta in
  Format.printf "%a@." Pqc_pulse.Pulse.pp strict.Strategy.pulse
