(* End-to-end QAOA MAXCUT on a seeded 6-node 3-regular graph.

   Runs the full hybrid loop at several circuit depths p, reports the
   approximation ratio, and compiles the final circuit of each depth under
   all four strategies — reproducing in miniature the trade-off of the
   paper's Figure 6: strict gains little on QAOA (parametrized gates are
   dense), flexible recovers the full-GRAPE speedup.

   Run with: dune exec examples/qaoa_maxcut.exe *)

module Rng = Pqc_util.Rng
module Table = Pqc_util.Table
open Pqc_qaoa
open Pqc_core

let () =
  let rng = Rng.create 2019 in
  let graph = Graph.random_regular rng ~degree:3 6 in
  Format.printf "%a@." Graph.pp graph;
  Printf.printf "Brute-force MAXCUT optimum: %d\n\n" (Maxcut.optimum graph);

  let engine = Engine.model in
  let table =
    Table.create
      [ "p"; "approx ratio"; "gate (ns)"; "strict"; "flexible"; "grape" ]
  in
  List.iter
    (fun p ->
      let outcome = Qaoa.optimize ~max_evals:400 ~seed:7 graph ~p in
      let prepared = Compiler.prepare (Qaoa.circuit graph ~p) in
      let compile strategy =
        (Compiler.compile ~engine strategy prepared ~theta:outcome.theta)
          .Strategy.duration_ns
      in
      Table.add_row table
        [ string_of_int p;
          Table.cell_f ~decimals:3 outcome.approximation_ratio;
          Table.cell_f (compile Compiler.Gate_based);
          Table.cell_f (compile Compiler.Strict_partial);
          Table.cell_f (compile Compiler.Flexible_partial);
          Table.cell_f (compile Compiler.Full_grape) ])
    [ 1; 2; 3 ];
  Table.print table;
  print_newline ();
  print_endline
    "Shorter pulses matter beyond wall time: decoherence error grows\n\
     exponentially with pulse duration, so the flexible-partial column is\n\
     the difference between a usable and an unusable computation."
