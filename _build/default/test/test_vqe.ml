module Rng = Pqc_util.Rng
module Cmat = Pqc_linalg.Cmat
module Expm = Pqc_linalg.Expm
module Unitary = Pqc_linalg.Unitary
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Pauli = Pqc_quantum.Pauli
module Slice = Pqc_transpile.Slice
module Molecule = Pqc_vqe.Molecule
module Uccsd = Pqc_vqe.Uccsd
module Chemistry = Pqc_vqe.Chemistry
module Vqe = Pqc_vqe.Vqe

(* --- Molecule registry (Table 2) --- *)

let test_table2_widths () =
  let widths = List.map (fun m -> (m.Molecule.name, m.Molecule.n_qubits)) Molecule.all in
  Alcotest.(check (list (pair string int))) "widths"
    [ ("H2", 2); ("LiH", 4); ("BeH2", 6); ("NaH", 8); ("H2O", 10) ]
    widths

let test_table2_params () =
  let params = List.map (fun m -> (m.Molecule.name, Molecule.n_params m)) Molecule.all in
  Alcotest.(check (list (pair string int))) "parameter counts"
    [ ("H2", 3); ("LiH", 8); ("BeH2", 26); ("NaH", 24); ("H2O", 92) ]
    params

let test_molecule_find () =
  Alcotest.(check bool) "case-insensitive" true (Molecule.find "beh2" = Some Molecule.beh2);
  Alcotest.(check bool) "unknown" true (Molecule.find "XeF4" = None)

(* --- Pauli exponential construction --- *)

(* Reference: exp(-i theta/2 P) computed densely from the Pauli matrix.
   The CX parity ladder spans the support's whole qubit range, so
   intermediate qubits carry Jordan-Wigner Z factors. *)
let reference_exponential n theta support =
  let qs = List.map fst support in
  let lo = List.fold_left min (List.hd qs) qs in
  let hi = List.fold_left max (List.hd qs) qs in
  let ops = Array.make n Pauli.I in
  for q = lo to hi do
    ops.(q) <- Pauli.Z
  done;
  List.iter
    (fun (q, ax) -> ops.(q) <- (match ax with Uccsd.AX -> Pauli.X | Uccsd.AY -> Pauli.Y))
    support;
  let p = Pauli.matrix (Pauli.make n [ (1.0, ops) ]) in
  Expm.expm_i_hermitian ~t:(theta /. 2.0) p

let check_exponential n theta support =
  let c = Uccsd.pauli_exponential ~n ~param:(Param.const theta) support in
  Unitary.equal_up_to_phase ~tol:1e-7 (Circuit.unitary c)
    (reference_exponential n theta support)

let test_pauli_exponential_xy () =
  Alcotest.(check bool) "exp XY" true (check_exponential 2 0.9 [ (0, Uccsd.AX); (1, Uccsd.AY) ])

let test_pauli_exponential_yx () =
  Alcotest.(check bool) "exp YX" true (check_exponential 2 (-1.3) [ (0, Uccsd.AY); (1, Uccsd.AX) ])

let test_pauli_exponential_4q () =
  Alcotest.(check bool) "exp XXXY" true
    (check_exponential 4 0.7
       [ (0, Uccsd.AX); (1, Uccsd.AX); (2, Uccsd.AX); (3, Uccsd.AY) ])

let prop_pauli_exponential =
  QCheck.Test.make ~name:"pauli exponentials match dense reference" ~count:25
    QCheck.(pair (int_range 0 10_000) (float_range (-3.0) 3.0))
    (fun (seed, theta) ->
      let rng = Rng.create seed in
      let n = 3 in
      let count = 1 + Rng.int rng n in
      let qubits = Array.init n Fun.id in
      Rng.shuffle rng qubits;
      let support =
        List.init count (fun i ->
            (qubits.(i), if Rng.bool rng then Uccsd.AX else Uccsd.AY))
      in
      check_exponential n theta support)

let test_pauli_exponential_rejects_dup () =
  Alcotest.(check bool) "duplicate support" true
    (try
       ignore (Uccsd.pauli_exponential ~n:2 ~param:Param.zero
                 [ (0, Uccsd.AX); (0, Uccsd.AY) ]);
       false
     with Invalid_argument _ -> true)

let test_pauli_exponential_rejects_empty () =
  Alcotest.(check bool) "empty support" true
    (try ignore (Uccsd.pauli_exponential ~n:2 ~param:Param.zero []); false
     with Invalid_argument _ -> true)

(* --- excitations and ansatz --- *)

let test_single_excitation_dependency () =
  let c = Uccsd.single_excitation ~n:3 ~param_index:5 (0, 1) in
  Alcotest.(check (list int)) "depends only on t5" [ 5 ] (Circuit.depends c)

let test_double_excitation_dependency () =
  let c = Uccsd.double_excitation ~n:4 ~param_index:2 (0, 1, 2, 3) in
  Alcotest.(check (list int)) "depends only on t2" [ 2 ] (Circuit.depends c);
  (* Eight strings, each with one Rz. *)
  Alcotest.(check int) "eight theta gates" 8 (Circuit.parametrized_gate_count c)

let test_ansatz_dimensions () =
  List.iter
    (fun m ->
      let c = Uccsd.ansatz m in
      Alcotest.(check int) (m.Molecule.name ^ " width") m.Molecule.n_qubits
        (Circuit.n_qubits c);
      Alcotest.(check int)
        (m.Molecule.name ^ " params")
        (Molecule.n_params m)
        (List.length (Circuit.depends c)))
    Molecule.all

let test_ansatz_monotone () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Molecule.name ^ " monotone") true
        (Slice.is_monotone (Uccsd.ansatz m)))
    Molecule.all

let test_ansatz_theta_sparsity () =
  (* Section 6: Rz(theta) gates are a small minority for UCCSD, leaving
     deep Fixed blocks for strict partial compilation. *)
  List.iter
    (fun m ->
      let c = Uccsd.ansatz m in
      let frac = 1.0 -. Slice.fixed_gate_fraction c in
      Alcotest.(check bool)
        (Printf.sprintf "%s theta fraction %.2f small" m.Molecule.name frac)
        true (frac < 0.16))
    Molecule.all

let test_ansatz_deterministic () =
  let a = Uccsd.ansatz Molecule.lih and b = Uccsd.ansatz Molecule.lih in
  Alcotest.(check int) "same length" (Circuit.length a) (Circuit.length b)

(* --- chemistry --- *)

let test_h2_ground_energy () =
  Alcotest.(check bool) "near -1.851 Ha" true
    (Float.abs (Chemistry.h2_exact_energy -. -1.851) < 5e-3)

let test_h2_terms () =
  Alcotest.(check int) "six Pauli terms" 6 (List.length Chemistry.h2.Pauli.terms)

let test_synthetic_shape () =
  let h = Chemistry.synthetic ~seed:5 ~n_qubits:4 in
  Alcotest.(check int) "width" 4 h.Pauli.n_qubits;
  (* n Z + (n-1) ZZ + n X terms. *)
  Alcotest.(check int) "terms" 11 (List.length h.Pauli.terms)

let test_synthetic_deterministic () =
  let a = Chemistry.synthetic ~seed:5 ~n_qubits:3 in
  let b = Chemistry.synthetic ~seed:5 ~n_qubits:3 in
  Alcotest.(check (float 1e-12)) "same coefficients"
    (List.hd a.Pauli.terms).Pauli.coeff (List.hd b.Pauli.terms).Pauli.coeff

let test_ground_energy_is_lower_bound () =
  let h = Chemistry.synthetic ~seed:9 ~n_qubits:3 in
  let e0 = Chemistry.ground_energy h in
  (* Every basis state's energy is an upper bound on the ground energy. *)
  for k = 0 to 7 do
    let v = Pqc_linalg.Cvec.basis 8 k in
    Alcotest.(check bool) "e0 <= <k|H|k>" true (e0 <= Pauli.expectation h v +. 1e-6)
  done

(* --- end-to-end VQE --- *)

let test_vqe_h2_end_to_end () =
  (* Hartree-Fock prep |10> then the UCCSD-structured ansatz: must land on
     the exact ground energy of the real H2 Hamiltonian. *)
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Uccsd.ansatz Molecule.h2) in
  let r = Vqe.run ~hamiltonian:Chemistry.h2 ~ansatz () in
  Alcotest.(check bool)
    (Printf.sprintf "energy %.4f within 1 mHa of exact" r.energy)
    true
    (Float.abs (r.energy -. Chemistry.h2_exact_energy) < 1e-3)

let test_vqe_improves_over_hf () =
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let hf_energy = Pauli.expectation Chemistry.h2 (Pqc_quantum.Statevec.run prep) in
  let ansatz = Circuit.concat prep (Uccsd.ansatz Molecule.h2) in
  let r = Vqe.run ~hamiltonian:Chemistry.h2 ~ansatz () in
  Alcotest.(check bool) "beats Hartree-Fock" true (r.energy < hf_energy)

let test_vqe_width_mismatch () =
  Alcotest.(check bool) "width mismatch raises" true
    (try
       ignore (Vqe.run ~hamiltonian:Chemistry.h2 ~ansatz:(Circuit.empty 3) ());
       false
     with Invalid_argument _ -> true)

let test_vqe_spsa_optimizer () =
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Uccsd.ansatz Molecule.h2) in
  let hf = Pauli.expectation Chemistry.h2 (Pqc_quantum.Statevec.run prep) in
  let r = Vqe.run ~max_evals:1200 ~optimizer:`Spsa ~hamiltonian:Chemistry.h2 ~ansatz () in
  Alcotest.(check bool)
    (Printf.sprintf "SPSA improves over HF (%.4f < %.4f)" r.energy hf)
    true (r.energy < hf)

let test_vqe_iterations_counted () =
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Uccsd.ansatz Molecule.h2) in
  let r = Vqe.run ~max_evals:50 ~hamiltonian:Chemistry.h2 ~ansatz () in
  Alcotest.(check bool) "evaluations tracked" true (r.evaluations > 0 && r.evaluations <= 55)

let () =
  Alcotest.run "vqe"
    [ ( "molecule",
        [ Alcotest.test_case "table 2 widths" `Quick test_table2_widths;
          Alcotest.test_case "table 2 params" `Quick test_table2_params;
          Alcotest.test_case "find" `Quick test_molecule_find ] );
      ( "uccsd",
        [ Alcotest.test_case "exp XY" `Quick test_pauli_exponential_xy;
          Alcotest.test_case "exp YX" `Quick test_pauli_exponential_yx;
          Alcotest.test_case "exp 4q" `Quick test_pauli_exponential_4q;
          Alcotest.test_case "rejects duplicates" `Quick test_pauli_exponential_rejects_dup;
          Alcotest.test_case "rejects empty" `Quick test_pauli_exponential_rejects_empty;
          Alcotest.test_case "single dependency" `Quick test_single_excitation_dependency;
          Alcotest.test_case "double dependency" `Quick test_double_excitation_dependency;
          Alcotest.test_case "ansatz dimensions" `Quick test_ansatz_dimensions;
          Alcotest.test_case "ansatz monotone" `Quick test_ansatz_monotone;
          Alcotest.test_case "theta sparsity" `Quick test_ansatz_theta_sparsity;
          Alcotest.test_case "deterministic" `Quick test_ansatz_deterministic;
          QCheck_alcotest.to_alcotest prop_pauli_exponential ] );
      ( "chemistry",
        [ Alcotest.test_case "H2 ground energy" `Quick test_h2_ground_energy;
          Alcotest.test_case "H2 terms" `Quick test_h2_terms;
          Alcotest.test_case "synthetic shape" `Quick test_synthetic_shape;
          Alcotest.test_case "synthetic deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "ground energy bound" `Quick test_ground_energy_is_lower_bound ] );
      ( "end-to-end",
        [ Alcotest.test_case "H2 reaches exact energy" `Quick test_vqe_h2_end_to_end;
          Alcotest.test_case "SPSA optimizer" `Quick test_vqe_spsa_optimizer;
          Alcotest.test_case "improves over HF" `Quick test_vqe_improves_over_hf;
          Alcotest.test_case "width mismatch" `Quick test_vqe_width_mismatch;
          Alcotest.test_case "iterations counted" `Quick test_vqe_iterations_counted ] ) ]
