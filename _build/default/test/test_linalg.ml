module Rng = Pqc_util.Rng
module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec
module Expm = Pqc_linalg.Expm
module Unitary = Pqc_linalg.Unitary

let c re im = { Complex.re; im }
let c1 = c 1.0 0.0
let c0 = c 0.0 0.0

let random_cmat rng n =
  let m = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Cmat.set m i j (c (Rng.gaussian rng) (Rng.gaussian rng))
    done
  done;
  m

let close ?(tol = 1e-9) a b = Cmat.max_abs_diff a b <= tol

(* --- basic algebra --- *)

let test_identity_mul () =
  let rng = Rng.create 1 in
  let a = random_cmat rng 5 in
  let i5 = Cmat.identity 5 in
  Alcotest.(check bool) "I*A = A" true (close (Cmat.mul i5 a) a);
  Alcotest.(check bool) "A*I = A" true (close (Cmat.mul a i5) a)

let test_get_set () =
  let m = Cmat.create 3 4 in
  Cmat.set m 2 3 (c 1.5 (-0.5));
  Alcotest.(check bool) "roundtrip" true (Cmat.get m 2 3 = c 1.5 (-0.5));
  Alcotest.(check int) "rows" 3 (Cmat.rows m);
  Alcotest.(check int) "cols" 4 (Cmat.cols m)

let test_dagger_involution () =
  let rng = Rng.create 2 in
  let a = random_cmat rng 4 in
  Alcotest.(check bool) "dagger twice" true (close (Cmat.dagger (Cmat.dagger a)) a)

let test_add_sub () =
  let rng = Rng.create 3 in
  let a = random_cmat rng 4 and b = random_cmat rng 4 in
  Alcotest.(check bool) "a+b-b = a" true (close (Cmat.sub (Cmat.add a b) b) a)

let test_scale () =
  let rng = Rng.create 4 in
  let a = random_cmat rng 3 in
  let two = c 2.0 0.0 in
  Alcotest.(check bool) "2a = a+a" true (close (Cmat.scale two a) (Cmat.add a a))

let test_axpy () =
  let rng = Rng.create 5 in
  let x = random_cmat rng 3 and y = random_cmat rng 3 in
  let expected = Cmat.add y (Cmat.scale (c 0.5 1.0) x) in
  Cmat.axpy ~alpha:(c 0.5 1.0) ~x ~y;
  Alcotest.(check bool) "axpy" true (close y expected)

let test_kron_known () =
  let x = Cmat.of_array [| [| c0; c1 |]; [| c1; c0 |] |] in
  let i2 = Cmat.identity 2 in
  let xi = Cmat.kron x i2 in
  (* X (x) I maps |00> -> |10>: column 0 has a 1 in row 2. *)
  Alcotest.(check bool) "entry" true (Cmat.get xi 2 0 = c1);
  Alcotest.(check int) "dims" 4 (Cmat.rows xi)

let test_trace () =
  let m = Cmat.of_array [| [| c 1.0 2.0; c0 |]; [| c0; c 3.0 (-1.0) |] |] in
  Alcotest.(check bool) "trace" true (Cmat.trace m = c 4.0 1.0)

let test_inner_vs_trace () =
  let rng = Rng.create 6 in
  let a = random_cmat rng 4 and b = random_cmat rng 4 in
  let via_trace = Cmat.trace (Cmat.mul (Cmat.dagger a) b) in
  let via_inner = Cmat.inner a b in
  Alcotest.(check bool) "inner = tr(a† b)" true
    (Complex.norm (Complex.sub via_trace via_inner) < 1e-9)

let test_trace_of_product () =
  let rng = Rng.create 7 in
  let a = random_cmat rng 5 and b = random_cmat rng 5 in
  let direct = Cmat.trace (Cmat.mul a b) in
  let fast = Cmat.trace_of_product a b in
  Alcotest.(check bool) "tr(ab)" true (Complex.norm (Complex.sub direct fast) < 1e-9)

let test_one_norm () =
  let m = Cmat.of_array [| [| c 3.0 0.0; c0 |]; [| c 0.0 4.0; c1 |] |] in
  (* Column 0 sum = 3 + 4 = 7, column 1 sum = 1. *)
  Alcotest.(check (float 1e-12)) "one norm" 7.0 (Cmat.one_norm m)

let test_transpose_conj_dagger () =
  let rng = Rng.create 8 in
  let a = random_cmat rng 4 in
  Alcotest.(check bool) "dagger = conj . transpose" true
    (close (Cmat.dagger a) (Cmat.conj (Cmat.transpose a)))

let prop_mul_assoc =
  QCheck.Test.make ~name:"matrix multiplication associative" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let a = random_cmat rng 3 and b = random_cmat rng 3 and cm = random_cmat rng 3 in
      close ~tol:1e-8 (Cmat.mul (Cmat.mul a b) cm) (Cmat.mul a (Cmat.mul b cm)))

let prop_dagger_antihom =
  QCheck.Test.make ~name:"(ab)† = b† a†" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let a = random_cmat rng 3 and b = random_cmat rng 3 in
      close ~tol:1e-9 (Cmat.dagger (Cmat.mul a b))
        (Cmat.mul (Cmat.dagger b) (Cmat.dagger a)))

let prop_kron_mixed_product =
  QCheck.Test.make ~name:"kron mixed product (A⊗B)(C⊗D) = AC⊗BD" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let a = random_cmat rng 2 and b = random_cmat rng 2 in
      let cm = random_cmat rng 2 and d = random_cmat rng 2 in
      close ~tol:1e-8
        (Cmat.mul (Cmat.kron a b) (Cmat.kron cm d))
        (Cmat.kron (Cmat.mul a cm) (Cmat.mul b d)))

let prop_hermitian_random =
  QCheck.Test.make ~name:"random_hermitian is hermitian" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let h = Cmat.random_hermitian rng 5 in
      close (Cmat.dagger h) h)

(* --- expm --- *)

let test_expm_zero () =
  let z = Cmat.create 4 4 in
  Alcotest.(check bool) "exp(0) = I" true (close (Expm.expm z) (Cmat.identity 4))

let test_expm_diagonal () =
  let m = Cmat.create 2 2 in
  Cmat.set m 0 0 (c 1.0 0.0);
  Cmat.set m 1 1 (c 0.0 Float.pi);
  let e = Expm.expm m in
  Alcotest.(check bool) "e^1" true (Complex.norm (Complex.sub (Cmat.get e 0 0) (c (exp 1.0) 0.0)) < 1e-9);
  Alcotest.(check bool) "e^{i pi} = -1" true
    (Complex.norm (Complex.sub (Cmat.get e 1 1) (c (-1.0) 0.0)) < 1e-9)

let prop_expm_unitary =
  QCheck.Test.make ~name:"exp(-iHt) unitary for Hermitian H" ~count:30
    QCheck.(pair (int_range 0 10_000) (float_range 0.01 5.0))
    (fun (seed, t) ->
      let rng = Rng.create seed in
      let h = Cmat.random_hermitian rng 6 in
      Cmat.is_unitary ~tol:1e-8 (Expm.expm_i_hermitian ~t h))

let prop_expm_group_law =
  QCheck.Test.make ~name:"exp(-iHa) exp(-iHb) = exp(-iH(a+b))" ~count:30
    QCheck.(triple (int_range 0 10_000) (float_range 0.01 2.0) (float_range 0.01 2.0))
    (fun (seed, a, b) ->
      let rng = Rng.create seed in
      let h = Cmat.random_hermitian rng 4 in
      close ~tol:1e-7
        (Cmat.mul (Expm.expm_i_hermitian ~t:a h) (Expm.expm_i_hermitian ~t:b h))
        (Expm.expm_i_hermitian ~t:(a +. b) h))

let test_expm_large_norm () =
  (* Forces several scaling-and-squaring rounds. *)
  let rng = Rng.create 99 in
  let h = Cmat.scale (c 50.0 0.0) (Cmat.random_hermitian rng 4) in
  Alcotest.(check bool) "still unitary" true
    (Cmat.is_unitary ~tol:1e-6 (Expm.expm_i_hermitian h))

(* --- unitary fidelities --- *)

let test_fidelity_self () =
  let rng = Rng.create 20 in
  let u = Expm.expm_i_hermitian (Cmat.random_hermitian rng 4) in
  Alcotest.(check (float 1e-9)) "F(U,U) = 1" 1.0 (Unitary.trace_fidelity ~target:u u)

let test_fidelity_phase_invariance () =
  let rng = Rng.create 21 in
  let u = Expm.expm_i_hermitian (Cmat.random_hermitian rng 4) in
  let phased = Cmat.scale (Complex.exp (c 0.0 1.234)) u in
  Alcotest.(check bool) "phase invariant" true
    (Unitary.equal_up_to_phase u phased)

let test_fidelity_orthogonal () =
  let x = Cmat.of_array [| [| c0; c1 |]; [| c1; c0 |] |] in
  let z = Cmat.of_array [| [| c1; c0 |]; [| c0; c (-1.0) 0.0 |] |] in
  (* Tr(X† Z) = 0: completely distinguishable. *)
  Alcotest.(check (float 1e-12)) "F(X,Z) = 0" 0.0 (Unitary.trace_fidelity ~target:x z)

let test_infidelity_complement () =
  let rng = Rng.create 22 in
  let u = Expm.expm_i_hermitian (Cmat.random_hermitian rng 4) in
  let v = Expm.expm_i_hermitian (Cmat.random_hermitian rng 4) in
  Alcotest.(check (float 1e-12)) "1 - F"
    (1.0 -. Unitary.trace_fidelity ~target:u v)
    (Unitary.infidelity ~target:u v)

(* --- Eigen --- *)

module Eigen = Pqc_linalg.Eigen

let test_eigen_diagonal () =
  let m = Cmat.create 3 3 in
  Cmat.set m 0 0 (c 5.0 0.0);
  Cmat.set m 1 1 (c (-2.0) 0.0);
  Cmat.set m 2 2 (c 1.0 0.0);
  let values, v = Eigen.hermitian m in
  Alcotest.(check (array (float 1e-12))) "sorted eigenvalues"
    [| -2.0; 1.0; 5.0 |] values;
  Alcotest.(check bool) "eigenvectors unitary" true (Cmat.is_unitary ~tol:1e-10 v)

let test_eigen_pauli_x () =
  let x = Cmat.of_array [| [| c0; c1 |]; [| c1; c0 |] |] in
  let values, _ = Eigen.hermitian x in
  Alcotest.(check (array (float 1e-12))) "X spectrum" [| -1.0; 1.0 |] values

let test_eigen_complex_offdiagonal () =
  (* Pauli Y: complex entries, spectrum {-1, +1}. *)
  let y = Cmat.of_array [| [| c0; c 0.0 (-1.0) |]; [| c 0.0 1.0; c0 |] |] in
  let values, _ = Eigen.hermitian y in
  Alcotest.(check (array (float 1e-12))) "Y spectrum" [| -1.0; 1.0 |] values

let prop_eigen_residuals =
  QCheck.Test.make ~name:"H v = lambda v to machine precision" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 6 in
      let h = Cmat.random_hermitian rng n in
      let values, v = Eigen.hermitian h in
      let ok = ref true in
      for k = 0 to n - 1 do
        let col = Cvec.of_array (Array.init n (fun i -> Cmat.get v i k)) in
        let hv = Cmat.apply h col in
        let lv = Cvec.scale (c values.(k) 0.0) col in
        if Cvec.max_abs_diff hv lv > 1e-9 then ok := false
      done;
      !ok)

let prop_eigen_trace_preserved =
  QCheck.Test.make ~name:"eigenvalues sum to trace" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let h = Cmat.random_hermitian rng 5 in
      let values, _ = Eigen.hermitian h in
      Float.abs (Array.fold_left ( +. ) 0.0 values -. (Cmat.trace h).re) < 1e-9)

let prop_eigen_ascending =
  QCheck.Test.make ~name:"eigenvalues ascending" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let values, _ = Eigen.hermitian (Cmat.random_hermitian rng 5) in
      let ok = ref true in
      for k = 0 to 3 do
        if values.(k) > values.(k + 1) then ok := false
      done;
      !ok)

let test_eigen_rejects_rectangular () =
  Alcotest.(check bool) "non-square" true
    (try ignore (Eigen.hermitian (Cmat.create 2 3)); false
     with Invalid_argument _ -> true)

(* --- Cvec --- *)

let test_cvec_basis () =
  let v = Cvec.basis 4 2 in
  Alcotest.(check (float 1e-12)) "norm 1" 1.0 (Cvec.norm v);
  Alcotest.(check (float 1e-12)) "prob at 2" 1.0 (Cvec.probability v 2);
  Alcotest.(check (float 1e-12)) "prob at 0" 0.0 (Cvec.probability v 0)

let test_cvec_dot_conjugate_linear () =
  let a = Cvec.of_array [| c 0.0 1.0; c0 |] in
  let b = Cvec.of_array [| c1; c0 |] in
  (* <ia|b> = -i <a|b> = -i. *)
  Alcotest.(check bool) "conjugate linear" true
    (Complex.norm (Complex.sub (Cvec.dot a b) (c 0.0 (-1.0))) < 1e-12)

let test_cvec_normalize () =
  let v = Cvec.of_array [| c 3.0 0.0; c 4.0 0.0 |] in
  Alcotest.(check (float 1e-12)) "normalized" 1.0 (Cvec.norm (Cvec.normalize v))

let test_cvec_normalize_zero () =
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Cvec.normalize: zero vector") (fun () ->
      ignore (Cvec.normalize (Cvec.create 3)))

let prop_probabilities_sum =
  QCheck.Test.make ~name:"normalized probabilities sum to 1" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let v =
        Cvec.of_array (Array.init 8 (fun _ -> c (Rng.gaussian rng) (Rng.gaussian rng)))
      in
      let v = Cvec.normalize v in
      let total = ref 0.0 in
      for k = 0 to 7 do
        total := !total +. Cvec.probability v k
      done;
      Float.abs (!total -. 1.0) < 1e-9)

let test_apply_identity () =
  let rng = Rng.create 30 in
  let v = Cvec.normalize (Cvec.of_array (Array.init 4 (fun _ -> c (Rng.gaussian rng) 0.0))) in
  Alcotest.(check (float 1e-12)) "I v = v" 0.0
    (Cvec.max_abs_diff (Cmat.apply (Cmat.identity 4) v) v)

let () =
  Alcotest.run "linalg"
    [ ( "cmat",
        [ Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "dagger involution" `Quick test_dagger_involution;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "axpy" `Quick test_axpy;
          Alcotest.test_case "kron known" `Quick test_kron_known;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "inner vs trace" `Quick test_inner_vs_trace;
          Alcotest.test_case "trace of product" `Quick test_trace_of_product;
          Alcotest.test_case "one norm" `Quick test_one_norm;
          Alcotest.test_case "dagger = conj transpose" `Quick test_transpose_conj_dagger;
          QCheck_alcotest.to_alcotest prop_mul_assoc;
          QCheck_alcotest.to_alcotest prop_dagger_antihom;
          QCheck_alcotest.to_alcotest prop_kron_mixed_product;
          QCheck_alcotest.to_alcotest prop_hermitian_random ] );
      ( "expm",
        [ Alcotest.test_case "exp(0) = I" `Quick test_expm_zero;
          Alcotest.test_case "diagonal" `Quick test_expm_diagonal;
          Alcotest.test_case "large norm" `Quick test_expm_large_norm;
          QCheck_alcotest.to_alcotest prop_expm_unitary;
          QCheck_alcotest.to_alcotest prop_expm_group_law ] );
      ( "unitary",
        [ Alcotest.test_case "self fidelity" `Quick test_fidelity_self;
          Alcotest.test_case "phase invariance" `Quick test_fidelity_phase_invariance;
          Alcotest.test_case "orthogonal" `Quick test_fidelity_orthogonal;
          Alcotest.test_case "infidelity" `Quick test_infidelity_complement ] );
      ( "eigen",
        [ Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "pauli X" `Quick test_eigen_pauli_x;
          Alcotest.test_case "pauli Y" `Quick test_eigen_complex_offdiagonal;
          Alcotest.test_case "rejects rectangular" `Quick test_eigen_rejects_rectangular;
          QCheck_alcotest.to_alcotest prop_eigen_residuals;
          QCheck_alcotest.to_alcotest prop_eigen_trace_preserved;
          QCheck_alcotest.to_alcotest prop_eigen_ascending ] );
      ( "cvec",
        [ Alcotest.test_case "basis" `Quick test_cvec_basis;
          Alcotest.test_case "dot conjugate linear" `Quick test_cvec_dot_conjugate_linear;
          Alcotest.test_case "normalize" `Quick test_cvec_normalize;
          Alcotest.test_case "normalize zero" `Quick test_cvec_normalize_zero;
          Alcotest.test_case "apply identity" `Quick test_apply_identity;
          QCheck_alcotest.to_alcotest prop_probabilities_sum ] ) ]
