module Rng = Pqc_util.Rng
module Cvec = Pqc_linalg.Cvec
module Circuit = Pqc_quantum.Circuit
module Statevec = Pqc_quantum.Statevec
module Slice = Pqc_transpile.Slice
module Graph = Pqc_qaoa.Graph
module Maxcut = Pqc_qaoa.Maxcut
module Qaoa = Pqc_qaoa.Qaoa

(* --- Graph --- *)

let test_graph_validation () =
  Alcotest.(check bool) "self loop" true
    (try ignore (Graph.make 3 [ (1, 1) ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate" true
    (try ignore (Graph.make 3 [ (0, 1); (1, 0) ]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "range" true
    (try ignore (Graph.make 3 [ (0, 5) ]); false with Invalid_argument _ -> true)

let test_graph_normalization () =
  let g = Graph.make 3 [ (2, 0) ] in
  Alcotest.(check bool) "normalized" true (g.Graph.edges = [ (0, 2) ])

let test_clique_and_cycle () =
  Alcotest.(check int) "K4 edges" 6 (Graph.n_edges (Graph.clique 4));
  Alcotest.(check int) "C5 edges" 5 (Graph.n_edges (Graph.cycle 5));
  Alcotest.(check bool) "C5 2-regular" true (Graph.is_regular (Graph.cycle 5) ~degree:2)

let prop_regular_graphs =
  QCheck.Test.make ~name:"random 3-regular graphs are 3-regular" ~count:30
    QCheck.(pair (int_range 0 100_000) (int_range 0 1))
    (fun (seed, size) ->
      let n = if size = 0 then 6 else 8 in
      let rng = Rng.create seed in
      let g = Graph.random_regular rng ~degree:3 n in
      Graph.is_regular g ~degree:3 && g.Graph.n = n)

let test_regular_rejects_odd () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "odd degree*n" true
    (try ignore (Graph.random_regular rng ~degree:3 5); false
     with Invalid_argument _ -> true)

let test_erdos_renyi_determinism () =
  let a = Graph.erdos_renyi (Rng.create 7) ~p:0.5 6 in
  let b = Graph.erdos_renyi (Rng.create 7) ~p:0.5 6 in
  Alcotest.(check bool) "same edges" true (a.Graph.edges = b.Graph.edges)

let test_erdos_renyi_extremes () =
  let rng = Rng.create 3 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.n_edges (Graph.erdos_renyi rng ~p:0.0 6));
  Alcotest.(check int) "p=1 complete" 15 (Graph.n_edges (Graph.erdos_renyi rng ~p:1.0 6))

let test_degree () =
  let g = Graph.make 4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check int) "star center" 3 (Graph.degree g 0);
  Alcotest.(check int) "leaf" 1 (Graph.degree g 2)

(* --- Maxcut --- *)

let test_cut_value_square () =
  let square = Graph.cycle 4 in
  (* Alternating assignment 0101 cuts all 4 edges. *)
  Alcotest.(check int) "alternating" 4 (Maxcut.cut_value square 0b0101);
  Alcotest.(check int) "uniform" 0 (Maxcut.cut_value square 0b0000)

let test_optimum_known () =
  Alcotest.(check int) "C4" 4 (Maxcut.optimum (Graph.cycle 4));
  Alcotest.(check int) "K4" 4 (Maxcut.optimum (Graph.clique 4));
  Alcotest.(check int) "C5" 4 (Maxcut.optimum (Graph.cycle 5))

let prop_hamiltonian_diagonal_values =
  QCheck.Test.make ~name:"cost Hamiltonian basis expectation = cut value" ~count:50
    QCheck.(pair (int_range 0 100_000) (int_range 0 63))
    (fun (seed, assignment) ->
      let rng = Rng.create seed in
      let g = Graph.erdos_renyi rng ~p:0.5 6 in
      let v = Cvec.basis 64 assignment in
      Float.abs
        (Maxcut.expected_cut g v -. float_of_int (Maxcut.cut_value g assignment))
      < 1e-9)

let prop_optimum_is_max =
  QCheck.Test.make ~name:"optimum dominates random assignments" ~count:30
    QCheck.(pair (int_range 0 100_000) (int_range 0 255))
    (fun (seed, assignment) ->
      let rng = Rng.create seed in
      let g = Graph.erdos_renyi rng ~p:0.5 8 in
      Maxcut.cut_value g assignment <= Maxcut.optimum g)

let prop_hamiltonian_shift =
  QCheck.Test.make ~name:"cost operator constant term = |E|/2" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Graph.erdos_renyi rng ~p:0.5 6 in
      Float.abs
        (Pqc_quantum.Pauli.identity_coefficient (Maxcut.hamiltonian g)
        -. (float_of_int (Graph.n_edges g) /. 2.0))
      < 1e-12)

(* --- QAOA circuits --- *)

let test_circuit_structure () =
  let g = Graph.cycle 4 in
  let c = Qaoa.circuit g ~p:2 in
  Alcotest.(check int) "width" 4 (Circuit.n_qubits c);
  Alcotest.(check int) "2p parameters" 4 (List.length (Circuit.depends c));
  (* H layer + per round (3 gates per edge + n mixers). *)
  Alcotest.(check int) "gate count" (4 + (2 * ((3 * 4) + 4))) (Circuit.length c)

let test_circuit_monotone () =
  let g = Graph.cycle 4 in
  Alcotest.(check bool) "monotone" true (Slice.is_monotone (Qaoa.circuit g ~p:3))

let test_circuit_rejects_bad_p () =
  Alcotest.(check bool) "p=0" true
    (try ignore (Qaoa.circuit (Graph.cycle 4) ~p:0); false
     with Invalid_argument _ -> true)

let test_param_indices () =
  Alcotest.(check int) "gamma round 0" 0 (Qaoa.gamma_index ~round:0);
  Alcotest.(check int) "beta round 0" 1 (Qaoa.beta_index ~round:0);
  Alcotest.(check int) "gamma round 3" 6 (Qaoa.gamma_index ~round:3);
  Alcotest.(check int) "n_params" 8 (Qaoa.n_params ~p:4)

let test_zero_angles_give_uniform_cut () =
  (* gamma = beta = 0: the state stays uniform; expected cut = |E| / 2. *)
  let g = Graph.cycle 4 in
  let c = Qaoa.circuit g ~p:1 in
  let psi = Statevec.run ~theta:[| 0.0; 0.0 |] c in
  Alcotest.(check (float 1e-9)) "uniform cut" 2.0 (Maxcut.expected_cut g psi)

let test_qaoa_theta_fraction () =
  (* Section 6: parametrized gates are 15-28% of QAOA circuits, limiting
     strict partial compilation. *)
  let rng = Rng.create 3 in
  let g = Graph.random_regular rng ~degree:3 6 in
  let c = Qaoa.circuit g ~p:4 in
  let frac = 1.0 -. Slice.fixed_gate_fraction c in
  (* The paper's 15-28% is measured after mapping inserts SWAPs; the raw
     circuit runs a little higher. *)
  Alcotest.(check bool) "theta-heavy" true (frac > 0.15 && frac < 0.50)

(* --- end-to-end --- *)

let test_qaoa_improves_over_uniform () =
  let rng = Rng.create 11 in
  let g = Graph.random_regular rng ~degree:3 6 in
  let uniform_cut = float_of_int (Graph.n_edges g) /. 2.0 in
  let o = Qaoa.optimize ~max_evals:300 g ~p:2 in
  Alcotest.(check bool) "beats uniform superposition" true (o.expected_cut > uniform_cut);
  Alcotest.(check bool) "ratio sane" true
    (o.approximation_ratio > 0.5 && o.approximation_ratio <= 1.0 +. 1e-9)

let test_qaoa_p1_ratio () =
  (* At p = 1 QAOA MAXCUT guarantees >= 69% of optimal in expectation
     (Farhi et al.); our optimizer should find at least that. *)
  let o = Qaoa.optimize ~max_evals:400 (Graph.cycle 4) ~p:1 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f >= 0.69" o.approximation_ratio)
    true (o.approximation_ratio >= 0.69)

let test_qaoa_deeper_p_no_worse () =
  let rng = Rng.create 13 in
  let g = Graph.random_regular rng ~degree:3 6 in
  let o1 = Qaoa.optimize ~max_evals:400 ~seed:2 g ~p:1 in
  let o3 = Qaoa.optimize ~max_evals:900 ~seed:2 g ~p:3 in
  Alcotest.(check bool) "p=3 at least p=1 - eps" true
    (o3.expected_cut >= o1.expected_cut -. 0.15)

let () =
  Alcotest.run "qaoa"
    [ ( "graph",
        [ Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "normalization" `Quick test_graph_normalization;
          Alcotest.test_case "clique and cycle" `Quick test_clique_and_cycle;
          Alcotest.test_case "regular rejects odd" `Quick test_regular_rejects_odd;
          Alcotest.test_case "erdos determinism" `Quick test_erdos_renyi_determinism;
          Alcotest.test_case "erdos extremes" `Quick test_erdos_renyi_extremes;
          Alcotest.test_case "degree" `Quick test_degree;
          QCheck_alcotest.to_alcotest prop_regular_graphs ] );
      ( "maxcut",
        [ Alcotest.test_case "cut value" `Quick test_cut_value_square;
          Alcotest.test_case "known optima" `Quick test_optimum_known;
          QCheck_alcotest.to_alcotest prop_hamiltonian_diagonal_values;
          QCheck_alcotest.to_alcotest prop_optimum_is_max;
          QCheck_alcotest.to_alcotest prop_hamiltonian_shift ] );
      ( "circuit",
        [ Alcotest.test_case "structure" `Quick test_circuit_structure;
          Alcotest.test_case "monotone" `Quick test_circuit_monotone;
          Alcotest.test_case "rejects p=0" `Quick test_circuit_rejects_bad_p;
          Alcotest.test_case "param indices" `Quick test_param_indices;
          Alcotest.test_case "zero angles uniform" `Quick test_zero_angles_give_uniform_cut;
          Alcotest.test_case "theta fraction" `Quick test_qaoa_theta_fraction ] );
      ( "end-to-end",
        [ Alcotest.test_case "improves over uniform" `Quick test_qaoa_improves_over_uniform;
          Alcotest.test_case "p=1 ratio bound" `Quick test_qaoa_p1_ratio;
          Alcotest.test_case "deeper p no worse" `Slow test_qaoa_deeper_p_no_worse ] ) ]
