test/test_pulse.ml: Alcotest List Pqc_pulse Pqc_quantum String
