test/test_linalg.ml: Alcotest Array Complex Float Pqc_linalg Pqc_util QCheck QCheck_alcotest
