test/test_core.ml: Alcotest Array Float List Pqc_core Pqc_grape Pqc_pulse Pqc_qaoa Pqc_quantum Pqc_transpile Pqc_util Pqc_vqe QCheck QCheck_alcotest Sys
