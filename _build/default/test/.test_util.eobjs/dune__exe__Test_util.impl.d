test/test_util.ml: Alcotest Array Float Fun Gen Pqc_util Printf QCheck QCheck_alcotest String
