test/test_hyperopt.mli:
