test/test_qaoa.ml: Alcotest Float List Pqc_linalg Pqc_qaoa Pqc_quantum Pqc_transpile Pqc_util Printf QCheck QCheck_alcotest
