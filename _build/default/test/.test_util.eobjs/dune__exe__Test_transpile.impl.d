test/test_transpile.ml: Alcotest Array Complex Float List Pqc_linalg Pqc_quantum Pqc_transpile Pqc_util QCheck QCheck_alcotest
