test/test_grape.mli:
