test/test_hyperopt.ml: Alcotest List Pqc_grape Pqc_hyperopt Pqc_quantum
