test/test_vqe.ml: Alcotest Array Float Fun List Pqc_linalg Pqc_quantum Pqc_transpile Pqc_util Pqc_vqe Printf QCheck QCheck_alcotest
