test/test_grape.ml: Alcotest Array Complex Float List Pqc_grape Pqc_linalg Pqc_pulse Pqc_quantum Pqc_transpile
