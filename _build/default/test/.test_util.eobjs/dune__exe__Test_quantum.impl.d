test/test_quantum.ml: Alcotest Array Complex Float List Pqc_linalg Pqc_qaoa Pqc_quantum Pqc_util Pqc_vqe QCheck QCheck_alcotest String
