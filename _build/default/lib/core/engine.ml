module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Grape = Pqc_grape.Grape
module Hamiltonian = Pqc_grape.Hamiltonian
module Hyperopt = Pqc_hyperopt.Hyperopt

type cost = { grape_runs : int; grape_iterations : int; seconds : float }

let zero_cost = { grape_runs = 0; grape_iterations = 0; seconds = 0.0 }

let add_cost a b =
  { grape_runs = a.grape_runs + b.grape_runs;
    grape_iterations = a.grape_iterations + b.grape_iterations;
    seconds = a.seconds +. b.seconds }

type block_result = {
  duration_ns : float;
  search_cost : cost;
  fidelity : float option;
}

type numeric_config = {
  settings : Grape.settings;
  system_for : int -> Hamiltonian.t;
  cache : (string, block_result) Hashtbl.t;
}

type t = Model | Numeric of numeric_config

let model = Model

let numeric ?(settings = Grape.fast_settings) ?system_for () =
  let system_for =
    match system_for with Some f -> f | None -> fun n -> Hamiltonian.gmon n
  in
  Numeric { settings; system_for; cache = Hashtbl.create 64 }

let is_numeric = function Model -> false | Numeric _ -> true

(* Canonical key of a bound block, for memoization. *)
let block_key c =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int (Circuit.n_qubits c));
  Circuit.iter
    (fun (i : Circuit.instr) ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (Gate.name i.gate);
      (match Gate.param i.gate with
      | Some p -> Buffer.add_string buf (Printf.sprintf "(%.6f)" (Param.bind p [||]))
      | None -> ());
      Array.iter (fun q -> Buffer.add_string buf (Printf.sprintf ",%d" q)) i.qubits)
    c;
  Buffer.contents buf

let require_bound c =
  if Circuit.depends c <> [] then
    invalid_arg "Engine: block still depends on parameters (bind theta first)"

let model_steps settings duration = max 2 (int_of_float (duration /. settings.Grape.dt))

let model_search c =
  let width = Circuit.n_qubits c in
  let duration = Pulse_model.block_duration c in
  let steps = model_steps Grape.fast_settings (Float.max duration 1.0) in
  let iters =
    Latency_model.probes_per_search * Latency_model.default_iterations width
  in
  { duration_ns = duration;
    search_cost =
      { grape_runs = Latency_model.probes_per_search;
        grape_iterations = iters;
        seconds =
          float_of_int iters
          *. Latency_model.seconds_per_iteration ~width ~steps };
    fidelity = None }

let numeric_search cfg c =
  let width = Circuit.n_qubits c in
  let sys = cfg.system_for width in
  let target = Circuit.unitary c in
  let upper = Float.max (Gate_times.circuit_duration c) (4.0 *. cfg.settings.Grape.dt) in
  match Grape.minimal_time ~settings:cfg.settings ~upper_bound:upper sys ~target with
  | Some s ->
    { duration_ns = s.minimal.total_time;
      search_cost =
        { grape_runs = List.length s.probes;
          grape_iterations = s.grape_iterations_total;
          seconds =
            (* Sum of per-probe wall time is not retained; the minimal
               probe's rate scaled by total iterations is a faithful
               estimate. *)
            (if s.minimal.iterations > 0 then
               s.minimal.wall_time_s /. float_of_int s.minimal.iterations
               *. float_of_int s.grape_iterations_total
             else s.minimal.wall_time_s) };
      fidelity = Some s.minimal.fidelity }
  | None ->
    (* GRAPE could not beat the lookup table within budget: fall back to
       the gate-based duration (always realizable by concatenation). *)
    { duration_ns = Gate_times.circuit_duration c;
      search_cost = zero_cost;
      fidelity = None }

let search t c =
  require_bound c;
  if Circuit.length c = 0 then
    { duration_ns = 0.0; search_cost = zero_cost; fidelity = None }
  else
    match t with
    | Model -> model_search c
    | Numeric cfg ->
      let key = block_key c in
      (match Hashtbl.find_opt cfg.cache key with
      | Some r -> r
      | None ->
        let r = numeric_search cfg c in
        Hashtbl.replace cfg.cache key r;
        r)

let tuned_run_cost t c ~duration =
  require_bound c;
  let width = Circuit.n_qubits c in
  match t with
  | Model ->
    let iters =
      float_of_int (Latency_model.default_iterations width)
      /. Latency_model.tuning_speedup width
    in
    let steps = model_steps Grape.fast_settings (Float.max duration 1.0) in
    { grape_runs = 1;
      grape_iterations = int_of_float iters;
      seconds = iters *. Latency_model.seconds_per_iteration ~width ~steps }
  | Numeric cfg ->
    let sys = cfg.system_for width in
    let target = Circuit.unitary c in
    let r = Grape.optimize ~settings:cfg.settings sys ~target ~total_time:duration in
    { grape_runs = 1; grape_iterations = r.iterations; seconds = r.wall_time_s }

let hyperopt_cost t c ~duration =
  require_bound c;
  let width = Circuit.n_qubits c in
  match t with
  | Model ->
    let iters =
      Latency_model.hyperopt_grid_evals * Latency_model.default_iterations width
    in
    let steps = model_steps Grape.fast_settings (Float.max duration 1.0) in
    { grape_runs = Latency_model.hyperopt_grid_evals;
      grape_iterations = iters;
      seconds =
        float_of_int iters *. Latency_model.seconds_per_iteration ~width ~steps }
  | Numeric cfg ->
    let sys = cfg.system_for width in
    let t0 = Sys.time () in
    let obj =
      { Hyperopt.system = sys;
        (* The block is already bound; hyperopt probes perturb nothing, so
           reuse the same target for each probe angle. *)
        target_of = (fun _ -> Circuit.unitary c);
        total_time = duration;
        settings = cfg.settings }
    in
    let lr_grid = Pqc_util.Stats.logspace (-1.0) 0.3 4 in
    let score = Hyperopt.grid_search ~lr_grid ~decay_grid:[| 0.998; 1.0 |]
        ~angles:[| 1.0 |] obj
    in
    { grape_runs = 8;
      grape_iterations = int_of_float (8.0 *. score.Hyperopt.iterations);
      seconds = Sys.time () -. t0 }
