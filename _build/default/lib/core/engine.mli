module Circuit = Pqc_quantum.Circuit
module Grape = Pqc_grape.Grape
module Hamiltonian = Pqc_grape.Hamiltonian
(** Pulse-duration engine: how strategies obtain the minimal GRAPE pulse
    duration (and compilation cost) of a block.

    [Model] prices blocks with the calibrated {!Pulse_model} and
    {!Latency_model} — instant, used for the full benchmark sweeps.
    [Numeric] runs the real {!Pqc_grape.Grape} optimizer — the ground
    truth, tractable on small blocks; it is what validates the model
    (EXPERIMENTS.md).  Results are memoized per bound block. *)

type cost = { grape_runs : int; grape_iterations : int; seconds : float }
(** Classical compilation work: optimize calls, total optimizer
    iterations, and (measured or modelled) wall-clock seconds. *)

val zero_cost : cost
val add_cost : cost -> cost -> cost

type block_result = {
  duration_ns : float;  (** Minimal pulse duration found/modelled. *)
  search_cost : cost;  (** Full minimal-time search, default hyperparams. *)
  fidelity : float option;  (** Achieved fidelity ([Numeric] only). *)
}

type t

val model : t
(** The calibrated analytic engine. *)

val numeric :
  ?settings:Grape.settings -> ?system_for:(int -> Hamiltonian.t) -> unit -> t
(** The real GRAPE engine.  [settings] default to {!Grape.fast_settings};
    [system_for] maps block width to a system Hamiltonian (default: gmon
    on a line). *)

val is_numeric : t -> bool

val search : t -> Circuit.t -> block_result
(** Minimal pulse duration of a parameter-free block (width <= 4, operands
    of two-qubit gates adjacent under the engine's topology). *)

val tuned_run_cost : t -> Circuit.t -> duration:float -> cost
(** Cost of one GRAPE run at a known duration with per-slice tuned
    hyperparameters — flexible partial compilation's per-iteration work. *)

val hyperopt_cost : t -> Circuit.t -> duration:float -> cost
(** Offline hyperparameter-tuning cost for one slice (grid search). *)
