module Pulse = Pqc_pulse.Pulse

type job = { label : string; qubits : int list; duration : float }

let makespan ~n jobs =
  let free = Array.make n 0.0 in
  List.fold_left
    (fun acc job ->
      let start = List.fold_left (fun t q -> Float.max t free.(q)) 0.0 job.qubits in
      let finish = start +. job.duration in
      List.iter (fun q -> free.(q) <- finish) job.qubits;
      Float.max acc finish)
    0.0 jobs

type compiled = {
  strategy : string;
  duration_ns : float;
  precompute : Engine.cost;
  per_iteration : Engine.cost;
  pulse : Pulse.t;
}

let speedup ~baseline c = baseline.duration_ns /. c.duration_ns
