lib/core/engine.ml: Array Buffer Float Hashtbl Latency_model List Pqc_grape Pqc_hyperopt Pqc_pulse Pqc_quantum Pqc_util Printf Pulse_model Sys
