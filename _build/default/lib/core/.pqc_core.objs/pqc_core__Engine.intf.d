lib/core/engine.mli: Pqc_grape Pqc_quantum
