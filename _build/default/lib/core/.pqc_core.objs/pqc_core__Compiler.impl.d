lib/core/compiler.ml: Array Engine Float List Pqc_pulse Pqc_quantum Pqc_transpile Printf Strategy String
