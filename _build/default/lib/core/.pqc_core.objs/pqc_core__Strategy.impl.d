lib/core/strategy.ml: Array Engine Float List Pqc_pulse
