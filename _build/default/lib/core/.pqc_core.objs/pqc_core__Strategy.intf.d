lib/core/strategy.mli: Engine Pqc_pulse
