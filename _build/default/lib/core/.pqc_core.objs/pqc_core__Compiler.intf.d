lib/core/compiler.mli: Engine Pqc_quantum Pqc_transpile Strategy
