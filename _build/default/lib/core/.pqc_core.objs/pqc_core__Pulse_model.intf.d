lib/core/pulse_model.mli: Pqc_quantum
