lib/core/latency_model.mli:
