lib/core/latency_model.ml:
