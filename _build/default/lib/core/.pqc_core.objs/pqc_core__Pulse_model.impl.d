lib/core/pulse_model.ml: Array Float Hashtbl Pqc_pulse Pqc_quantum Printf
