(** Dense complex matrices over flat float arrays.

    Storage is row-major with interleaved real/imaginary parts, which keeps
    the GRAPE inner loops (matrix products and trace inner products on
    2^n-dimensional unitaries) allocation-free and cache-friendly.  All
    dimensions are small (at most 81 = 3^4 for qutrit blocks), so kernels are
    straightforward triple loops; no blocking is needed. *)

type t

val rows : t -> int
val cols : t -> int

val create : int -> int -> t
(** [create r c] is the [r] x [c] zero matrix. *)

val identity : int -> t

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Copy contents; dimensions must match. *)

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val of_array : Complex.t array array -> t
(** Build from a rectangular array of rows. *)

val to_array : t -> Complex.t array array

val dims_equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b] stores [a + b] in [dst]; aliasing with [a]/[b] is
    allowed. *)

val scale : Complex.t -> t -> t

val scale_into : dst:t -> Complex.t -> t -> unit
(** [scale_into ~dst z a] stores [z * a] in [dst]; [dst == a] is allowed. *)

val axpy : alpha:Complex.t -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] accumulates [y <- y + alpha * x]. *)

val mul : t -> t -> t
(** Matrix product (allocates the result). *)

val mul_into : dst:t -> t -> t -> unit
(** [mul_into ~dst a b] stores [a * b] in [dst].  [dst] must not alias [a] or
    [b]. *)

val dagger : t -> t
(** Conjugate transpose. *)

val dagger_into : dst:t -> t -> unit
(** [dst] must not alias the argument. *)

val transpose : t -> t

val conj : t -> t

val kron : t -> t -> t
(** Kronecker (tensor) product. *)

val trace : t -> Complex.t

val trace_of_product : t -> t -> Complex.t
(** [trace_of_product a b] is Tr(a b) computed entrywise in O(n^2), without
    forming the product. *)

val inner : t -> t -> Complex.t
(** [inner a b] is the Hilbert–Schmidt inner product Tr(a† b), computed
    without forming a†. *)

val frobenius_norm : t -> float

val one_norm : t -> float
(** Maximum absolute column sum; used to pick the expm scaling power. *)

val max_abs_diff : t -> t -> float
(** Entrywise max |a_ij - b_ij|; the metric used in approximate-equality
    tests. *)

val is_unitary : ?tol:float -> t -> bool
(** [is_unitary m] checks ||m† m - I||_max <= tol (default 1e-9). *)

val apply : t -> Cvec.t -> Cvec.t
(** Matrix-vector product. *)

val random_hermitian : Pqc_util.Rng.t -> int -> t
(** Random Hermitian matrix with independent Gaussian entries; handy for
    property tests of the exponential. *)

val pp : Format.formatter -> t -> unit
