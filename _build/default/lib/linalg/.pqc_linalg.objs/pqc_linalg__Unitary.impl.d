lib/linalg/unitary.ml: Cmat Complex
