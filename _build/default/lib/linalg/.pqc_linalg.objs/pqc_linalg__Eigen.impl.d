lib/linalg/eigen.ml: Array Cmat Complex Fun
