lib/linalg/cvec.mli: Complex
