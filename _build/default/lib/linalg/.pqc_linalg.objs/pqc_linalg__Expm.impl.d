lib/linalg/expm.ml: Cmat Complex Float
