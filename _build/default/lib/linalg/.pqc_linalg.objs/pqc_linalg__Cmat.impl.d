lib/linalg/cmat.ml: Array Complex Cvec Format Pqc_util
