lib/linalg/expm.mli: Cmat
