lib/linalg/unitary.mli: Cmat
