lib/linalg/eigen.mli: Cmat
