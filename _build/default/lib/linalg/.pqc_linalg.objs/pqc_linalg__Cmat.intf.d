lib/linalg/cmat.mli: Complex Cvec Format Pqc_util
