let trace_fidelity ~target u =
  assert (Cmat.rows target = Cmat.cols target);
  assert (Cmat.dims_equal target u);
  let d = float_of_int (Cmat.rows target) in
  let overlap = Cmat.inner target u in
  Complex.norm2 overlap /. (d *. d)

let infidelity ~target u = 1.0 -. trace_fidelity ~target u

let equal_up_to_phase ?(tol = 1e-7) a b = infidelity ~target:a b <= tol
