(** Fidelity measures between unitaries.

    GRAPE's figure of merit is the (global-phase-invariant) trace fidelity
    F(U, V) = |Tr(U† V)|^2 / d^2, which is 1 exactly when V = e^{i phi} U. *)

val trace_fidelity : target:Cmat.t -> Cmat.t -> float
(** [trace_fidelity ~target u] in [0, 1]; both must be square and of equal
    dimension. *)

val infidelity : target:Cmat.t -> Cmat.t -> float
(** [1 - trace_fidelity]. *)

val equal_up_to_phase : ?tol:float -> Cmat.t -> Cmat.t -> bool
(** True when the two unitaries differ only by a global phase, to within
    [tol] (default 1e-7) in infidelity. *)
