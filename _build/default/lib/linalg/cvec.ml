type t = { n : int; d : float array }

let dim v = v.n

let create n = { n; d = Array.make (2 * n) 0.0 }

let basis n k =
  assert (k >= 0 && k < n);
  let v = create n in
  v.d.(2 * k) <- 1.0;
  v

let copy v = { v with d = Array.copy v.d }

let get v k = { Complex.re = v.d.(2 * k); im = v.d.((2 * k) + 1) }

let set v k (z : Complex.t) =
  v.d.(2 * k) <- z.re;
  v.d.((2 * k) + 1) <- z.im

let of_array a =
  let v = create (Array.length a) in
  Array.iteri (fun k z -> set v k z) a;
  v

let to_array v = Array.init v.n (get v)

let dot a b =
  assert (a.n = b.n);
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to a.n - 1 do
    let are = a.d.(2 * k) and aim = a.d.((2 * k) + 1) in
    let bre = b.d.(2 * k) and bim = b.d.((2 * k) + 1) in
    re := !re +. ((are *. bre) +. (aim *. bim));
    im := !im +. ((are *. bim) -. (aim *. bre))
  done;
  { Complex.re = !re; im = !im }

let norm v = sqrt (dot v v).re

let scale (z : Complex.t) v =
  let out = create v.n in
  for k = 0 to v.n - 1 do
    set out k (Complex.mul z (get v k))
  done;
  out

let normalize v =
  let n = norm v in
  if n = 0.0 then invalid_arg "Cvec.normalize: zero vector";
  scale { Complex.re = 1.0 /. n; im = 0.0 } v

let add a b =
  assert (a.n = b.n);
  let out = create a.n in
  for k = 0 to Array.length a.d - 1 do
    out.d.(k) <- a.d.(k) +. b.d.(k)
  done;
  out

let max_abs_diff a b =
  assert (a.n = b.n);
  let best = ref 0.0 in
  for k = 0 to a.n - 1 do
    let m = Complex.norm (Complex.sub (get a k) (get b k)) in
    if m > !best then best := m
  done;
  !best

let probability v k =
  let re = v.d.(2 * k) and im = v.d.((2 * k) + 1) in
  (re *. re) +. (im *. im)

let unsafe_data v = v.d
