type ws = {
  n : int;
  scaled : Cmat.t; (* A / 2^s *)
  term : Cmat.t; (* current Taylor term *)
  term' : Cmat.t; (* next Taylor term scratch *)
  acc : Cmat.t; (* Taylor partial sum *)
  sq : Cmat.t; (* squaring scratch *)
}

let make_ws n =
  { n; scaled = Cmat.create n n; term = Cmat.create n n; term' = Cmat.create n n;
    acc = Cmat.create n n; sq = Cmat.create n n }

(* With the norm scaled below 1/2, a degree-13 Taylor truncation has error
   bounded by (1/2)^14 / 14! ~ 7e-16, i.e. machine precision. *)
let taylor_order = 13

let expm_into ws ~dst a =
  assert (Cmat.rows a = ws.n && Cmat.cols a = ws.n);
  assert (Cmat.rows dst = ws.n && Cmat.cols dst = ws.n);
  let norm = Cmat.one_norm a in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (ceil (log (norm /. 0.5) /. log 2.0))
  in
  let inv = Float.ldexp 1.0 (-s) in
  Cmat.scale_into ~dst:ws.scaled { Complex.re = inv; im = 0.0 } a;
  (* Taylor: acc = I + B + B^2/2! + ... *)
  Cmat.blit ~src:(Cmat.identity ws.n) ~dst:ws.acc;
  Cmat.blit ~src:(Cmat.identity ws.n) ~dst:ws.term;
  for k = 1 to taylor_order do
    Cmat.mul_into ~dst:ws.term' ws.term ws.scaled;
    Cmat.scale_into ~dst:ws.term { Complex.re = 1.0 /. float_of_int k; im = 0.0 } ws.term';
    Cmat.axpy ~alpha:Complex.one ~x:ws.term ~y:ws.acc
  done;
  (* Undo the scaling: square s times. *)
  Cmat.blit ~src:ws.acc ~dst:dst;
  for _ = 1 to s do
    Cmat.mul_into ~dst:ws.sq dst dst;
    Cmat.blit ~src:ws.sq ~dst:dst
  done

let expm a =
  let n = Cmat.rows a in
  assert (n = Cmat.cols a);
  let ws = make_ws n in
  let dst = Cmat.create n n in
  expm_into ws ~dst a;
  dst

let expm_i_hermitian ?(t = 1.0) h =
  expm (Cmat.scale { Complex.re = 0.0; im = -.t } h)
