(** Hermitian eigendecomposition by the cyclic Jacobi method with complex
    Givens rotations.

    Used for exact ground-state energies of small molecular Hamiltonians
    and for spectral sanity checks; O(n^3) per sweep, intended for the
    dimensions this library works at (n <= ~256). *)

val hermitian : ?tol:float -> ?max_sweeps:int -> Cmat.t -> float array * Cmat.t
(** [hermitian a] returns [(eigenvalues, eigenvectors)] of a Hermitian
    matrix: eigenvalues ascending, eigenvector k in column k, satisfying
    a v_k = lambda_k v_k (property-tested).  [tol] (default 1e-12) bounds
    the final off-diagonal magnitude; [max_sweeps] defaults to 50.
    Raises [Invalid_argument] on non-square input; Hermiticity is the
    caller's obligation (the strictly lower triangle is ignored). *)

val smallest_eigenvalue : Cmat.t -> float
(** Convenience wrapper returning only the ground eigenvalue. *)
