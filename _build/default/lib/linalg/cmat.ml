type t = { r : int; c : int; d : float array }
(* Row-major, interleaved: entry (i, j) has real part at d.(2*(i*c + j)) and
   imaginary part at the following index. *)

let rows m = m.r
let cols m = m.c

let create r c = { r; c; d = Array.make (2 * r * c) 0.0 }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.d.(2 * ((i * n) + i)) <- 1.0
  done;
  m

let copy m = { m with d = Array.copy m.d }

let dims_equal a b = a.r = b.r && a.c = b.c

let blit ~src ~dst =
  assert (dims_equal src dst);
  Array.blit src.d 0 dst.d 0 (Array.length src.d)

let get m i j =
  let k = 2 * ((i * m.c) + j) in
  { Complex.re = m.d.(k); im = m.d.(k + 1) }

let set m i j (z : Complex.t) =
  let k = 2 * ((i * m.c) + j) in
  m.d.(k) <- z.re;
  m.d.(k + 1) <- z.im

let of_array a =
  let r = Array.length a in
  assert (r > 0);
  let c = Array.length a.(0) in
  let m = create r c in
  for i = 0 to r - 1 do
    assert (Array.length a.(i) = c);
    for j = 0 to c - 1 do
      set m i j a.(i).(j)
    done
  done;
  m

let to_array m = Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let add_into ~dst a b =
  assert (dims_equal a b && dims_equal a dst);
  for k = 0 to Array.length a.d - 1 do
    dst.d.(k) <- a.d.(k) +. b.d.(k)
  done

let add a b =
  let dst = create a.r a.c in
  add_into ~dst a b;
  dst

let sub a b =
  assert (dims_equal a b);
  let dst = create a.r a.c in
  for k = 0 to Array.length a.d - 1 do
    dst.d.(k) <- a.d.(k) -. b.d.(k)
  done;
  dst

let scale_into ~dst (z : Complex.t) a =
  assert (dims_equal a dst);
  for k = 0 to (Array.length a.d / 2) - 1 do
    let re = a.d.(2 * k) and im = a.d.((2 * k) + 1) in
    dst.d.(2 * k) <- (z.re *. re) -. (z.im *. im);
    dst.d.((2 * k) + 1) <- (z.re *. im) +. (z.im *. re)
  done

let scale z a =
  let dst = create a.r a.c in
  scale_into ~dst z a;
  dst

let axpy ~alpha:(z : Complex.t) ~x ~y =
  assert (dims_equal x y);
  for k = 0 to (Array.length x.d / 2) - 1 do
    let re = x.d.(2 * k) and im = x.d.((2 * k) + 1) in
    y.d.(2 * k) <- y.d.(2 * k) +. ((z.re *. re) -. (z.im *. im));
    y.d.((2 * k) + 1) <- y.d.((2 * k) + 1) +. ((z.re *. im) +. (z.im *. re))
  done

let mul_into ~dst a b =
  assert (a.c = b.r && dst.r = a.r && dst.c = b.c);
  assert (dst != a && dst != b);
  let n = a.r and p = a.c and q = b.c in
  let ad = a.d and bd = b.d and dd = dst.d in
  for i = 0 to n - 1 do
    let ai = i * p and di = i * q in
    for j = 0 to q - 1 do
      let sre = ref 0.0 and sim = ref 0.0 in
      for k = 0 to p - 1 do
        let ka = 2 * (ai + k) and kb = 2 * ((k * q) + j) in
        let are = ad.(ka) and aim = ad.(ka + 1) in
        let bre = bd.(kb) and bim = bd.(kb + 1) in
        sre := !sre +. ((are *. bre) -. (aim *. bim));
        sim := !sim +. ((are *. bim) +. (aim *. bre))
      done;
      let kd = 2 * (di + j) in
      dd.(kd) <- !sre;
      dd.(kd + 1) <- !sim
    done
  done

let mul a b =
  let dst = create a.r b.c in
  mul_into ~dst a b;
  dst

let dagger_into ~dst a =
  assert (dst.r = a.c && dst.c = a.r && dst != a);
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      let ka = 2 * ((i * a.c) + j) and kd = 2 * ((j * dst.c) + i) in
      dst.d.(kd) <- a.d.(ka);
      dst.d.(kd + 1) <- -.a.d.(ka + 1)
    done
  done

let dagger a =
  let dst = create a.c a.r in
  dagger_into ~dst a;
  dst

let transpose a =
  let dst = create a.c a.r in
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      set dst j i (get a i j)
    done
  done;
  dst

let conj a =
  let dst = copy a in
  for k = 0 to (Array.length a.d / 2) - 1 do
    dst.d.((2 * k) + 1) <- -.dst.d.((2 * k) + 1)
  done;
  dst

let kron a b =
  let dst = create (a.r * b.r) (a.c * b.c) in
  for ia = 0 to a.r - 1 do
    for ja = 0 to a.c - 1 do
      let za = get a ia ja in
      if za.re <> 0.0 || za.im <> 0.0 then
        for ib = 0 to b.r - 1 do
          for jb = 0 to b.c - 1 do
            let zb = get b ib jb in
            set dst ((ia * b.r) + ib) ((ja * b.c) + jb) (Complex.mul za zb)
          done
        done
    done
  done;
  dst

let trace m =
  assert (m.r = m.c);
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to m.r - 1 do
    let k = 2 * ((i * m.c) + i) in
    re := !re +. m.d.(k);
    im := !im +. m.d.(k + 1)
  done;
  { Complex.re = !re; im = !im }

let trace_of_product a b =
  assert (a.c = b.r && b.c = a.r);
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      let ka = 2 * ((i * a.c) + j) and kb = 2 * ((j * b.c) + i) in
      let are = a.d.(ka) and aim = a.d.(ka + 1) in
      let bre = b.d.(kb) and bim = b.d.(kb + 1) in
      re := !re +. ((are *. bre) -. (aim *. bim));
      im := !im +. ((are *. bim) +. (aim *. bre))
    done
  done;
  { Complex.re = !re; im = !im }

let inner a b =
  assert (dims_equal a b);
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to (Array.length a.d / 2) - 1 do
    let are = a.d.(2 * k) and aim = a.d.((2 * k) + 1) in
    let bre = b.d.(2 * k) and bim = b.d.((2 * k) + 1) in
    (* conj(a) * b *)
    re := !re +. ((are *. bre) +. (aim *. bim));
    im := !im +. ((are *. bim) -. (aim *. bre))
  done;
  { Complex.re = !re; im = !im }

let frobenius_norm m =
  let s = ref 0.0 in
  for k = 0 to Array.length m.d - 1 do
    s := !s +. (m.d.(k) *. m.d.(k))
  done;
  sqrt !s

let one_norm m =
  let best = ref 0.0 in
  for j = 0 to m.c - 1 do
    let s = ref 0.0 in
    for i = 0 to m.r - 1 do
      let k = 2 * ((i * m.c) + j) in
      s := !s +. sqrt ((m.d.(k) *. m.d.(k)) +. (m.d.(k + 1) *. m.d.(k + 1)))
    done;
    if !s > !best then best := !s
  done;
  !best

let max_abs_diff a b =
  assert (dims_equal a b);
  let best = ref 0.0 in
  for k = 0 to (Array.length a.d / 2) - 1 do
    let dre = a.d.(2 * k) -. b.d.(2 * k) in
    let dim = a.d.((2 * k) + 1) -. b.d.((2 * k) + 1) in
    let m = sqrt ((dre *. dre) +. (dim *. dim)) in
    if m > !best then best := m
  done;
  !best

let is_unitary ?(tol = 1e-9) m =
  m.r = m.c && max_abs_diff (mul (dagger m) m) (identity m.r) <= tol

let apply m v =
  assert (m.c = Cvec.dim v);
  let out = Cvec.create m.r in
  for i = 0 to m.r - 1 do
    let s = ref Complex.zero in
    for j = 0 to m.c - 1 do
      s := Complex.add !s (Complex.mul (get m i j) (Cvec.get v j))
    done;
    Cvec.set out i !s
  done;
  out

let random_hermitian rng n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i { Complex.re = Pqc_util.Rng.gaussian rng; im = 0.0 };
    for j = i + 1 to n - 1 do
      let z = { Complex.re = Pqc_util.Rng.gaussian rng; im = Pqc_util.Rng.gaussian rng } in
      set m i j z;
      set m j i (Complex.conj z)
    done
  done;
  m

let pp fmt m =
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      let z = get m i j in
      Format.fprintf fmt "%+.3f%+.3fi " z.re z.im
    done;
    Format.pp_print_newline fmt ()
  done
