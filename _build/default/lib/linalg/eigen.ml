(* Cyclic Jacobi for Hermitian matrices.  Each rotation zeroes one
   off-diagonal pair (p, q) by conjugating with the unitary

       J = I  with  J_pp = c,  J_pq = -conj(s),  J_qp = s,  J_qq = c

   where s carries the phase of a_pq.  Off-diagonal mass strictly
   decreases, giving the usual quadratic convergence over sweeps. *)

(* Real scalar times complex. *)
let rs c (z : Complex.t) = { Complex.re = c *. z.re; im = c *. z.im }

let rotate a v n p q =
  let apq = Cmat.get a p q in
  let norm_apq = Complex.norm apq in
  if norm_apq > 0.0 then begin
    let app = (Cmat.get a p p).re and aqq = (Cmat.get a q q).re in
    (* Angle of the real 2x2 problem after factoring out the phase. *)
    (* Zeroing (J† A J)_pq requires tan(2 theta) = 2|a_pq| / (a_pp - a_qq). *)
    let theta = 0.5 *. atan2 (2.0 *. norm_apq) (app -. aqq) in
    let c = cos theta and s_mag = sin theta in
    (* Phase of a_pq distributes onto the rotation. *)
    let phase = Complex.div apq { Complex.re = norm_apq; im = 0.0 } in
    let s = Complex.mul { Complex.re = s_mag; im = 0.0 } phase in
    let s_conj = Complex.conj s in
    (* Update rows/columns p and q of [a] (Hermitian, so mirror), and
       accumulate into the eigenvector matrix [v]. *)
    for k = 0 to n - 1 do
      let akp = Cmat.get a k p and akq = Cmat.get a k q in
      let new_kp = Complex.add (rs c akp) (Complex.mul s_conj akq) in
      let new_kq =
        Complex.sub (rs c akq) (Complex.mul s akp)
      in
      Cmat.set a k p new_kp;
      Cmat.set a k q new_kq
    done;
    for k = 0 to n - 1 do
      let apk = Cmat.get a p k and aqk = Cmat.get a q k in
      let new_pk = Complex.add (rs c apk) (Complex.mul s aqk) in
      let new_qk = Complex.sub (rs c aqk) (Complex.mul s_conj apk) in
      Cmat.set a p k new_pk;
      Cmat.set a q k new_qk
    done;
    for k = 0 to n - 1 do
      let vkp = Cmat.get v k p and vkq = Cmat.get v k q in
      let new_kp = Complex.add (rs c vkp) (Complex.mul s_conj vkq) in
      let new_kq = Complex.sub (rs c vkq) (Complex.mul s vkp) in
      Cmat.set v k p new_kp;
      Cmat.set v k q new_kq
    done
  end

let off_diagonal_norm a n =
  let s = ref 0.0 in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      s := !s +. Complex.norm2 (Cmat.get a p q)
    done
  done;
  sqrt !s

let hermitian ?(tol = 1e-12) ?(max_sweeps = 50) input =
  let n = Cmat.rows input in
  if n <> Cmat.cols input then invalid_arg "Eigen.hermitian: square matrix required";
  (* Work on a symmetrized copy: the upper triangle is trusted, the lower
     mirrored, keeping the iteration exactly Hermitian. *)
  let a = Cmat.create n n in
  for p = 0 to n - 1 do
    Cmat.set a p p { Complex.re = (Cmat.get input p p).re; im = 0.0 };
    for q = p + 1 to n - 1 do
      let z = Cmat.get input p q in
      Cmat.set a p q z;
      Cmat.set a q p (Complex.conj z)
    done
  done;
  let v = Cmat.identity n in
  let sweeps = ref 0 in
  while off_diagonal_norm a n > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        rotate a v n p q
      done
    done
  done;
  (* Sort ascending, permuting eigenvector columns along. *)
  let order = Array.init n Fun.id in
  let eigenvalue k = (Cmat.get a k k).re in
  Array.sort (fun i j -> compare (eigenvalue i) (eigenvalue j)) order;
  let values = Array.map eigenvalue order in
  let vectors = Cmat.create n n in
  Array.iteri
    (fun dst src ->
      for k = 0 to n - 1 do
        Cmat.set vectors k dst (Cmat.get v k src)
      done)
    order;
  (values, vectors)

let smallest_eigenvalue a =
  let values, _ = hermitian a in
  values.(0)
