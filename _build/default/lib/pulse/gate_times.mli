module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
(** The gate-to-pulse-duration lookup table (paper Table 1).

    Gate-based compilation maps every gate to a precompiled control pulse; a
    circuit's runtime is the critical path through these per-gate durations.
    The table values are the paper's, derived for the gmon system of
    Appendix A (e.g. Rx(pi) takes pi / (2 * 2pi*0.1 GHz) = 2.5 ns at the
    maximum charge-drive amplitude; Z rotations are 15x faster thanks to the
    stronger flux drive — the control-field asymmetry GRAPE exploits).

    Gates outside the paper's table (Ry, phase gates, CZ, iSWAP) get
    durations consistent with their standard decompositions into the tabled
    set. *)

val rz : float
(** 0.4 ns — full-angle Z rotation. *)

val rx : float
(** 2.5 ns — full-angle X rotation. *)

val h : float
(** 1.4 ns. *)

val cx : float
(** 3.8 ns. *)

val swap : float
(** 7.4 ns. *)

val duration : Gate.t -> float
(** Pulse duration of one gate.  Parametrized rotations use the
    full-rotation durations above regardless of angle: the lookup table is
    static, which is exactly the inefficiency ("fractional gates") that
    GRAPE exploits. *)

val instr_duration : Circuit.instr -> float

val circuit_duration : Circuit.t -> float
(** Critical path of the parallel-scheduled circuit under this table — the
    paper's "gate-based runtime". *)

val table : (string * float) list
(** The Table 1 rows, for the benchmark harness. *)
