let default_t2_ns = 20_000.0

let success_probability ?(t2_ns = default_t2_ns) ~n_qubits duration =
  if duration < 0.0 then invalid_arg "Decoherence: negative duration";
  exp (-.float_of_int n_qubits *. duration /. t2_ns)

let advantage ?(t2_ns = default_t2_ns) ~n_qubits ~baseline_ns duration =
  success_probability ~t2_ns ~n_qubits duration
  /. success_probability ~t2_ns ~n_qubits baseline_ns
