module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Schedule = Pqc_transpile.Schedule

let rz = 0.4
let rx = 2.5
let h = 1.4
let cx = 3.8
let swap = 7.4

(* iSWAP is the native gmon interaction: a pi/2 coupler pulse at the maximum
   coupling strength |g| = 2pi * 50 MHz lasts (pi/2) / (2pi*0.05 GHz) = 5 ns. *)
let iswap = 5.0

let duration = function
  | Gate.Rz _ | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg -> rz
  | Gate.Rx _ | Gate.X | Gate.Y -> rx
  (* Ry = Rz . Rx . Rz under the lookup table. *)
  | Gate.Ry _ -> rx +. (2.0 *. rz)
  | Gate.H -> h
  | Gate.CX -> cx
  (* CZ = H . CX . H on the target. *)
  | Gate.CZ -> cx +. (2.0 *. h)
  | Gate.Swap -> swap
  | Gate.ISwap -> iswap

let instr_duration (i : Circuit.instr) = duration i.gate

let circuit_duration c = Schedule.critical_path ~duration:instr_duration c

let table =
  [ ("Rz", rz); ("Rx", rx); ("H", h); ("CX", cx); ("SWAP", swap) ]
