lib/pulse/pulse.ml: Array Buffer Format Gate_times List Pqc_quantum Printf String
