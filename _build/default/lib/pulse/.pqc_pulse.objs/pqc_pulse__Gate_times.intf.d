lib/pulse/gate_times.mli: Pqc_quantum
