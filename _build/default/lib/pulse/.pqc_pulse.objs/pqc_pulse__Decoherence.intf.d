lib/pulse/decoherence.mli:
