lib/pulse/gate_times.ml: Pqc_quantum Pqc_transpile
