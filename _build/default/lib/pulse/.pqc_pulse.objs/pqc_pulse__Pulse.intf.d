lib/pulse/pulse.mli: Format Pqc_quantum
