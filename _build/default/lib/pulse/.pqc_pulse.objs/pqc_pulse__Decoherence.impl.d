lib/pulse/decoherence.ml:
