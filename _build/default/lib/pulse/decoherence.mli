(** Decoherence accounting.

    The paper's motivation for shorter pulses is not wall time: "fidelity
    decreases exponentially in time, with respect to the extremely short
    lifetimes of qubits ... 2-5x pulse speedups translate to an even bigger
    advantage in the success probability of a quantum circuit" (Section 1).
    This module turns pulse durations into that success-probability
    advantage under the standard exponential-decay model. *)

val default_t2_ns : float
(** 20 microseconds, a representative transmon dephasing time. *)

val success_probability : ?t2_ns:float -> n_qubits:int -> float -> float
(** [success_probability ~n_qubits duration] is exp(-n * duration / T2):
    each of the [n_qubits] qubits must survive the whole pulse. *)

val advantage :
  ?t2_ns:float -> n_qubits:int -> baseline_ns:float -> float -> float
(** [advantage ~n_qubits ~baseline_ns duration] is the success-probability
    ratio of the faster compilation over the baseline — the exponential
    amplification of a pulse speedup. *)
