module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit

type axis = AX | AY

let basis_in b q = function
  | AX -> Circuit.Builder.add b Gate.H [ q ]
  | AY -> Circuit.Builder.add b (Gate.Rx (Param.const (Float.pi /. 2.0))) [ q ]

let basis_out b q = function
  | AX -> Circuit.Builder.add b Gate.H [ q ]
  | AY -> Circuit.Builder.add b (Gate.Rx (Param.const (-.Float.pi /. 2.0))) [ q ]

let pauli_exponential ~n ~param support =
  (match support with
  | [] -> invalid_arg "Uccsd.pauli_exponential: empty support"
  | _ :: _ -> ());
  let qubits = List.map fst support in
  if List.length (List.sort_uniq compare qubits) <> List.length qubits then
    invalid_arg "Uccsd.pauli_exponential: duplicate support qubit";
  let lo = List.fold_left min (List.hd qubits) qubits in
  let hi = List.fold_left max (List.hd qubits) qubits in
  let b = Circuit.Builder.create n in
  List.iter (fun (q, ax) -> basis_in b q ax) support;
  (* Jordan-Wigner-style parity ladder across the whole [lo, hi] range. *)
  for q = lo to hi - 1 do
    Circuit.Builder.add b Gate.CX [ q; q + 1 ]
  done;
  Circuit.Builder.add b (Gate.Rz param) [ hi ];
  for q = hi - 1 downto lo do
    Circuit.Builder.add b Gate.CX [ q; q + 1 ]
  done;
  List.iter (fun (q, ax) -> basis_out b q ax) support;
  Circuit.Builder.to_circuit b

let concat_exponentials n circuits =
  let b = Circuit.Builder.create n in
  List.iter (Circuit.Builder.add_circuit b) circuits;
  Circuit.Builder.to_circuit b

let single_excitation ~n ~param_index (i, a) =
  let theta sign = Param.var ~scale:sign param_index in
  concat_exponentials n
    [ pauli_exponential ~n ~param:(theta 1.0) [ (i, AX); (a, AY) ];
      pauli_exponential ~n ~param:(theta (-1.0)) [ (i, AY); (a, AX) ] ]

(* The eight Pauli strings of a spin-conserving double excitation, with the
   standard alternating signs; all share one theta. *)
let double_strings =
  [ ([ AX; AX; AX; AY ], 1.0); ([ AX; AX; AY; AX ], 1.0);
    ([ AX; AY; AX; AX ], -1.0); ([ AY; AX; AX; AX ], -1.0);
    ([ AY; AY; AY; AX ], -1.0); ([ AY; AY; AX; AY ], -1.0);
    ([ AY; AX; AY; AY ], 1.0); ([ AX; AY; AY; AY ], 1.0) ]

let double_excitation ~n ~param_index (i, j, a, b) =
  let qs = [ i; j; a; b ] in
  if List.length (List.sort_uniq compare qs) = 4 then begin
    let blocks =
      List.map
        (fun (axes, sign) ->
          let support = List.combine qs axes in
          pauli_exponential ~n
            ~param:(Param.var ~scale:(0.25 *. sign) param_index)
            support)
        double_strings
    in
    concat_exponentials n blocks
  end
  else
    (* Narrow-molecule fallback (H2): the paired two-qubit double. *)
    concat_exponentials n
      [ pauli_exponential ~n ~param:(Param.var param_index) [ (i, AX); (b, AY) ];
        pauli_exponential ~n
          ~param:(Param.var ~scale:(-1.0) param_index)
          [ (i, AY); (b, AX) ] ]

(* Deterministic enumeration of k-combinations of [0, n), lexicographic,
   cycling when the requested count exceeds C(n, k). *)
let combinations n k =
  let rec go start remaining =
    if remaining = 0 then [ [] ]
    else
      List.concat_map
        (fun q -> List.map (fun rest -> q :: rest) (go (q + 1) (remaining - 1)))
        (List.init (max 0 (n - start)) (fun i -> start + i))
  in
  go 0 k

let cycle_nth l k = List.nth l (k mod List.length l)

let ansatz (m : Molecule.t) =
  let n = m.n_qubits in
  let singles = combinations n 2 in
  let doubles = if n >= 4 then combinations n 4 else [] in
  let b = Circuit.Builder.create n in
  let param = ref 0 in
  for k = 0 to m.n_singles - 1 do
    match cycle_nth singles k with
    | [ i; a ] ->
      Circuit.Builder.add_circuit b (single_excitation ~n ~param_index:!param (i, a));
      incr param
    | _ -> assert false
  done;
  for k = 0 to m.n_doubles - 1 do
    (match doubles with
    | [] ->
      (* Width-2 molecule: paired double on the full register. *)
      Circuit.Builder.add_circuit b
        (double_excitation ~n ~param_index:!param (0, 0, 1, n - 1))
    | _ :: _ ->
      (match cycle_nth doubles k with
      | [ i; j; a; bq ] ->
        Circuit.Builder.add_circuit b
          (double_excitation ~n ~param_index:!param (i, j, a, bq))
      | _ -> assert false));
    incr param
  done;
  Circuit.Builder.to_circuit b
