(** The VQE benchmark molecules (paper Table 2).

    Widths and parameter counts match the paper exactly; the split into
    single and double excitations is synthetic (chosen so that
    singles + doubles = the paper's parameter count), since we generate
    UCCSD-{e structured} ansatz circuits rather than chemistry-accurate
    ones — see DESIGN.md's substitution table. *)

type t = {
  name : string;
  n_qubits : int;  (** Circuit width (Table 2). *)
  n_singles : int;  (** Single-excitation parameters. *)
  n_doubles : int;  (** Double-excitation parameters. *)
}

val n_params : t -> int
(** [n_singles + n_doubles]; matches Table 2's "# of Params". *)

val h2 : t
val lih : t
val beh2 : t
val nah : t
val h2o : t

val all : t list
(** The five benchmarks in Table 2 order. *)

val find : string -> t option
(** Case-insensitive lookup by name. *)
