type t = {
  name : string;
  n_qubits : int;
  n_singles : int;
  n_doubles : int;
}

let n_params m = m.n_singles + m.n_doubles

let h2 = { name = "H2"; n_qubits = 2; n_singles = 2; n_doubles = 1 }
let lih = { name = "LiH"; n_qubits = 4; n_singles = 4; n_doubles = 4 }
let beh2 = { name = "BeH2"; n_qubits = 6; n_singles = 6; n_doubles = 20 }
let nah = { name = "NaH"; n_qubits = 8; n_singles = 8; n_doubles = 16 }
let h2o = { name = "H2O"; n_qubits = 10; n_singles = 10; n_doubles = 82 }

let all = [ h2; lih; beh2; nah; h2o ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun m -> String.lowercase_ascii m.name = lower) all
