lib/vqe/molecule.mli:
