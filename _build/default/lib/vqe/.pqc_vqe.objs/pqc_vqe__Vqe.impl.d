lib/vqe/vqe.ml: Array List Pqc_quantum Pqc_util
