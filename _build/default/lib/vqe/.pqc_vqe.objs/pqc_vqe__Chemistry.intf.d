lib/vqe/chemistry.mli: Pqc_quantum
