lib/vqe/vqe.mli: Pqc_quantum
