lib/vqe/uccsd.mli: Molecule Pqc_quantum
