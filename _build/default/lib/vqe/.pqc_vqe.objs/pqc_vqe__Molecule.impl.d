lib/vqe/molecule.ml: List String
