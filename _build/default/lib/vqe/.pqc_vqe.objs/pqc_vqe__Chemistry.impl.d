lib/vqe/chemistry.ml: Array Complex Float List Pqc_linalg Pqc_quantum Pqc_util
