lib/vqe/uccsd.ml: Float List Molecule Pqc_quantum
