module Pauli = Pqc_quantum.Pauli
(** Qubit Hamiltonians for end-to-end VQE runs.

    We have no PySCF, so only H2 — whose 2-qubit reduced Hamiltonian
    coefficients are standard published values (O'Malley et al., PRX 2016,
    at the 0.735 A equilibrium bond length) — gets a chemistry-accurate
    operator.  Wider molecules use {!synthetic}, a seeded random 2-local
    Hamiltonian: partial compilation and the variational loop only care
    about the operator's structure, not its chemistry (see DESIGN.md). *)

val h2 : Pauli.t
(** The 2-qubit reduced H2 Hamiltonian (energies in Hartree). *)

val h2_exact_energy : float
(** Exact ground-state energy of {!h2} (dense diagonalization-free power
    iteration, precomputed): about -1.851 Ha. *)

val synthetic : seed:int -> n_qubits:int -> Pauli.t
(** Random field + coupling Hamiltonian
    sum_i h_i Z_i + sum_(i<i+1) J_i Z_i Z_{i+1} + sum_i g_i X_i with
    coefficients uniform in [-1, 1]. *)

val ground_energy : ?iters:int -> Pauli.t -> float
(** Smallest eigenvalue via shifted power iteration on the dense matrix
    (intended for small widths; asserts n <= 10). *)
