module Rng = Pqc_util.Rng
module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec
module Pauli = Pqc_quantum.Pauli

(* O'Malley et al., "Scalable quantum simulation of molecular energies",
   PRX 6, 031007 (2016), Table 1 at R = 0.735 A (BK-reduced 2-qubit form). *)
let h2 =
  Pauli.of_strings 2
    [ (-0.4804, "II"); (0.3435, "ZI"); (-0.4347, "IZ"); (0.5716, "ZZ");
      (0.0910, "XX"); (0.0910, "YY") ]

let synthetic ~seed ~n_qubits =
  let rng = Rng.create seed in
  let coeff () = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
  let site op q =
    let ops = Array.make n_qubits Pauli.I in
    ops.(q) <- op;
    (coeff (), ops)
  in
  let zz q =
    let ops = Array.make n_qubits Pauli.I in
    ops.(q) <- Pauli.Z;
    ops.(q + 1) <- Pauli.Z;
    (coeff (), ops)
  in
  Pauli.make n_qubits
    (List.init n_qubits (site Pauli.Z)
    @ List.init (n_qubits - 1) zz
    @ List.init n_qubits (site Pauli.X))

let ground_energy ?(iters = 3000) h =
  assert (h.Pauli.n_qubits <= 10);
  let dim = 1 lsl h.Pauli.n_qubits in
  let m = Pauli.matrix h in
  if h.Pauli.n_qubits <= 6 then
    (* Small widths: exact Jacobi diagonalization. *)
    Pqc_linalg.Eigen.smallest_eigenvalue m
  else begin
  (* Power iteration on (c I - H) converges to the smallest eigenvalue of H
     when c upper-bounds the spectrum; sum of |coefficients| is such a
     bound. *)
  let c =
    List.fold_left (fun acc t -> acc +. Float.abs t.Pauli.coeff) 0.0 h.Pauli.terms
  in
  let shifted = Cmat.sub (Cmat.scale { Complex.re = c; im = 0.0 } (Cmat.identity dim)) m in
  let v = ref (Cvec.of_array (Array.init dim (fun k ->
      { Complex.re = 1.0 /. sqrt (float_of_int dim) +. (0.01 *. float_of_int (k mod 3));
        im = 0.0 })))
  in
  v := Cvec.normalize !v;
  for _ = 1 to iters do
    v := Cvec.normalize (Cmat.apply shifted !v)
  done;
    (* Rayleigh quotient of H at the converged vector. *)
    (Cvec.dot !v (Cmat.apply m !v)).re
  end

let h2_exact_energy = ground_energy h2
