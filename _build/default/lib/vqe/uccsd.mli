module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
(** UCCSD-structured ansatz circuits.

    The trotterized Unitary Coupled Cluster Single-Double ansatz is a
    product of Pauli-string exponentials exp(-i theta_t / 2 P), one group
    of strings per excitation, all strings of an excitation sharing the
    same variational parameter theta_t.  Each exponential compiles to the
    textbook pattern: per-qubit basis changes into the string's X/Y bases,
    a CX ladder spanning the excitation's qubit range, Rz(theta) at the
    bottom, then the mirror image.

    Consequences the compiler exploits (and this generator reproduces):
    parameters appear in strictly increasing, contiguous order (parameter
    monotonicity, Section 7.1), and Rz(theta) gates are a small fraction
    (5-8%) of all gates, so strict partial compilation sees deep Fixed
    blocks (Section 6). *)

type axis = AX | AY
(** Basis of one qubit's factor in a Pauli string (Z factors arise only as
    ladder intermediaries and need no basis change). *)

val pauli_exponential :
  n:int -> param:Param.t -> (int * axis) list -> Circuit.t
(** [pauli_exponential ~n ~param support] builds exp(-i param/2 * P) where
    P has the given X/Y factors (distinct qubits, at least one).  The CX
    ladder runs through every qubit between the support's extremes,
    matching Jordan-Wigner-style strings. *)

val single_excitation : n:int -> param_index:int -> int * int -> Circuit.t
(** Two strings (XY - YX pattern) sharing theta_[param_index]. *)

val double_excitation :
  n:int -> param_index:int -> int * int * int * int -> Circuit.t
(** The eight-string double-excitation group sharing theta_[param_index]
    (falls back to the two-string paired form when the molecule is too
    narrow for four distinct qubits). *)

val ansatz : Molecule.t -> Circuit.t
(** Full UCCSD-structured ansatz: [n_singles] single excitations followed
    by [n_doubles] double excitations, parameter indices in circuit order
    (hence parameter-monotone); excitation supports enumerate qubit
    combinations deterministically. *)
