module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit

let shares_qubit (a : Circuit.instr) (b : Circuit.instr) =
  Array.exists (fun q -> Array.mem q b.qubits) a.qubits

let same_operands (a : Circuit.instr) (b : Circuit.instr) = a.qubits = b.qubits

let is_cx (i : Circuit.instr) = i.gate = Gate.CX

(* Structural commutation rules, used to slide a gate past intermediate gates
   when searching for a merge/cancellation partner.  Sound but deliberately
   incomplete: a [false] only costs optimization opportunities, never
   correctness. *)
let commutes (a : Circuit.instr) (b : Circuit.instr) =
  if not (shares_qubit a b) then true
  else if Gate.is_diagonal a.gate && Gate.is_diagonal b.gate then true
  else begin
    let diagonal_vs_cx d cx =
      (* A diagonal gate commutes with CX when it avoids the CX target. *)
      Gate.is_diagonal d.Circuit.gate && is_cx cx
      && not (Array.mem cx.Circuit.qubits.(1) d.Circuit.qubits)
    in
    let x_axis_vs_cx_target x cx =
      (* X-axis rotations on the target slide through the CX. *)
      is_cx cx
      && Array.length x.Circuit.qubits = 1
      && Gate.rotation_axis x.Circuit.gate = Some `X
      && x.Circuit.qubits.(0) = cx.Circuit.qubits.(1)
    in
    let cx_vs_cx () =
      (* Two CXs commute unless one's control is the other's target. *)
      is_cx a && is_cx b
      && a.qubits.(0) <> b.qubits.(1)
      && b.qubits.(0) <> a.qubits.(1)
    in
    let same_axis_1q () =
      Array.length a.qubits = 1 && same_operands a b
      &&
      match Gate.rotation_axis a.gate, Gate.rotation_axis b.gate with
      | Some ax1, Some ax2 -> ax1 = ax2
      | (None | Some _), _ -> false
    in
    diagonal_vs_cx a b || diagonal_vs_cx b a || x_axis_vs_cx_target a b
    || x_axis_vs_cx_target b a || cx_vs_cx () || same_axis_1q ()
  end

let angle_is_zero p =
  Param.is_const p
  &&
  let two_pi = 2.0 *. Float.pi in
  let r = Float.rem (Param.bind p [||]) two_pi in
  Float.abs r < 1e-12 || Float.abs (Float.abs r -. two_pi) < 1e-12

(* Try to combine a later gate [gi] into an earlier one [gj] on the same
   operands.  [`Merged g] replaces the earlier gate and deletes the later;
   [`Cancelled] deletes both; [`No] leaves them alone. *)
let combine (gj : Gate.t) (gi : Gate.t) =
  let merged_rotation mk pj pi =
    match Param.add pj pi with
    | None -> `No
    | Some p -> if angle_is_zero p then `Cancelled else `Merged (mk p)
  in
  match gj, gi with
  | Gate.Rx pj, Gate.Rx pi -> merged_rotation (fun p -> Gate.Rx p) pj pi
  | Gate.Ry pj, Gate.Ry pi -> merged_rotation (fun p -> Gate.Ry p) pj pi
  | Gate.Rz pj, Gate.Rz pi -> merged_rotation (fun p -> Gate.Rz p) pj pi
  | _ ->
    (match Gate.inverse gj with
    | Some inv when inv = gi -> `Cancelled
    | Some _ | None -> `No)

(* One peephole sweep.  Work on an array of surviving instruction slots; for
   each instruction, scan backwards over survivors, sliding past commuting
   gates, until a blocker or a combinable partner is found. *)
let sweep c =
  let ops = Circuit.instrs c in
  let alive = Array.map (fun i -> Some i) ops in
  let changed = ref false in
  let n = Array.length ops in
  for i = 0 to n - 1 do
    match alive.(i) with
    | None -> ()
    | Some instr_i ->
      let rec scan j =
        if j < 0 then ()
        else begin
          match alive.(j) with
          | None -> scan (j - 1)
          | Some instr_j ->
            if same_operands instr_j instr_i then begin
              match combine instr_j.gate instr_i.gate with
              | `Merged g ->
                alive.(j) <- Some { instr_j with gate = g };
                alive.(i) <- None;
                changed := true
              | `Cancelled ->
                alive.(j) <- None;
                alive.(i) <- None;
                changed := true
              | `No -> if commutes instr_j instr_i then scan (j - 1)
            end
            else if commutes instr_j instr_i then scan (j - 1)
        end
      in
      scan (i - 1)
  done;
  let survivors =
    Array.to_list alive |> List.filter_map Fun.id
    |> List.filter (fun (i : Circuit.instr) ->
           match Gate.param i.gate with
           | Some p -> not (angle_is_zero p)
           | None -> true)
  in
  let out = Circuit.of_instrs (Circuit.n_qubits c) survivors in
  (out, !changed)

let fixpoint pass ?(max_rounds = 20) c =
  let rec go c rounds =
    if rounds = 0 then c
    else begin
      let c', changed = pass c in
      if changed then go c' (rounds - 1) else c'
    end
  in
  go c max_rounds

let merge_rotations c = fixpoint sweep c
let cancel_inverses c = fixpoint sweep c

let drop_identities c =
  let keep (i : Circuit.instr) =
    match Gate.param i.gate with
    | Some p -> not (angle_is_zero p)
    | None -> true
  in
  Circuit.of_instrs (Circuit.n_qubits c)
    (List.filter keep (Array.to_list (Circuit.instrs c)))

let optimize ?(max_rounds = 20) c = fixpoint sweep ~max_rounds (drop_identities c)
