module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit

type result = {
  routed : Circuit.t;
  final_layout : int array;
  swaps_inserted : int;
}

let route topo c =
  let n_log = Circuit.n_qubits c in
  let n_phys = Topology.n_qubits topo in
  if n_phys < n_log then invalid_arg "Route: device too small";
  let phys_of = Array.init n_log Fun.id in
  (* Inverse placement over physical qubits; -1 marks an unused slot. *)
  let log_of = Array.make n_phys (-1) in
  Array.iteri (fun l p -> log_of.(p) <- l) phys_of;
  let b = Circuit.Builder.create n_phys in
  let swaps = ref 0 in
  let swap_phys p q =
    Circuit.Builder.add b Gate.Swap [ p; q ];
    incr swaps;
    let lp = log_of.(p) and lq = log_of.(q) in
    log_of.(p) <- lq;
    log_of.(q) <- lp;
    if lq >= 0 then phys_of.(lq) <- p;
    if lp >= 0 then phys_of.(lp) <- q
  in
  Circuit.iter
    (fun { Circuit.gate; qubits } ->
      match Array.length qubits with
      | 1 -> Circuit.Builder.add b gate [ phys_of.(qubits.(0)) ]
      | _ ->
        let a = qubits.(0) and t = qubits.(1) in
        if not (Topology.connected topo phys_of.(a) phys_of.(t)) then begin
          (* Walk operand [a] along a shortest path until adjacent to [t]. *)
          let path = Topology.shortest_path topo phys_of.(a) phys_of.(t) in
          let rec hop = function
            | p :: (q :: _ as rest) when not (Topology.connected topo p phys_of.(t)) ->
              swap_phys p q;
              hop rest
            | _ -> ()
          in
          hop path
        end;
        Circuit.Builder.add b gate [ phys_of.(a); phys_of.(t) ])
    c;
  { routed = Circuit.Builder.to_circuit b; final_layout = phys_of; swaps_inserted = !swaps }

let is_legal topo c =
  let ok = ref true in
  Circuit.iter
    (fun { Circuit.qubits; _ } ->
      if Array.length qubits = 2 && not (Topology.connected topo qubits.(0) qubits.(1))
      then ok := false)
    c;
  !ok
