(** Device connectivity graphs.

    The gmon system of Appendix A has "a rectangular-grid topology with
    nearest-neighbor connectivity"; benchmark circuits are mapped to such a
    device before timing (Section 4.1). *)

type t

val n_qubits : t -> int

val line : int -> t
(** Path graph 0 - 1 - ... - (n-1). *)

val grid : rows:int -> cols:int -> t
(** Rectangular grid, row-major qubit numbering. *)

val clique : int -> t
(** All-to-all (used to *skip* routing in controlled experiments). *)

val of_edges : int -> (int * int) list -> t

val connected : t -> int -> int -> bool

val neighbors : t -> int -> int list

val edges : t -> (int * int) list
(** Each undirected edge once, with smaller endpoint first. *)

val shortest_path : t -> int -> int -> int list
(** Vertex list from source to destination inclusive (BFS); raises
    [Not_found] when disconnected. *)
