module Circuit = Pqc_quantum.Circuit
(** Qubit mapping for limited-connectivity devices.

    Greedy SWAP-insertion router: logical qubits start at the identity
    placement; whenever a two-qubit gate targets non-adjacent physical
    qubits, SWAPs move one operand along a shortest path until they meet.
    This mirrors the role of "Qiskit's circuit mapper (to conform to nearest
    neighbor connectivity)" in the paper's baseline. *)

type result = {
  routed : Circuit.t;  (** Circuit over physical qubits, only legal 2q gates. *)
  final_layout : int array;  (** [final_layout.(logical)] = physical qubit. *)
  swaps_inserted : int;
}

val route : Topology.t -> Circuit.t -> result
(** Requires the topology to have at least as many qubits as the circuit.
    The routed circuit satisfies [Topology.connected] for every two-qubit
    gate. *)

val is_legal : Topology.t -> Circuit.t -> bool
(** True when every 2-qubit gate touches adjacent physical qubits. *)
