module Circuit = Pqc_quantum.Circuit
(** As-soon-as-possible list scheduling.

    The paper's gate-based runtimes are "for the critical path through the
    parallelized circuit" (Section 4.1): gates on disjoint qubits execute
    simultaneously, so a circuit's runtime is the longest dependency chain
    weighted by per-gate pulse durations.  This module computes that
    schedule for any duration model. *)

type entry = { instr : Circuit.instr; start_time : float; finish_time : float }

type t = { entries : entry array; makespan : float }

val schedule : duration:(Circuit.instr -> float) -> Circuit.t -> t
(** ASAP schedule: each gate starts when all its operands are free.
    [makespan] is the critical-path length. *)

val critical_path : duration:(Circuit.instr -> float) -> Circuit.t -> float
(** Just the makespan. *)

val depth : Circuit.t -> int
(** Unit-duration depth (number of layers). *)
