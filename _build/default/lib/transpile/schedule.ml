module Circuit = Pqc_quantum.Circuit

type entry = { instr : Circuit.instr; start_time : float; finish_time : float }

type t = { entries : entry array; makespan : float }

let schedule ~duration c =
  let free = Array.make (Circuit.n_qubits c) 0.0 in
  let makespan = ref 0.0 in
  let entries =
    Array.map
      (fun (i : Circuit.instr) ->
        let start_time = Array.fold_left (fun acc q -> max acc free.(q)) 0.0 i.qubits in
        let finish_time = start_time +. duration i in
        Array.iter (fun q -> free.(q) <- finish_time) i.qubits;
        if finish_time > !makespan then makespan := finish_time;
        { instr = i; start_time; finish_time })
      (Circuit.instrs c)
  in
  { entries; makespan = !makespan }

let critical_path ~duration c = (schedule ~duration c).makespan

let depth c =
  int_of_float (critical_path ~duration:(fun _ -> 1.0) c)
