module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
(** Gate-level circuit optimization passes.

    These passes reproduce the baseline the paper measures gate-based
    compilation against: "aggressive cancellation of CX gates and 'Hadamard'
    gates" (IBM transpiler) plus the authors' own pass for "merging rotation
    gates — e.g. Rx(a) followed by Rx(b) merges into Rx(a+b)" (Section 2.2).

    All passes preserve the circuit unitary for every parameter binding (a
    property-tested invariant).  Merging is commutation-aware: when looking
    backwards for a merge or cancellation partner, a gate may slide past
    intermediate gates it commutes with (e.g. Rz past the control of a CX,
    Rx past the target). *)

val merge_rotations : Circuit.t -> Circuit.t
(** Merge same-axis single-qubit rotations whose angles add symbolically
    (see {!Param.add}), dropping rotations that merge to zero. *)

val cancel_inverses : Circuit.t -> Circuit.t
(** Remove adjacent gate/inverse pairs (H H, CX CX, Swap Swap, S Sdg, ...) on
    identical operands, commutation-aware. *)

val drop_identities : Circuit.t -> Circuit.t
(** Remove constant rotations with angle 0 (mod 4 pi). *)

val optimize : ?max_rounds:int -> Circuit.t -> Circuit.t
(** Run all passes to a fixpoint (at most [max_rounds] sweeps, default 20). *)
