module Circuit = Pqc_quantum.Circuit
(** Circuit slicing for partial compilation (Sections 6 and 7).

    {b Strict} slicing blocks a variational circuit into a strictly
    alternating sequence of parametrization-independent "Fixed" subcircuits
    and the individual parametrized gates between them.  Fixed slices can be
    precompiled with GRAPE once, offline.

    {b Flexible} slicing exploits {e parameter monotonicity} — in VQE-UCCSD
    and QAOA circuits the gates depending on each theta_i appear
    contiguously — to cut the circuit into much deeper slices that each
    depend on at most one variational parameter. *)

type slice = {
  var : int option;
      (** The variational parameter the slice depends on; [None] = Fixed. *)
  circuit : Circuit.t;  (** Slice contents over the original register. *)
}

val strict : Circuit.t -> slice list
(** Maximal Fixed regions ([var = None]) interleaved with singleton
    parametrized-gate slices ([var = Some i]).  A parametrized gate seals
    only its own qubit's timeline (the paper's Figure 3b), so Fixed
    regions extend across parametrized gates on other qubits.
    Concatenation reproduces a circuit equivalent to the input (per-qubit
    gate order is preserved; unitary equality is property-tested). *)

val strict_linear : Circuit.t -> slice list
(** The simpler one-dimensional variant: Fixed slices are maximal
    contiguous runs in instruction order, so every parametrized gate cuts
    the whole register.  Kept as the conservative baseline (and for the
    ablation bench); concatenation reproduces the input exactly. *)

val flexible : Circuit.t -> slice list
(** Maximal slices depending on at most one parameter each.  Requires
    [is_monotone]; raises [Invalid_argument] otherwise.  Concatenation
    reproduces the input circuit exactly. *)

val is_monotone : Circuit.t -> bool
(** True when every parameter's dependent gates appear contiguously: once
    gates depending on theta_j appear after theta_i's, no later gate depends
    on theta_i again (Section 7.1). *)

val concat_all : n:int -> slice list -> Circuit.t

val fixed_gate_fraction : Circuit.t -> float
(** Fraction of gates that are parametrization-independent — the quantity
    that determines how much strict partial compilation can win (5-8%
    parametrized for VQE-UCCSD vs 15-28% for QAOA in the paper). *)
