type t = { n : int; adj : bool array array }

let n_qubits t = t.n

let empty n =
  if n <= 0 then invalid_arg "Topology: positive qubit count required";
  { n; adj = Array.make_matrix n n false }

let add_edge t a b =
  if a = b || a < 0 || b < 0 || a >= t.n || b >= t.n then
    invalid_arg "Topology: bad edge";
  t.adj.(a).(b) <- true;
  t.adj.(b).(a) <- true

let line n =
  let t = empty n in
  for i = 0 to n - 2 do
    add_edge t i (i + 1)
  done;
  t

let grid ~rows ~cols =
  let t = empty (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let q = (r * cols) + c in
      if c < cols - 1 then add_edge t q (q + 1);
      if r < rows - 1 then add_edge t q (q + cols)
    done
  done;
  t

let clique n =
  let t = empty n in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      add_edge t a b
    done
  done;
  t

let of_edges n es =
  let t = empty n in
  List.iter (fun (a, b) -> add_edge t a b) es;
  t

let connected t a b = t.adj.(a).(b)

let neighbors t q =
  List.filter (fun p -> t.adj.(q).(p)) (List.init t.n Fun.id)

let edges t =
  List.concat_map
    (fun a -> List.filter_map (fun b -> if b > a && t.adj.(a).(b) then Some (a, b) else None)
        (List.init t.n Fun.id))
    (List.init t.n Fun.id)

let shortest_path t src dst =
  if src = dst then [ src ]
  else begin
    let prev = Array.make t.n (-1) in
    let visited = Array.make t.n false in
    let queue = Queue.create () in
    visited.(src) <- true;
    Queue.push src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            prev.(v) <- u;
            if v = dst then found := true else Queue.push v queue
          end)
        (neighbors t u)
    done;
    if not !found then raise Not_found;
    let rec walk v acc = if v = src then src :: acc else walk prev.(v) (v :: acc) in
    walk dst []
  end
