lib/transpile/route.ml: Array Fun Pqc_quantum Topology
