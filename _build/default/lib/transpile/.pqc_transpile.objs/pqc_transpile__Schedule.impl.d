lib/transpile/schedule.ml: Array Pqc_quantum
