lib/transpile/slice.ml: Array Hashtbl List Pqc_quantum
