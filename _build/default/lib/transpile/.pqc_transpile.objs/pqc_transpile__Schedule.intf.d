lib/transpile/schedule.mli: Pqc_quantum
