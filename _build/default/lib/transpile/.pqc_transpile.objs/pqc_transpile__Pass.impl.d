lib/transpile/pass.ml: Array Float Fun List Pqc_quantum
