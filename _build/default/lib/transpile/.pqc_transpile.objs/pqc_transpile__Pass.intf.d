lib/transpile/pass.mli: Pqc_quantum
