lib/transpile/topology.mli:
