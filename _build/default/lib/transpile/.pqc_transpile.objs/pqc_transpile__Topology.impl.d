lib/transpile/topology.ml: Array Fun List Queue
