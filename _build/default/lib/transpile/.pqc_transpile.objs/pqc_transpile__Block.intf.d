lib/transpile/block.mli: Pqc_quantum
