lib/transpile/slice.mli: Pqc_quantum
