lib/transpile/block.ml: Array Hashtbl List Option Pqc_quantum
