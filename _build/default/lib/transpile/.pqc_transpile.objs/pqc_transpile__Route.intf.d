lib/transpile/route.mli: Pqc_quantum Topology
