module Cvec = Pqc_linalg.Cvec
module Cmat = Pqc_linalg.Cmat
(** Pauli-string observables and Hamiltonians.

    VQE minimizes <psi(theta)| H |psi(theta)> for a molecular Hamiltonian
    expressed as a real combination of Pauli strings; QAOA's MAXCUT cost is a
    combination of Z Z terms.  This module represents such operators and
    evaluates expectation values against simulator states. *)

type op = I | X | Y | Z

type term = { coeff : float; ops : op array }
(** [coeff] times the tensor product [ops.(0) (x) ... (x) ops.(n-1)]
    (qubit 0 first, consistent with the circuit convention). *)

type t = { n_qubits : int; terms : term list }

val make : int -> (float * op array) list -> t
(** Validates that every string has exactly [n_qubits] operators. *)

val of_strings : int -> (float * string) list -> t
(** Strings like ["IZZI"]; characters map to operators case-insensitively. *)

val identity_coefficient : t -> float
(** Sum of coefficients of all-identity terms (the constant energy shift). *)

val term_matrix : term -> Cmat.t
(** Dense 2^n matrix of one term (small n only). *)

val matrix : t -> Cmat.t
(** Dense matrix of the whole operator (small n only). *)

val expectation : t -> Cvec.t -> float
(** <psi|H|psi>, computed term-by-term with simulator kernels (no dense
    matrix), so it scales to every width the simulator supports. *)

val pp : Format.formatter -> t -> unit
