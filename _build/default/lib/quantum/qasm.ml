exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let gate_mnemonic (g : Gate.t) =
  match g with
  | Gate.Rx _ -> "rx"
  | Gate.Ry _ -> "ry"
  | Gate.Rz _ -> "rz"
  | Gate.X -> "x"
  | Gate.Y -> "y"
  | Gate.Z -> "z"
  | Gate.H -> "h"
  | Gate.S -> "s"
  | Gate.Sdg -> "sdg"
  | Gate.T -> "t"
  | Gate.Tdg -> "tdg"
  | Gate.CX -> "cx"
  | Gate.CZ -> "cz"
  | Gate.Swap -> "swap"
  | Gate.ISwap -> "iswap"

let to_qasm ?theta c =
  let c = match theta with Some t -> Circuit.bind c t | None -> c in
  (match Circuit.depends c with
  | [] -> ()
  | _ :: _ ->
    invalid_arg
      "Qasm.to_qasm: circuit has unbound parameters (OpenQASM 2.0 has no \
       symbols); pass ~theta");
  let buf = Buffer.create 512 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.n_qubits c));
  Circuit.iter
    (fun (i : Circuit.instr) ->
      let operands =
        String.concat ","
          (List.map (Printf.sprintf "q[%d]") (Array.to_list i.qubits))
      in
      match Gate.param i.gate with
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf "%s(%.12g) %s;\n" (gate_mnemonic i.gate)
             (Param.bind p [||]) operands)
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s;\n" (gate_mnemonic i.gate) operands))
    c;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

(* Strip // comments, split into ';'-terminated statements, tracking line
   numbers for error reporting. *)
let statements source =
  let no_comments =
    String.split_on_char '\n' source
    |> List.map (fun l ->
           match String.index_opt l '/' with
           | Some i when i + 1 < String.length l && l.[i + 1] = '/' ->
             String.sub l 0 i
           | Some _ | None -> l)
  in
  let acc = ref [] and current = Buffer.create 64 and start_line = ref 1 in
  List.iteri
    (fun lineno line ->
      String.iter
        (fun ch ->
          if ch = ';' then begin
            let text = String.trim (Buffer.contents current) in
            if text <> "" then acc := (!start_line, text) :: !acc;
            Buffer.clear current;
            start_line := lineno + 1
          end
          else begin
            if String.trim (Buffer.contents current) = "" then
              start_line := lineno + 1;
            Buffer.add_char current ch
          end)
        line;
      if Buffer.length current > 0 then Buffer.add_char current ' ')
    no_comments;
  (match String.trim (Buffer.contents current) with
  | "" -> ()
  | text -> fail !start_line "missing ';' after %S" text);
  List.rev !acc

(* Tiny recursive-descent parser for angle expressions. *)
module Expr = struct
  type token = Num of float | Pi | Plus | Minus | Star | Slash | LPar | RPar

  let tokenize line s =
    let n = String.length s in
    let tokens = ref [] in
    let i = ref 0 in
    while !i < n do
      let ch = s.[!i] in
      if ch = ' ' || ch = '\t' then incr i
      else if ch = '+' then (tokens := Plus :: !tokens; incr i)
      else if ch = '-' then (tokens := Minus :: !tokens; incr i)
      else if ch = '*' then (tokens := Star :: !tokens; incr i)
      else if ch = '/' then (tokens := Slash :: !tokens; incr i)
      else if ch = '(' then (tokens := LPar :: !tokens; incr i)
      else if ch = ')' then (tokens := RPar :: !tokens; incr i)
      else if (ch >= '0' && ch <= '9') || ch = '.' then begin
        let j = ref !i in
        while
          !j < n
          && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.' || s.[!j] = 'e'
             || s.[!j] = 'E'
             || ((s.[!j] = '+' || s.[!j] = '-')
                && !j > !i
                && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
        do
          incr j
        done;
        let text = String.sub s !i (!j - !i) in
        (match float_of_string_opt text with
        | Some v -> tokens := Num v :: !tokens
        | None -> fail line "bad number %S" text);
        i := !j
      end
      else if String.length s - !i >= 2 && String.sub s !i 2 = "pi" then begin
        tokens := Pi :: !tokens;
        i := !i + 2
      end
      else fail line "unexpected character %C in expression %S" ch s
    done;
    List.rev !tokens

  (* expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)* ;
     factor := '-' factor | '(' expr ')' | number | pi *)
  let parse line tokens =
    let rest = ref tokens in
    let peek () = match !rest with [] -> None | t :: _ -> Some t in
    let advance () = match !rest with [] -> () | _ :: tl -> rest := tl in
    let rec expr () =
      let v = ref (term ()) in
      let rec loop () =
        match peek () with
        | Some Plus -> advance (); v := !v +. term (); loop ()
        | Some Minus -> advance (); v := !v -. term (); loop ()
        | Some (Num _ | Pi | Star | Slash | LPar | RPar) | None -> ()
      in
      loop ();
      !v
    and term () =
      let v = ref (factor ()) in
      let rec loop () =
        match peek () with
        | Some Star -> advance (); v := !v *. factor (); loop ()
        | Some Slash ->
          advance ();
          let d = factor () in
          if d = 0.0 then fail line "division by zero in angle expression";
          v := !v /. d;
          loop ()
        | Some (Num _ | Pi | Plus | Minus | LPar | RPar) | None -> ()
      in
      loop ();
      !v
    and factor () =
      match peek () with
      | Some Minus -> advance (); -.factor ()
      | Some (Num v) -> advance (); v
      | Some Pi -> advance (); Float.pi
      | Some LPar ->
        advance ();
        let v = expr () in
        (match peek () with
        | Some RPar -> advance (); v
        | Some _ | None -> fail line "expected ')'")
      | Some (Plus | Star | Slash | RPar) | None ->
        fail line "malformed angle expression"
    in
    let v = expr () in
    (match !rest with [] -> () | _ :: _ -> fail line "trailing tokens in expression");
    v

  let eval line s = parse line (tokenize line s)
end

let parse_operand line ~reg ~size text =
  let text = String.trim text in
  match String.index_opt text '[' with
  | None -> fail line "expected %s[index], got %S" reg text
  | Some i ->
    let name = String.sub text 0 i in
    if name <> reg then fail line "unknown register %S (declared %S)" name reg;
    (match String.index_opt text ']' with
    | None -> fail line "missing ']' in %S" text
    | Some j ->
      let idx = String.sub text (i + 1) (j - i - 1) in
      (match int_of_string_opt (String.trim idx) with
      | Some q when q >= 0 && q < size -> q
      | Some q -> fail line "qubit %d out of range [0,%d)" q size
      | None -> fail line "bad qubit index %S" idx))

(* Split "mnemonic(args) operands" into pieces. *)
let split_application line text =
  let text = String.trim text in
  let name_end =
    let rec go i =
      if i >= String.length text then i
      else
        match text.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> go (i + 1)
        | ' ' | '(' | _ -> i
    in
    go 0
  in
  if name_end = 0 then fail line "expected gate name in %S" text;
  let name = String.sub text 0 name_end in
  let rest = String.sub text name_end (String.length text - name_end) in
  let rest = String.trim rest in
  if String.length rest > 0 && rest.[0] = '(' then begin
    (* Find the matching close parenthesis (angle expressions nest). *)
    let close = ref None and depth = ref 0 in
    String.iteri
      (fun j ch ->
        if !close = None then
          if ch = '(' then incr depth
          else if ch = ')' then begin
            decr depth;
            if !depth = 0 then close := Some j
          end)
      rest;
    match !close with
    | None -> fail line "missing ')' in %S" text
    | Some j ->
      let args = String.sub rest 1 (j - 1) in
      let operands = String.sub rest (j + 1) (String.length rest - j - 1) in
      (name, Some args, String.trim operands)
  end
  else (name, None, rest)

let of_qasm source =
  let stmts = statements source in
  let reg = ref None in
  let builder = ref None in
  let ensure_builder line =
    match !builder with
    | Some b -> b
    | None -> fail line "gate application before qreg declaration"
  in
  let angle line = function
    | Some args -> Expr.eval line args
    | None -> fail line "missing angle argument"
  in
  let no_args line name = function
    | None -> ()
    | Some _ -> fail line "%s takes no argument" name
  in
  List.iter
    (fun (line, text) ->
      let lower = String.lowercase_ascii text in
      let starts p =
        String.length lower >= String.length p && String.sub lower 0 (String.length p) = p
      in
      if starts "openqasm" || starts "include" || starts "creg" || starts "barrier"
      then ()
      else if starts "measure" || starts "if" || starts "gate" || starts "reset"
      then fail line "unsupported statement %S" text
      else if starts "qreg" then begin
        if !reg <> None then fail line "multiple qreg declarations";
        let rest = String.trim (String.sub text 4 (String.length text - 4)) in
        match String.index_opt rest '[' with
        | None -> fail line "bad qreg declaration %S" text
        | Some i ->
          let name = String.trim (String.sub rest 0 i) in
          (match String.index_opt rest ']' with
          | None -> fail line "missing ']' in qreg"
          | Some j ->
            (match int_of_string_opt (String.sub rest (i + 1) (j - i - 1)) with
            | Some n when n > 0 ->
              reg := Some (name, n);
              builder := Some (Circuit.Builder.create n)
            | Some _ | None -> fail line "bad qreg size"))
      end
      else begin
        let b = ensure_builder line in
        let reg_name, size = Option.get !reg in
        let name, args, operand_text = split_application line text in
        let operands =
          String.split_on_char ',' operand_text
          |> List.map (parse_operand line ~reg:reg_name ~size)
        in
        let add1 g =
          match operands with
          | [ q ] -> Circuit.Builder.add b g [ q ]
          | _ -> fail line "%s expects one operand" name
        in
        let add2 g =
          match operands with
          | [ a; c ] -> Circuit.Builder.add b g [ a; c ]
          | _ -> fail line "%s expects two operands" name
        in
        match String.lowercase_ascii name with
        | "id" -> no_args line name args
        | "h" -> no_args line name args; add1 Gate.H
        | "x" -> no_args line name args; add1 Gate.X
        | "y" -> no_args line name args; add1 Gate.Y
        | "z" -> no_args line name args; add1 Gate.Z
        | "s" -> no_args line name args; add1 Gate.S
        | "sdg" -> no_args line name args; add1 Gate.Sdg
        | "t" -> no_args line name args; add1 Gate.T
        | "tdg" -> no_args line name args; add1 Gate.Tdg
        | "rx" -> add1 (Gate.Rx (Param.const (angle line args)))
        | "ry" -> add1 (Gate.Ry (Param.const (angle line args)))
        | "rz" | "u1" -> add1 (Gate.Rz (Param.const (angle line args)))
        | "cx" | "cnot" -> no_args line name args; add2 Gate.CX
        | "cz" -> no_args line name args; add2 Gate.CZ
        | "swap" -> no_args line name args; add2 Gate.Swap
        | "iswap" -> no_args line name args; add2 Gate.ISwap
        | other -> fail line "unsupported gate %S" other
      end)
    stmts;
  match !builder with
  | Some b -> Circuit.Builder.to_circuit b
  | None -> fail 1 "no qreg declaration found"
