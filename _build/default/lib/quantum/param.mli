(** Symbolic gate parameters.

    A variational circuit is parametrized by a vector of angles theta.  Gate
    angles are affine functions of at most one variational parameter:
    [scale * theta_i + offset].  This is exactly the dependency structure the
    paper exploits — circuit constructions and optimizations transform
    individual theta_i-dependent gates into gates parametrized by -theta_i or
    theta_i / 2 (Section 7.1), and partial compilation must track which
    variational parameter each gate *latently* depends on.  Constants are the
    [scale = 0] case. *)

type t = private { var : int option; scale : float; offset : float }
(** Value under a binding [theta] is [scale * theta.(var) + offset] when
    [var = Some i], else [offset].  The invariant [var = None => scale = 0]
    is maintained by the smart constructors. *)

val const : float -> t
(** A parametrization-independent angle. *)

val var : ?scale:float -> ?offset:float -> int -> t
(** [var i] is theta_i; [var ~scale:0.5 i] is theta_i / 2, etc.
    [scale] defaults to 1, [offset] to 0.  A zero [scale] yields a
    constant. *)

val zero : t

val is_const : t -> bool

val depends_on : t -> int option
(** [Some i] when the value varies with theta_i. *)

val bind : t -> float array -> float
(** Evaluate under a concrete parameter vector.  Raises [Invalid_argument]
    when the vector is too short. *)

val neg : t -> t
val half : t -> t
val scale_by : float -> t -> t

val add : t -> t -> t option
(** Symbolic sum when representable: both constant, or same variable, or one
    constant.  [None] when the gates depend on different variables (such
    rotations cannot be merged). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** E.g. ["0.50*t3+1.571"], ["1.571"], ["-t0"]. *)
