lib/quantum/circuit.mli: Format Gate Pqc_linalg
