lib/quantum/statevec.mli: Circuit Gate Pqc_linalg Pqc_util
