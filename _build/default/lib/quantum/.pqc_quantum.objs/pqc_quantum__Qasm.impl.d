lib/quantum/qasm.ml: Array Buffer Circuit Float Gate List Option Param Printf String
