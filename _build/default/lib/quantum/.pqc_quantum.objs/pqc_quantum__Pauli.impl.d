lib/quantum/pauli.ml: Array Complex Format Gate List Pqc_linalg Printf Statevec String
