lib/quantum/param.mli: Format
