lib/quantum/density.mli: Circuit Pauli Pqc_linalg
