lib/quantum/gate.ml: Complex Float Format Option Param Pqc_linalg
