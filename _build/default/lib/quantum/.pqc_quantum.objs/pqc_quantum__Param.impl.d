lib/quantum/param.ml: Array Format Printf
