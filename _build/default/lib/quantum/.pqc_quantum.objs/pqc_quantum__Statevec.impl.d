lib/quantum/statevec.ml: Array Circuit Gate Pqc_linalg Pqc_util
