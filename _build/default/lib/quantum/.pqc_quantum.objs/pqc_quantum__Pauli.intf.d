lib/quantum/pauli.mli: Format Pqc_linalg
