lib/quantum/circuit.ml: Array Format Gate Hashtbl Int List Option Param Pqc_linalg Printf Set String
