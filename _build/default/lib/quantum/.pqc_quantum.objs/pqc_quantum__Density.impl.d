lib/quantum/density.ml: Array Circuit Complex Gate List Pauli Pqc_linalg
