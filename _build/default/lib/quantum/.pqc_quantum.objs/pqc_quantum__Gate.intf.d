lib/quantum/gate.mli: Param Pqc_linalg
