type t = { var : int option; scale : float; offset : float }

let const offset = { var = None; scale = 0.0; offset }

let var ?(scale = 1.0) ?(offset = 0.0) i =
  if scale = 0.0 then const offset else { var = Some i; scale; offset }

let zero = const 0.0

let is_const p = p.var = None

let depends_on p = p.var

let bind p theta =
  match p.var with
  | None -> p.offset
  | Some i ->
    if i >= Array.length theta then
      invalid_arg
        (Printf.sprintf "Param.bind: parameter t%d but only %d values given" i
           (Array.length theta));
    (p.scale *. theta.(i)) +. p.offset

let scale_by k p =
  if k = 0.0 || p.var = None then const (k *. p.offset)
  else { p with scale = k *. p.scale; offset = k *. p.offset }

let neg p = scale_by (-1.0) p
let half p = scale_by 0.5 p

let add a b =
  match a.var, b.var with
  | None, None -> Some (const (a.offset +. b.offset))
  | Some _, None -> Some { a with offset = a.offset +. b.offset }
  | None, Some _ -> Some { b with offset = a.offset +. b.offset }
  | Some i, Some j ->
    if i <> j then None
    else begin
      let scale = a.scale +. b.scale in
      let offset = a.offset +. b.offset in
      if scale = 0.0 then Some (const offset)
      else Some { var = Some i; scale; offset }
    end

let equal a b = a.var = b.var && a.scale = b.scale && a.offset = b.offset

let pp fmt p =
  match p.var with
  | None -> Format.fprintf fmt "%.3f" p.offset
  | Some i ->
    let coeff =
      if p.scale = 1.0 then Printf.sprintf "t%d" i
      else if p.scale = -1.0 then Printf.sprintf "-t%d" i
      else Printf.sprintf "%.2f*t%d" p.scale i
    in
    if p.offset = 0.0 then Format.pp_print_string fmt coeff
    else Format.fprintf fmt "%s%+.3f" coeff p.offset
