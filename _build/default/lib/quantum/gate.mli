module Cmat = Pqc_linalg.Cmat
(** The compiler's gate set.

    Matches the paper's compilation basis {Rz(phi), Rx(theta), H, CX, SWAP}
    (Table 1) plus the standard extras a transpiler needs (Ry, Pauli gates,
    phase gates, CZ, iSWAP — the gmon hardware's native two-qubit
    interaction).  Rotation conventions: Rx(t) = exp(-i t X / 2),
    Ry(t) = exp(-i t Y / 2), Rz(t) = exp(-i t Z / 2).  These differ from the
    paper's printed matrices only by global phase, which is irrelevant to
    every fidelity measure used here. *)

type t =
  | Rx of Param.t
  | Ry of Param.t
  | Rz of Param.t
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | CX
  | CZ
  | Swap
  | ISwap

val arity : t -> int
(** Number of qubit operands (1 or 2). *)

val name : t -> string
(** Mnemonic without parameters, e.g. ["rx"], ["cx"]. *)

val param : t -> Param.t option
(** The symbolic angle of a rotation gate, [None] for discrete gates. *)

val depends_on : t -> int option
(** The variational parameter this gate's angle varies with, if any. *)

val is_parametrized : t -> bool
(** True when [depends_on] is [Some _]. *)

val map_param : (Param.t -> Param.t) -> t -> t
(** Rewrite the angle of a rotation gate; identity on discrete gates. *)

val matrix : t -> theta:float array -> Cmat.t
(** Unitary matrix (2x2 or 4x4) under a concrete parameter binding.
    Two-qubit matrices are in the basis |q0 q1> with the *first* operand as
    the most significant bit. *)

val inverse : t -> t option
(** Exact inverse within the gate set; [None] when not representable as a
    single gate (iSWAP). *)

val is_self_inverse : t -> bool
(** Gates g with g g = I (X, Y, Z, H, CX, CZ, SWAP). *)

val is_diagonal : t -> bool
(** True when the matrix is diagonal in the computational basis for every
    binding (Rz, Z, S, Sdg, T, Tdg, CZ). *)

val rotation_axis : t -> [ `X | `Y | `Z ] option
(** The axis of a single-qubit rotation gate, including the fixed-angle
    aliases (X ~ Rx(pi), S ~ Rz(pi/2), ...). *)

val to_string : t -> string
(** Mnemonic with parameters, e.g. ["rx(t0/2)"]. *)
