module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec
(** State-vector simulator.

    Simulates ideal (noiseless) circuit execution by direct amplitude
    updates, with dedicated one- and two-qubit kernels that touch each
    amplitude once per gate.  This is the classical stand-in for the paper's
    quantum hardware in the end-to-end VQE/QAOA examples: the variational
    loop evaluates E[theta] here instead of on a machine.

    Indexing follows {!Circuit}: qubit 0 is the most significant bit of a
    basis-state index. *)

val init : int -> Cvec.t
(** [init n] is |0...0> on [n] qubits. *)

val apply_matrix : Cvec.t -> Cmat.t -> int array -> unit
(** [apply_matrix psi g qubits] applies the 2^k-dimensional unitary [g] to
    the listed qubits of [psi], in place.  Specialized kernels cover k = 1
    and k = 2; wider gates go through {!Circuit.embed}. *)

val apply_gate : Cvec.t -> Gate.t -> theta:float array -> int array -> unit

val run : ?theta:float array -> ?init_state:Cvec.t -> Circuit.t -> Cvec.t
(** Execute a circuit from |0...0> (or [init_state]) and return the final
    state ([theta] defaults to the empty binding). *)

val probabilities : Cvec.t -> float array
(** Born-rule outcome distribution over basis states. *)

val measure : Pqc_util.Rng.t -> Cvec.t -> int
(** Sample one computational-basis outcome. *)
