module Cmat = Pqc_linalg.Cmat
type t =
  | Rx of Param.t
  | Ry of Param.t
  | Rz of Param.t
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | CX
  | CZ
  | Swap
  | ISwap

let arity = function
  | Rx _ | Ry _ | Rz _ | X | Y | Z | H | S | Sdg | T | Tdg -> 1
  | CX | CZ | Swap | ISwap -> 2

let name = function
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | CX -> "cx"
  | CZ -> "cz"
  | Swap -> "swap"
  | ISwap -> "iswap"

let param = function
  | Rx p | Ry p | Rz p -> Some p
  | X | Y | Z | H | S | Sdg | T | Tdg | CX | CZ | Swap | ISwap -> None

let depends_on g = Option.bind (param g) Param.depends_on

let is_parametrized g = depends_on g <> None

let map_param f = function
  | Rx p -> Rx (f p)
  | Ry p -> Ry (f p)
  | Rz p -> Rz (f p)
  | (X | Y | Z | H | S | Sdg | T | Tdg | CX | CZ | Swap | ISwap) as g -> g

let c re im = { Complex.re; im }
let c0 = c 0.0 0.0
let c1 = c 1.0 0.0
let ci = c 0.0 1.0
let cni = c 0.0 (-1.0)

let mat2 a b d e = Cmat.of_array [| [| a; b |]; [| d; e |] |]

let mat4 r0 r1 r2 r3 = Cmat.of_array [| r0; r1; r2; r3 |]

let matrix g ~theta =
  let angle p = Param.bind p theta in
  match g with
  | Rx p ->
    let t = angle p /. 2.0 in
    mat2 (c (cos t) 0.0) (c 0.0 (-.sin t)) (c 0.0 (-.sin t)) (c (cos t) 0.0)
  | Ry p ->
    let t = angle p /. 2.0 in
    mat2 (c (cos t) 0.0) (c (-.sin t) 0.0) (c (sin t) 0.0) (c (cos t) 0.0)
  | Rz p ->
    let t = angle p /. 2.0 in
    mat2 (c (cos t) (-.sin t)) c0 c0 (c (cos t) (sin t))
  | X -> mat2 c0 c1 c1 c0
  | Y -> mat2 c0 cni ci c0
  | Z -> mat2 c1 c0 c0 (c (-1.0) 0.0)
  | H ->
    let s = 1.0 /. sqrt 2.0 in
    mat2 (c s 0.0) (c s 0.0) (c s 0.0) (c (-.s) 0.0)
  | S -> mat2 c1 c0 c0 ci
  | Sdg -> mat2 c1 c0 c0 cni
  | T -> mat2 c1 c0 c0 (Complex.exp (c 0.0 (Float.pi /. 4.0)))
  | Tdg -> mat2 c1 c0 c0 (Complex.exp (c 0.0 (-.Float.pi /. 4.0)))
  | CX ->
    mat4 [| c1; c0; c0; c0 |] [| c0; c1; c0; c0 |] [| c0; c0; c0; c1 |]
      [| c0; c0; c1; c0 |]
  | CZ ->
    mat4 [| c1; c0; c0; c0 |] [| c0; c1; c0; c0 |] [| c0; c0; c1; c0 |]
      [| c0; c0; c0; c (-1.0) 0.0 |]
  | Swap ->
    mat4 [| c1; c0; c0; c0 |] [| c0; c0; c1; c0 |] [| c0; c1; c0; c0 |]
      [| c0; c0; c0; c1 |]
  | ISwap ->
    mat4 [| c1; c0; c0; c0 |] [| c0; c0; ci; c0 |] [| c0; ci; c0; c0 |]
      [| c0; c0; c0; c1 |]

let inverse = function
  | Rx p -> Some (Rx (Param.neg p))
  | Ry p -> Some (Ry (Param.neg p))
  | Rz p -> Some (Rz (Param.neg p))
  | (X | Y | Z | H | CX | CZ | Swap) as g -> Some g
  | S -> Some Sdg
  | Sdg -> Some S
  | T -> Some Tdg
  | Tdg -> Some T
  | ISwap -> None

let is_self_inverse = function
  | X | Y | Z | H | CX | CZ | Swap -> true
  | Rx _ | Ry _ | Rz _ | S | Sdg | T | Tdg | ISwap -> false

let is_diagonal = function
  | Rz _ | Z | S | Sdg | T | Tdg | CZ -> true
  | Rx _ | Ry _ | X | Y | H | CX | Swap | ISwap -> false

let rotation_axis = function
  | Rx _ | X -> Some `X
  | Ry _ | Y -> Some `Y
  | Rz _ | Z | S | Sdg | T | Tdg -> Some `Z
  | H | CX | CZ | Swap | ISwap -> None

let to_string g =
  match param g with
  | None -> name g
  | Some p -> Format.asprintf "%s(%a)" (name g) Param.pp p
