module Cvec = Pqc_linalg.Cvec
module Cmat = Pqc_linalg.Cmat
type op = I | X | Y | Z

type term = { coeff : float; ops : op array }

type t = { n_qubits : int; terms : term list }

let make n_qubits l =
  List.iter
    (fun (_, ops) ->
      if Array.length ops <> n_qubits then
        invalid_arg "Pauli.make: string length must equal qubit count")
    l;
  { n_qubits; terms = List.map (fun (coeff, ops) -> { coeff; ops }) l }

let op_of_char = function
  | 'i' | 'I' -> I
  | 'x' | 'X' -> X
  | 'y' | 'Y' -> Y
  | 'z' | 'Z' -> Z
  | c -> invalid_arg (Printf.sprintf "Pauli.of_strings: bad operator %c" c)

let of_strings n l =
  make n
    (List.map
       (fun (coeff, s) ->
         (coeff, Array.init (String.length s) (fun i -> op_of_char s.[i])))
       l)

let is_identity t = Array.for_all (fun o -> o = I) t.ops

let identity_coefficient h =
  List.fold_left
    (fun acc t -> if is_identity t then acc +. t.coeff else acc)
    0.0 h.terms

let op_matrix = function
  | I -> Cmat.identity 2
  | X -> Gate.matrix Gate.X ~theta:[||]
  | Y -> Gate.matrix Gate.Y ~theta:[||]
  | Z -> Gate.matrix Gate.Z ~theta:[||]

let term_matrix t =
  let m =
    Array.fold_left (fun acc o -> Cmat.kron acc (op_matrix o)) (Cmat.identity 1) t.ops
  in
  Cmat.scale { Complex.re = t.coeff; im = 0.0 } m

let matrix h =
  let dim = 1 lsl h.n_qubits in
  List.fold_left (fun acc t -> Cmat.add acc (term_matrix t)) (Cmat.create dim dim)
    h.terms

let expectation h psi =
  assert (Cvec.dim psi = 1 lsl h.n_qubits);
  let term_value t =
    if is_identity t then t.coeff
    else begin
      let phi = Cvec.copy psi in
      Array.iteri
        (fun q o ->
          match o with
          | I -> ()
          | X | Y | Z -> Statevec.apply_matrix phi (op_matrix o) [| q |])
        t.ops;
      t.coeff *. (Cvec.dot psi phi).re
    end
  in
  List.fold_left (fun acc t -> acc +. term_value t) 0.0 h.terms

let op_char = function I -> 'I' | X -> 'X' | Y -> 'Y' | Z -> 'Z'

let pp fmt h =
  List.iter
    (fun t ->
      Format.fprintf fmt "%+.6f %s@." t.coeff
        (String.init (Array.length t.ops) (fun i -> op_char t.ops.(i))))
    h.terms
