module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec

type t = { n : int; mutable rho : Cmat.t }

let init n =
  let dim = 1 lsl n in
  let rho = Cmat.create dim dim in
  Cmat.set rho 0 0 Complex.one;
  { n; rho }

let of_statevec psi =
  let dim = Cvec.dim psi in
  let n =
    let k = ref 0 in
    while 1 lsl !k < dim do
      incr k
    done;
    assert (1 lsl !k = dim);
    !k
  in
  let rho = Cmat.create dim dim in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      Cmat.set rho i j (Complex.mul (Cvec.get psi i) (Complex.conj (Cvec.get psi j)))
    done
  done;
  { n; rho }

let n_qubits t = t.n

let matrix t = Cmat.copy t.rho

let trace t = (Cmat.trace t.rho).re

let purity t = (Cmat.trace_of_product t.rho t.rho).re

let fidelity_to t psi =
  (Cvec.dot psi (Cmat.apply t.rho psi)).re

let apply_unitary t g qubits =
  let u = Circuit.embed ~n:t.n g qubits in
  t.rho <- Cmat.mul u (Cmat.mul t.rho (Cmat.dagger u))

let apply_kraus t ks qubits =
  let dim = 1 lsl t.n in
  let acc = Cmat.create dim dim in
  List.iter
    (fun k ->
      let ke = Circuit.embed ~n:t.n k qubits in
      let term = Cmat.mul ke (Cmat.mul t.rho (Cmat.dagger ke)) in
      Cmat.axpy ~alpha:Complex.one ~x:term ~y:acc)
    ks;
  t.rho <- acc

let c re = { Complex.re; im = 0.0 }

let amplitude_damping ~gamma =
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damping";
  [ Cmat.of_array [| [| c 1.0; c 0.0 |]; [| c 0.0; c (sqrt (1.0 -. gamma)) |] |];
    Cmat.of_array [| [| c 0.0; c (sqrt gamma) |]; [| c 0.0; c 0.0 |] |] ]

let dephasing ~lambda =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Density.dephasing";
  [ Cmat.of_array [| [| c (sqrt (1.0 -. lambda)); c 0.0 |]; [| c 0.0; c (sqrt (1.0 -. lambda)) |] |];
    Cmat.of_array [| [| c (sqrt lambda); c 0.0 |]; [| c 0.0; c 0.0 |] |];
    Cmat.of_array [| [| c 0.0; c 0.0 |]; [| c 0.0; c (sqrt lambda) |] |] ]

let default_t1 = 30_000.0
let default_t2 = 20_000.0

let idle t ?(t1_ns = default_t1) ?(t2_ns = default_t2) ~qubit dt =
  if dt < 0.0 then invalid_arg "Density.idle: negative duration";
  if t2_ns > 2.0 *. t1_ns +. 1e-9 then
    invalid_arg "Density.idle: T2 must not exceed 2 T1";
  if dt > 0.0 then begin
    let gamma = 1.0 -. exp (-.dt /. t1_ns) in
    (* Amplitude damping already shrinks off-diagonals by exp(-dt/(2 T1));
       pure dephasing at rate 1/Tphi = 1/T2 - 1/(2 T1) supplies the rest,
       so the total coherence decay is exp(-dt/T2).  The dephasing channel
       scales off-diagonals by (1 - lambda). *)
    let phi_rate = (1.0 /. t2_ns) -. (1.0 /. (2.0 *. t1_ns)) in
    let lambda = 1.0 -. exp (-.dt *. phi_rate) in
    apply_kraus t (amplitude_damping ~gamma) [| qubit |];
    apply_kraus t (dephasing ~lambda) [| qubit |]
  end

let expectation h t =
  assert (h.Pauli.n_qubits = t.n);
  (Cmat.trace_of_product t.rho (Pauli.matrix h)).re

type timing = { instr : Circuit.instr; start_time : float; duration : float }

let run_noisy ?(t1_ns = default_t1) ?(t2_ns = default_t2) ?(theta = [||]) ~n
    timings =
  let t = init n in
  let clock = Array.make n 0.0 in
  let catch_up q now =
    if now > clock.(q) then begin
      idle t ~t1_ns ~t2_ns ~qubit:q (now -. clock.(q));
      clock.(q) <- now
    end
  in
  let makespan = ref 0.0 in
  List.iter
    (fun { instr; start_time; duration } ->
      let finish = start_time +. duration in
      if finish > !makespan then makespan := finish;
      Array.iter (fun q -> catch_up q start_time) instr.Circuit.qubits;
      apply_unitary t (Gate.matrix instr.Circuit.gate ~theta) instr.Circuit.qubits;
      (* The qubits decohere during the gate as well. *)
      Array.iter
        (fun q ->
          idle t ~t1_ns ~t2_ns ~qubit:q duration;
          clock.(q) <- finish)
        instr.Circuit.qubits)
    timings;
  (* Spectators decohere until the circuit's end. *)
  for q = 0 to n - 1 do
    catch_up q !makespan
  done;
  t
