module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec
(** Density-matrix simulator with decoherence.

    The paper's central physical argument is that decoherence error grows
    exponentially with pulse duration, so pulse speedups buy success
    probability (Sections 1, 8.4).  The state-vector simulator cannot
    express that; this module evolves a density matrix under gate unitaries
    interleaved with amplitude-damping (T1) and dephasing (T2) channels
    whose strengths depend on the {e time} each qubit spends idle or
    driven — which is exactly where compilation strategy matters.

    Dimensions are 2^n x 2^n; intended for the narrow end-to-end benchmarks
    (n <= 6 or so). *)

type t
(** Mutable density-matrix state. *)

val init : int -> t
(** |0...0><0...0| on n qubits. *)

val of_statevec : Cvec.t -> t
(** Pure-state density matrix |psi><psi|. *)

val n_qubits : t -> int

val matrix : t -> Cmat.t
(** A copy of the current density matrix. *)

val trace : t -> float
(** Should remain 1 up to numerical error (channels are trace-preserving;
    property-tested). *)

val purity : t -> float
(** Tr(rho^2): 1 for pure states, < 1 once noise acts. *)

val fidelity_to : t -> Cvec.t -> float
(** <psi| rho |psi>, the overlap with a pure reference state. *)

val apply_unitary : t -> Cmat.t -> int array -> unit
(** Conjugate by a gate unitary lifted to the full register. *)

val apply_kraus : t -> Cmat.t list -> int array -> unit
(** Apply a channel given by Kraus operators on the listed qubits:
    rho <- sum_k K rho K†. *)

val amplitude_damping : gamma:float -> Cmat.t list
(** Single-qubit T1 decay channel with decay probability [gamma]. *)

val dephasing : lambda:float -> Cmat.t list
(** Single-qubit pure-dephasing channel: off-diagonals shrink by
    [1 - lambda]. *)

val idle : t -> ?t1_ns:float -> ?t2_ns:float -> qubit:int -> float -> unit
(** [idle rho ~qubit dt] applies [dt] nanoseconds of free decoherence to
    one qubit: amplitude damping with gamma = 1 - exp(-dt/T1) followed by
    pure dephasing at the rate that makes total dephasing time T2
    (requires T2 <= 2 T1).  Defaults: T1 = 30 us, T2 = 20 us. *)

val expectation : Pauli.t -> t -> float
(** Tr(rho H). *)

type timing = {
  instr : Circuit.instr;
  start_time : float;
  duration : float;
}

val run_noisy :
  ?t1_ns:float -> ?t2_ns:float -> ?theta:float array -> n:int ->
  timing list -> t
(** Execute a timed gate sequence from |0...0> with decoherence: every
    qubit decoheres for exactly the wall-clock span of the schedule (idle
    gaps and gate durations alike), gates apply at their start times.
    The timings come from a {!Pqc_transpile.Schedule} or from a
    compilation strategy's (possibly compressed) durations — which is how
    pulse speedups turn into measurable fidelity gains. *)
