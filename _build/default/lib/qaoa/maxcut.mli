module Pauli = Pqc_quantum.Pauli
(** The MAXCUT problem: objective, brute-force optimum, and the QAOA cost
    Hamiltonian  C = sum_{(i,j) in E} (1 - Z_i Z_j) / 2. *)

val cut_value : Graph.t -> int -> int
(** [cut_value g assignment] counts edges cut by the bit-assignment (bit v
    of [assignment] = side of node v; node 0 is the most significant bit,
    matching basis-state indexing). *)

val optimum : Graph.t -> int
(** Brute force over 2^n assignments (n <= 24). *)

val hamiltonian : Graph.t -> Pauli.t
(** The cost operator C as a Pauli sum (its expectation on a computational
    basis state equals that state's cut value). *)

val expected_cut : Graph.t -> Pqc_linalg.Cvec.t -> float
(** <psi| C |psi>: the expected cut value of measuring state psi. *)
