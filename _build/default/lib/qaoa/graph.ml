module Rng = Pqc_util.Rng

type t = { n : int; edges : (int * int) list }

let normalize_edge (a, b) = if a < b then (a, b) else (b, a)

let make n edges =
  if n <= 0 then invalid_arg "Graph.make: positive node count required";
  let norm = List.map normalize_edge edges in
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Graph.make: self-loop";
      if a < 0 || b >= n then invalid_arg "Graph.make: endpoint out of range")
    norm;
  let sorted = List.sort_uniq compare norm in
  if List.length sorted <> List.length norm then
    invalid_arg "Graph.make: duplicate edge";
  { n; edges = sorted }

let n_edges g = List.length g.edges

let degree g v =
  List.length (List.filter (fun (a, b) -> a = v || b = v) g.edges)

let clique n =
  make n
    (List.concat_map
       (fun a -> List.map (fun b -> (a, b)) (List.init (n - a - 1) (fun i -> a + 1 + i)))
       (List.init n Fun.id))

let cycle n = make n (List.init n (fun i -> (i, (i + 1) mod n)))

let erdos_renyi rng ~p n =
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Rng.float rng 1.0 < p then edges := (a, b) :: !edges
    done
  done;
  make n !edges

(* Pairing (configuration) model: [degree] stubs per node, random perfect
   matching of stubs, rejected on self-loops or multi-edges. *)
let random_regular rng ~degree n =
  if degree >= n then invalid_arg "Graph.random_regular: degree too large";
  if degree * n mod 2 = 1 then
    invalid_arg "Graph.random_regular: degree * n must be even";
  let attempt () =
    let stubs = Array.concat (List.init n (fun v -> Array.make degree v)) in
    Rng.shuffle rng stubs;
    let edges = ref [] in
    let seen = Hashtbl.create (degree * n) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < Array.length stubs do
      let a = stubs.(!i) and b = stubs.(!i + 1) in
      let e = normalize_edge (a, b) in
      if a = b || Hashtbl.mem seen e then ok := false
      else begin
        Hashtbl.replace seen e ();
        edges := e :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Some !edges else None
  in
  let rec retry k =
    if k = 0 then
      failwith "Graph.random_regular: exceeded rejection budget"
    else
      match attempt () with Some e -> make n e | None -> retry (k - 1)
  in
  retry 10_000

let is_regular g ~degree =
  List.for_all (fun v -> degree = List.length (List.filter (fun (a, b) -> a = v || b = v) g.edges))
    (List.init g.n Fun.id)

let pp fmt g =
  Format.fprintf fmt "graph[%d nodes]:" g.n;
  List.iter (fun (a, b) -> Format.fprintf fmt " %d-%d" a b) g.edges
