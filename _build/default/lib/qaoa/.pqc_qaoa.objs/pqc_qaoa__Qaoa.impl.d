lib/qaoa/qaoa.ml: Array Float Graph List Maxcut Pqc_quantum Pqc_util
