lib/qaoa/graph.ml: Array Format Fun Hashtbl List Pqc_util
