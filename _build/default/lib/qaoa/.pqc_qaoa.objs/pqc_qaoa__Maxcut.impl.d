lib/qaoa/maxcut.ml: Array Graph List Pqc_quantum
