lib/qaoa/maxcut.mli: Graph Pqc_linalg Pqc_quantum
