lib/qaoa/graph.mli: Format Pqc_util
