lib/qaoa/qaoa.mli: Graph Pqc_quantum
