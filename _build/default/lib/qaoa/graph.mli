(** Undirected simple graphs and the paper's two random families.

    QAOA MAXCUT benchmarks use 3-regular and Erdős–Rényi (p = 1/2) random
    graphs on 6 and 8 nodes (Section 4.2); Figure 2 uses the 4-node
    clique.  Generators are seeded for reproducibility. *)

type t = { n : int; edges : (int * int) list }
(** [edges] hold each undirected edge once, smaller endpoint first, sorted. *)

val make : int -> (int * int) list -> t
(** Normalizes edge order and rejects self-loops, duplicates, out-of-range
    endpoints. *)

val n_edges : t -> int

val degree : t -> int -> int

val clique : int -> t

val cycle : int -> t

val random_regular : Pqc_util.Rng.t -> degree:int -> int -> t
(** Uniform-ish random [degree]-regular graph by the pairing model with
    rejection (requires [degree * n] even and [degree < n]). *)

val erdos_renyi : Pqc_util.Rng.t -> p:float -> int -> t
(** Each possible edge included independently with probability [p]. *)

val is_regular : t -> degree:int -> bool

val pp : Format.formatter -> t -> unit
