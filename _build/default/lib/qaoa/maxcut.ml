module Pauli = Pqc_quantum.Pauli

let side g assignment v = (assignment lsr (g.Graph.n - 1 - v)) land 1

let cut_value g assignment =
  List.length
    (List.filter (fun (a, b) -> side g assignment a <> side g assignment b) g.Graph.edges)

let optimum g =
  assert (g.Graph.n <= 24);
  let best = ref 0 in
  for a = 0 to (1 lsl g.Graph.n) - 1 do
    let c = cut_value g a in
    if c > !best then best := c
  done;
  !best

let hamiltonian g =
  let n = g.Graph.n in
  let identity = Array.make n Pauli.I in
  let zz (a, b) =
    let ops = Array.make n Pauli.I in
    ops.(a) <- Pauli.Z;
    ops.(b) <- Pauli.Z;
    (-0.5, ops)
  in
  let constant = (0.5 *. float_of_int (Graph.n_edges g), identity) in
  Pauli.make n (constant :: List.map zz g.Graph.edges)

let expected_cut g psi = Pauli.expectation (hamiltonian g) psi
