lib/hyperopt/hyperopt.mli: Pqc_grape Pqc_linalg
