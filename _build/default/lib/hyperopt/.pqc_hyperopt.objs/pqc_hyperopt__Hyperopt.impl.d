lib/hyperopt/hyperopt.ml: Array Hashtbl List Option Pqc_grape Pqc_linalg Pqc_util
