type options = {
  max_iters : int;
  a : float;
  c : float;
  stability : float;
  alpha : float;
  gamma : float;
  seed : int;
}

let default_options =
  { max_iters = 300; a = 0.2; c = 0.15; stability = 20.0; alpha = 0.602;
    gamma = 0.101; seed = 0 }

type result = {
  x : float array;
  f : float;
  best_x : float array;
  evals : int;
  history : float list;
}

let minimize ?(options = default_options) ~f ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Spsa.minimize: empty initial point";
  let rng = Rng.create options.seed in
  let x = Array.copy x0 in
  let best_x = ref (Array.copy x0) in
  let best_f = ref (f x0) in
  let evals = ref 1 in
  let history = ref [] in
  for k = 1 to options.max_iters do
    let ak =
      options.a /. ((float_of_int k +. options.stability) ** options.alpha)
    in
    let ck = options.c /. (float_of_int k ** options.gamma) in
    let delta = Array.init n (fun _ -> if Rng.bool rng then 1.0 else -1.0) in
    let shift sign =
      Array.init n (fun i -> x.(i) +. (sign *. ck *. delta.(i)))
    in
    let plus = shift 1.0 and minus = shift (-1.0) in
    let f_plus = f plus and f_minus = f minus in
    evals := !evals + 2;
    let record point value =
      if value < !best_f then begin
        best_f := value;
        best_x := Array.copy point
      end
    in
    record plus f_plus;
    record minus f_minus;
    let scale = (f_plus -. f_minus) /. (2.0 *. ck) in
    for i = 0 to n - 1 do
      (* Rademacher perturbations: 1/delta_i = delta_i. *)
      x.(i) <- x.(i) -. (ak *. scale *. delta.(i))
    done;
    history := !best_f :: !history
  done;
  { x; f = !best_f; best_x = !best_x; evals = !evals;
    history = List.rev !history }
