let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geometric_mean a =
  assert (Array.length a > 0);
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
  exp (log_sum /. float_of_int (Array.length a))

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

let minimum a = Array.fold_left min a.(0) a
let maximum a = Array.fold_left max a.(0) a

let median a =
  let b = Array.copy a in
  Array.sort compare b;
  let n = Array.length b in
  assert (n > 0);
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let argmin a =
  assert (Array.length a > 0);
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(!best) then best := i
  done;
  !best

let linspace lo hi n =
  assert (n >= 2);
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (float_of_int i *. step))

let logspace lo hi n = Array.map (fun e -> 10.0 ** e) (linspace lo hi n)
