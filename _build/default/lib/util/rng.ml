type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* splitmix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_seed t)

let split t = { state = int64 t }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let r = Int64.to_int (Int64.logand (int64 t) mask) in
  r mod bound

let float t bound =
  (* 53 random bits -> [0, 1), scaled. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
