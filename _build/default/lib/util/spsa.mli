(** Simultaneous Perturbation Stochastic Approximation (Spall 1992).

    The other classical optimizer commonly paired with variational quantum
    algorithms: each step estimates the full gradient from just two
    objective evaluations along a random Rademacher direction, which makes
    it well suited to noisy, expensive energy measurements.  Deterministic
    given the seed. *)

type options = {
  max_iters : int;  (** Steps (each costs two objective evaluations). *)
  a : float;  (** Step-size numerator. *)
  c : float;  (** Perturbation-size numerator. *)
  stability : float;  (** The 'A' offset damping early steps. *)
  alpha : float;  (** Step-size decay exponent (standard 0.602). *)
  gamma : float;  (** Perturbation decay exponent (standard 0.101). *)
  seed : int;
}

val default_options : options

type result = {
  x : float array;  (** Final iterate. *)
  f : float;  (** Objective at the best evaluated point. *)
  best_x : float array;  (** Best evaluated point. *)
  evals : int;
  history : float list;  (** Best-so-far objective per iteration. *)
}

val minimize :
  ?options:options -> f:(float array -> float) -> x0:float array -> unit ->
  result
