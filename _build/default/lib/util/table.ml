type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create headers = { headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let len = List.length cells in
  if len > n then invalid_arg "Table.add_row: more cells than headers";
  let padded = cells @ List.init (n - len) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let cell_f ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let cell_x x = Printf.sprintf "%.2fx" x

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update_widths = function
    | Separator -> ()
    | Cells cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter update_widths rows;
  let pad i c = c ^ String.make (widths.(i) - String.length c) ' ' in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let rule =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let body = function Separator -> rule | Cells cells -> line cells in
  String.concat "\n" (rule :: line t.headers :: rule :: List.map body rows @ [ rule ])

let print t = print_endline (render t)
