(** Nelder–Mead derivative-free simplex minimizer.

    The classical optimizer half of a variational algorithm: "typically, a
    classical optimizer that is robust to small amounts of noise (e.g.
    Nelder-Mead) is chosen" (paper Section 1).  Standard
    reflection/expansion/contraction/shrink rules with adaptive step
    bookkeeping; deterministic given the initial point. *)

type options = {
  max_evals : int;  (** Budget of objective evaluations. *)
  xtol : float;  (** Simplex size convergence threshold. *)
  ftol : float;  (** Objective spread convergence threshold. *)
  initial_step : float;  (** Size of the initial simplex around x0. *)
}

val default_options : options

type result = {
  x : float array;  (** Best point found. *)
  f : float;  (** Objective value at [x]. *)
  evals : int;  (** Objective evaluations consumed. *)
  iterations : int;  (** Simplex update steps. *)
  history : float list;  (** Best-so-far objective after each iteration. *)
}

val minimize :
  ?options:options -> f:(float array -> float) -> x0:float array -> unit ->
  result
