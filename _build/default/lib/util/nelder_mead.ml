type options = {
  max_evals : int;
  xtol : float;
  ftol : float;
  initial_step : float;
}

let default_options =
  { max_evals = 2000; xtol = 1e-6; ftol = 1e-9; initial_step = 0.25 }

type result = {
  x : float array;
  f : float;
  evals : int;
  iterations : int;
  history : float list;
}

(* Standard coefficients: reflection, expansion, contraction, shrink. *)
let alpha = 1.0
let gamma = 2.0
let rho = 0.5
let sigma = 0.5

let minimize ?(options = default_options) ~f ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty initial point";
  let evals = ref 0 in
  let eval x =
    incr evals;
    f x
  in
  (* Initial simplex: x0 plus a step along each coordinate. *)
  let simplex =
    Array.init (n + 1) (fun i ->
        let x = Array.copy x0 in
        if i > 0 then x.(i - 1) <- x.(i - 1) +. options.initial_step;
        x)
  in
  let values = Array.map eval simplex in
  let iterations = ref 0 in
  let history = ref [] in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    let sx = Array.map (fun i -> simplex.(i)) idx in
    let sv = Array.map (fun i -> values.(i)) idx in
    Array.blit sx 0 simplex 0 (n + 1);
    Array.blit sv 0 values 0 (n + 1)
  in
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* All vertices except the worst. *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (simplex.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine c x coef =
    Array.init n (fun j -> c.(j) +. (coef *. (x.(j) -. c.(j))))
  in
  let simplex_size () =
    let best = simplex.(0) in
    let worst_dist = ref 0.0 in
    for i = 1 to n do
      let d = ref 0.0 in
      for j = 0 to n - 1 do
        d := !d +. Float.abs (simplex.(i).(j) -. best.(j))
      done;
      if !d > !worst_dist then worst_dist := !d
    done;
    !worst_dist
  in
  order ();
  let continue_ () =
    !evals < options.max_evals
    && simplex_size () > options.xtol
    && Float.abs (values.(n) -. values.(0)) > options.ftol
  in
  while continue_ () do
    incr iterations;
    let c = centroid () in
    let xr = combine c simplex.(n) (-.alpha) in
    let fr = eval xr in
    if fr < values.(0) then begin
      (* Try to expand past the reflection. *)
      let xe = combine c simplex.(n) (-.gamma) in
      let fe = eval xe in
      if fe < fr then begin
        simplex.(n) <- xe;
        values.(n) <- fe
      end
      else begin
        simplex.(n) <- xr;
        values.(n) <- fr
      end
    end
    else if fr < values.(n - 1) then begin
      simplex.(n) <- xr;
      values.(n) <- fr
    end
    else begin
      (* Contract toward the centroid; shrink on failure. *)
      let xc = combine c simplex.(n) rho in
      let fc = eval xc in
      if fc < values.(n) then begin
        simplex.(n) <- xc;
        values.(n) <- fc
      end
      else
        for i = 1 to n do
          simplex.(i) <- combine simplex.(0) simplex.(i) sigma;
          values.(i) <- eval simplex.(i)
        done
    end;
    order ();
    history := values.(0) :: !history
  done;
  { x = Array.copy simplex.(0); f = values.(0); evals = !evals;
    iterations = !iterations; history = List.rev !history }
