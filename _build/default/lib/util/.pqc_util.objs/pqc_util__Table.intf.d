lib/util/table.mli:
