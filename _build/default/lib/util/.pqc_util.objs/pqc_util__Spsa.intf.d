lib/util/spsa.mli:
