lib/util/spsa.ml: Array List Rng
