lib/util/rng.mli:
