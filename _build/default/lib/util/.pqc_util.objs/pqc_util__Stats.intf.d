lib/util/stats.mli:
