lib/util/nelder_mead.ml: Array Float Fun List
