(** ASCII table rendering for the benchmark harness, so that regenerated
    tables read like the paper's tables. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells, long rows raise. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 1). *)

val cell_x : float -> string
(** Format a speedup factor as e.g. ["2.15x"]. *)

val render : t -> string
(** Render with a header rule and aligned columns. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a newline. *)
