(** Deterministic, seedable pseudo-random number generation.

    All stochastic behaviour in the library (graph generation, random
    parametrizations, random-search hyperparameter optimization, GRAPE pulse
    initialization) flows through this module so that every benchmark and test
    is reproducible from a fixed seed, mirroring the paper's practice of fixing
    randomization seeds ("for both reproducability and consistency between
    identical benchmarks", Section 8).

    The generator is splitmix64: tiny state, good statistical quality, and
    trivially splittable for independent substreams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
