type t = {
  beta1 : float;
  beta2 : float;
  epsilon : float;
  m : float array;
  v : float array;
  mutable step_count : int;
}

let create ?(beta1 = 0.9) ?(beta2 = 0.999) ?(epsilon = 1e-8) dim =
  { beta1; beta2; epsilon; m = Array.make dim 0.0; v = Array.make dim 0.0;
    step_count = 0 }

let step t ~learning_rate ~params ~grad =
  assert (Array.length params = Array.length t.m);
  assert (Array.length grad = Array.length t.m);
  t.step_count <- t.step_count + 1;
  let k = float_of_int t.step_count in
  let bias1 = 1.0 -. (t.beta1 ** k) in
  let bias2 = 1.0 -. (t.beta2 ** k) in
  for i = 0 to Array.length params - 1 do
    t.m.(i) <- (t.beta1 *. t.m.(i)) +. ((1.0 -. t.beta1) *. grad.(i));
    t.v.(i) <- (t.beta2 *. t.v.(i)) +. ((1.0 -. t.beta2) *. grad.(i) *. grad.(i));
    let m_hat = t.m.(i) /. bias1 and v_hat = t.v.(i) /. bias2 in
    params.(i) <- params.(i) -. (learning_rate *. m_hat /. (sqrt v_hat +. t.epsilon))
  done

let reset t =
  Array.fill t.m 0 (Array.length t.m) 0.0;
  Array.fill t.v 0 (Array.length t.v) 0.0;
  t.step_count <- 0
