module Cmat = Pqc_linalg.Cmat
module Topology = Pqc_transpile.Topology
(** The gmon system Hamiltonian (paper Appendix A).

    Each qubit j carries two control fields:
    - a {e charge} drive  Omega_c,j(t) (a† + a)_j  — X-axis rotations,
      |Omega_c| <= 2 pi x 0.1 GHz;
    - a {e flux} drive    Omega_f,j(t) (a† a)_j    — Z-axis rotations,
      |Omega_f| <= 2 pi x 1.5 GHz (the 15x Z/X asymmetry GRAPE exploits);

    and each connected pair (j, k) a coupler field
    g(t) (a† + a)_j (a† + a)_k with |g| <= 2 pi x 50 MHz (iSWAP-type
    interaction).

    Operators can be truncated to the qubit subspace (binary approximation,
    the paper's standard setting) or kept at three levels ({e qutrit}) to
    model leakage for the "more realistic" Table 5 experiments; the qutrit
    drift term carries the transmon anharmonicity that detunes the leakage
    level. *)

type level = Qubit | Qutrit

type control = {
  label : string;  (** e.g. "c0" (charge), "f0" (flux), "g0-1" (coupler). *)
  matrix : Cmat.t;  (** Hermitian generator H_k, full system dimension. *)
  max_amp : float;  (** Amplitude bound, rad/ns. *)
}

type t = {
  n_qubits : int;
  level : level;
  dim : int;  (** 2^n or 3^n. *)
  drift : Cmat.t;  (** Control-independent term (anharmonicity; 0 for qubits). *)
  controls : control array;
}

val charge_amp_max : float
(** 2 pi x 0.1 rad/ns. *)

val flux_amp_max : float
(** 2 pi x 1.5 rad/ns. *)

val coupling_amp_max : float
(** 2 pi x 0.05 rad/ns. *)

val anharmonicity : float
(** -2 pi x 0.2 rad/ns, qutrit drift detuning of level |2>. *)

val gmon : ?level:level -> ?topology:Topology.t -> int -> t
(** [gmon n] builds the system for [n] qubits.  [topology] defaults to a
    line (the 1-D slice of the rectangular grid the paper considers);
    couplers are created for every topology edge. *)

val embed_target : t -> Cmat.t -> Cmat.t
(** Lift a 2^n x 2^n computational-subspace unitary to the full system
    dimension (identity lift for [Qubit]; zero-padded block for [Qutrit],
    suitable for subspace-fidelity evaluation). *)

val subspace_dim : t -> int
(** Always 2^n — the dimension fidelities are normalized by. *)
