module Cmat = Pqc_linalg.Cmat
module Topology = Pqc_transpile.Topology

type level = Qubit | Qutrit

type control = { label : string; matrix : Cmat.t; max_amp : float }

type t = {
  n_qubits : int;
  level : level;
  dim : int;
  drift : Cmat.t;
  controls : control array;
}

let two_pi = 2.0 *. Float.pi

let charge_amp_max = two_pi *. 0.1
let flux_amp_max = two_pi *. 1.5
let coupling_amp_max = two_pi *. 0.05
let anharmonicity = -.two_pi *. 0.2

let levels = function Qubit -> 2 | Qutrit -> 3

let re x = { Complex.re = x; im = 0.0 }

(* a† + a truncated to d levels: entries sqrt(m+1) on the (m, m+1) and
   (m+1, m) positions. *)
let charge_op d =
  let m = Cmat.create d d in
  for k = 0 to d - 2 do
    let v = re (sqrt (float_of_int (k + 1))) in
    Cmat.set m k (k + 1) v;
    Cmat.set m (k + 1) k v
  done;
  m

(* a† a = diag(0, 1, ..., d-1). *)
let number_op d =
  let m = Cmat.create d d in
  for k = 0 to d - 1 do
    Cmat.set m k k (re (float_of_int k))
  done;
  m

(* |d-1><d-1| for the anharmonic detuning of the top level. *)
let top_projector d =
  let m = Cmat.create d d in
  Cmat.set m (d - 1) (d - 1) (re 1.0);
  m

(* Lift a single-site operator to site [j] of an [n]-site register. *)
let lift_1 ~n ~d op j =
  let acc = ref (Cmat.identity 1) in
  for site = 0 to n - 1 do
    acc := Cmat.kron !acc (if site = j then op else Cmat.identity d)
  done;
  !acc

let lift_2 ~n ~d op_a j op_b k =
  let acc = ref (Cmat.identity 1) in
  for site = 0 to n - 1 do
    let factor =
      if site = j then op_a else if site = k then op_b else Cmat.identity d
    in
    acc := Cmat.kron !acc factor
  done;
  !acc

let gmon ?(level = Qubit) ?topology n =
  if n <= 0 then invalid_arg "Hamiltonian.gmon: positive qubit count required";
  let topo = match topology with Some t -> t | None -> Topology.line n in
  if Topology.n_qubits topo <> n then
    invalid_arg "Hamiltonian.gmon: topology size mismatch";
  let d = levels level in
  let dim = int_of_float (float_of_int d ** float_of_int n +. 0.5) in
  let charge = charge_op d and number = number_op d in
  let singles =
    List.concat_map
      (fun j ->
        [ { label = Printf.sprintf "c%d" j;
            matrix = lift_1 ~n ~d charge j;
            max_amp = charge_amp_max };
          { label = Printf.sprintf "f%d" j;
            matrix = lift_1 ~n ~d number j;
            max_amp = flux_amp_max } ])
      (List.init n Fun.id)
  in
  let couplers =
    List.map
      (fun (a, b) ->
        { label = Printf.sprintf "g%d-%d" a b;
          matrix = lift_2 ~n ~d charge a charge b;
          max_amp = coupling_amp_max })
      (Topology.edges topo)
  in
  let drift =
    match level with
    | Qubit -> Cmat.create dim dim
    | Qutrit ->
      let acc = ref (Cmat.create dim dim) in
      for j = 0 to n - 1 do
        acc :=
          Cmat.add !acc
            (Cmat.scale (re anharmonicity) (lift_1 ~n ~d (top_projector d) j))
      done;
      !acc
  in
  { n_qubits = n; level; dim; drift; controls = Array.of_list (singles @ couplers) }

let subspace_dim t = 1 lsl t.n_qubits

(* Index of the computational basis state [b] (an n-bit integer, qubit 0 most
   significant) inside the d^n-dimensional space. *)
let subspace_index t b =
  let d = levels t.level in
  let idx = ref 0 in
  for j = 0 to t.n_qubits - 1 do
    let bit = (b lsr (t.n_qubits - 1 - j)) land 1 in
    idx := (!idx * d) + bit
  done;
  !idx

let embed_target t target =
  let sub = subspace_dim t in
  if Cmat.rows target <> sub || Cmat.cols target <> sub then
    invalid_arg "Hamiltonian.embed_target: dimension mismatch";
  match t.level with
  | Qubit -> Cmat.copy target
  | Qutrit ->
    let m = Cmat.create t.dim t.dim in
    for i = 0 to sub - 1 do
      for j = 0 to sub - 1 do
        Cmat.set m (subspace_index t i) (subspace_index t j) (Cmat.get target i j)
      done
    done;
    m
