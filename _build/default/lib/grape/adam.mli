(** ADAM first-order optimizer over flat parameter vectors, with the
    learning-rate/decay hyperparameters that flexible partial compilation
    tunes per subcircuit (Section 7.2). *)

type t

val create : ?beta1:float -> ?beta2:float -> ?epsilon:float -> int -> t
(** [create dim]; defaults beta1 = 0.9, beta2 = 0.999, epsilon = 1e-8. *)

val step :
  t -> learning_rate:float -> params:float array -> grad:float array -> unit
(** One in-place update of [params].  [learning_rate] is supplied per call so
    callers can apply decay schedules. *)

val reset : t -> unit
