lib/grape/hamiltonian.mli: Pqc_linalg Pqc_transpile
