lib/grape/grape.mli: Hamiltonian Pqc_linalg Pqc_pulse
