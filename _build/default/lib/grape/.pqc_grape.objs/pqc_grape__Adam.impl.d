lib/grape/adam.ml: Array
