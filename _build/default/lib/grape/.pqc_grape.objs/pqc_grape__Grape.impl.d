lib/grape/grape.ml: Adam Array Complex Float Hamiltonian List Option Pqc_linalg Pqc_pulse Pqc_util Sys
