lib/grape/hamiltonian.ml: Array Complex Float Fun List Pqc_linalg Pqc_transpile Printf
