lib/grape/adam.mli:
