(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (MICRO-52, Gokhale et al. 2019).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table4 fig7  # selected experiments
     REPRO_MODE=full dune exec bench/main.exe # larger numeric-GRAPE budgets

   Experiments: table1 table2 table3 table4 table5 fig2 fig4 fig6 fig7
   ablation-blocking ablation-transpile micro.  (Figure 5 is the speedup
   view of Table 4's VQE rows and is printed by table4.)

   Fast mode (default) prices blocks with the calibrated Pulse_model engine
   and runs the real numeric GRAPE engine only where it is cheap (1-3 qubit
   searches); full mode raises the numeric budgets.  Paper-reported values
   are printed alongside measured ones; EXPERIMENTS.md records both. *)

module Rng = Pqc_util.Rng
module Stats = Pqc_util.Stats
module Table = Pqc_util.Table
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
module Slice = Pqc_transpile.Slice
module Route = Pqc_transpile.Route
module Gate_times = Pqc_pulse.Gate_times
module Hamiltonian = Pqc_grape.Hamiltonian
module Grape = Pqc_grape.Grape
module Hyperopt = Pqc_hyperopt.Hyperopt
module Molecule = Pqc_vqe.Molecule
module Uccsd = Pqc_vqe.Uccsd
module Graph = Pqc_qaoa.Graph
module Qaoa = Pqc_qaoa.Qaoa
module Obs = Pqc_obs.Obs
open Pqc_core

let full_mode =
  match Sys.getenv_opt "REPRO_MODE" with Some "full" -> true | Some _ | None -> false

let section id title = Printf.printf "\n=== %s: %s ===\n%!" id title

let note fmt = Printf.printf fmt

(* Benchmark circuits, seeded for reproducibility. *)
let graph_seed = 2019

let qaoa_graphs n =
  let rng = Rng.create graph_seed in
  let reg = Graph.random_regular rng ~degree:3 n in
  let er = Graph.erdos_renyi rng ~p:0.5 n in
  (reg, er)

let theta_for seed c =
  let rng = Rng.create seed in
  let n = Circuit.n_params c in
  Array.init n (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))

let prepared_cache : (string, Circuit.t) Hashtbl.t = Hashtbl.create 64

let prepared key circuit =
  match Hashtbl.find_opt prepared_cache key with
  | Some c -> c
  | None ->
    let c = Compiler.prepare circuit in
    Hashtbl.replace prepared_cache key c;
    c

let vqe_prepared m = prepared m.Molecule.name (Uccsd.ansatz m)

let qaoa_prepared ~kind ~n ~p =
  let reg, er = qaoa_graphs n in
  let g = match kind with `Regular -> reg | `Erdos -> er in
  prepared
    (Printf.sprintf "%s%dp%d"
       (match kind with `Regular -> "3reg" | `Erdos -> "er")
       n p)
    (Qaoa.circuit g ~p)

let kind_name = function `Regular -> "3-Regular" | `Erdos -> "Erdos-Renyi"

(* All four strategies on one prepared circuit (model engine). *)
let compile_all c ~theta =
  let engine = Engine.model in
  ( Compiler.gate_based c ~theta,
    Compiler.strict_partial ~engine c ~theta,
    Compiler.flexible_partial ~engine c ~theta,
    Compiler.full_grape ~engine c ~theta )

(* ------------------------------------------------------------------ *)
(* Table 1: gate set pulse durations                                   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "table1" "gate-set pulse durations (ns)";
  let numeric_settings =
    { Grape.fast_settings with Grape.dt = 0.1;
      max_iters = (if full_mode then 500 else 350); target_fidelity = 0.999 }
  in
  let numeric n circuit upper =
    let sys = Hamiltonian.gmon n in
    match
      Grape.minimal_time ~settings:numeric_settings ~upper_bound:upper sys
        ~target:(Circuit.unitary circuit)
    with
    | Some s -> Printf.sprintf "%.1f" s.Grape.minimal.Grape.total_time
    | None -> "-"
  in
  let gates =
    [ ("Rz", Circuit.of_gates 1 [ (Gate.Rz (Param.const Float.pi), [ 0 ]) ], 2.0, Gate_times.rz);
      ("Rx", Circuit.of_gates 1 [ (Gate.Rx (Param.const Float.pi), [ 0 ]) ], 5.0, Gate_times.rx);
      ("H", Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ], 4.0, Gate_times.h);
      ("CX", Circuit.of_gates 2 [ (Gate.CX, [ 0; 1 ]) ], 8.0, Gate_times.cx);
      ("SWAP", Circuit.of_gates 2 [ (Gate.Swap, [ 0; 1 ]) ], 10.0, Gate_times.swap) ]
  in
  let t = Table.create [ "gate"; "paper (ns)"; "lookup"; "model"; "numeric GRAPE" ] in
  List.iter
    (fun (name, circuit, upper, paper) ->
      Table.add_row t
        [ name; Table.cell_f paper;
          Table.cell_f (Gate_times.circuit_duration circuit);
          Table.cell_f (Pulse_model.block_duration circuit);
          numeric (Circuit.n_qubits circuit) circuit upper ])
    gates;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 2: VQE-UCCSD benchmark statistics                              *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "table2" "VQE-UCCSD benchmarks (width, params, gate-based runtime)";
  let paper =
    [ ("H2", 35.0); ("LiH", 872.0); ("BeH2", 5308.0); ("NaH", 5490.0); ("H2O", 33842.0) ]
  in
  let t =
    Table.create
      [ "molecule"; "qubits"; "params"; "gate-based (ns)"; "paper (ns)"; "theta-gate %" ]
  in
  List.iter
    (fun m ->
      let c = vqe_prepared m in
      Table.add_row t
        [ m.Molecule.name;
          string_of_int m.Molecule.n_qubits;
          string_of_int (Molecule.n_params m);
          Table.cell_f (Gate_times.circuit_duration c);
          Table.cell_f (List.assoc m.Molecule.name paper);
          Table.cell_f (100.0 *. (1.0 -. Slice.fixed_gate_fraction c)) ])
    Molecule.all;
  Table.print t;
  note "Paper: theta gates are 5-8%% of VQE-UCCSD gates (Section 6).\n"

(* ------------------------------------------------------------------ *)
(* Table 3: QAOA gate-based runtimes                                    *)
(* ------------------------------------------------------------------ *)

let paper_table3 =
  [ (`Regular, 6, 1, 113.0); (`Erdos, 6, 1, 84.0); (`Regular, 8, 1, 163.0); (`Erdos, 8, 1, 157.0);
    (`Regular, 6, 2, 199.0); (`Erdos, 6, 2, 151.0); (`Regular, 8, 2, 365.0); (`Erdos, 8, 2, 297.0);
    (`Regular, 6, 3, 277.0); (`Erdos, 6, 3, 223.0); (`Regular, 8, 3, 530.0); (`Erdos, 8, 3, 443.0);
    (`Regular, 6, 4, 356.0); (`Erdos, 6, 4, 296.0); (`Regular, 8, 4, 695.0); (`Erdos, 8, 4, 596.0);
    (`Regular, 6, 5, 434.0); (`Erdos, 6, 5, 368.0); (`Regular, 8, 5, 860.0); (`Erdos, 8, 5, 750.0);
    (`Regular, 6, 6, 512.0); (`Erdos, 6, 6, 440.0); (`Regular, 8, 6, 1025.0); (`Erdos, 8, 6, 903.0);
    (`Regular, 6, 7, 590.0); (`Erdos, 6, 7, 512.0); (`Regular, 8, 7, 1191.0); (`Erdos, 8, 7, 1056.0);
    (`Regular, 6, 8, 668.0); (`Erdos, 6, 8, 584.0); (`Regular, 8, 8, 1356.0); (`Erdos, 8, 8, 1209.0) ]

let table3 () =
  section "table3" "QAOA MAXCUT gate-based runtimes (32 circuits)";
  let t =
    Table.create
      [ "p"; "3-Reg N=6"; "paper"; "ER N=6"; "paper"; "3-Reg N=8"; "paper"; "ER N=8"; "paper" ]
  in
  for p = 1 to 8 do
    let dur kind n = Gate_times.circuit_duration (qaoa_prepared ~kind ~n ~p) in
    let paper kind n =
      List.find_map
        (fun (k, n', p', v) -> if k = kind && n' = n && p' = p then Some v else None)
        paper_table3
      |> Option.get
    in
    Table.add_row t
      [ string_of_int p;
        Table.cell_f (dur `Regular 6); Table.cell_f (paper `Regular 6);
        Table.cell_f (dur `Erdos 6); Table.cell_f (paper `Erdos 6);
        Table.cell_f (dur `Regular 8); Table.cell_f (paper `Regular 8);
        Table.cell_f (dur `Erdos 8); Table.cell_f (paper `Erdos 8) ]
  done;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figure 2: K4 clique — gate-based linear in p, GRAPE asymptotes       *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  section "fig2" "MAXCUT on the 4-node clique: gate-based vs full GRAPE vs p";
  let k4 = Graph.clique 4 in
  let engine = Engine.model in
  let t = Table.create [ "p"; "gate-based (ns)"; "GRAPE (ns)"; "ratio"; "paper ratio" ] in
  let paper_ratio = [ (1, 2.0); (6, 12.0) ] in
  List.iter
    (fun p ->
      (* Routed to a line and GRAPE'd as a single 4-qubit block. *)
      let c = prepared (Printf.sprintf "k4p%d" p) (Qaoa.circuit k4 ~p) in
      let theta = theta_for (500 + p) c in
      let g = Compiler.gate_based c ~theta in
      let fg = Compiler.full_grape ~engine c ~theta in
      let ratio = g.Strategy.duration_ns /. fg.Strategy.duration_ns in
      Table.add_row t
        [ string_of_int p;
          Table.cell_f g.Strategy.duration_ns;
          Table.cell_f fg.Strategy.duration_ns;
          Table.cell_x ratio;
          (match List.assoc_opt p paper_ratio with
          | Some r -> Table.cell_x r
          | None -> "") ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Table.print t;
  note "Paper: GRAPE times asymptote below 50 ns while gate-based grows linearly.\n"

(* ------------------------------------------------------------------ *)
(* Figure 4: hyperparameter robustness across angle bindings            *)
(* ------------------------------------------------------------------ *)

let figure4 () =
  section "fig4" "GRAPE error vs ADAM learning rate, across angle bindings";
  note
    "Numeric engine on the single-angle flexible slices of the H2 UCCSD\n\
     ansatz (2 qubits; the paper uses 4-qubit LiH slices — same protocol,\n\
     reduced width so the sweep runs on one CPU; see DESIGN.md).\n";
  let slices = Slice.flexible (vqe_prepared Molecule.h2) in
  let sys = Hamiltonian.gmon 2 in
  let settings =
    { Grape.fast_settings with Grape.dt = 0.2;
      max_iters = (if full_mode then 300 else 150) }
  in
  let lr_grid = Stats.logspace (-2.0) 0.5 6 in
  let angles = [| 0.4; 1.2; 2.7 |] in
  List.iteri
    (fun idx (s : Slice.slice) ->
      match s.var with
      | None -> ()
      | Some v ->
        let target_of angle =
          let theta = Array.make (v + 1) 0.0 in
          theta.(v) <- angle;
          Circuit.unitary (Circuit.bind s.circuit theta)
        in
        let obj =
          { Hyperopt.system = sys; target_of;
            total_time = Gate_times.circuit_duration s.circuit *. 0.8;
            settings }
        in
        let points = Hyperopt.robustness ~lr_grid obj ~angles in
        let t =
          Table.create
            ("angle"
            :: List.map (fun lr -> Printf.sprintf "lr=%.3f" lr)
                 (Array.to_list lr_grid))
        in
        List.iter
          (fun (p : Hyperopt.robustness_point) ->
            Table.add_row t
              (Printf.sprintf "%.1f" p.angle
              :: List.map (fun (_, e) -> Printf.sprintf "%.3f" e) p.error_by_lr))
          points;
        Printf.printf "slice %d (theta_%d): final GRAPE error by learning rate\n" idx v;
        Table.print t;
        Printf.printf "best-lr stability across angles: %.2f (1.00 = perfectly robust)\n\n"
          (Hyperopt.best_lr_stability points))
    slices

(* ------------------------------------------------------------------ *)
(* Table 4 + Figures 5 and 6 (aggregate): pulse durations               *)
(* ------------------------------------------------------------------ *)

let paper_table4_vqe =
  [ ("H2", (35.3, 15.0, 5.0, 3.1)); ("LiH", (871.1, 307.0, 84.0, 19.3));
    ("BeH2", (5308.3, 2596.5, 2503.8, 2461.7)); ("NaH", (5490.4, 2842.7, 2770.8, 2752.0));
    ("H2O", (33842.2, 24781.4, 23546.7, 23546.7)) ]

let table4 () =
  section "table4" "pulse durations under the four strategies (Table 4, Figures 5-6)";
  let t =
    Table.create [ "benchmark"; "gate"; "strict"; "flex"; "grape"; "paper(g/s/f/G)" ]
  in
  let add_row name c paper =
    let theta = theta_for 42 c in
    let g, s, f, fg = compile_all c ~theta in
    Table.add_row t
      [ name;
        Table.cell_f g.Strategy.duration_ns;
        Table.cell_f s.Strategy.duration_ns;
        Table.cell_f f.Strategy.duration_ns;
        Table.cell_f fg.Strategy.duration_ns;
        paper ];
    (g, s, f, fg)
  in
  let vqe_results =
    List.map
      (fun m ->
        let paper =
          match List.assoc_opt m.Molecule.name paper_table4_vqe with
          | Some (a, b, c, d) -> Printf.sprintf "%.0f/%.0f/%.0f/%.0f" a b c d
          | None -> ""
        in
        (m.Molecule.name, add_row m.Molecule.name (vqe_prepared m) paper))
      Molecule.all
  in
  let qaoa_results =
    List.concat_map
      (fun (kind, n) ->
        List.map
          (fun p ->
            let name = Printf.sprintf "%s N=%d p=%d" (kind_name kind) n p in
            (n, add_row name (qaoa_prepared ~kind ~n ~p) ""))
          [ 1; 5 ])
      [ (`Regular, 6); (`Erdos, 6); (`Regular, 8); (`Erdos, 8) ]
  in
  Table.print t;

  Printf.printf "\nFigure 5 — VQE speedups over gate-based (paper strict/flex/grape:\n";
  Printf.printf "BeH2 2.04/2.12/2.15, NaH 1.93/1.98/2.00, H2O 1.37/1.44/1.44):\n";
  let t5 = Table.create [ "molecule"; "strict"; "flexible"; "grape" ] in
  List.iter
    (fun (name, (g, s, f, fg)) ->
      Table.add_row t5
        [ name;
          Table.cell_x (Strategy.speedup ~baseline:g s);
          Table.cell_x (Strategy.speedup ~baseline:g f);
          Table.cell_x (Strategy.speedup ~baseline:g fg) ])
    vqe_results;
  Table.print t5;

  Printf.printf "\nFigure 6 (aggregate) — QAOA speedups (paper: strict 1.22x/1.33x for\n";
  Printf.printf "N=6/8; flexible ~2.3x N=6, ~1.8x N=8, matching GRAPE):\n";
  let speedups n pick =
    qaoa_results
    |> List.filter_map (fun (n', r) -> if n' = n then Some (pick r) else None)
    |> Array.of_list
  in
  let t6 = Table.create [ "width"; "strict"; "flexible"; "grape" ] in
  List.iter
    (fun n ->
      let agg pick = Stats.geometric_mean (speedups n pick) in
      Table.add_row t6
        [ Printf.sprintf "N=%d" n;
          Table.cell_x (agg (fun (g, s, _, _) -> Strategy.speedup ~baseline:g s));
          Table.cell_x (agg (fun (g, _, f, _) -> Strategy.speedup ~baseline:g f));
          Table.cell_x (agg (fun (g, _, _, fg) -> Strategy.speedup ~baseline:g fg)) ])
    [ 6; 8 ];
  Table.print t6

(* Figure 6 detailed series: pulse durations vs p for all four families. *)
let figure6 () =
  section "fig6" "QAOA pulse durations vs p (per-family series)";
  List.iter
    (fun (kind, n) ->
      Printf.printf "\n%s N=%d:\n" (kind_name kind) n;
      let t = Table.create [ "p"; "gate"; "strict"; "flexible"; "grape" ] in
      for p = 1 to 8 do
        let c = qaoa_prepared ~kind ~n ~p in
        let theta = theta_for (42 + p) c in
        let g, s, f, fg = compile_all c ~theta in
        Table.add_row t
          [ string_of_int p;
            Table.cell_f g.Strategy.duration_ns;
            Table.cell_f s.Strategy.duration_ns;
            Table.cell_f f.Strategy.duration_ns;
            Table.cell_f fg.Strategy.duration_ns ]
      done;
      Table.print t)
    [ (`Regular, 6); (`Erdos, 6); (`Regular, 8); (`Erdos, 8) ]

(* ------------------------------------------------------------------ *)
(* Figure 7: compilation latency reduction of flexible vs full GRAPE    *)
(* ------------------------------------------------------------------ *)

let figure7 () =
  section "fig7" "compilation latency: flexible partial vs full GRAPE";
  let paper =
    [ ("BeH2", 56.0); ("NaH", 12.0); ("H2O", 15.0); ("3-Regular N=6", 80.0);
      ("3-Regular N=8", 82.0); ("Erdos-Renyi N=6", 44.0); ("Erdos-Renyi N=8", 15.0) ]
  in
  let t =
    Table.create
      [ "benchmark"; "grape s/iter"; "flex s/iter"; "reduction"; "paper"; "flex precompute" ]
  in
  let add name c =
    let theta = theta_for 42 c in
    let engine = Engine.model in
    let f = Compiler.flexible_partial ~engine c ~theta in
    let fg = Compiler.full_grape ~engine c ~theta in
    let reduction =
      fg.Strategy.per_iteration.Engine.seconds /. f.Strategy.per_iteration.Engine.seconds
    in
    Table.add_row t
      [ name;
        Table.cell_f fg.Strategy.per_iteration.Engine.seconds;
        Table.cell_f f.Strategy.per_iteration.Engine.seconds;
        Table.cell_x reduction;
        (match List.assoc_opt name paper with Some r -> Table.cell_x r | None -> "");
        Printf.sprintf "%.0f s" f.Strategy.precompute.Engine.seconds ]
  in
  List.iter
    (fun m -> add m.Molecule.name (vqe_prepared m))
    [ Molecule.beh2; Molecule.nah; Molecule.h2o ];
  List.iter
    (fun (kind, n) ->
      add (Printf.sprintf "%s N=%d" (kind_name kind) n) (qaoa_prepared ~kind ~n ~p:5))
    [ (`Regular, 6); (`Regular, 8); (`Erdos, 6); (`Erdos, 8) ];
  Table.print t;
  note
    "Flexible reruns one tuned GRAPE per slice (no binary search, tuned\n\
     hyperparameters); full GRAPE repeats the whole search every iteration.\n"

(* ------------------------------------------------------------------ *)
(* Table 5: standard vs realistic GRAPE settings                        *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "table5" "GRAPE speedup under standard vs realistic settings";
  note
    "Realistic = coarse sampling, qutrit leakage, aggressive pulse\n\
     regularization (paper Section 8.3).  Numeric engine on H2 VQE (2\n\
     qubits) and Erdos-Renyi N=3 QAOA.  In fast mode the 3-qubit realistic\n\
     run omits the leakage level (its 27-dimensional qutrit space exceeds\n\
     the fast budget; REPRO_MODE=full includes it).\n%!";
  let bench name circuit ~realistic_level =
    let circuit = Circuit.bind circuit (theta_for 42 circuit) in
    let n = Circuit.n_qubits circuit in
    let gate = Gate_times.circuit_duration circuit in
    let run level settings =
      let sys = Hamiltonian.gmon ~level n in
      match
        Grape.minimal_time ~settings ~precision:1.0 ~upper_bound:gate sys
          ~target:(Circuit.unitary circuit)
      with
      | Some s -> Some s.Grape.minimal.Grape.total_time
      | None -> None
    in
    let standard =
      run Hamiltonian.Qubit { Grape.fast_settings with Grape.dt = 0.25; max_iters = 700 }
    in
    let realistic =
      run realistic_level
        { Grape.realistic_settings with
          Grape.max_iters = (if full_mode then 1600 else 1000) }
    in
    let show = function
      | Some d -> Printf.sprintf "%.1f ns (%.1fx)" d (gate /. d)
      | None -> "-"
    in
    (name, gate, show standard, show realistic)
  in
  let h2 =
    bench "H2 VQE" (vqe_prepared Molecule.h2) ~realistic_level:Hamiltonian.Qutrit
  in
  let er3 =
    let g = Graph.cycle 3 in
    bench "Erdos-Renyi N=3 QAOA"
      (prepared "er3p1" (Qaoa.circuit g ~p:1))
      ~realistic_level:
        (if full_mode then Hamiltonian.Qutrit else Hamiltonian.Qubit)
  in
  let t = Table.create [ "benchmark"; "gate (ns)"; "standard GRAPE"; "realistic GRAPE" ] in
  List.iter
    (fun (name, gate, std, real) -> Table.add_row t [ name; Table.cell_f gate; std; real ])
    [ h2; er3 ];
  Table.print t;
  note
    "Paper: H2 11.4x (standard) vs 8.8x (realistic); ER N=3 4.5x vs 3.0x —\n\
     realistic pulses keep most of the speedup.\n"

(* ------------------------------------------------------------------ *)
(* Section 8.4: aggregate impact on total runtime                      *)
(* ------------------------------------------------------------------ *)

let aggregate () =
  section "aggregate" "total compilation latency and success probability (Section 8.4)";
  note
    "BeH2 VQE at the paper's 3500 iterations (Kandala et al.): total\n\
     runtime compilation latency per strategy, plus the success-probability\n\
     advantage of the shorter pulses (decoherence is exponential in pulse\n\
     duration; T2 = 20 us).  Paper: full GRAPE would take years of latency;\n\
     strict partial compilation precompiles in under an hour and adds none.\n";
  let iterations = 3500 in
  let c = vqe_prepared Molecule.beh2 in
  let n_qubits = Circuit.n_qubits c in
  let theta = theta_for 42 c in
  let engine = Engine.model in
  let baseline = Compiler.gate_based c ~theta in
  let human_time s =
    if s < 120.0 then Printf.sprintf "%.0f s" s
    else if s < 7200.0 then Printf.sprintf "%.1f h" (s /. 3600.0)
    else if s < 2.0 *. 86400.0 then Printf.sprintf "%.1f h" (s /. 3600.0)
    else if s < 60.0 *. 86400.0 then Printf.sprintf "%.1f days" (s /. 86400.0)
    else Printf.sprintf "%.2f years" (s /. (365.25 *. 86400.0))
  in
  let t =
    Table.create
      [ "strategy"; "precompute"; "latency x3500 iters"; "pulse (ns)";
        "success prob"; "vs gate-based" ]
  in
  List.iter
    (fun strategy ->
      let r = Compiler.compile ~engine strategy c ~theta in
      let total =
        float_of_int iterations *. r.Strategy.per_iteration.Engine.seconds
      in
      let p =
        Pqc_pulse.Decoherence.success_probability ~n_qubits r.Strategy.duration_ns
      in
      let adv =
        Pqc_pulse.Decoherence.advantage ~n_qubits
          ~baseline_ns:baseline.Strategy.duration_ns r.Strategy.duration_ns
      in
      Table.add_row t
        [ r.Strategy.strategy;
          human_time r.Strategy.precompute.Engine.seconds;
          human_time total;
          Table.cell_f r.Strategy.duration_ns;
          Table.cell_f ~decimals:3 p;
          Table.cell_x adv ])
    Compiler.all_strategies;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Noisy-simulation check of the decoherence claim                      *)
(* ------------------------------------------------------------------ *)

let noise () =
  section "noise" "decoherence simulation: state fidelity under each strategy";
  note
    "Density-matrix simulation of the H2 VQE circuit with T1/T2 noise.\n\
     Each strategy's pulse compression is applied as a uniform time scale\n\
     on the gate schedule; fidelity is measured against the ideal final\n\
     state.  This turns the pulse-speedup numbers into the success\n\
     probabilities the paper argues for (Sections 1, 8.4).\n";
  let module Density = Pqc_quantum.Density in
  let module Schedule = Pqc_transpile.Schedule in
  let c = vqe_prepared Molecule.h2 in
  let theta = theta_for 42 c in
  let bound = Circuit.bind c theta in
  let ideal = Pqc_quantum.Statevec.run bound in
  let sched = Schedule.schedule ~duration:Gate_times.instr_duration bound in
  let base_timings =
    Array.to_list
      (Array.map
         (fun (e : Schedule.entry) ->
           { Density.instr = e.Schedule.instr; start_time = e.Schedule.start_time;
             duration = e.Schedule.finish_time -. e.Schedule.start_time })
         sched.Schedule.entries)
  in
  let engine = Engine.model in
  let baseline = Compiler.gate_based c ~theta in
  let t2_values = [ 2_000.0; 10_000.0; 50_000.0 ] in
  let t =
    Table.create
      ("strategy" :: "pulse (ns)"
      :: List.map (fun t2 -> Printf.sprintf "fid @T2=%.0fus" (t2 /. 1000.0)) t2_values)
  in
  List.iter
    (fun strategy ->
      let r = Compiler.compile ~engine strategy c ~theta in
      let scale = r.Strategy.duration_ns /. baseline.Strategy.duration_ns in
      let timings =
        List.map
          (fun (tm : Density.timing) ->
            { tm with
              Density.start_time = tm.Density.start_time *. scale;
              duration = tm.Density.duration *. scale })
          base_timings
      in
      let fids =
        List.map
          (fun t2 ->
            let rho =
              Density.run_noisy ~t1_ns:(1.5 *. t2) ~t2_ns:t2
                ~n:(Circuit.n_qubits c) timings
            in
            Table.cell_f ~decimals:4 (Density.fidelity_to rho ideal))
          t2_values
      in
      Table.add_row t
        (r.Strategy.strategy :: Table.cell_f r.Strategy.duration_ns :: fids))
    Compiler.all_strategies;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablation_blocking () =
  section "ablation-blocking" "full-GRAPE pulse duration vs blocking width";
  let t = Table.create [ "benchmark"; "k=2"; "k=3"; "k=4" ] in
  let engine = Engine.model in
  let add name c =
    let theta = theta_for 42 c in
    let dur k = (Compiler.full_grape ~max_width:k ~engine c ~theta).Strategy.duration_ns in
    Table.add_row t
      [ name; Table.cell_f (dur 2); Table.cell_f (dur 3); Table.cell_f (dur 4) ]
  in
  add "BeH2" (vqe_prepared Molecule.beh2);
  add "3-Regular N=6 p=3" (qaoa_prepared ~kind:`Regular ~n:6 ~p:3);
  Table.print t;
  note "Wider blocks give GRAPE more scope (the paper fixes k=4, Section 5.2).\n"

(* Strict slicing variants: the Figure-3b region slicing vs the linear
   alternation (the compiler normally takes the better of the two). *)
let ablation_slicing () =
  section "ablation-slicing" "strict partial compilation: region vs linear slicing";
  let engine = Engine.model in
  let t = Table.create [ "benchmark"; "gate"; "region slicing"; "linear slicing" ] in
  let strict_with slicer c theta =
    let jobs = ref [] and cost = ref Engine.zero_cost in
    List.iter
      (fun (s : Slice.slice) ->
        match s.Slice.var with
        | None ->
          List.iter
            (fun (b : Pqc_transpile.Block.block) ->
              let r = Engine.search engine (Pqc_transpile.Block.extract b) in
              cost := Engine.add_cost !cost r.Engine.search_cost;
              jobs :=
                { Strategy.label = "blk"; qubits = b.Pqc_transpile.Block.qubits;
                  duration = r.Engine.duration_ns }
                :: !jobs)
            (Pqc_transpile.Block.partition ~max_width:4 s.Slice.circuit)
        | Some _ ->
          Circuit.iter
            (fun (i : Circuit.instr) ->
              jobs :=
                { Strategy.label = "theta"; qubits = Array.to_list i.qubits;
                  duration = Gate_times.instr_duration i }
                :: !jobs)
            (Circuit.bind s.Slice.circuit theta))
      (slicer c);
    Strategy.makespan ~n:(Circuit.n_qubits c) (List.rev !jobs)
  in
  let add name c =
    let theta = theta_for 42 c in
    Table.add_row t
      [ name;
        Table.cell_f (Gate_times.circuit_duration (Circuit.bind c theta));
        Table.cell_f (strict_with Slice.strict c theta);
        Table.cell_f (strict_with Slice.strict_linear c theta) ]
  in
  add "BeH2" (vqe_prepared Molecule.beh2);
  add "H2O" (vqe_prepared Molecule.h2o);
  add "3-Regular N=6 p=1" (qaoa_prepared ~kind:`Regular ~n:6 ~p:1);
  add "3-Regular N=6 p=5" (qaoa_prepared ~kind:`Regular ~n:6 ~p:5);
  Table.print t;
  note
    "Linear slicing preserves deep fixed runs (VQE); region slicing keeps\n\
     cross-parameter parallelism (QAOA).  strict_partial takes the min.\n"

let ablation_transpile () =
  section "ablation-transpile" "gate-based runtime with/without optimization passes";
  let t = Table.create [ "benchmark"; "route only (ns)"; "optimized (ns)"; "gain" ] in
  let add name circuit =
    let topo = Topology.line (Circuit.n_qubits circuit) in
    let route_only = (Route.route topo circuit).Route.routed in
    let optimized = prepared name circuit in
    let a = Gate_times.circuit_duration route_only in
    let b = Gate_times.circuit_duration optimized in
    Table.add_row t [ name; Table.cell_f a; Table.cell_f b; Table.cell_x (a /. b) ]
  in
  add "LiH" (Uccsd.ansatz Molecule.lih);
  add "BeH2" (Uccsd.ansatz Molecule.beh2);
  (let reg, _ = qaoa_graphs 6 in
   add "3reg6p3" (Qaoa.circuit reg ~p:3));
  Table.print t;
  note "The paper's baseline includes these passes; so does ours (Section 4.1).\n"

(* QAOA solution quality vs p (Section 4.2's motivation: "at p = 1, QAOA
   ... yields a cut of size at least 69% of the optimal"; ratios improve
   with p). *)
let qaoa_quality () =
  section "qaoa-quality" "QAOA MAXCUT approximation ratio vs p (end-to-end)";
  let t = Table.create [ "graph"; "p=1"; "p=2"; "p=3" ] in
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let g = Graph.random_regular rng ~degree:3 6 in
      let ratio p =
        (Qaoa.optimize ~max_evals:400 ~seed g ~p).Qaoa.approximation_ratio
      in
      Table.add_row t
        [ Printf.sprintf "3-regular N=6 (seed %d)" seed;
          Table.cell_f ~decimals:3 (ratio 1);
          Table.cell_f ~decimals:3 (ratio 2);
          Table.cell_f ~decimals:3 (ratio 3) ])
    [ 11; 12; 13 ];
  Table.print t;
  note "Paper (citing Farhi et al.): p=1 guarantees >= 0.69; quality grows with p.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: compile-call latency per strategy         *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro" "bechamel micro-benchmarks of compile calls (model engine)";
  let open Bechamel in
  let c = vqe_prepared Molecule.lih in
  let theta = theta_for 42 c in
  let engine = Engine.model in
  let mk strategy =
    Test.make
      ~name:(Compiler.strategy_name strategy)
      (Staged.stage (fun () -> ignore (Compiler.compile ~engine strategy c ~theta)))
  in
  let test =
    Test.make_grouped ~name:"compile-lih" ~fmt:"%s %s"
      (List.map mk Compiler.all_strategies)
  in
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-34s %12.1f ns/call\n" name est
      | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
    results

(* --- Machine-readable bench: sequential vs parallel wall-clock --- *)

let bench_json () =
  section "json"
    "machine-readable bench: sequential vs parallel compile (numeric GRAPE)";
  let workers = Pqc_parallel.Pool.workers_from_env ~default:4 () in
  let out =
    Option.value
      (Sys.getenv_opt "PQC_BENCH_JSON")
      ~default:"BENCH_partial_compilation.json"
  in
  (* Deliberately no wall-clock deadline: a deadline firing in one run
     but not the other would make the determinism check flaky.  The
     iteration budget bounds the work instead. *)
  let settings =
    { Grape.fast_settings with
      Grape.dt = 1.0;
      max_iters = (if full_mode then 120 else 60);
      target_fidelity = 0.98 }
  in
  let run_one (name, strategy, max_width, c) =
    (* Deterministic per-experiment correlation id: a pure function of
       the experiment name and strategy, so the report's run_id column
       is byte-identical for any PQC_WORKERS. *)
    let rid =
      Printf.sprintf "bench:%s/%s" name (Compiler.strategy_name strategy)
    in
    Pqc_obs.Obs.Ctx.with_ctx (Some rid) @@ fun () ->
    let theta = theta_for 7 c in
    (* A fresh engine per run: neither run may warm the other's cache,
       and forked children's CPU only shows up on the wall clock — hence
       gettimeofday, not Sys.time. *)
    let compile ~workers =
      let engine = Engine.numeric ~settings () in
      let t0 = Pqc_obs.Obs.Clock.now () in
      let r = Compiler.compile ~workers ~max_width ~engine strategy c ~theta in
      (r, Pqc_obs.Obs.Clock.now () -. t0)
    in
    let seq, sequential_s = compile ~workers:1 in
    (* Trace the parallel run: its span rollup lands in the report's
       "trace" array.  Tracing is scoped to this compile so rollups do
       not bleed across experiments, and a fresh reset keeps the
       counters per-experiment. *)
    let was_enabled = Obs.enabled () in
    Obs.reset ();
    Obs.enable ();
    let par, parallel_s = compile ~workers in
    let trace =
      List.map
        (fun (span, count, total_s) -> { Bench_report.span; count; total_s })
        (Obs.rollup ())
    in
    let metrics =
      List.map
        (fun name ->
          let s = Option.get (Obs.Metrics.stats name) in
          let p50, p90, p99 = Obs.Metrics.percentiles name in
          let mean =
            if s.Obs.Metrics.count = 0 then Float.nan
            else s.Obs.Metrics.sum /. float_of_int s.Obs.Metrics.count
          in
          { Bench_report.metric = name; count = s.Obs.Metrics.count;
            mean; p50; p90; p99; max = s.Obs.Metrics.max })
        (Obs.Metrics.names ())
    in
    if not was_enabled then Obs.disable ();
    let speedup = sequential_s /. parallel_s in
    let equal_pulse =
      Float.equal seq.Strategy.duration_ns par.Strategy.duration_ns
    in
    note "  %-12s %-15s seq %6.2f s  par %6.2f s  speedup %4.2fx  %s\n" name
      (Compiler.strategy_name strategy)
      sequential_s parallel_s speedup
      (if equal_pulse then "pulses equal" else "PULSES DIFFER");
    { Bench_report.name;
      strategy = Compiler.strategy_name strategy;
      engine = "numeric";
      run_id = rid;
      pulse_duration_ns = par.Strategy.duration_ns;
      sequential_s;
      parallel_s;
      speedup;
      cache_hits = par.Strategy.pool.Engine.cache_hits;
      blocks_compiled = par.Strategy.pool.Engine.dispatched;
      workers = par.Strategy.pool.Engine.workers;
      equal_pulse;
      trace;
      metrics }
  in
  let experiments =
    List.map run_one
      [ ("uccsd-h2", Compiler.Strict_partial, 2, vqe_prepared Molecule.h2);
        ("uccsd-lih", Compiler.Strict_partial, 2, vqe_prepared Molecule.lih) ]
  in
  (* Sorting before emit keeps experiment order a property of the report
     schema rather than of execution order, so the document's bytes are
     identical for any PQC_WORKERS (the run above is already
     deterministic in the worker count; this pins the ordering too). *)
  let report =
    Bench_report.sorted
      { Bench_report.mode = (if full_mode then "full" else "fast");
        workers;
        experiments }
  in
  Bench_report.write ~path:out report;
  note "  wrote %s (schema v%d)\n" out Bench_report.schema_version

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", table1); ("table2", table2); ("table3", table3); ("fig2", figure2);
    ("fig4", figure4); ("table4", table4); ("fig6", figure6); ("fig7", figure7);
    ("table5", table5); ("aggregate", aggregate); ("noise", noise);
    ("ablation-blocking", ablation_blocking);
    ("ablation-slicing", ablation_slicing); ("qaoa-quality", qaoa_quality);
    ("ablation-transpile", ablation_transpile); ("micro", micro);
    ("json", bench_json) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | [ _ ] | [] -> List.map fst experiments
  in
  Printf.printf "partial-compilation benchmark harness (%s mode)\n"
    (if full_mode then "full" else "fast");
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        (* Wall clock: [Sys.time] is process CPU time, which misses the
           forked workers' CPU entirely and overstates multi-domain runs. *)
        let t0 = Pqc_obs.Obs.Clock.now () in
        f ();
        Printf.printf "[%s done in %.1f s]\n%!" name (Pqc_obs.Obs.Clock.now () -. t0)
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments)))
    requested
