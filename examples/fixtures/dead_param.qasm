// Dead-parameter fixture: the trailing rz(t1) is diagonal and nothing
// non-diagonal follows it on q[1], so varying t1 cannot change any
// measured expectation value (rule PQC061).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rx(t0) q[0];
cx q[0], q[1];
rz(t1) q[1];
