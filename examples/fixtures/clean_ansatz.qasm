// Clean fixture: a small parametrized ansatz with monotone parameter
// slices (t0 fully before t1).  `partialc lint` must exit 0.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0], q[1];
rz(t0) q[1];
cx q[0], q[1];
cx q[1], q[2];
rz(t1) q[2];
cx q[1], q[2];
