// Bad fixture: t0 reappears after t1 has started, so the circuit cannot
// be cut into contiguous per-parameter slices (rule PQC020).
// `partialc lint` must exit 1.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(t0) q[0];
cx q[0], q[1];
rz(t1) q[1];
cx q[0], q[1];
rz(t0) q[0];
