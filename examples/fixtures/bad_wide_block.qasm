// Bad fixture: one fully-entangled 6-qubit chain.  Linted with
// `--max-width 6` the whole chain fuses into a single 6-qubit block,
// which is beyond the GRAPE simulability cap (rule PQC030).
// `partialc lint --max-width 6` must exit 1.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
cx q[4], q[5];
