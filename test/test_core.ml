module Rng = Pqc_util.Rng
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Hamiltonian = Pqc_grape.Hamiltonian
module Grape = Pqc_grape.Grape
module Pulse_model = Pqc_core.Pulse_model
module Latency_model = Pqc_core.Latency_model
module Engine = Pqc_core.Engine
module Strategy = Pqc_core.Strategy
module Compiler = Pqc_core.Compiler
module Molecule = Pqc_vqe.Molecule
module Uccsd = Pqc_vqe.Uccsd
module Graph = Pqc_qaoa.Graph
module Qaoa = Pqc_qaoa.Qaoa

let theta_for rng c =
  let n = Circuit.n_params c in
  Array.init n (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))

let random_block rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    let q = Rng.int rng n in
    match Rng.int rng 5 with
    | 0 -> Circuit.Builder.add b Gate.H [ q ]
    | 1 -> Circuit.Builder.add b (Gate.Rx (Param.const (Rng.uniform rng ~lo:(-3.0) ~hi:3.0))) [ q ]
    | 2 -> Circuit.Builder.add b (Gate.Rz (Param.const (Rng.uniform rng ~lo:(-3.0) ~hi:3.0))) [ q ]
    | _ when n >= 2 ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Builder.add b Gate.CX [ q; q2 ]
    | _ -> Circuit.Builder.add b Gate.X [ q ]
  done;
  Circuit.Builder.to_circuit b

(* --- Pulse model --- *)

let test_model_single_gates () =
  let d gates = Pulse_model.block_duration (Circuit.of_gates 2 gates) in
  Alcotest.(check (float 0.05)) "rz(pi)" 0.4 (d [ (Gate.Rz (Param.const Float.pi), [0]) ]);
  Alcotest.(check (float 0.05)) "rx(pi)" 2.5 (d [ (Gate.Rx (Param.const Float.pi), [0]) ]);
  Alcotest.(check (float 0.05)) "cx" 3.8 (d [ (Gate.CX, [0;1]) ]);
  Alcotest.(check bool) "h at most lookup" true (d [ (Gate.H, [0]) ] <= 1.4 +. 1e-9)

let test_model_fractional_rotation () =
  let d angle =
    Pulse_model.block_duration
      (Circuit.of_gates 1 [ (Gate.Rx (Param.const angle), [0]) ])
  in
  Alcotest.(check bool) "fractional cheaper" true (d 0.3 < d 3.0);
  Alcotest.(check bool) "wrap-around" true (d 6.0 < d 3.2)

let test_model_zz_sandwich () =
  (* CX . Rz(gamma) . CX is priced as a fractional ZZ, far below 2 CX. *)
  let sandwich =
    Circuit.of_gates 2
      [ (Gate.CX, [0;1]); (Gate.Rz (Param.const 0.6), [1]); (Gate.CX, [0;1]) ]
  in
  let two_cx = 2.0 *. 3.8 in
  Alcotest.(check bool) "fractional zz" true
    (Pulse_model.block_duration sandwich < 0.5 *. two_cx)

let test_model_pair_compression () =
  (* Repeated CXs on one pair are cheaper than first-CX price times count:
     GRAPE compiles the pair's composite unitary (calibration corpus,
     EXPERIMENTS.md). *)
  let chain k =
    Pulse_model.block_duration
      (Circuit.of_instrs 2
         (List.concat
            (List.init k (fun i ->
                 [ { Circuit.gate = Gate.H; qubits = [| i mod 2 |] };
                   { Circuit.gate = Gate.CX; qubits = [| 0; 1 |] } ]))))
  in
  Alcotest.(check bool) "3 interleaved CX cheaper than 3 lone CX" true
    (chain 3 < (3.0 *. 3.8) +. (3.0 *. 1.4));
  Alcotest.(check bool) "monotone in depth" true (chain 1 <= chain 3 +. 1e-9)

let test_model_swap_price () =
  let swap = Circuit.of_gates 2 [ (Gate.Swap, [ 0; 1 ]) ] in
  Alcotest.(check bool) "swap near its lookup price" true
    (Float.abs (Pulse_model.block_duration swap -. 7.4) < 0.6)

let test_model_cap_binds () =
  (* A very deep 2-qubit block asymptotes to the 2-qubit any-unitary cap:
     the Figure 2 phenomenon. *)
  let rng = Rng.create 5 in
  let deep = random_block rng 2 200 in
  Alcotest.(check bool) "capped" true
    (Pulse_model.block_duration deep <= Pulse_model.cap 2 +. 1e-9)

let test_model_monotone_caps () =
  Alcotest.(check bool) "caps grow with width" true
    (Pulse_model.cap 1 < Pulse_model.cap 2
    && Pulse_model.cap 2 < Pulse_model.cap 3
    && Pulse_model.cap 3 < Pulse_model.cap 4)

let test_model_empty () =
  Alcotest.(check (float 1e-12)) "empty" 0.0
    (Pulse_model.block_duration (Circuit.empty 2))

let test_model_rejects_parametrized () =
  let c = Circuit.of_gates 1 [ (Gate.Rz (Param.var 0), [0]) ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Pulse_model.block_duration c); false
     with Invalid_argument _ -> true)

let test_model_rejects_wide () =
  Alcotest.(check bool) "width > 4" true
    (try ignore (Pulse_model.block_duration (Circuit.of_gates 5 [ (Gate.H, [4]) ])); false
     with Invalid_argument _ -> true)

let prop_model_never_beats_zero_and_never_worse_than_lookup =
  QCheck.Test.make ~name:"model within [0, gate-based]" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 1 40))
    (fun (seed, len) ->
      let rng = Rng.create seed in
      let c = random_block rng 3 len in
      let m = Pulse_model.block_duration c in
      m >= 0.0 && m <= Gate_times.circuit_duration c +. 1e-9)

let prop_model_deterministic =
  QCheck.Test.make ~name:"model pricing is deterministic" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_block rng 3 20 in
      Pulse_model.block_duration c = Pulse_model.block_duration c)

(* --- Latency model --- *)

let test_latency_model_shape () =
  Alcotest.(check bool) "iterations grow with width" true
    (Latency_model.default_iterations 1 < Latency_model.default_iterations 4);
  Alcotest.(check bool) "tuning speedup > 1" true (Latency_model.tuning_speedup 2 > 1.0);
  Alcotest.(check bool) "seconds grow with steps" true
    (Latency_model.seconds_per_iteration ~width:3 ~steps:10
    < Latency_model.seconds_per_iteration ~width:3 ~steps:100)

(* --- Engine --- *)

let test_engine_cost_arithmetic () =
  let a = { Engine.grape_runs = 1; grape_iterations = 10; seconds = 0.5 } in
  let b = { Engine.grape_runs = 2; grape_iterations = 20; seconds = 1.0 } in
  let s = Engine.add_cost a b in
  Alcotest.(check int) "runs" 3 s.Engine.grape_runs;
  Alcotest.(check int) "iters" 30 s.Engine.grape_iterations;
  Alcotest.(check (float 1e-12)) "seconds" 1.5 s.Engine.seconds

let test_engine_model_empty_block () =
  let r = Engine.search Engine.model (Circuit.empty 2) in
  Alcotest.(check (float 1e-12)) "zero duration" 0.0 r.Engine.duration_ns

let test_engine_model_costs_populated () =
  let c = Circuit.of_gates 2 [ (Gate.CX, [0;1]); (Gate.H, [0]) ] in
  let r = Engine.search Engine.model c in
  Alcotest.(check bool) "duration positive" true (r.Engine.duration_ns > 0.0);
  Alcotest.(check bool) "search cost positive" true (r.Engine.search_cost.Engine.seconds > 0.0);
  Alcotest.(check int) "probes" Latency_model.probes_per_search
    r.Engine.search_cost.Engine.grape_runs

let test_engine_rejects_unbound () =
  let c = Circuit.of_gates 1 [ (Gate.Rz (Param.var 0), [0]) ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Engine.search Engine.model c); false
     with Invalid_argument _ -> true)

let test_engine_numeric_1q () =
  let engine = Engine.numeric ~settings:{ Grape.fast_settings with Grape.dt = 0.2; max_iters = 250 } () in
  let c = Circuit.of_gates 1 [ (Gate.H, [0]) ] in
  let r = Engine.search engine c in
  Alcotest.(check bool) "beats or matches lookup" true
    (r.Engine.duration_ns <= Gate_times.circuit_duration c +. 0.21);
  match r.Engine.fidelity with
  | Some f -> Alcotest.(check bool) "fidelity reported" true (f >= 0.99)
  | None -> Alcotest.fail "numeric engine must report fidelity"

let test_engine_numeric_cached () =
  let engine = Engine.numeric ~settings:{ Grape.fast_settings with Grape.dt = 0.2; max_iters = 250 } () in
  let c = Circuit.of_gates 1 [ (Gate.H, [0]) ] in
  let t0 = Sys.time () in
  ignore (Engine.search engine c);
  let first = Sys.time () -. t0 in
  let t1 = Sys.time () in
  ignore (Engine.search engine c);
  let second = Sys.time () -. t1 in
  Alcotest.(check bool) "cache hit much faster" true (second < first /. 5.0 +. 1e-3)

let test_hyperopt_cost_wall_clock () =
  (* Regression for the timing-clock bug: [hyperopt_cost]'s [seconds] was
     [Sys.time]-based (process CPU time) and started after [system_for]
     ran.  A sleeping [system_for] burns no CPU, so the old clock reported
     ~0 for it on both counts; the wall clock started before construction
     must see the sleep. *)
  let engine =
    Engine.numeric
      ~settings:{ Grape.fast_settings with Grape.max_iters = 2 }
      ~system_for:(fun w ->
        Unix.sleepf 0.08;
        Hamiltonian.gmon w)
      ()
  in
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let cost = Engine.hyperopt_cost engine c ~duration:2.0 in
  Alcotest.(check bool) "wall clock sees the sleep" true
    (cost.Engine.seconds >= 0.05)

let test_tuned_run_cheaper_than_search () =
  let c = Circuit.of_gates 2 [ (Gate.CX, [0;1]); (Gate.H, [0]); (Gate.CX, [0;1]) ] in
  let search = (Engine.search Engine.model c).Engine.search_cost in
  let tuned = Engine.tuned_run_cost Engine.model c ~duration:5.0 in
  Alcotest.(check bool) "tuned iterations lower" true
    (tuned.Engine.grape_iterations * 5 < search.Engine.grape_iterations)

(* --- Strategy scheduling --- *)

let test_makespan_parallel () =
  let jobs =
    [ { Strategy.label = "a"; qubits = [ 0; 1 ]; duration = 10.0 };
      { Strategy.label = "b"; qubits = [ 2; 3 ]; duration = 7.0 } ]
  in
  Alcotest.(check (float 1e-12)) "disjoint jobs overlap" 10.0 (Strategy.makespan ~n:4 jobs)

let test_makespan_serial () =
  let jobs =
    [ { Strategy.label = "a"; qubits = [ 0; 1 ]; duration = 10.0 };
      { Strategy.label = "b"; qubits = [ 1; 2 ]; duration = 7.0 } ]
  in
  Alcotest.(check (float 1e-12)) "overlapping jobs serialize" 17.0
    (Strategy.makespan ~n:3 jobs)

let test_speedup () =
  let mk d = { Strategy.strategy = ""; duration_ns = d; precompute = Engine.zero_cost;
               per_iteration = Engine.zero_cost; pulse = Pqc_pulse.Pulse.empty;
               degradations = []; pool = Engine.zero_pool_stats } in
  Alcotest.(check (float 1e-12)) "2x" 2.0 (Strategy.speedup ~baseline:(mk 10.0) (mk 5.0))

(* --- Compiler: the paper's headline relationships --- *)

let benchmark_circuits () =
  let rng = Rng.create 3 in
  let g6 = Graph.random_regular rng ~degree:3 6 in
  [ ("H2", Uccsd.ansatz Molecule.h2); ("LiH", Uccsd.ansatz Molecule.lih);
    ("BeH2", Uccsd.ansatz Molecule.beh2); ("QAOA-p2", Qaoa.circuit g6 ~p:2) ]

let compiled_all name c =
  let prep = Compiler.prepare c in
  let theta = theta_for (Rng.create 42) prep in
  let engine = Engine.model in
  ( name,
    Compiler.gate_based prep ~theta,
    Compiler.strict_partial ~engine prep ~theta,
    Compiler.flexible_partial ~engine prep ~theta,
    Compiler.full_grape ~engine prep ~theta )

let test_strict_never_worse () =
  (* Section 6: "strict partial compilation is strictly better than
     gate-based compilation". *)
  List.iter
    (fun (name, c) ->
      let _, g, s, _, _ = compiled_all name c in
      Alcotest.(check bool) (name ^ " strict <= gate") true
        (s.Strategy.duration_ns <= g.Strategy.duration_ns +. 1e-9))
    (benchmark_circuits ())

let test_flexible_buys_speedup () =
  List.iter
    (fun (name, c) ->
      let _, g, _, f, _ = compiled_all name c in
      Alcotest.(check bool) (name ^ " flexible < gate") true
        (f.Strategy.duration_ns < g.Strategy.duration_ns))
    (benchmark_circuits ())

let test_grape_buys_speedup () =
  List.iter
    (fun (name, c) ->
      let _, g, _, _, fg = compiled_all name c in
      Alcotest.(check bool) (name ^ " grape < gate") true
        (fg.Strategy.duration_ns < g.Strategy.duration_ns))
    (benchmark_circuits ())

let test_latency_ordering () =
  (* Zero-latency strategies really have zero per-iteration cost, and
     flexible cuts full GRAPE's per-iteration latency dramatically. *)
  let _, g, s, f, fg = compiled_all "LiH" (Uccsd.ansatz Molecule.lih) in
  Alcotest.(check (float 1e-12)) "gate-based free" 0.0 g.Strategy.per_iteration.Engine.seconds;
  Alcotest.(check (float 1e-12)) "strict free" 0.0 s.Strategy.per_iteration.Engine.seconds;
  Alcotest.(check bool) "flexible 10x+ cheaper than grape" true
    (f.Strategy.per_iteration.Engine.seconds *. 10.0
    < fg.Strategy.per_iteration.Engine.seconds);
  Alcotest.(check bool) "strict precompute nonzero" true
    (s.Strategy.precompute.Engine.seconds > 0.0);
  Alcotest.(check bool) "flexible precompute includes hyperopt" true
    (f.Strategy.precompute.Engine.seconds > 0.0)

let test_strict_theta_independent_of_binding () =
  (* Strict never re-runs GRAPE: pulse duration reacts to theta only
     through the (angle-independent) lookup gates. *)
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let engine = Engine.model in
  let a = Compiler.strict_partial ~engine c ~theta:[| 0.1; 0.2; 0.3 |] in
  let b = Compiler.strict_partial ~engine c ~theta:[| 2.1; 1.2; 0.9 |] in
  Alcotest.(check (float 1e-9)) "same duration" a.Strategy.duration_ns b.Strategy.duration_ns

let test_compile_dispatch () =
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let theta = [| 0.5; 1.0; 1.5 |] in
  List.iter
    (fun strat ->
      let r = Compiler.compile ~engine:Engine.model strat c ~theta in
      Alcotest.(check string) "name matches" (Compiler.strategy_name strat)
        r.Strategy.strategy)
    Compiler.all_strategies

let test_prepare_legalizes () =
  let c = Circuit.of_gates 4 [ (Gate.CX, [0;3]) ] in
  let prep = Compiler.prepare c in
  Alcotest.(check bool) "routed to line" true
    (Pqc_transpile.Route.is_legal (Pqc_transpile.Topology.line 4) prep)

let test_figure2_asymptote () =
  (* Full GRAPE pulse length for K4 MAXCUT asymptotes with p while the
     gate-based length grows linearly (Figure 2). *)
  let k4 = Graph.clique 4 in
  let engine = Engine.model in
  let dur p =
    let c = Compiler.prepare (Qaoa.circuit k4 ~p) in
    let theta = theta_for (Rng.create (100 + p)) c in
    ( (Compiler.gate_based c ~theta).Strategy.duration_ns,
      (Compiler.full_grape ~engine c ~theta).Strategy.duration_ns )
  in
  let g1, f1 = dur 1 in
  let g6, f6 = dur 6 in
  Alcotest.(check bool) "gate-based grows ~linearly" true (g6 > 4.0 *. g1);
  Alcotest.(check bool) "grape asymptotes below 50 ns" true (f6 <= 50.0 +. 1e-9);
  Alcotest.(check bool) "ratio widens with p" true (g6 /. f6 > g1 /. f1)

(* Integration: the whole compiler stack over the real numeric GRAPE engine
   on a small 2-qubit variational circuit. *)
let test_numeric_engine_end_to_end () =
  let b = Circuit.Builder.create 2 in
  Circuit.Builder.add b Gate.H [ 0 ];
  Circuit.Builder.add b Gate.CX [ 0; 1 ];
  Circuit.Builder.add b (Gate.Rz (Param.var 0)) [ 1 ];
  Circuit.Builder.add b Gate.CX [ 0; 1 ];
  Circuit.Builder.add b (Gate.Rx (Param.var 1)) [ 0 ];
  Circuit.Builder.add b (Gate.Rx (Param.var 1)) [ 1 ];
  let c = Compiler.prepare (Circuit.Builder.to_circuit b) in
  let theta = [| 0.9; 0.4 |] in
  let engine =
    Engine.numeric
      ~settings:{ Grape.fast_settings with Grape.dt = 0.25; max_iters = 250 } ()
  in
  let g = Compiler.gate_based c ~theta in
  let s = Compiler.strict_partial ~engine c ~theta in
  let f = Compiler.flexible_partial ~engine c ~theta in
  let fg = Compiler.full_grape ~engine c ~theta in
  Alcotest.(check bool) "strict <= gate" true
    (s.Strategy.duration_ns <= g.Strategy.duration_ns +. 1e-9);
  Alcotest.(check bool) "flexible < gate" true
    (f.Strategy.duration_ns < g.Strategy.duration_ns);
  Alcotest.(check bool) "grape < gate" true
    (fg.Strategy.duration_ns < g.Strategy.duration_ns);
  Alcotest.(check bool) "numeric latencies measured" true
    (fg.Strategy.per_iteration.Engine.grape_iterations > 0
    && f.Strategy.per_iteration.Engine.grape_runs > 0);
  Alcotest.(check (float 1e-12)) "strict stays zero-latency" 0.0
    s.Strategy.per_iteration.Engine.seconds

let () =
  Alcotest.run "core"
    [ ( "pulse-model",
        [ Alcotest.test_case "single gates" `Quick test_model_single_gates;
          Alcotest.test_case "fractional rotations" `Quick test_model_fractional_rotation;
          Alcotest.test_case "zz sandwich" `Quick test_model_zz_sandwich;
          Alcotest.test_case "pair compression" `Quick test_model_pair_compression;
          Alcotest.test_case "swap price" `Quick test_model_swap_price;
          Alcotest.test_case "cap binds" `Quick test_model_cap_binds;
          Alcotest.test_case "caps monotone" `Quick test_model_monotone_caps;
          Alcotest.test_case "empty" `Quick test_model_empty;
          Alcotest.test_case "rejects parametrized" `Quick test_model_rejects_parametrized;
          Alcotest.test_case "rejects wide" `Quick test_model_rejects_wide;
          QCheck_alcotest.to_alcotest prop_model_never_beats_zero_and_never_worse_than_lookup;
          QCheck_alcotest.to_alcotest prop_model_deterministic ] );
      ( "latency-model",
        [ Alcotest.test_case "shape" `Quick test_latency_model_shape ] );
      ( "engine",
        [ Alcotest.test_case "cost arithmetic" `Quick test_engine_cost_arithmetic;
          Alcotest.test_case "empty block" `Quick test_engine_model_empty_block;
          Alcotest.test_case "model costs" `Quick test_engine_model_costs_populated;
          Alcotest.test_case "rejects unbound" `Quick test_engine_rejects_unbound;
          Alcotest.test_case "numeric 1q" `Slow test_engine_numeric_1q;
          Alcotest.test_case "numeric cached" `Slow test_engine_numeric_cached;
          Alcotest.test_case "hyperopt cost wall clock" `Slow
            test_hyperopt_cost_wall_clock;
          Alcotest.test_case "tuned cheaper" `Quick test_tuned_run_cheaper_than_search ] );
      ( "strategy",
        [ Alcotest.test_case "makespan parallel" `Quick test_makespan_parallel;
          Alcotest.test_case "makespan serial" `Quick test_makespan_serial;
          Alcotest.test_case "speedup" `Quick test_speedup ] );
      ( "compiler",
        [ Alcotest.test_case "strict never worse" `Quick test_strict_never_worse;
          Alcotest.test_case "flexible speedup" `Quick test_flexible_buys_speedup;
          Alcotest.test_case "grape speedup" `Quick test_grape_buys_speedup;
          Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
          Alcotest.test_case "strict binding-independent" `Quick test_strict_theta_independent_of_binding;
          Alcotest.test_case "dispatch" `Quick test_compile_dispatch;
          Alcotest.test_case "prepare legalizes" `Quick test_prepare_legalizes;
          Alcotest.test_case "figure-2 asymptote" `Quick test_figure2_asymptote;
          Alcotest.test_case "numeric engine end-to-end" `Slow test_numeric_engine_end_to_end ] ) ]
