module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Block = Pqc_transpile.Block
module Grape = Pqc_grape.Grape
module Rng = Pqc_util.Rng
module Pool = Pqc_parallel.Pool
module Obs = Pqc_obs.Obs
module Pulse_cache = Pqc_core.Pulse_cache
module Engine = Pqc_core.Engine
module Strategy = Pqc_core.Strategy
module Compiler = Pqc_core.Compiler
module Resilience = Pqc_core.Resilience
module Fault = Pqc_core.Fault
module Cache_audit = Pqc_analysis.Cache_audit
module Diagnostic = Pqc_analysis.Diagnostic
module Molecule = Pqc_vqe.Molecule
module Uccsd = Pqc_vqe.Uccsd
module Graph = Pqc_qaoa.Graph
module Qaoa = Pqc_qaoa.Qaoa

(* Cheap-but-real numeric settings: every equivalence test below runs
   GRAPE twice (sequentially and across forked workers), so the budget
   is kept small. *)
let quick = { Grape.fast_settings with Grape.dt = 1.0; max_iters = 40;
              target_fidelity = 0.95 }

let int_codec =
  (string_of_int, fun s -> int_of_string_opt s)

(* Scoped environment override (restored even on failure): several tests
   below pin PQC_PAR_MIN_ITEMS to defeat or exercise the small-batch
   sequential floor. *)
let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

(* --- Pool primitives --- *)

let test_pool_input_order () =
  let enc, dec = int_codec in
  let items = List.init 23 (fun i -> i) in
  let out, stats =
    Pool.map ~workers:4 ~encode:enc ~decode:dec (fun x -> x * x) items
  in
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun x -> x * x) items)
    (List.map fst out);
  Alcotest.(check int) "forked requested workers" 4 stats.Pool.workers;
  Alcotest.(check int) "nothing recovered" 0 stats.Pool.recovered

let test_pool_sequential_mode () =
  let enc, dec = int_codec in
  let forked = ref false in
  let parent = Unix.getpid () in
  let out, stats =
    Pool.map ~workers:1 ~encode:enc ~decode:dec
      (fun x ->
        if Unix.getpid () <> parent then forked := true;
        x + 1)
      (List.init 5 (fun i -> i))
  in
  Alcotest.(check bool) "no fork at workers:1" false !forked;
  Alcotest.(check int) "stats say sequential" 1 stats.Pool.workers;
  Alcotest.(check (list int)) "values" [ 1; 2; 3; 4; 5 ] (List.map fst out);
  Alcotest.(check bool) "no recovery flags" true
    (List.for_all (fun (_, r) -> not r) out)

let test_pool_lost_worker_recovered () =
  let enc, dec = int_codec in
  let parent = Unix.getpid () in
  let out, stats =
    Pool.map ~workers:3 ~encode:enc ~decode:dec
      (fun x ->
        (* Kill the worker that reaches item 4 mid-shard; the parent must
           recompute everything that worker never delivered. *)
        if x = 4 && Unix.getpid () <> parent then Unix._exit 9;
        x * 10)
      (List.init 9 (fun i -> i))
  in
  Alcotest.(check (list int)) "all values present despite the crash"
    (List.init 9 (fun i -> i * 10))
    (List.map fst out);
  Alcotest.(check bool) "at least item 4 recovered" true
    (stats.Pool.recovered >= 1);
  Alcotest.(check bool) "item 4 flagged" true (snd (List.nth out 4))

let test_pool_corrupt_payload_recovered () =
  let enc = string_of_int in
  (* A decoder that rejects odd payloads: those items must be recomputed
     in the parent and flagged, exactly like a lost worker. *)
  let dec s =
    match int_of_string_opt s with
    | Some v when v mod 2 = 0 -> Some v
    | _ -> None
  in
  let out, stats =
    Pool.map ~workers:2 ~encode:enc ~decode:dec
      (fun x -> x)
      (List.init 8 (fun i -> i))
  in
  Alcotest.(check (list int)) "odd values recovered correctly"
    (List.init 8 (fun i -> i))
    (List.map fst out);
  Alcotest.(check int) "every odd item recovered" 4 stats.Pool.recovered;
  List.iteri
    (fun i (_, r) ->
      Alcotest.(check bool) (Printf.sprintf "flag %d" i) (i mod 2 = 1) r)
    out

let test_pool_min_items_floor () =
  (* Batches below the floor run in the parent: forking three processes
     to square three integers costs more than the work.  Encoding the
     computing pid in the result makes "did it fork" observable. *)
  let enc, dec = int_codec in
  let parent = Unix.getpid () in
  let pid_of _ = Unix.getpid () in
  with_env "PQC_PAR_MIN_ITEMS" "" (fun () ->
      let out, stats =
        Pool.map ~workers:4 ~encode:enc ~decode:dec pid_of [ 1; 2; 3 ]
      in
      Alcotest.(check int) "default floor of 4 keeps 3 items sequential" 1
        stats.Pool.workers;
      Alcotest.(check (list int)) "computed in the parent"
        [ parent; parent; parent ]
        (List.map fst out));
  let out, stats =
    Pool.map ~workers:4 ~min_items:10 ~encode:enc ~decode:dec pid_of
      (List.init 9 (fun i -> i))
  in
  Alcotest.(check int) "explicit floor respected" 1 stats.Pool.workers;
  Alcotest.(check bool) "all in parent" true
    (List.for_all (fun (pid, _) -> pid = parent) out);
  with_env "PQC_PAR_MIN_ITEMS" "1" (fun () ->
      let out, stats =
        Pool.map ~workers:2 ~encode:enc ~decode:dec pid_of [ 1; 2 ]
      in
      Alcotest.(check int) "floor of 1 forks a 2-item batch" 2
        stats.Pool.workers;
      Alcotest.(check bool) "computed in children" true
        (List.for_all (fun (pid, _) -> pid <> parent) out))

let test_min_items_from_env () =
  with_env "PQC_PAR_MIN_ITEMS" "7" (fun () ->
      Alcotest.(check int) "parses" 7 (Pool.min_items_from_env ()));
  with_env "PQC_PAR_MIN_ITEMS" "0" (fun () ->
      Alcotest.(check int) "rejects < 1" 4 (Pool.min_items_from_env ()));
  with_env "PQC_PAR_MIN_ITEMS" "soon" (fun () ->
      Alcotest.(check int) "rejects garbage" 4 (Pool.min_items_from_env ()));
  with_env "PQC_PAR_MIN_ITEMS" "" (fun () ->
      Alcotest.(check int) "custom default" 2
        (Pool.min_items_from_env ~default:2 ()))

let test_workers_from_env () =
  Unix.putenv "PQC_WORKERS" "6";
  Alcotest.(check int) "parses" 6 (Pool.workers_from_env ());
  Unix.putenv "PQC_WORKERS" "0";
  Alcotest.(check int) "rejects < 1" 1 (Pool.workers_from_env ());
  Unix.putenv "PQC_WORKERS" "plenty";
  Alcotest.(check int) "rejects garbage" 1 (Pool.workers_from_env ());
  Alcotest.(check int) "custom default" 4
    (Pool.workers_from_env ~default:4 ());
  Unix.putenv "PQC_WORKERS" ""

let test_workers_from_env_invalid_counted () =
  (* Regression: an invalid PQC_WORKERS used to be swallowed silently.
     It now warns on stderr (once per distinct value) and bumps the
     pool.env.invalid counter when tracing is on. *)
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Unix.putenv "PQC_WORKERS" "")
    (fun () ->
      with_env "PQC_WORKERS" "a-few" (fun () ->
          Alcotest.(check int) "falls back to default" 3
            (Pool.workers_from_env ~default:3 ());
          Alcotest.(check (float 0.0)) "counter bumped" 1.0
            (Obs.counter_value "pool.env.invalid"));
      with_env "PQC_WORKERS" "" (fun () ->
          ignore (Pool.workers_from_env ());
          Alcotest.(check (float 0.0)) "unset/empty is not an error" 1.0
            (Obs.counter_value "pool.env.invalid")))

(* --- Engine batch equivalence --- *)

let bits = Int64.bits_of_float

let check_same_result msg (a : Engine.block_result) (b : Engine.block_result) =
  Alcotest.(check int64) (msg ^ ": duration bits") (bits a.Engine.duration_ns)
    (bits b.Engine.duration_ns);
  Alcotest.(check (option int64)) (msg ^ ": fidelity bits")
    (Option.map bits a.Engine.fidelity)
    (Option.map bits b.Engine.fidelity);
  Alcotest.(check bool) (msg ^ ": fallback") true
    (a.Engine.fallback = b.Engine.fallback);
  Alcotest.(check int) (msg ^ ": grape runs")
    a.Engine.search_cost.Engine.grape_runs
    b.Engine.search_cost.Engine.grape_runs;
  Alcotest.(check int) (msg ^ ": grape iterations")
    a.Engine.search_cost.Engine.grape_iterations
    b.Engine.search_cost.Engine.grape_iterations

let h2_blocks () =
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let rng = Rng.create 5 in
  let theta =
    Array.init (Circuit.n_params c) (fun _ ->
        Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))
  in
  Block.partition ~max_width:2 (Circuit.bind c theta)
  |> List.map Block.extract

let test_search_many_matches_search () =
  let blocks = h2_blocks () in
  let batch, _, _ =
    Engine.search_many ~workers:1 (Engine.numeric ~settings:quick ()) blocks
  in
  let engine = Engine.numeric ~settings:quick () in
  let single = List.map (Engine.search engine) blocks in
  List.iteri
    (fun i (a, b) -> check_same_result (Printf.sprintf "block %d" i) a b)
    (List.combine single batch)

let test_search_many_worker_count_invariant () =
  let blocks = h2_blocks () in
  let run workers =
    let rs, stats, degs =
      Engine.search_many ~workers (Engine.numeric ~settings:quick ()) blocks
    in
    Alcotest.(check (list string)) "no degradations" []
      (List.map Resilience.degradation_to_string degs);
    (rs, stats)
  in
  let seq, seq_stats = run 1 in
  let par, par_stats = run 4 in
  List.iteri
    (fun i (a, b) -> check_same_result (Printf.sprintf "block %d" i) a b)
    (List.combine seq par);
  Alcotest.(check int) "same dispatch count" seq_stats.Engine.dispatched
    par_stats.Engine.dispatched;
  Alcotest.(check int) "same cache accounting" seq_stats.Engine.cache_hits
    par_stats.Engine.cache_hits

let test_cache_hot_batch_never_forks () =
  (* Regression: a batch whose every block is already memoized used to
     pay the full fork-and-pipe cost to compute nothing.  Hits are now
     resolved in the parent and only misses dispatch; PQC_PAR_MIN_ITEMS
     is pinned to 1 so the sequential outcome below is attributable to
     the empty dispatch list, not the small-batch floor. *)
  let blocks = h2_blocks () in
  let engine = Engine.numeric ~settings:quick () in
  let warm, _, _ = Engine.search_many ~workers:1 engine blocks in
  with_env "PQC_PAR_MIN_ITEMS" "1" (fun () ->
      let hot, stats, degs = Engine.search_many ~workers:4 engine blocks in
      Alcotest.(check int) "nothing dispatched" 0 stats.Engine.dispatched;
      Alcotest.(check int) "no fork on a fully-hot batch" 1
        stats.Engine.workers;
      Alcotest.(check int) "every block a cache hit"
        (List.length blocks) stats.Engine.cache_hits;
      Alcotest.(check int) "no degradations" 0 (List.length degs);
      List.iteri
        (fun i (a, b) ->
          check_same_result (Printf.sprintf "hot block %d" i) a b)
        (List.combine warm hot))

let test_search_many_faulty_invariant () =
  (* Injection must be a function of the batch, not of worker scheduling:
     the same blocks under the same fault seed give the same pattern of
     fallbacks at any worker count. *)
  let blocks = h2_blocks () in
  let run workers =
    let engine =
      Engine.faulty ~rate:0.45 ~seed:99 (Engine.numeric ~settings:quick ())
    in
    let rs, _, _ = Engine.search_many ~workers engine blocks in
    rs
  in
  let seq = run 1 and par = run 4 in
  List.iteri
    (fun i (a, b) -> check_same_result (Printf.sprintf "block %d" i) a b)
    (List.combine seq par);
  (* The fault plan fires for this seed/rate: the test would be vacuous
     if no block ever degraded. *)
  Alcotest.(check bool) "some block degraded" true
    (List.exists (fun r -> r.Engine.fallback <> None) seq)

let test_search_many_fault_plan_invariant () =
  (* The supervision contract under chaos: infrastructure faults (worker
     crashes, torn pipe frames) may cost retries and recoveries but must
     never change a value.  With a nonempty seeded plan installed,
     workers:1 (no forks, so no worker faults) and workers:4 (faulted)
     agree bit-for-bit.  Eight distinct blocks, not the single-block H2
     batch, so the plan demonstrably fires (the recovered guard below). *)
  let blocks =
    List.init 8 (fun i ->
        Circuit.of_gates 1
          [ (Gate.Rx (Param.const (0.15 +. (0.4 *. float_of_int i))), [ 0 ]) ])
  in
  let plan =
    match Fault.parse "seed=3,crash-mid=0.45" with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan rejected: %s" e
  in
  Fault.set (Some plan);
  Fun.protect ~finally:Fault.clear (fun () ->
      let run workers =
        Engine.search_many ~workers (Engine.numeric ~settings:quick ())
          blocks
      in
      let seq, _, _ = run 1 in
      let par, par_stats, _ = run 4 in
      Alcotest.(check bool) "plan fired (items were recovered)" true
        (par_stats.Engine.recovered > 0);
      List.iteri
        (fun i (a, b) -> check_same_result (Printf.sprintf "block %d" i) a b)
        (List.combine seq par))

let test_faulty_results_never_cached () =
  let blocks = h2_blocks () in
  let engine =
    Engine.faulty ~rate:1.0 ~seed:3 (Engine.numeric ~settings:quick ())
  in
  let rs, _, _ = Engine.search_many ~workers:4 engine blocks in
  Alcotest.(check bool) "all results injected fallbacks" true
    (List.for_all (fun r -> r.Engine.fallback <> None) rs);
  Alcotest.(check int) "nothing cached" 0 (Engine.cache_size engine)

let test_flex_many_worker_count_invariant () =
  let blocks = h2_blocks () in
  let run workers =
    let engine = Engine.faulty ~rate:0.3 ~seed:17 Engine.model in
    let rs, _, _ = Engine.flex_many ~workers engine blocks in
    rs
  in
  let seq = run 1 and par = run 4 in
  List.iteri
    (fun i ((a : Engine.flex_result), (b : Engine.flex_result)) ->
      check_same_result (Printf.sprintf "block %d" i) a.Engine.search
        b.Engine.search;
      Alcotest.(check int) "hyperopt runs" a.Engine.hyperopt.Engine.grape_runs
        b.Engine.hyperopt.Engine.grape_runs;
      Alcotest.(check int) "tuned iters"
        a.Engine.tuned.Engine.grape_iterations
        b.Engine.tuned.Engine.grape_iterations)
    (List.combine seq par)

(* Property: for seeded random blocks, the batch result is invariant in
   the worker count, fault injection included (model engine keeps the
   property cheap enough to sample widely). *)
let random_block rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    let q = Rng.int rng n in
    match Rng.int rng 5 with
    | 0 -> Circuit.Builder.add b Gate.H [ q ]
    | 1 ->
      Circuit.Builder.add b
        (Gate.Rx (Param.const (Rng.uniform rng ~lo:(-3.0) ~hi:3.0)))
        [ q ]
    | 2 ->
      Circuit.Builder.add b
        (Gate.Rz (Param.const (Rng.uniform rng ~lo:(-3.0) ~hi:3.0)))
        [ q ]
    | _ when n >= 2 ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Builder.add b Gate.CX [ q; q2 ]
    | _ -> Circuit.Builder.add b Gate.X [ q ]
  done;
  Circuit.Builder.to_circuit b

let same_result (a : Engine.block_result) (b : Engine.block_result) =
  bits a.Engine.duration_ns = bits b.Engine.duration_ns
  && Option.map bits a.Engine.fidelity = Option.map bits b.Engine.fidelity
  && a.Engine.fallback = b.Engine.fallback
  && a.Engine.search_cost.Engine.grape_runs
     = b.Engine.search_cost.Engine.grape_runs
  && a.Engine.search_cost.Engine.grape_iterations
     = b.Engine.search_cost.Engine.grape_iterations

let prop_worker_count_invariant =
  QCheck.Test.make ~count:25 ~name:"search_many invariant in worker count"
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, extra_workers) ->
      let rng = Rng.create (seed + 1) in
      let blocks =
        List.init
          (1 + Rng.int rng 7)
          (fun _ -> random_block rng (1 + Rng.int rng 2) (1 + Rng.int rng 6))
      in
      let run workers =
        let engine = Engine.faulty ~rate:0.5 ~seed Engine.model in
        let rs, _, _ = Engine.search_many ~workers engine blocks in
        rs
      in
      List.for_all2 same_result (run 1) (run (2 + extra_workers)))

(* --- Strategy-level equivalence (UCCSD and QAOA) --- *)

let filter_pool_degs degs =
  List.filter
    (fun (d : Resilience.degradation) ->
      d.Resilience.reason <> Resilience.Worker_lost)
    degs

let check_same_compiled name (a : Strategy.compiled) (b : Strategy.compiled) =
  Alcotest.(check int64) (name ^ ": duration bits") (bits a.Strategy.duration_ns)
    (bits b.Strategy.duration_ns);
  Alcotest.(check bool) (name ^ ": identical pulse schedule") true
    (a.Strategy.pulse = b.Strategy.pulse);
  Alcotest.(check int) (name ^ ": precompute runs")
    a.Strategy.precompute.Engine.grape_runs
    b.Strategy.precompute.Engine.grape_runs;
  Alcotest.(check int) (name ^ ": per-iteration iters")
    a.Strategy.per_iteration.Engine.grape_iterations
    b.Strategy.per_iteration.Engine.grape_iterations;
  Alcotest.(check (list string)) (name ^ ": same degradations")
    (List.map Resilience.degradation_to_string
       (filter_pool_degs a.Strategy.degradations))
    (List.map Resilience.degradation_to_string
       (filter_pool_degs b.Strategy.degradations))

let theta_of c =
  let rng = Rng.create 5 in
  Array.init (Circuit.n_params c) (fun _ ->
      Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))

let test_strict_partial_worker_invariant () =
  List.iter
    (fun (name, circuit) ->
      let c = Compiler.prepare circuit in
      let theta = theta_of c in
      let compile workers =
        Compiler.strict_partial ~workers ~max_width:2
          ~engine:(Engine.numeric ~settings:quick ())
          c ~theta
      in
      check_same_compiled name (compile 1) (compile 4))
    [ ("uccsd-h2", Uccsd.ansatz Molecule.h2);
      ("qaoa-k4", Qaoa.circuit (Graph.clique 4) ~p:1) ]

let test_flexible_partial_worker_invariant () =
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let theta = theta_of c in
  let compile workers =
    Compiler.flexible_partial ~workers ~max_width:2
      ~engine:(Engine.numeric ~settings:quick ())
      c ~theta
  in
  check_same_compiled "uccsd-h2 flexible" (compile 1) (compile 4)

let test_pool_stats_reported () =
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let theta = theta_of c in
  let r =
    (* Pinned floor: the assertion below is about stats plumbing, so the
       pool must actually fork even if few blocks miss the memo table. *)
    with_env "PQC_PAR_MIN_ITEMS" "1" (fun () ->
        Compiler.strict_partial ~workers:2 ~max_width:2
          ~engine:(Engine.numeric ~settings:quick ())
          c ~theta)
  in
  Alcotest.(check int) "workers recorded" 2 r.Strategy.pool.Engine.workers;
  Alcotest.(check bool) "blocks dispatched" true
    (r.Strategy.pool.Engine.dispatched > 0);
  Alcotest.(check bool) "gate-based reports zero pool" true
    ((Compiler.gate_based c ~theta).Strategy.pool = Engine.zero_pool_stats)

let test_tracing_preserves_determinism () =
  (* The determinism contract must survive observation: a traced
     4-worker compile produces the same pulse, bit for bit, as an
     untraced sequential one.  The floor is pinned to 1 so the traced
     run genuinely forks (asserted via the pool.worker span). *)
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let theta = theta_of c in
  let compile workers =
    Compiler.strict_partial ~workers ~max_width:2
      ~engine:(Engine.numeric ~settings:quick ())
      c ~theta
  in
  let untraced = compile 1 in
  Obs.reset ();
  Obs.enable ();
  let traced, rollup =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () ->
        with_env "PQC_PAR_MIN_ITEMS" "1" (fun () ->
            let r = compile 4 in
            (r, Obs.rollup ())))
  in
  let span_count name =
    List.fold_left
      (fun acc (n, count, _) -> if n = name then acc + count else acc)
      0 rollup
  in
  Alcotest.(check bool) "traced run forked (pool.worker spans)" true
    (span_count "pool.worker" > 0);
  Alcotest.(check bool) "grape spans recorded" true
    (span_count "grape.optimize" > 0);
  check_same_compiled "traced parallel vs untraced sequential" untraced
    traced

let test_metrics_merge_matches_sequential () =
  (* Histograms observed inside forked workers ship back on "M" frames
     and merge additively in the parent; the merged registry must match
     a sequential run observation-for-observation.  Values are dyadic
     (x * 0.125), so even the float sum is exact regardless of the
     order the workers' frames arrive in. *)
  let enc, dec = int_codec in
  let items = List.init 41 (fun i -> i + 1) in
  let observe x =
    Obs.Metrics.observe "pool.metric" (float_of_int x *. 0.125);
    x
  in
  let capture () =
    ( Option.get (Obs.Metrics.stats "pool.metric"),
      Obs.Metrics.percentiles "pool.metric" )
  in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      List.iter (fun x -> ignore (observe x)) items;
      let expected = capture () in
      Obs.Metrics.reset ();
      let out, stats =
        with_env "PQC_PAR_MIN_ITEMS" "1" (fun () ->
            Pool.map ~workers:4 ~encode:enc ~decode:dec observe items)
      in
      Alcotest.(check (list int)) "results intact" items (List.map fst out);
      Alcotest.(check int) "genuinely forked" 4 stats.Pool.workers;
      let got_stats, got_pcts = capture () in
      let exp_stats, exp_pcts = expected in
      Alcotest.(check int) "count matches sequential"
        exp_stats.Obs.Metrics.count got_stats.Obs.Metrics.count;
      Alcotest.(check (float 0.0)) "sum matches sequential"
        exp_stats.Obs.Metrics.sum got_stats.Obs.Metrics.sum;
      Alcotest.(check (float 0.0)) "min" exp_stats.Obs.Metrics.min
        got_stats.Obs.Metrics.min;
      Alcotest.(check (float 0.0)) "max" exp_stats.Obs.Metrics.max
        got_stats.Obs.Metrics.max;
      Alcotest.(check bool) "p50/p90/p99 match sequential" true
        (exp_pcts = got_pcts))

(* --- Pulse cache: merge + concurrent persistence --- *)

let mk_entry ?(duration = 1.0) key =
  { Pulse_cache.key; duration_ns = duration; grape_runs = 1;
    grape_iterations = 10; seconds = 0.1; fidelity = Some 0.99;
    fallback = None; run_id = None }

let with_temp_cache f =
  let path = Filename.temp_file "pqc_parallel" ".cache" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".lock"; path ^ ".tmp"; path ^ ".journal" ])
    (fun () -> f path)

let test_merge_newest_wins () =
  with_temp_cache (fun path ->
      Pulse_cache.save ~path [ mk_entry "a"; mk_entry "b"; mk_entry "c" ];
      Pulse_cache.merge ~path
        [ mk_entry ~duration:7.0 "b"; mk_entry "d"; mk_entry ~duration:9.0 "d" ];
      let { Pulse_cache.entries; dropped; salvaged = _ } =
        Pulse_cache.load ~path
      in
      Alcotest.(check int) "no drops" 0 dropped;
      Alcotest.(check (list string)) "keys once each, order stable"
        [ "a"; "b"; "c"; "d" ]
        (List.map (fun (e : Pulse_cache.entry) -> e.Pulse_cache.key) entries);
      let find k =
        List.find (fun (e : Pulse_cache.entry) -> e.Pulse_cache.key = k)
          entries
      in
      Alcotest.(check (float 0.0)) "collision replaced by newest" 7.0
        (find "b").Pulse_cache.duration_ns;
      Alcotest.(check (float 0.0)) "duplicate new key keeps latest" 9.0
        (find "d").Pulse_cache.duration_ns)

let test_merge_concurrent_pools () =
  with_temp_cache (fun path ->
      (* Two processes hammer the same cache path with interleaved merges;
         the lock must serialize them so every record survives intact. *)
      let rounds = 12 in
      let child side =
        match Unix.fork () with
        | 0 ->
          for i = 0 to rounds - 1 do
            Pulse_cache.merge ~path
              [ mk_entry (Printf.sprintf "%s-%d" side i);
                mk_entry ~duration:2.0 (Printf.sprintf "%s-shared" side) ]
          done;
          Unix._exit 0
        | pid -> pid
      in
      let pa = child "a" in
      let pb = child "b" in
      ignore (Unix.waitpid [] pa);
      ignore (Unix.waitpid [] pb);
      let { Pulse_cache.entries; dropped; salvaged = _ } =
        Pulse_cache.load ~path
      in
      Alcotest.(check int) "no corrupt records" 0 dropped;
      Alcotest.(check int) "every record from both pools survives"
        ((rounds + 1) * 2)
        (List.length entries);
      Alcotest.(check (list string)) "audit finds nothing (PQC050)" []
        (List.map Diagnostic.to_string (Cache_audit.audit ~path)))

let test_persist_merges_across_engines () =
  with_temp_cache (fun path ->
      let c1 = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
      let c2 = Circuit.of_gates 1 [ (Gate.X, [ 0 ]) ] in
      let e1 = Engine.numeric ~settings:quick ~cache_file:path () in
      ignore (Engine.search e1 c1);
      Engine.persist e1;
      (* A record the first engine never saw, merged directly (as a
         second pool's persist would): both must survive on disk. *)
      Pulse_cache.merge ~path
        [ { Pulse_cache.key = Engine.block_key c2; duration_ns = 3.0;
            grape_runs = 1; grape_iterations = 5; seconds = 0.0;
            fidelity = None; fallback = None; run_id = None } ];
      Engine.persist e1;
      let e3 = Engine.numeric ~settings:quick ~cache_file:path () in
      Alcotest.(check int) "both blocks on disk after re-persist" 2
        (Engine.cache_size e3))

let () =
  (* Most equivalence tests in this binary exist to exercise forked
     workers on deliberately small batches; pin the small-batch floor so
     they do not silently degrade to the sequential path (individual
     floor tests above override this locally). *)
  Unix.putenv "PQC_PAR_MIN_ITEMS" "1";
  QCheck.Test.check_exn prop_worker_count_invariant;
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "input order" `Quick test_pool_input_order;
          Alcotest.test_case "sequential mode" `Quick test_pool_sequential_mode;
          Alcotest.test_case "lost worker" `Quick
            test_pool_lost_worker_recovered;
          Alcotest.test_case "corrupt payload" `Quick
            test_pool_corrupt_payload_recovered;
          Alcotest.test_case "min-items floor" `Quick
            test_pool_min_items_floor;
          Alcotest.test_case "PQC_PAR_MIN_ITEMS parsing" `Quick
            test_min_items_from_env;
          Alcotest.test_case "PQC_WORKERS parsing" `Quick
            test_workers_from_env;
          Alcotest.test_case "PQC_WORKERS invalid warns" `Quick
            test_workers_from_env_invalid_counted ] );
      ( "engine-batch",
        [ Alcotest.test_case "matches single search" `Quick
            test_search_many_matches_search;
          Alcotest.test_case "worker-count invariant" `Quick
            test_search_many_worker_count_invariant;
          Alcotest.test_case "cache-hot batch stays in-process" `Quick
            test_cache_hot_batch_never_forks;
          Alcotest.test_case "faulty invariant" `Quick
            test_search_many_faulty_invariant;
          Alcotest.test_case "fault-plan invariant" `Quick
            test_search_many_fault_plan_invariant;
          Alcotest.test_case "injected never cached" `Quick
            test_faulty_results_never_cached;
          Alcotest.test_case "flex invariant" `Quick
            test_flex_many_worker_count_invariant ] );
      ( "strategies",
        [ Alcotest.test_case "strict invariant" `Quick
            test_strict_partial_worker_invariant;
          Alcotest.test_case "flexible invariant" `Quick
            test_flexible_partial_worker_invariant;
          Alcotest.test_case "pool stats" `Quick test_pool_stats_reported;
          Alcotest.test_case "worker metrics merge equals sequential" `Quick
            test_metrics_merge_matches_sequential;
          Alcotest.test_case "tracing preserves determinism" `Quick
            test_tracing_preserves_determinism ] );
      ( "pulse-cache",
        [ Alcotest.test_case "merge newest wins" `Quick test_merge_newest_wins;
          Alcotest.test_case "concurrent merges" `Quick
            test_merge_concurrent_pools;
          Alcotest.test_case "persist merges" `Quick
            test_persist_merges_across_engines ] ) ]
