module Cmat = Pqc_linalg.Cmat
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
module Hamiltonian = Pqc_grape.Hamiltonian
module Adam = Pqc_grape.Adam
module Grape = Pqc_grape.Grape

(* Coarse settings keep the suite fast; gates still converge at 0.99+. *)
let quick = { Grape.fast_settings with Grape.dt = 0.2; max_iters = 300 }

let gate_target n gate qs = Circuit.unitary (Circuit.of_gates n [ (gate, qs) ])

(* --- Hamiltonian --- *)

let test_gmon_structure () =
  let sys = Hamiltonian.gmon 3 in
  Alcotest.(check int) "dim" 8 sys.Hamiltonian.dim;
  (* 2 drives per qubit + line couplers. *)
  Alcotest.(check int) "controls" ((2 * 3) + 2) (Array.length sys.Hamiltonian.controls);
  Alcotest.(check (float 1e-12)) "qubit drift is zero" 0.0
    (Cmat.frobenius_norm sys.Hamiltonian.drift)

let test_gmon_qutrit () =
  let sys = Hamiltonian.gmon ~level:Hamiltonian.Qutrit 2 in
  Alcotest.(check int) "dim 3^2" 9 sys.Hamiltonian.dim;
  Alcotest.(check bool) "anharmonic drift" true
    (Cmat.frobenius_norm sys.Hamiltonian.drift > 0.0)

let test_gmon_controls_hermitian () =
  let sys = Hamiltonian.gmon 2 in
  Array.iter
    (fun (c : Hamiltonian.control) ->
      Alcotest.(check bool) (c.label ^ " hermitian") true
        (Cmat.max_abs_diff c.matrix (Cmat.dagger c.matrix) < 1e-12);
      Alcotest.(check bool) (c.label ^ " bounded") true (c.max_amp > 0.0))
    sys.Hamiltonian.controls

let test_gmon_asymmetry () =
  Alcotest.(check bool) "flux 15x faster than charge" true
    (Hamiltonian.flux_amp_max /. Hamiltonian.charge_amp_max > 14.9)

let test_gmon_custom_topology () =
  let sys = Hamiltonian.gmon ~topology:(Topology.clique 3) 3 in
  Alcotest.(check int) "clique couplers" ((2 * 3) + 3) (Array.length sys.Hamiltonian.controls)

let test_embed_target_qubit_identity () =
  let sys = Hamiltonian.gmon 2 in
  let t = gate_target 2 Gate.CX [ 0; 1 ] in
  Alcotest.(check (float 1e-12)) "identity lift" 0.0
    (Cmat.max_abs_diff (Hamiltonian.embed_target sys t) t)

let test_embed_target_qutrit () =
  let sys = Hamiltonian.gmon ~level:Hamiltonian.Qutrit 1 in
  let x = Gate.matrix Gate.X ~theta:[||] in
  let e = Hamiltonian.embed_target sys x in
  Alcotest.(check int) "dim" 3 (Cmat.rows e);
  (* |0><1| lands at (0,1); leakage row/col zero. *)
  Alcotest.(check bool) "subspace block" true (Complex.norm (Cmat.get e 0 1) > 0.99);
  Alcotest.(check (float 1e-12)) "leakage column zero" 0.0 (Complex.norm (Cmat.get e 2 2))

(* --- Adam --- *)

let test_adam_minimizes_quadratic () =
  let adam = Adam.create 2 in
  let params = [| 5.0; -3.0 |] in
  for _ = 1 to 500 do
    let grad = Array.map (fun x -> 2.0 *. x) params in
    Adam.step adam ~learning_rate:0.1 ~params ~grad
  done;
  Alcotest.(check bool) "converged" true
    (Float.abs params.(0) < 0.01 && Float.abs params.(1) < 0.01)

let test_adam_reset () =
  let adam = Adam.create 1 in
  let params = [| 1.0 |] in
  Adam.step adam ~learning_rate:0.1 ~params ~grad:[| 1.0 |];
  Adam.reset adam;
  let p2 = [| 1.0 |] in
  Adam.step adam ~learning_rate:0.1 ~params:p2 ~grad:[| 1.0 |];
  (* After reset, first-step behaviour is reproduced exactly. *)
  Alcotest.(check (float 1e-12)) "reset replays" params.(0) p2.(0)

(* --- Grape optimize --- *)

let test_grape_x_gate () =
  let sys = Hamiltonian.gmon 1 in
  let r = Grape.optimize ~settings:quick sys ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:3.0 in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check bool) "fidelity" true (r.fidelity >= 0.99)

let test_grape_h_gate () =
  let sys = Hamiltonian.gmon 1 in
  let r = Grape.optimize ~settings:quick sys ~target:(gate_target 1 Gate.H [ 0 ]) ~total_time:2.0 in
  Alcotest.(check bool) "converged" true r.converged

let test_grape_propagate_consistent () =
  let sys = Hamiltonian.gmon 1 in
  let target = gate_target 1 Gate.H [ 0 ] in
  let r = Grape.optimize ~settings:quick sys ~target ~total_time:2.0 in
  let f = Grape.fidelity_of_controls sys ~target ~dt:quick.Grape.dt r.controls in
  Alcotest.(check bool) "controls reproduce fidelity" true
    (Float.abs (f -. r.fidelity) < 1e-6)

let test_propagate_matches_allocating_reference () =
  (* [Grape.propagate] accumulates in place with ping-pong buffers and a
     reused expm workspace; this reference is the old allocating
     implementation (fresh Hamiltonian, generator, exponential and product
     per time step).  Under the summation-order contract the two must agree
     to the last bit, not just to a tolerance. *)
  let old_propagate (sys : Hamiltonian.t) ~dt u =
    let dim = sys.Hamiltonian.dim in
    let n_steps = if Array.length u = 0 then 0 else Array.length u.(0) in
    let acc = ref (Cmat.identity dim) in
    for k = 0 to n_steps - 1 do
      let h = Cmat.copy sys.Hamiltonian.drift in
      Array.iteri
        (fun j row ->
          Cmat.axpy
            ~alpha:{ Complex.re = row.(k); im = 0.0 }
            ~x:sys.Hamiltonian.controls.(j).Hamiltonian.matrix ~y:h)
        u;
      let gen = Cmat.scale { Complex.re = 0.0; im = -.dt } h in
      let uk = Pqc_linalg.Expm.expm gen in
      acc := Cmat.mul uk !acc
    done;
    !acc
  in
  let rng = Pqc_util.Rng.create 42 in
  List.iter
    (fun n ->
      let sys = Hamiltonian.gmon n in
      let nc = Array.length sys.Hamiltonian.controls in
      let n_steps = 7 in
      let u =
        Array.init nc (fun _ ->
            Array.init n_steps (fun _ ->
                Pqc_util.Rng.uniform rng ~lo:(-0.5) ~hi:0.5))
      in
      let fast = Grape.propagate sys ~dt:0.3 u in
      let slow = old_propagate sys ~dt:0.3 u in
      for i = 0 to Cmat.rows fast - 1 do
        for j = 0 to Cmat.cols fast - 1 do
          let x = Cmat.get fast i j and y = Cmat.get slow i j in
          if
            Int64.bits_of_float x.Complex.re <> Int64.bits_of_float y.Complex.re
            || Int64.bits_of_float x.im <> Int64.bits_of_float y.im
          then
            Alcotest.failf "gmon %d: entry (%d,%d) differs: (%h,%h) vs (%h,%h)"
              n i j x.Complex.re x.im y.Complex.re y.im
        done
      done)
    [ 1; 2 ]

let test_grape_respects_amp_bounds () =
  let sys = Hamiltonian.gmon 1 in
  let r = Grape.optimize ~settings:quick sys ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:3.0 in
  Array.iteri
    (fun j row ->
      let cap = sys.Hamiltonian.controls.(j).max_amp in
      Array.iter
        (fun u -> Alcotest.(check bool) "bounded" true (Float.abs u <= cap +. 1e-12))
        row)
    r.controls

let test_grape_cx () =
  let sys = Hamiltonian.gmon 2 in
  let r =
    Grape.optimize ~settings:quick sys ~target:(gate_target 2 Gate.CX [ 0; 1 ])
      ~total_time:5.0
  in
  Alcotest.(check bool) "cx reachable" true r.converged

let test_grape_deterministic () =
  let sys = Hamiltonian.gmon 1 in
  let target = gate_target 1 Gate.H [ 0 ] in
  let a = Grape.optimize ~settings:quick sys ~target ~total_time:2.0 in
  let b = Grape.optimize ~settings:quick sys ~target ~total_time:2.0 in
  Alcotest.(check int) "same iterations" a.iterations b.iterations;
  Alcotest.(check (float 1e-12)) "same fidelity" a.fidelity b.fidelity

(* --- minimal time --- *)

let test_minimal_time_z_faster_than_x () =
  let sys = Hamiltonian.gmon 1 in
  let z = gate_target 1 (Gate.Rz (Param.const Float.pi)) [ 0 ] in
  let x = gate_target 1 (Gate.Rx (Param.const Float.pi)) [ 0 ] in
  let settings = { quick with Grape.dt = 0.1 } in
  match
    ( Grape.minimal_time ~settings ~upper_bound:4.0 sys ~target:z,
      Grape.minimal_time ~settings ~upper_bound:4.0 sys ~target:x )
  with
  | Some sz, Some sx ->
    (* The control-field asymmetry: Z rotations are much faster (Section
       5.1, Appendix A). *)
    Alcotest.(check bool) "z much faster" true
      (sz.minimal.total_time *. 2.0 < sx.minimal.total_time)
  | _ -> Alcotest.fail "searches must converge"

let test_minimal_time_cx_near_table () =
  let sys = Hamiltonian.gmon 2 in
  let settings = { quick with Grape.dt = 0.2; Grape.target_fidelity = 0.99 } in
  match
    Grape.minimal_time ~settings ~upper_bound:8.0 sys ~target:(gate_target 2 Gate.CX [ 0; 1 ])
  with
  | Some s ->
    Alcotest.(check bool) "within 1 ns of Table 1" true
      (Float.abs (s.minimal.total_time -. 3.8) <= 1.0)
  | None -> Alcotest.fail "cx search must converge"

let test_minimal_time_probes_recorded () =
  let sys = Hamiltonian.gmon 1 in
  match
    Grape.minimal_time ~settings:quick ~upper_bound:4.0 sys
      ~target:(gate_target 1 Gate.H [ 0 ])
  with
  | Some s ->
    Alcotest.(check bool) "several probes" true (List.length s.probes >= 3);
    Alcotest.(check bool) "iterations counted" true (s.grape_iterations_total > 0)
  | None -> Alcotest.fail "H search must converge"

let test_minimal_time_unreachable () =
  (* No coupler: an entangling target is unreachable. *)
  let sys = Hamiltonian.gmon ~topology:(Topology.of_edges 2 []) 2 in
  let settings = { quick with Grape.max_iters = 60 } in
  Alcotest.(check bool) "unreachable is None" true
    (Grape.minimal_time ~settings ~upper_bound:6.0 sys
       ~target:(gate_target 2 Gate.CX [ 0; 1 ])
    = None)

let test_multistart_stops_on_convergence () =
  let sys = Hamiltonian.gmon 1 in
  let single = Grape.optimize ~settings:quick sys ~target:(gate_target 1 Gate.H [ 0 ]) ~total_time:2.0 in
  let multi =
    Grape.optimize_multistart ~settings:quick ~starts:5 sys
      ~target:(gate_target 1 Gate.H [ 0 ]) ~total_time:2.0
  in
  Alcotest.(check bool) "converged" true multi.Grape.converged;
  (* First start converges, so no extra iterations are spent. *)
  Alcotest.(check int) "single start used" single.Grape.iterations multi.Grape.iterations

let test_multistart_accumulates () =
  (* An unreachable target forces all starts to run. *)
  let sys = Hamiltonian.gmon ~topology:(Pqc_transpile.Topology.of_edges 2 []) 2 in
  let settings = { quick with Grape.max_iters = 30 } in
  let single = Grape.optimize ~settings sys ~target:(gate_target 2 Gate.CX [ 0; 1 ]) ~total_time:4.0 in
  let multi =
    Grape.optimize_multistart ~settings ~starts:3 sys
      ~target:(gate_target 2 Gate.CX [ 0; 1 ]) ~total_time:4.0
  in
  Alcotest.(check bool) "not converged" false multi.Grape.converged;
  Alcotest.(check int) "iterations accumulate across starts"
    (3 * single.Grape.iterations) multi.Grape.iterations;
  Alcotest.(check bool) "best fidelity at least single's" true
    (multi.Grape.fidelity >= single.Grape.fidelity -. 1e-12)

let test_multistart_validation () =
  let sys = Hamiltonian.gmon 1 in
  Alcotest.(check bool) "starts = 0 rejected" true
    (try
       ignore
         (Grape.optimize_multistart ~starts:0 sys
            ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:2.0);
       false
     with Invalid_argument _ -> true)

let test_to_pulse () =
  let sys = Hamiltonian.gmon 1 in
  let r = Grape.optimize ~settings:quick sys ~target:(gate_target 1 Gate.H [ 0 ]) ~total_time:2.0 in
  let p = Grape.to_pulse ~label:"h" r in
  Alcotest.(check (float 1e-9)) "duration preserved" r.Grape.total_time
    (Pqc_pulse.Pulse.duration p);
  match Pqc_pulse.Pulse.segments p with
  | [ Pqc_pulse.Pulse.Optimized { samples = Some s; _ } ] ->
    Alcotest.(check int) "all control channels exported"
      (Array.length sys.Hamiltonian.controls)
      (Array.length s.Pqc_pulse.Pulse.controls);
    Alcotest.(check int) "sample count" r.Grape.n_steps
      (Array.length s.Pqc_pulse.Pulse.controls.(0))
  | _ -> Alcotest.fail "expected one optimized segment with samples"

let test_realistic_settings_run () =
  let sys = Hamiltonian.gmon ~level:Hamiltonian.Qutrit 1 in
  let settings = { Grape.realistic_settings with Grape.max_iters = 200 } in
  let r =
    Grape.optimize ~settings sys ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:6.0
  in
  (* Leakage + coarse sampling make this harder; it must still make clear
     progress over a random pulse. *)
  Alcotest.(check bool) "progress under realistic settings" true (r.fidelity > 0.9)

let () =
  Alcotest.run "grape"
    [ ( "hamiltonian",
        [ Alcotest.test_case "gmon structure" `Quick test_gmon_structure;
          Alcotest.test_case "qutrit" `Quick test_gmon_qutrit;
          Alcotest.test_case "controls hermitian" `Quick test_gmon_controls_hermitian;
          Alcotest.test_case "drive asymmetry" `Quick test_gmon_asymmetry;
          Alcotest.test_case "custom topology" `Quick test_gmon_custom_topology;
          Alcotest.test_case "embed qubit" `Quick test_embed_target_qubit_identity;
          Alcotest.test_case "embed qutrit" `Quick test_embed_target_qutrit ] );
      ( "adam",
        [ Alcotest.test_case "minimizes quadratic" `Quick test_adam_minimizes_quadratic;
          Alcotest.test_case "reset" `Quick test_adam_reset ] );
      ( "optimize",
        [ Alcotest.test_case "X gate" `Quick test_grape_x_gate;
          Alcotest.test_case "H gate" `Quick test_grape_h_gate;
          Alcotest.test_case "propagate consistency" `Quick test_grape_propagate_consistent;
          Alcotest.test_case "propagate = allocating reference" `Quick
            test_propagate_matches_allocating_reference;
          Alcotest.test_case "amplitude bounds" `Quick test_grape_respects_amp_bounds;
          Alcotest.test_case "CX" `Slow test_grape_cx;
          Alcotest.test_case "deterministic" `Quick test_grape_deterministic ] );
      ( "minimal-time",
        [ Alcotest.test_case "Z faster than X" `Quick test_minimal_time_z_faster_than_x;
          Alcotest.test_case "CX near Table 1" `Slow test_minimal_time_cx_near_table;
          Alcotest.test_case "probes recorded" `Quick test_minimal_time_probes_recorded;
          Alcotest.test_case "unreachable target" `Quick test_minimal_time_unreachable;
          Alcotest.test_case "to_pulse" `Quick test_to_pulse;
          Alcotest.test_case "multistart early stop" `Quick test_multistart_stops_on_convergence;
          Alcotest.test_case "multistart accumulates" `Quick test_multistart_accumulates;
          Alcotest.test_case "multistart validation" `Quick test_multistart_validation;
          Alcotest.test_case "realistic settings" `Slow test_realistic_settings_run ] ) ]
