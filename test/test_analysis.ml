module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
module Diagnostic = Pqc_analysis.Diagnostic
module Rule = Pqc_analysis.Rule
module Rules = Pqc_analysis.Rules
module Runner = Pqc_analysis.Runner
module Cache_audit = Pqc_analysis.Cache_audit
module Pulse_cache = Pqc_core.Pulse_cache
module Resilience = Pqc_core.Resilience
module Strategy = Pqc_core.Strategy
module Engine = Pqc_core.Engine
module Compiler = Pqc_core.Compiler

let diags_of id (report : Runner.report) =
  List.filter (fun (d : Diagnostic.t) -> d.rule = id) report.diagnostics

let has_rule id report = diags_of id report <> []

let span_of id report =
  match diags_of id report with
  | { Diagnostic.span = Some s; _ } :: _ -> Some (s.first, s.last)
  | _ -> None

(* --- diagnostics --- *)

let test_diagnostic_ordering () =
  let e = Diagnostic.error ~rule:"PQC001" ~span:(Diagnostic.point 9) "e" in
  let w = Diagnostic.warning ~rule:"PQC030" ~span:(Diagnostic.point 1) "w" in
  let i = Diagnostic.info ~rule:"PQC040" "i" in
  let sorted = List.sort Diagnostic.compare [ i; w; e ] in
  Alcotest.(check (list string)) "errors first"
    [ "PQC001"; "PQC030"; "PQC040" ]
    (List.map (fun (d : Diagnostic.t) -> d.rule) sorted)

let test_diagnostic_json () =
  let d =
    Diagnostic.error ~rule:"PQC020" ~span:(Diagnostic.span ~first:2 ~last:5)
      ~hint:"a \"quoted\" hint" "bad\nthing"
  in
  let j = Diagnostic.to_json d in
  let contains needle =
    let n = String.length needle and h = String.length j in
    let rec go i = i + n <= h && (String.sub j i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rule" true (contains "\"rule\":\"PQC020\"");
  Alcotest.(check bool) "span" true (contains "\"first\":2");
  Alcotest.(check bool) "newline escaped" true (contains "bad\\nthing");
  Alcotest.(check bool) "quote escaped" true (contains "\\\"quoted\\\"")

(* --- validity rules on malformed streams --- *)

let test_validity_rules_on_malformed_stream () =
  let instrs =
    [ { Circuit.gate = Gate.H; qubits = [| 5 |] };
      { Circuit.gate = Gate.CX; qubits = [| 0 |] };
      { Circuit.gate = Gate.CX; qubits = [| 1; 1 |] } ]
  in
  let report = Runner.run (Rule.of_instrs ~n:2 instrs) in
  Alcotest.(check bool) "has errors" true (Runner.has_errors report);
  Alcotest.(check (option (pair int int))) "bounds span" (Some (0, 0))
    (span_of "PQC001" report);
  Alcotest.(check (option (pair int int))) "arity span" (Some (1, 1))
    (span_of "PQC002" report);
  Alcotest.(check (option (pair int int))) "duplicate span" (Some (2, 2))
    (span_of "PQC003" report);
  Alcotest.(check bool) "structural rules skipped" true
    report.Runner.skipped_structural

let test_clean_circuit_reports_nothing () =
  let c = Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.h2 in
  let report = Runner.analyze ~theta_len:3 c in
  Alcotest.(check int) "no errors" 0 report.Runner.errors;
  Alcotest.(check int) "no warnings" 0 report.Runner.warnings;
  Alcotest.(check bool) "structural ran" false report.Runner.skipped_structural;
  Alcotest.(check int) "exit code" 0 (Runner.exit_code report)

(* --- parameter rules --- *)

let test_non_finite_angle () =
  let c = Circuit.of_gates 1 [ (Gate.Rx (Param.const Float.nan), [ 0 ]) ] in
  let report = Runner.analyze c in
  Alcotest.(check bool) "flagged" true (has_rule "PQC010" report);
  Alcotest.(check bool) "is error" true (Runner.has_errors report)

let test_unbound_param () =
  let c = Circuit.of_gates 1 [ (Gate.Rz (Param.var 2), [ 0 ]) ] in
  let short = Runner.analyze ~theta_len:1 c in
  Alcotest.(check (option (pair int int))) "span" (Some (0, 0))
    (span_of "PQC011" short);
  let ok = Runner.analyze ~theta_len:3 c in
  Alcotest.(check bool) "covered is clean" false (has_rule "PQC011" ok)

(* --- slicing invariants --- *)

let non_monotone =
  Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.Rz (Param.var 1), [ 0 ]);
      (Gate.Rz (Param.var 0), [ 0 ]) ]

let test_monotonicity_violation_detected () =
  let report = Runner.analyze ~theta_len:2 non_monotone in
  Alcotest.(check bool) "error without target" true (Runner.has_errors report);
  Alcotest.(check (option (pair int int))) "span is the reopening gate"
    (Some (2, 2))
    (span_of "PQC020" report)

let test_monotonicity_severity_by_target () =
  let severity target =
    let r = Runner.analyze ~theta_len:2 ~target non_monotone in
    match diags_of "PQC020" r with
    | d :: _ -> Some d.Diagnostic.severity
    | [] -> None
  in
  Alcotest.(check bool) "fatal for flexible" true
    (severity Rule.Flexible_partial = Some Diagnostic.Error);
  Alcotest.(check bool) "advisory for strict" true
    (severity Rule.Strict_partial = Some Diagnostic.Warning);
  Alcotest.(check bool) "advisory for gate-based" true
    (severity Rule.Gate_based = Some Diagnostic.Warning)

let test_slice_rules_pass_on_benchmarks () =
  List.iter
    (fun c ->
      let report = Runner.analyze c in
      Alcotest.(check bool) "PQC021 silent" false (has_rule "PQC021" report);
      Alcotest.(check bool) "PQC022 silent" false (has_rule "PQC022" report))
    [ Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.h2;
      Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.lih;
      Pqc_qaoa.Qaoa.circuit (Pqc_qaoa.Graph.clique 4) ~p:2 ]

(* --- blocking and connectivity --- *)

let entangling_chain n =
  Circuit.of_gates n
    (List.init (n - 1) (fun q -> (Gate.CX, [ q; q + 1 ])))

let test_block_width_oversized () =
  let c = entangling_chain 6 in
  let report = Runner.analyze ~max_width:6 c in
  let errors =
    List.filter Diagnostic.is_error (diags_of "PQC030" report)
  in
  (match errors with
  | [ d ] ->
    Alcotest.(check (option (pair int int))) "span covers the chain"
      (Some (0, 4))
      (Option.map (fun (s : Diagnostic.span) -> (s.first, s.last)) d.span)
  | _ -> Alcotest.fail "expected exactly one oversized-block error");
  Alcotest.(check bool) "budget warning too" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Warning)
       (diags_of "PQC030" report))

let test_block_width_within_cap () =
  let report = Runner.analyze ~max_width:4 (entangling_chain 6) in
  Alcotest.(check bool) "silent at cap" false (has_rule "PQC030" report)

let test_block_width_budget_too_small () =
  let report = Runner.analyze ~max_width:1 (entangling_chain 3) in
  Alcotest.(check bool) "budget < 2 is an error" true
    (List.exists Diagnostic.is_error (diags_of "PQC030" report))

let test_connectivity () =
  let c = Circuit.of_gates 3 [ (Gate.CX, [ 0; 2 ]); (Gate.CX, [ 0; 1 ]) ] in
  let report = Runner.analyze ~topology:(Topology.line 3) c in
  Alcotest.(check (option (pair int int))) "non-adjacent pair flagged"
    (Some (0, 0))
    (span_of "PQC031" report);
  Alcotest.(check int) "only the bad gate" 1
    (List.length (diags_of "PQC031" report));
  let no_topo = Runner.analyze c in
  Alcotest.(check bool) "silent without topology" false
    (has_rule "PQC031" no_topo)

(* --- lints --- *)

let test_adjacent_inverse_lint () =
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]); (Gate.H, [ 0 ]) ] in
  let report = Runner.analyze c in
  Alcotest.(check (option (pair int int))) "pair span" (Some (0, 1))
    (span_of "PQC040" report);
  Alcotest.(check int) "advisory only" 0 report.Runner.errors

let test_mergeable_rotation_lint () =
  let c =
    Circuit.of_gates 1
      [ (Gate.Rz (Param.const 0.1), [ 0 ]); (Gate.Rz (Param.const 0.2), [ 0 ]);
        (Gate.Rx (Param.const (4.0 *. Float.pi)), [ 0 ]) ]
  in
  let report = Runner.analyze c in
  let found = diags_of "PQC041" report in
  Alcotest.(check bool) "merge pair found" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.span = Some { Diagnostic.first = 0; last = 1 })
       found);
  Alcotest.(check bool) "dead rotation found" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.span = Some { Diagnostic.first = 2; last = 2 })
       found)

(* --- runner mechanics --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_crashing_rule_is_contained () =
  let crashing =
    { Rule.id = "TST999"; title = "crash"; doc = "always crashes";
      check = Rule.Structural (fun _ _ -> failwith "boom") }
  in
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let report = Runner.run ~rules:(Rules.all @ [ crashing ]) (Rule.of_circuit c) in
  Alcotest.(check (list string)) "no finding under the crashed rule's id" []
    (List.map (fun (d : Diagnostic.t) -> d.message) (diags_of "TST999" report));
  match diags_of "PQC999" report with
  | [ d ] ->
    Alcotest.(check bool) "reported as error" true (Diagnostic.is_error d);
    Alcotest.(check bool) "names the crashed rule" true
      (contains ~sub:"TST999" d.Diagnostic.message);
    Alcotest.(check bool) "carries the exception" true
      (contains ~sub:"boom" d.Diagnostic.message);
    (* The backtrace (or the explicit unavailability marker) follows the
       exception on its own lines. *)
    Alcotest.(check bool) "message is multi-line" true
      (contains ~sub:"\n" d.Diagnostic.message)
  | _ -> Alcotest.fail "crash must surface as exactly one PQC999 diagnostic"

let test_duplicate_rule_rejected () =
  let dup =
    { Rule.id = "PQC020"; title = "imposter"; doc = "duplicate id";
      check = Rule.Structural (fun _ _ -> []) }
  in
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  (match Runner.run ~rules:(Rules.all @ [ dup ]) (Rule.of_circuit c) with
  | _ -> Alcotest.fail "duplicate rule id must be rejected"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the id" true (contains ~sub:"PQC020" msg))

let test_overrides () =
  (* non_monotone trips PQC020 (error, lint target) and PQC060/PQC061. *)
  let base = Runner.analyze ~theta_len:2 non_monotone in
  Alcotest.(check bool) "baseline has errors" true (Runner.has_errors base);
  let off =
    Runner.analyze ~overrides:[ ("PQC020", Runner.Off) ] ~theta_len:2
      non_monotone
  in
  Alcotest.(check int) "PQC020 findings suppressed" 0
    (List.length (diags_of "PQC020" off));
  Alcotest.(check bool) "suppressed counted" true (off.Runner.suppressed > 0);
  Alcotest.(check int) "totals exclude suppressed"
    (List.length off.Runner.diagnostics)
    (off.Runner.errors + off.Runner.warnings + off.Runner.infos);
  let demoted =
    Runner.analyze
      ~overrides:[ ("PQC020", Runner.Severity Diagnostic.Info) ]
      ~theta_len:2 non_monotone
  in
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check bool) "demoted to info" true
        (d.severity = Diagnostic.Info))
    (diags_of "PQC020" demoted);
  let promoted =
    Runner.analyze
      ~overrides:[ ("PQC060", Runner.Severity Diagnostic.Error) ]
      ~theta_len:2 non_monotone
  in
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check bool) "promoted to error" true (Diagnostic.is_error d))
    (diags_of "PQC060" promoted)

let test_parse_overrides () =
  (match Runner.parse_overrides "PQC040=off, -PQC041 ,PQC030=error" with
  | Ok
      [ ("PQC040", Runner.Off); ("PQC041", Runner.Off);
        ("PQC030", Runner.Severity Diagnostic.Error) ] ->
    ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Runner.parse_overrides "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty spec must parse to no overrides");
  (match Runner.parse_overrides "PQC030=fatal" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown level must be rejected");
  match Runner.parse_overrides "PQC040" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare id without '-' or '=' must be rejected"

let test_check_raises_rejected () =
  (match Runner.check ~theta_len:2 non_monotone with
  | _ -> Alcotest.fail "must raise"
  | exception Runner.Rejected report ->
    Alcotest.(check bool) "report has errors" true (Runner.has_errors report));
  let clean = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  Alcotest.(check int) "clean passes" 0 (Runner.check clean).Runner.errors

let test_registry () =
  Alcotest.(check int) "catalog size" 16 (List.length (Rules.catalog ()));
  Alcotest.(check bool) "find by id" true (Rules.find "PQC020" <> None);
  Alcotest.(check bool) "find by title" true
    (Rules.find "param-monotonicity" <> None);
  Alcotest.(check bool) "unknown" true (Rules.find "PQC999" = None)

(* --- cache audit --- *)

let temp_path () = Filename.temp_file "pqc_analysis" ".cache"

let sample_entries =
  [ { Pulse_cache.key = "blk[0,1]|cx 0,1"; duration_ns = 12.5; grape_runs = 3;
      grape_iterations = 120; seconds = 0.4; fidelity = Some 0.999;
      fallback = None; run_id = None };
    { Pulse_cache.key = "blk[2]|h 2"; duration_ns = 4.0; grape_runs = 1;
      grape_iterations = 40; seconds = 0.1; fidelity = None;
      fallback = Some "diverged"; run_id = None } ]

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

(* Pins the standalone scanner in pqc_analysis to the real on-disk format
   written by Pqc_core.Pulse_cache: a freshly saved cache must audit
   clean.  If the two implementations ever drift, this test fails. *)
let test_cache_audit_accepts_real_cache () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  let findings = Cache_audit.audit ~path in
  Sys.remove path;
  Alcotest.(check (list string)) "clean audit" []
    (List.map Diagnostic.to_string findings)

let test_cache_audit_detects_corruption () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  (match read_lines path with
  | header :: record :: rest ->
    let corrupt = String.map (fun c -> if c = 'b' then 'X' else c) record in
    write_lines path (header :: corrupt :: rest)
  | _ -> Alcotest.fail "expected header + records");
  let findings = Cache_audit.audit ~path in
  Sys.remove path;
  match List.filter Diagnostic.is_error findings with
  | [ d ] ->
    Alcotest.(check string) "rule id" "PQC050" d.Diagnostic.rule;
    Alcotest.(check (option (pair int int))) "line span" (Some (2, 2))
      (Option.map (fun (s : Diagnostic.span) -> (s.first, s.last))
         d.Diagnostic.span)
  | _ -> Alcotest.fail "expected exactly one checksum error"

let test_cache_audit_bad_header () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  (match read_lines path with
  | _ :: rest -> write_lines path ("PQC-PULSE-CACHE v9" :: rest)
  | [] -> Alcotest.fail "empty cache file");
  let findings = Cache_audit.audit ~path in
  Sys.remove path;
  Alcotest.(check bool) "version mismatch is an error" true
    (List.exists Diagnostic.is_error findings)

let test_cache_audit_duplicate_key () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  (match read_lines path with
  | header :: record :: rest ->
    write_lines path ((header :: record :: rest) @ [ record ])
  | _ -> Alcotest.fail "expected header + records");
  let findings = Cache_audit.audit ~path in
  Sys.remove path;
  Alcotest.(check bool) "duplicate key warned" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Warning)
       findings)

let test_cache_audit_missing_file () =
  let findings = Cache_audit.audit ~path:"/nonexistent/pqc.cache" in
  Alcotest.(check bool) "missing file is a warning, not an error" true
    (findings <> [] && not (List.exists Diagnostic.is_error findings))

(* --- the Compiler.compile gate --- *)

let test_compile_rejects_flexible_on_non_monotone () =
  match
    Compiler.compile ~engine:Engine.model Compiler.Flexible_partial
      non_monotone ~theta:[| 0.1; 0.2 |]
  with
  | _ -> Alcotest.fail "compile must refuse before GRAPE"
  | exception Runner.Rejected report ->
    Alcotest.(check bool) "monotonicity error in report" true
      (List.exists
         (fun (d : Diagnostic.t) -> d.rule = "PQC020" && Diagnostic.is_error d)
         report.Runner.diagnostics)

let test_compile_records_lint_warnings () =
  let r =
    Compiler.compile ~engine:Engine.model Compiler.Strict_partial non_monotone
      ~theta:[| 0.1; 0.2 |]
  in
  Alcotest.(check bool) "degraded accounting" true (Strategy.degraded r);
  Alcotest.(check bool) "lint degradation recorded" true
    (List.exists
       (fun (d : Resilience.degradation) ->
         d.Resilience.stage = "analysis" && d.Resilience.reason = Resilience.Lint)
       r.Strategy.degradations)

let test_compile_analysis_opt_out () =
  let r =
    Compiler.compile ~analysis:false ~engine:Engine.model
      Compiler.Flexible_partial non_monotone ~theta:[| 0.1; 0.2 |]
  in
  Alcotest.(check bool) "still produces a pulse via degradation" true
    (Float.is_finite r.Strategy.duration_ns)

let test_compile_rejects_unbound_param () =
  let c = Circuit.of_gates 1 [ (Gate.Rz (Param.var 5), [ 0 ]) ] in
  match
    Compiler.compile ~engine:Engine.model Compiler.Gate_based c ~theta:[| 0.1 |]
  with
  | _ -> Alcotest.fail "compile must refuse an uncoverable binding"
  | exception Runner.Rejected report ->
    Alcotest.(check bool) "PQC011 error" true
      (List.exists
         (fun (d : Diagnostic.t) -> d.rule = "PQC011")
         report.Runner.diagnostics)

(* --- dataflow/cost rules (PQC06x) --- *)

module Cost = Pqc_analysis.Cost
module Sarif = Pqc_analysis.Sarif

let test_commutation_reslice_rule () =
  (* non_monotone is all-Rz, hence fully commuting: reslicable. *)
  let report = Runner.analyze ~theta_len:2 non_monotone in
  Alcotest.(check bool) "PQC060 fires" true (has_rule "PQC060" report);
  (* An H pins the Rz order: t0's run genuinely cannot be made
     contiguous, so the rule must stay silent. *)
  let pinned =
    Circuit.of_gates 1
      [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.H, [ 0 ]);
        (Gate.Rz (Param.var 1), [ 0 ]); (Gate.H, [ 0 ]);
        (Gate.Rz (Param.var 0), [ 0 ]) ]
  in
  let report = Runner.analyze ~theta_len:2 pinned in
  Alcotest.(check bool) "PQC060 silent when not reslicable" false
    (has_rule "PQC060" report)

let test_dead_parameter_rule () =
  let c =
    Circuit.of_gates 2
      [ (Gate.Rx (Param.var 0), [ 0 ]); (Gate.CX, [ 0; 1 ]);
        (Gate.Rz (Param.var 1), [ 1 ]) ]
  in
  let report = Runner.analyze ~theta_len:2 c in
  (match diags_of "PQC061" report with
  | [ d ] ->
    Alcotest.(check bool) "names t1" true
      (contains ~sub:"t1" d.Diagnostic.message);
    Alcotest.(check (option (pair int int))) "span is the dead gate"
      (Some (2, 2)) (span_of "PQC061" report)
  | ds ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one PQC061, got %d" (List.length ds)));
  (* An X basis change after the Rz keeps the parameter live. *)
  let live =
    Circuit.of_gates 1
      [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.H, [ 0 ]) ]
  in
  Alcotest.(check bool) "live param is silent" false
    (has_rule "PQC061" (Runner.analyze ~theta_len:1 live))

let test_block_beats_grape_rule () =
  (* Two Rz(pi) on one qubit: the modelled GRAPE time equals the lookup
     table exactly (both are pure Z-drive content), so pulses buy
     nothing. *)
  let tie =
    Circuit.of_gates 1
      [ (Gate.Rz (Param.const Float.pi), [ 0 ]);
        (Gate.Rz (Param.const Float.pi), [ 0 ]) ]
  in
  Alcotest.(check bool) "PQC062 fires on a no-win block" true
    (has_rule "PQC062" (Runner.analyze tie));
  (* Bell pair: GRAPE compresses H+CX well below the table. *)
  let bell = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  Alcotest.(check bool) "PQC062 silent when GRAPE wins" false
    (has_rule "PQC062" (Runner.analyze bell))

(* --- SARIF export --- *)

let test_sarif_shape () =
  let report = Runner.analyze ~theta_len:2 non_monotone in
  let sarif = Sarif.of_report ~uri:"test.qasm" report in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true
        (contains ~sub sarif))
    [ "\"version\":\"2.1.0\"";
      "sarif-2.1.0.json";
      "\"name\":\"partialc-analysis\"";
      "\"ruleId\":\"PQC020\"";
      "\"ruleIndex\":";
      "\"level\":\"error\"";
      "\"firstInstruction\":";
      "\"uri\":\"test.qasm\"" ];
  (* Every result's ruleId resolves: PQC999 and PQC000 are in the driver
     rule table too. *)
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "driver knows %s" sub) true
        (contains ~sub sarif))
    [ "\"id\":\"PQC000\""; "\"id\":\"PQC999\"" ]

(* --- the strategy advisor --- *)

let prepared_h2 = Compiler.prepare (Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.h2)

let test_advice_noop_is_bit_identical () =
  let advice = Runner.advise prepared_h2 in
  let strategy = Compiler.strategy_of_target advice.Cost.recommended in
  let theta = Cost.canonical_theta prepared_h2 in
  let plain = Compiler.compile ~engine:Engine.model strategy prepared_h2 ~theta in
  let advised =
    Compiler.compile ~advice ~engine:Engine.model strategy prepared_h2 ~theta
  in
  Alcotest.(check string) "same strategy" plain.Strategy.strategy
    advised.Strategy.strategy;
  Alcotest.(check (float 0.0)) "same duration" plain.Strategy.duration_ns
    advised.Strategy.duration_ns;
  Alcotest.(check bool) "bit-identical pulse" true
    (plain.Strategy.pulse = advised.Strategy.pulse);
  Alcotest.(check int) "no extra degradations"
    (List.length plain.Strategy.degradations)
    (List.length advised.Strategy.degradations)

let test_advice_switch_is_recorded () =
  (* Force a switch: request full GRAPE while the advisor, given a tiny
     latency budget, must pick a zero-per-iteration strategy. *)
  let advice = Runner.advise ~latency_budget_s:1e-9 prepared_h2 in
  let recommended = Compiler.strategy_of_target advice.Cost.recommended in
  if recommended <> Compiler.Full_grape then begin
    let theta = Cost.canonical_theta prepared_h2 in
    let r =
      Compiler.compile ~advice ~engine:Engine.model Compiler.Full_grape
        prepared_h2 ~theta
    in
    Alcotest.(check string) "compiled the recommendation"
      (Compiler.strategy_name recommended) r.Strategy.strategy;
    Alcotest.(check bool) "advisor switch recorded" true
      (List.exists
         (fun (d : Resilience.degradation) -> d.Resilience.stage = "advisor")
         r.Strategy.degradations)
  end
  else Alcotest.fail "tiny budget cannot admit full GRAPE"

(* The static cost model must agree with what actually compiling under the
   calibrated model engine reports (the claim in Cost's docstring). *)
let test_cost_matches_model_compiler () =
  let theta = Cost.canonical_theta prepared_h2 in
  let close what a b =
    let tol = 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.9g ~ %.9g" what a b)
      true
      (Float.abs (a -. b) <= tol)
  in
  List.iter
    (fun (strategy, target) ->
      let e = Cost.estimate ~theta prepared_h2 target in
      let r =
        Compiler.compile ~analysis:false ~engine:Engine.model strategy
          prepared_h2 ~theta
      in
      let name = Compiler.strategy_name strategy in
      close (name ^ " pulse") r.Strategy.duration_ns e.Cost.pulse_ns;
      close (name ^ " precompute") r.Strategy.precompute.Engine.seconds
        e.Cost.precompute_s;
      close (name ^ " per-iteration") r.Strategy.per_iteration.Engine.seconds
        e.Cost.per_iteration_s)
    [ (Compiler.Gate_based, Rule.Gate_based);
      (Compiler.Strict_partial, Rule.Strict_partial);
      (Compiler.Flexible_partial, Rule.Flexible_partial);
      (Compiler.Full_grape, Rule.Full_grape) ]

(* The advisor's predicted pulse-duration ordering must reproduce the
   measured ordering in the committed numeric baseline. *)
let test_ranking_matches_committed_baseline () =
  match Pqc_core.Bench_report.read ~path:"../BENCH_partial_compilation.json" with
  | Error e -> Alcotest.fail e
  | Ok report ->
    let target_of = function
      | "gate-based" -> Rule.Gate_based
      | "strict-partial" -> Rule.Strict_partial
      | "flexible-partial" -> Rule.Flexible_partial
      | "full-grape" -> Rule.Full_grape
      | s -> Alcotest.fail ("unknown strategy in baseline: " ^ s)
    in
    let circuit_of name =
      match name with
      | "uccsd-h2" -> Compiler.prepare (Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.h2)
      | "uccsd-lih" ->
        Compiler.prepare (Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.lih)
      | s -> Alcotest.fail ("unknown benchmark in baseline: " ^ s)
    in
    let rows =
      List.map
        (fun (x : Pqc_core.Bench_report.experiment) ->
          let c = circuit_of x.name in
          let e = Cost.estimate c (target_of x.strategy) in
          (x.name, e.Cost.pulse_ns, x.pulse_duration_ns))
        report.Pqc_core.Bench_report.experiments
    in
    Alcotest.(check bool) "baseline has experiments" true (rows <> []);
    List.iter
      (fun (na, pa, ma) ->
        List.iter
          (fun (nb, pb, mb) ->
            if ma <> mb then
              Alcotest.(check bool)
                (Printf.sprintf "%s vs %s: predicted order matches measured"
                   na nb)
                true
                (compare pa pb = compare ma mb))
          rows)
      rows

let test_advise_deterministic () =
  let a = Cost.advice_to_json (Runner.advise prepared_h2) in
  let b = Cost.advice_to_json (Runner.advise prepared_h2) in
  Alcotest.(check string) "two runs, same advice" a b

let () =
  Alcotest.run "analysis"
    [ ( "diagnostic",
        [ Alcotest.test_case "ordering" `Quick test_diagnostic_ordering;
          Alcotest.test_case "json" `Quick test_diagnostic_json ] );
      ( "validity",
        [ Alcotest.test_case "malformed stream" `Quick
            test_validity_rules_on_malformed_stream;
          Alcotest.test_case "clean circuit" `Quick
            test_clean_circuit_reports_nothing ] );
      ( "parameters",
        [ Alcotest.test_case "non-finite angle" `Quick test_non_finite_angle;
          Alcotest.test_case "unbound param" `Quick test_unbound_param ] );
      ( "slicing",
        [ Alcotest.test_case "monotonicity violation" `Quick
            test_monotonicity_violation_detected;
          Alcotest.test_case "severity by target" `Quick
            test_monotonicity_severity_by_target;
          Alcotest.test_case "benchmarks pass" `Quick
            test_slice_rules_pass_on_benchmarks ] );
      ( "blocking",
        [ Alcotest.test_case "oversized block" `Quick test_block_width_oversized;
          Alcotest.test_case "within cap" `Quick test_block_width_within_cap;
          Alcotest.test_case "budget too small" `Quick
            test_block_width_budget_too_small;
          Alcotest.test_case "connectivity" `Quick test_connectivity ] );
      ( "lint",
        [ Alcotest.test_case "adjacent inverse" `Quick test_adjacent_inverse_lint;
          Alcotest.test_case "mergeable rotation" `Quick
            test_mergeable_rotation_lint ] );
      ( "runner",
        [ Alcotest.test_case "crashing rule contained" `Quick
            test_crashing_rule_is_contained;
          Alcotest.test_case "duplicate rule rejected" `Quick
            test_duplicate_rule_rejected;
          Alcotest.test_case "overrides" `Quick test_overrides;
          Alcotest.test_case "parse overrides" `Quick test_parse_overrides;
          Alcotest.test_case "check raises" `Quick test_check_raises_rejected;
          Alcotest.test_case "registry" `Quick test_registry ] );
      ( "cache-audit",
        [ Alcotest.test_case "accepts real cache" `Quick
            test_cache_audit_accepts_real_cache;
          Alcotest.test_case "detects corruption" `Quick
            test_cache_audit_detects_corruption;
          Alcotest.test_case "bad header" `Quick test_cache_audit_bad_header;
          Alcotest.test_case "duplicate key" `Quick
            test_cache_audit_duplicate_key;
          Alcotest.test_case "missing file" `Quick
            test_cache_audit_missing_file ] );
      ( "compile-gate",
        [ Alcotest.test_case "rejects non-monotone flexible" `Quick
            test_compile_rejects_flexible_on_non_monotone;
          Alcotest.test_case "records lint warnings" `Quick
            test_compile_records_lint_warnings;
          Alcotest.test_case "analysis opt-out" `Quick
            test_compile_analysis_opt_out;
          Alcotest.test_case "rejects unbound param" `Quick
            test_compile_rejects_unbound_param ] );
      ( "dataflow-rules",
        [ Alcotest.test_case "commutation reslice" `Quick
            test_commutation_reslice_rule;
          Alcotest.test_case "dead parameter" `Quick test_dead_parameter_rule;
          Alcotest.test_case "block beats grape" `Quick
            test_block_beats_grape_rule ] );
      ( "sarif", [ Alcotest.test_case "shape" `Quick test_sarif_shape ] );
      ( "advisor",
        [ Alcotest.test_case "no-op advice bit-identical" `Quick
            test_advice_noop_is_bit_identical;
          Alcotest.test_case "switch recorded" `Quick
            test_advice_switch_is_recorded;
          Alcotest.test_case "cost matches model compiler" `Quick
            test_cost_matches_model_compiler;
          Alcotest.test_case "ranking matches baseline" `Quick
            test_ranking_matches_committed_baseline;
          Alcotest.test_case "deterministic" `Quick
            test_advise_deterministic ] ) ]
