module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Hamiltonian = Pqc_grape.Hamiltonian
module Grape = Pqc_grape.Grape
module Hyperopt = Pqc_hyperopt.Hyperopt

(* A 1-qubit single-angle slice: Rz(theta) H, the smallest realistic
   flexible-partial subcircuit. *)
let objective () =
  let sys = Hamiltonian.gmon 1 in
  let target_of angle =
    Circuit.unitary
      (Circuit.of_gates 1 [ (Gate.Rz (Param.const angle), [ 0 ]); (Gate.H, [ 0 ]) ])
  in
  { Hyperopt.system = sys; target_of; total_time = 2.4;
    settings = { Grape.fast_settings with Grape.dt = 0.2; max_iters = 200 } }

let test_evaluate_reports_convergence () =
  let obj = objective () in
  let s =
    Hyperopt.evaluate obj ~angles:[| 0.5; 2.0 |]
      { Grape.learning_rate = 0.3; decay = 0.999 }
  in
  Alcotest.(check bool) "good lr converges" true s.Hyperopt.converged_all;
  Alcotest.(check bool) "iterations positive" true (s.Hyperopt.iterations > 0.0)

let test_evaluate_bad_lr () =
  let obj = objective () in
  let s =
    Hyperopt.evaluate obj ~angles:[| 0.5 |]
      { Grape.learning_rate = 1e-6; decay = 0.999 }
  in
  Alcotest.(check bool) "tiny lr fails to converge" false s.Hyperopt.converged_all

let test_grid_search_beats_bad () =
  let obj = objective () in
  let best =
    Hyperopt.grid_search
      ~lr_grid:[| 1e-5; 0.3 |] ~decay_grid:[| 0.999 |] ~angles:[| 0.5 |] obj
  in
  Alcotest.(check bool) "picks the converging cell" true
    (best.Hyperopt.hyperparams.Grape.learning_rate > 1e-4);
  Alcotest.(check bool) "converged" true best.Hyperopt.converged_all

let test_robustness_shape () =
  let obj = objective () in
  let points =
    Hyperopt.robustness ~lr_grid:[| 0.1; 0.3; 1.0 |] obj ~angles:[| 0.5; 2.5 |]
  in
  Alcotest.(check int) "one point per angle" 2 (List.length points);
  List.iter
    (fun (p : Hyperopt.robustness_point) ->
      Alcotest.(check int) "one error per lr" 3 (List.length p.error_by_lr);
      List.iter
        (fun (_, e) -> Alcotest.(check bool) "error in [0,1]" true (e >= 0.0 && e <= 1.0))
        p.error_by_lr)
    points

(* Synthetic robustness data exercises the stability metric without GRAPE. *)
let synth_point angle best =
  let lrs = [ 0.01; 0.1; 1.0 ] in
  { Hyperopt.angle;
    error_by_lr = List.map (fun lr -> (lr, if lr = best then 0.01 else 0.5)) lrs }

let test_stability_perfect () =
  let points = [ synth_point 0.5 0.1; synth_point 1.5 0.1; synth_point 2.5 0.1 ] in
  Alcotest.(check (float 1e-9)) "all agree" 1.0 (Hyperopt.best_lr_stability points)

let test_stability_partial () =
  (* One angle prefers a lr two grid steps away: not within one step. *)
  let points = [ synth_point 0.5 0.01; synth_point 1.5 0.01; synth_point 2.5 1.0 ] in
  let s = Hyperopt.best_lr_stability points in
  Alcotest.(check bool) "below 1" true (s < 1.0);
  Alcotest.(check bool) "above 0.5" true (s > 0.5)

let test_stability_empty () =
  Alcotest.(check (float 1e-9)) "vacuous" 1.0 (Hyperopt.best_lr_stability [])

let test_stability_diverged_lr () =
  (* Regression: a learning rate that diverges reports NaN infidelity at
     every probe angle.  NaN totals sort first under polymorphic compare,
     so pre-fix the diverged rate was crowned overall winner — two grid
     steps from every angle's actual best — collapsing stability to 0.
     Divergence must read as infinitely bad, not infinitely good. *)
  let point angle =
    { Hyperopt.angle;
      error_by_lr =
        [ (0.001, 0.3); (0.01, 0.02); (0.1, 0.4); (1.0, Float.nan) ] }
  in
  let points = [ point 0.5; point 1.5; point 2.5 ] in
  Alcotest.(check (float 1e-9)) "diverged lr never crowned" 1.0
    (Hyperopt.best_lr_stability points)

(* The paper's Figure 4 claim, measured for real: the winning learning-rate
   region is robust to the bound angle. *)
let test_figure4_robustness_real () =
  let obj = objective () in
  let points =
    Hyperopt.robustness ~lr_grid:[| 0.003; 0.03; 0.3; 3.0 |] obj
      ~angles:[| 0.4; 1.2; 2.7 |]
  in
  Alcotest.(check bool) "winning lr stable across angles" true
    (Hyperopt.best_lr_stability points >= 2.0 /. 3.0)

let () =
  Alcotest.run "hyperopt"
    [ ( "search",
        [ Alcotest.test_case "evaluate converging" `Quick test_evaluate_reports_convergence;
          Alcotest.test_case "evaluate bad lr" `Quick test_evaluate_bad_lr;
          Alcotest.test_case "grid search" `Slow test_grid_search_beats_bad ] );
      ( "robustness",
        [ Alcotest.test_case "shape" `Slow test_robustness_shape;
          Alcotest.test_case "stability perfect" `Quick test_stability_perfect;
          Alcotest.test_case "stability partial" `Quick test_stability_partial;
          Alcotest.test_case "stability empty" `Quick test_stability_empty;
          Alcotest.test_case "stability diverged lr" `Quick
            test_stability_diverged_lr;
          Alcotest.test_case "figure-4 robustness" `Slow test_figure4_robustness_real ] ) ]
