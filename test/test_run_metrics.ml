(* Run-level observability: per-iteration JSONL run logs, the Jsonx
   reader underneath the bench tooling, Bench_report round-trips across
   schema versions, and the bench diff regression gate. *)

module Jsonx = Pqc_util.Jsonx
module Obs = Pqc_obs.Obs
module Run_log = Pqc_obs.Run_log
module Circuit = Pqc_quantum.Circuit
module Gate = Pqc_quantum.Gate
module Bench_report = Pqc_core.Bench_report
module Bench_diff = Pqc_core.Bench_diff

let with_temp_file f =
  let path = Filename.temp_file "pqc_run" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let demo_info =
  { Run_log.strategy = "strict-partial"; precompute_s = 1.5;
    compile_latency_s = 0.004; pulse_duration_ns = 120.0;
    gate_duration_ns = 240.0; cache_hits = 3; degradations = 0 }

(* --- Jsonx --- *)

let test_jsonx_basics () =
  let doc =
    {|{"s": "aé\"b", "n": -1.5e2, "b": true, "nul": null,
       "arr": [1, 2, 3], "obj": {"k": 0}}|}
  in
  match Jsonx.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
    Alcotest.(check (option string)) "string with escapes"
      (Some "a\xc3\xa9\"b")
      (Option.bind (Jsonx.member "s" j) Jsonx.to_string);
    Alcotest.(check (option (float 0.0))) "number" (Some (-150.0))
      (Option.bind (Jsonx.member "n" j) Jsonx.to_float);
    Alcotest.(check (option bool)) "bool" (Some true)
      (Option.bind (Jsonx.member "b" j) Jsonx.to_bool);
    Alcotest.(check bool) "null reads as nan" true
      (match Option.bind (Jsonx.member "nul" j) Jsonx.to_float with
      | Some v -> Float.is_nan v
      | None -> false);
    Alcotest.(check (option int)) "array length" (Some 3)
      (Option.map List.length
         (Option.bind (Jsonx.member "arr" j) Jsonx.to_list));
    Alcotest.(check bool) "trailing garbage rejected" true
      (match Jsonx.parse "{} extra" with Error _ -> true | Ok _ -> false);
    Alcotest.(check bool) "unterminated rejected" true
      (match Jsonx.parse "[1, 2" with Error _ -> true | Ok _ -> false)

(* --- Run_log --- *)

(* A 200-iteration recorded VQE run: one valid JSONL record per
   objective evaluation, compile context on every line, and — the
   bounded-memory contract — zero growth of the Obs event list no
   matter how many iterations stream through. *)
let test_vqe_run_jsonl () =
  with_temp_file @@ fun path ->
  let m = Option.get (Pqc_vqe.Molecule.find "h2") in
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Pqc_vqe.Uccsd.ansatz m) in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let events_before = List.length (Obs.events ()) in
      let r =
        Run_log.with_log ~info:demo_info ~algo:"vqe" ~label:"H2"
          ~path:(Some path) (fun recorder ->
            Pqc_vqe.Vqe.run ~max_evals:200 ?recorder
              ~hamiltonian:Pqc_vqe.Chemistry.h2 ~ansatz ())
      in
      Alcotest.(check int) "recording pushes no events" events_before
        (List.length (Obs.events ()));
      let iter_stats = Option.get (Obs.Metrics.stats "run.iteration_s") in
      Alcotest.(check int) "one histogram observation per iteration"
        r.Pqc_vqe.Vqe.evaluations iter_stats.Obs.Metrics.count;
      let lines = read_lines path in
      Alcotest.(check int) "one line per evaluation" r.Pqc_vqe.Vqe.evaluations
        (List.length lines);
      List.iteri
        (fun i line ->
          match Jsonx.parse line with
          | Error e -> Alcotest.failf "line %d is not JSON: %s" (i + 1) e
          | Ok j ->
            Alcotest.(check (option int)) "iteration index" (Some (i + 1))
              (Option.bind (Jsonx.member "iteration" j) Jsonx.to_int);
            Alcotest.(check (option string)) "algo" (Some "vqe")
              (Option.bind (Jsonx.member "algo" j) Jsonx.to_string);
            Alcotest.(check (option string)) "strategy context"
              (Some "strict-partial")
              (Option.bind (Jsonx.member "strategy" j) Jsonx.to_string);
            Alcotest.(check (option (float 1e-9))) "pulse speedup" (Some 2.0)
              (Option.bind (Jsonx.member "pulse_speedup" j) Jsonx.to_float);
            Alcotest.(check bool) "energy is finite" true
              (match Option.bind (Jsonx.member "energy" j) Jsonx.to_float with
              | Some e -> Float.is_finite e
              | None -> false))
        lines)

let test_recorder_never_changes_results () =
  with_temp_file @@ fun path ->
  let m = Option.get (Pqc_vqe.Molecule.find "h2") in
  let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let ansatz = Circuit.concat prep (Pqc_vqe.Uccsd.ansatz m) in
  let run recorder =
    Pqc_vqe.Vqe.run ~max_evals:150 ?recorder
      ~hamiltonian:Pqc_vqe.Chemistry.h2 ~ansatz ()
  in
  let plain = run None in
  let recorded =
    Run_log.with_log ~algo:"vqe" ~label:"H2" ~path:(Some path) run
  in
  Alcotest.(check (float 0.0)) "identical energy" plain.Pqc_vqe.Vqe.energy
    recorded.Pqc_vqe.Vqe.energy;
  Alcotest.(check int) "identical evaluations" plain.Pqc_vqe.Vqe.evaluations
    recorded.Pqc_vqe.Vqe.evaluations;
  Alcotest.(check bool) "identical theta" true
    (plain.Pqc_vqe.Vqe.theta = recorded.Pqc_vqe.Vqe.theta)

let test_qaoa_run_jsonl () =
  with_temp_file @@ fun path ->
  let rng = Pqc_util.Rng.create 1 in
  let g = Pqc_qaoa.Graph.random_regular rng ~degree:3 6 in
  let o =
    Run_log.with_log ~algo:"qaoa" ~label:"3reg6p1" ~path:(Some path)
      (fun recorder -> Pqc_qaoa.Qaoa.optimize ~max_evals:120 ?recorder g ~p:1)
  in
  let lines = read_lines path in
  Alcotest.(check int) "one line per evaluation"
    o.Pqc_qaoa.Qaoa.evaluations (List.length lines);
  let last = List.nth lines (List.length lines - 1) in
  match Jsonx.parse last with
  | Error e -> Alcotest.failf "last line is not JSON: %s" e
  | Ok j ->
    Alcotest.(check (option string)) "algo" (Some "qaoa")
      (Option.bind (Jsonx.member "algo" j) Jsonx.to_string);
    Alcotest.(check bool) "logged energy is the positive cut" true
      (match Option.bind (Jsonx.member "energy" j) Jsonx.to_float with
      | Some e -> e >= 0.0
      | None -> false)

let test_streaming_flush () =
  with_temp_file @@ fun path ->
  let t = Run_log.create ~algo:"vqe" ~label:"x" ~path () in
  Fun.protect
    ~finally:(fun () -> Run_log.close t)
    (fun () ->
      for i = 1 to 3 do
        Run_log.record t ~iteration:i ~energy:(float_of_int i)
      done;
      (* flush_every defaults to 1: all three lines must already be on
         disk while the recorder is still open. *)
      Alcotest.(check int) "records on disk before close" 3
        (List.length (read_lines path));
      Alcotest.(check int) "written" 3 (Run_log.written t));
  Run_log.close t;
  (* idempotent *)
  Alcotest.(check int) "unchanged after close" 3
    (List.length (read_lines path))

let test_path_from_env () =
  with_env "PQC_RUN_LOG" "" (fun () ->
      Alcotest.(check (option string)) "empty is unset" None
        (Run_log.path_from_env ()));
  with_env "PQC_RUN_LOG" "  /tmp/run.jsonl  " (fun () ->
      Alcotest.(check (option string)) "trimmed" (Some "/tmp/run.jsonl")
        (Run_log.path_from_env ()))

let test_run_log_provenance_roundtrip () =
  with_temp_file @@ fun path ->
  let t =
    Run_log.create ~run_id:"r007-cafe#2" ~info:demo_info ~algo:"vqe"
      ~label:"lih" ~path ()
  in
  Fun.protect ~finally:(fun () -> Run_log.close t) (fun () ->
      for i = 1 to 3 do
        Run_log.record t ~iteration:i ~energy:(-.float_of_int i)
      done);
  Run_log.close t;
  let records = Run_log.read_file path in
  Alcotest.(check int) "all records read back" 3 (List.length records);
  List.iteri
    (fun i r ->
      Alcotest.(check (option int)) "seq is the 1-based write count"
        (Some (i + 1)) r.Run_log.r_seq;
      Alcotest.(check (option string)) "run_id round-trips"
        (Some "r007-cafe#2") r.Run_log.r_run_id;
      Alcotest.(check int) "iteration round-trips" (i + 1)
        r.Run_log.r_iteration;
      Alcotest.(check (option string)) "strategy context round-trips"
        (Some "strict-partial") r.Run_log.r_strategy)
    records

let test_run_log_run_id_defaults_to_ambient () =
  with_temp_file @@ fun path ->
  Pqc_obs.Obs.Ctx.with_ctx (Some "r001-ambient") (fun () ->
      Run_log.with_log ~algo:"qaoa" ~label:"g" ~path:(Some path)
        (fun recorder ->
          Run_log.record (Option.get recorder) ~iteration:1 ~energy:0.5));
  match Run_log.read_file path with
  | [ r ] ->
    Alcotest.(check (option string)) "ambient context captured at create"
      (Some "r001-ambient") r.Run_log.r_run_id
  | rs -> Alcotest.failf "expected 1 record, read %d" (List.length rs)

let test_run_log_reader_tolerates_old_records () =
  with_temp_file @@ fun path ->
  (* A pre-provenance line (no seq/run_id — the format before schema
     growth), a torn tail from a crashed writer, and a non-record JSON
     object: the reader keeps the first and skips the rest. *)
  let oc = open_out path in
  output_string oc
    "{\"algo\": \"vqe\", \"label\": \"H2\", \"iteration\": 7, \"energy\": \
     -1.85, \"elapsed_s\": 0.25}\n";
  output_string oc "{\"algo\": \"vqe\", \"label\": \"H2\", \"iter\n";
  output_string oc "{\"note\": \"not a run record\"}\n";
  close_out oc;
  (match Run_log.read_file path with
  | [ r ] ->
    Alcotest.(check string) "algo" "vqe" r.Run_log.r_algo;
    Alcotest.(check int) "iteration" 7 r.Run_log.r_iteration;
    Alcotest.(check (float 1e-9)) "energy" (-1.85) r.Run_log.r_energy;
    Alcotest.(check (option int)) "old record has no seq" None
      r.Run_log.r_seq;
    Alcotest.(check (option string)) "old record has no run_id" None
      r.Run_log.r_run_id
  | rs -> Alcotest.failf "expected 1 tolerated record, read %d"
            (List.length rs));
  Alcotest.(check bool) "torn line parses to None" true
    (Run_log.parse_record "{\"algo\": \"vqe\", \"label\":" = None)

(* --- Bench_report reader --- *)

let experiment ?(name = "uccsd-h2") ?(pulse = 100.0) ?(parallel_s = 4.0)
    ?(equal_pulse = true) () =
  { Bench_report.name; strategy = "strict-partial"; engine = "numeric";
    run_id = ""; pulse_duration_ns = pulse; sequential_s = 10.0; parallel_s;
    speedup = 10.0 /. parallel_s; cache_hits = 5; blocks_compiled = 7;
    workers = 4; equal_pulse;
    trace = [ { Bench_report.span = "engine.batch"; count = 2; total_s = 3.5 } ];
    metrics =
      [ { Bench_report.metric = "grape.block_s"; count = 7; mean = 0.5;
          p50 = 0.5; p90 = 0.75; p99 = 0.875; max = 1.0 } ] }

let report experiments = { Bench_report.mode = "fast"; workers = 4; experiments }

let test_report_roundtrip () =
  let t = report [ experiment (); experiment ~name:"weird \"name\"\n" () ] in
  match Bench_report.of_json (Bench_report.to_json t) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok t' -> Alcotest.(check bool) "round-trips exactly" true (t = t')

let test_report_reads_older_schemas () =
  let v1 =
    {|{"schema_version": 1, "mode": "fast", "workers": 2, "experiments": [
        {"name": "uccsd-h2", "strategy": "strict-partial",
         "engine": "numeric", "pulse_duration_ns": 100.0,
         "sequential_s": 10.0, "parallel_s": 4.0, "speedup": 2.5,
         "cache_hits": 5, "blocks_compiled": 7, "workers": 2,
         "equal_pulse": true}]}|}
  in
  (match Bench_report.of_json v1 with
  | Error e -> Alcotest.failf "v1 rejected: %s" e
  | Ok t ->
    let e = List.hd t.Bench_report.experiments in
    Alcotest.(check bool) "missing trace reads as []" true
      (e.Bench_report.trace = []);
    Alcotest.(check bool) "missing metrics reads as []" true
      (e.Bench_report.metrics = []));
  Alcotest.(check bool) "future schema rejected" true
    (match Bench_report.of_json {|{"schema_version": 99, "mode": "fast",
                                   "workers": 1, "experiments": []}|} with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "missing core field rejected" true
    (match Bench_report.of_json {|{"schema_version": 1, "mode": "fast",
                                   "workers": 1, "experiments": [{}]}|} with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "unreadable path is Error, not raise" true
    (match Bench_report.read ~path:"/no/such/bench.json" with
    | Error _ -> true
    | Ok _ -> false)

(* --- Bench_diff --- *)

let test_diff_identical_passes () =
  let t = report [ experiment (); experiment ~name:"uccsd-lih" () ] in
  let d = Bench_diff.diff ~old_report:t ~new_report:t () in
  Alcotest.(check (list string)) "no regressions" []
    d.Bench_diff.regressions;
  Alcotest.(check int) "two metrics per experiment" 4
    (List.length d.Bench_diff.rows)

let test_diff_pulse_regression_gates () =
  let old_report = report [ experiment () ] in
  (* +25% pulse duration: past the 20% default threshold. *)
  let regressed = report [ experiment ~pulse:125.0 () ] in
  let d = Bench_diff.diff ~old_report ~new_report:regressed () in
  Alcotest.(check int) "one regression" 1
    (List.length d.Bench_diff.regressions);
  let row =
    List.find
      (fun r -> r.Bench_diff.metric = "pulse_duration_ns")
      d.Bench_diff.rows
  in
  Alcotest.(check bool) "pulse row gates" true row.Bench_diff.regression;
  Alcotest.(check (float 1e-9)) "delta percent" 25.0 row.Bench_diff.delta_pct;
  (* +10% stays under the default threshold... *)
  let mild = report [ experiment ~pulse:110.0 () ] in
  Alcotest.(check (list string)) "under threshold passes" []
    (Bench_diff.diff ~old_report ~new_report:mild ()).Bench_diff.regressions;
  (* ...but a tightened threshold catches it. *)
  Alcotest.(check bool) "tightened threshold catches it" true
    ((Bench_diff.diff ~threshold_pct:5.0 ~old_report ~new_report:mild ())
       .Bench_diff.regressions
    <> []);
  (* Improvements never gate. *)
  let improved = report [ experiment ~pulse:50.0 () ] in
  Alcotest.(check (list string)) "improvement passes" []
    (Bench_diff.diff ~old_report ~new_report:improved ())
      .Bench_diff.regressions

let test_diff_missing_and_broken () =
  let old_report = report [ experiment (); experiment ~name:"uccsd-lih" () ] in
  let missing = report [ experiment () ] in
  let d = Bench_diff.diff ~old_report ~new_report:missing () in
  Alcotest.(check (list string)) "missing experiment is a regression"
    [ "uccsd-lih/strict-partial/numeric" ]
    d.Bench_diff.missing;
  Alcotest.(check bool) "missing gates" true
    (d.Bench_diff.regressions <> []);
  let broken = report [ experiment ~equal_pulse:false () ] in
  let d = Bench_diff.diff ~old_report:(report [ experiment () ])
      ~new_report:broken ()
  in
  Alcotest.(check bool) "broken determinism contract gates" true
    (d.Bench_diff.regressions <> []);
  (* An experiment only the new report has is an addition, not a gate. *)
  let grown = report [ experiment (); experiment ~name:"uccsd-beh2" () ] in
  let d =
    Bench_diff.diff ~old_report:(report [ experiment () ]) ~new_report:grown ()
  in
  Alcotest.(check (list string)) "addition reported"
    [ "uccsd-beh2/strict-partial/numeric" ] d.Bench_diff.added;
  Alcotest.(check (list string)) "addition does not gate" []
    d.Bench_diff.regressions

let test_diff_time_threshold_opt_in () =
  let old_report = report [ experiment () ] in
  let slower = report [ experiment ~parallel_s:6.0 () ] in
  Alcotest.(check (list string)) "wall-clock ignored by default" []
    (Bench_diff.diff ~old_report ~new_report:slower ()).Bench_diff.regressions;
  Alcotest.(check bool) "wall-clock gates when opted in" true
    ((Bench_diff.diff ~time_threshold_pct:20.0 ~old_report ~new_report:slower
        ())
       .Bench_diff.regressions
    <> [])

let test_diff_render_mentions_verdict () =
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i =
      i + n <= h && (String.sub haystack i n = needle || go (i + 1))
    in
    n = 0 || go 0
  in
  let old_report = report [ experiment () ] in
  let pass = Bench_diff.render (Bench_diff.diff ~old_report ~new_report:old_report ()) in
  Alcotest.(check bool) "pass verdict" true (contains pass "PASS");
  let fail =
    Bench_diff.render
      (Bench_diff.diff ~old_report
         ~new_report:(report [ experiment ~pulse:125.0 () ])
         ())
  in
  Alcotest.(check bool) "fail verdict" true (contains fail "FAIL")

let () =
  Alcotest.run "run-metrics"
    [ ( "jsonx",
        [ Alcotest.test_case "parser basics" `Quick test_jsonx_basics ] );
      ( "run-log",
        [ Alcotest.test_case "vqe 200-iteration jsonl" `Quick
            test_vqe_run_jsonl;
          Alcotest.test_case "recorder never changes results" `Quick
            test_recorder_never_changes_results;
          Alcotest.test_case "qaoa jsonl" `Quick test_qaoa_run_jsonl;
          Alcotest.test_case "streaming flush" `Quick test_streaming_flush;
          Alcotest.test_case "PQC_RUN_LOG parsing" `Quick
            test_path_from_env;
          Alcotest.test_case "run_id/seq round-trip" `Quick
            test_run_log_provenance_roundtrip;
          Alcotest.test_case "run_id defaults to ambient context" `Quick
            test_run_log_run_id_defaults_to_ambient;
          Alcotest.test_case "reader tolerates pre-provenance records"
            `Quick test_run_log_reader_tolerates_old_records ] );
      ( "bench-report",
        [ Alcotest.test_case "v3 round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "older schemas tolerated" `Quick
            test_report_reads_older_schemas ] );
      ( "bench-diff",
        [ Alcotest.test_case "identical passes" `Quick
            test_diff_identical_passes;
          Alcotest.test_case "pulse regression gates" `Quick
            test_diff_pulse_regression_gates;
          Alcotest.test_case "missing/broken experiments gate" `Quick
            test_diff_missing_and_broken;
          Alcotest.test_case "time threshold is opt-in" `Quick
            test_diff_time_threshold_opt_in;
          Alcotest.test_case "render verdicts" `Quick
            test_diff_render_mentions_verdict ] ) ]
