(* Chaos suite: seeded infrastructure faults (hung/crashing workers,
   torn pipe frames, truncated cache files, a full disk) injected via
   Pqc_core.Fault must be completely masked — batch results bit-identical
   to the fault-free sequential run, no orphan processes or leaked fds,
   and the pulse cache always reloads cleanly. *)

module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Grape = Pqc_grape.Grape
module Pool = Pqc_parallel.Pool
module Pulse_cache = Pqc_core.Pulse_cache
module Engine = Pqc_core.Engine
module Resilience = Pqc_core.Resilience
module Fault = Pqc_core.Fault
module Obs = Pqc_obs.Obs

let quick = { Grape.fast_settings with Grape.dt = 1.0; max_iters = 40;
              target_fidelity = 0.95 }

let with_env key value f =
  let old = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv key (Option.value old ~default:""))
    f

let with_plan spec f =
  (match Fault.parse spec with
   | Ok p -> Fault.set (Some p)
   | Error e -> Alcotest.failf "plan %S rejected: %s" spec e);
  Fun.protect ~finally:Fault.clear f

(* --- Leak detectors --- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

(* After a chaos run every worker — including SIGKILLed ones — must be
   reaped: ECHILD means no children at all, 0 means a live orphan, a pid
   means a zombie. *)
let assert_no_orphans () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.fail "live child process leaked"
  | pid, _ -> Alcotest.failf "unreaped child %d (zombie) leaked" pid

let leak_checked f =
  let fds = count_fds () in
  let r = f () in
  assert_no_orphans ();
  Alcotest.(check int) "no leaked fds" fds (count_fds ());
  r

(* --- Fault plans: parse / canonical spec / pure decisions --- *)

let test_plan_parse_round_trip () =
  let spec = "seed=42,hang=0.5,crash-pre=0.25,truncate=1" in
  match Fault.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
    let canon = Fault.to_string p in
    (match Fault.parse canon with
     | Error e -> Alcotest.failf "canonical spec rejected: %s" e
     | Ok p' ->
       Alcotest.(check string) "to_string stable" canon (Fault.to_string p');
       List.iter
         (fun site ->
           for key = 0 to 63 do
             Alcotest.(check bool)
               (Printf.sprintf "same decision at %s/%d"
                  (Fault.site_to_string site) key)
               (Fault.decide p site ~key)
               (Fault.decide p' site ~key)
           done)
         Fault.all_sites)

let test_plan_parse_rejects () =
  let rejected spec =
    match Fault.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S should have been rejected" spec
  in
  rejected "";
  rejected "seed=42";                (* nothing would ever fire *)
  rejected "hang=0";                 (* every rate zero *)
  rejected "hang=1.5";               (* rate outside [0,1] *)
  rejected "hang=-0.1";
  rejected "hang=nan";
  rejected "explode=0.5";            (* unknown site *)
  rejected "seed=many,hang=0.5";     (* bad seed *)
  rejected "hang";                   (* no '=' *)
  match Fault.parse "seed=7,hang=0.5" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid spec rejected: %s" e

let test_plan_decisions_pure () =
  let p =
    match Fault.parse "seed=3,crash-mid=0.5" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (* Pure hash of (seed, site, key): repeated queries agree, rate-0
     sites never fire, and a 0.5 rate actually fires somewhere (and
     spares somewhere) over a small key range — a vacuity guard for
     every chaos test below. *)
  let fire k = Fault.decide p Fault.Worker_crash_mid ~key:k in
  let first = List.init 64 fire in
  let second = List.init 64 fire in
  Alcotest.(check bool) "decisions are stable" true (first = second);
  Alcotest.(check bool) "rate 0.5 fires somewhere" true
    (List.mem true first);
  Alcotest.(check bool) "rate 0.5 spares somewhere" true
    (List.mem false first);
  Alcotest.(check bool) "rate-0 site never fires" false
    (List.exists (fun k -> Fault.decide p Fault.Worker_hang ~key:k)
       (List.init 64 (fun k -> k)))

let test_malformed_env_plan_injects_nothing () =
  Fault.clear ();
  with_env "PQC_FAULT_PLAN" "utter=garbage" (fun () ->
      (* Force re-read of the env var through the public API. *)
      Fault.set None;
      ignore (Fault.current ());
      Alcotest.(check bool) "malformed plan inactive" false (Fault.active ());
      Alcotest.(check bool) "no site fires" false
        (Fault.fire Fault.Enospc ~key:0))

(* --- Cache: salvage-exactly-the-valid-prefix property --- *)

let sample_entries =
  [ { Pulse_cache.key = "2;h,0;cx,0,1"; duration_ns = 3.75; grape_runs = 5;
      grape_iterations = 120; seconds = 0.5; fidelity = Some 0.991;
      fallback = None; run_id = None };
    { Pulse_cache.key = "1;rx(3ff0000000000000),0"; duration_ns = 1.25;
      grape_runs = 2; grape_iterations = 40; seconds = 0.04;
      fidelity = None; fallback = Some "diverged"; run_id = None };
    { Pulse_cache.key = "weird\tkey\nwith\\bytes"; duration_ns = 0.5;
      grape_runs = 1; grape_iterations = 7; seconds = 0.001;
      fidelity = Some 1.0; fallback = None; run_id = None } ]

let with_temp_cache f =
  let path = Filename.temp_file "pqc_chaos" ".cache" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".lock"; path ^ ".tmp"; path ^ ".journal" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_truncation_at_every_byte () =
  with_temp_cache (fun path ->
      Pulse_cache.save ~path sample_entries;
      let full = read_file path in
      let len = String.length full in
      let header_len = String.length Pulse_cache.header in
      (* Record k's payload occupies [start, stop) with its newline at
         [stop]; a cut inside the span tears the record, a cut at or past
         [stop] keeps it whole (a missing final newline is harmless). *)
      let spans =
        let start = ref (header_len + 1) in
        List.map
          (fun e ->
            let line = Pulse_cache.encode_entry e in
            let s = !start in
            let stop = s + String.length line in
            start := stop + 1;
            (s, stop))
          sample_entries
      in
      for cut = 0 to len do
        write_raw path (String.sub full 0 cut);
        let { Pulse_cache.entries; dropped; salvaged } =
          Pulse_cache.load ~path
        in
        let expect_entries, expect_dropped, expect_salvaged =
          if cut = 0 then (0, 0, 0)
          else if cut < header_len then (0, 1, 0) (* torn header: untrusted *)
          else
            ( List.length (List.filter (fun (_, stop) -> cut >= stop) spans),
              0,
              if List.exists (fun (s, stop) -> s < cut && cut < stop) spans
              then 1
              else 0 )
        in
        let ctx = Printf.sprintf "cut at byte %d" cut in
        Alcotest.(check int) (ctx ^ ": entries") expect_entries
          (List.length entries);
        Alcotest.(check int) (ctx ^ ": dropped") expect_dropped dropped;
        Alcotest.(check int) (ctx ^ ": salvaged") expect_salvaged salvaged;
        (* The survivors are exactly the valid record prefix, in order. *)
        List.iteri
          (fun i (e : Pulse_cache.entry) ->
            Alcotest.(check string) (ctx ^ ": prefix key")
              (List.nth sample_entries i).Pulse_cache.key e.Pulse_cache.key)
          entries
      done)

let test_journal_replay_after_crash () =
  with_temp_cache (fun path ->
      (* Simulate a crash after the journal append but before compaction:
         the snapshot is stale, the journal holds the fresh records. *)
      Pulse_cache.save ~path [ List.nth sample_entries 0 ];
      let jp = Pulse_cache.journal_path path in
      write_raw jp
        (String.concat ""
           (List.map
              (fun e -> Pulse_cache.encode_entry e ^ "\n")
              [ List.nth sample_entries 1; List.nth sample_entries 2 ]));
      let { Pulse_cache.entries; dropped; salvaged } =
        Pulse_cache.load ~path
      in
      Alcotest.(check int) "all three records back" 3 (List.length entries);
      Alcotest.(check int) "no drops" 0 dropped;
      Alcotest.(check int) "no salvage" 0 salvaged;
      (* Replay is idempotent: loading again changes nothing, and a merge
         compacts the journal away without losing a record. *)
      let again = Pulse_cache.load ~path in
      Alcotest.(check int) "idempotent replay" 3
        (List.length again.Pulse_cache.entries);
      Pulse_cache.merge ~path [];
      Alcotest.(check bool) "journal retired" false (Sys.file_exists jp);
      let final = Pulse_cache.load ~path in
      Alcotest.(check int) "compaction kept every record" 3
        (List.length final.Pulse_cache.entries))

let test_cache_truncate_chaos () =
  with_temp_cache (fun path ->
      Sys.remove path;
      with_plan "seed=21,truncate=1" (fun () ->
          Pulse_cache.merge ~path sample_entries);
      (* The torn journal tail costs at most the last in-flight record;
         everything else compacted, and the cache reloads cleanly. *)
      let { Pulse_cache.entries; dropped; salvaged } =
        Pulse_cache.load ~path
      in
      Alcotest.(check int) "nothing dropped" 0 dropped;
      Alcotest.(check int) "clean reload after compaction" 0 salvaged;
      Alcotest.(check bool) "at most the torn record lost" true
        (List.length entries >= List.length sample_entries - 1);
      List.iter
        (fun (e : Pulse_cache.entry) ->
          Alcotest.(check bool) "every survivor was a real record" true
            (List.exists
               (fun (s : Pulse_cache.entry) ->
                 s.Pulse_cache.key = e.Pulse_cache.key)
               sample_entries))
        entries;
      (* A later fault-free merge restores the full set. *)
      Pulse_cache.merge ~path sample_entries;
      let final = Pulse_cache.load ~path in
      Alcotest.(check int) "full set after clean merge"
        (List.length sample_entries)
        (List.length final.Pulse_cache.entries))

let test_cache_enospc_chaos () =
  with_temp_cache (fun path ->
      Sys.remove path;
      (match
         with_plan "seed=22,enospc=1" (fun () ->
             Pulse_cache.merge ~path sample_entries)
       with
      | () -> Alcotest.fail "merge should have hit ENOSPC"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
      Alcotest.(check bool) "nothing half-written" false
        (Sys.file_exists (Pulse_cache.journal_path path));
      (* The lock and fd released on the exception path: a subsequent
         fault-free merge on the same path must succeed immediately. *)
      Pulse_cache.merge ~path sample_entries;
      let { Pulse_cache.entries; dropped; salvaged } =
        Pulse_cache.load ~path
      in
      Alcotest.(check int) "full set after disk recovered"
        (List.length sample_entries)
        (List.length entries);
      Alcotest.(check int) "no drops" 0 dropped;
      Alcotest.(check int) "no salvage" 0 salvaged)

let test_engine_persist_degrades () =
  with_temp_cache (fun path ->
      let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
      let engine = Engine.numeric ~settings:quick ~cache_file:path () in
      ignore (Engine.search engine c);
      with_plan "seed=23,enospc=1" (fun () ->
          match Engine.persist_result engine with
          | Ok () -> Alcotest.fail "persist should have degraded"
          | Error d ->
            Alcotest.(check string) "io-error degradation" "io-error"
              (Resilience.failure_to_string d.Resilience.reason);
            Alcotest.(check string) "persist stage" "persist"
              d.Resilience.stage;
            (* The unit wrapper swallows the same failure silently. *)
            Engine.persist engine);
      (* Memo table untouched; a later persist lands everything. *)
      Engine.persist engine;
      let reloaded = Engine.numeric ~settings:quick ~cache_file:path () in
      Alcotest.(check int) "entry persisted once the disk recovered" 1
        (Engine.cache_size reloaded))

let test_engine_persist_unwritable_path () =
  let engine =
    Engine.numeric ~settings:quick
      ~cache_file:"/nonexistent/pqc-chaos/pulse.cache" ()
  in
  ignore (Engine.search engine (Circuit.of_gates 1 [ (Gate.X, [ 0 ]) ]));
  (match Engine.persist_result engine with
   | Ok () -> Alcotest.fail "unwritable path should degrade"
   | Error d ->
     Alcotest.(check string) "io-error degradation" "io-error"
       (Resilience.failure_to_string d.Resilience.reason));
  (* And the ignore-wrapper never lets Sys_error escape. *)
  Engine.persist engine

(* --- Pool: supervision under injected faults --- *)

let int_codec = (string_of_int, fun s -> int_of_string_opt s)

let with_hook hook f =
  Pool.set_fault_hook hook;
  Fun.protect ~finally:Pool.clear_fault_hook f

let test_hung_batch_completes_within_two_deadlines () =
  leak_checked (fun () ->
      let enc, dec = int_codec in
      let items = [ 0; 1; 2; 3 ] in
      let deadline = 0.75 in
      with_hook (fun _ -> Some Pool.Hang) (fun () ->
          let t0 = Unix.gettimeofday () in
          let out, stats =
            Pool.map ~workers:4 ~min_items:1 ~item_deadline_s:deadline
              ~item_retries:1 ~encode:enc ~decode:dec
              (fun x -> x * x) items
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check (list int)) "results correct despite the hang"
            (List.map (fun x -> x * x) items)
            (List.map fst out);
          Alcotest.(check bool)
            (Printf.sprintf "batch done in %.2fs < 2 deadlines" elapsed)
            true
            (elapsed < 2.0 *. deadline);
          Alcotest.(check int) "every worker detected hung" 4
            stats.Pool.hung;
          Alcotest.(check int) "every item quarantined at retries=1" 4
            stats.Pool.quarantined;
          Alcotest.(check int) "every item recovered in-parent" 4
            stats.Pool.recovered;
          Alcotest.(check int) "deadline kills are not abnormal exits" 0
            stats.Pool.abnormal_exits))

let test_poison_batch_quarantines_and_converges () =
  leak_checked (fun () ->
      let enc, dec = int_codec in
      let items = [ 0; 1; 2; 3 ] in
      with_hook (fun _ -> Some Pool.Crash_pre) (fun () ->
          let out, stats =
            Pool.map ~workers:2 ~min_items:1 ~item_retries:1 ~encode:enc
              ~decode:dec
              (fun x -> x + 100) items
          in
          Alcotest.(check (list int)) "results correct despite every crash"
            (List.map (fun x -> x + 100) items)
            (List.map fst out);
          Alcotest.(check int) "all items quarantined" 4
            stats.Pool.quarantined;
          Alcotest.(check int) "all items recovered in-parent" 4
            stats.Pool.recovered;
          Alcotest.(check int) "crashes counted abnormal" 4
            stats.Pool.abnormal_exits;
          Alcotest.(check int) "one respawn per original worker" 2
            stats.Pool.respawned))

let test_crash_mid_and_partial_write_recovered () =
  leak_checked (fun () ->
      let enc, dec = int_codec in
      let items = List.init 9 (fun i -> i) in
      (* Even items die mid-frame, odd items frame a torn record and
         carry on; either way the parent must discard the damage and
         recompute. *)
      let hook i =
        if i mod 2 = 0 then Some Pool.Crash_mid else Some Pool.Partial_write
      in
      with_hook hook (fun () ->
          let out, stats =
            Pool.map ~workers:3 ~min_items:1 ~item_retries:1 ~encode:enc
              ~decode:dec
              (fun x -> (x * 7) + 1)
              items
          in
          Alcotest.(check (list int)) "all results correct"
            (List.map (fun x -> (x * 7) + 1) items)
            (List.map fst out);
          Alcotest.(check bool) "everything recovered or quarantined" true
            (stats.Pool.recovered = List.length items)))

(* --- Flight recorder: fork semantics --- *)

let temp_flight_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqc-flight-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Unix.mkdir d 0o700;
  d

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_flight_child_ring_reset_post_fork () =
  leak_checked (fun () ->
      let enc, dec = int_codec in
      (* Plant a sentinel in the parent's ring; if a forked worker's ring
         still replays parent history, its dump would misattribute the
         crash, so the child must start empty. *)
      Obs.Flight.record ~kind:"test" "parent-sentinel-entry";
      let sees_parent_history _ =
        if
          List.exists
            (fun e -> e.Obs.Flight.f_detail = "parent-sentinel-entry")
            (Obs.Flight.entries ())
        then 1
        else 0
      in
      let out, _ =
        Pool.map ~workers:2 ~min_items:1 ~encode:enc ~decode:dec
          sees_parent_history [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "child rings empty post-fork"
        [ 0; 0; 0; 0 ] (List.map fst out))

let test_flight_dumps_never_interleave () =
  let dir = temp_flight_dir () in
  let spawn tag =
    match Unix.fork () with
    | 0 ->
      (* Child: fresh ring, a couple of tagged entries, one dump. *)
      Obs.Flight.reset ();
      Obs.Flight.record ~kind:"span" ~run_id:tag (tag ^ " item 0");
      Obs.Flight.record ~kind:"span" ~run_id:tag (tag ^ " item 1");
      ignore (Obs.Flight.dump ~dir ~reason:("test." ^ tag) ());
      Unix._exit 0
    | pid -> pid
  in
  let p1 = spawn "w1" in
  let p2 = spawn "w2" in
  ignore (Unix.waitpid [] p1);
  ignore (Unix.waitpid [] p2);
  Obs.Flight.record ~kind:"test" "parent entry";
  ignore (Obs.Flight.dump ~dir ~reason:"test.parent" ());
  let files = Array.to_list (Sys.readdir dir) in
  Alcotest.(check int) "one file per dumping process" 3 (List.length files);
  Alcotest.(check int) "file names are unique" 3
    (List.length (List.sort_uniq compare files));
  (* Every file is internally consistent: its header pid matches its
     name and its entries come from exactly one process's ring. *)
  List.iter
    (fun name ->
      let body = read_whole (Filename.concat dir name) in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a dump header" name)
        true
        (contains body "# flight-recorder dump pid=");
      let w1 = contains body "w1 item" and w2 = contains body "w2 item" in
      Alcotest.(check bool)
        (Printf.sprintf "%s holds entries from one ring only" name)
        false (w1 && w2))
    files

let test_flight_dump_on_chaos_crash () =
  let dir = temp_flight_dir () in
  with_env "PQC_FLIGHT_DIR" dir (fun () ->
      leak_checked (fun () ->
          let enc, dec = int_codec in
          with_hook (fun _ -> Some Pool.Crash_pre) (fun () ->
              let out, stats =
                Pool.map ~workers:2 ~min_items:1 ~item_retries:1
                  ~item_label:(fun i -> Printf.sprintf "r042-deadbeef#%d" i)
                  ~encode:enc ~decode:dec
                  (fun x -> x + 1)
                  [ 0; 1; 2; 3 ]
              in
              Alcotest.(check (list int)) "results recovered in-parent"
                [ 1; 2; 3; 4 ] (List.map fst out);
              Alcotest.(check bool) "crashes actually happened" true
                (stats.Pool.abnormal_exits > 0))));
  let files = Array.to_list (Sys.readdir dir) in
  Alcotest.(check bool) "crash left at least one dump" true (files <> []);
  let body =
    String.concat "\n"
      (List.map (fun f -> read_whole (Filename.concat dir f)) files)
  in
  Alcotest.(check bool) "dump names the kill/crash event" true
    (contains body "pool.abnormal_exit" || contains body "pool.quarantine");
  Alcotest.(check bool) "dump names the worker's last span" true
    (contains body "span pool.item");
  Alcotest.(check bool) "dump carries the item's run_id" true
    (contains body "r042-deadbeef#")

(* --- Engine batches: bit-equivalence to the fault-free sequential run
   under every seeded plan --- *)

(* Eight distinct single-qubit blocks: enough dispatched items that the
   seeds below (chosen against the same splitmix hash) demonstrably fire
   — the H2 UCCSD ansatz partitions into a single block at this width,
   which would make every worker-fault plan vacuous. *)
let chaos_blocks () =
  List.init 8 (fun i ->
      Circuit.of_gates 1
        [ (Gate.Rx (Param.const (0.2 +. (0.37 *. float_of_int i))), [ 0 ]) ])

let bits = Int64.bits_of_float

let check_same_result msg (a : Engine.block_result) (b : Engine.block_result)
    =
  Alcotest.(check int64) (msg ^ ": duration bits") (bits a.Engine.duration_ns)
    (bits b.Engine.duration_ns);
  Alcotest.(check (option int64)) (msg ^ ": fidelity bits")
    (Option.map bits a.Engine.fidelity)
    (Option.map bits b.Engine.fidelity);
  Alcotest.(check bool) (msg ^ ": fallback") true
    (a.Engine.fallback = b.Engine.fallback);
  Alcotest.(check int) (msg ^ ": grape runs")
    a.Engine.search_cost.Engine.grape_runs
    b.Engine.search_cost.Engine.grape_runs;
  Alcotest.(check int) (msg ^ ": grape iterations")
    a.Engine.search_cost.Engine.grape_iterations
    b.Engine.search_cost.Engine.grape_iterations

(* The fixed seed matrix CI's chaos-smoke job sweeps; every plan mixes
   differently but all must be invisible in the results. *)
let plan_matrix =
  [ "seed=2,hang=0.3";
    "seed=1,crash-pre=0.45";
    "seed=3,crash-mid=0.45";
    "seed=4,partial-pipe=0.6";
    "seed=8,hang=0.2,crash-pre=0.2,crash-mid=0.2,partial-pipe=0.2" ]

let baseline = ref None

let fault_free_baseline blocks =
  match !baseline with
  | Some rs -> rs
  | None ->
    Fault.clear ();
    let rs, _, _ =
      Engine.search_many ~workers:1 (Engine.numeric ~settings:quick ())
        blocks
    in
    baseline := Some rs;
    rs

let test_engine_chaos_equivalence spec () =
  let blocks = chaos_blocks () in
  let seq = fault_free_baseline blocks in
  leak_checked (fun () ->
      with_env "PQC_ITEM_DEADLINE_S" "0.5" (fun () ->
          with_plan spec (fun () ->
              (* Vacuity guard: the plan actually fires for some
                 dispatched item of this batch. *)
              let plan = Option.get (Fault.current ()) in
              let fires =
                List.exists
                  (fun key ->
                    List.exists
                      (fun site -> Fault.decide plan site ~key)
                      [ Fault.Worker_hang; Fault.Worker_crash_pre;
                        Fault.Worker_crash_mid; Fault.Partial_pipe ])
                  (List.init (List.length blocks) (fun i -> i))
              in
              Alcotest.(check bool)
                (Printf.sprintf "plan %S is not vacuous" spec)
                true fires;
              let par, _, _ =
                Engine.search_many ~workers:4
                  (Engine.numeric ~settings:quick ())
                  blocks
              in
              List.iteri
                (fun i (a, b) ->
                  check_same_result (Printf.sprintf "block %d" i) a b)
                (List.combine seq par))))

let test_env_plan_drives_engine_batch () =
  (* The same contract through the environment knob: PQC_FAULT_PLAN is
     parsed lazily at dispatch, so a batch run under it must still match
     the clean sequential baseline. *)
  let blocks = chaos_blocks () in
  let seq = fault_free_baseline blocks in
  leak_checked (fun () ->
      with_env "PQC_FAULT_PLAN" "seed=6,crash-pre=0.5,partial-pipe=0.5"
        (fun () ->
          Fault.set None;
          (* drop any cached plan; re-read from env *)
          let par, _, _ =
            Engine.search_many ~workers:4
              (Engine.numeric ~settings:quick ())
              blocks
          in
          List.iteri
            (fun i (a, b) ->
              check_same_result (Printf.sprintf "block %d" i) a b)
            (List.combine seq par)));
  Fault.clear ()

let test_chaos_run_keeps_cache_consistent () =
  (* End-to-end: a faulted batch that persists through a torn journal
     still round-trips every record it managed to keep, and the cache
     reloads without drops. *)
  let blocks = chaos_blocks () in
  with_temp_cache (fun path ->
      Sys.remove path;
      leak_checked (fun () ->
          with_plan "seed=7,crash-mid=0.4,truncate=0.5" (fun () ->
              let engine =
                Engine.numeric ~settings:quick ~cache_file:path ()
              in
              let _, _, _ = Engine.search_many ~workers:4 engine blocks in
              Engine.persist engine));
      let { Pulse_cache.entries = _; dropped; salvaged = _ } =
        Pulse_cache.load ~path
      in
      Alcotest.(check int) "reload has no corrupt records" 0 dropped;
      (* The reloaded cache serves an engine without complaint. *)
      let engine2 = Engine.numeric ~settings:quick ~cache_file:path () in
      Alcotest.(check int) "no drops at engine load" 0
        (Engine.cache_dropped engine2))

let () =
  (* Every chaos batch below must actually dispatch to workers. *)
  Unix.putenv "PQC_PAR_MIN_ITEMS" "1";
  Alcotest.run "chaos"
    [ ( "fault-plan",
        [ Alcotest.test_case "parse round-trip" `Quick
            test_plan_parse_round_trip;
          Alcotest.test_case "malformed specs rejected" `Quick
            test_plan_parse_rejects;
          Alcotest.test_case "decisions pure and seeded" `Quick
            test_plan_decisions_pure;
          Alcotest.test_case "malformed env plan inert" `Quick
            test_malformed_env_plan_injects_nothing ] );
      ( "cache-crash",
        [ Alcotest.test_case "salvage at every byte offset" `Quick
            test_truncation_at_every_byte;
          Alcotest.test_case "journal replay after crash" `Quick
            test_journal_replay_after_crash;
          Alcotest.test_case "torn journal append" `Quick
            test_cache_truncate_chaos;
          Alcotest.test_case "enospc releases the lock" `Quick
            test_cache_enospc_chaos;
          Alcotest.test_case "persist degrades on enospc" `Quick
            test_engine_persist_degrades;
          Alcotest.test_case "persist degrades on unwritable path" `Quick
            test_engine_persist_unwritable_path ] );
      ( "pool-supervision",
        [ Alcotest.test_case "hung batch within 2 deadlines" `Quick
            test_hung_batch_completes_within_two_deadlines;
          Alcotest.test_case "poison batch quarantines" `Quick
            test_poison_batch_quarantines_and_converges;
          Alcotest.test_case "torn frames recovered" `Quick
            test_crash_mid_and_partial_write_recovered ] );
      ( "flight-recorder",
        [ Alcotest.test_case "child ring reset post-fork" `Quick
            test_flight_child_ring_reset_post_fork;
          Alcotest.test_case "dumps never interleave" `Quick
            test_flight_dumps_never_interleave;
          Alcotest.test_case "chaos crash leaves an attributable dump"
            `Quick test_flight_dump_on_chaos_crash ] );
      ( "engine-equivalence",
        List.map
          (fun spec ->
            Alcotest.test_case spec `Quick
              (test_engine_chaos_equivalence spec))
          plan_matrix
        @ [ Alcotest.test_case "PQC_FAULT_PLAN drives the batch" `Quick
              test_env_plan_drives_engine_batch;
            Alcotest.test_case "faulted run keeps cache consistent" `Quick
              test_chaos_run_keeps_cache_consistent ] ) ]
