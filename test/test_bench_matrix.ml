(* Tests for the manifest-driven bench matrix: manifest parsing and
   validation, cartesian expansion, end-to-end cell execution with the
   workers:1 == workers:4 determinism contract, rollup aggregation and
   missing-cell detection, the offline Obs.Metrics.Agg aggregator, and
   property tests for the Bench_diff gate and the Bench_report reader's
   cross-version tolerance. *)

module Obs = Pqc_obs.Obs
module Bench_matrix = Pqc_core.Bench_matrix
module Bench_rollup = Pqc_core.Bench_rollup
module Bench_report = Pqc_core.Bench_report
module Bench_diff = Pqc_core.Bench_diff
module Compiler = Pqc_core.Compiler

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqc_matrix_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with _ -> ()) (fun () -> f dir)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

(* ---- manifest parsing and validation -------------------------------- *)

let mini_manifest_json =
  {|{ "schema_version": 1, "name": "mini", "engine": "model",
      "seed": 3, "iterations": 4,
      "workloads": ["h2"], "topologies": ["line"],
      "strategies": ["strict", "flexible"],
      "workers": [1, 2], "fault_plans": ["none"] }|}

let test_manifest_parse () =
  let m = ok_or_fail "mini manifest" (Bench_matrix.manifest_of_json mini_manifest_json) in
  checks "name" "mini" m.Bench_matrix.name;
  checks "engine" "model" m.Bench_matrix.engine;
  checki "seed" 3 m.Bench_matrix.seed;
  checki "iterations" 4 m.Bench_matrix.iterations;
  checki "strategies" 2 (List.length m.Bench_matrix.strategies);
  checki "workers axis" 2 (List.length m.Bench_matrix.workers);
  checki "fault plans" 1 (List.length m.Bench_matrix.fault_plans);
  checkb "fault-free plan is None" true
    (List.for_all Option.is_none m.Bench_matrix.fault_plans)

let test_manifest_defaults () =
  (* Only the required axes: everything else takes its documented
     default, including a single fault-free plan. *)
  let m =
    ok_or_fail "defaults"
      (Bench_matrix.manifest_of_json
         {|{ "workloads": ["h2"], "strategies": ["strict"] }|})
  in
  checks "engine default" "model" m.Bench_matrix.engine;
  checkb "topologies default non-empty" true (m.Bench_matrix.topologies <> []);
  checkb "workers default non-empty" true (m.Bench_matrix.workers <> []);
  checki "fault plans default" 1 (List.length m.Bench_matrix.fault_plans);
  checkb "default plan is fault-free" true
    (List.for_all Option.is_none m.Bench_matrix.fault_plans)

let expect_error what json =
  match Bench_matrix.manifest_of_json json with
  | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" what
  | Error e -> checkb (what ^ " message non-empty") true (String.length e > 0)

let test_manifest_rejects () =
  expect_error "unknown workload"
    {|{ "workloads": ["unobtainium"], "strategies": ["strict"] }|};
  expect_error "unknown strategy"
    {|{ "workloads": ["h2"], "strategies": ["yolo"] }|};
  expect_error "unknown topology"
    {|{ "workloads": ["h2"], "strategies": ["strict"], "topologies": ["torus"] }|};
  (* h2 is 2 qubits; the 2-row grid needs an even width >= 4. *)
  expect_error "grid over too-narrow workload"
    {|{ "workloads": ["h2"], "strategies": ["strict"], "topologies": ["grid"] }|};
  expect_error "empty axis"
    {|{ "workloads": [], "strategies": ["strict"] }|};
  expect_error "bad engine"
    {|{ "workloads": ["h2"], "strategies": ["strict"], "engine": "warp" }|};
  expect_error "malformed fault plan"
    {|{ "workloads": ["h2"], "strategies": ["strict"], "fault_plans": ["bogus=plan="] }|};
  expect_error "hang plan without item_deadline_s"
    {|{ "workloads": ["h2"], "strategies": ["strict"],
        "fault_plans": ["seed=1,hang=0.5"] }|};
  expect_error "unsupported schema_version"
    {|{ "schema_version": 99, "workloads": ["h2"], "strategies": ["strict"] }|};
  expect_error "not json at all" "][";
  (* A hang plan WITH a deadline is accepted. *)
  ignore
    (ok_or_fail "hang plan with deadline"
       (Bench_matrix.manifest_of_json
          {|{ "workloads": ["h2"], "strategies": ["strict"],
              "item_deadline_s": 5.0,
              "fault_plans": ["seed=1,hang=0.5"] }|}))

(* ---- expansion ------------------------------------------------------- *)

let test_expand_product () =
  let m = ok_or_fail "mini" (Bench_matrix.manifest_of_json mini_manifest_json) in
  let cells = Bench_matrix.expand m in
  checki "cell count = axis product" 4 (List.length cells);
  let ids = List.map (fun c -> c.Bench_matrix.id) cells in
  let unique = List.sort_uniq String.compare ids in
  checki "cell ids unique" (List.length ids) (List.length unique);
  List.iteri
    (fun i c -> checki "indices follow expansion order" i c.Bench_matrix.index)
    cells;
  (* Expansion is deterministic: same manifest, same ids. *)
  let ids' = List.map (fun c -> c.Bench_matrix.id) (Bench_matrix.expand m) in
  check (Alcotest.list Alcotest.string) "expansion stable" ids ids'

let test_committed_smoke_manifest () =
  (* The committed CI manifest must expand to at least 12 cells (the
     acceptance floor) and keep using the model engine so the smoke job
     stays fast. *)
  let m =
    ok_or_fail "committed smoke manifest"
      (Bench_matrix.load_manifest ~path:"../bench/workloads/smoke.json")
  in
  let cells = Bench_matrix.expand m in
  checkb "smoke matrix has >= 12 cells" true (List.length cells >= 12);
  checks "smoke engine" "model" m.Bench_matrix.engine;
  let ids = List.map (fun c -> c.Bench_matrix.id) cells in
  checki "smoke ids unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

(* ---- matrix execution and determinism -------------------------------- *)

let run_matrix ~workers dir =
  let m = ok_or_fail "mini" (Bench_matrix.manifest_of_json mini_manifest_json) in
  let outcomes = Bench_matrix.run ~workers m ~out_dir:dir in
  List.iter
    (fun o ->
      match o.Bench_matrix.status with
      | Ok () -> ()
      | Error e -> Alcotest.failf "cell %s failed: %s" o.Bench_matrix.cell.Bench_matrix.id e)
    outcomes;
  outcomes

let test_matrix_artifacts () =
  with_temp_dir (fun dir ->
      let outcomes = run_matrix ~workers:1 dir in
      checki "all cells ran" 4 (List.length outcomes);
      checkb "index written" true
        (Sys.file_exists (Bench_matrix.index_path ~out_dir:dir));
      List.iter
        (fun o ->
          let cdir = Bench_matrix.cell_dir ~out_dir:dir o.Bench_matrix.cell in
          let report_path = Filename.concat cdir "report.json" in
          checkb "report.json exists" true (Sys.file_exists report_path);
          let r = ok_or_fail "cell report" (Bench_report.read ~path:report_path) in
          checki "one experiment per cell" 1 (List.length r.Bench_report.experiments);
          let e = List.hd r.Bench_report.experiments in
          checkb "cell report is schema-v3 (metrics present)" true
            (e.Bench_report.metrics <> []);
          checkb "equal_pulse holds" true e.Bench_report.equal_pulse;
          checkb "metrics.reg exists" true
            (Sys.file_exists (Filename.concat cdir "metrics.reg"));
          (* iterations > 0 => a run log; the optimizer may converge
             before max_evals, so only assert the stream is non-empty. *)
          let log = Filename.concat cdir "run.jsonl" in
          checkb "run.jsonl exists" true (Sys.file_exists log);
          checkb "run.jsonl non-empty" true (read_lines log <> []))
        outcomes)

let test_matrix_determinism_across_driver_workers () =
  (* The acceptance contract: the same manifest at driver workers:1 and
     workers:4 yields byte-identical rollups modulo wall-clock fields. *)
  with_temp_dir (fun dir1 ->
      with_temp_dir (fun dir4 ->
          ignore (run_matrix ~workers:1 dir1);
          ignore (run_matrix ~workers:4 dir4);
          let roll dir =
            ok_or_fail "rollup" (Bench_rollup.of_results_dir ~dir)
          in
          let j1 = Bench_rollup.to_json (Bench_rollup.normalize (roll dir1)) in
          let j4 = Bench_rollup.to_json (Bench_rollup.normalize (roll dir4)) in
          checks "normalized rollups byte-identical" j1 j4))

let test_smoke_manifest_determinism_extended () =
  (* Extended determinism over the committed smoke manifest (the one the
     matrix CI job sweeps): a third worker count, on the full 24-cell
     matrix rather than the 4-cell mini manifest above.  Any
     summation-order drift in the numeric kernels, or order-dependence in
     the driver, shows up as a rollup byte diff here. *)
  let m =
    ok_or_fail "smoke manifest"
      (Bench_matrix.load_manifest ~path:"../bench/workloads/smoke.json")
  in
  let run ~workers dir =
    List.iter
      (fun o ->
        match o.Bench_matrix.status with
        | Ok () -> ()
        | Error e ->
          Alcotest.failf "cell %s failed: %s" o.Bench_matrix.cell.Bench_matrix.id
            e)
      (Bench_matrix.run ~workers m ~out_dir:dir)
  in
  with_temp_dir (fun dir1 ->
      with_temp_dir (fun dir3 ->
          run ~workers:1 dir1;
          run ~workers:3 dir3;
          let roll dir =
            ok_or_fail "rollup" (Bench_rollup.of_results_dir ~dir)
          in
          let j1 = Bench_rollup.to_json (Bench_rollup.normalize (roll dir1)) in
          let j3 = Bench_rollup.to_json (Bench_rollup.normalize (roll dir3)) in
          checks "smoke rollups byte-identical at workers 1 vs 3" j1 j3))

let test_rollup_aggregation () =
  with_temp_dir (fun dir ->
      ignore (run_matrix ~workers:2 dir);
      let r = ok_or_fail "rollup" (Bench_rollup.of_results_dir ~dir) in
      checki "cells counted" 4 r.Bench_rollup.cells;
      check (Alcotest.list Alcotest.string) "no missing cells" []
        r.Bench_rollup.missing_cells;
      checki "all experiments collected" 4
        (List.length r.Bench_rollup.report.Bench_report.experiments);
      checkb "fleet metrics non-empty" true (r.Bench_rollup.fleet <> []);
      (* Fleet re-aggregation is exact on counts: for every fleet
         histogram, its count equals the sum of that histogram's counts
         across the per-cell reports. *)
      let per_cell = Hashtbl.create 16 in
      List.iter
        (fun (e : Bench_report.experiment) ->
          List.iter
            (fun (m : Bench_report.metric_rollup) ->
              let prev =
                Option.value ~default:0
                  (Hashtbl.find_opt per_cell m.Bench_report.metric)
              in
              Hashtbl.replace per_cell m.Bench_report.metric
                (prev + m.Bench_report.count))
            e.Bench_report.metrics)
        r.Bench_rollup.report.Bench_report.experiments;
      List.iter
        (fun (m : Bench_report.metric_rollup) ->
          match Hashtbl.find_opt per_cell m.Bench_report.metric with
          | None ->
            Alcotest.failf "fleet metric %s absent from every cell"
              m.Bench_report.metric
          | Some total ->
            checki
              (Printf.sprintf "fleet count of %s = sum of cell counts"
                 m.Bench_report.metric)
              total m.Bench_report.count)
        r.Bench_rollup.fleet;
      (* Round-trip: write, read back, normalized forms agree. *)
      let path = Filename.concat dir "rollup.json" in
      Bench_rollup.write ~path r;
      let r' = ok_or_fail "rollup read-back" (Bench_rollup.read ~path) in
      checks "rollup JSON round-trips"
        (Bench_rollup.to_json (Bench_rollup.normalize r))
        (Bench_rollup.to_json (Bench_rollup.normalize r')))

let test_rollup_missing_cell () =
  with_temp_dir (fun dir ->
      let outcomes = run_matrix ~workers:1 dir in
      let victim = (List.hd outcomes).Bench_matrix.cell in
      Sys.remove
        (Filename.concat (Bench_matrix.cell_dir ~out_dir:dir victim) "report.json");
      let r = ok_or_fail "rollup" (Bench_rollup.of_results_dir ~dir) in
      checki "cells still counted from index" 4 r.Bench_rollup.cells;
      check (Alcotest.list Alcotest.string) "missing cell detected"
        [ victim.Bench_matrix.id ] r.Bench_rollup.missing_cells;
      checki "remaining experiments collected" 3
        (List.length r.Bench_rollup.report.Bench_report.experiments))

let test_rollup_usage_errors () =
  (match Bench_rollup.of_results_dir ~dir:"/nonexistent/matrix-out" with
  | Ok _ -> Alcotest.fail "expected Error for missing dir"
  | Error _ -> ());
  with_temp_dir (fun dir ->
      match Bench_rollup.of_results_dir ~dir with
      | Ok _ -> Alcotest.fail "expected Error for dir without cells.json"
      | Error _ -> ())

(* ---- Obs.Metrics.Agg -------------------------------------------------- *)

(* Build an encode_all line from a scoped live registry. *)
let encoded_registry observations =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      List.iter (fun (name, v) -> Obs.Metrics.observe name v) observations;
      Obs.Metrics.encode_all ())

let test_agg_two_halves () =
  let first = List.init 40 (fun i -> ("lat", float_of_int (i + 1))) in
  let second = List.init 60 (fun i -> ("lat", float_of_int (i + 41))) in
  let whole = encoded_registry (first @ second) in
  let a = encoded_registry first in
  let b = encoded_registry second in
  let split = Obs.Metrics.Agg.create () in
  Obs.Metrics.Agg.absorb split a;
  Obs.Metrics.Agg.absorb split b;
  let merged = Obs.Metrics.Agg.create () in
  Obs.Metrics.Agg.absorb merged whole;
  check (Alcotest.list Alcotest.string) "names agree"
    (Obs.Metrics.Agg.names merged)
    (Obs.Metrics.Agg.names split);
  let s_split = Option.get (Obs.Metrics.Agg.stats split "lat") in
  let s_merged = Option.get (Obs.Metrics.Agg.stats merged "lat") in
  checki "count adds" s_merged.Obs.Metrics.count s_split.Obs.Metrics.count;
  checki "count is 100" 100 s_split.Obs.Metrics.count;
  check (Alcotest.float 1e-9) "sum adds" s_merged.Obs.Metrics.sum
    s_split.Obs.Metrics.sum;
  check (Alcotest.float 1e-9) "min combines" s_merged.Obs.Metrics.min
    s_split.Obs.Metrics.min;
  check (Alcotest.float 1e-9) "max combines" s_merged.Obs.Metrics.max
    s_split.Obs.Metrics.max;
  let p50, p90, p99 = Obs.Metrics.Agg.percentiles split "lat" in
  let q50, q90, q99 = Obs.Metrics.Agg.percentiles merged "lat" in
  check (Alcotest.float 1e-9) "p50 agrees" q50 p50;
  check (Alcotest.float 1e-9) "p90 agrees" q90 p90;
  check (Alcotest.float 1e-9) "p99 agrees" q99 p99;
  (* encode/absorb round-trip preserves the merged registry. *)
  let again = Obs.Metrics.Agg.create () in
  Obs.Metrics.Agg.absorb again (Obs.Metrics.Agg.encode split);
  let s_again = Option.get (Obs.Metrics.Agg.stats again "lat") in
  checki "re-encoded count" s_split.Obs.Metrics.count s_again.Obs.Metrics.count

let test_agg_independent_of_enable () =
  (* The whole point of Agg: it works with tracing off and never touches
     the process registry. *)
  let line = encoded_registry [ ("x", 1.0); ("x", 2.0) ] in
  checkb "tracing off" false (Obs.enabled ());
  let agg = Obs.Metrics.Agg.create () in
  Obs.Metrics.Agg.absorb agg line;
  checki "absorbed with tracing off" 2
    (Option.get (Obs.Metrics.Agg.stats agg "x")).Obs.Metrics.count;
  check (Alcotest.list Alcotest.string) "live registry untouched" []
    (Obs.Metrics.names ());
  (* Garbage lines are dropped, not raised. *)
  Obs.Metrics.Agg.absorb agg "not a registry";
  checki "garbage dropped" 2
    (Option.get (Obs.Metrics.Agg.stats agg "x")).Obs.Metrics.count

(* ---- Bench_diff properties (satellite: threshold boundary) ----------- *)

let experiment ?(name = "h2+line") ?(strategy = "strict-partial")
    ?(engine = "model") ?(pulse = 100.0) ?(equal_pulse = true) () =
  { Bench_report.name; strategy; engine; run_id = ""; pulse_duration_ns = pulse;
    sequential_s = 1.0; parallel_s = 0.5; speedup = 2.0; cache_hits = 3;
    blocks_compiled = 4; workers = 2; equal_pulse; trace = []; metrics = [] }

let report experiments = { Bench_report.mode = "test"; workers = 2; experiments }

let prop_threshold_boundary =
  QCheck.Test.make ~name:"growth exactly at threshold never gates" ~count:200
    QCheck.(pair (int_range 1 100_000) (int_range 1 50_000))
    (fun (old_i, grow_i) ->
      let old_pulse = float_of_int old_i in
      let new_pulse = old_pulse +. float_of_int grow_i in
      (* The exact delta Bench_diff will compute, FP rounding included. *)
      let delta_pct = (new_pulse -. old_pulse) /. old_pulse *. 100.0 in
      let diff threshold =
        Bench_diff.diff ~threshold_pct:threshold
          ~old_report:(report [ experiment ~pulse:old_pulse () ])
          ~new_report:(report [ experiment ~pulse:new_pulse () ])
          ()
      in
      let at = diff delta_pct in
      let below = diff (delta_pct *. (1.0 -. 1e-12)) in
      (* Strictly-greater gate: exactly at the threshold passes ... *)
      at.Bench_diff.regressions = []
      (* ... and any threshold epsilon below the delta gates. *)
      && below.Bench_diff.regressions <> [])

let prop_missing_added_symmetry =
  (* Keys missing when diffing A against B are exactly the keys added
     when diffing B against A. *)
  let arb_names =
    QCheck.(list_of_size Gen.(int_range 0 6) (string_gen_of_size (Gen.int_range 1 8) Gen.printable))
  in
  QCheck.Test.make ~name:"missing(A,B) = added(B,A)" ~count:200
    QCheck.(pair arb_names arb_names)
    (fun (names_a, names_b) ->
      let mk names =
        report
          (List.map (fun n -> experiment ~name:n ())
             (List.sort_uniq String.compare names))
      in
      let a = mk names_a and b = mk names_b in
      let ab = Bench_diff.diff ~old_report:a ~new_report:b () in
      let ba = Bench_diff.diff ~old_report:b ~new_report:a () in
      let sorted l = List.sort String.compare l in
      sorted ab.Bench_diff.missing = sorted ba.Bench_diff.added
      && sorted ab.Bench_diff.added = sorted ba.Bench_diff.missing)

let prop_self_diff_clean =
  QCheck.Test.make ~name:"diff of identical reports is clean" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 5) (pair (string_gen_of_size (Gen.int_range 1 8) Gen.printable) (int_range 1 10_000)))
    (fun entries ->
      let r =
        report
          (List.map
             (fun (n, p) -> experiment ~name:n ~pulse:(float_of_int p) ())
             (List.sort_uniq compare entries))
      in
      let d = Bench_diff.diff ~old_report:r ~new_report:r () in
      d.Bench_diff.regressions = []
      && d.Bench_diff.missing = []
      && d.Bench_diff.added = [])

(* ---- Bench_report.of_json cross-version tolerance -------------------- *)

let js = Bench_report.json_string

(* Assemble an experiment object from (key, rendered-value) pairs in an
   arbitrary order, so key order can be permuted by the fuzzer. *)
let obj_of_fields fields =
  "{ " ^ String.concat ", " (List.map (fun (k, v) -> js k ^ ": " ^ v) fields) ^ " }"

let doc_of ~version ~mode ~experiments =
  obj_of_fields
    [ ("schema_version", string_of_int version); ("mode", js mode);
      ("workers", "4");
      ("experiments", "[" ^ String.concat ", " experiments ^ "]") ]

let required_fields ~name ~pulse =
  [ ("name", js name); ("strategy", js "strict-partial");
    ("engine", js "model");
    ("pulse_duration_ns", Bench_report.json_float pulse);
    ("sequential_s", "1.5"); ("parallel_s", "0.5"); ("speedup", "3");
    ("cache_hits", "2"); ("blocks_compiled", "5"); ("workers", "4");
    ("equal_pulse", "true") ]

(* Deterministic permutation of a list driven by a generated seed. *)
let permute seed l =
  let arr = Array.of_list l in
  let st = Random.State.make [| seed |] in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let hostile_names =
  [ "quote\"back\\slash"; "tab\there\nnewline"; "control\x01char";
    "non-ascii: h\xc3\xa9h\xc3\xa9 \xe2\x88\x9a"; "trailing space "; " " ]

let prop_reader_tolerant =
  (* v1 documents have neither trace nor metrics, v2 lack metrics, v3
     may carry both; keys arrive in any order; names may be hostile;
     numbers may be huge.  The reader must accept all of it. *)
  QCheck.Test.make ~name:"of_json tolerates versions, key order, hostile strings"
    ~count:300
    QCheck.(
      quad (int_range 1 3) (int_bound 1_000_000)
        (int_bound (List.length hostile_names - 1))
        (bool))
    (fun (version, seed, name_i, huge) ->
      let name = List.nth hostile_names name_i in
      (* 1e300 renders exactly under the writer's %.9g, unlike max_float. *)
      let pulse = if huge then 1e300 else 123.25 in
      let optional =
        (if version >= 2 then
           [ ("trace", {|[{ "span": "s", "count": 1, "total_s": 0.25 }]|}) ]
         else [])
        @
        if version >= 3 then
          [ ( "metrics",
              {|[{ "metric": "m", "count": 2, "mean": 1, "p50": 1, "p90": 1, "p99": 1, "max": 1 }]|}
            ) ]
        else []
      in
      let fields = permute seed (required_fields ~name ~pulse @ optional) in
      let doc =
        doc_of ~version ~mode:name ~experiments:[ obj_of_fields fields ]
      in
      match Bench_report.of_json doc with
      | Error e -> QCheck.Test.fail_reportf "rejected valid v%d doc: %s" version e
      | Ok r ->
        let e = List.hd r.Bench_report.experiments in
        r.Bench_report.mode = name
        && e.Bench_report.name = name
        && e.Bench_report.pulse_duration_ns = pulse
        && List.length e.Bench_report.trace = (if version >= 2 then 1 else 0)
        && List.length e.Bench_report.metrics = (if version >= 3 then 1 else 0))

let prop_reader_requires_core_fields =
  (* Dropping any required v1 field is a hard error whose message names
     the field — the gate must not compare half-parsed reports. *)
  let required = List.map fst (required_fields ~name:"x" ~pulse:1.0) in
  QCheck.Test.make ~name:"missing required field raises a named error" ~count:100
    QCheck.(pair (int_bound (List.length required - 1)) (int_bound 1_000_000))
    (fun (drop_i, seed) ->
      let dropped = List.nth required drop_i in
      let fields =
        permute seed
          (List.filter
             (fun (k, _) -> k <> dropped)
             (required_fields ~name:"x" ~pulse:1.0))
      in
      let doc = doc_of ~version:3 ~mode:"fast" ~experiments:[ obj_of_fields fields ] in
      match Bench_report.of_json doc with
      | Ok _ -> QCheck.Test.fail_reportf "accepted doc without %s" dropped
      | Error e ->
        (* The error must point at the missing field by name. *)
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        contains e dropped)

let test_writer_reader_roundtrip_hostile () =
  (* Hostile strings survive a full to_json/of_json round trip. *)
  List.iter
    (fun name ->
      let r = report [ experiment ~name () ] in
      match Bench_report.of_json (Bench_report.to_json r) with
      | Error e -> Alcotest.failf "round trip of %S failed: %s" name e
      | Ok r' ->
        checks "name survives" name
          (List.hd r'.Bench_report.experiments).Bench_report.name)
    hostile_names

(* ---- sorted / normalize ----------------------------------------------- *)

let test_sorted_and_normalize () =
  let e1 = experiment ~name:"zzz" () in
  let e2 = experiment ~name:"aaa" () in
  let r = Bench_report.sorted (report [ e1; e2 ]) in
  checks "sorted by key" "aaa"
    (List.hd r.Bench_report.experiments).Bench_report.name;
  let spans =
    [ { Bench_report.span = "slow"; count = 2; total_s = 9.0 };
      { Bench_report.span = "fast"; count = 7; total_s = 1.0 } ]
  in
  let n =
    Bench_report.normalize
      (report [ { (experiment ()) with Bench_report.trace = spans } ])
  in
  let e = List.hd n.Bench_report.experiments in
  check (Alcotest.float 0.0) "wall-clock zeroed" 0.0 e.Bench_report.sequential_s;
  check (Alcotest.float 0.0) "speedup zeroed" 0.0 e.Bench_report.speedup;
  (match e.Bench_report.trace with
  | [ a; b ] ->
    checks "trace re-sorted by span name" "fast" a.Bench_report.span;
    checks "second span" "slow" b.Bench_report.span;
    checki "span counts preserved" 7 a.Bench_report.count;
    check (Alcotest.float 0.0) "span totals zeroed" 0.0 a.Bench_report.total_s
  | _ -> Alcotest.fail "expected two trace rollups");
  checkb "pulse preserved" true
    (e.Bench_report.pulse_duration_ns = (experiment ()).Bench_report.pulse_duration_ns)

let () =
  Random.self_init ();
  Alcotest.run "bench-matrix"
    [ ( "manifest",
        [ Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "defaults" `Quick test_manifest_defaults;
          Alcotest.test_case "rejects invalid" `Quick test_manifest_rejects ] );
      ( "expansion",
        [ Alcotest.test_case "cartesian product" `Quick test_expand_product;
          Alcotest.test_case "committed smoke manifest" `Quick
            test_committed_smoke_manifest ] );
      ( "execution",
        [ Alcotest.test_case "per-cell artifacts" `Quick test_matrix_artifacts;
          Alcotest.test_case "deterministic across driver workers" `Quick
            test_matrix_determinism_across_driver_workers;
          Alcotest.test_case "smoke manifest determinism (extended)" `Slow
            test_smoke_manifest_determinism_extended ] );
      ( "rollup",
        [ Alcotest.test_case "fleet aggregation" `Quick test_rollup_aggregation;
          Alcotest.test_case "missing cell detection" `Quick
            test_rollup_missing_cell;
          Alcotest.test_case "usage errors" `Quick test_rollup_usage_errors ] );
      ( "agg",
        [ Alcotest.test_case "two halves merge exactly" `Quick
            test_agg_two_halves;
          Alcotest.test_case "independent of enable" `Quick
            test_agg_independent_of_enable ] );
      ( "bench-diff",
        [ QCheck_alcotest.to_alcotest prop_threshold_boundary;
          QCheck_alcotest.to_alcotest prop_missing_added_symmetry;
          QCheck_alcotest.to_alcotest prop_self_diff_clean ] );
      ( "report-reader",
        [ QCheck_alcotest.to_alcotest prop_reader_tolerant;
          QCheck_alcotest.to_alcotest prop_reader_requires_core_fields;
          Alcotest.test_case "hostile round trip" `Quick
            test_writer_reader_roundtrip_hostile ] );
      ( "report-shape",
        [ Alcotest.test_case "sorted and normalize" `Quick
          test_sorted_and_normalize ] ) ]
