module Rng = Pqc_util.Rng
module Stats = Pqc_util.Stats
module Nelder_mead = Pqc_util.Nelder_mead
module Table = Pqc_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_uniform_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-3.0) ~hi:(-1.0) in
    Alcotest.(check bool) "in [-3,-1)" true (x >= -3.0 && x < -1.0)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 10 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean samples and s = Stats.stddev samples in
  Alcotest.(check bool) "mean near 0" true (Float.abs m < 0.05);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (s -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_choice_member () =
  let rng = Rng.create 12 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choice rng a) a)
  done

let test_rng_split_independent () =
  let parent = Rng.create 13 in
  let child = Rng.split parent in
  Alcotest.(check bool) "streams differ" true (Rng.int64 parent <> Rng.int64 child)

let test_rng_copy () =
  let a = Rng.create 14 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

(* --- Stats --- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_geometric_mean () =
  check_float "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_stats_stddev () =
  check_float "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  check_float "stddev single" 0.0 (Stats.stddev [| 5.0 |])

let test_stats_extrema () =
  check_float "min" (-2.0) (Stats.minimum [| 3.0; -2.0; 7.0 |]);
  check_float "max" 7.0 (Stats.maximum [| 3.0; -2.0; 7.0 |])

let test_stats_median () =
  check_float "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_argmin () =
  Alcotest.(check int) "argmin" 1 (Stats.argmin [| 3.0; -2.0; 7.0 |])

(* NaN regressions: a diverged GRAPE run produces NaN infidelities, and
   NaN is unordered — a plain [<] fold silently poisons the result (or,
   worse, polymorphic compare sorts NaN *first* and crowns the diverged
   entry).  Order statistics skip NaNs and only raise when there is no
   finite data at all. *)

let nan = Float.nan

let raises_invalid f =
  try ignore (f ()); false with Invalid_argument _ -> true

let test_stats_nan_skipped () =
  check_float "min skips NaN" (-2.0) (Stats.minimum [| nan; 3.0; -2.0; nan |]);
  check_float "max skips NaN" 7.0 (Stats.maximum [| 7.0; nan; 3.0 |]);
  check_float "median skips NaN" 3.0 (Stats.median [| nan; 5.0; 1.0; nan; 3.0 |]);
  check_float "leading NaN" 4.0 (Stats.minimum [| nan; 4.0 |]);
  Alcotest.(check int) "argmin skips NaN" 2 (Stats.argmin [| nan; 3.0; -2.0 |]);
  Alcotest.(check int) "argmin first finite wins ties" 1
    (Stats.argmin [| nan; 5.0; 5.0 |])

let test_stats_all_nan_raises () =
  Alcotest.(check bool) "minimum" true
    (raises_invalid (fun () -> Stats.minimum [| nan; nan |]));
  Alcotest.(check bool) "maximum" true
    (raises_invalid (fun () -> Stats.maximum [| nan |]));
  Alcotest.(check bool) "median" true
    (raises_invalid (fun () -> Stats.median [| nan; nan; nan |]));
  Alcotest.(check bool) "argmin" true
    (raises_invalid (fun () -> Stats.argmin [| nan; nan |]))

let test_stats_linspace () =
  let l = Stats.linspace 0.0 1.0 5 in
  Alcotest.(check int) "count" 5 (Array.length l);
  check_float "first" 0.0 l.(0);
  check_float "last" 1.0 l.(4);
  check_float "step" 0.25 l.(1)

let test_stats_logspace () =
  let l = Stats.logspace 0.0 2.0 3 in
  check_float "first" 1.0 l.(0);
  check_float "mid" 10.0 l.(1);
  check_float "last" 100.0 l.(2)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within extrema" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
    (fun a ->
      let m = Stats.mean a in
      m >= Stats.minimum a -. 1e-9 && m <= Stats.maximum a +. 1e-9)

let prop_median_bounded =
  QCheck.Test.make ~name:"median within extrema" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
    (fun a -> Stats.median a >= Stats.minimum a && Stats.median a <= Stats.maximum a)

(* --- Nelder-Mead --- *)

let test_nm_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. 1.0 in
  let r = Nelder_mead.minimize ~f ~x0:[| 0.0 |] () in
  Alcotest.(check bool) "finds min" true (Float.abs (r.x.(0) -. 3.0) < 1e-3);
  Alcotest.(check bool) "value" true (Float.abs (r.f -. 1.0) < 1e-6)

let test_nm_sphere_4d () =
  let f x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x in
  let r = Nelder_mead.minimize ~f ~x0:[| 1.0; -2.0; 0.5; 3.0 |] () in
  Alcotest.(check bool) "near zero" true (r.f < 1e-4)

let test_nm_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let options = { Nelder_mead.default_options with max_evals = 4000 } in
  let r = Nelder_mead.minimize ~options ~f ~x0:[| -1.0; 1.0 |] () in
  Alcotest.(check bool) "rosenbrock minimum" true (r.f < 1e-4)

let test_nm_budget () =
  let f x = x.(0) *. x.(0) in
  let options = { Nelder_mead.default_options with max_evals = 10 } in
  let r = Nelder_mead.minimize ~options ~f ~x0:[| 100.0 |] () in
  Alcotest.(check bool) "respects budget" true (r.evals <= 13)

let test_nm_history_monotone () =
  let f x = (x.(0) ** 2.0) +. (x.(1) ** 2.0) in
  let r = Nelder_mead.minimize ~f ~x0:[| 5.0; -4.0 |] () in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "best-so-far is monotone" true (decreasing r.history)

let test_nm_empty_rejected () =
  Alcotest.check_raises "empty x0" (Invalid_argument "Nelder_mead.minimize: empty initial point")
    (fun () -> ignore (Nelder_mead.minimize ~f:(fun _ -> 0.0) ~x0:[||] ()))

(* --- SPSA --- *)

module Spsa = Pqc_util.Spsa

let test_spsa_quadratic () =
  let f x = ((x.(0) -. 2.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let options = { Spsa.default_options with max_iters = 2000; a = 0.5 } in
  let r = Spsa.minimize ~options ~f ~x0:[| 0.0; 0.0 |] () in
  Alcotest.(check bool) (Printf.sprintf "f=%.4f near 0" r.f) true (r.f < 1e-2)

let test_spsa_noisy_objective () =
  (* SPSA's selling point: tolerate evaluation noise. *)
  let noise = Rng.create 3 in
  let f x =
    Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x
    +. (0.01 *. Rng.gaussian noise)
  in
  let options = { Spsa.default_options with max_iters = 1500 } in
  let r = Spsa.minimize ~options ~f ~x0:[| 1.5; -1.0; 0.5 |] () in
  Alcotest.(check bool) "gets close despite noise" true (r.f < 0.05)

let test_spsa_eval_budget () =
  let count = ref 0 in
  let f x = incr count; x.(0) *. x.(0) in
  let options = { Spsa.default_options with max_iters = 50 } in
  let r = Spsa.minimize ~options ~f ~x0:[| 3.0 |] () in
  Alcotest.(check int) "1 + 2 per iteration" 101 !count;
  Alcotest.(check int) "reported" 101 r.evals

let test_spsa_deterministic () =
  let f x = x.(0) *. x.(0) in
  let a = Spsa.minimize ~f ~x0:[| 2.0 |] () in
  let b = Spsa.minimize ~f ~x0:[| 2.0 |] () in
  Alcotest.(check (float 1e-12)) "same result" a.f b.f

let test_spsa_history_monotone () =
  let f x = x.(0) *. x.(0) in
  let r = Spsa.minimize ~f ~x0:[| 4.0 |] () in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "best-so-far monotone" true (decreasing r.history)

let test_spsa_empty_rejected () =
  Alcotest.(check bool) "empty x0" true
    (try ignore (Spsa.minimize ~f:(fun _ -> 0.0) ~x0:[||] ()); false
     with Invalid_argument _ -> true)

(* --- Table --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b" ];
  Table.add_sep t;
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true (contains s "name");
  Alcotest.(check bool) "contains row" true (contains s "alpha");
  Alcotest.(check bool) "padded short row" true (contains s "| b    ")

let test_table_cells () =
  Alcotest.(check string) "float cell" "3.1" (Table.cell_f 3.14159);
  Alcotest.(check string) "float decimals" "3.142" (Table.cell_f ~decimals:3 3.14159);
  Alcotest.(check string) "speedup cell" "2.15x" (Table.cell_x 2.1537)

let test_table_too_many_cells () =
  let t = Table.create [ "one" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: more cells than headers")
    (fun () -> Table.add_row t [ "a"; "b" ])

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choice member" `Quick test_rng_choice_member;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy ] );
      ( "stats",
        [ Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "extrema" `Quick test_stats_extrema;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "argmin" `Quick test_stats_argmin;
          Alcotest.test_case "NaN skipped" `Quick test_stats_nan_skipped;
          Alcotest.test_case "all-NaN raises" `Quick test_stats_all_nan_raises;
          Alcotest.test_case "linspace" `Quick test_stats_linspace;
          Alcotest.test_case "logspace" `Quick test_stats_logspace;
          QCheck_alcotest.to_alcotest prop_mean_bounded;
          QCheck_alcotest.to_alcotest prop_median_bounded ] );
      ( "nelder-mead",
        [ Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "sphere 4d" `Quick test_nm_sphere_4d;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "eval budget" `Quick test_nm_budget;
          Alcotest.test_case "history monotone" `Quick test_nm_history_monotone;
          Alcotest.test_case "empty x0 rejected" `Quick test_nm_empty_rejected ] );
      ( "spsa",
        [ Alcotest.test_case "quadratic" `Quick test_spsa_quadratic;
          Alcotest.test_case "noisy objective" `Quick test_spsa_noisy_objective;
          Alcotest.test_case "eval budget" `Quick test_spsa_eval_budget;
          Alcotest.test_case "deterministic" `Quick test_spsa_deterministic;
          Alcotest.test_case "history monotone" `Quick test_spsa_history_monotone;
          Alcotest.test_case "empty x0 rejected" `Quick test_spsa_empty_rejected ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "row validation" `Quick test_table_too_many_cells ] ) ]
