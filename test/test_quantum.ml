module Rng = Pqc_util.Rng
module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec
module Expm = Pqc_linalg.Expm
module Unitary = Pqc_linalg.Unitary
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Statevec = Pqc_quantum.Statevec
module Pauli = Pqc_quantum.Pauli

let all_discrete_gates =
  [ Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
    Gate.CX; Gate.CZ; Gate.Swap; Gate.ISwap ]

(* Random parameter-free circuit over [n] qubits. *)
let random_circuit rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    let q = Rng.int rng n in
    match Rng.int rng 6 with
    | 0 -> Circuit.Builder.add b Gate.H [ q ]
    | 1 -> Circuit.Builder.add b (Gate.Rx (Param.const (Rng.uniform rng ~lo:0.0 ~hi:6.28))) [ q ]
    | 2 -> Circuit.Builder.add b (Gate.Rz (Param.const (Rng.uniform rng ~lo:0.0 ~hi:6.28))) [ q ]
    | 3 -> Circuit.Builder.add b Gate.T [ q ]
    | 4 when n >= 2 ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Builder.add b Gate.CX [ q; q2 ]
    | _ when n >= 2 ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Builder.add b Gate.CZ [ q; q2 ]
    | _ -> Circuit.Builder.add b Gate.X [ q ]
  done;
  Circuit.Builder.to_circuit b

(* --- Param --- *)

let test_param_const () =
  let p = Param.const 1.5 in
  Alcotest.(check bool) "const" true (Param.is_const p);
  Alcotest.(check (float 1e-12)) "bind" 1.5 (Param.bind p [||]);
  Alcotest.(check bool) "no dep" true (Param.depends_on p = None)

let test_param_var () =
  let p = Param.var ~scale:0.5 ~offset:1.0 2 in
  Alcotest.(check (float 1e-12)) "affine" 2.5 (Param.bind p [| 0.0; 0.0; 3.0 |]);
  Alcotest.(check bool) "dep" true (Param.depends_on p = Some 2)

let test_param_zero_scale_is_const () =
  let p = Param.var ~scale:0.0 ~offset:0.7 3 in
  Alcotest.(check bool) "degenerate var is const" true (Param.is_const p)

let test_param_neg_half () =
  let p = Param.var 0 in
  Alcotest.(check (float 1e-12)) "neg" (-2.0) (Param.bind (Param.neg p) [| 2.0 |]);
  Alcotest.(check (float 1e-12)) "half" 1.0 (Param.bind (Param.half p) [| 2.0 |])

let test_param_add_same_var () =
  match Param.add (Param.var 1) (Param.var ~scale:2.0 1) with
  | Some p -> Alcotest.(check (float 1e-12)) "3 theta" 9.0 (Param.bind p [| 0.0; 3.0 |])
  | None -> Alcotest.fail "same-variable sum must merge"

let test_param_add_diff_var () =
  Alcotest.(check bool) "different vars don't merge" true
    (Param.add (Param.var 0) (Param.var 1) = None)

let test_param_add_cancelling () =
  match Param.add (Param.var 0) (Param.var ~scale:(-1.0) 0) with
  | Some p -> Alcotest.(check bool) "cancels to const" true (Param.is_const p)
  | None -> Alcotest.fail "cancelling sum must merge"

let test_param_bind_short_vector () =
  Alcotest.(check bool) "raises" true
    (try ignore (Param.bind (Param.var 3) [| 1.0 |]); false
     with Invalid_argument _ -> true)

let prop_param_add_semantics =
  QCheck.Test.make ~name:"Param.add agrees with numeric sum" ~count:100
    QCheck.(quad (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
              (float_range (-5.0) 5.0) (int_range 0 3))
    (fun (s1, o1, theta, var) ->
      let a = Param.var ~scale:s1 ~offset:o1 var in
      let b = Param.var ~scale:(0.5 *. s1) ~offset:1.0 var in
      let binding = Array.make 4 theta in
      match Param.add a b with
      | None -> false
      | Some sum ->
        Float.abs (Param.bind sum binding -. (Param.bind a binding +. Param.bind b binding))
        < 1e-9)

(* --- Gate --- *)

let test_gate_matrices_unitary () =
  List.iter
    (fun g ->
      Alcotest.(check bool) (Gate.name g ^ " unitary") true
        (Cmat.is_unitary (Gate.matrix g ~theta:[||])))
    all_discrete_gates

let prop_rotation_unitary =
  QCheck.Test.make ~name:"rotation matrices unitary" ~count:100
    QCheck.(pair (int_range 0 2) (float_range (-10.0) 10.0))
    (fun (axis, angle) ->
      let g =
        match axis with
        | 0 -> Gate.Rx (Param.const angle)
        | 1 -> Gate.Ry (Param.const angle)
        | _ -> Gate.Rz (Param.const angle)
      in
      Cmat.is_unitary ~tol:1e-9 (Gate.matrix g ~theta:[||]))

let test_rx_pi_is_x () =
  Alcotest.(check bool) "Rx(pi) ~ X" true
    (Unitary.equal_up_to_phase
       (Gate.matrix (Gate.Rx (Param.const Float.pi)) ~theta:[||])
       (Gate.matrix Gate.X ~theta:[||]))

let test_rz_pi_is_z () =
  Alcotest.(check bool) "Rz(pi) ~ Z" true
    (Unitary.equal_up_to_phase
       (Gate.matrix (Gate.Rz (Param.const Float.pi)) ~theta:[||])
       (Gate.matrix Gate.Z ~theta:[||]))

let test_t_squared_is_s () =
  let t2 =
    Cmat.mul (Gate.matrix Gate.T ~theta:[||]) (Gate.matrix Gate.T ~theta:[||])
  in
  Alcotest.(check bool) "T^2 = S" true
    (Cmat.max_abs_diff t2 (Gate.matrix Gate.S ~theta:[||]) < 1e-12)

let test_gate_inverses () =
  let theta = [| 0.7 |] in
  let gates =
    Gate.Rx (Param.var 0) :: Gate.Ry (Param.var 0) :: Gate.Rz (Param.var 0)
    :: all_discrete_gates
  in
  List.iter
    (fun g ->
      match Gate.inverse g with
      | None -> Alcotest.(check string) "only iswap lacks inverse" "iswap" (Gate.name g)
      | Some inv ->
        let m = Gate.matrix g ~theta and mi = Gate.matrix inv ~theta in
        let dim = Cmat.rows m in
        Alcotest.(check bool)
          (Gate.name g ^ " inverse")
          true
          (Cmat.max_abs_diff (Cmat.mul m mi) (Cmat.identity dim) < 1e-12))
    gates

let test_gate_is_diagonal_consistent () =
  List.iter
    (fun g ->
      let m = Gate.matrix g ~theta:[||] in
      let dim = Cmat.rows m in
      let off_diag_zero = ref true in
      for i = 0 to dim - 1 do
        for j = 0 to dim - 1 do
          if i <> j && Complex.norm (Cmat.get m i j) > 1e-12 then off_diag_zero := false
        done
      done;
      Alcotest.(check bool) (Gate.name g ^ " diagonal flag") !off_diag_zero
        (Gate.is_diagonal g))
    all_discrete_gates

let test_gate_self_inverse_consistent () =
  List.iter
    (fun g ->
      let m = Gate.matrix g ~theta:[||] in
      let dim = Cmat.rows m in
      let involutive = Cmat.max_abs_diff (Cmat.mul m m) (Cmat.identity dim) < 1e-12 in
      Alcotest.(check bool) (Gate.name g ^ " self-inverse flag") involutive
        (Gate.is_self_inverse g))
    all_discrete_gates

let test_gate_arity_and_params () =
  Alcotest.(check int) "rx arity" 1 (Gate.arity (Gate.Rx (Param.var 0)));
  Alcotest.(check int) "cx arity" 2 (Gate.arity Gate.CX);
  Alcotest.(check bool) "rx parametrized" true (Gate.is_parametrized (Gate.Rx (Param.var 0)));
  Alcotest.(check bool) "rx const not parametrized" false
    (Gate.is_parametrized (Gate.Rx (Param.const 1.0)));
  Alcotest.(check bool) "depends" true (Gate.depends_on (Gate.Rz (Param.var 5)) = Some 5)

let test_h_equals_zxz () =
  (* The control-asymmetry identity GRAPE rediscovers (Section 5.1). *)
  let zxz =
    Circuit.of_gates 1
      [ (Gate.Rz (Param.const (-.Float.pi /. 2.0)), [ 0 ]);
        (Gate.Rx (Param.const (-.Float.pi /. 2.0)), [ 0 ]);
        (Gate.Rz (Param.const (-.Float.pi /. 2.0)), [ 0 ]) ]
  in
  Alcotest.(check bool) "H = Rz Rx Rz up to phase" true
    (Unitary.equal_up_to_phase (Circuit.unitary zxz) (Gate.matrix Gate.H ~theta:[||]))

(* --- Circuit --- *)

let test_circuit_validation () =
  Alcotest.(check bool) "arity" true
    (try ignore (Circuit.of_gates 2 [ (Gate.CX, [ 0 ]) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "range" true
    (try ignore (Circuit.of_gates 2 [ (Gate.H, [ 5 ]) ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate operand" true
    (try ignore (Circuit.of_gates 2 [ (Gate.CX, [ 1; 1 ]) ]); false
     with Invalid_argument _ -> true)

let test_circuit_bind () =
  let c = Circuit.of_gates 1 [ (Gate.Rx (Param.var 0), [ 0 ]) ] in
  Alcotest.(check (list int)) "depends" [ 0 ] (Circuit.depends c);
  let b = Circuit.bind c [| 1.2 |] in
  Alcotest.(check (list int)) "bound has no deps" [] (Circuit.depends b);
  Alcotest.(check bool) "same unitary" true
    (Cmat.max_abs_diff (Circuit.unitary ~theta:[| 1.2 |] c) (Circuit.unitary b) < 1e-12)

let test_circuit_counts () =
  let c =
    Circuit.of_gates 2
      [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]); (Gate.Rz (Param.var 0), [ 1 ]);
        (Gate.CX, [ 0; 1 ]) ]
  in
  Alcotest.(check int) "length" 4 (Circuit.length c);
  Alcotest.(check int) "2q count" 2 (Circuit.two_qubit_count c);
  Alcotest.(check int) "parametrized" 1 (Circuit.parametrized_gate_count c);
  Alcotest.(check (list (pair string int))) "histogram"
    [ ("cx", 2); ("h", 1); ("rz", 1) ]
    (Circuit.gate_counts c);
  Alcotest.(check bool) "qubit used" true (Circuit.qubit_used c 1)

let test_circuit_n_params () =
  let no_params = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  Alcotest.(check int) "no params" 0 (Circuit.n_params no_params);
  (* Parameter indices may have gaps: a circuit touching only theta.(5)
     still needs a 6-element vector.  Deriving the count from the length
     of [depends] (the old idiom) would report 1 here. *)
  let gap = Circuit.of_gates 1 [ (Gate.Rz (Param.var 5), [ 0 ]) ] in
  Alcotest.(check int) "gap index" 6 (Circuit.n_params gap);
  Alcotest.(check int) "depends is sparser" 1 (List.length (Circuit.depends gap));
  let shared =
    Circuit.of_gates 2
      [ (Gate.Rx (Param.var 2), [ 0 ]); (Gate.Rz (Param.var 2), [ 1 ]);
        (Gate.Ry (Param.var 0), [ 0 ]) ]
  in
  Alcotest.(check int) "shared var, gap at 1" 3 (Circuit.n_params shared);
  (* Binding removes dependencies, so the bound circuit needs no theta. *)
  let bound = Circuit.bind gap (Array.make 6 0.5) in
  Alcotest.(check int) "bound" 0 (Circuit.n_params bound)

let test_circuit_concat_append () =
  let a = Circuit.of_gates 2 [ (Gate.H, [ 0 ]) ] in
  let b = Circuit.append a Gate.CX [ 0; 1 ] in
  Alcotest.(check int) "append length" 2 (Circuit.length b);
  let cc = Circuit.concat a a in
  Alcotest.(check int) "concat length" 2 (Circuit.length cc);
  (* H H = I *)
  Alcotest.(check bool) "HH = I" true
    (Cmat.max_abs_diff (Circuit.unitary cc) (Cmat.identity 4) < 1e-12)

let same_instrs a b =
  Circuit.length a = Circuit.length b
  && List.for_all
       (fun k -> Circuit.instr a k = Circuit.instr b k)
       (List.init (Circuit.length a) Fun.id)

let prop_append_extend_builder_agree =
  QCheck.Test.make ~name:"append fold = extend = builder" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 12 in
      let gates =
        Array.to_list (Circuit.instrs c)
        |> List.map (fun (i : Circuit.instr) ->
               (i.Circuit.gate, Array.to_list i.Circuit.qubits))
      in
      let by_append =
        List.fold_left
          (fun acc (g, qs) -> Circuit.append acc g qs)
          (Circuit.empty 3) gates
      in
      let by_extend = Circuit.extend (Circuit.empty 3) gates in
      let b = Circuit.Builder.create 3 in
      List.iter (fun (g, qs) -> Circuit.Builder.add b g qs) gates;
      let by_builder = Circuit.Builder.to_circuit b in
      same_instrs by_append c && same_instrs by_extend c
      && same_instrs by_builder c)

let test_circuit_extend_validates () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]) ] in
  Alcotest.(check bool) "bad operand rejected" true
    (try ignore (Circuit.extend c [ (Gate.X, [ 5 ]) ]); false
     with Invalid_argument _ -> true);
  let c2 = Circuit.extend c [ (Gate.CX, [ 0; 1 ]); (Gate.X, [ 1 ]) ] in
  Alcotest.(check int) "extended length" 3 (Circuit.length c2)

let test_circuit_relabel () =
  let c = Circuit.of_gates 2 [ (Gate.CX, [ 0; 1 ]) ] in
  let r = Circuit.relabel c ~n:3 ~mapping:(fun q -> q + 1) in
  Alcotest.(check int) "width" 3 (Circuit.n_qubits r);
  Alcotest.(check bool) "operands" true ((Circuit.instr r 0).qubits = [| 1; 2 |])

let prop_circuit_inverse =
  QCheck.Test.make ~name:"inverse circuit = dagger of unitary" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 15 in
      match Circuit.inverse c with
      | None -> false
      | Some inv ->
        Cmat.max_abs_diff (Circuit.unitary inv) (Cmat.dagger (Circuit.unitary c))
        < 1e-9)

let prop_circuit_unitary_is_unitary =
  QCheck.Test.make ~name:"circuit unitary is unitary" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      Cmat.is_unitary ~tol:1e-8 (Circuit.unitary (random_circuit rng 3 20)))

let test_embed_cx_msb () =
  let cx = Gate.matrix Gate.CX ~theta:[||] in
  Alcotest.(check bool) "embed (0,1) in 2q is CX itself" true
    (Cmat.max_abs_diff (Circuit.embed ~n:2 cx [| 0; 1 |]) cx < 1e-12);
  (* Reversed operands: control on qubit 1. |01> (index 1) -> |11> (3). *)
  let rev = Circuit.embed ~n:2 cx [| 1; 0 |] in
  Alcotest.(check bool) "reversed control" true
    (Complex.norm (Cmat.get rev 3 1) > 0.99)

(* --- Statevec --- *)

let test_bell_state () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  let p = Statevec.probabilities (Statevec.run c) in
  Alcotest.(check (float 1e-12)) "p(00)" 0.5 p.(0);
  Alcotest.(check (float 1e-12)) "p(11)" 0.5 p.(3);
  Alcotest.(check (float 1e-12)) "p(01)" 0.0 p.(1)

let test_ghz_state () =
  let c =
    Circuit.of_gates 3 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]); (Gate.CX, [ 1; 2 ]) ]
  in
  let p = Statevec.probabilities (Statevec.run c) in
  Alcotest.(check (float 1e-12)) "p(000)" 0.5 p.(0);
  Alcotest.(check (float 1e-12)) "p(111)" 0.5 p.(7)

let prop_sim_matches_matrix =
  QCheck.Test.make ~name:"simulator matches circuit unitary" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 25 in
      let psi = Statevec.run c in
      let phi = Cmat.apply (Circuit.unitary c) (Cvec.basis 8 0) in
      Cvec.max_abs_diff psi phi < 1e-9)

let prop_sim_norm_preserved =
  QCheck.Test.make ~name:"simulation preserves norm" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 4 30 in
      Float.abs (Cvec.norm (Statevec.run c) -. 1.0) < 1e-9)

let test_measure_deterministic_state () =
  let rng = Rng.create 5 in
  let c = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
  let psi = Statevec.run c in
  for _ = 1 to 20 do
    Alcotest.(check int) "always |10>" 2 (Statevec.measure rng psi)
  done

let test_measure_distribution () =
  let rng = Rng.create 6 in
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let psi = Statevec.run c in
  let ones = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    if Statevec.measure rng psi = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "roughly half" true (frac > 0.45 && frac < 0.55)

let test_wide_gate_kernel () =
  (* Three-qubit unitaries take the generic embed path: a Toffoli built as
     a dense matrix must act exactly like its definition. *)
  let dim = 8 in
  let toffoli = Cmat.identity dim in
  Cmat.set toffoli 6 6 Complex.zero;
  Cmat.set toffoli 7 7 Complex.zero;
  Cmat.set toffoli 6 7 Complex.one;
  Cmat.set toffoli 7 6 Complex.one;
  let psi = Statevec.run (Circuit.of_gates 3 [ (Gate.X, [ 0 ]); (Gate.X, [ 1 ]) ]) in
  Statevec.apply_matrix psi toffoli [| 0; 1; 2 |];
  Alcotest.(check (float 1e-12)) "|110> -> |111>" 1.0 (Cvec.probability psi 7)

let test_init_state_override () =
  let c = Circuit.of_gates 1 [ (Gate.X, [ 0 ]) ] in
  let psi = Statevec.run ~init_state:(Cvec.basis 2 1) c in
  Alcotest.(check (float 1e-12)) "X|1> = |0>" 1.0 (Cvec.probability psi 0)

(* --- Pauli --- *)

let test_pauli_parse () =
  let h = Pauli.of_strings 2 [ (1.0, "XZ") ] in
  Alcotest.(check int) "terms" 1 (List.length h.Pauli.terms);
  Alcotest.(check bool) "reject bad char" true
    (try ignore (Pauli.of_strings 1 [ (1.0, "Q") ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "reject bad length" true
    (try ignore (Pauli.of_strings 2 [ (1.0, "X") ]); false
     with Invalid_argument _ -> true)

let test_pauli_z_expectations () =
  let z0 = Pauli.of_strings 1 [ (1.0, "Z") ] in
  Alcotest.(check (float 1e-12)) "<0|Z|0>" 1.0 (Pauli.expectation z0 (Cvec.basis 2 0));
  Alcotest.(check (float 1e-12)) "<1|Z|1>" (-1.0) (Pauli.expectation z0 (Cvec.basis 2 1))

let test_pauli_bell_correlations () =
  let bell = Statevec.run (Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ]) in
  let e s = Pauli.expectation (Pauli.of_strings 2 [ (1.0, s) ]) bell in
  Alcotest.(check (float 1e-12)) "<ZZ>" 1.0 (e "ZZ");
  Alcotest.(check (float 1e-12)) "<XX>" 1.0 (e "XX");
  Alcotest.(check (float 1e-12)) "<YY>" (-1.0) (e "YY");
  Alcotest.(check (float 1e-12)) "<ZI>" 0.0 (e "ZI")

let test_pauli_identity_coefficient () =
  let h = Pauli.of_strings 2 [ (0.5, "II"); (2.0, "ZZ"); (-0.25, "II") ] in
  Alcotest.(check (float 1e-12)) "shift" 0.25 (Pauli.identity_coefficient h)

let prop_pauli_matrix_consistent =
  QCheck.Test.make ~name:"expectation = <v|M|v>" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let h =
        Pauli.of_strings 2
          [ (Rng.gaussian rng, "XZ"); (Rng.gaussian rng, "YI"); (Rng.gaussian rng, "ZZ");
            (Rng.gaussian rng, "II") ]
      in
      let v =
        Cvec.normalize
          (Cvec.of_array
             (Array.init 4 (fun _ ->
                  { Complex.re = Rng.gaussian rng; im = Rng.gaussian rng })))
      in
      let direct = (Cvec.dot v (Cmat.apply (Pauli.matrix h) v)).re in
      Float.abs (direct -. Pauli.expectation h v) < 1e-9)

(* --- Qasm --- *)

module Qasm = Pqc_quantum.Qasm

let test_qasm_writer_shape () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  let q = Qasm.to_qasm c in
  let contains needle =
    let n = String.length needle and h = String.length q in
    let rec go i = i + n <= h && (String.sub q i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "OPENQASM 2.0;");
  Alcotest.(check bool) "qreg" true (contains "qreg q[2];");
  Alcotest.(check bool) "h" true (contains "h q[0];");
  Alcotest.(check bool) "cx" true (contains "cx q[0],q[1];")

let test_qasm_writer_binds_theta () =
  let c = Circuit.of_gates 1 [ (Gate.Rz (Param.var 0), [ 0 ]) ] in
  Alcotest.(check bool) "unbound rejected" true
    (try ignore (Qasm.to_qasm c); false with Invalid_argument _ -> true);
  let q = Qasm.to_qasm ~theta:[| 0.75 |] c in
  let c2 = Qasm.of_qasm q in
  Alcotest.(check bool) "bound roundtrip" true
    (Cmat.max_abs_diff (Circuit.unitary c2) (Circuit.unitary ~theta:[| 0.75 |] c) < 1e-9)

let test_qasm_expressions () =
  let c = Qasm.of_qasm "qreg q[1]; rz(pi/2) q[0]; rx(-pi*0.5+0.25) q[0]; ry((1+2)*0.1) q[0];" in
  Alcotest.(check int) "three gates" 3 (Circuit.length c);
  match Pqc_quantum.Gate.param (Circuit.instr c 1).gate with
  | Some p ->
    Alcotest.(check (float 1e-12)) "arithmetic"
      ((-.Float.pi *. 0.5) +. 0.25) (Param.bind p [||])
  | None -> Alcotest.fail "expected rotation"

let test_qasm_ignores_noise_statements () =
  let c =
    Qasm.of_qasm
      "OPENQASM 2.0; include \"qelib1.inc\"; qreg r[2]; creg c[2]; // x\n\
       barrier r; h r[1]; u1(0.5) r[0];"
  in
  Alcotest.(check int) "two gates" 2 (Circuit.length c)

let check_parse_error src =
  try
    ignore (Qasm.of_qasm src);
    false
  with Qasm.Parse_error _ -> true

let test_qasm_rejects () =
  Alcotest.(check bool) "measure" true (check_parse_error "qreg q[1]; measure q[0] -> c[0];");
  Alcotest.(check bool) "unknown gate" true (check_parse_error "qreg q[1]; foo q[0];");
  Alcotest.(check bool) "out of range" true (check_parse_error "qreg q[1]; h q[3];");
  Alcotest.(check bool) "missing semicolon" true (check_parse_error "qreg q[1]; h q[0]");
  Alcotest.(check bool) "two qregs" true (check_parse_error "qreg q[1]; qreg r[1];");
  Alcotest.(check bool) "no qreg" true (check_parse_error "h q[0];");
  Alcotest.(check bool) "wrong register" true (check_parse_error "qreg q[2]; h r[0];");
  Alcotest.(check bool) "division by zero" true (check_parse_error "qreg q[1]; rz(1/0) q[0];")

let test_qasm_error_line_numbers () =
  (try
     ignore (Qasm.of_qasm "qreg q[2];\nh q[0];\nfoo q[1];");
     Alcotest.fail "must raise"
   with Qasm.Parse_error { line; _ } -> Alcotest.(check int) "line" 3 line)

(* Corpus of invalid programs: every entry must raise Parse_error with a
   sane position; entries with a known position pin it exactly. *)
let test_qasm_error_positions () =
  let corpus =
    [ ("unsupported gate", "qreg q[2];\nh q[0];\nfoo q[1];", Some (3, 1));
      ("out of range", "qreg q[1]; h q[3];", Some (1, 16));
      ("division by zero", "qreg q[1]; rz(1/0) q[0];", Some (1, 16));
      ("bad char in expr", "qreg q[1]; rz(pi@2) q[0];", Some (1, 17));
      ("unclosed paren", "qreg q[1]; rz((pi) q[0];", Some (1, 14));
      ("missing semicolon", "qreg q[1]; h q[0]", Some (1, 12));
      ("measure", "qreg q[1];\nmeasure q[0] -> c[0];", Some (2, 1));
      ("mixed params", "qreg q[1]; rz(t0+t1) q[0];", Some (1, 17));
      ("nonlinear", "qreg q[1];\nrz(t0*t1) q[0];", Some (2, 6));
      ("param divisor", "qreg q[1]; rz(1/t0) q[0];", None);
      ("wrong register", "qreg q[2]; h r[0];", Some (1, 14));
      ("bad qubit index", "qreg q[1]; h q[x];", Some (1, 16));
      ("trailing tokens", "qreg q[1]; rz(1 2) q[0];", Some (1, 17));
      ("empty angle", "qreg q[1]; rz() q[0];", None);
      ("angle on h", "qreg q[1]; h(0.5) q[0];", Some (1, 14)) ]
  in
  List.iter
    (fun (name, src, expect) ->
      match Qasm.of_qasm src with
      | _ -> Alcotest.fail (name ^ ": expected Parse_error")
      | exception Qasm.Parse_error { line; col; message = _ } -> (
        Alcotest.(check bool) (name ^ " has position") true
          (line >= 1 && col >= 1);
        match expect with
        | Some (l, c) ->
          Alcotest.(check (pair int int)) (name ^ " position") (l, c) (line, col)
        | None -> ()))
    corpus

let test_qasm_symbolic_params () =
  let c =
    Qasm.of_qasm
      "qreg q[2];\nrz(t0) q[0];\nrx(pi*t1/2) q[1];\nry(-t0+pi/4) q[0];\n\
       cx q[0],q[1];"
  in
  Alcotest.(check int) "gates" 4 (Circuit.length c);
  Alcotest.(check (list int)) "depends" [ 0; 1 ]
    (List.sort compare (Circuit.depends c));
  (match Gate.param (Circuit.instr c 1).Circuit.gate with
  | Some p ->
    Alcotest.(check (float 1e-12)) "pi*t1/2 scaled"
      (Float.pi *. 0.5 *. 0.5)
      (Param.bind p [| 0.0; 0.5 |])
  | None -> Alcotest.fail "rx should be parametrized");
  let theta = [| 0.3; 0.7 |] in
  let c2 = Qasm.of_qasm (Qasm.to_qasm ~theta c) in
  Alcotest.(check bool) "bound round-trip unitary" true
    (Unitary.equal_up_to_phase ~tol:1e-9 (Circuit.unitary ~theta c)
       (Circuit.unitary c2))

let test_qasm_roundtrip_benchmarks () =
  (* Real workload circuits survive the interchange format. *)
  List.iter
    (fun (name, c, n_params) ->
      let theta = Array.init n_params (fun i -> 0.3 +. (0.1 *. float_of_int i)) in
      let q = Qasm.to_qasm ~theta c in
      let c2 = Qasm.of_qasm q in
      Alcotest.(check int) (name ^ " gate count") (Circuit.length c) (Circuit.length c2);
      if Circuit.n_qubits c <= 4 then
        Alcotest.(check bool) (name ^ " unitary") true
          (Unitary.equal_up_to_phase ~tol:1e-7
             (Circuit.unitary ~theta c) (Circuit.unitary c2)))
    [ ("H2 ansatz", Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.h2, 3);
      ("LiH ansatz", Pqc_vqe.Uccsd.ansatz Pqc_vqe.Molecule.lih, 8);
      ("QAOA K4 p=2", Pqc_qaoa.Qaoa.circuit (Pqc_qaoa.Graph.clique 4) ~p:2, 4) ]

let prop_qasm_roundtrip =
  QCheck.Test.make ~name:"qasm round-trip preserves unitary" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 15 in
      let c2 = Qasm.of_qasm (Qasm.to_qasm c) in
      Unitary.equal_up_to_phase ~tol:1e-8 (Circuit.unitary c) (Circuit.unitary c2))

(* --- Density --- *)

module Density = Pqc_quantum.Density

let timings_of c ~gate_ns =
  let i = ref (-1) in
  Array.to_list (Circuit.instrs c)
  |> List.map (fun instr ->
         incr i;
         { Density.instr; start_time = float_of_int !i *. gate_ns; duration = gate_ns })

let test_density_init () =
  let t = Density.init 2 in
  Alcotest.(check (float 1e-12)) "trace" 1.0 (Density.trace t);
  Alcotest.(check (float 1e-12)) "purity" 1.0 (Density.purity t);
  Alcotest.(check (float 1e-12)) "fid to |00>" 1.0
    (Density.fidelity_to t (Cvec.basis 4 0))

let test_density_of_statevec () =
  let psi = Statevec.run (Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ]) in
  let t = Density.of_statevec psi in
  Alcotest.(check (float 1e-12)) "pure" 1.0 (Density.purity t);
  Alcotest.(check (float 1e-12)) "self fidelity" 1.0 (Density.fidelity_to t psi)

let prop_density_noiseless_matches_statevec =
  QCheck.Test.make ~name:"noiseless density run matches statevector" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 15 in
      let rho =
        Density.run_noisy ~t1_ns:1e15 ~t2_ns:1e15 ~n:3 (timings_of c ~gate_ns:5.0)
      in
      Float.abs (Density.fidelity_to rho (Statevec.run c) -. 1.0) < 1e-9)

let prop_density_trace_preserved =
  QCheck.Test.make ~name:"noisy evolution preserves trace" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 2 12 in
      let rho =
        Density.run_noisy ~t1_ns:300.0 ~t2_ns:200.0 ~n:2 (timings_of c ~gate_ns:10.0)
      in
      Float.abs (Density.trace rho -. 1.0) < 1e-9)

let test_density_noise_reduces_purity () =
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let rho = Density.run_noisy ~t1_ns:100.0 ~t2_ns:80.0 ~n:1 (timings_of c ~gate_ns:20.0) in
  Alcotest.(check bool) "mixed" true (Density.purity rho < 0.999)

let test_density_amplitude_damping_decays_to_ground () =
  let t = Density.of_statevec (Cvec.basis 2 1) in
  Density.idle t ~t1_ns:10.0 ~t2_ns:15.0 ~qubit:0 1000.0;
  (* After 100 T1, the excited state has fully relaxed. *)
  Alcotest.(check bool) "relaxed to |0>" true
    (Density.fidelity_to t (Cvec.basis 2 0) > 0.999)

let test_density_dephasing_kills_coherence_keeps_populations () =
  let plus = Statevec.run (Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ]) in
  let t = Density.of_statevec plus in
  (* Pure dephasing only: T1 huge, T2 small. *)
  Density.idle t ~t1_ns:1e12 ~t2_ns:5.0 ~qubit:0 500.0;
  let m = Density.matrix t in
  Alcotest.(check bool) "coherence gone" true
    (Complex.norm (Pqc_linalg.Cmat.get m 0 1) < 1e-9);
  Alcotest.(check (float 1e-9)) "population kept" 0.5 (Pqc_linalg.Cmat.get m 0 0).re

let test_density_t2_decay_rate () =
  (* The |+> coherence must decay exactly as exp(-t/T2). *)
  let plus = Statevec.run (Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ]) in
  let t = Density.of_statevec plus in
  Density.idle t ~t1_ns:300.0 ~t2_ns:200.0 ~qubit:0 100.0;
  let coherence = Complex.norm (Pqc_linalg.Cmat.get (Density.matrix t) 0 1) in
  Alcotest.(check (float 1e-9)) "exp(-t/T2)/2" (0.5 *. exp (-100.0 /. 200.0)) coherence

let test_density_shorter_is_better () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  let ideal = Statevec.run c in
  let fid gate_ns =
    Density.fidelity_to
      (Density.run_noisy ~t1_ns:300.0 ~t2_ns:200.0 ~n:2 (timings_of c ~gate_ns))
      ideal
  in
  Alcotest.(check bool) "2x faster pulses, higher fidelity" true (fid 5.0 > fid 10.0)

let test_density_expectation_consistent () =
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  let psi = Statevec.run c in
  let h = Pauli.of_strings 2 [ (0.7, "ZZ"); (0.3, "XI") ] in
  Alcotest.(check (float 1e-9)) "Tr(rho H) = <psi|H|psi>"
    (Pauli.expectation h psi)
    (Density.expectation h (Density.of_statevec psi))

let test_density_validation () =
  Alcotest.(check bool) "bad gamma" true
    (try ignore (Density.amplitude_damping ~gamma:1.5); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad lambda" true
    (try ignore (Density.dephasing ~lambda:(-0.1)); false
     with Invalid_argument _ -> true);
  let t = Density.init 1 in
  Alcotest.(check bool) "T2 > 2 T1 rejected" true
    (try Density.idle t ~t1_ns:10.0 ~t2_ns:30.0 ~qubit:0 1.0; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative idle rejected" true
    (try Density.idle t ~qubit:0 (-1.0); false with Invalid_argument _ -> true)

let test_density_idle_gaps_hurt () =
  (* The same gates, but with a long idle gap before the last one: the
     spectator decoheres while waiting. *)
  let c = Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ] in
  let ideal = Statevec.run c in
  let tight = timings_of c ~gate_ns:5.0 in
  let gapped =
    match tight with
    | [ a; b ] -> [ a; { b with Density.start_time = 200.0 } ]
    | _ -> assert false
  in
  let fid t =
    Density.fidelity_to (Density.run_noisy ~t1_ns:300.0 ~t2_ns:200.0 ~n:2 t) ideal
  in
  Alcotest.(check bool) "gap decoheres" true (fid gapped < fid tight)

let () =
  Alcotest.run "quantum"
    [ ( "param",
        [ Alcotest.test_case "const" `Quick test_param_const;
          Alcotest.test_case "var affine" `Quick test_param_var;
          Alcotest.test_case "zero scale" `Quick test_param_zero_scale_is_const;
          Alcotest.test_case "neg/half" `Quick test_param_neg_half;
          Alcotest.test_case "add same var" `Quick test_param_add_same_var;
          Alcotest.test_case "add diff var" `Quick test_param_add_diff_var;
          Alcotest.test_case "add cancelling" `Quick test_param_add_cancelling;
          Alcotest.test_case "bind short vector" `Quick test_param_bind_short_vector;
          QCheck_alcotest.to_alcotest prop_param_add_semantics ] );
      ( "gate",
        [ Alcotest.test_case "all unitary" `Quick test_gate_matrices_unitary;
          Alcotest.test_case "Rx(pi) ~ X" `Quick test_rx_pi_is_x;
          Alcotest.test_case "Rz(pi) ~ Z" `Quick test_rz_pi_is_z;
          Alcotest.test_case "T^2 = S" `Quick test_t_squared_is_s;
          Alcotest.test_case "inverses" `Quick test_gate_inverses;
          Alcotest.test_case "diagonal flags" `Quick test_gate_is_diagonal_consistent;
          Alcotest.test_case "self-inverse flags" `Quick test_gate_self_inverse_consistent;
          Alcotest.test_case "arity and params" `Quick test_gate_arity_and_params;
          Alcotest.test_case "H = RzRxRz" `Quick test_h_equals_zxz;
          QCheck_alcotest.to_alcotest prop_rotation_unitary ] );
      ( "circuit",
        [ Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "bind" `Quick test_circuit_bind;
          Alcotest.test_case "counts" `Quick test_circuit_counts;
          Alcotest.test_case "n_params" `Quick test_circuit_n_params;
          Alcotest.test_case "concat/append" `Quick test_circuit_concat_append;
          Alcotest.test_case "extend validates" `Quick test_circuit_extend_validates;
          QCheck_alcotest.to_alcotest prop_append_extend_builder_agree;
          Alcotest.test_case "relabel" `Quick test_circuit_relabel;
          Alcotest.test_case "embed CX" `Quick test_embed_cx_msb;
          QCheck_alcotest.to_alcotest prop_circuit_inverse;
          QCheck_alcotest.to_alcotest prop_circuit_unitary_is_unitary ] );
      ( "statevec",
        [ Alcotest.test_case "bell" `Quick test_bell_state;
          Alcotest.test_case "ghz" `Quick test_ghz_state;
          Alcotest.test_case "measure deterministic" `Quick test_measure_deterministic_state;
          Alcotest.test_case "measure distribution" `Quick test_measure_distribution;
          Alcotest.test_case "init state" `Quick test_init_state_override;
          Alcotest.test_case "wide gate kernel" `Quick test_wide_gate_kernel;
          QCheck_alcotest.to_alcotest prop_sim_matches_matrix;
          QCheck_alcotest.to_alcotest prop_sim_norm_preserved ] );
      ( "pauli",
        [ Alcotest.test_case "parse" `Quick test_pauli_parse;
          Alcotest.test_case "Z expectations" `Quick test_pauli_z_expectations;
          Alcotest.test_case "bell correlations" `Quick test_pauli_bell_correlations;
          Alcotest.test_case "identity coefficient" `Quick test_pauli_identity_coefficient;
          QCheck_alcotest.to_alcotest prop_pauli_matrix_consistent ] );
      ( "qasm",
        [ Alcotest.test_case "writer shape" `Quick test_qasm_writer_shape;
          Alcotest.test_case "writer binds theta" `Quick test_qasm_writer_binds_theta;
          Alcotest.test_case "expressions" `Quick test_qasm_expressions;
          Alcotest.test_case "ignores creg/barrier" `Quick test_qasm_ignores_noise_statements;
          Alcotest.test_case "rejects bad input" `Quick test_qasm_rejects;
          Alcotest.test_case "error line numbers" `Quick test_qasm_error_line_numbers;
          Alcotest.test_case "error positions corpus" `Quick test_qasm_error_positions;
          Alcotest.test_case "symbolic parameters" `Quick test_qasm_symbolic_params;
          Alcotest.test_case "benchmark round-trips" `Quick test_qasm_roundtrip_benchmarks;
          QCheck_alcotest.to_alcotest prop_qasm_roundtrip ] );
      ( "density",
        [ Alcotest.test_case "init" `Quick test_density_init;
          Alcotest.test_case "of statevec" `Quick test_density_of_statevec;
          Alcotest.test_case "noise reduces purity" `Quick test_density_noise_reduces_purity;
          Alcotest.test_case "amplitude damping" `Quick test_density_amplitude_damping_decays_to_ground;
          Alcotest.test_case "dephasing" `Quick test_density_dephasing_kills_coherence_keeps_populations;
          Alcotest.test_case "T2 decay rate" `Quick test_density_t2_decay_rate;
          Alcotest.test_case "shorter is better" `Quick test_density_shorter_is_better;
          Alcotest.test_case "expectation consistent" `Quick test_density_expectation_consistent;
          Alcotest.test_case "validation" `Quick test_density_validation;
          Alcotest.test_case "idle gaps hurt" `Quick test_density_idle_gaps_hurt;
          QCheck_alcotest.to_alcotest prop_density_noiseless_matches_statevec;
          QCheck_alcotest.to_alcotest prop_density_trace_preserved ] ) ]
