(* Prints the normalized Chrome trace of a fixed, tiny, model-engine
   compile; the golden test diffs it against
   examples/fixtures/trace_fixture.golden.json, pinning the exported
   trace schema (field order, span names, attribute keys).  Normalized
   form replaces timestamps with emission indices and durations with 1,
   so the document is bit-stable.  Refresh deliberately with
   `dune promote` after a deliberate schema change. *)

module Obs = Pqc_obs.Obs
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Engine = Pqc_core.Engine
module Compiler = Pqc_core.Compiler

let () =
  Obs.reset ();
  Obs.enable ();
  let c =
    Compiler.prepare
      (Circuit.of_gates 2
         [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]);
           (Gate.Rz (Param.var 0), [ 1 ]) ])
  in
  ignore
    (Compiler.strict_partial ~workers:1 ~max_width:2 ~engine:Engine.model c
       ~theta:[| 0.5 |]);
  print_string (Obs.to_chrome_json ~normalize:true ())
