module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Pulse = Pqc_pulse.Pulse

let check_float = Alcotest.(check (float 1e-9))

let test_table1_values () =
  check_float "Rz" 0.4 Gate_times.rz;
  check_float "Rx" 2.5 Gate_times.rx;
  check_float "H" 1.4 Gate_times.h;
  check_float "CX" 3.8 Gate_times.cx;
  check_float "SWAP" 7.4 Gate_times.swap

let test_duration_lookup () =
  check_float "rz gate" 0.4 (Gate_times.duration (Gate.Rz (Param.var 0)));
  check_float "rx gate" 2.5 (Gate_times.duration (Gate.Rx (Param.const 0.1)));
  check_float "x alias" 2.5 (Gate_times.duration Gate.X);
  check_float "phase gates use rz" 0.4 (Gate_times.duration Gate.T);
  check_float "cx" 3.8 (Gate_times.duration Gate.CX);
  check_float "swap" 7.4 (Gate_times.duration Gate.Swap)

let test_angle_independence () =
  (* The lookup table is static: any angle costs the full rotation (the
     fractional-gate inefficiency GRAPE exploits, Section 5.1). *)
  check_float "small angle same price" (Gate_times.duration (Gate.Rx (Param.const 3.0)))
    (Gate_times.duration (Gate.Rx (Param.const 0.001)))

let test_derived_durations () =
  check_float "ry = rz rx rz" (2.5 +. 0.8) (Gate_times.duration (Gate.Ry (Param.const 1.0)));
  check_float "cz = h cx h" (3.8 +. 2.8) (Gate_times.duration Gate.CZ)

let test_circuit_duration_serial () =
  let c = Circuit.of_gates 2 [ (Gate.H, [0]); (Gate.CX, [0;1]); (Gate.Rz (Param.const 1.0), [1]) ] in
  check_float "serial chain" (1.4 +. 3.8 +. 0.4) (Gate_times.circuit_duration c)

let test_circuit_duration_parallel () =
  let c = Circuit.of_gates 2 [ (Gate.H, [0]); (Gate.Rx (Param.const 1.0), [1]) ] in
  check_float "parallel max" 2.5 (Gate_times.circuit_duration c)

let test_table_rows () =
  Alcotest.(check int) "five rows" 5 (List.length Gate_times.table);
  Alcotest.(check bool) "has swap row" true
    (List.mem_assoc "SWAP" Gate_times.table)

let test_pulse_concat () =
  let s1 = Pulse.Lookup { gate_name = "h"; duration = 1.4 } in
  let s2 = Pulse.Optimized { label = "blk"; duration = 10.0; samples = None } in
  let p = Pulse.concat (Pulse.of_segments [ s1 ]) (Pulse.of_segments [ s2 ]) in
  check_float "duration" 11.4 (Pulse.duration p);
  Alcotest.(check int) "segments" 2 (Pulse.length p)

let test_pulse_append () =
  let p = Pulse.append Pulse.empty (Pulse.Lookup { gate_name = "cx"; duration = 3.8 }) in
  check_float "append" 3.8 (Pulse.duration p)

let test_lookup_gate_segment () =
  let i = { Circuit.gate = Gate.CX; qubits = [| 0; 1 |] } in
  match Pulse.lookup_gate i with
  | Pulse.Lookup { gate_name; duration } ->
    Alcotest.(check string) "name" "cx" gate_name;
    check_float "duration" 3.8 duration
  | Pulse.Optimized _ -> Alcotest.fail "expected lookup segment"

let test_segment_duration () =
  check_float "lookup" 1.4 (Pulse.segment_duration (Pulse.Lookup { gate_name = "h"; duration = 1.4 }));
  check_float "optimized" 5.0
    (Pulse.segment_duration (Pulse.Optimized { label = "x"; duration = 5.0; samples = None }))

let test_empty_pulse () =
  check_float "empty" 0.0 (Pulse.duration Pulse.empty);
  Alcotest.(check int) "no segments" 0 (Pulse.length Pulse.empty)

let test_append_matches_of_segments () =
  (* Building a pulse one segment at a time is the hot path in strategy
     assembly; it must agree exactly (structural equality included) with
     building it wholesale. *)
  let segs =
    List.init 257 (fun i ->
        if i mod 3 = 0 then
          Pulse.Optimized
            { label = Printf.sprintf "blk%d" i;
              duration = float_of_int i *. 0.5;
              samples = None }
        else Pulse.Lookup { gate_name = "h"; duration = 1.4 })
  in
  let appended = List.fold_left Pulse.append Pulse.empty segs in
  let wholesale = Pulse.of_segments segs in
  Alcotest.(check bool) "structurally equal" true (appended = wholesale);
  Alcotest.(check int) "segment order preserved" 257
    (List.length (Pulse.segments appended));
  Alcotest.(check bool) "same schedule" true
    (Pulse.segments appended = segs);
  check_float "same duration" (Pulse.duration wholesale)
    (Pulse.duration appended)

let test_append_linear_time () =
  (* Regression: append used to rebuild the whole segment list on every
     call ([segments @ [s]]), making an n-segment build O(n^2) — tens of
     seconds at this size.  The O(1) append finishes in milliseconds;
     the bound is deliberately loose so only the quadratic behavior can
     trip it. *)
  let n = 20_000 in
  let seg = Pulse.Lookup { gate_name = "cx"; duration = 3.8 } in
  let t0 = Unix.gettimeofday () in
  let p = ref Pulse.empty in
  for _ = 1 to n do
    p := Pulse.append !p seg
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "all segments present" n (Pulse.length !p);
  Alcotest.(check (float 1e-3)) "duration accumulated"
    (float_of_int n *. 3.8) (Pulse.duration !p);
  Alcotest.(check bool)
    (Printf.sprintf "%d appends under 1s (took %.3fs)" n elapsed)
    true (elapsed < 1.0)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_json_export () =
  let p =
    Pulse.of_segments
      [ Pulse.Lookup { gate_name = "h"; duration = 1.4 };
        Pulse.Optimized
          { label = "blk"; duration = 2.0;
            samples = Some { Pulse.dt = 1.0; controls = [| [| 0.5; -0.25 |] |] } } ]
  in
  let json = Pulse.to_json p in
  Alcotest.(check bool) "schedule key" true (contains json "\"schedule\"");
  Alcotest.(check bool) "names present" true (contains json "\"name\":\"h\"");
  Alcotest.(check bool) "t0 accumulates" true (contains json "\"t0\":1.400");
  Alcotest.(check bool) "samples present" true (contains json "[0.50000,-0.25000]");
  Alcotest.(check bool) "total duration" true (contains json "\"total_duration\":3.400")

let test_json_escaping () =
  let p = Pulse.of_segments [ Pulse.Lookup { gate_name = "a\"b"; duration = 1.0 } ] in
  Alcotest.(check bool) "quotes escaped" true (contains (Pulse.to_json p) "a\\\"b")

(* --- Decoherence --- *)

module Decoherence = Pqc_pulse.Decoherence

let test_decoherence_zero_duration () =
  check_float "P(0) = 1" 1.0 (Decoherence.success_probability ~n_qubits:4 0.0)

let test_decoherence_monotone () =
  let p1 = Decoherence.success_probability ~n_qubits:2 1000.0 in
  let p2 = Decoherence.success_probability ~n_qubits:2 2000.0 in
  Alcotest.(check bool) "longer pulses decohere more" true (p2 < p1);
  Alcotest.(check bool) "in (0,1]" true (p2 > 0.0 && p1 <= 1.0)

let test_decoherence_width () =
  let narrow = Decoherence.success_probability ~n_qubits:2 1000.0 in
  let wide = Decoherence.success_probability ~n_qubits:8 1000.0 in
  Alcotest.(check bool) "more qubits decohere more" true (wide < narrow)

let test_decoherence_known_value () =
  (* exp(-1 * 20000 / 20000) = 1/e. *)
  check_float "1/e" (exp (-1.0))
    (Decoherence.success_probability ~n_qubits:1 Decoherence.default_t2_ns)

let test_advantage_amplifies () =
  (* A 2x pulse speedup gives more than 2x success-probability advantage
     once the baseline is deep into the exponential decay. *)
  let adv =
    Decoherence.advantage ~n_qubits:6 ~baseline_ns:5000.0 2500.0
  in
  Alcotest.(check bool) "advantage > 1" true (adv > 1.0);
  check_float "exact ratio" (exp (6.0 *. 2500.0 /. Decoherence.default_t2_ns)) adv

let test_advantage_identity () =
  check_float "same duration, no advantage" 1.0
    (Decoherence.advantage ~n_qubits:3 ~baseline_ns:800.0 800.0)

let test_decoherence_rejects_negative () =
  Alcotest.(check bool) "negative duration" true
    (try ignore (Decoherence.success_probability ~n_qubits:1 (-1.0)); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "pulse"
    [ ( "gate-times",
        [ Alcotest.test_case "table 1 values" `Quick test_table1_values;
          Alcotest.test_case "duration lookup" `Quick test_duration_lookup;
          Alcotest.test_case "angle independence" `Quick test_angle_independence;
          Alcotest.test_case "derived durations" `Quick test_derived_durations;
          Alcotest.test_case "serial circuit" `Quick test_circuit_duration_serial;
          Alcotest.test_case "parallel circuit" `Quick test_circuit_duration_parallel;
          Alcotest.test_case "table rows" `Quick test_table_rows ] );
      ( "pulse",
        [ Alcotest.test_case "concat" `Quick test_pulse_concat;
          Alcotest.test_case "append" `Quick test_pulse_append;
          Alcotest.test_case "lookup segment" `Quick test_lookup_gate_segment;
          Alcotest.test_case "segment duration" `Quick test_segment_duration;
          Alcotest.test_case "empty" `Quick test_empty_pulse;
          Alcotest.test_case "append = of_segments" `Quick
            test_append_matches_of_segments;
          Alcotest.test_case "append is O(1)" `Quick test_append_linear_time;
          Alcotest.test_case "json export" `Quick test_json_export;
          Alcotest.test_case "json escaping" `Quick test_json_escaping ] );
      ( "decoherence",
        [ Alcotest.test_case "zero duration" `Quick test_decoherence_zero_duration;
          Alcotest.test_case "monotone in duration" `Quick test_decoherence_monotone;
          Alcotest.test_case "monotone in width" `Quick test_decoherence_width;
          Alcotest.test_case "known value" `Quick test_decoherence_known_value;
          Alcotest.test_case "advantage amplifies" `Quick test_advantage_amplifies;
          Alcotest.test_case "advantage identity" `Quick test_advantage_identity;
          Alcotest.test_case "rejects negative" `Quick test_decoherence_rejects_negative ] ) ]
