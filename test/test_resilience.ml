module Cmat = Pqc_linalg.Cmat
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Hamiltonian = Pqc_grape.Hamiltonian
module Grape = Pqc_grape.Grape
module Resilience = Pqc_core.Resilience
module Pulse_cache = Pqc_core.Pulse_cache
module Engine = Pqc_core.Engine
module Strategy = Pqc_core.Strategy
module Compiler = Pqc_core.Compiler
module Molecule = Pqc_vqe.Molecule
module Uccsd = Pqc_vqe.Uccsd

let quick = { Grape.fast_settings with Grape.dt = 0.25; max_iters = 60 }

let temp_path () = Filename.temp_file "pqc_resilience" ".cache"

(* --- Resilience primitives --- *)

let test_failure_string_round_trip () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "round trip" true
        (Resilience.failure_of_string (Resilience.failure_to_string f) = Some f))
    [ Resilience.Non_finite; Diverged; Deadline_exceeded; Cache_corrupt ];
  Alcotest.(check bool) "unknown tag" true
    (Resilience.failure_of_string "meltdown" = None)

let test_retryable () =
  Alcotest.(check bool) "non-finite retryable" true
    (Resilience.retryable Resilience.Non_finite);
  Alcotest.(check bool) "diverged retryable" true
    (Resilience.retryable Resilience.Diverged);
  Alcotest.(check bool) "deadline not retryable" false
    (Resilience.retryable Resilience.Deadline_exceeded);
  Alcotest.(check bool) "cache-corrupt not retryable" false
    (Resilience.retryable Resilience.Cache_corrupt)

let test_retune () =
  let p = Resilience.default_policy in
  let s0 = Grape.fast_settings in
  let id = Resilience.retune p ~attempt:0 s0 in
  Alcotest.(check bool) "attempt 0 unchanged" true (id = s0);
  let s1 = Resilience.retune p ~attempt:1 s0 in
  Alcotest.(check (float 1e-12)) "lr halved"
    (s0.Grape.hyperparams.Grape.learning_rate *. 0.5)
    s1.Grape.hyperparams.Grape.learning_rate;
  Alcotest.(check bool) "reseeded" true (s1.Grape.seed <> s0.Grape.seed);
  Alcotest.(check bool) "budget backed off" true
    (s1.Grape.max_iters > s0.Grape.max_iters);
  let s2 = Resilience.retune p ~attempt:2 s0 in
  Alcotest.(check (float 1e-12)) "lr quartered on second retry"
    (s0.Grape.hyperparams.Grape.learning_rate *. 0.25)
    s2.Grape.hyperparams.Grape.learning_rate;
  Alcotest.(check bool) "distinct seeds per attempt" true
    (s2.Grape.seed <> s1.Grape.seed)

let test_with_retries_bounded () =
  let p = { Resilience.default_policy with max_attempts = 4 } in
  let calls = ref 0 in
  let r =
    Resilience.with_retries p Resilience.no_deadline (fun ~attempt:_ ->
        incr calls;
        Error Resilience.Diverged)
  in
  Alcotest.(check int) "all attempts used" 4 !calls;
  Alcotest.(check bool) "last error returned" true (r = Error Resilience.Diverged)

let test_with_retries_stops_on_success () =
  let p = { Resilience.default_policy with max_attempts = 5 } in
  let calls = ref 0 in
  let r =
    Resilience.with_retries p Resilience.no_deadline (fun ~attempt ->
        incr calls;
        if attempt >= 2 then Ok attempt else Error Resilience.Non_finite)
  in
  Alcotest.(check int) "stopped at first success" 3 !calls;
  Alcotest.(check bool) "value returned" true (r = Ok 2)

let test_with_retries_deadline_not_retried () =
  let calls = ref 0 in
  let r =
    Resilience.with_retries Resilience.default_policy Resilience.no_deadline
      (fun ~attempt:_ ->
        incr calls;
        Error Resilience.Deadline_exceeded)
  in
  Alcotest.(check int) "no retry on deadline" 1 !calls;
  Alcotest.(check bool) "deadline error" true
    (r = Error Resilience.Deadline_exceeded)

let test_deadline_expiry () =
  Alcotest.(check bool) "no deadline never expires" false
    (Resilience.expired Resilience.no_deadline);
  let d0 = Resilience.deadline_after 0.0 in
  Unix.sleepf 0.002;
  Alcotest.(check bool) "zero-second deadline expires" true
    (Resilience.expired d0);
  Alcotest.(check bool) "distant deadline live" false
    (Resilience.expired (Resilience.deadline_after 3600.0));
  match Resilience.remaining_s (Resilience.deadline_after 3600.0) with
  | Some r -> Alcotest.(check bool) "remaining sane" true (r > 3500.0 && r <= 3600.0)
  | None -> Alcotest.fail "remaining_s must be Some for a real deadline"

(* --- GRAPE guards --- *)

let gate_target n gate qs = Circuit.unitary (Circuit.of_gates n [ (gate, qs) ])

let test_grape_rejects_bad_dt () =
  let sys = Hamiltonian.gmon 1 in
  List.iter
    (fun dt ->
      Alcotest.(check bool) (Printf.sprintf "dt=%f rejected" dt) true
        (try
           ignore
             (Grape.optimize ~settings:{ quick with Grape.dt } sys
                ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:2.0);
           false
         with Invalid_argument _ -> true))
    [ 0.0; -0.5; Float.nan ]

let test_grape_rejects_step_explosion () =
  let sys = Hamiltonian.gmon 1 in
  Alcotest.(check bool) "n_steps cap enforced" true
    (try
       ignore
         (Grape.optimize ~settings:{ quick with Grape.dt = 0.001 } sys
            ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:1e6);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-finite total_time rejected" true
    (try
       ignore
         (Grape.optimize ~settings:quick sys
            ~target:(gate_target 1 Gate.X [ 0 ]) ~total_time:Float.infinity);
       false
     with Invalid_argument _ -> true)

let test_grape_deadline_stops_early () =
  let sys = Hamiltonian.gmon 1 in
  let r =
    Grape.optimize ~settings:quick ~deadline:(Unix.gettimeofday () -. 1.0) sys
      ~target:(gate_target 1 Gate.H [ 0 ]) ~total_time:2.0
  in
  Alcotest.(check bool) "deadline_hit" true r.Grape.deadline_hit;
  Alcotest.(check bool) "stopped immediately" true (r.Grape.iterations <= 1);
  Alcotest.(check bool) "not converged" false r.Grape.converged

let test_grape_nan_target_diverges_cleanly () =
  let sys = Hamiltonian.gmon 1 in
  let target = gate_target 1 Gate.H [ 0 ] in
  Cmat.set target 0 0 { Complex.re = Float.nan; im = 0.0 };
  let r = Grape.optimize ~settings:quick sys ~target ~total_time:2.0 in
  Alcotest.(check bool) "flagged diverged" true r.Grape.diverged;
  Alcotest.(check bool) "aborted at first iteration" true (r.Grape.iterations <= 1);
  Alcotest.(check bool) "best fidelity stays finite" true
    (Float.is_finite r.Grape.fidelity);
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "controls stay finite" true (Float.is_finite v))
        row)
    r.Grape.controls

let test_minimal_time_deadline_returns_none () =
  let sys = Hamiltonian.gmon 1 in
  match
    Grape.minimal_time ~settings:quick
      ~deadline:(Unix.gettimeofday () -. 1.0) ~upper_bound:2.0 sys
      ~target:(gate_target 1 Gate.H [ 0 ])
  with
  | None -> ()
  | Some s ->
    Alcotest.(check bool) "if anything, deadline must be flagged" true
      s.Grape.deadline_hit

(* --- Pulse cache --- *)

let sample_entries =
  [ { Pulse_cache.key = "2;h,0;cx,0,1"; duration_ns = 3.75; grape_runs = 5;
      grape_iterations = 812; seconds = 0.42; fidelity = Some 0.9991;
      fallback = None; run_id = None };
    { Pulse_cache.key = "1;rx(3ff0000000000000),0"; duration_ns = 1.25;
      grape_runs = 3; grape_iterations = 200; seconds = 0.05;
      fidelity = None; fallback = Some "diverged"; run_id = None };
    { Pulse_cache.key = "weird\tkey\nwith\\bytes"; duration_ns = 0.5;
      grape_runs = 1; grape_iterations = 7; seconds = 0.001;
      fidelity = Some 1.0; fallback = None; run_id = None } ]

let test_cache_round_trip () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  let { Pulse_cache.entries; dropped; salvaged } = Pulse_cache.load ~path in
  Sys.remove path;
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Alcotest.(check int) "nothing salvaged" 0 salvaged;
  Alcotest.(check int) "all entries back" (List.length sample_entries)
    (List.length entries);
  List.iter2
    (fun (a : Pulse_cache.entry) (b : Pulse_cache.entry) ->
      Alcotest.(check string) "key" a.key b.key;
      Alcotest.(check (float 0.0)) "duration bit-exact" a.duration_ns b.duration_ns;
      Alcotest.(check int) "runs" a.grape_runs b.grape_runs;
      Alcotest.(check int) "iters" a.grape_iterations b.grape_iterations;
      Alcotest.(check (float 0.0)) "seconds bit-exact" a.seconds b.seconds;
      Alcotest.(check bool) "fidelity" true (a.fidelity = b.fidelity);
      Alcotest.(check bool) "fallback" true (a.fallback = b.fallback))
    sample_entries entries

let test_cache_missing_file () =
  let r = Pulse_cache.load ~path:"/nonexistent/pqc/cache/file" in
  Alcotest.(check int) "no entries" 0 (List.length r.Pulse_cache.entries);
  Alcotest.(check int) "no drops" 0 r.Pulse_cache.dropped;
  Alcotest.(check int) "no salvage" 0 r.Pulse_cache.salvaged

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let write_raw path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let test_cache_bit_flip_dropped () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  let lines = read_lines path in
  let flipped =
    List.mapi
      (fun i line ->
        if i = 2 then begin
          (* Flip one payload byte of the second record. *)
          let b = Bytes.of_string line in
          let pos = Bytes.length b - 1 in
          Bytes.set b pos (if Bytes.get b pos = 'x' then 'y' else 'x');
          Bytes.to_string b
        end
        else line)
      lines
  in
  write_raw path (String.concat "\n" flipped ^ "\n");
  let { Pulse_cache.entries; dropped; salvaged } = Pulse_cache.load ~path in
  Sys.remove path;
  Alcotest.(check int) "one record dropped" 1 dropped;
  Alcotest.(check int) "bit flip is damage, not a torn tail" 0 salvaged;
  Alcotest.(check int) "others survive" 2 (List.length entries)

let test_cache_truncation_salvaged () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  let lines = read_lines path in
  let keep = List.filteri (fun i _ -> i < 2) lines in
  let partial = List.nth lines 2 in
  let truncated = String.sub partial 0 (String.length partial / 2) in
  write_raw path (String.concat "\n" keep ^ "\n" ^ truncated);
  let { Pulse_cache.entries; dropped; salvaged } = Pulse_cache.load ~path in
  Sys.remove path;
  (* A torn tail is the expected crash artifact: salvaged, not dropped. *)
  Alcotest.(check int) "torn tail salvaged" 1 salvaged;
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Alcotest.(check int) "intact prefix survives" 1 (List.length entries)

let test_cache_bad_header_drops_everything () =
  let path = temp_path () in
  Pulse_cache.save ~path sample_entries;
  let lines = read_lines path in
  let tampered = "PQC-PULSE-CACHE v999" :: List.tl lines in
  write_raw path (String.concat "\n" tampered ^ "\n");
  let { Pulse_cache.entries; dropped; salvaged = _ } = Pulse_cache.load ~path in
  Sys.remove path;
  Alcotest.(check int) "nothing trusted" 0 (List.length entries);
  Alcotest.(check bool) "drops counted" true (dropped > 0)

let test_cache_checksum_sensitivity () =
  Alcotest.(check bool) "checksum differs on payload change" true
    (Pulse_cache.checksum "abc" <> Pulse_cache.checksum "abd");
  Alcotest.(check string) "checksum deterministic"
    (Pulse_cache.checksum "abc") (Pulse_cache.checksum "abc")

(* --- Engine: block key --- *)

let rx_block angle = Circuit.of_gates 1 [ (Gate.Rx (Param.const angle), [ 0 ]) ]

let test_block_key_distinguishes_close_angles () =
  (* Regression: the old %.6f key collided bindings closer than 1e-6 rad
     and served one binding the other's cached pulse. *)
  let a = Engine.block_key (rx_block 1.0) in
  let b = Engine.block_key (rx_block (1.0 +. 1e-8)) in
  Alcotest.(check bool) "sub-1e-6 angles get distinct keys" true (a <> b);
  Alcotest.(check string) "equal angles share a key" a
    (Engine.block_key (rx_block 1.0))

let test_block_key_distinguishes_widths () =
  let a = Engine.block_key (Circuit.of_gates 2 [ (Gate.H, [ 0 ]) ]) in
  let b = Engine.block_key (Circuit.of_gates 3 [ (Gate.H, [ 0 ]) ]) in
  Alcotest.(check bool) "width is part of the key" true (a <> b)

let test_block_key_distinguishes_operands () =
  let a = Engine.block_key (Circuit.of_gates 2 [ (Gate.H, [ 0 ]) ]) in
  let b = Engine.block_key (Circuit.of_gates 2 [ (Gate.H, [ 1 ]) ]) in
  Alcotest.(check bool) "operand is part of the key" true (a <> b)

(* --- Engine: fault injection and degradation --- *)

let small_block =
  Circuit.of_gates 2 [ (Gate.H, [ 0 ]); (Gate.CX, [ 0; 1 ]) ]

let check_fallback name kinds expected =
  let engine = Engine.faulty ~rate:1.0 ~kinds ~seed:7 Engine.model in
  let r = Engine.search engine small_block in
  Alcotest.(check bool) (name ^ " duration finite") true
    (Float.is_finite r.Engine.duration_ns);
  Alcotest.(check (float 1e-9)) (name ^ " falls back to lookup duration")
    (Gate_times.circuit_duration small_block) r.Engine.duration_ns;
  Alcotest.(check bool) (name ^ " fallback recorded") true
    (r.Engine.fallback = Some expected)

let test_faulty_nan () =
  check_fallback "nan" [| Engine.Nan_fidelity |] Resilience.Non_finite

let test_faulty_no_converge () =
  check_fallback "no-converge" [| Engine.No_converge |] Resilience.Diverged

let test_faulty_stall () =
  check_fallback "stall" [| Engine.Stall |] Resilience.Deadline_exceeded

let test_faulty_zero_rate_is_transparent () =
  let plain = Engine.search Engine.model small_block in
  let wrapped =
    Engine.search (Engine.faulty ~rate:0.0 ~seed:3 Engine.model) small_block
  in
  Alcotest.(check (float 1e-12)) "same duration" plain.Engine.duration_ns
    wrapped.Engine.duration_ns;
  Alcotest.(check bool) "no fallback" true (wrapped.Engine.fallback = None)

let test_faulty_results_not_cached () =
  let inner = Engine.numeric ~settings:quick () in
  let engine = Engine.faulty ~rate:1.0 ~seed:5 inner in
  let r = Engine.search engine (rx_block 0.7) in
  Alcotest.(check bool) "degraded" true (r.Engine.fallback <> None);
  Alcotest.(check int) "poisoned result not memoized" 0 (Engine.cache_size inner)

let test_faulty_rejects_empty_kinds () =
  Alcotest.(check bool) "raises" true
    (try ignore (Engine.faulty ~kinds:[||] ~seed:0 Engine.model); false
     with Invalid_argument _ -> true)

let nan_system n =
  let sys = Hamiltonian.gmon n in
  Cmat.set sys.Hamiltonian.drift 0 0 { Complex.re = Float.nan; im = 0.0 };
  sys

let test_numeric_nan_hamiltonian_degrades () =
  (* A genuinely poisoned system: every GRAPE iteration produces NaN
     fidelity; the guard aborts each attempt cheaply and the engine lands
     on the lookup-table fallback instead of raising or spinning. *)
  let engine = Engine.numeric ~settings:quick ~system_for:nan_system () in
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let r = Engine.search engine c in
  Alcotest.(check bool) "finite duration" true (Float.is_finite r.Engine.duration_ns);
  Alcotest.(check (float 1e-9)) "lookup duration"
    (Gate_times.circuit_duration c) r.Engine.duration_ns;
  Alcotest.(check bool) "degradation visible" true (r.Engine.fallback <> None);
  Alcotest.(check bool) "failed attempts accounted" true
    (r.Engine.search_cost.Engine.grape_runs > 0)

let test_numeric_deadline_degrades () =
  let engine = Engine.numeric ~settings:quick ~deadline_s:0.0 () in
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let t0 = Unix.gettimeofday () in
  let r = Engine.search engine c in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "returned promptly" true (elapsed < 5.0);
  Alcotest.(check bool) "deadline fallback" true
    (r.Engine.fallback = Some Resilience.Deadline_exceeded);
  Alcotest.(check bool) "finite duration" true (Float.is_finite r.Engine.duration_ns)

(* --- Engine: persistent cache --- *)

let test_engine_preloaded_cache_hit () =
  let c = rx_block 0.9 in
  let key = Engine.block_key c in
  let entry =
    { Pulse_cache.key; duration_ns = 2.25; grape_runs = 4;
      grape_iterations = 333; seconds = 0.02; fidelity = Some 0.997;
      fallback = None; run_id = None }
  in
  let path = temp_path () in
  Pulse_cache.save ~path [ entry ];
  let engine = Engine.numeric ~settings:quick ~cache_file:path () in
  Sys.remove path;
  Alcotest.(check int) "entry loaded" 1 (Engine.cache_size engine);
  Alcotest.(check int) "nothing dropped" 0 (Engine.cache_dropped engine);
  let r = Engine.search engine c in
  Alcotest.(check (float 0.0)) "served from disk cache" 2.25 r.Engine.duration_ns;
  Alcotest.(check int) "memoized cost served too" 333
    r.Engine.search_cost.Engine.grape_iterations;
  Alcotest.(check bool) "hit does not grow the cache" true
    (Engine.cache_size engine = 1)

let test_engine_cache_round_trips_through_disk () =
  let path = temp_path () in
  Sys.remove path;
  let c = Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ] in
  let a = Engine.numeric ~settings:quick ~cache_file:path () in
  let r1 = Engine.search a c in
  Alcotest.(check int) "miss populates cache" 1 (Engine.cache_size a);
  Engine.persist a;
  let b = Engine.numeric ~settings:quick ~cache_file:path () in
  Alcotest.(check int) "restart reloads the entry" 1 (Engine.cache_size b);
  let t0 = Sys.time () in
  let r2 = Engine.search b c in
  let hit_time = Sys.time () -. t0 in
  Sys.remove path;
  Alcotest.(check (float 0.0)) "identical duration across restart"
    r1.Engine.duration_ns r2.Engine.duration_ns;
  Alcotest.(check bool) "hit runs no optimizer" true (hit_time < 0.05)

let test_engine_corrupt_cache_file_survives () =
  let path = temp_path () in
  let good =
    Pulse_cache.encode_entry
      { Pulse_cache.key = "1;h,0"; duration_ns = 1.5; grape_runs = 1;
        grape_iterations = 3; seconds = 0.0; fidelity = None;
        fallback = None; run_id = None }
  in
  (* Garbage with a valid record after it is mid-file damage (dropped);
     the same garbage as the final line would salvage as a torn tail. *)
  write_raw path
    ("PQC-PULSE-CACHE v1\ndeadbeef\tgarbage that is not a record\n" ^ good
   ^ "\n");
  let engine = Engine.numeric ~settings:quick ~cache_file:path () in
  Sys.remove path;
  Alcotest.(check int) "corrupt entry dropped, not fatal" 1
    (Engine.cache_dropped engine);
  Alcotest.(check int) "nothing salvaged" 0 (Engine.cache_salvaged engine);
  Alcotest.(check int) "valid record still loads" 1 (Engine.cache_size engine)

let test_engine_cache_miss_then_hit_accounting () =
  let engine = Engine.numeric ~settings:quick () in
  let c = rx_block 0.4 in
  let miss = Engine.search engine c in
  Alcotest.(check bool) "miss pays search cost" true
    (miss.Engine.search_cost.Engine.grape_iterations > 0);
  Alcotest.(check int) "miss stored" 1 (Engine.cache_size engine);
  let hit = Engine.search engine c in
  Alcotest.(check (float 0.0)) "hit returns stored duration"
    miss.Engine.duration_ns hit.Engine.duration_ns;
  Alcotest.(check int) "hit returns stored cost"
    miss.Engine.search_cost.Engine.grape_iterations
    hit.Engine.search_cost.Engine.grape_iterations;
  Alcotest.(check int) "hit does not grow cache" 1 (Engine.cache_size engine);
  ignore (Engine.search engine (rx_block (0.4 +. 1e-8)));
  Alcotest.(check int) "close-but-distinct angle is a fresh miss" 2
    (Engine.cache_size engine)

(* --- Compiler: graceful degradation chain --- *)

let h2_prepared = lazy (Compiler.prepare (Uccsd.ansatz Molecule.h2))
let h2_theta = [| 0.5; 1.0; 1.5 |]

let test_all_strategies_survive_injected_faults () =
  List.iter
    (fun kinds ->
      let engine = Engine.faulty ~rate:1.0 ~kinds ~seed:11 Engine.model in
      let c = Lazy.force h2_prepared in
      List.iter
        (fun strat ->
          let r = Compiler.compile ~engine strat c ~theta:h2_theta in
          Alcotest.(check bool)
            (Compiler.strategy_name strat ^ " finite under faults") true
            (Float.is_finite r.Strategy.duration_ns
            && r.Strategy.duration_ns >= 0.0);
          if strat <> Compiler.Gate_based then
            Alcotest.(check bool)
              (Compiler.strategy_name strat ^ " degradations visible") true
              (Strategy.degraded r
              && String.length (Strategy.degradation_report r) > 0))
        Compiler.all_strategies)
    [ [| Engine.Nan_fidelity |]; [| Engine.No_converge |]; [| Engine.Stall |];
      [| Engine.Nan_fidelity; Engine.No_converge; Engine.Stall |] ]

let test_strict_fallback_branch_under_faults () =
  (* With every block search degraded, strict partial's schedule is built
     from lookup durations; the Float.min against the plain gate-based
     duration must keep "strict never worse" true. *)
  let engine = Engine.faulty ~rate:1.0 ~seed:2 Engine.model in
  let c = Lazy.force h2_prepared in
  let g = Compiler.gate_based c ~theta:h2_theta in
  let s = Compiler.strict_partial ~engine c ~theta:h2_theta in
  Alcotest.(check bool) "strict <= gate under total fault" true
    (s.Strategy.duration_ns <= g.Strategy.duration_ns +. 1e-9);
  Alcotest.(check bool) "strict duration finite" true
    (Float.is_finite s.Strategy.duration_ns);
  Alcotest.(check bool) "fault fallbacks recorded" true (Strategy.degraded s)

let test_compile_chain_flexible_to_strict () =
  (* dt = 0 makes every direct Grape call raise Invalid_argument.  The
     engine's own search absorbs that into lookup fallbacks, but flexible
     partial's hyperparameter tuning still dies — compile must degrade to
     strict partial and say so. *)
  let engine =
    Engine.numeric ~settings:{ quick with Grape.dt = 0.0 } ()
  in
  let c = Lazy.force h2_prepared in
  let r = Compiler.compile ~engine Compiler.Flexible_partial c ~theta:h2_theta in
  Alcotest.(check string) "landed on strict" "strict-partial" r.Strategy.strategy;
  Alcotest.(check bool) "finite duration" true
    (Float.is_finite r.Strategy.duration_ns);
  Alcotest.(check bool) "flexible abandonment recorded" true
    (List.exists
       (fun (d : Resilience.degradation) -> d.stage = "flexible-partial")
       r.Strategy.degradations)

let test_compile_chain_to_gate_based () =
  (* A hardware-config service that throws takes out every engine-backed
     strategy; the chain must bottom out at gate-based, which needs no
     engine at all. *)
  let engine =
    Engine.numeric ~settings:quick
      ~system_for:(fun _ -> failwith "hardware config service down") ()
  in
  let c = Lazy.force h2_prepared in
  let r = Compiler.compile ~engine Compiler.Flexible_partial c ~theta:h2_theta in
  Alcotest.(check string) "landed on gate-based" "gate-based" r.Strategy.strategy;
  Alcotest.(check bool) "finite duration" true
    (Float.is_finite r.Strategy.duration_ns);
  Alcotest.(check bool) "both abandoned rungs recorded" true
    (List.exists
       (fun (d : Resilience.degradation) -> d.stage = "flexible-partial")
       r.Strategy.degradations
    && List.exists
         (fun (d : Resilience.degradation) -> d.stage = "strict-partial")
         r.Strategy.degradations)

let test_compile_clean_run_reports_no_degradation () =
  let c = Lazy.force h2_prepared in
  List.iter
    (fun strat ->
      let r = Compiler.compile ~engine:Engine.model strat c ~theta:h2_theta in
      Alcotest.(check bool)
        (Compiler.strategy_name strat ^ " clean") false (Strategy.degraded r);
      Alcotest.(check string) "requested strategy ran"
        (Compiler.strategy_name strat) r.Strategy.strategy)
    Compiler.all_strategies

let test_degrade_chain_shape () =
  Alcotest.(check int) "gate-based is terminal" 1
    (List.length (Compiler.degrade_chain Compiler.Gate_based));
  List.iter
    (fun strat ->
      let chain = Compiler.degrade_chain strat in
      Alcotest.(check bool) "starts at the requested strategy" true
        (List.hd chain = strat);
      Alcotest.(check bool) "ends at gate-based" true
        (List.nth chain (List.length chain - 1) = Compiler.Gate_based))
    Compiler.all_strategies

let () =
  Alcotest.run "resilience"
    [ ( "primitives",
        [ Alcotest.test_case "failure strings" `Quick test_failure_string_round_trip;
          Alcotest.test_case "retryable" `Quick test_retryable;
          Alcotest.test_case "retune" `Quick test_retune;
          Alcotest.test_case "retries bounded" `Quick test_with_retries_bounded;
          Alcotest.test_case "retries stop on success" `Quick test_with_retries_stops_on_success;
          Alcotest.test_case "deadline not retried" `Quick test_with_retries_deadline_not_retried;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry ] );
      ( "grape-guards",
        [ Alcotest.test_case "bad dt rejected" `Quick test_grape_rejects_bad_dt;
          Alcotest.test_case "step explosion rejected" `Quick test_grape_rejects_step_explosion;
          Alcotest.test_case "deadline stops early" `Quick test_grape_deadline_stops_early;
          Alcotest.test_case "nan diverges cleanly" `Quick test_grape_nan_target_diverges_cleanly;
          Alcotest.test_case "minimal-time deadline" `Quick test_minimal_time_deadline_returns_none ] );
      ( "pulse-cache",
        [ Alcotest.test_case "round trip" `Quick test_cache_round_trip;
          Alcotest.test_case "missing file" `Quick test_cache_missing_file;
          Alcotest.test_case "bit flip dropped" `Quick test_cache_bit_flip_dropped;
          Alcotest.test_case "truncation salvaged" `Quick test_cache_truncation_salvaged;
          Alcotest.test_case "bad header untrusted" `Quick test_cache_bad_header_drops_everything;
          Alcotest.test_case "checksum sensitivity" `Quick test_cache_checksum_sensitivity ] );
      ( "block-key",
        [ Alcotest.test_case "close angles distinct" `Quick test_block_key_distinguishes_close_angles;
          Alcotest.test_case "widths distinct" `Quick test_block_key_distinguishes_widths;
          Alcotest.test_case "operands distinct" `Quick test_block_key_distinguishes_operands ] );
      ( "fault-injection",
        [ Alcotest.test_case "nan fault" `Quick test_faulty_nan;
          Alcotest.test_case "no-converge fault" `Quick test_faulty_no_converge;
          Alcotest.test_case "stall fault" `Quick test_faulty_stall;
          Alcotest.test_case "zero rate transparent" `Quick test_faulty_zero_rate_is_transparent;
          Alcotest.test_case "faults not cached" `Quick test_faulty_results_not_cached;
          Alcotest.test_case "empty kinds rejected" `Quick test_faulty_rejects_empty_kinds;
          Alcotest.test_case "nan hamiltonian degrades" `Quick test_numeric_nan_hamiltonian_degrades;
          Alcotest.test_case "deadline degrades" `Quick test_numeric_deadline_degrades ] );
      ( "engine-cache",
        [ Alcotest.test_case "preloaded hit" `Quick test_engine_preloaded_cache_hit;
          Alcotest.test_case "disk round trip" `Slow test_engine_cache_round_trips_through_disk;
          Alcotest.test_case "corrupt file survives" `Quick test_engine_corrupt_cache_file_survives;
          Alcotest.test_case "miss then hit accounting" `Slow test_engine_cache_miss_then_hit_accounting ] );
      ( "degradation-chain",
        [ Alcotest.test_case "all strategies survive faults" `Quick test_all_strategies_survive_injected_faults;
          Alcotest.test_case "strict fallback branch" `Quick test_strict_fallback_branch_under_faults;
          Alcotest.test_case "flexible to strict" `Quick test_compile_chain_flexible_to_strict;
          Alcotest.test_case "chain to gate-based" `Quick test_compile_chain_to_gate_based;
          Alcotest.test_case "clean run undegraded" `Quick test_compile_clean_run_reports_no_degradation;
          Alcotest.test_case "chain shape" `Quick test_degrade_chain_shape ] ) ]
