module Rng = Pqc_util.Rng
module Cmat = Pqc_linalg.Cmat
module Unitary = Pqc_linalg.Unitary
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Statevec = Pqc_quantum.Statevec
module Pass = Pqc_transpile.Pass
module Schedule = Pqc_transpile.Schedule
module Topology = Pqc_transpile.Topology
module Route = Pqc_transpile.Route
module Block = Pqc_transpile.Block
module Slice = Pqc_transpile.Slice

let random_circuit rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    let q = Rng.int rng n in
    match Rng.int rng 7 with
    | 0 -> Circuit.Builder.add b Gate.H [ q ]
    | 1 -> Circuit.Builder.add b (Gate.Rx (Param.const (Rng.uniform rng ~lo:(-3.0) ~hi:3.0))) [ q ]
    | 2 -> Circuit.Builder.add b (Gate.Rz (Param.const (Rng.uniform rng ~lo:(-3.0) ~hi:3.0))) [ q ]
    | 3 -> Circuit.Builder.add b Gate.T [ q ]
    | 4 -> Circuit.Builder.add b Gate.X [ q ]
    | _ when n >= 2 ->
      let q2 = (q + 1 + Rng.int rng (n - 1)) mod n in
      Circuit.Builder.add b Gate.CX [ q; q2 ]
    | _ -> Circuit.Builder.add b Gate.H [ q ]
  done;
  Circuit.Builder.to_circuit b

(* A parametrized, parameter-monotone circuit in the UCCSD/QAOA mold. *)
let random_variational rng n n_params =
  let b = Circuit.Builder.create n in
  for t = 0 to n_params - 1 do
    for _ = 1 to 1 + Rng.int rng 4 do
      let q = Rng.int rng n in
      match Rng.int rng 3 with
      | 0 -> Circuit.Builder.add b Gate.H [ q ]
      | 1 when n >= 2 ->
        let q2 = (q + 1) mod n in
        Circuit.Builder.add b Gate.CX [ q; q2 ]
      | _ -> Circuit.Builder.add b (Gate.Rx (Param.const 0.4)) [ q ]
    done;
    Circuit.Builder.add b (Gate.Rz (Param.var t)) [ Rng.int rng n ]
  done;
  Circuit.Builder.to_circuit b

let unit_dur (_ : Circuit.instr) = 1.0

(* --- Pass --- *)

let test_merge_rx () =
  let c = Circuit.of_gates 1 [ (Gate.Rx (Param.const 0.5), [0]); (Gate.Rx (Param.const 0.7), [0]) ] in
  let o = Pass.optimize c in
  Alcotest.(check int) "merged to one" 1 (Circuit.length o);
  match (Circuit.instr o 0).gate with
  | Gate.Rx p -> Alcotest.(check (float 1e-12)) "sum" 1.2 (Param.bind p [||])
  | _ -> Alcotest.fail "expected rx"

let test_cancel_hh () =
  let c = Circuit.of_gates 1 [ (Gate.H, [0]); (Gate.H, [0]) ] in
  Alcotest.(check int) "HH cancels" 0 (Circuit.length (Pass.optimize c))

let test_cancel_cxcx () =
  let c = Circuit.of_gates 2 [ (Gate.CX, [0;1]); (Gate.CX, [0;1]) ] in
  Alcotest.(check int) "CXCX cancels" 0 (Circuit.length (Pass.optimize c))

let test_cancel_s_sdg () =
  let c = Circuit.of_gates 1 [ (Gate.S, [0]); (Gate.Sdg, [0]) ] in
  Alcotest.(check int) "S Sdg cancels" 0 (Circuit.length (Pass.optimize c))

let test_merge_through_cx_control () =
  (* Rz on the control commutes through CX: the two Rz merge. *)
  let c = Circuit.of_gates 2
    [ (Gate.Rz (Param.const 0.3), [0]); (Gate.CX, [0;1]); (Gate.Rz (Param.const 0.4), [0]) ] in
  let o = Pass.optimize c in
  Alcotest.(check int) "merged across CX" 2 (Circuit.length o)

let test_merge_through_cx_target_rx () =
  let c = Circuit.of_gates 2
    [ (Gate.Rx (Param.const 0.3), [1]); (Gate.CX, [0;1]); (Gate.Rx (Param.const 0.4), [1]) ] in
  let o = Pass.optimize c in
  Alcotest.(check int) "rx merged across CX target" 2 (Circuit.length o)

let test_no_merge_blocked () =
  (* H on the target blocks Rz commutation. *)
  let c = Circuit.of_gates 1
    [ (Gate.Rz (Param.const 0.3), [0]); (Gate.H, [0]); (Gate.Rz (Param.const 0.4), [0]) ] in
  Alcotest.(check int) "blocked" 3 (Circuit.length (Pass.optimize c))

let test_symbolic_merge () =
  let c = Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var 0), [0]) ] in
  let o = Pass.optimize c in
  Alcotest.(check int) "t0+t0 merges" 1 (Circuit.length o);
  let c2 = Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var 1), [0]) ] in
  Alcotest.(check int) "t0+t1 does not merge" 2 (Circuit.length (Pass.optimize c2))

let test_symbolic_cancel () =
  let c = Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var ~scale:(-1.0) 0), [0]) ] in
  Alcotest.(check int) "t0 - t0 cancels" 0 (Circuit.length (Pass.optimize c))

let test_drop_zero_rotation () =
  let c = Circuit.of_gates 1 [ (Gate.Rx (Param.const 0.0), [0]); (Gate.H, [0]) ] in
  Alcotest.(check int) "zero rotation dropped" 1 (Circuit.length (Pass.optimize c))

let test_drop_two_pi_rotation () =
  let c = Circuit.of_gates 1 [ (Gate.Rz (Param.const (2.0 *. Float.pi)), [0]) ] in
  Alcotest.(check int) "2pi rotation dropped" 0 (Circuit.length (Pass.optimize c))

let prop_optimize_preserves_unitary =
  QCheck.Test.make ~name:"optimize preserves unitary (up to phase)" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 25 in
      Unitary.equal_up_to_phase ~tol:1e-7 (Circuit.unitary c)
        (Circuit.unitary (Pass.optimize c)))

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimize idempotent" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let o = Pass.optimize (random_circuit rng 3 20) in
      Circuit.length (Pass.optimize o) = Circuit.length o)

let prop_optimize_never_grows =
  QCheck.Test.make ~name:"optimize never grows the circuit" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 4 30 in
      Circuit.length (Pass.optimize c) <= Circuit.length c)

(* --- Schedule --- *)

let test_schedule_serial () =
  let c = Circuit.of_gates 1 [ (Gate.H, [0]); (Gate.H, [0]); (Gate.H, [0]) ] in
  Alcotest.(check (float 1e-12)) "serial" 3.0 (Schedule.critical_path ~duration:unit_dur c)

let test_schedule_parallel () =
  let c = Circuit.of_gates 3 [ (Gate.H, [0]); (Gate.H, [1]); (Gate.H, [2]) ] in
  Alcotest.(check (float 1e-12)) "parallel" 1.0 (Schedule.critical_path ~duration:unit_dur c)

let test_schedule_dependencies () =
  let c = Circuit.of_gates 2 [ (Gate.H, [0]); (Gate.CX, [0;1]); (Gate.H, [1]) ] in
  let s = Schedule.schedule ~duration:unit_dur c in
  Alcotest.(check (float 1e-12)) "makespan" 3.0 s.makespan;
  Alcotest.(check (float 1e-12)) "cx starts after h" 1.0 s.entries.(1).start_time

let test_schedule_weighted () =
  let dur (i : Circuit.instr) = if Gate.name i.gate = "cx" then 4.0 else 1.5 in
  let c = Circuit.of_gates 2 [ (Gate.H, [0]); (Gate.CX, [0;1]) ] in
  Alcotest.(check (float 1e-12)) "weighted" 5.5 (Schedule.critical_path ~duration:dur c)

let test_depth () =
  let c = Circuit.of_gates 2 [ (Gate.H, [0]); (Gate.H, [1]); (Gate.CX, [0;1]) ] in
  Alcotest.(check int) "depth" 2 (Schedule.depth c)

let prop_makespan_bounds =
  QCheck.Test.make ~name:"makespan within [max gate, sum of gates]" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 4 20 in
      let dur (i : Circuit.instr) = 1.0 +. float_of_int (Array.length i.qubits) in
      let span = Schedule.critical_path ~duration:dur c in
      let total = Array.fold_left (fun acc i -> acc +. dur i) 0.0 (Circuit.instrs c) in
      let longest = Array.fold_left (fun acc i -> Float.max acc (dur i)) 0.0 (Circuit.instrs c) in
      span >= longest -. 1e-9 && span <= total +. 1e-9)

let prop_schedule_start_times_respect_order =
  QCheck.Test.make ~name:"per-qubit start times are ordered" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 3 20 in
      let s = Schedule.schedule ~duration:unit_dur c in
      let last_finish = Array.make 3 0.0 in
      Array.for_all
        (fun (e : Schedule.entry) ->
          let ok =
            Array.for_all
              (fun q -> e.start_time >= last_finish.(q) -. 1e-9)
              e.instr.qubits
          in
          Array.iter (fun q -> last_finish.(q) <- e.finish_time) e.instr.qubits;
          ok)
        s.entries)

(* --- Topology --- *)

let test_topology_line () =
  let t = Topology.line 4 in
  Alcotest.(check int) "edges" 3 (List.length (Topology.edges t));
  Alcotest.(check bool) "0-1" true (Topology.connected t 0 1);
  Alcotest.(check bool) "0-2 not" false (Topology.connected t 0 2)

let test_topology_grid () =
  let t = Topology.grid ~rows:2 ~cols:3 in
  Alcotest.(check int) "edges" 7 (List.length (Topology.edges t));
  Alcotest.(check bool) "vertical" true (Topology.connected t 0 3);
  Alcotest.(check bool) "horizontal" true (Topology.connected t 0 1)

let test_topology_clique () =
  let t = Topology.clique 5 in
  Alcotest.(check int) "edges" 10 (List.length (Topology.edges t))

let test_shortest_path () =
  let t = Topology.line 6 in
  Alcotest.(check (list int)) "path" [ 1; 2; 3; 4 ] (Topology.shortest_path t 1 4);
  Alcotest.(check (list int)) "self" [ 2 ] (Topology.shortest_path t 2 2)

let test_shortest_path_disconnected () =
  let t = Topology.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected" Not_found (fun () ->
      ignore (Topology.shortest_path t 0 3))

let test_topology_neighbors () =
  let t = Topology.grid ~rows:2 ~cols:2 in
  Alcotest.(check (list int)) "corner neighbors" [ 1; 2 ] (Topology.neighbors t 0)

(* --- Route --- *)

(* The routed circuit equals the original up to the final qubit placement:
   undoing the permutation on the simulated amplitudes recovers the original
   state. *)
let routed_state_matches topo c =
  let r = Route.route topo c in
  let n = Circuit.n_qubits c in
  let n_phys = Topology.n_qubits topo in
  if n_phys <> n then true (* permutation check only for equal sizes *)
  else begin
    let psi = Statevec.run c in
    let phi = Statevec.run r.routed in
    (* Basis index of the physical state corresponding to logical index k. *)
    let to_phys k =
      let idx = ref 0 in
      for q = 0 to n - 1 do
        let bit = (k lsr (n - 1 - q)) land 1 in
        if bit = 1 then idx := !idx lor (1 lsl (n - 1 - r.final_layout.(q)))
      done;
      !idx
    in
    let ok = ref true in
    for k = 0 to (1 lsl n) - 1 do
      let a = Pqc_linalg.Cvec.get psi k and b = Pqc_linalg.Cvec.get phi (to_phys k) in
      if Complex.norm (Complex.sub a b) > 1e-9 then ok := false
    done;
    !ok
  end

let prop_route_legal =
  QCheck.Test.make ~name:"routing produces topology-legal circuits" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 5 25 in
      let topo = Topology.line 5 in
      Route.is_legal topo (Route.route topo c).routed)

let prop_route_semantics =
  QCheck.Test.make ~name:"routing preserves state up to layout" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 4 18 in
      routed_state_matches (Topology.line 4) c)

let prop_route_grid_semantics =
  QCheck.Test.make ~name:"grid routing preserves state up to layout" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 4 15 in
      routed_state_matches (Topology.grid ~rows:2 ~cols:2) c)

let test_route_noop_when_legal () =
  let topo = Topology.line 3 in
  let c = Circuit.of_gates 3 [ (Gate.CX, [0;1]); (Gate.CX, [1;2]) ] in
  let r = Route.route topo c in
  Alcotest.(check int) "no swaps" 0 r.swaps_inserted;
  Alcotest.(check int) "unchanged" 2 (Circuit.length r.routed)

let test_route_inserts_swaps () =
  let topo = Topology.line 3 in
  let c = Circuit.of_gates 3 [ (Gate.CX, [0;2]) ] in
  let r = Route.route topo c in
  Alcotest.(check bool) "swaps inserted" true (r.swaps_inserted > 0);
  Alcotest.(check bool) "legal" true (Route.is_legal topo r.routed)

let prop_route_gate_accounting =
  QCheck.Test.make ~name:"routed length = original + swaps" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 5 20 in
      let r = Route.route (Topology.line 5) c in
      Circuit.length r.routed = Circuit.length c + r.swaps_inserted)

(* --- Block --- *)

let prop_block_width_respected =
  QCheck.Test.make ~name:"blocks respect max width" ~count:30
    QCheck.(pair (int_range 0 100_000) (int_range 2 4))
    (fun (seed, w) ->
      let rng = Rng.create seed in
      let c = random_circuit rng 6 30 in
      List.for_all
        (fun (b : Block.block) -> List.length b.qubits <= w)
        (Block.partition ~max_width:w c))

let prop_block_gate_conservation =
  QCheck.Test.make ~name:"blocks conserve gate count" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 6 30 in
      let blocks = Block.partition ~max_width:4 c in
      List.fold_left (fun acc (b : Block.block) -> acc + Circuit.length b.circuit) 0 blocks
      = Circuit.length c)

let prop_block_concat_equivalent =
  QCheck.Test.make ~name:"block concatenation preserves unitary" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 4 22 in
      let blocks = Block.partition ~max_width:3 c in
      let rebuilt = Block.concat_all ~n:4 blocks in
      Cmat.max_abs_diff (Circuit.unitary rebuilt) (Circuit.unitary c) < 1e-9)

let test_block_whole_circuit () =
  let rng = Rng.create 17 in
  let c = random_circuit rng 4 30 in
  let blocks = Block.partition ~max_width:4 c in
  Alcotest.(check int) "4q circuit = one block" 1 (List.length blocks)

let test_block_extract () =
  let c = Circuit.of_gates 6 [ (Gate.CX, [2;3]); (Gate.H, [3]) ] in
  match Block.partition ~max_width:4 c with
  | [ b ] ->
    Alcotest.(check (list int)) "qubits" [ 2; 3 ] b.qubits;
    let e = Block.extract b in
    Alcotest.(check int) "width" 2 (Circuit.n_qubits e);
    Alcotest.(check bool) "relabel" true ((Circuit.instr e 0).qubits = [| 0; 1 |])
  | _ -> Alcotest.fail "expected one block"

let test_block_depends () =
  let c = Circuit.of_gates 2 [ (Gate.Rz (Param.var 3), [0]) ] in
  match Block.partition ~max_width:2 c with
  | [ b ] ->
    Alcotest.(check bool) "single param" true (Block.depends b = Ok (Some 3))
  | _ -> Alcotest.fail "expected one block"

let test_block_depends_multi_param () =
  (* Two parameters land in the same block: a typed Error lists both
     instead of raising. *)
  let c =
    Circuit.of_gates 2
      [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.Rz (Param.var 1), [ 0 ]) ]
  in
  match Block.partition ~max_width:2 c with
  | [ b ] ->
    Alcotest.(check bool) "fixed block" true
      (Block.depends { b with circuit = Circuit.empty 2 } = Ok None);
    (match Block.depends b with
    | Error vs -> Alcotest.(check (list int)) "both params" [ 0; 1 ] (List.sort compare vs)
    | Ok _ -> Alcotest.fail "expected Error on multi-parameter block")
  | _ -> Alcotest.fail "expected one block"

let prop_partition_indices_cover_circuit =
  QCheck.Test.make
    ~name:"partition_with_indices covers every instruction exactly once"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng 5 25 in
      let with_idx = Block.partition_with_indices ~max_width:3 c in
      let all_indices = List.concat_map snd with_idx in
      let covers =
        List.sort compare all_indices = List.init (Circuit.length c) Fun.id
      in
      (* Each block's k-th instruction is the original instruction at its
         k-th recorded index. *)
      let faithful =
        List.for_all
          (fun ((b : Block.block), indices) ->
            Circuit.length b.circuit = List.length indices
            && List.for_all2
                 (fun k idx -> Circuit.instr b.circuit k = Circuit.instr c idx)
                 (List.init (List.length indices) Fun.id)
                 indices)
          with_idx
      in
      let consistent =
        List.map fst with_idx = Block.partition ~max_width:3 c
      in
      covers && faithful && consistent)

(* --- Slice --- *)

let test_strict_linear_alternation () =
  let rng = Rng.create 21 in
  let c = random_variational rng 3 4 in
  let slices = Slice.strict_linear c in
  List.iter
    (fun (s : Slice.slice) ->
      match s.var with
      | Some _ -> Alcotest.(check int) "theta slices are singletons" 1 (Circuit.length s.circuit)
      | None ->
        Alcotest.(check int) "fixed slices have no params" 0
          (Circuit.parametrized_gate_count s.circuit))
    slices

let prop_strict_linear_roundtrip =
  QCheck.Test.make ~name:"strict_linear concat reproduces circuit" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 3 4 in
      let rebuilt = Slice.concat_all ~n:3 (Slice.strict_linear c) in
      let theta = [| 0.3; 1.1; 2.2; 0.9 |] in
      Cmat.max_abs_diff
        (Circuit.unitary ~theta rebuilt)
        (Circuit.unitary ~theta c)
      < 1e-9)

let prop_strict_region_roundtrip =
  QCheck.Test.make ~name:"strict regions concat is circuit-equivalent" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 3 4 in
      let rebuilt = Slice.concat_all ~n:3 (Slice.strict c) in
      let theta = [| 0.3; 1.1; 2.2; 0.9 |] in
      Cmat.max_abs_diff
        (Circuit.unitary ~theta rebuilt)
        (Circuit.unitary ~theta c)
      < 1e-9)

(* Instruction-level strengthening of the unitary round-trips above: the
   region-semantics comment in slice.ml promises that concatenating the
   emitted slices reproduces the circuit — exactly for linear slicing,
   per-qubit for region slicing (which may reorder across qubits). *)
let prop_strict_linear_concat_exact =
  QCheck.Test.make ~name:"strict_linear concat is instruction-identical"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 4 5 in
      let rebuilt = Slice.concat_all ~n:4 (Slice.strict_linear c) in
      Circuit.instrs rebuilt = Circuit.instrs c)

let prop_strict_region_concat_per_qubit_exact =
  QCheck.Test.make
    ~name:"strict region concat preserves per-qubit instruction order"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 4 5 in
      let rebuilt = Slice.concat_all ~n:4 (Slice.strict c) in
      let projection q circ =
        Array.to_list (Circuit.instrs circ)
        |> List.filter (fun (i : Circuit.instr) -> Array.mem q i.qubits)
      in
      Circuit.length rebuilt = Circuit.length c
      && List.for_all
           (fun q -> projection q rebuilt = projection q c)
           (List.init 4 Fun.id))

let prop_flexible_concat_exact =
  QCheck.Test.make ~name:"flexible concat is instruction-identical" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 4 5 in
      if Slice.is_monotone c then
        let rebuilt = Slice.concat_all ~n:4 (Slice.flexible c) in
        Circuit.instrs rebuilt = Circuit.instrs c
      else QCheck.assume_fail ())

let prop_strict_fixed_have_no_params =
  QCheck.Test.make ~name:"strict region fixed slices have no params" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 4 5 in
      List.for_all
        (fun (s : Slice.slice) ->
          match s.var with
          | None -> Circuit.parametrized_gate_count s.circuit = 0
          | Some _ -> Circuit.length s.circuit = 1)
        (Slice.strict c))

let test_monotone_detection () =
  let mono = Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var 1), [0]) ] in
  Alcotest.(check bool) "monotone" true (Slice.is_monotone mono);
  let non = Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var 1), [0]); (Gate.Rz (Param.var 0), [0]) ] in
  Alcotest.(check bool) "non-monotone" false (Slice.is_monotone non)

let test_flexible_rejects_non_monotone () =
  let non = Circuit.of_gates 1
    [ (Gate.Rz (Param.var 0), [0]); (Gate.Rz (Param.var 1), [0]); (Gate.Rz (Param.var 0), [0]) ] in
  Alcotest.(check bool) "raises" true
    (try ignore (Slice.flexible non); false with Invalid_argument _ -> true)

let prop_flexible_single_var =
  QCheck.Test.make ~name:"flexible slices depend on at most one var" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 3 5 in
      List.for_all
        (fun (s : Slice.slice) -> List.length (Circuit.depends s.circuit) <= 1)
        (Slice.flexible c))

let prop_flexible_roundtrip =
  QCheck.Test.make ~name:"flexible concat reproduces circuit" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 3 5 in
      let rebuilt = Slice.concat_all ~n:3 (Slice.flexible c) in
      let theta = [| 0.3; 1.1; 2.2; 0.9; 1.7 |] in
      Cmat.max_abs_diff (Circuit.unitary ~theta rebuilt) (Circuit.unitary ~theta c) < 1e-9)

let prop_flexible_deeper_than_strict =
  QCheck.Test.make ~name:"flexible has at most as many slices as strict" ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_variational rng 3 5 in
      List.length (Slice.flexible c) <= List.length (Slice.strict_linear c))

let test_fixed_gate_fraction () =
  let c = Circuit.of_gates 1
    [ (Gate.H, [0]); (Gate.H, [0]); (Gate.H, [0]); (Gate.Rz (Param.var 0), [0]) ] in
  Alcotest.(check (float 1e-12)) "fraction" 0.75 (Slice.fixed_gate_fraction c)

let () =
  Alcotest.run "transpile"
    [ ( "pass",
        [ Alcotest.test_case "merge rx" `Quick test_merge_rx;
          Alcotest.test_case "cancel HH" `Quick test_cancel_hh;
          Alcotest.test_case "cancel CXCX" `Quick test_cancel_cxcx;
          Alcotest.test_case "cancel S Sdg" `Quick test_cancel_s_sdg;
          Alcotest.test_case "merge through CX control" `Quick test_merge_through_cx_control;
          Alcotest.test_case "merge rx through CX target" `Quick test_merge_through_cx_target_rx;
          Alcotest.test_case "blocked merge" `Quick test_no_merge_blocked;
          Alcotest.test_case "symbolic merge" `Quick test_symbolic_merge;
          Alcotest.test_case "symbolic cancel" `Quick test_symbolic_cancel;
          Alcotest.test_case "drop zero rotation" `Quick test_drop_zero_rotation;
          Alcotest.test_case "drop 2pi rotation" `Quick test_drop_two_pi_rotation;
          QCheck_alcotest.to_alcotest prop_optimize_preserves_unitary;
          QCheck_alcotest.to_alcotest prop_optimize_idempotent;
          QCheck_alcotest.to_alcotest prop_optimize_never_grows ] );
      ( "schedule",
        [ Alcotest.test_case "serial" `Quick test_schedule_serial;
          Alcotest.test_case "parallel" `Quick test_schedule_parallel;
          Alcotest.test_case "dependencies" `Quick test_schedule_dependencies;
          Alcotest.test_case "weighted" `Quick test_schedule_weighted;
          Alcotest.test_case "depth" `Quick test_depth;
          QCheck_alcotest.to_alcotest prop_makespan_bounds;
          QCheck_alcotest.to_alcotest prop_schedule_start_times_respect_order ] );
      ( "topology",
        [ Alcotest.test_case "line" `Quick test_topology_line;
          Alcotest.test_case "grid" `Quick test_topology_grid;
          Alcotest.test_case "clique" `Quick test_topology_clique;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "disconnected" `Quick test_shortest_path_disconnected;
          Alcotest.test_case "neighbors" `Quick test_topology_neighbors ] );
      ( "route",
        [ Alcotest.test_case "noop when legal" `Quick test_route_noop_when_legal;
          Alcotest.test_case "inserts swaps" `Quick test_route_inserts_swaps;
          QCheck_alcotest.to_alcotest prop_route_legal;
          QCheck_alcotest.to_alcotest prop_route_gate_accounting;
          QCheck_alcotest.to_alcotest prop_route_semantics;
          QCheck_alcotest.to_alcotest prop_route_grid_semantics ] );
      ( "block",
        [ Alcotest.test_case "whole 4q circuit" `Quick test_block_whole_circuit;
          Alcotest.test_case "extract" `Quick test_block_extract;
          Alcotest.test_case "depends" `Quick test_block_depends;
          Alcotest.test_case "depends multi-param" `Quick test_block_depends_multi_param;
          QCheck_alcotest.to_alcotest prop_partition_indices_cover_circuit;
          QCheck_alcotest.to_alcotest prop_block_width_respected;
          QCheck_alcotest.to_alcotest prop_block_gate_conservation;
          QCheck_alcotest.to_alcotest prop_block_concat_equivalent ] );
      ( "slice",
        [ Alcotest.test_case "strict linear alternation" `Quick test_strict_linear_alternation;
          Alcotest.test_case "monotone detection" `Quick test_monotone_detection;
          Alcotest.test_case "flexible rejects non-monotone" `Quick test_flexible_rejects_non_monotone;
          Alcotest.test_case "fixed gate fraction" `Quick test_fixed_gate_fraction;
          QCheck_alcotest.to_alcotest prop_strict_linear_roundtrip;
          QCheck_alcotest.to_alcotest prop_strict_region_roundtrip;
          QCheck_alcotest.to_alcotest prop_strict_linear_concat_exact;
          QCheck_alcotest.to_alcotest prop_strict_region_concat_per_qubit_exact;
          QCheck_alcotest.to_alcotest prop_flexible_concat_exact;
          QCheck_alcotest.to_alcotest prop_strict_fixed_have_no_params;
          QCheck_alcotest.to_alcotest prop_flexible_single_var;
          QCheck_alcotest.to_alcotest prop_flexible_roundtrip;
          QCheck_alcotest.to_alcotest prop_flexible_deeper_than_strict ] ) ]
