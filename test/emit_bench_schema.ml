(* Prints a fixed Bench_report document; the golden test diffs it against
   examples/fixtures/bench_schema.golden.json so any change to the bench
   JSON schema is a visible, deliberate act (bump schema_version, then
   `dune promote`). *)

let () =
  print_string
    (Pqc_core.Bench_report.to_json
       { Pqc_core.Bench_report.mode = "fast";
         workers = 4;
         experiments =
           [ { Pqc_core.Bench_report.name = "uccsd-lih";
               strategy = "strict-partial";
               engine = "numeric";
               run_id = "bench:uccsd-lih/strict-partial";
               pulse_duration_ns = 945.8;
               sequential_s = 12.5;
               parallel_s = 5.0;
               speedup = 2.5;
               cache_hits = 320;
               blocks_compiled = 21;
               workers = 4;
               equal_pulse = true;
               trace =
                 [ { Pqc_core.Bench_report.span = "engine.batch";
                     count = 2;
                     total_s = 4.75 };
                   { Pqc_core.Bench_report.span = "engine.search";
                     count = 21;
                     total_s = 4.5 } ];
               metrics =
                 [ { Pqc_core.Bench_report.metric = "grape.block_s";
                     count = 21;
                     mean = 0.226;
                     p50 = 0.21;
                     p90 = 0.38;
                     p99 = 0.44;
                     max = 0.45 } ] };
             { Pqc_core.Bench_report.name = "qaoa-er8\"p1";
               strategy = "flexible-partial";
               engine = "model";
               (* "" is the pre-provenance form old readers round-trip. *)
               run_id = "";
               pulse_duration_ns = 101.25;
               sequential_s = 0.0;
               parallel_s = 0.0;
               speedup = Float.nan;
               cache_hits = 0;
               blocks_compiled = 0;
               workers = 1;
               equal_pulse = false;
               trace = [];
               metrics = [] } ] })
