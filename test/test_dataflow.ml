module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Cmat = Pqc_linalg.Cmat
module Slice = Pqc_transpile.Slice
module Dataflow = Pqc_analysis.Dataflow

(* --- unit tests: commutation --- *)

let i gate qubits = { Circuit.gate; qubits = Array.of_list qubits }

let test_commutes_known_pairs () =
  let check what expected a b =
    Alcotest.(check bool) what expected (Dataflow.commutes a b);
    Alcotest.(check bool) (what ^ " (symmetric)") expected
      (Dataflow.commutes b a)
  in
  check "disjoint supports" true (i Gate.H [ 0 ]) (i Gate.CX [ 1; 2 ]);
  check "Rz on CX control" true
    (i (Gate.Rz (Param.var 0)) [ 0 ])
    (i Gate.CX [ 0; 1 ]);
  check "X on CX target" true (i Gate.X [ 1 ]) (i Gate.CX [ 0; 1 ]);
  check "Rx on CX target" true
    (i (Gate.Rx (Param.var 0)) [ 1 ])
    (i Gate.CX [ 0; 1 ]);
  check "Rz on CX target" false
    (i (Gate.Rz (Param.var 0)) [ 1 ])
    (i Gate.CX [ 0; 1 ]);
  check "X on CX control" false (i Gate.X [ 0 ]) (i Gate.CX [ 0; 1 ]);
  check "H vs Rz same qubit" false (i Gate.H [ 0 ])
    (i (Gate.Rz (Param.var 0)) [ 0 ]);
  check "diagonal pair" true (i (Gate.Rz (Param.var 0)) [ 0 ])
    (i Gate.T [ 0 ]);
  check "CX pair sharing control" true (i Gate.CX [ 0; 1 ]) (i Gate.CX [ 0; 2 ]);
  check "CX pair sharing target" true (i Gate.CX [ 0; 2 ]) (i Gate.CX [ 1; 2 ]);
  check "CX control meets CX target" false (i Gate.CX [ 0; 1 ])
    (i Gate.CX [ 1; 2 ]);
  check "identical instructions" true (i Gate.Swap [ 0; 1 ])
    (i Gate.Swap [ 0; 1 ]);
  check "swap vs anything shared" false (i Gate.Swap [ 0; 1 ]) (i Gate.Z [ 0 ])

let test_def_use_chains () =
  let c =
    Circuit.of_gates 2
      [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.CX, [ 0; 1 ]);
        (Gate.Rz (Param.var 1), [ 1 ]); (Gate.CX, [ 0; 1 ]);
        (Gate.Rz (Param.var 0), [ 0 ]) ]
  in
  let df = Dataflow.of_circuit c in
  Alcotest.(check bool) "not monotone" false df.Dataflow.monotone;
  (match Dataflow.find_def_use df 0 with
  | Some d ->
    Alcotest.(check (list int)) "t0 gates" [ 0; 4 ] d.Dataflow.gates;
    Alcotest.(check bool) "t0 broken" false d.Dataflow.contiguous
  | None -> Alcotest.fail "t0 must have a chain");
  (match Dataflow.find_def_use df 1 with
  | Some d ->
    Alcotest.(check bool) "t1 contiguous" true d.Dataflow.contiguous
  | None -> Alcotest.fail "t1 must have a chain");
  Alcotest.(check int) "qubit 0 uses" 4 df.Dataflow.liveness.(0).Dataflow.uses;
  Alcotest.(check (option int)) "qubit 1 first use" (Some 1)
    df.Dataflow.liveness.(1).Dataflow.first_use

let test_reslice_fixture () =
  (* The bad_monotonicity fixture: Rz gates commute through CX controls,
     so reslicing recovers a monotone order. *)
  let c =
    Circuit.of_gates 2
      [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.CX, [ 0; 1 ]);
        (Gate.Rz (Param.var 1), [ 1 ]); (Gate.CX, [ 0; 1 ]);
        (Gate.Rz (Param.var 0), [ 0 ]) ]
  in
  match Dataflow.reslice c with
  | None -> Alcotest.fail "fixture must be reslicable"
  | Some c' ->
    Alcotest.(check bool) "monotone after reslice" true (Slice.is_monotone c');
    Alcotest.(check int) "same length" (Circuit.length c) (Circuit.length c');
    let theta = [| 0.3; 1.1 |] in
    Alcotest.(check bool) "same unitary" true
      (Cmat.max_abs_diff (Circuit.unitary ~theta c) (Circuit.unitary ~theta c')
      < 1e-9)

let test_dead_params () =
  let c =
    Circuit.of_gates 2
      [ (Gate.Rx (Param.var 0), [ 0 ]); (Gate.CX, [ 0; 1 ]);
        (Gate.Rz (Param.var 1), [ 1 ]); (Gate.T, [ 1 ]) ]
  in
  (match Dataflow.dead_params c with
  | [ (1, [ 2 ]) ] -> ()
  | _ -> Alcotest.fail "exactly t1@2 must be dead");
  let live =
    Circuit.of_gates 1
      [ (Gate.Rz (Param.var 0), [ 0 ]); (Gate.H, [ 0 ]) ]
  in
  Alcotest.(check bool) "H keeps the param live" true
    (Dataflow.dead_params live = [])

(* --- generators --- *)

(* Random >=1-qubit circuits over the analysis-relevant gate alphabet,
   with a small parameter pool so runs collide and break monotonicity
   often. *)
let gen_circuit ~max_qubits ~max_len =
  QCheck.Gen.(
    int_range 1 max_qubits >>= fun n ->
    int_range 0 max_len >>= fun len ->
    let qubit = int_range 0 (n - 1) in
    let gate_1q =
      oneof
        [ return Gate.H; return Gate.X; return Gate.T; return Gate.S;
          map (fun v -> Gate.Rz (Param.var v)) (int_range 0 2);
          map (fun v -> Gate.Rx (Param.var v)) (int_range 0 2) ]
    in
    let instr =
      if n = 1 then map2 (fun g q -> (g, [ q ])) gate_1q qubit
      else
        frequency
          [ (3, map2 (fun g q -> (g, [ q ])) gate_1q qubit);
            ( 1,
              qubit >>= fun a ->
              int_range 0 (n - 2) >>= fun b' ->
              let b = if b' >= a then b' + 1 else b' in
              oneof [ return Gate.CX; return Gate.CZ ] >>= fun g ->
              return (g, [ a; b ]) ) ]
    in
    list_size (return len) instr >>= fun gates ->
    return (Circuit.of_gates n gates))

let arb_circuit =
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Circuit.pp c)
    (gen_circuit ~max_qubits:3 ~max_len:14)

(* --- properties --- *)

(* Def-use chains are a function of the instruction stream, not of how
   the circuit value was constructed. *)
let prop_def_use_construction_stable =
  QCheck.Test.make ~count:200 ~name:"def-use stable across construction"
    arb_circuit (fun c ->
      let n = Circuit.n_qubits c in
      let gates =
        Array.to_list (Circuit.instrs c)
        |> List.map (fun (x : Circuit.instr) ->
               (x.gate, Array.to_list x.qubits))
      in
      (* Rebuild three ways: extend in two chunks, one gate at a time
         through Builder, and the original. *)
      let k = List.length gates / 2 in
      let chunked =
        Circuit.extend
          (Circuit.extend (Circuit.empty n) (List.filteri (fun i _ -> i < k) gates))
          (List.filteri (fun i _ -> i >= k) gates)
      in
      let b = Circuit.Builder.create n in
      List.iter (fun (g, qs) -> Circuit.Builder.add b g qs) gates;
      let built = Circuit.Builder.to_circuit b in
      let df = Dataflow.of_circuit c in
      let same (d : Dataflow.t) (d' : Dataflow.t) =
        d.Dataflow.monotone = d'.Dataflow.monotone
        && d.Dataflow.def_uses = d'.Dataflow.def_uses
        && d.Dataflow.liveness = d'.Dataflow.liveness
      in
      same df (Dataflow.of_circuit chunked)
      && same df (Dataflow.of_circuit built))

(* A successful reslice never changes the circuit's unitary. *)
let prop_reslice_preserves_unitary =
  QCheck.Test.make ~count:200 ~name:"reslice preserves unitary" arb_circuit
    (fun c ->
      match Dataflow.reslice c with
      | None -> QCheck.assume_fail ()
      | Some c' ->
        let n_params = Circuit.n_params c in
        let theta =
          Array.init n_params (fun k -> 0.37 +. (0.61 *. float_of_int k))
        in
        Slice.is_monotone c'
        && Circuit.length c = Circuit.length c'
        && Cmat.max_abs_diff
             (Circuit.unitary ~theta c)
             (Circuit.unitary ~theta c')
           < 1e-9)

(* Instructions the relation declares commuting really do commute as
   unitaries — the soundness half of the commutation analysis. *)
let prop_commutes_is_sound =
  let arb_pair =
    QCheck.make
      ~print:(fun (a, b) ->
        Format.asprintf "%a | %a" Circuit.pp a Circuit.pp b)
      QCheck.Gen.(
        gen_circuit ~max_qubits:3 ~max_len:1 >>= fun a ->
        gen_circuit ~max_qubits:3 ~max_len:1 >>= fun b ->
        return (a, b))
  in
  QCheck.Test.make ~count:300 ~name:"commutes is sound" arb_pair
    (fun (ca, cb) ->
      match (Circuit.instrs ca, Circuit.instrs cb) with
      | [| a |], [| b |] ->
        let n = 3 in
        let lift x = Circuit.of_instrs n [ x ] in
        if not (Dataflow.commutes a b) then QCheck.assume_fail ()
        else begin
          let theta = [| 0.41; 1.13; 2.71 |] in
          let u x = Circuit.unitary ~theta (lift x) in
          let ab = Cmat.mul (u b) (u a) and ba = Cmat.mul (u a) (u b) in
          Cmat.max_abs_diff ab ba < 1e-9
        end
      | _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "dataflow"
    [ ( "commutation",
        [ Alcotest.test_case "known pairs" `Quick test_commutes_known_pairs ] );
      ( "def-use",
        [ Alcotest.test_case "chains" `Quick test_def_use_chains ] );
      ( "reslice",
        [ Alcotest.test_case "fixture" `Quick test_reslice_fixture ] );
      ( "dead-params",
        [ Alcotest.test_case "trailing diagonal" `Quick test_dead_params ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_def_use_construction_stable; prop_reslice_preserves_unitary;
            prop_commutes_is_sound ] ) ]
