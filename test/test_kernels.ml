(* Kernel-equivalence suite: pins the Bigarray kernels in Cmat/Expm to
   naive reference implementations, bit for bit.  The hot kernels (tiled
   and unrolled products, fused Taylor steps, the dim-2/dim-4 expm
   specializations) are all refactorings of these textbook loops under the
   summation-order contract — every float is produced by the same chain of
   operations in the same order — so equality here is exact IEEE-754
   equality on the bits, not approximate closeness.  A kernel change that
   reorders a sum fails this suite even when it is mathematically
   equivalent, by design: bit drift would silently break the workers:1 ≡
   workers:4 determinism gate and the committed pulse baselines. *)

module Cmat = Pqc_linalg.Cmat
module Expm = Pqc_linalg.Expm
module Rng = Pqc_util.Rng

(* --- references: naive loops over Cmat.get/set, float chains spelled out --- *)

let random_mat rng r c =
  let m = Cmat.create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      Cmat.set m i j
        { Complex.re = Rng.uniform rng ~lo:(-2.0) ~hi:2.0;
          im = Rng.uniform rng ~lo:(-2.0) ~hi:2.0 }
    done
  done;
  m

let ref_identity n =
  let m = Cmat.create n n in
  for i = 0 to n - 1 do
    Cmat.set m i i Complex.one
  done;
  m

(* Naive triple loop: ascending k, accumulators from 0.0 — the order every
   product kernel (tiled, 2x2, 4x4, fused Taylor) must reproduce. *)
let ref_mul a b =
  let n = Cmat.rows a and p = Cmat.cols a and q = Cmat.cols b in
  let d = Cmat.create n q in
  for i = 0 to n - 1 do
    for j = 0 to q - 1 do
      let sre = ref 0.0 and sim = ref 0.0 in
      for k = 0 to p - 1 do
        let x = Cmat.get a i k and y = Cmat.get b k j in
        sre := !sre +. ((x.Complex.re *. y.Complex.re) -. (x.im *. y.im));
        sim := !sim +. ((x.Complex.re *. y.im) +. (x.im *. y.Complex.re))
      done;
      Cmat.set d i j { Complex.re = !sre; im = !sim }
    done
  done;
  d

let ref_scale (z : Complex.t) a =
  let d = Cmat.create (Cmat.rows a) (Cmat.cols a) in
  for i = 0 to Cmat.rows a - 1 do
    for j = 0 to Cmat.cols a - 1 do
      let x = Cmat.get a i j in
      Cmat.set d i j
        { Complex.re = (z.re *. x.Complex.re) -. (z.im *. x.im);
          im = (z.re *. x.im) +. (z.im *. x.Complex.re) }
    done
  done;
  d

let ref_axpy (z : Complex.t) x y =
  let d = Cmat.copy y in
  for i = 0 to Cmat.rows x - 1 do
    for j = 0 to Cmat.cols x - 1 do
      let v = Cmat.get x i j and w = Cmat.get d i j in
      Cmat.set d i j
        { Complex.re = w.Complex.re +. ((z.re *. v.Complex.re) -. (z.im *. v.im));
          im = w.im +. ((z.re *. v.im) +. (z.im *. v.Complex.re)) }
    done
  done;
  d

let ref_trace_of_product a b =
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to Cmat.rows a - 1 do
    for j = 0 to Cmat.cols a - 1 do
      let x = Cmat.get a i j and y = Cmat.get b j i in
      re := !re +. ((x.Complex.re *. y.Complex.re) -. (x.im *. y.im));
      im := !im +. ((x.Complex.re *. y.im) +. (x.im *. y.Complex.re))
    done
  done;
  { Complex.re = !re; im = !im }

let ref_dagger a =
  let d = Cmat.create (Cmat.cols a) (Cmat.rows a) in
  for i = 0 to Cmat.rows a - 1 do
    for j = 0 to Cmat.cols a - 1 do
      let x = Cmat.get a i j in
      Cmat.set d j i { Complex.re = x.Complex.re; im = -.x.im }
    done
  done;
  d

let ref_one_norm a =
  let best = ref 0.0 in
  for j = 0 to Cmat.cols a - 1 do
    let s = ref 0.0 in
    for i = 0 to Cmat.rows a - 1 do
      let x = Cmat.get a i j in
      s :=
        !s +. sqrt ((x.Complex.re *. x.Complex.re) +. (x.im *. x.im))
    done;
    if !s > !best then best := !s
  done;
  !best

(* The scaling-and-squaring Taylor exponential, rebuilt from the reference
   ops above: exactly Expm's algorithm (order 13, norm threshold 1/2,
   ldexp scaling), so both the generic path and the dim-2/dim-4
   specializations must reproduce it bit for bit. *)
let ref_expm a =
  let n = Cmat.rows a in
  let norm = ref_one_norm a in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (ceil (log (norm /. 0.5) /. log 2.0))
  in
  let inv = Float.ldexp 1.0 (-s) in
  let scaled = ref_scale { Complex.re = inv; im = 0.0 } a in
  let acc = ref (ref_identity n) in
  let term = ref (ref_identity n) in
  for k = 1 to 13 do
    term :=
      ref_scale { Complex.re = 1.0 /. float_of_int k; im = 0.0 }
        (ref_mul !term scaled);
    acc := ref_axpy { Complex.re = 1.0; im = 0.0 } !term !acc
  done;
  for _ = 1 to s do
    acc := ref_mul !acc !acc
  done;
  !acc

(* --- exact-bits comparison --- *)

let bits_eq_mat label a b =
  if Cmat.rows a <> Cmat.rows b || Cmat.cols a <> Cmat.cols b then
    QCheck.Test.fail_reportf "%s: dimension mismatch" label;
  for i = 0 to Cmat.rows a - 1 do
    for j = 0 to Cmat.cols a - 1 do
      let x = Cmat.get a i j and y = Cmat.get b i j in
      if
        Int64.bits_of_float x.Complex.re <> Int64.bits_of_float y.Complex.re
        || Int64.bits_of_float x.im <> Int64.bits_of_float y.im
      then
        QCheck.Test.fail_reportf "%s: entry (%d,%d) differs: (%h,%h) vs (%h,%h)"
          label i j x.Complex.re x.im y.Complex.re y.im
    done
  done;
  true

let bits_eq_c label (x : Complex.t) (y : Complex.t) =
  if
    Int64.bits_of_float x.re <> Int64.bits_of_float y.re
    || Int64.bits_of_float x.im <> Int64.bits_of_float y.im
  then QCheck.Test.fail_reportf "%s: (%h,%h) vs (%h,%h)" label x.re x.im y.re y.im;
  true

let dim_of_seed seed lo hi = lo + (seed mod (hi - lo + 1))

(* --- properties --- *)

let prop_mul_equiv =
  QCheck.Test.make ~name:"mul = naive triple loop (bits)" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = dim_of_seed seed 1 16 in
      let p = dim_of_seed (seed / 17) 1 16 in
      let q = dim_of_seed (seed / 289) 1 16 in
      let a = random_mat rng n p and b = random_mat rng p q in
      let d = Cmat.create n q in
      Cmat.mul_into ~dst:d a b;
      bits_eq_mat "mul_into" d (ref_mul a b)
      && bits_eq_mat "mul" (Cmat.mul a b) (ref_mul a b))

let prop_scale_equiv =
  QCheck.Test.make ~name:"scale = reference (bits)" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = dim_of_seed seed 1 16 and m = dim_of_seed (seed / 17) 1 16 in
      let a = random_mat rng n m in
      let z =
        { Complex.re = Rng.uniform rng ~lo:(-2.0) ~hi:2.0;
          im = Rng.uniform rng ~lo:(-2.0) ~hi:2.0 }
      in
      bits_eq_mat "scale" (Cmat.scale z a) (ref_scale z a))

let prop_axpy_equiv =
  QCheck.Test.make ~name:"axpy = reference (bits)" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = dim_of_seed seed 1 16 and m = dim_of_seed (seed / 17) 1 16 in
      let x = random_mat rng n m and y = random_mat rng n m in
      let z =
        { Complex.re = Rng.uniform rng ~lo:(-2.0) ~hi:2.0;
          im = Rng.uniform rng ~lo:(-2.0) ~hi:2.0 }
      in
      let expect = ref_axpy z x y in
      Cmat.axpy ~alpha:z ~x ~y;
      bits_eq_mat "axpy" y expect)

let prop_trace_of_product_equiv =
  QCheck.Test.make ~name:"trace_of_product = reference (bits)" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = dim_of_seed seed 1 16 in
      let a = random_mat rng n n and b = random_mat rng n n in
      let expect = ref_trace_of_product a b in
      let buf = [| 0.0; 0.0 |] in
      Cmat.trace_of_product_into ~dst:buf a b;
      bits_eq_c "trace_of_product" (Cmat.trace_of_product a b) expect
      && bits_eq_c "trace_of_product_into"
           { Complex.re = buf.(0); im = buf.(1) }
           expect)

let prop_dagger_equiv =
  QCheck.Test.make ~name:"dagger = reference (bits)" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = dim_of_seed seed 1 16 and m = dim_of_seed (seed / 17) 1 16 in
      let a = random_mat rng n m in
      bits_eq_mat "dagger" (Cmat.dagger a) (ref_dagger a))

let prop_expm_equiv =
  QCheck.Test.make
    ~name:"expm = reference scaling-squaring Taylor (bits, incl. dim 2/4)"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      (* 1..16 but biased through the specialized dims: 2 and 4 take the
         hand-unrolled paths, everything else the generic loop. *)
      let n =
        match seed mod 4 with
        | 0 -> 2
        | 1 -> 4
        | _ -> dim_of_seed (seed / 17) 1 16
      in
      let a = random_mat rng n n in
      let ws = Expm.make_ws n in
      let d = Cmat.create n n in
      Expm.expm_into ws ~dst:d a;
      bits_eq_mat "expm_into" d (ref_expm a)
      && bits_eq_mat "expm" (Expm.expm a) (ref_expm a))

(* --- aliasing preconditions: misuse must trip the asserts, not corrupt --- *)

let raises_assert f =
  match f () with
  | _ -> false
  | exception Assert_failure _ -> true

let test_mul_into_aliasing () =
  let rng = Rng.create 7 in
  let a = random_mat rng 4 4 and b = random_mat rng 4 4 in
  Alcotest.(check bool) "dst == a rejected" true
    (raises_assert (fun () -> Cmat.mul_into ~dst:a a b));
  Alcotest.(check bool) "dst == b rejected" true
    (raises_assert (fun () -> Cmat.mul_into ~dst:b a b));
  Alcotest.(check bool) "shape mismatch rejected" true
    (raises_assert (fun () ->
         Cmat.mul_into ~dst:(Cmat.create 3 3) a b))

let test_dagger_into_aliasing () =
  let rng = Rng.create 8 in
  let a = random_mat rng 4 4 in
  Alcotest.(check bool) "dst == a rejected" true
    (raises_assert (fun () -> Cmat.dagger_into ~dst:a a))

(* --- allocation: the expm hot path must not touch the minor heap --- *)

let test_expm_into_no_alloc () =
  (* [expm_into] with a prepared workspace is allocation-free for both the
     specialized (2, 4) and generic dims.  Run a few thousand calls between
     two [Gc.minor_words] readings: per-call heap growth shows up as
     thousands of words here; the slack only covers the instrumentation's
     own boxes. *)
  List.iter
    (fun n ->
      let rng = Rng.create (100 + n) in
      let a = random_mat rng n n in
      let ws = Expm.make_ws n in
      let d = Cmat.create n n in
      Expm.expm_into ws ~dst:d a;
      let w0 = Gc.minor_words () in
      for _ = 1 to 2_000 do
        Expm.expm_into ws ~dst:d a
      done;
      let dw = Gc.minor_words () -. w0 in
      Alcotest.(check bool)
        (Printf.sprintf "expm_into dim %d allocates (%.0f words / 2000 calls)"
           n dw)
        true (dw < 100.0))
    [ 2; 3; 4; 8 ]

let () =
  Alcotest.run "kernels"
    [ ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_mul_equiv;
          QCheck_alcotest.to_alcotest prop_scale_equiv;
          QCheck_alcotest.to_alcotest prop_axpy_equiv;
          QCheck_alcotest.to_alcotest prop_trace_of_product_equiv;
          QCheck_alcotest.to_alcotest prop_dagger_equiv;
          QCheck_alcotest.to_alcotest prop_expm_equiv ] );
      ( "preconditions",
        [ Alcotest.test_case "mul_into aliasing" `Quick test_mul_into_aliasing;
          Alcotest.test_case "dagger_into aliasing" `Quick
            test_dagger_into_aliasing ] );
      ( "allocation",
        [ Alcotest.test_case "expm_into allocation-free" `Quick
            test_expm_into_no_alloc ] ) ]
