module Obs = Pqc_obs.Obs
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Rng = Pqc_util.Rng
module Engine = Pqc_core.Engine
module Strategy = Pqc_core.Strategy
module Compiler = Pqc_core.Compiler
module Uccsd = Pqc_vqe.Uccsd
module Molecule = Pqc_vqe.Molecule

(* Obs state is global to the process: every test runs against a fresh,
   explicitly enabled trace and restores the disabled default on the way
   out, pass or fail. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- Lifecycle --- *)

let test_disabled_is_noop () =
  Obs.reset ();
  Alcotest.(check bool) "starts disabled" false (Obs.enabled ());
  let r = Obs.Span.with_ ~name:"ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "span still runs the body" 42 r;
  Obs.count "ignored.counter";
  Obs.gauge "ignored.gauge" 1.0;
  Obs.profile ~label:"ignored" [];
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.events ()));
  Alcotest.(check (float 0.0)) "counter untouched" 0.0
    (Obs.counter_value "ignored.counter")

(* --- Spans --- *)

let test_span_nesting_and_order () =
  with_obs @@ fun () ->
  let r =
    Obs.Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
        Obs.Span.with_ ~name:"inner" (fun () -> 7))
  in
  Alcotest.(check int) "value threads through" 7 r;
  match Obs.events () with
  | [ Obs.Span inner; Obs.Span outer ] ->
    (* Spans are recorded when they close, so the child precedes its
       parent in emission order. *)
    Alcotest.(check string) "child closes first" "inner" inner.name;
    Alcotest.(check string) "parent closes last" "outer" outer.name;
    Alcotest.(check int) "child points at parent" outer.id inner.parent;
    Alcotest.(check int) "parent is top-level" 0 outer.parent;
    Alcotest.(check bool) "ids distinct" true (inner.id <> outer.id);
    Alcotest.(check bool) "attrs preserved" true
      (List.mem ("k", "v") outer.attrs)
  | evs ->
    Alcotest.failf "expected exactly two spans, got %d events"
      (List.length evs)

let test_span_sibling_parents () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"root" (fun () ->
      Obs.Span.with_ ~name:"a" (fun () -> ());
      Obs.Span.with_ ~name:"b" (fun () -> ()));
  match Obs.events () with
  | [ Obs.Span a; Obs.Span b; Obs.Span root ] ->
    Alcotest.(check string) "first sibling" "a" a.name;
    Alcotest.(check string) "second sibling" "b" b.name;
    Alcotest.(check int) "a under root" root.id a.parent;
    Alcotest.(check int) "b under root (stack popped after a)" root.id
      b.parent
  | evs -> Alcotest.failf "expected three spans, got %d" (List.length evs)

let test_span_exception_closes () =
  with_obs @@ fun () ->
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "no") with
  | Failure _ -> ());
  (* The failed span must have been closed (with an error attribute) and
     popped, so the next span is back at top level. *)
  Obs.Span.with_ ~name:"after" (fun () -> ());
  match Obs.events () with
  | [ Obs.Span boom; Obs.Span after ] ->
    Alcotest.(check bool) "error attribute present" true
      (List.mem_assoc "error" boom.attrs);
    Alcotest.(check int) "stack unwound" 0 after.parent
  | evs -> Alcotest.failf "expected two spans, got %d" (List.length evs)

(* --- Counters, gauges, profiles, rollup --- *)

let test_counter_totals () =
  with_obs @@ fun () ->
  Obs.count "hits";
  Obs.count ~by:2.5 "hits";
  Obs.count "misses";
  Alcotest.(check (float 1e-9)) "accumulates" 3.5 (Obs.counter_value "hits");
  Alcotest.(check (float 1e-9)) "independent" 1.0
    (Obs.counter_value "misses");
  Alcotest.(check (float 0.0)) "unknown reads zero" 0.0
    (Obs.counter_value "nope");
  Alcotest.(check int) "one event per increment" 3
    (List.length (Obs.events ()))

let test_rollup_shape () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"b.span" (fun () -> ());
  Obs.Span.with_ ~name:"a.span" (fun () -> ());
  Obs.Span.with_ ~name:"b.span" (fun () -> ());
  Obs.count "not.a.span";
  let r = Obs.rollup () in
  Alcotest.(check (list string)) "counters excluded, names complete"
    [ "a.span"; "b.span" ]
    (List.sort compare (List.map (fun (n, _, _) -> n) r));
  Alcotest.(check int) "a.span count" 1
    (List.assoc "a.span" (List.map (fun (n, c, _) -> (n, c)) r));
  Alcotest.(check int) "b.span count" 2
    (List.assoc "b.span" (List.map (fun (n, c, _) -> (n, c)) r));
  (* Ordering contract: total_s descending, then count descending, then
     name ascending — deterministic even under equal totals. *)
  let ordered =
    List.map (fun (n, c, t) -> (-.t, -c, n)) r |> List.sort compare
    |> List.map (fun (_, _, n) -> n)
  in
  Alcotest.(check (list string)) "sorted by total desc with tie-breaks"
    ordered
    (List.map (fun (n, _, _) -> n) r);
  List.iter
    (fun (_, _, total) ->
      Alcotest.(check bool) "total non-negative" true (total >= 0.0))
    r

(* --- Histograms (Obs.Metrics) --- *)

let gamma = Float.pow 2.0 (1.0 /. 8.0)

let test_hist_stats () =
  with_obs @@ fun () ->
  List.iter (Obs.Metrics.observe "m") [ 1.0; 2.0; 4.0; 8.0 ];
  Obs.Metrics.observe "m" Float.nan;
  Obs.Metrics.observe "m" Float.infinity;
  Obs.Metrics.observe "m" 0.0;
  let s = Option.get (Obs.Metrics.stats "m") in
  Alcotest.(check int) "finite observations counted" 5 s.Obs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 15.0 s.Obs.Metrics.sum;
  Alcotest.(check (float 0.0)) "min sees the zero" 0.0 s.Obs.Metrics.min;
  Alcotest.(check (float 0.0)) "max" 8.0 s.Obs.Metrics.max;
  Alcotest.(check bool) "unknown name" true (Obs.Metrics.stats "nope" = None);
  Alcotest.(check bool) "unknown quantile is nan" true
    (Float.is_nan (Obs.Metrics.quantile "nope" 0.5));
  Alcotest.(check (list string)) "names sorted" [ "m" ]
    (Obs.Metrics.names ())

let test_hist_disabled_noop () =
  Obs.reset ();
  Obs.Metrics.observe "off" 1.0;
  Alcotest.(check bool) "disabled records nothing" true
    (Obs.Metrics.stats "off" = None)

let test_hist_codec_roundtrip () =
  with_obs @@ fun () ->
  List.iter (Obs.Metrics.observe "a\x1e\x1fweird") [ 0.25; 3.5; -1.0 ];
  List.iter (Obs.Metrics.observe "b") [ 1e-9; 1e9 ];
  let payload = Obs.Metrics.encode_all () in
  Alcotest.(check bool) "single line" false (String.contains payload '\n');
  let before =
    List.map
      (fun n -> (n, Option.get (Obs.Metrics.stats n), Obs.Metrics.percentiles n))
      (Obs.Metrics.names ())
  in
  Obs.Metrics.reset ();
  Alcotest.(check (list string)) "reset clears" [] (Obs.Metrics.names ());
  Obs.Metrics.absorb payload;
  let after =
    List.map
      (fun n -> (n, Option.get (Obs.Metrics.stats n), Obs.Metrics.percentiles n))
      (Obs.Metrics.names ())
  in
  Alcotest.(check bool) "stats and percentiles survive the pipe" true
    (before = after);
  (* Absorbing the same payload again doubles counts (additive merge). *)
  Obs.Metrics.absorb payload;
  let s = Option.get (Obs.Metrics.stats "b") in
  Alcotest.(check int) "absorb merges additively" 4 s.Obs.Metrics.count;
  Obs.Metrics.absorb "complete\x1fgarbage";
  Alcotest.(check int) "garbage dropped" 4
    (Option.get (Obs.Metrics.stats "b")).Obs.Metrics.count

(* Any quantile read off a log bucket is within one bucket — a factor of
   gamma = 2^(1/8) — of the exact order statistic at the same rank. *)
let prop_hist_quantile_within_bucket =
  QCheck.Test.make ~name:"p50/p90/p99 within one bucket of exact" ~count:100
    QCheck.(pair (int_range 0 100_000) (int_range 1 300))
    (fun (seed, n) ->
      with_obs @@ fun () ->
      let rng = Rng.create seed in
      let xs =
        List.init n (fun _ ->
            let mantissa = Rng.uniform rng ~lo:0.1 ~hi:10.0 in
            let expo = Rng.uniform rng ~lo:(-4.0) ~hi:4.0 in
            mantissa *. Float.pow 10.0 (Float.round expo))
      in
      List.iter (Obs.Metrics.observe "prop") xs;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let rank =
            max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n))))
          in
          let exact = sorted.(rank - 1) in
          let est = Obs.Metrics.quantile "prop" q in
          est >= exact /. gamma *. (1.0 -. 1e-9)
          && est <= exact *. gamma *. (1.0 +. 1e-9))
        [ 0.5; 0.9; 0.99 ])

(* --- Pipe codec (fork plumbing) --- *)

let test_encode_absorb_roundtrip () =
  with_obs @@ fun () ->
  Fun.protect ~finally:(fun () -> Obs.set_worker 0) @@ fun () ->
  Obs.Span.with_ ~name:"parent.span" (fun () -> ());
  let m = Obs.mark () in
  (* Simulate a forked worker: tagged tid, disjoint span ids, hostile
     attribute bytes that must survive the line-framed pipe. *)
  Obs.set_worker 2;
  Obs.Span.with_ ~name:"child.span"
    ~attrs:[ ("k", "tab\there\nand\x1e\x1frecord seps") ]
    (fun () -> ());
  Obs.count ~by:3.0 "shared.counter";
  Obs.profile ~label:"child.profile"
    [ { Obs.iteration = 4; infidelity = 0.25; learning_rate = 0.1;
        grad_norm = 2.0 } ];
  let payload = Obs.encode_since m in
  Alcotest.(check bool) "payload non-empty" true (payload <> "");
  Alcotest.(check bool) "single line (pool framing)" false
    (String.contains payload '\n' || String.contains payload '\t');
  Alcotest.(check string) "nothing fresh encodes to nothing" ""
    (Obs.encode_since (Obs.mark ()));
  (* Receiving side: a fresh parent that already has its own counter
     increments; absorb must append events and merge totals additively. *)
  Obs.reset ();
  Obs.enable ();
  Obs.set_worker 0;
  Obs.count "shared.counter";
  Obs.absorb payload;
  Alcotest.(check (float 1e-9)) "counter totals merge" 4.0
    (Obs.counter_value "shared.counter");
  let spans =
    List.filter_map
      (function
        | Obs.Span { name; attrs; tid; _ } -> Some (name, attrs, tid)
        | _ -> None)
      (Obs.events ())
  in
  (match spans with
  | [ ("child.span", attrs, tid) ] ->
    Alcotest.(check int) "worker tid preserved" 2 tid;
    Alcotest.(check (option string)) "hostile attr bytes intact"
      (Some "tab\there\nand\x1e\x1frecord seps")
      (List.assoc_opt "k" attrs)
  | _ -> Alcotest.fail "expected exactly the child span");
  match
    List.filter_map
      (function Obs.Profile { label; points; _ } -> Some (label, points) | _ -> None)
      (Obs.events ())
  with
  | [ ("child.profile", [ pt ]) ] ->
    Alcotest.(check int) "iteration" 4 pt.Obs.iteration;
    Alcotest.(check (float 1e-12)) "infidelity" 0.25 pt.Obs.infidelity;
    Alcotest.(check (float 1e-12)) "grad norm" 2.0 pt.Obs.grad_norm
  | _ -> Alcotest.fail "expected exactly the child profile"

let test_absorb_garbage_dropped () =
  with_obs @@ fun () ->
  Obs.absorb "not\x1fa\x1evalid\x1erecord at all";
  Obs.absorb "";
  Alcotest.(check int) "undecodable records dropped silently" 0
    (List.length (Obs.events ()))

(* --- Chrome export --- *)

let test_chrome_json_shape () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"spa\"n" (fun () -> Obs.count ~by:2.0 "c");
  Obs.count ~by:3.0 "c";
  Obs.gauge "g" 1.5;
  Obs.profile ~label:"p"
    [ { Obs.iteration = 1; infidelity = 0.5; learning_rate = 0.3;
        grad_norm = 1.0 } ];
  let doc = Obs.to_chrome_json () in
  Alcotest.(check bool) "traceEvents array" true (contains doc "\"traceEvents\"");
  Alcotest.(check bool) "quotes escaped" true (contains doc "spa\\\"n");
  Alcotest.(check bool) "complete spans use ph X" true
    (contains doc "\"ph\": \"X\"");
  Alcotest.(check bool) "counter carries accumulated total" true
    (contains doc "{\"c\": 5}");
  Alcotest.(check bool) "profile arrays present" true
    (contains doc "\"infidelity\": [0.5]")

let test_chrome_normalize_stable () =
  (* Two runs of the same span structure differ only in wall-clock
     timestamps; normalization must erase exactly that difference. *)
  let run () =
    with_obs @@ fun () ->
    Obs.Span.with_ ~name:"a" (fun () ->
        Obs.Span.with_ ~name:"b" (fun () -> ignore (Sys.opaque_identity 1)));
    Obs.count "k";
    Obs.to_chrome_json ~normalize:true ()
  in
  let d1 = run () and d2 = run () in
  Alcotest.(check string) "normalized docs bit-identical" d1 d2;
  Alcotest.(check bool) "raw docs differ only via timestamps" true
    (String.length (run ()) > 0)

(* --- Tracing never changes compilation output --- *)

let test_tracing_off_on_same_pulse () =
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let rng = Rng.create 11 in
  let theta =
    Array.init (Circuit.n_params c) (fun _ ->
        Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))
  in
  let compile () =
    Compiler.strict_partial ~workers:1 ~max_width:2 ~engine:Engine.model c
      ~theta
  in
  Obs.disable ();
  let untraced = compile () in
  let traced = with_obs (fun () -> compile ()) in
  Alcotest.(check bool) "pulse schedules structurally identical" true
    (untraced.Strategy.pulse = traced.Strategy.pulse);
  Alcotest.(check int64) "duration bits equal"
    (Int64.bits_of_float untraced.Strategy.duration_ns)
    (Int64.bits_of_float traced.Strategy.duration_ns)

let () =
  Alcotest.run "obs"
    [ ( "lifecycle",
        [ Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_is_noop ] );
      ( "spans",
        [ Alcotest.test_case "nesting and order" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "sibling parents" `Quick
            test_span_sibling_parents;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes ] );
      ( "metrics",
        [ Alcotest.test_case "counter totals" `Quick test_counter_totals;
          Alcotest.test_case "rollup shape" `Quick test_rollup_shape ] );
      ( "histograms",
        [ Alcotest.test_case "stats and edge values" `Quick test_hist_stats;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_hist_disabled_noop;
          Alcotest.test_case "codec round-trip and merge" `Quick
            test_hist_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_hist_quantile_within_bucket ] );
      ( "pipe-codec",
        [ Alcotest.test_case "encode/absorb round-trip" `Quick
            test_encode_absorb_roundtrip;
          Alcotest.test_case "garbage dropped" `Quick
            test_absorb_garbage_dropped ] );
      ( "export",
        [ Alcotest.test_case "chrome json shape" `Quick
            test_chrome_json_shape;
          Alcotest.test_case "normalized output stable" `Quick
            test_chrome_normalize_stable ] );
      ( "determinism",
        [ Alcotest.test_case "tracing off/on same pulse" `Quick
            test_tracing_off_on_same_pulse ] ) ]
