module Obs = Pqc_obs.Obs
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Rng = Pqc_util.Rng
module Engine = Pqc_core.Engine
module Strategy = Pqc_core.Strategy
module Compiler = Pqc_core.Compiler
module Uccsd = Pqc_vqe.Uccsd
module Molecule = Pqc_vqe.Molecule

(* Obs state is global to the process: every test runs against a fresh,
   explicitly enabled trace and restores the disabled default on the way
   out, pass or fail. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- Lifecycle --- *)

let test_disabled_is_noop () =
  Obs.reset ();
  Alcotest.(check bool) "starts disabled" false (Obs.enabled ());
  let r = Obs.Span.with_ ~name:"ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "span still runs the body" 42 r;
  Obs.count "ignored.counter";
  Obs.gauge "ignored.gauge" 1.0;
  Obs.profile ~label:"ignored" [];
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.events ()));
  Alcotest.(check (float 0.0)) "counter untouched" 0.0
    (Obs.counter_value "ignored.counter")

(* --- Spans --- *)

let test_span_nesting_and_order () =
  with_obs @@ fun () ->
  let r =
    Obs.Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
        Obs.Span.with_ ~name:"inner" (fun () -> 7))
  in
  Alcotest.(check int) "value threads through" 7 r;
  match Obs.events () with
  | [ Obs.Span inner; Obs.Span outer ] ->
    (* Spans are recorded when they close, so the child precedes its
       parent in emission order. *)
    Alcotest.(check string) "child closes first" "inner" inner.name;
    Alcotest.(check string) "parent closes last" "outer" outer.name;
    Alcotest.(check int) "child points at parent" outer.id inner.parent;
    Alcotest.(check int) "parent is top-level" 0 outer.parent;
    Alcotest.(check bool) "ids distinct" true (inner.id <> outer.id);
    Alcotest.(check bool) "attrs preserved" true
      (List.mem ("k", "v") outer.attrs)
  | evs ->
    Alcotest.failf "expected exactly two spans, got %d events"
      (List.length evs)

let test_span_sibling_parents () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"root" (fun () ->
      Obs.Span.with_ ~name:"a" (fun () -> ());
      Obs.Span.with_ ~name:"b" (fun () -> ()));
  match Obs.events () with
  | [ Obs.Span a; Obs.Span b; Obs.Span root ] ->
    Alcotest.(check string) "first sibling" "a" a.name;
    Alcotest.(check string) "second sibling" "b" b.name;
    Alcotest.(check int) "a under root" root.id a.parent;
    Alcotest.(check int) "b under root (stack popped after a)" root.id
      b.parent
  | evs -> Alcotest.failf "expected three spans, got %d" (List.length evs)

let test_span_exception_closes () =
  with_obs @@ fun () ->
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "no") with
  | Failure _ -> ());
  (* The failed span must have been closed (with an error attribute) and
     popped, so the next span is back at top level. *)
  Obs.Span.with_ ~name:"after" (fun () -> ());
  match Obs.events () with
  | [ Obs.Span boom; Obs.Span after ] ->
    Alcotest.(check bool) "error attribute present" true
      (List.mem_assoc "error" boom.attrs);
    Alcotest.(check int) "stack unwound" 0 after.parent
  | evs -> Alcotest.failf "expected two spans, got %d" (List.length evs)

(* --- Counters, gauges, profiles, rollup --- *)

let test_counter_totals () =
  with_obs @@ fun () ->
  Obs.count "hits";
  Obs.count ~by:2.5 "hits";
  Obs.count "misses";
  Alcotest.(check (float 1e-9)) "accumulates" 3.5 (Obs.counter_value "hits");
  Alcotest.(check (float 1e-9)) "independent" 1.0
    (Obs.counter_value "misses");
  Alcotest.(check (float 0.0)) "unknown reads zero" 0.0
    (Obs.counter_value "nope");
  Alcotest.(check int) "one event per increment" 3
    (List.length (Obs.events ()))

let test_rollup_shape () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"b.span" (fun () -> ());
  Obs.Span.with_ ~name:"a.span" (fun () -> ());
  Obs.Span.with_ ~name:"b.span" (fun () -> ());
  Obs.count "not.a.span";
  let r = Obs.rollup () in
  Alcotest.(check (list string)) "counters excluded, names complete"
    [ "a.span"; "b.span" ]
    (List.sort compare (List.map (fun (n, _, _) -> n) r));
  Alcotest.(check int) "a.span count" 1
    (List.assoc "a.span" (List.map (fun (n, c, _) -> (n, c)) r));
  Alcotest.(check int) "b.span count" 2
    (List.assoc "b.span" (List.map (fun (n, c, _) -> (n, c)) r));
  (* Ordering contract: total_s descending, then count descending, then
     name ascending — deterministic even under equal totals. *)
  let ordered =
    List.map (fun (n, c, t) -> (-.t, -c, n)) r |> List.sort compare
    |> List.map (fun (_, _, n) -> n)
  in
  Alcotest.(check (list string)) "sorted by total desc with tie-breaks"
    ordered
    (List.map (fun (n, _, _) -> n) r);
  List.iter
    (fun (_, _, total) ->
      Alcotest.(check bool) "total non-negative" true (total >= 0.0))
    r

(* --- Histograms (Obs.Metrics) --- *)

let gamma = Float.pow 2.0 (1.0 /. 8.0)

let test_hist_stats () =
  with_obs @@ fun () ->
  List.iter (Obs.Metrics.observe "m") [ 1.0; 2.0; 4.0; 8.0 ];
  Obs.Metrics.observe "m" Float.nan;
  Obs.Metrics.observe "m" Float.infinity;
  Obs.Metrics.observe "m" 0.0;
  let s = Option.get (Obs.Metrics.stats "m") in
  Alcotest.(check int) "finite observations counted" 5 s.Obs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 15.0 s.Obs.Metrics.sum;
  Alcotest.(check (float 0.0)) "min sees the zero" 0.0 s.Obs.Metrics.min;
  Alcotest.(check (float 0.0)) "max" 8.0 s.Obs.Metrics.max;
  Alcotest.(check bool) "unknown name" true (Obs.Metrics.stats "nope" = None);
  Alcotest.(check bool) "unknown quantile is nan" true
    (Float.is_nan (Obs.Metrics.quantile "nope" 0.5));
  Alcotest.(check (list string)) "names sorted" [ "m" ]
    (Obs.Metrics.names ())

let test_hist_disabled_noop () =
  Obs.reset ();
  Obs.Metrics.observe "off" 1.0;
  Alcotest.(check bool) "disabled records nothing" true
    (Obs.Metrics.stats "off" = None)

let test_hist_codec_roundtrip () =
  with_obs @@ fun () ->
  List.iter (Obs.Metrics.observe "a\x1e\x1fweird") [ 0.25; 3.5; -1.0 ];
  List.iter (Obs.Metrics.observe "b") [ 1e-9; 1e9 ];
  let payload = Obs.Metrics.encode_all () in
  Alcotest.(check bool) "single line" false (String.contains payload '\n');
  let before =
    List.map
      (fun n -> (n, Option.get (Obs.Metrics.stats n), Obs.Metrics.percentiles n))
      (Obs.Metrics.names ())
  in
  Obs.Metrics.reset ();
  Alcotest.(check (list string)) "reset clears" [] (Obs.Metrics.names ());
  Obs.Metrics.absorb payload;
  let after =
    List.map
      (fun n -> (n, Option.get (Obs.Metrics.stats n), Obs.Metrics.percentiles n))
      (Obs.Metrics.names ())
  in
  Alcotest.(check bool) "stats and percentiles survive the pipe" true
    (before = after);
  (* Absorbing the same payload again doubles counts (additive merge). *)
  Obs.Metrics.absorb payload;
  let s = Option.get (Obs.Metrics.stats "b") in
  Alcotest.(check int) "absorb merges additively" 4 s.Obs.Metrics.count;
  Obs.Metrics.absorb "complete\x1fgarbage";
  Alcotest.(check int) "garbage dropped" 4
    (Option.get (Obs.Metrics.stats "b")).Obs.Metrics.count

(* Any quantile read off a log bucket is within one bucket — a factor of
   gamma = 2^(1/8) — of the exact order statistic at the same rank. *)
let prop_hist_quantile_within_bucket =
  QCheck.Test.make ~name:"p50/p90/p99 within one bucket of exact" ~count:100
    QCheck.(pair (int_range 0 100_000) (int_range 1 300))
    (fun (seed, n) ->
      with_obs @@ fun () ->
      let rng = Rng.create seed in
      let xs =
        List.init n (fun _ ->
            let mantissa = Rng.uniform rng ~lo:0.1 ~hi:10.0 in
            let expo = Rng.uniform rng ~lo:(-4.0) ~hi:4.0 in
            mantissa *. Float.pow 10.0 (Float.round expo))
      in
      List.iter (Obs.Metrics.observe "prop") xs;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let rank =
            max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n))))
          in
          let exact = sorted.(rank - 1) in
          let est = Obs.Metrics.quantile "prop" q in
          est >= exact /. gamma *. (1.0 -. 1e-9)
          && est <= exact *. gamma *. (1.0 +. 1e-9))
        [ 0.5; 0.9; 0.99 ])

(* --- Pipe codec (fork plumbing) --- *)

let test_encode_absorb_roundtrip () =
  with_obs @@ fun () ->
  Fun.protect ~finally:(fun () -> Obs.set_worker 0) @@ fun () ->
  Obs.Span.with_ ~name:"parent.span" (fun () -> ());
  let m = Obs.mark () in
  (* Simulate a forked worker: tagged tid, disjoint span ids, hostile
     attribute bytes that must survive the line-framed pipe. *)
  Obs.set_worker 2;
  Obs.Span.with_ ~name:"child.span"
    ~attrs:[ ("k", "tab\there\nand\x1e\x1frecord seps") ]
    (fun () -> ());
  Obs.count ~by:3.0 "shared.counter";
  Obs.profile ~label:"child.profile"
    [ { Obs.iteration = 4; infidelity = 0.25; learning_rate = 0.1;
        grad_norm = 2.0 } ];
  let payload = Obs.encode_since m in
  Alcotest.(check bool) "payload non-empty" true (payload <> "");
  Alcotest.(check bool) "single line (pool framing)" false
    (String.contains payload '\n' || String.contains payload '\t');
  Alcotest.(check string) "nothing fresh encodes to nothing" ""
    (Obs.encode_since (Obs.mark ()));
  (* Receiving side: a fresh parent that already has its own counter
     increments; absorb must append events and merge totals additively. *)
  Obs.reset ();
  Obs.enable ();
  Obs.set_worker 0;
  Obs.count "shared.counter";
  Obs.absorb payload;
  Alcotest.(check (float 1e-9)) "counter totals merge" 4.0
    (Obs.counter_value "shared.counter");
  let spans =
    List.filter_map
      (function
        | Obs.Span { name; attrs; tid; _ } -> Some (name, attrs, tid)
        | _ -> None)
      (Obs.events ())
  in
  (match spans with
  | [ ("child.span", attrs, tid) ] ->
    Alcotest.(check int) "worker tid preserved" 2 tid;
    Alcotest.(check (option string)) "hostile attr bytes intact"
      (Some "tab\there\nand\x1e\x1frecord seps")
      (List.assoc_opt "k" attrs)
  | _ -> Alcotest.fail "expected exactly the child span");
  match
    List.filter_map
      (function Obs.Profile { label; points; _ } -> Some (label, points) | _ -> None)
      (Obs.events ())
  with
  | [ ("child.profile", [ pt ]) ] ->
    Alcotest.(check int) "iteration" 4 pt.Obs.iteration;
    Alcotest.(check (float 1e-12)) "infidelity" 0.25 pt.Obs.infidelity;
    Alcotest.(check (float 1e-12)) "grad norm" 2.0 pt.Obs.grad_norm
  | _ -> Alcotest.fail "expected exactly the child profile"

let test_absorb_garbage_dropped () =
  with_obs @@ fun () ->
  Obs.absorb "not\x1fa\x1evalid\x1erecord at all";
  Obs.absorb "";
  Alcotest.(check int) "undecodable records dropped silently" 0
    (List.length (Obs.events ()))

(* --- Chrome export --- *)

let test_chrome_json_shape () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"spa\"n" (fun () -> Obs.count ~by:2.0 "c");
  Obs.count ~by:3.0 "c";
  Obs.gauge "g" 1.5;
  Obs.profile ~label:"p"
    [ { Obs.iteration = 1; infidelity = 0.5; learning_rate = 0.3;
        grad_norm = 1.0 } ];
  let doc = Obs.to_chrome_json () in
  Alcotest.(check bool) "traceEvents array" true (contains doc "\"traceEvents\"");
  Alcotest.(check bool) "quotes escaped" true (contains doc "spa\\\"n");
  Alcotest.(check bool) "complete spans use ph X" true
    (contains doc "\"ph\": \"X\"");
  Alcotest.(check bool) "counter carries accumulated total" true
    (contains doc "{\"c\": 5}");
  Alcotest.(check bool) "profile arrays present" true
    (contains doc "\"infidelity\": [0.5]")

let test_chrome_normalize_stable () =
  (* Two runs of the same span structure differ only in wall-clock
     timestamps; normalization must erase exactly that difference. *)
  let run () =
    with_obs @@ fun () ->
    Obs.Span.with_ ~name:"a" (fun () ->
        Obs.Span.with_ ~name:"b" (fun () -> ignore (Sys.opaque_identity 1)));
    Obs.count "k";
    Obs.to_chrome_json ~normalize:true ()
  in
  let d1 = run () and d2 = run () in
  Alcotest.(check string) "normalized docs bit-identical" d1 d2;
  Alcotest.(check bool) "raw docs differ only via timestamps" true
    (String.length (run ()) > 0)

(* --- Tracing never changes compilation output --- *)

let test_tracing_off_on_same_pulse () =
  let c = Compiler.prepare (Uccsd.ansatz Molecule.h2) in
  let rng = Rng.create 11 in
  let theta =
    Array.init (Circuit.n_params c) (fun _ ->
        Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))
  in
  let compile () =
    Compiler.strict_partial ~workers:1 ~max_width:2 ~engine:Engine.model c
      ~theta
  in
  Obs.disable ();
  let untraced = compile () in
  let traced = with_obs (fun () -> compile ()) in
  Alcotest.(check bool) "pulse schedules structurally identical" true
    (untraced.Strategy.pulse = traced.Strategy.pulse);
  Alcotest.(check int64) "duration bits equal"
    (Int64.bits_of_float untraced.Strategy.duration_ns)
    (Int64.bits_of_float traced.Strategy.duration_ns)

(* --- Clock indirection --- *)

let test_clock_override () =
  with_obs @@ fun () ->
  let t = ref 100.0 in
  Obs.Clock.set (fun () -> !t);
  Fun.protect ~finally:Obs.Clock.reset @@ fun () ->
  Obs.Span.with_ ~name:"fake" (fun () -> t := !t +. 2.5);
  match List.filter (function Obs.Span _ -> true | _ -> false) (Obs.events ()) with
  | [ Obs.Span s ] ->
    Alcotest.(check (float 1e-9)) "span duration from the installed clock"
      2.5 s.dur
  | _ -> Alcotest.fail "expected exactly one span"

(* --- Correlation contexts --- *)

let test_ctx_mint_deterministic () =
  Obs.reset ();
  let a = Obs.Ctx.mint "compile:x" in
  let b = Obs.Ctx.mint "compile:x" in
  Obs.reset ();
  let a' = Obs.Ctx.mint "compile:x" in
  Alcotest.(check bool) "distinct within a run" true (a <> b);
  Alcotest.(check string) "counter restarts on reset" a a';
  Alcotest.(check string) "derive appends the item index" (a ^ "#3")
    (Obs.Ctx.derive a 3);
  Alcotest.(check (option string)) "no ambient context by default" None
    (Obs.Ctx.current ());
  let inner =
    Obs.Ctx.with_ctx (Some a) (fun () -> Obs.Ctx.current ())
  in
  Alcotest.(check (option string)) "ambient inside with_ctx" (Some a) inner;
  Alcotest.(check (option string)) "restored after with_ctx" None
    (Obs.Ctx.current ())

let test_ctx_stamps_spans () =
  with_obs @@ fun () ->
  Obs.Ctx.with_ctx (Some "r007-cafe") (fun () ->
      Obs.Span.with_ ~name:"inside" (fun () -> ()));
  match List.filter (function Obs.Span _ -> true | _ -> false) (Obs.events ()) with
  | [ Obs.Span s ] ->
    Alcotest.(check (option string)) "span carries run_id attr"
      (Some "r007-cafe")
      (List.assoc_opt "run_id" s.attrs)
  | _ -> Alcotest.fail "expected exactly one span"

(* --- Sampling --- *)

let test_sampling_stride_keeps_metrics_exact () =
  with_obs @@ fun () ->
  Obs.set_trace_sample 0.25;
  Fun.protect ~finally:(fun () -> Obs.set_trace_sample 1.0) @@ fun () ->
  for _ = 1 to 20 do
    Obs.Span.with_ ~name:"sampled" (fun () -> ())
  done;
  let spans =
    List.length
      (List.filter (function Obs.Span _ -> true | _ -> false) (Obs.events ()))
  in
  Alcotest.(check int) "stride 4 keeps 5 of 20 span events" 5 spans;
  (* The histogram registry is never sampled: exact counts at any rate. *)
  Alcotest.(check int) "histogram saw all 20" 20
    (Option.get (Obs.Metrics.stats "sampled")).Obs.Metrics.count

(* --- Flight recorder --- *)

let test_flight_ring_wrap () =
  Obs.Flight.set_capacity 4;
  Fun.protect ~finally:(fun () -> Obs.Flight.set_capacity 256) @@ fun () ->
  for i = 0 to 5 do
    Obs.Flight.record ~kind:"k" ~run_id:"r" (Printf.sprintf "e%d" i)
  done;
  let es = Obs.Flight.entries () in
  Alcotest.(check int) "window is the capacity" 4 (List.length es);
  Alcotest.(check (list string)) "oldest evicted, order preserved"
    [ "e2"; "e3"; "e4"; "e5" ]
    (List.map (fun e -> e.Obs.Flight.f_detail) es);
  Alcotest.(check (list int)) "seq survives the wrap" [ 2; 3; 4; 5 ]
    (List.map (fun e -> e.Obs.Flight.f_seq) es);
  Obs.Flight.reset ();
  Alcotest.(check int) "reset empties the window" 0
    (List.length (Obs.Flight.entries ()))

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqc-obs-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir d 0o700;
  d

let test_flight_dump () =
  Obs.Flight.set_capacity 8;
  Fun.protect ~finally:(fun () -> Obs.Flight.set_capacity 256) @@ fun () ->
  let dir = temp_dir () in
  Alcotest.(check (option string)) "empty ring dumps nothing" None
    (Obs.Flight.dump ~dir ~reason:"empty" ());
  Obs.Flight.record ~kind:"span" ~run_id:"r001-aa" "pool.item";
  Obs.Flight.record ~kind:"pool.kill" "SIGKILL worker 2";
  match Obs.Flight.dump ~dir ~reason:"test.kill" () with
  | None -> Alcotest.fail "dump produced no file"
  | Some path ->
    let ic = open_in path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Alcotest.(check bool) "header names the reason" true
      (contains body "reason=test.kill");
    Alcotest.(check bool) "entry carries run_id" true
      (contains body "r001-aa");
    Alcotest.(check bool) "entry carries detail" true
      (contains body "SIGKILL worker 2");
    Alcotest.(check bool) "dump file name embeds the pid" true
      (contains (Filename.basename path)
         (string_of_int (Unix.getpid ())))

(* --- Shared escaper: hostile bytes always re-parse --- *)

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"escape_string round-trips arbitrary bytes"
    ~count:500
    QCheck.(string_gen_of_size Gen.(int_range 0 64) Gen.(map Char.chr (int_bound 255)))
    (fun s ->
      match Pqc_util.Jsonx.parse (Pqc_util.Jsonx.escape_string s) with
      | Ok (Pqc_util.Jsonx.Str s') -> s' = s
      | Ok _ -> QCheck.Test.fail_report "parsed to a non-string"
      | Error e -> QCheck.Test.fail_reportf "did not re-parse: %s" e)

(* --- Prometheus exposition --- *)

let test_prometheus_rendering () =
  with_obs @@ fun () ->
  Obs.Metrics.observe "block_s" 0.5;
  Obs.Metrics.observe "block_s" 1.5;
  Obs.Metrics.observe "block_s" (-1.0);
  Obs.count ~by:3.0 "engine.searches";
  Obs.gauge "pool.active" 2.0;
  let doc = Obs.Metrics.prometheus () in
  Alcotest.(check bool) "histogram TYPE line" true
    (contains doc "# TYPE pqc_block_s histogram");
  Alcotest.(check bool) "counter TYPE line" true
    (contains doc "# TYPE pqc_engine_searches_total counter");
  Alcotest.(check bool) "gauge TYPE line" true
    (contains doc "# TYPE pqc_pool_active gauge");
  Alcotest.(check bool) "self-overhead gauge exposed" true
    (contains doc "pqc_obs_overhead_s");
  Alcotest.(check bool) "+Inf bucket present" true
    (contains doc "le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count exact" true
    (contains doc "pqc_block_s_count 3");
  (* Cumulative bucket counts must be monotonically non-decreasing. *)
  let lines = String.split_on_char '\n' doc in
  let buckets =
    List.filter_map
      (fun l ->
        if String.length l > 17 && String.sub l 0 17 = "pqc_block_s_bucke" then
          match String.rindex_opt l ' ' with
          | Some i ->
            int_of_string_opt
              (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      lines
  in
  Alcotest.(check bool) "at least two bucket series" true
    (List.length buckets >= 2);
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "bucket series cumulative" true (mono buckets)

let test_prometheus_agg_matches_live () =
  (* The offline aggregator renders the same histogram series the live
     registry does — the property the CI checker leans on when it
     compares a fleet export against the rollup. *)
  with_obs @@ fun () ->
  Obs.Metrics.observe "m" 0.25;
  Obs.Metrics.observe "m" 4.0;
  let line = Obs.Metrics.encode_all () in
  let agg = Obs.Metrics.Agg.create () in
  Obs.Metrics.Agg.absorb agg line;
  let doc = Obs.Metrics.Agg.prometheus agg in
  Alcotest.(check bool) "aggregated count matches" true
    (contains doc "pqc_m_count 2");
  Alcotest.(check bool) "aggregated +Inf equals count" true
    (contains doc "le=\"+Inf\"} 2")

(* --- Flamegraph --- *)

let traced_trace () =
  with_obs @@ fun () ->
  Obs.Span.with_ ~name:"root" (fun () ->
      Obs.Span.with_ ~name:"child" (fun () ->
          Obs.Span.with_ ~name:"leaf" (fun () -> ignore (Sys.opaque_identity 1)));
      Obs.Span.with_ ~name:"child" (fun () -> ()));
  Obs.to_chrome_json ()

let test_flamegraph_folded_output () =
  let doc = traced_trace () in
  match Obs.flamegraph_of_chrome ~mode:`Count doc with
  | Error e -> Alcotest.failf "flamegraph failed: %s" e
  | Ok folded ->
    Alcotest.(check bool) "leaf stack present" true
      (contains folded "root;child;leaf 1");
    Alcotest.(check bool) "sibling spans aggregate" true
      (contains folded "root;child 2")

let test_flamegraph_deterministic () =
  (* `Count weighting is a pure function of the span tree: two runs of
     the same workload must fold identically despite differing clocks. *)
  let f1 =
    Result.get_ok (Obs.flamegraph_of_chrome ~mode:`Count (traced_trace ()))
  in
  let f2 =
    Result.get_ok (Obs.flamegraph_of_chrome ~mode:`Count (traced_trace ()))
  in
  Alcotest.(check string) "folded output bit-identical" f1 f2;
  match Obs.flamegraph_of_chrome "{ not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* --- Overhead regression --- *)

let test_overhead_bounded () =
  with_obs @@ fun () ->
  let spans = 10_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to spans do
    Obs.Span.with_ ~name:"overhead.probe" (fun () -> ())
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let overhead = Obs.overhead_seconds () in
  Alcotest.(check bool) "overhead measured" true (overhead > 0.0);
  Alcotest.(check bool) "overhead below wall clock" true (overhead <= elapsed);
  (* Generous absolute bound: 50us per span would still be two orders of
     magnitude above the measured cost, so this only catches a
     catastrophic regression (accidental allocation/IO on the hot path),
     never scheduler noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "per-span overhead %.2fus under 50us"
       (1e6 *. overhead /. float_of_int spans))
    true
    (overhead /. float_of_int spans < 50e-6)

let () =
  Alcotest.run "obs"
    [ ( "lifecycle",
        [ Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_is_noop ] );
      ( "spans",
        [ Alcotest.test_case "nesting and order" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "sibling parents" `Quick
            test_span_sibling_parents;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes ] );
      ( "metrics",
        [ Alcotest.test_case "counter totals" `Quick test_counter_totals;
          Alcotest.test_case "rollup shape" `Quick test_rollup_shape ] );
      ( "histograms",
        [ Alcotest.test_case "stats and edge values" `Quick test_hist_stats;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_hist_disabled_noop;
          Alcotest.test_case "codec round-trip and merge" `Quick
            test_hist_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_hist_quantile_within_bucket ] );
      ( "pipe-codec",
        [ Alcotest.test_case "encode/absorb round-trip" `Quick
            test_encode_absorb_roundtrip;
          Alcotest.test_case "garbage dropped" `Quick
            test_absorb_garbage_dropped ] );
      ( "export",
        [ Alcotest.test_case "chrome json shape" `Quick
            test_chrome_json_shape;
          Alcotest.test_case "normalized output stable" `Quick
            test_chrome_normalize_stable ] );
      ( "determinism",
        [ Alcotest.test_case "tracing off/on same pulse" `Quick
            test_tracing_off_on_same_pulse ] );
      ( "clock",
        [ Alcotest.test_case "span durations follow the installed clock"
            `Quick test_clock_override ] );
      ( "ctx",
        [ Alcotest.test_case "mint is deterministic" `Quick
            test_ctx_mint_deterministic;
          Alcotest.test_case "ambient context stamps spans" `Quick
            test_ctx_stamps_spans ] );
      ( "sampling",
        [ Alcotest.test_case "stride thins spans, metrics stay exact"
            `Quick test_sampling_stride_keeps_metrics_exact ] );
      ( "flight",
        [ Alcotest.test_case "ring wraps oldest-first" `Quick
            test_flight_ring_wrap;
          Alcotest.test_case "dump writes the window" `Quick
            test_flight_dump ] );
      ( "escaper",
        [ QCheck_alcotest.to_alcotest prop_escape_roundtrip ] );
      ( "prometheus",
        [ Alcotest.test_case "rendering and bucket monotonicity" `Quick
            test_prometheus_rendering;
          Alcotest.test_case "aggregator matches live registry" `Quick
            test_prometheus_agg_matches_live ] );
      ( "flamegraph",
        [ Alcotest.test_case "folded stacks from parent ids" `Quick
            test_flamegraph_folded_output;
          Alcotest.test_case "count mode deterministic" `Quick
            test_flamegraph_deterministic ] );
      ( "overhead",
        [ Alcotest.test_case "per-span cost bounded" `Quick
            test_overhead_bounded ] ) ]
