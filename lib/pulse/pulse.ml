module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit

type samples = { dt : float; controls : float array array }

type segment =
  | Lookup of { gate_name : string; duration : float }
  | Optimized of { label : string; duration : float; samples : samples option }

(* Segments are stored newest-first so [append] is an O(1) cons; the
   paper's strict-partial assembly appends one segment per gate or block
   and the old [segments @ [s]] made deep-circuit compilation O(n²).
   The representation is canonical (same logical schedule ⇒ same value),
   so structural equality on [t] still compares schedules. *)
type t = { rev_segments : segment list; duration : float }

let empty = { rev_segments = []; duration = 0.0 }
let duration t = t.duration
let segments t = List.rev t.rev_segments
let length t = List.length t.rev_segments

let segment_duration = function
  | Lookup { duration; _ } | Optimized { duration; _ } -> duration

let of_segments segments =
  { rev_segments = List.rev segments;
    duration = List.fold_left (fun acc s -> acc +. segment_duration s) 0.0 segments }

let append t s =
  { rev_segments = s :: t.rev_segments;
    duration = t.duration +. segment_duration s }

let concat a b =
  { rev_segments = b.rev_segments @ a.rev_segments;
    duration = a.duration +. b.duration }

let lookup_gate (i : Circuit.instr) =
  Lookup { gate_name = Gate.name i.gate; duration = Gate_times.instr_duration i }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schedule\":[";
  let t0 = ref 0.0 in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      let name, duration, samples =
        match s with
        | Lookup { gate_name; duration } -> (gate_name, duration, None)
        | Optimized { label; duration; samples } -> (label, duration, samples)
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"t0\":%.3f,\"duration\":%.3f"
           (json_escape name) !t0 duration);
      (match samples with
      | None -> ()
      | Some { dt; controls } ->
        Buffer.add_string buf (Printf.sprintf ",\"dt\":%.4f,\"samples\":[" dt);
        Array.iteri
          (fun ch row ->
            if ch > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '[';
            Array.iteri
              (fun k v ->
                if k > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf (Printf.sprintf "%.5f" v))
              row;
            Buffer.add_char buf ']')
          controls;
        Buffer.add_char buf ']');
      Buffer.add_char buf '}';
      t0 := !t0 +. duration)
    (segments t);
  Buffer.add_string buf (Printf.sprintf "],\"total_duration\":%.3f}" t.duration);
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "pulse[%.1f ns, %d segments]@." t.duration (length t);
  List.iter
    (fun s ->
      match s with
      | Lookup { gate_name; duration } ->
        Format.fprintf fmt "  lookup %-6s %5.1f ns@." gate_name duration
      | Optimized { label; duration; _ } ->
        Format.fprintf fmt "  grape  %-6s %5.1f ns@." label duration)
    (segments t)
