module Circuit = Pqc_quantum.Circuit
(** Machine-level pulse schedules.

    A pulse schedule is what compilation ultimately produces: a timed
    sequence of control segments.  Segments are either table lookups (a
    named gate pulse from {!Gate_times}) or optimized pulses produced by
    GRAPE (carrying their discovered duration and, when run numerically,
    the piecewise-constant control samples).  Concatenation is the runtime
    operation of gate-based and strict partial compilation. *)

type samples = {
  dt : float;  (** Sample period, ns. *)
  controls : float array array;  (** [controls.(channel).(step)]. *)
}

type segment =
  | Lookup of { gate_name : string; duration : float }
      (** A precompiled per-gate pulse from the lookup table. *)
  | Optimized of { label : string; duration : float; samples : samples option }
      (** A GRAPE-optimized pulse for a whole subcircuit. *)

type t
(** A schedule: ordered segments plus their total duration.  The
    representation is abstract (segments are kept newest-first so
    {!append} is O(1) rather than O(n)); it stays canonical, so
    structural equality / polymorphic compare on [t] still compare
    schedules.  Use {!segments} for the segments in schedule order. *)

val empty : t

val duration : t -> float
(** Sum of segment durations (segments are serial; any available
    parallelism is already folded into each segment's duration by the
    scheduler). *)

val segments : t -> segment list
(** Segments in schedule order (earliest first).  O(n): reverses the
    internal list — fine for export/inspection, but prefer {!length} /
    {!duration} in hot paths. *)

val length : t -> int
(** Number of segments. *)

val segment_duration : segment -> float

val of_segments : segment list -> t

val append : t -> segment -> t
(** O(1). *)

val concat : t -> t -> t

val lookup_gate : Circuit.instr -> segment
(** Table-lookup segment for one gate. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** OpenPulse-flavoured JSON export of the schedule: a [pulse_library] of
    named segments (with [samples] for numerically optimized pulses) and a
    serial [schedule] of (name, t0, duration) events — the hand-off format
    for pulse-level backends the paper's Section 10 anticipates. *)
