module Cmat = Pqc_linalg.Cmat
(** GRadient Ascent Pulse Engineering (Section 5).

    Finds piecewise-constant control fields u_j(t) for a {!Hamiltonian}
    such that the time-ordered product of slice propagators
    exp(-i dt H(u(t_k))) realizes a target unitary.  Cost is the
    phase-invariant trace infidelity plus amplitude and smoothness
    penalties; gradients are computed analytically with the standard
    first-order rule dU_k/du_jk ~ -i dt H_j U_k (exact as dt -> 0) and fed
    to ADAM with a decaying learning rate — the two hyperparameters that
    flexible partial compilation pre-tunes per subcircuit.

    {!minimal_time} performs the paper's binary search for the shortest
    pulse duration that still reaches the target fidelity (Section 5.3). *)

type hyperparams = { learning_rate : float; decay : float }
(** Effective learning rate at iteration t is
    [learning_rate *. decay ** t]. *)

type settings = {
  dt : float;  (** Control sample period, ns. *)
  max_iters : int;
  target_fidelity : float;  (** Convergence threshold (paper: 0.999). *)
  hyperparams : hyperparams;
  amp_penalty : float;  (** Weight of the (u/u_max)^2 cost term. *)
  smoothness_penalty : float;
      (** Weight of the finite-difference smoothness cost term. *)
  envelope : bool;
      (** Additionally pin pulse endpoints to zero (with the smoothness
          term, this pushes solutions toward smooth envelopes — the
          "aggressive pulse regularization" of Section 8.3). *)
  seed : int;  (** Seed for the random initial controls. *)
}

val default_settings : settings
(** The paper's standard mode: dt = 0.05 ns (20 GSa/s), fidelity 0.999,
    light regularization. *)

val fast_settings : settings
(** Coarser time step and fidelity 0.99 — used by tests and the fast
    benchmark mode to keep single-CPU runtimes tractable (a documented
    substitution for the paper's 200k CPU-hours; see DESIGN.md). *)

val realistic_settings : settings
(** The Table 5 "more realistic" mode: coarse sampling (dt = 0.5 ns; the
    paper's 1 GSa/s is out of reach of first-order gradients at gmon flux
    amplitudes — see DESIGN.md) and aggressive pulse regularization.  Pair
    with a [Qutrit]-level Hamiltonian to include leakage. *)

type result = {
  fidelity : float;  (** Best trace fidelity reached. *)
  iterations : int;  (** Iterations executed before convergence/stop. *)
  converged : bool;
  diverged : bool;
      (** A non-finite fidelity or gradient was detected; the run aborted
          before polluting the ADAM state, keeping the best finite
          controls found so far. *)
  deadline_hit : bool;  (** The wall-clock [deadline] expired mid-run. *)
  total_time : float;  (** Pulse duration, ns. *)
  n_steps : int;
  controls : float array array;  (** Best controls, [n_controls x n_steps]. *)
  wall_time_s : float;  (** Processor time spent optimizing. *)
}

val max_steps : int
(** Cap on the control discretization (100k steps); {!optimize} rejects
    [total_time / dt] beyond it with [Invalid_argument] rather than
    allocating an unbounded array of dim x dim slice propagators. *)

val optimize :
  ?settings:settings -> ?deadline:float -> Hamiltonian.t -> target:Cmat.t ->
  total_time:float -> result
(** Optimize controls for a fixed pulse duration.  [target] is the
    2^n-dimensional computational-subspace unitary; qutrit systems embed it
    and evaluate subspace fidelity.

    [deadline] is an absolute wall-clock instant ([Unix.gettimeofday]
    scale); the run stops at the first iteration boundary past it and
    reports [deadline_hit].  Raises [Invalid_argument] on non-positive
    [dt], non-finite [total_time], or a discretization beyond
    {!max_steps}. *)

val optimize_multistart :
  ?settings:settings -> ?starts:int -> ?deadline:float -> Hamiltonian.t ->
  target:Cmat.t -> total_time:float -> result
(** Run {!optimize} from [starts] (default 3) different random pulse
    initializations and keep the best — the paper's Section 10 notes that
    GRAPE convergence on wide circuits is unreliable; restarts are the
    standard mitigation.  Stops early once a start converges.  Iterations
    and wall time accumulate across starts. *)

val propagate : Hamiltonian.t -> dt:float -> float array array -> Cmat.t
(** Forward-simulate given controls; returns the realized full-dimension
    unitary (for verifying results independently of the optimizer). *)

val fidelity_of_controls :
  Hamiltonian.t -> target:Cmat.t -> dt:float -> float array array -> float

val to_pulse : ?label:string -> result -> Pqc_pulse.Pulse.t
(** Package an optimized result as a single-segment pulse schedule carrying
    the piecewise-constant control samples (exportable with
    {!Pqc_pulse.Pulse.to_json}). *)

type search = {
  minimal : result;  (** Result at the shortest converged duration. *)
  probes : (float * bool) list;
      (** Binary-search trace: (duration, converged). *)
  grape_iterations_total : int;
      (** Total optimizer iterations across all probes — the compilation
          latency proxy used by the Figure 7 accounting. *)
  deadline_hit : bool;
      (** Some probe ran out of wall-clock budget; [minimal] is the best
          converged duration found before the deadline, not necessarily
          the true minimum. *)
}

val minimal_time :
  ?settings:settings -> ?precision:float -> ?deadline:float ->
  upper_bound:float -> Hamiltonian.t -> target:Cmat.t -> search option
(** Binary-search the shortest [total_time] achieving the target fidelity,
    to [precision] (default 0.3 ns, the paper's choice).  [upper_bound]
    seeds the bracket (callers pass the gate-based duration: GRAPE should
    never need longer).  [None] when even the upper bound (after one
    doubling) fails to converge.

    [deadline] (absolute wall-clock) bounds the whole search: bisection
    stops at the first probe past it and returns the best converged probe
    so far (with [deadline_hit] set), or [None] if nothing converged in
    time. *)
