module BA = Bigarray.Array1
module Cmat = Pqc_linalg.Cmat
module Expm = Pqc_linalg.Expm
module Rng = Pqc_util.Rng
module Obs = Pqc_obs.Obs

type hyperparams = { learning_rate : float; decay : float }

type settings = {
  dt : float;
  max_iters : int;
  target_fidelity : float;
  hyperparams : hyperparams;
  amp_penalty : float;
  smoothness_penalty : float;
  envelope : bool;
  seed : int;
}

let default_settings =
  { dt = 0.05; max_iters = 600; target_fidelity = 0.999;
    hyperparams = { learning_rate = 0.3; decay = 0.998 }; amp_penalty = 1e-4;
    smoothness_penalty = 0.0; envelope = false; seed = 0 }

let fast_settings =
  { default_settings with dt = 0.25; max_iters = 300; target_fidelity = 0.99 }

let realistic_settings =
  (* The paper samples at 1 GSa/s; with first-order gradients (rather than
     exact automatic differentiation) the slice exponential's linearization
     needs dt <= 0.5 ns at the gmon flux amplitudes, so "realistic" here
     means 2 GSa/s — still 10x coarser than the standard 20 GSa/s mode. *)
  { default_settings with dt = 0.5; max_iters = 1000;
    target_fidelity = 0.99; smoothness_penalty = 1e-3; envelope = true }

type result = {
  fidelity : float;
  iterations : int;
  converged : bool;
  diverged : bool;
  deadline_hit : bool;
  total_time : float;
  n_steps : int;
  controls : float array array;
  wall_time_s : float;
}

(* Hard cap on the discretization: beyond this the slice-propagator arrays
   alone dominate memory and a search will never finish interactively. *)
let max_steps = 100_000

let now () = Pqc_obs.Obs.Clock.now ()

(* Build H(u_k) = drift + sum_j u.(j).(k) H_j into [dst].  The axpy is
   written out over the flat buffers: a closure per call or a float argument
   crossing a function boundary would each allocate (vanilla ocamlopt boxes
   float arguments), and this runs once per slice per ADAM iteration on
   every worker domain — minor-GC pressure here turns into stop-the-world
   barriers for the whole pool.  The arithmetic is the scalar
   {re = u; im = 0} case of [Cmat.axpy_ri], operation for operation. *)
let build_slice_hamiltonian (sys : Hamiltonian.t) u k ~dst =
  Cmat.blit ~src:sys.drift ~dst;
  let dd = Cmat.data dst in
  let len = BA.dim dd in
  for j = 0 to Array.length sys.controls - 1 do
    let zre = u.(j).(k) in
    let xd = Cmat.data sys.controls.(j).Hamiltonian.matrix in
    let i = ref 0 in
    while !i < len do
      let p = !i in
      let re = BA.unsafe_get xd p and im = BA.unsafe_get xd (p + 1) in
      BA.unsafe_set dd p (BA.unsafe_get dd p +. ((zre *. re) -. (0.0 *. im)));
      BA.unsafe_set dd (p + 1)
        (BA.unsafe_get dd (p + 1) +. ((zre *. im) +. (0.0 *. re)));
      i := p + 2
    done
  done

let propagate (sys : Hamiltonian.t) ~dt u =
  let dim = sys.dim in
  let n_steps = if Array.length u = 0 then 0 else Array.length u.(0) in
  let ws = Expm.make_ws dim in
  let h = Cmat.create dim dim in
  let gen = Cmat.create dim dim in
  let uk = Cmat.create dim dim in
  (* Ping-pong accumulation: two buffers for the whole walk instead of one
     fresh Cmat.mul allocation per time step.  Each step still computes the
     same product U_k * acc, so the result is bit-identical to the
     allocating version. *)
  let acc = ref (Cmat.identity dim) in
  let nxt = ref (Cmat.create dim dim) in
  for k = 0 to n_steps - 1 do
    build_slice_hamiltonian sys u k ~dst:h;
    Cmat.scale_ri_into ~dst:gen ~re:0.0 ~im:(-.dt) h;
    Expm.expm_into ws ~dst:uk gen;
    Cmat.mul_into ~dst:!nxt uk !acc;
    let t = !acc in
    acc := !nxt;
    nxt := t
  done;
  !acc

(* Exact-bits comparison: the expm memo must only reuse a slice propagator
   when the controls are indistinguishable at the IEEE-754 level ([=] alone
   would conflate +0.0 with -0.0, whose products differ in zero signs).
   For equal nonzero values plain [=] suffices; the reciprocal probe
   separates the two zeros (1/+0. = inf, 1/-0. = -inf) without boxing an
   Int64 per comparison.  NaN compares unequal, i.e. "changed" — controls
   are NaN-guarded upstream anyway. *)
let[@inline] same_bits a b = a = b && (a <> 0.0 || 1.0 /. a = 1.0 /. b)

let subspace_overlap sys target_embedded u_total =
  let o = Cmat.inner target_embedded u_total in
  let d = float_of_int (Hamiltonian.subspace_dim sys) in
  (o, Complex.norm2 o /. (d *. d))

let fidelity_of_controls sys ~target ~dt u =
  let embedded = Hamiltonian.embed_target sys target in
  snd (subspace_overlap sys embedded (propagate sys ~dt u))

let optimize ?(settings = default_settings) ?deadline (sys : Hamiltonian.t)
    ~target ~total_time =
  if settings.dt <= 0.0 || not (Float.is_finite settings.dt) then
    invalid_arg "Grape.optimize: dt must be positive and finite";
  if not (Float.is_finite total_time) then
    invalid_arg "Grape.optimize: total_time must be finite";
  let t0 = now () in
  let dim = sys.dim in
  let nc = Array.length sys.controls in
  let n_steps = max 2 (int_of_float (Float.round (total_time /. settings.dt))) in
  if n_steps > max_steps then
    invalid_arg
      (Printf.sprintf
         "Grape.optimize: total_time %g / dt %g needs %d steps (cap %d)"
         total_time settings.dt n_steps max_steps);
  Obs.Span.with_ ~name:"grape.optimize"
    ~attrs:
      [ ("dim", string_of_int dim);
        ("total_time", Printf.sprintf "%g" total_time);
        ("max_iters", string_of_int settings.max_iters) ]
  @@ fun () ->
  let dt = settings.dt in
  let dsub2 =
    let d = float_of_int (Hamiltonian.subspace_dim sys) in
    d *. d
  in
  let embedded = Hamiltonian.embed_target sys target in
  let rng = Rng.create settings.seed in
  (* Small random start; zero would be a stationary point of the fidelity
     for many targets. *)
  let u =
    Array.init nc (fun j ->
        let amp = 0.1 *. sys.controls.(j).max_amp in
        Array.init n_steps (fun _ -> Rng.uniform rng ~lo:(-.amp) ~hi:amp))
  in
  let grad = Array.init nc (fun _ -> Array.make n_steps 0.0) in
  let flat_dim = nc * n_steps in
  let adam = Adam.create flat_dim in
  let flat_params = Array.make flat_dim 0.0 in
  let flat_grad = Array.make flat_dim 0.0 in
  (* Workspaces reused across iterations. *)
  let ws = Expm.make_ws dim in
  let gen_buf = Cmat.create dim dim in
  let slice_u = Array.init n_steps (fun _ -> Cmat.create dim dim) in
  let prefix = Array.init n_steps (fun _ -> Cmat.create dim dim) in
  (* Matrix-exponential memo: slice_u.(k) persists across ADAM iterations,
     so a step whose control column is bit-for-bit unchanged (clip-saturated
     tails, converged coordinates) can skip build + scale + expm entirely.
     Keys are the exact IEEE-754 bits of the nc controls of that step —
     exact bits are the only "quantization" that cannot change pulses, which
     keeps the memo invisible to the determinism suite.  Memory is one
     float per control per step, bounded for the life of the run. *)
  let memo_key = Array.init n_steps (fun _ -> Array.make nc 0.0) in
  let memo_valid = Array.make n_steps false in
  let memo_hits = ref 0 in
  let m_buf = ref (Cmat.create dim dim) in
  let m_next = ref (Cmat.create dim dim) in
  let w_buf = Cmat.create dim dim in
  (* Scratch for the allocation-free fused traces in the gradient loop (one
     accumulator pair per control), plus flat views of the buffers the two
     fused hot loops below stream over.  [ctrl_data] hoists the per-control
     bigarray pointers so neither loop re-reads them through the record. *)
  let tr_re = Array.make nc 0.0 and tr_im = Array.make nc 0.0 in
  let neg_dt = -.dt in
  let drift_d = Cmat.data sys.drift in
  let ctrl_data =
    Array.map (fun c -> Cmat.data c.Hamiltonian.matrix) sys.controls
  in
  let gd = Cmat.data gen_buf and wd = Cmat.data w_buf in
  let buf_len = BA.dim gd in
  let target_dag = Cmat.dagger embedded in
  let best_fidelity = ref 0.0 in
  let best_u = Array.map Array.copy u in
  let iterations = ref 0 in
  let converged = ref false in
  let diverged = ref false in
  let deadline_hit = ref false in
  (* Convergence profile: ~32 evenly strided snapshots per run when
     tracing is on.  Collection reads the loop state but never writes
     it, so traced and untraced runs compute identical pulses. *)
  let prof_points = ref [] in
  let prof_stride = max 1 (settings.max_iters / 32) in
  let prof_snapshot iter fid lr =
    if Obs.enabled () && (iter = 1 || iter mod prof_stride = 0) then begin
      let gn = ref 0.0 in
      for i = 0 to flat_dim - 1 do
        gn := !gn +. (flat_grad.(i) *. flat_grad.(i))
      done;
      prof_points :=
        { Obs.iteration = iter; infidelity = 1.0 -. fid; learning_rate = lr;
          grad_norm = sqrt !gn }
        :: !prof_points
    end
  in
  (try
     for iter = 1 to settings.max_iters do
       iterations := iter;
       (match deadline with
       | Some d when now () > d ->
         deadline_hit := true;
         raise Exit
       | _ -> ());
       (* Forward pass: slice propagators and cumulative products.  A memo
          hit leaves slice_u.(k) from the previous iteration in place; the
          prefix products only need recomputing from the first changed
          slice onward (earlier prefixes depend only on unchanged ones). *)
       let first_dirty = ref n_steps in
       for k = 0 to n_steps - 1 do
         let key = memo_key.(k) in
         let hit = ref memo_valid.(k) in
         if !hit then
           for j = 0 to nc - 1 do
             if not (same_bits key.(j) u.(j).(k)) then hit := false
           done;
         if !hit then incr memo_hits
         else begin
           for j = 0 to nc - 1 do
             key.(j) <- u.(j).(k)
           done;
           memo_valid.(k) <- true;
           (* gen = -i dt (drift + sum_j u_jk H_j), fused into one pass per
              element: per entry this performs the exact per-element chains
              of [build_slice_hamiltonian] (drift value, then controls in
              ascending j) followed by [Cmat.scale_ri_into ~re:0.0
              ~im:neg_dt], so the fusion is bit-invisible.  It saves the
              per-control full-buffer passes over H plus the separate scale
              pass, and keeps the coefficient an unboxed local.  [key] holds
              exactly u.(j).(k) (just written above). *)
           let ii = ref 0 in
           while !ii < buf_len do
             let p = !ii in
             let hre = ref (BA.unsafe_get drift_d p)
             and him = ref (BA.unsafe_get drift_d (p + 1)) in
             for j = 0 to nc - 1 do
               let zre = key.(j) in
               let xd = ctrl_data.(j) in
               let re = BA.unsafe_get xd p and im = BA.unsafe_get xd (p + 1) in
               hre := !hre +. ((zre *. re) -. (0.0 *. im));
               him := !him +. ((zre *. im) +. (0.0 *. re))
             done;
             let re = !hre and im = !him in
             BA.unsafe_set gd p ((0.0 *. re) -. (neg_dt *. im));
             BA.unsafe_set gd (p + 1) ((0.0 *. im) +. (neg_dt *. re));
             ii := p + 2
           done;
           Expm.expm_into ws ~dst:slice_u.(k) gen_buf;
           if !first_dirty = n_steps then first_dirty := k
         end
       done;
       for k = !first_dirty to n_steps - 1 do
         if k = 0 then Cmat.blit ~src:slice_u.(0) ~dst:prefix.(0)
         else Cmat.mul_into_unchecked ~dst:prefix.(k) slice_u.(k) prefix.(k - 1)
       done;
       let overlap, fid = subspace_overlap sys embedded prefix.(n_steps - 1) in
       (* Divergence guard: a NaN/inf fidelity means the propagators blew
          up (bad dt, corrupt Hamiltonian, exploding controls).  Abort the
          iteration here, before the gradient step, so neither the ADAM
          moments nor the best-so-far controls are polluted. *)
       if not (Float.is_finite fid) then begin
         diverged := true;
         raise Exit
       end;
       if fid > !best_fidelity then begin
         best_fidelity := fid;
         Array.iteri (fun j row -> Array.blit row 0 best_u.(j) 0 n_steps) u
       end;
       if fid >= settings.target_fidelity then begin
         converged := true;
         raise Exit
       end;
       (* Backward pass: M_k = T† R_k with R_k = U_T ... U_{k+1}. *)
       Cmat.blit ~src:target_dag ~dst:!m_buf;
       (* conj(overlap), unpacked once: the gradient inner loop below works
          on floats so it allocates no Complex.t records per control/step. *)
       let ov_re = overlap.Complex.re and ov_im = -.overlap.Complex.im in
       for k = n_steps - 1 downto 0 do
         (* W = P_k M_k, so Tr(M_k H_j P_k) = Tr(W H_j). *)
         Cmat.mul_into_unchecked ~dst:w_buf prefix.(k) !m_buf;
         (* Fused traces: one pass over W computes Tr(W H_j) for every
            control at once, loading each W entry once instead of nc times.
            Each control's accumulator runs through the same (i, jj) order
            as [Cmat.trace_of_product_into] from the same 0.0 start, so the
            fusion is bit-invisible. *)
         for j = 0 to nc - 1 do
           tr_re.(j) <- 0.0;
           tr_im.(j) <- 0.0
         done;
         for i = 0 to dim - 1 do
           for jj = 0 to dim - 1 do
             let ka = 2 * ((i * dim) + jj) and kb = 2 * ((jj * dim) + i) in
             let are = BA.unsafe_get wd ka and aim = BA.unsafe_get wd (ka + 1) in
             for j = 0 to nc - 1 do
               let xd = ctrl_data.(j) in
               let bre = BA.unsafe_get xd kb and bim = BA.unsafe_get xd (kb + 1) in
               tr_re.(j) <- tr_re.(j) +. ((are *. bre) -. (aim *. bim));
               tr_im.(j) <- tr_im.(j) +. ((are *. bim) +. (aim *. bre))
             done
           done
         done;
         for j = 0 to nc - 1 do
           let ctrl = sys.controls.(j) in
           (* s = Tr(W H_j); gradient of |O|^2/d^2 via dO = -i dt s.
              The float formulas transcribe Complex.mul/conj exactly, on
              floats throughout, so no Complex.t record (and no per-step
              closure) is allocated in this loop. *)
           let s_re = tr_re.(j) and s_im = tr_im.(j) in
           let d_o_re = (0.0 *. s_re) -. (-.dt *. s_im) in
           let d_o_im = (0.0 *. s_im) +. (-.dt *. s_re) in
           let d_fid =
             2.0 /. dsub2 *. ((ov_re *. d_o_re) -. (ov_im *. d_o_im))
           in
           (* Cost = 1 - F + penalties: descend -dF plus penalty grads. *)
           let amp_grad =
             2.0 *. settings.amp_penalty *. u.(j).(k)
             /. (ctrl.Hamiltonian.max_amp *. ctrl.Hamiltonian.max_amp)
           in
           grad.(j).(k) <- -.d_fid +. amp_grad
         done;
         if k > 0 then begin
           Cmat.mul_into_unchecked ~dst:!m_next !m_buf slice_u.(k);
           let tmp = !m_buf in
           m_buf := !m_next;
           m_next := tmp
         end
       done;
       (* Smoothness / envelope regularization. *)
       if settings.smoothness_penalty > 0.0 then
         for j = 0 to nc - 1 do
           let row = u.(j) and g = grad.(j) in
           let lambda = settings.smoothness_penalty in
           for k = 0 to n_steps - 2 do
             let diff = row.(k + 1) -. row.(k) in
             g.(k) <- g.(k) -. (2.0 *. lambda *. diff);
             g.(k + 1) <- g.(k + 1) +. (2.0 *. lambda *. diff)
           done;
           if settings.envelope then begin
             g.(0) <- g.(0) +. (2.0 *. lambda *. row.(0));
             g.(n_steps - 1) <- g.(n_steps - 1) +. (2.0 *. lambda *. row.(n_steps - 1))
           end
         done;
       (* ADAM step on the flattened parameters, then clip to drive bounds. *)
       for j = 0 to nc - 1 do
         Array.blit u.(j) 0 flat_params (j * n_steps) n_steps;
         Array.blit grad.(j) 0 flat_grad (j * n_steps) n_steps
       done;
       let grad_finite = ref true in
       for i = 0 to flat_dim - 1 do
         (* Float.is_finite, written out: the stdlib function is not
            [@inline], so calling it boxes every gradient entry. *)
         let g = flat_grad.(i) in
         if not (g -. g = 0.) then grad_finite := false
       done;
       if not !grad_finite then begin
         diverged := true;
         raise Exit
       end;
       let lr =
         settings.hyperparams.learning_rate
         *. (settings.hyperparams.decay ** float_of_int (iter - 1))
       in
       prof_snapshot iter fid lr;
       Adam.step adam ~learning_rate:lr ~params:flat_params ~grad:flat_grad;
       for j = 0 to nc - 1 do
         let cap = sys.controls.(j).max_amp in
         let lo = -.cap in
         for k = 0 to n_steps - 1 do
           let v = flat_params.((j * n_steps) + k) in
           (* Float.max lo (Float.min cap v), stdlib bodies written out:
              neither function is inlined by vanilla ocamlopt, and the
              boxed float arguments dominated this loop's allocation
              (~2 words per parameter per iteration). *)
           let mn =
             if v > cap || (not (Float.sign_bit v) && Float.sign_bit cap)
             then if v <> v then v else cap
             else if cap <> cap then cap
             else v
           in
           let mx =
             if mn > lo || (not (Float.sign_bit mn) && Float.sign_bit lo)
             then if lo <> lo then lo else mn
             else if mn <> mn then mn
             else lo
           in
           u.(j).(k) <- mx
         done
       done
     done
   with Exit -> ());
  if !memo_hits > 0 then
    Obs.count ~by:(float_of_int !memo_hits) "grape.expm.memo_hits";
  if !prof_points <> [] then
    Obs.profile
      ~label:
        (Printf.sprintf "grape[dim=%d,T=%g]" dim
           (float_of_int n_steps *. dt))
      (List.rev !prof_points);
  { fidelity = !best_fidelity; iterations = !iterations; converged = !converged;
    diverged = !diverged; deadline_hit = !deadline_hit;
    total_time = float_of_int n_steps *. dt; n_steps; controls = best_u;
    wall_time_s = now () -. t0 }

let optimize_multistart ?(settings = default_settings) ?(starts = 3) ?deadline
    sys ~target ~total_time =
  if starts <= 0 then invalid_arg "Grape.optimize_multistart: starts must be positive";
  let rec go k best =
    if k >= starts then best
    else begin
      let r =
        optimize ~settings:{ settings with seed = settings.seed + k } ?deadline
          sys ~target ~total_time
      in
      let merged =
        let keep = if r.fidelity >= best.fidelity then r else best in
        { keep with
          iterations = best.iterations + r.iterations;
          wall_time_s = best.wall_time_s +. r.wall_time_s;
          deadline_hit = best.deadline_hit || r.deadline_hit }
      in
      if merged.converged || merged.deadline_hit then merged else go (k + 1) merged
    end
  in
  let first =
    optimize ~settings ?deadline sys ~target ~total_time
  in
  if first.converged || first.deadline_hit then first else go 1 first

let to_pulse ?(label = "grape") r =
  let dt = if r.n_steps = 0 then 0.0 else r.total_time /. float_of_int r.n_steps in
  Pqc_pulse.Pulse.of_segments
    [ Pqc_pulse.Pulse.Optimized
        { label; duration = r.total_time;
          samples = Some { Pqc_pulse.Pulse.dt; controls = r.controls } } ]

type search = {
  minimal : result;
  probes : (float * bool) list;
  grape_iterations_total : int;
  deadline_hit : bool;
}

let minimal_time ?(settings = default_settings) ?(precision = 0.3) ?deadline
    ~upper_bound sys ~target =
  Obs.Span.with_ ~name:"grape.minimal_time"
    ~attrs:
      [ ("dim", string_of_int sys.Hamiltonian.dim);
        ("upper_bound", Printf.sprintf "%g" upper_bound) ]
  @@ fun () ->
  let probes = ref [] in
  let iters = ref 0 in
  let hit = ref false in
  let attempt time =
    let r = optimize ~settings ?deadline sys ~target ~total_time:time in
    probes := (time, r.converged) :: !probes;
    iters := !iters + r.iterations;
    if r.deadline_hit then hit := true;
    r
  in
  let finish best =
    Option.map
      (fun r ->
        { minimal = r; probes = List.rev !probes;
          grape_iterations_total = !iters; deadline_hit = !hit })
      best
  in
  let expired () =
    match deadline with Some d -> now () > d | None -> false
  in
  (* Establish a converging upper bound (one doubling allowed). *)
  let r0 = attempt upper_bound in
  let hi_result =
    if r0.converged then Some r0
    else if !hit then None
    else begin
      let r1 = attempt (2.0 *. upper_bound) in
      if r1.converged then Some r1 else None
    end
  in
  match hi_result with
  | None -> finish None
  | Some hi_r ->
    (* Bisection stops early on an expired deadline: the best converged
       probe so far is still a valid (just not minimal) pulse. *)
    let rec bisect lo hi best =
      if hi -. lo <= precision || expired () then finish (Some best)
      else begin
        let mid = (lo +. hi) /. 2.0 in
        let r = attempt mid in
        if r.converged then bisect lo mid r else bisect mid hi best
      end
    in
    bisect 0.0 hi_r.total_time hi_r
