module Cvec = Pqc_linalg.Cvec
module Cmat = Pqc_linalg.Cmat
(** Quantum circuit intermediate representation.

    A circuit is an ordered sequence of gate applications on a fixed register
    of qubits.  Parametrized gates carry symbolic {!Param} angles, so one
    circuit value represents the whole family explored by a variational
    algorithm; {!bind} specializes it to a concrete parametrization.

    Qubit convention: in basis-state indices, qubit 0 is the most significant
    bit, matching the operand order of {!Gate.matrix}. *)

type instr = { gate : Gate.t; qubits : int array }
(** One gate application.  [qubits] lists distinct in-range operands, first
    operand first (for CX, the control). *)

type t

val n_qubits : t -> int

val length : t -> int
(** Number of instructions. *)

val instrs : t -> instr array
(** Instructions in execution order.  The array is fresh; mutating it does
    not affect the circuit. *)

val instr : t -> int -> instr

val empty : int -> t

val of_instrs : int -> instr list -> t
(** Validates arity, operand range and operand distinctness. *)

val of_gates : int -> (Gate.t * int list) list -> t

val append : t -> Gate.t -> int list -> t
(** Functional append of one instruction (O(length); use {!extend} or
    {!Builder} in generator loops — folding [append] is quadratic). *)

val extend : t -> (Gate.t * int list) list -> t
(** Bulk functional append: one allocation for the whole batch, so
    [extend c gates] is O(length c + length gates) where the equivalent
    [append] fold is quadratic.  Validates like {!of_gates}. *)

val concat : t -> t -> t
(** Sequential composition; widths must match. *)

val iter : (instr -> unit) -> t -> unit

val map_gates : (Gate.t -> Gate.t) -> t -> t

val bind : t -> float array -> t
(** Substitute a concrete parameter vector: every gate angle becomes a
    constant. *)

val depends : t -> int list
(** Sorted, duplicate-free list of variational parameters the circuit's gates
    depend on. *)

val n_params : t -> int
(** Length of the smallest theta vector every gate of the circuit can be
    bound with: one past the highest parameter index used, which is {e not}
    [List.length (depends c)] when the circuit skips indices. *)

val parametrized_gate_count : t -> int
(** Number of gates whose angle varies with some theta_i. *)

val gate_counts : t -> (string * int) list
(** Gate-name histogram, sorted by name. *)

val count : t -> f:(instr -> bool) -> int

val two_qubit_count : t -> int

val qubit_used : t -> int -> bool

val relabel : t -> n:int -> mapping:(int -> int) -> t
(** Rebuild the circuit on an [n]-qubit register, renaming each qubit [q] to
    [mapping q]; used when extracting blocks as standalone circuits. *)

val inverse : t -> t option
(** Reversed circuit of inverted gates; [None] if some gate has no in-set
    inverse. *)

val embed : n:int -> Cmat.t -> int array -> Cmat.t
(** [embed ~n g qubits] lifts the 2^k x 2^k gate matrix [g] acting on the
    listed qubits to the full 2^n-dimensional register. *)

val unitary : ?theta:float array -> t -> Cmat.t
(** Full 2^n x 2^n circuit unitary under a binding ([theta] defaults to the
    empty vector, valid for parameter-free circuits).  Intended for small
    widths (asserts n <= 12). *)

val pp : Format.formatter -> t -> unit

(** Imperative accumulation of instructions with O(1) appends. *)
module Builder : sig
  type circuit := t

  type t

  val create : int -> t
  (** [create n] starts an empty builder over [n] qubits. *)

  val add : t -> Gate.t -> int list -> unit
  val add_circuit : t -> circuit -> unit
  val length : t -> int
  val to_circuit : t -> circuit
end
