(** OpenQASM 2.0 interchange.

    The paper situates itself against gate-level quantum assembly languages
    (Section 3 cites OpenQASM among others); this module lets circuits round
    -trip through the de-facto interchange format, so benchmarks can be fed
    to or taken from other toolchains.

    Supported subset: one quantum register; the gate set of {!Gate} (with
    [u1] read as [rz] and [id] skipped); [creg], [barrier] and comments are
    accepted and ignored.  Angle expressions understand floating literals,
    [pi], the symbolic variational parameters [t0], [t1], ... (an extension
    of OpenQASM 2.0 — each expression must stay affine in at most one
    parameter, matching {!Param}), unary minus, [+ - * /] and
    parentheses. *)

exception Parse_error of { line : int; col : int; message : string }
(** Every parse error carries the 1-based source line and column of the
    offending token. *)

val to_qasm : ?theta:float array -> Circuit.t -> string
(** Serialize a circuit.  Parametrized gates are bound with [theta] first;
    raises [Invalid_argument] if unbound parameters remain (OpenQASM 2.0
    has no free symbols). *)

val of_qasm : string -> Circuit.t
(** Parse a program.  Raises {!Parse_error} with a line and column on
    invalid input, and on constructs outside the subset ([measure], [if],
    [gate] definitions, multiple [qreg]s).  Programs using the [tN]
    parameter extension produce parametrized circuits (bind with
    {!Circuit.bind}). *)
