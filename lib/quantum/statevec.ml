module Cmat = Pqc_linalg.Cmat
module Cvec = Pqc_linalg.Cvec
module BA = Bigarray.Array1

let init n = Cvec.basis (1 lsl n) 0

let n_of_dim dim =
  let n = ref 0 in
  while 1 lsl !n < dim do
    incr n
  done;
  assert (1 lsl !n = dim);
  !n

(* Single-qubit kernel: update amplitude pairs that differ in the target bit. *)
let apply_1q psi g bit_pos =
  let d = Cvec.unsafe_data psi in
  let dim = Cvec.dim psi in
  let a_re = ref 0.0 and a_im = ref 0.0 in
  let g00 = Cmat.get g 0 0 and g01 = Cmat.get g 0 1 in
  let g10 = Cmat.get g 1 0 and g11 = Cmat.get g 1 1 in
  let bit = 1 lsl bit_pos in
  for i = 0 to dim - 1 do
    if i land bit = 0 then begin
      let j = i lor bit in
      let xre = BA.unsafe_get d (2 * i) and xim = BA.unsafe_get d ((2 * i) + 1) in
      let yre = BA.unsafe_get d (2 * j) and yim = BA.unsafe_get d ((2 * j) + 1) in
      a_re := (g00.re *. xre) -. (g00.im *. xim) +. (g01.re *. yre) -. (g01.im *. yim);
      a_im := (g00.re *. xim) +. (g00.im *. xre) +. (g01.re *. yim) +. (g01.im *. yre);
      let bre = (g10.re *. xre) -. (g10.im *. xim) +. (g11.re *. yre) -. (g11.im *. yim) in
      let bim = (g10.re *. xim) +. (g10.im *. xre) +. (g11.re *. yim) +. (g11.im *. yre) in
      BA.unsafe_set d (2 * i) !a_re;
      BA.unsafe_set d ((2 * i) + 1) !a_im;
      BA.unsafe_set d (2 * j) bre;
      BA.unsafe_set d ((2 * j) + 1) bim
    end
  done

(* Two-qubit kernel: gather the four amplitudes of each (b1, b2) quadruple.
   [hi] is the bit of the first operand (most significant in the 4x4 gate
   basis). *)
let apply_2q psi g hi_pos lo_pos =
  let d = Cvec.unsafe_data psi in
  let dim = Cvec.dim psi in
  let hi = 1 lsl hi_pos and lo = 1 lsl lo_pos in
  let gm = Cmat.to_array g in
  let amp = Array.make 8 0.0 in
  for i = 0 to dim - 1 do
    if i land hi = 0 && i land lo = 0 then begin
      let idx = [| i; i lor lo; i lor hi; i lor hi lor lo |] in
      for s = 0 to 3 do
        amp.(2 * s) <- BA.unsafe_get d (2 * idx.(s));
        amp.((2 * s) + 1) <- BA.unsafe_get d ((2 * idx.(s)) + 1)
      done;
      for r = 0 to 3 do
        let sre = ref 0.0 and sim = ref 0.0 in
        for s = 0 to 3 do
          let z = gm.(r).(s) in
          sre := !sre +. ((z.re *. amp.(2 * s)) -. (z.im *. amp.((2 * s) + 1)));
          sim := !sim +. ((z.re *. amp.((2 * s) + 1)) +. (z.im *. amp.(2 * s)))
        done;
        BA.unsafe_set d (2 * idx.(r)) !sre;
        BA.unsafe_set d ((2 * idx.(r)) + 1) !sim
      done
    end
  done

let apply_matrix psi g qubits =
  let n = n_of_dim (Cvec.dim psi) in
  let pos q = n - 1 - q in
  match Array.length qubits with
  | 1 -> apply_1q psi g (pos qubits.(0))
  | 2 -> apply_2q psi g (pos qubits.(0)) (pos qubits.(1))
  | _ ->
    let full = Circuit.embed ~n g qubits in
    let out = Cmat.apply full psi in
    Cvec.blit ~src:out ~dst:psi

let apply_gate psi gate ~theta qubits =
  apply_matrix psi (Gate.matrix gate ~theta) qubits

let run ?(theta = [||]) ?init_state c =
  let psi =
    match init_state with
    | None -> init (Circuit.n_qubits c)
    | Some v ->
      assert (Cvec.dim v = 1 lsl Circuit.n_qubits c);
      Cvec.copy v
  in
  Circuit.iter (fun { Circuit.gate; qubits } -> apply_gate psi gate ~theta qubits) c;
  psi

let probabilities psi = Array.init (Cvec.dim psi) (Cvec.probability psi)

let measure rng psi =
  let p = probabilities psi in
  let x = Pqc_util.Rng.float rng 1.0 in
  let rec pick i acc =
    if i = Array.length p - 1 then i
    else begin
      let acc = acc +. p.(i) in
      if x < acc then i else pick (i + 1) acc
    end
  in
  pick 0 0.0
