module Cvec = Pqc_linalg.Cvec
module Cmat = Pqc_linalg.Cmat
type instr = { gate : Gate.t; qubits : int array }

type t = { n : int; ops : instr array }

let n_qubits c = c.n
let length c = Array.length c.ops
let instrs c = Array.copy c.ops
let instr c i = c.ops.(i)

let validate_instr n { gate; qubits } =
  let k = Array.length qubits in
  if k <> Gate.arity gate then
    invalid_arg
      (Printf.sprintf "Circuit: gate %s expects %d operands, got %d"
         (Gate.name gate) (Gate.arity gate) k);
  Array.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg (Printf.sprintf "Circuit: qubit %d out of range [0,%d)" q n))
    qubits;
  if k = 2 && qubits.(0) = qubits.(1) then
    invalid_arg "Circuit: duplicate operand on two-qubit gate"

let of_instrs n l =
  if n <= 0 then invalid_arg "Circuit: width must be positive";
  List.iter (validate_instr n) l;
  { n; ops = Array.of_list l }

let empty n = of_instrs n []

let of_gates n l =
  of_instrs n
    (List.map (fun (gate, qs) -> { gate; qubits = Array.of_list qs }) l)

let append c gate qs =
  let i = { gate; qubits = Array.of_list qs } in
  validate_instr c.n i;
  { c with ops = Array.append c.ops [| i |] }

let extend c gates =
  let extra =
    List.map
      (fun (gate, qs) ->
        let i = { gate; qubits = Array.of_list qs } in
        validate_instr c.n i;
        i)
      gates
  in
  { c with ops = Array.append c.ops (Array.of_list extra) }

let concat a b =
  if a.n <> b.n then invalid_arg "Circuit.concat: width mismatch";
  { n = a.n; ops = Array.append a.ops b.ops }

let iter f c = Array.iter f c.ops

let map_gates f c =
  { c with ops = Array.map (fun i -> { i with gate = f i.gate }) c.ops }

let bind c theta =
  map_gates (Gate.map_param (fun p -> Param.const (Param.bind p theta))) c

let depends c =
  let module S = Set.Make (Int) in
  let s =
    Array.fold_left
      (fun acc i ->
        match Gate.depends_on i.gate with None -> acc | Some v -> S.add v acc)
      S.empty c.ops
  in
  S.elements s

let n_params c =
  Array.fold_left
    (fun acc i ->
      match Gate.depends_on i.gate with
      | Some v -> max acc (v + 1)
      | None -> acc)
    0 c.ops

let count c ~f =
  Array.fold_left (fun acc i -> if f i then acc + 1 else acc) 0 c.ops

let parametrized_gate_count c = count c ~f:(fun i -> Gate.is_parametrized i.gate)

let two_qubit_count c = count c ~f:(fun i -> Array.length i.qubits = 2)

let gate_counts c =
  let tbl = Hashtbl.create 16 in
  iter
    (fun i ->
      let k = Gate.name i.gate in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    c;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let qubit_used c q = Array.exists (fun i -> Array.mem q i.qubits) c.ops

let relabel c ~n ~mapping =
  let rename i = { i with qubits = Array.map mapping i.qubits } in
  of_instrs n (List.map rename (Array.to_list c.ops))

let inverse c =
  let rec invert acc = function
    | [] -> Some acc
    | i :: rest ->
      (match Gate.inverse i.gate with
      | None -> None
      | Some g -> invert ({ i with gate = g } :: acc) rest)
  in
  (* Inverting reverses order; folding the forward list into an accumulator
     already yields the reversed sequence. *)
  Option.map
    (fun l -> { c with ops = Array.of_list l })
    (invert [] (Array.to_list c.ops))

let embed ~n g qubits =
  let k = Array.length qubits in
  assert (Cmat.rows g = 1 lsl k && Cmat.cols g = 1 lsl k);
  let dim = 1 lsl n in
  let m = Cmat.create dim dim in
  (* Bit position of qubit q in a basis index (qubit 0 most significant). *)
  let pos q = n - 1 - q in
  let sub_of idx =
    let s = ref 0 in
    for j = 0 to k - 1 do
      if idx land (1 lsl pos qubits.(j)) <> 0 then s := !s lor (1 lsl (k - 1 - j))
    done;
    !s
  in
  let with_sub idx sub =
    let r = ref idx in
    for j = 0 to k - 1 do
      let bit = 1 lsl pos qubits.(j) in
      if sub land (1 lsl (k - 1 - j)) <> 0 then r := !r lor bit
      else r := !r land lnot bit
    done;
    !r
  in
  for col = 0 to dim - 1 do
    let sub_c = sub_of col in
    for sub_r = 0 to (1 lsl k) - 1 do
      let row = with_sub col sub_r in
      Cmat.set m row col (Cmat.get g sub_r sub_c)
    done
  done;
  m

let unitary ?(theta = [||]) c =
  assert (c.n <= 12);
  let dim = 1 lsl c.n in
  let acc = ref (Cmat.identity dim) in
  iter
    (fun i ->
      let g = embed ~n:c.n (Gate.matrix i.gate ~theta) i.qubits in
      acc := Cmat.mul g !acc)
    c;
  !acc

let pp fmt c =
  Format.fprintf fmt "circuit[%d qubits, %d gates]:@." c.n (length c);
  iter
    (fun i ->
      Format.fprintf fmt "  %s %s@." (Gate.to_string i.gate)
        (String.concat "," (List.map string_of_int (Array.to_list i.qubits))))
    c

module Builder = struct

  type t = { n : int; mutable rev : instr list; mutable len : int }

  let create n = { n; rev = []; len = 0 }

  let add b gate qs =
    let i = { gate; qubits = Array.of_list qs } in
    validate_instr b.n i;
    b.rev <- i :: b.rev;
    b.len <- b.len + 1

  let add_circuit b c =
    if n_qubits c <> b.n then invalid_arg "Builder.add_circuit: width mismatch";
    iter
      (fun i ->
        b.rev <- i :: b.rev;
        b.len <- b.len + 1)
      c

  let length b = b.len

  let to_circuit b =
    { n = b.n; ops = Array.of_list (List.rev b.rev) }
end
