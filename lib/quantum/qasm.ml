exception Parse_error of { line : int; col : int; message : string }

let fail ~line ~col fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; col; message })) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let gate_mnemonic (g : Gate.t) =
  match g with
  | Gate.Rx _ -> "rx"
  | Gate.Ry _ -> "ry"
  | Gate.Rz _ -> "rz"
  | Gate.X -> "x"
  | Gate.Y -> "y"
  | Gate.Z -> "z"
  | Gate.H -> "h"
  | Gate.S -> "s"
  | Gate.Sdg -> "sdg"
  | Gate.T -> "t"
  | Gate.Tdg -> "tdg"
  | Gate.CX -> "cx"
  | Gate.CZ -> "cz"
  | Gate.Swap -> "swap"
  | Gate.ISwap -> "iswap"

let to_qasm ?theta c =
  let c = match theta with Some t -> Circuit.bind c t | None -> c in
  (match Circuit.depends c with
  | [] -> ()
  | _ :: _ ->
    invalid_arg
      "Qasm.to_qasm: circuit has unbound parameters (OpenQASM 2.0 has no \
       symbols); pass ~theta");
  let buf = Buffer.create 512 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" (Circuit.n_qubits c));
  Circuit.iter
    (fun (i : Circuit.instr) ->
      let operands =
        String.concat ","
          (List.map (Printf.sprintf "q[%d]") (Array.to_list i.qubits))
      in
      match Gate.param i.gate with
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf "%s(%.12g) %s;\n" (gate_mnemonic i.gate)
             (Param.bind p [||]) operands)
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s;\n" (gate_mnemonic i.gate) operands))
    c;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

(* A ';'-terminated statement with, for every character of its (trimmed,
   newline-joined) text, the 1-based source line and column it came from —
   the map that lets every parse error point at an exact position even
   when a statement spans lines. *)
type stmt = { text : string; pos : (int * int) array }

let at stmt i =
  let n = Array.length stmt.pos in
  if n = 0 then (1, 1) else stmt.pos.(max 0 (min i (n - 1)))

let fail_at stmt i fmt =
  let line, col = at stmt i in
  fail ~line ~col fmt

let is_ws ch = ch = ' ' || ch = '\t' || ch = '\r'

(* Strip // comments, split into ';'-terminated statements, tracking the
   source position of every retained character. *)
let statements source =
  let no_comments =
    String.split_on_char '\n' source
    |> List.map (fun l ->
           match String.index_opt l '/' with
           | Some i when i + 1 < String.length l && l.[i + 1] = '/' ->
             String.sub l 0 i
           | Some _ | None -> l)
  in
  let acc = ref [] in
  let buf = Buffer.create 64 in
  let pos = ref [] (* reversed, one entry per buffered char *) in
  let trimmed () =
    let text = Buffer.contents buf in
    let parr = Array.of_list (List.rev !pos) in
    let n = String.length text in
    let lo = ref 0 in
    while !lo < n && is_ws text.[!lo] do incr lo done;
    let hi = ref (n - 1) in
    while !hi >= !lo && is_ws text.[!hi] do decr hi done;
    if !hi < !lo then None
    else
      Some
        { text = String.sub text !lo (!hi - !lo + 1);
          pos = Array.sub parr !lo (!hi - !lo + 1) }
  in
  let emit () =
    (match trimmed () with Some s -> acc := s :: !acc | None -> ());
    Buffer.clear buf;
    pos := []
  in
  List.iteri
    (fun k line ->
      let lineno = k + 1 in
      String.iteri
        (fun j ch ->
          if ch = ';' then emit ()
          else begin
            Buffer.add_char buf ch;
            pos := (lineno, j + 1) :: !pos
          end)
        line;
      if Buffer.length buf > 0 then begin
        Buffer.add_char buf ' ';
        pos := (lineno, String.length line + 1) :: !pos
      end)
    no_comments;
  (match trimmed () with
  | None -> ()
  | Some s -> fail_at s 0 "missing ';' after %S" s.text);
  List.rev !acc

(* Offset of the first non-whitespace character of [s]. *)
let ltrim_off s =
  let i = ref 0 in
  while !i < String.length s && is_ws s.[!i] do incr i done;
  !i

(* Split [text] (located at [off] within its statement) on commas, keeping
   each piece's offset. *)
let split_commas ~off text =
  let pieces = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i ch ->
      if ch = ',' then begin
        pieces := (off + !start, String.sub text !start (i - !start)) :: !pieces;
        start := i + 1
      end)
    text;
  pieces :=
    (off + !start, String.sub text !start (String.length text - !start))
    :: !pieces;
  List.rev !pieces

(* Tiny recursive-descent parser for angle expressions.  Expressions
   evaluate to affine parameter forms ({!Param.t}): floating literals, [pi]
   and the symbolic variational parameters [t0], [t1], ... combined with
   [+ - * /], unary minus and parentheses — as long as the result stays
   affine in at most one parameter (products of two parameters, division
   by a parameter, or mixing different parameters are rejected). *)
module Expr = struct
  type token = Num of float | Pi | Var of int | Plus | Minus | Star | Slash | LPar | RPar

  (* Tokens carry their offset within the statement text. *)
  let tokenize stmt ~off s =
    let n = String.length s in
    let tokens = ref [] in
    let i = ref 0 in
    let push t = tokens := (t, off + !i) :: !tokens in
    while !i < n do
      let ch = s.[!i] in
      if ch = ' ' || ch = '\t' then incr i
      else if ch = '+' then (push Plus; incr i)
      else if ch = '-' then (push Minus; incr i)
      else if ch = '*' then (push Star; incr i)
      else if ch = '/' then (push Slash; incr i)
      else if ch = '(' then (push LPar; incr i)
      else if ch = ')' then (push RPar; incr i)
      else if (ch >= '0' && ch <= '9') || ch = '.' then begin
        let j = ref !i in
        while
          !j < n
          && ((s.[!j] >= '0' && s.[!j] <= '9') || s.[!j] = '.' || s.[!j] = 'e'
             || s.[!j] = 'E'
             || ((s.[!j] = '+' || s.[!j] = '-')
                && !j > !i
                && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
        do
          incr j
        done;
        let text = String.sub s !i (!j - !i) in
        (match float_of_string_opt text with
        | Some v -> push (Num v)
        | None -> fail_at stmt (off + !i) "bad number %S" text);
        i := !j
      end
      else if n - !i >= 2 && String.sub s !i 2 = "pi" then begin
        push Pi;
        i := !i + 2
      end
      else if ch = 't' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9'
      then begin
        let j = ref (!i + 1) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
        let text = String.sub s (!i + 1) (!j - !i - 1) in
        (match int_of_string_opt text with
        | Some v -> push (Var v)
        | None -> fail_at stmt (off + !i) "bad parameter index t%s" text);
        i := !j
      end
      else fail_at stmt (off + !i) "unexpected character %C in expression %S" ch s
    done;
    List.rev !tokens

  (* expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)* ;
     factor := '-' factor | '(' expr ')' | number | pi | tN *)
  let parse stmt ~off ~len tokens =
    let rest = ref tokens in
    let last = off + len in
    let peek () = match !rest with [] -> None | t :: _ -> Some t in
    let here () = match !rest with [] -> last | (_, p) :: _ -> p in
    let advance () = match !rest with [] -> () | _ :: tl -> rest := tl in
    let add_or_fail p a b =
      match Param.add a b with
      | Some v -> v
      | None ->
        fail_at stmt p
          "angle expression mixes different parameters (t%d and t%d)"
          (Option.value (Param.depends_on a) ~default:(-1))
          (Option.value (Param.depends_on b) ~default:(-1))
    in
    let rec expr () =
      let v = ref (term ()) in
      let rec loop () =
        match peek () with
        | Some (Plus, p) ->
          advance ();
          v := add_or_fail p !v (term ());
          loop ()
        | Some (Minus, p) ->
          advance ();
          v := add_or_fail p !v (Param.neg (term ()));
          loop ()
        | Some ((Num _ | Pi | Var _ | Star | Slash | LPar | RPar), _) | None -> ()
      in
      loop ();
      !v
    and term () =
      let v = ref (factor ()) in
      let rec loop () =
        match peek () with
        | Some (Star, p) ->
          advance ();
          let f = factor () in
          (match Param.is_const !v, Param.is_const f with
          | true, _ -> v := Param.scale_by (Param.bind !v [||]) f
          | _, true -> v := Param.scale_by (Param.bind f [||]) !v
          | false, false ->
            fail_at stmt p "angle expression multiplies two parameters");
          loop ()
        | Some (Slash, p) ->
          advance ();
          let d = factor () in
          if not (Param.is_const d) then
            fail_at stmt p "angle expression divides by a parameter";
          let d = Param.bind d [||] in
          if d = 0.0 then fail_at stmt p "division by zero in angle expression";
          v := Param.scale_by (1.0 /. d) !v;
          loop ()
        | Some ((Num _ | Pi | Var _ | Plus | Minus | LPar | RPar), _) | None -> ()
      in
      loop ();
      !v
    and factor () =
      match peek () with
      | Some (Minus, _) -> advance (); Param.neg (factor ())
      | Some (Num v, _) -> advance (); Param.const v
      | Some (Pi, _) -> advance (); Param.const Float.pi
      | Some (Var v, p) ->
        advance ();
        if v < 0 then fail_at stmt p "bad parameter index t%d" v;
        Param.var v
      | Some (LPar, _) ->
        advance ();
        let v = expr () in
        (match peek () with
        | Some (RPar, _) -> advance (); v
        | Some _ | None -> fail_at stmt (here ()) "expected ')'")
      | Some ((Plus | Star | Slash | RPar), p) ->
        fail_at stmt p "malformed angle expression"
      | None -> fail_at stmt last "malformed angle expression"
    in
    let v = expr () in
    (match !rest with
    | [] -> ()
    | (_, p) :: _ -> fail_at stmt p "trailing tokens in expression");
    v

  let eval stmt ~off s =
    parse stmt ~off ~len:(String.length s) (tokenize stmt ~off s)
end

let parse_operand stmt ~off ~reg ~size text =
  let lead = ltrim_off text in
  let off = off + lead in
  let text = String.trim text in
  match String.index_opt text '[' with
  | None -> fail_at stmt off "expected %s[index], got %S" reg text
  | Some i ->
    let name = String.sub text 0 i in
    if name <> reg then
      fail_at stmt off "unknown register %S (declared %S)" name reg;
    (match String.index_opt text ']' with
    | None -> fail_at stmt off "missing ']' in %S" text
    | Some j ->
      let idx = String.sub text (i + 1) (j - i - 1) in
      (match int_of_string_opt (String.trim idx) with
      | Some q when q >= 0 && q < size -> q
      | Some q -> fail_at stmt (off + i + 1) "qubit %d out of range [0,%d)" q size
      | None -> fail_at stmt (off + i + 1) "bad qubit index %S" idx))

(* Split "mnemonic(args) operands" into pieces, each with its offset. *)
let split_application stmt =
  let text = stmt.text in
  let name_end =
    let rec go i =
      if i >= String.length text then i
      else
        match text.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> go (i + 1)
        | ' ' | '(' | _ -> i
    in
    go 0
  in
  if name_end = 0 then fail_at stmt 0 "expected gate name in %S" text;
  let name = String.sub text 0 name_end in
  let rest_raw = String.sub text name_end (String.length text - name_end) in
  let rest_off = name_end + ltrim_off rest_raw in
  let rest = String.trim rest_raw in
  if String.length rest > 0 && rest.[0] = '(' then begin
    (* Find the matching close parenthesis (angle expressions nest). *)
    let close = ref None and depth = ref 0 in
    String.iteri
      (fun j ch ->
        if !close = None then
          if ch = '(' then incr depth
          else if ch = ')' then begin
            decr depth;
            if !depth = 0 then close := Some j
          end)
      rest;
    match !close with
    | None -> fail_at stmt rest_off "missing ')' in %S" text
    | Some j ->
      let args = String.sub rest 1 (j - 1) in
      let tail = String.sub rest (j + 1) (String.length rest - j - 1) in
      let tail_off = rest_off + j + 1 + ltrim_off tail in
      (name, Some (args, rest_off + 1), (String.trim tail, tail_off))
  end
  else (name, None, (rest, rest_off))

let of_qasm source =
  let stmts = statements source in
  let reg = ref None in
  let builder = ref None in
  let ensure_builder stmt =
    match !builder with
    | Some b -> b
    | None -> fail_at stmt 0 "gate application before qreg declaration"
  in
  let angle stmt = function
    | Some (args, off) -> Expr.eval stmt ~off args
    | None -> fail_at stmt 0 "missing angle argument"
  in
  let no_args stmt name = function
    | None -> ()
    | Some (_, off) -> fail_at stmt off "%s takes no argument" name
  in
  List.iter
    (fun stmt ->
      let text = stmt.text in
      let lower = String.lowercase_ascii text in
      let starts p =
        String.length lower >= String.length p
        && String.sub lower 0 (String.length p) = p
      in
      if starts "openqasm" || starts "include" || starts "creg" || starts "barrier"
      then ()
      else if starts "measure" || starts "if" || starts "gate" || starts "reset"
      then fail_at stmt 0 "unsupported statement %S" text
      else if starts "qreg" then begin
        if !reg <> None then fail_at stmt 0 "multiple qreg declarations";
        let rest_raw = String.sub text 4 (String.length text - 4) in
        let rest_off = 4 + ltrim_off rest_raw in
        let rest = String.trim rest_raw in
        match String.index_opt rest '[' with
        | None -> fail_at stmt 0 "bad qreg declaration %S" text
        | Some i ->
          let name = String.trim (String.sub rest 0 i) in
          (match String.index_opt rest ']' with
          | None -> fail_at stmt (rest_off + i) "missing ']' in qreg"
          | Some j ->
            (match int_of_string_opt (String.sub rest (i + 1) (j - i - 1)) with
            | Some n when n > 0 ->
              reg := Some (name, n);
              builder := Some (Circuit.Builder.create n)
            | Some _ | None -> fail_at stmt (rest_off + i + 1) "bad qreg size"))
      end
      else begin
        let b = ensure_builder stmt in
        let reg_name, size = Option.get !reg in
        let name, args, (operand_text, operands_off) = split_application stmt in
        let operands =
          split_commas ~off:operands_off operand_text
          |> List.map (fun (off, piece) ->
                 parse_operand stmt ~off ~reg:reg_name ~size piece)
        in
        let add1 g =
          match operands with
          | [ q ] -> Circuit.Builder.add b g [ q ]
          | _ -> fail_at stmt 0 "%s expects one operand" name
        in
        let add2 g =
          match operands with
          | [ a; c ] -> Circuit.Builder.add b g [ a; c ]
          | _ -> fail_at stmt 0 "%s expects two operands" name
        in
        match String.lowercase_ascii name with
        | "id" -> no_args stmt name args
        | "h" -> no_args stmt name args; add1 Gate.H
        | "x" -> no_args stmt name args; add1 Gate.X
        | "y" -> no_args stmt name args; add1 Gate.Y
        | "z" -> no_args stmt name args; add1 Gate.Z
        | "s" -> no_args stmt name args; add1 Gate.S
        | "sdg" -> no_args stmt name args; add1 Gate.Sdg
        | "t" -> no_args stmt name args; add1 Gate.T
        | "tdg" -> no_args stmt name args; add1 Gate.Tdg
        | "rx" -> add1 (Gate.Rx (angle stmt args))
        | "ry" -> add1 (Gate.Ry (angle stmt args))
        | "rz" | "u1" -> add1 (Gate.Rz (angle stmt args))
        | "cx" | "cnot" -> no_args stmt name args; add2 Gate.CX
        | "cz" -> no_args stmt name args; add2 Gate.CZ
        | "swap" -> no_args stmt name args; add2 Gate.Swap
        | "iswap" -> no_args stmt name args; add2 Gate.ISwap
        | other -> fail_at stmt 0 "unsupported gate %S" other
      end)
    stmts;
  match !builder with
  | Some b -> Circuit.Builder.to_circuit b
  | None -> fail ~line:1 ~col:1 "no qreg declaration found"
