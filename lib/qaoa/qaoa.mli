module Circuit = Pqc_quantum.Circuit
(** QAOA MAXCUT circuits and the full variational loop (Section 4.2).

    A p-round circuit has 2p variational parameters: gamma_i
    (Cost-Optimization magnitude, round i) and beta_i (Mixing magnitude,
    round i).  Parameter indices are interleaved [gamma_1, beta_1, gamma_2,
    beta_2, ...], which makes the circuit parameter-monotone by
    construction — each round touches its own two parameters once, in
    order (Section 7.1). *)

val gamma_index : round:int -> int
(** Parameter index of gamma for 0-based [round]. *)

val beta_index : round:int -> int

val circuit : Graph.t -> p:int -> Circuit.t
(** Hadamard layer, then per round: exp(-i gamma/2 Z Z) per edge realized
    as CX / Rz(gamma) / CX, then Rx(2 beta) mixers.  2p symbolic
    parameters. *)

val n_params : p:int -> int

type outcome = {
  theta : float array;  (** Best parameters found. *)
  expected_cut : float;  (** <C> at the best parameters. *)
  optimum : int;  (** Brute-force MAXCUT value. *)
  approximation_ratio : float;  (** expected_cut / optimum. *)
  evaluations : int;  (** Circuit executions (variational iterations). *)
}

val optimize :
  ?max_evals:int -> ?seed:int -> ?recorder:Pqc_obs.Run_log.t ->
  Graph.t -> p:int -> outcome
(** Full hybrid loop on the state-vector simulator: Nelder-Mead maximizes
    the expected cut over the 2p angles from a seeded random start.

    [recorder]: stream one {!Pqc_obs.Run_log} record per objective
    evaluation (the logged "energy" is the expected cut).  Recording
    never changes the optimization. *)
