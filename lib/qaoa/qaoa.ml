module Rng = Pqc_util.Rng
module Nelder_mead = Pqc_util.Nelder_mead
module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Statevec = Pqc_quantum.Statevec

let gamma_index ~round = 2 * round
let beta_index ~round = (2 * round) + 1

let n_params ~p = 2 * p

let circuit g ~p =
  if p <= 0 then invalid_arg "Qaoa.circuit: p must be positive";
  let n = g.Graph.n in
  let b = Circuit.Builder.create n in
  for q = 0 to n - 1 do
    Circuit.Builder.add b Gate.H [ q ]
  done;
  for round = 0 to p - 1 do
    let gamma = Param.var (gamma_index ~round) in
    List.iter
      (fun (u, v) ->
        (* exp(-i gamma (1 - Z_u Z_v) / 2) up to phase: CX, Rz(gamma), CX. *)
        Circuit.Builder.add b Gate.CX [ u; v ];
        Circuit.Builder.add b (Gate.Rz gamma) [ v ];
        Circuit.Builder.add b Gate.CX [ u; v ])
      g.Graph.edges;
    let beta = Param.var ~scale:2.0 (beta_index ~round) in
    for q = 0 to n - 1 do
      Circuit.Builder.add b (Gate.Rx beta) [ q ]
    done
  done;
  Circuit.Builder.to_circuit b

type outcome = {
  theta : float array;
  expected_cut : float;
  optimum : int;
  approximation_ratio : float;
  evaluations : int;
}

let optimize ?(max_evals = 600) ?(seed = 1) ?recorder g ~p =
  let c = circuit g ~p in
  let rng = Rng.create seed in
  let x0 =
    Array.init (n_params ~p) (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:Float.pi)
  in
  let negative_cut theta =
    let psi = Statevec.run ~theta c in
    -.Maxcut.expected_cut g psi
  in
  (* One objective evaluation = one variational iteration; log the cut
     (the positive objective), not the minimizer's negated view. *)
  let negative_cut =
    match recorder with
    | None -> negative_cut
    | Some r ->
      let evals = ref 0 in
      fun theta ->
        let v = negative_cut theta in
        incr evals;
        Pqc_obs.Run_log.record r ~iteration:!evals ~energy:(-.v);
        v
  in
  let options =
    { Nelder_mead.default_options with max_evals; initial_step = 0.4 }
  in
  let r = Nelder_mead.minimize ~options ~f:negative_cut ~x0 () in
  let best = Maxcut.optimum g in
  { theta = r.x; expected_cut = -.r.f; optimum = best;
    approximation_ratio = -.r.f /. float_of_int best; evaluations = r.evals }

