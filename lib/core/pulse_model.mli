(** Re-export of {!Pqc_analysis.Pulse_model} (moved there so the static
    cost model can share it); see that module for documentation. *)

include module type of Pqc_analysis.Pulse_model
