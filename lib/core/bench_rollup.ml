module Obs = Pqc_obs.Obs
module J = Pqc_util.Jsonx

type t = {
  report : Bench_report.t;
  cells : int;
  missing_cells : string list;
  fleet : Bench_report.metric_rollup list;
}

let read_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception Sys_error e -> Error e

(* ---- aggregation ------------------------------------------------------ *)

let parse_index s =
  match J.parse s with
  | Error e -> Error ("cells.json: " ^ e)
  | Ok doc -> (
    let name =
      Option.value
        (Option.bind (J.member "manifest" doc) J.to_string)
        ~default:"matrix"
    in
    match Option.bind (J.member "cells" doc) J.to_list with
    | None -> Error "cells.json: missing cells array"
    | Some items -> (
      let ids = List.filter_map J.to_string items in
      if List.length ids <> List.length items then
        Error "cells.json: cells must be an array of strings"
      else Ok (name, ids)))

let fleet_of_agg agg =
  List.map
    (fun name ->
      let s = Option.get (Obs.Metrics.Agg.stats agg name) in
      let p50, p90, p99 = Obs.Metrics.Agg.percentiles agg name in
      { Bench_report.metric = name;
        count = s.Obs.Metrics.count;
        mean = Obs.Metrics.Agg.mean agg name;
        p50; p90; p99;
        max = s.Obs.Metrics.max })
    (Obs.Metrics.Agg.names agg)

let of_results_dir ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else
    match read_file (Filename.concat dir "cells.json") with
    | Error e -> Error e
    | Ok s -> (
      match parse_index s with
      | Error e -> Error (Printf.sprintf "%s: %s" dir e)
      | Ok (name, ids) ->
        let agg = Obs.Metrics.Agg.create () in
        let experiments = ref [] in
        let missing = ref [] in
        List.iter
          (fun id ->
            let cell_dir = Filename.concat dir id in
            match Bench_report.read ~path:(Filename.concat cell_dir "report.json") with
            | Error _ -> missing := id :: !missing
            | Ok r ->
              experiments := List.rev_append r.Bench_report.experiments !experiments;
              (match read_file (Filename.concat cell_dir "metrics.reg") with
              | Ok line -> Obs.Metrics.Agg.absorb agg line
              | Error _ -> ()))
          ids;
        let workers =
          List.fold_left
            (fun acc (e : Bench_report.experiment) ->
              max acc e.Bench_report.workers)
            1 !experiments
        in
        let report =
          Bench_report.sorted
            { Bench_report.mode = "matrix:" ^ name;
              workers;
              experiments = List.rev !experiments }
        in
        Ok
          { report;
            cells = List.length ids;
            missing_cells = List.sort String.compare (List.rev !missing);
            fleet = fleet_of_agg agg })

(* ---- JSON ------------------------------------------------------------- *)

let to_json t =
  let r = t.report in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" Bench_report.schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": %s,\n"
       (Bench_report.json_string r.Bench_report.mode));
  Buffer.add_string buf
    (Printf.sprintf "  \"workers\": %d,\n" r.Bench_report.workers);
  Buffer.add_string buf (Printf.sprintf "  \"cells\": %d,\n" t.cells);
  Buffer.add_string buf "  \"missing_cells\": [";
  Buffer.add_string buf
    (String.concat ", " (List.map Bench_report.json_string t.missing_cells));
  Buffer.add_string buf "],\n";
  (match t.fleet with
  | [] -> Buffer.add_string buf "  \"fleet_metrics\": [],\n"
  | ms ->
    Buffer.add_string buf "  \"fleet_metrics\": [\n";
    Buffer.add_string buf
      (String.concat ",\n"
         (List.map (Bench_report.metric_rollup_json ~indent:"    ") ms));
    Buffer.add_string buf "\n  ],\n");
  (match r.Bench_report.experiments with
  | [] -> Buffer.add_string buf "  \"experiments\": []\n"
  | es ->
    Buffer.add_string buf "  \"experiments\": [\n";
    Buffer.add_string buf
      (String.concat ",\n" (List.map Bench_report.experiment_json es));
    Buffer.add_string buf "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_json s =
  match Bench_report.of_json s with
  | Error e -> Error e
  | Ok report -> (
    match J.parse s with
    | Error e -> Error e
    | Ok doc ->
      let cells =
        Option.value
          (Option.bind (J.member "cells" doc) J.to_int)
          ~default:(List.length report.Bench_report.experiments)
      in
      let missing_cells =
        match Option.bind (J.member "missing_cells" doc) J.to_list with
        | None -> []
        | Some items -> List.filter_map J.to_string items
      in
      let fleet =
        match Option.bind (J.member "fleet_metrics" doc) J.to_list with
        | None -> []
        | Some items ->
          List.filter_map
            (fun j ->
              Result.to_option
                (Bench_report.metric_rollup_of_json ~what:"fleet_metrics" j))
            items
      in
      Ok { report; cells; missing_cells; fleet })

let write ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t));
  Sys.rename tmp path

let read ~path =
  match read_file path with
  | Error e -> Error e
  | Ok s -> (
    match of_json s with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let normalize t =
  let metric m =
    { m with
      Bench_report.mean = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0; max = 0.0 }
  in
  { t with
    report = Bench_report.normalize (Bench_report.sorted t.report);
    fleet = List.map metric t.fleet }

let render t =
  let buf = Buffer.create 1024 in
  let present = List.length t.report.Bench_report.experiments in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d/%d cells reported\n" t.report.Bench_report.mode
       present t.cells);
  if t.missing_cells <> [] then
    Buffer.add_string buf
      ("missing: " ^ String.concat ", " t.missing_cells ^ "\n");
  let cells_t =
    Pqc_util.Table.create
      [ "cell"; "strategy"; "pulse (ns)"; "cache"; "blocks"; "equal" ]
  in
  List.iter
    (fun e ->
      Pqc_util.Table.add_row cells_t
        [ e.Bench_report.name; e.Bench_report.strategy;
          Pqc_util.Table.cell_f ~decimals:2 e.Bench_report.pulse_duration_ns;
          string_of_int e.Bench_report.cache_hits;
          string_of_int e.Bench_report.blocks_compiled;
          (if e.Bench_report.equal_pulse then "yes" else "NO") ])
    t.report.Bench_report.experiments;
  Buffer.add_string buf (Pqc_util.Table.render cells_t);
  if t.fleet <> [] then begin
    Buffer.add_string buf "\nfleet metrics (all cells merged):\n";
    let m_t =
      Pqc_util.Table.create
        [ "metric"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun m ->
        let cell v = Pqc_util.Table.cell_f ~decimals:6 v in
        Pqc_util.Table.add_row m_t
          [ m.Bench_report.metric; string_of_int m.Bench_report.count;
            cell m.Bench_report.mean; cell m.Bench_report.p50;
            cell m.Bench_report.p90; cell m.Bench_report.p99;
            cell m.Bench_report.max ])
      t.fleet;
    Buffer.add_string buf (Pqc_util.Table.render m_t)
  end;
  Buffer.contents buf
