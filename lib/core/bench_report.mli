(** Machine-readable benchmark output.

    The interactive bench harness prints human-oriented tables; CI and
    downstream tooling need something parseable instead.  This module
    renders a small, stable JSON document — schema changes must bump
    {!schema_version}, and the rendered form is pinned by a golden test
    so accidental drift fails [dune runtest].

    Reports can also be read back ({!of_json} / {!read}) so two runs can
    be compared by {!Bench_diff}; the reader accepts every schema version
    up to the current one. *)

val schema_version : int
(** Bumped on any change to the document structure below.  Currently 4:
    v2 added [trace], v3 added [metrics], v4 added [run_id]. *)

type span_rollup = {
  span : string;  (** Span name, e.g. ["engine.search"]. *)
  count : int;  (** Times the span closed during the run. *)
  total_s : float;  (** Summed span duration, seconds. *)
}
(** One row of {!Pqc_obs.Obs.rollup}, embedded per experiment. *)

type metric_rollup = {
  metric : string;  (** Histogram name, e.g. ["grape.block_s"]. *)
  count : int;  (** Observations recorded. *)
  mean : float;
  p50 : float;  (** Median (log-bucket approximation). *)
  p90 : float;
  p99 : float;
  max : float;  (** Exact largest observation. *)
}
(** One {!Pqc_obs.Obs.Metrics} histogram summary, embedded per
    experiment (schema v3). *)

type experiment = {
  name : string;  (** Benchmark circuit, e.g. ["uccsd-lih"]. *)
  strategy : string;  (** Compilation strategy compiled under. *)
  engine : string;  (** ["model"] or ["numeric"]. *)
  run_id : string;
      (** Correlation id ({!Pqc_obs.Obs.Ctx}) of the experiment's run —
          the join key against trace spans, run-log lines and cache
          entries.  [""] on pre-v4 documents and ad-hoc runs with no
          ambient context. *)
  pulse_duration_ns : float;  (** Compiled pulse duration (parallel run). *)
  sequential_s : float;  (** Wall-clock of the [workers = 1] compile. *)
  parallel_s : float;  (** Wall-clock of the [workers = n] compile. *)
  speedup : float;  (** [sequential_s /. parallel_s]. *)
  cache_hits : int;  (** Pool cache hits during the parallel compile. *)
  blocks_compiled : int;  (** Blocks dispatched during the parallel compile. *)
  workers : int;  (** Workers used by the parallel compile. *)
  equal_pulse : bool;
      (** Whether sequential and parallel compiles produced the same
          pulse duration — the determinism contract, re-checked on every
          benchmark run. *)
  trace : span_rollup list;
      (** Per-span rollups from the traced parallel compile ([[]] when
          tracing was off). *)
  metrics : metric_rollup list;
      (** Histogram rollups from the traced parallel compile ([[]] when
          tracing was off). *)
}

type t = {
  mode : string;  (** ["fast"] or ["full"] ([REPRO_MODE]). *)
  workers : int;  (** Worker count the parallel runs used. *)
  experiments : experiment list;
}

val experiment_key : experiment -> string
(** ["name/strategy/engine"] — the identity under which {!Bench_diff}
    and the matrix rollup match experiments across reports. *)

val sorted : t -> t
(** Experiments reordered by {!experiment_key} (ascending).  Emitters
    sort before writing so report bytes never depend on the order cells
    or workers happened to finish in. *)

val normalize : t -> t
(** Zero every wall-clock-derived field (sequential/parallel seconds,
    speedup, trace [total_s], metric mean/percentiles/max) while keeping
    all counts, pulse durations and flags.  Two runs of the same
    deterministic workload render byte-identically after [normalize] —
    the invariant the workers:1 == workers:4 tests pin. *)

val to_json : t -> string
(** Deterministic pretty-printed JSON (2-space indent, fixed key order,
    trailing newline).  Non-finite floats render as [null]. *)

val write : path:string -> t -> unit
(** Atomic write of {!to_json} (temp file + rename). *)

val of_json : string -> (t, string) result
(** Parse a report produced by any schema version up to the current one.
    Fields a document's vintage predates ([trace] before v2, [metrics]
    before v3, [run_id] before v4) read back as [[]] / [""]; anything
    missing from the v1 core is an error, as is a [schema_version] newer
    than this build supports. *)

val read : path:string -> (t, string) result
(** {!of_json} on a file's contents; I/O failures are returned as
    [Error], never raised. *)

(** {2 JSON plumbing}

    Shared with {!Bench_rollup}, whose document embeds report fragments
    with extra top-level keys.  Stable but low-level; prefer {!to_json}
    / {!of_json} for whole reports. *)

val json_string : string -> string
(** JSON string literal with the report's escaping rules. *)

val json_float : float -> string
(** [%.9g]; non-finite values render as [null]. *)

val experiment_json : experiment -> string
(** One experiment object, 4-space base indent, no trailing newline —
    exactly the fragment {!to_json} embeds. *)

val metric_rollup_json : indent:string -> metric_rollup -> string
(** One metric-rollup object on a single line prefixed by [indent]. *)

val metric_rollup_of_json :
  what:string -> Pqc_util.Jsonx.t -> (metric_rollup, string) result
(** Parse one metric-rollup object; [what] labels error messages. *)
