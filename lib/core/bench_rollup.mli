(** Fleet-level aggregation of a {!Bench_matrix} results directory.

    A matrix run leaves one single-experiment {!Bench_report} plus one
    serialized {!Pqc_obs.Obs.Metrics} registry per cell, and a
    [cells.json] index naming every cell the manifest expanded to.  The
    rollup folds all of that into {e one} document: every per-cell
    experiment (sorted, so bytes are stable), the cells the index
    promised but the directory is missing, and fleet-wide histogram
    rollups re-aggregated {e exactly} from the serialized registries via
    {!Pqc_obs.Obs.Metrics.Agg} — merging buckets, not averaging
    summaries.

    The rollup document is a valid schema-v3 {!Bench_report} with extra
    top-level keys ([cells], [missing_cells], [fleet_metrics]) that the
    report reader ignores, so [partialc bench diff] gates a rollup
    against a rollup baseline with no special casing: pulse-duration
    growth and vanished cells (missing experiments) gate exactly like
    single-report regressions. *)

type t = {
  report : Bench_report.t;
      (** All per-cell experiments, sorted by {!Bench_report.experiment_key};
          [mode] is ["matrix:<manifest name>"], [workers] the largest
          cell worker count. *)
  cells : int;  (** Cells listed in the index. *)
  missing_cells : string list;
      (** Index entries with no readable report, sorted. *)
  fleet : Bench_report.metric_rollup list;
      (** Histogram rollups over the merged per-cell registries. *)
}

val of_results_dir : dir:string -> (t, string) result
(** Aggregate a results directory.  [Error] only when the directory or
    its [cells.json] index is unreadable (a usage error); cells that are
    merely missing or corrupt are reported in [missing_cells], which the
    CLI turns into a regression exit. *)

val to_json : t -> string
(** Deterministic JSON (fixed key order, 2-space indent, trailing
    newline); parseable by both {!of_json} and {!Bench_report.of_json}. *)

val of_json : string -> (t, string) result
(** Tolerant inverse of {!to_json}: the report core is required, the
    rollup extras degrade ([cells] to the experiment count,
    [missing_cells]/[fleet_metrics] to empty). *)

val write : path:string -> t -> unit
(** Atomic write of {!to_json} (temp file + rename). *)

val read : path:string -> (t, string) result

val normalize : t -> t
(** {!Bench_report.normalize} on the embedded report plus zeroed fleet
    metric floats — the byte-stable core compared by the workers:1 ==
    workers:4 determinism test. *)

val render : t -> string
(** Human summary: cell counts, missing cells, per-cell pulse table and
    fleet metric percentiles. *)
