module Pool = Pqc_parallel.Pool
module Obs = Pqc_obs.Obs

type site =
  | Worker_hang
  | Worker_crash_pre
  | Worker_crash_mid
  | Partial_pipe
  | Cache_truncate
  | Enospc

let all_sites =
  [ Worker_hang; Worker_crash_pre; Worker_crash_mid; Partial_pipe;
    Cache_truncate; Enospc ]

let site_to_string = function
  | Worker_hang -> "hang"
  | Worker_crash_pre -> "crash-pre"
  | Worker_crash_mid -> "crash-mid"
  | Partial_pipe -> "partial-pipe"
  | Cache_truncate -> "truncate"
  | Enospc -> "enospc"

let site_of_string = function
  | "hang" -> Some Worker_hang
  | "crash-pre" -> Some Worker_crash_pre
  | "crash-mid" -> Some Worker_crash_mid
  | "partial-pipe" -> Some Partial_pipe
  | "truncate" -> Some Cache_truncate
  | "enospc" -> Some Enospc
  | _ -> None

let site_index = function
  | Worker_hang -> 1
  | Worker_crash_pre -> 2
  | Worker_crash_mid -> 3
  | Partial_pipe -> 4
  | Cache_truncate -> 5
  | Enospc -> 6

type plan = { seed : int; rates : float array (* indexed by site_index *) }

let rate plan site = plan.rates.(site_index site)

let to_string plan =
  String.concat ","
    (Printf.sprintf "seed=%d" plan.seed
    :: List.filter_map
         (fun s ->
           let r = rate plan s in
           if r > 0.0 then Some (Printf.sprintf "%s=%g" (site_to_string s) r)
           else None)
         all_sites)

let parse spec =
  let plan = { seed = 0; rates = Array.make 7 0.0 } in
  let fields =
    List.filter
      (fun f -> String.trim f <> "")
      (String.split_on_char ',' spec)
  in
  if fields = [] then Error "empty fault plan"
  else
    let rec go = function
      | [] ->
        if Array.for_all (fun r -> r = 0.0) plan.rates then
          Error "fault plan injects nothing (every rate is 0)"
        else Ok plan
      | field :: rest ->
        (match String.index_opt field '=' with
         | None -> Error (Printf.sprintf "fault plan field %S has no '='" field)
         | Some i ->
           let k = String.trim (String.sub field 0 i) in
           let v =
             String.trim
               (String.sub field (i + 1) (String.length field - i - 1))
           in
           if k = "seed" then
             match int_of_string_opt v with
             | Some seed -> go_seed seed rest
             | None -> Error (Printf.sprintf "bad fault plan seed %S" v)
           else
             match site_of_string k with
             | None -> Error (Printf.sprintf "unknown fault site %S" k)
             | Some site ->
               (match float_of_string_opt v with
                | Some r when Float.is_finite r && r >= 0.0 && r <= 1.0 ->
                  plan.rates.(site_index site) <- r;
                  go rest
                | Some _ | None ->
                  Error
                    (Printf.sprintf "fault rate %s=%S outside [0,1]" k v)))
    and go_seed seed rest =
      match go rest with
      | Ok p -> Ok { p with seed }
      | Error _ as e -> e
    in
    go fields

(* Deterministic per-decision hash — splitmix64's finalizer over
   (seed, site, key) — so whether a given site fires for a given key is
   a pure function of the plan, independent of process, worker count,
   or the order in which decisions are consulted.  This is what lets
   the chaos suite compare a faulted parallel run bit-for-bit against
   the clean sequential one. *)
let mix z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let decide plan site ~key =
  let r = rate plan site in
  if r <= 0.0 then false
  else begin
    let z =
      mix
        (Int64.add
           (Int64.mul (Int64.of_int plan.seed) 0x9E3779B97F4A7C15L)
           (Int64.of_int ((site_index site * 0x1000193) lxor (key * 0x01000193))))
    in
    let u =
      Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
    in
    u < r
  end

(* --- Active plan --- *)

(* Lazily initialized from PQC_FAULT_PLAN; a malformed spec warns once
   and injects nothing (a chaos knob must never turn into a crash knob). *)
let state : plan option option ref = ref None

let pool_hook plan idx =
  let fire site = decide plan site ~key:idx in
  if fire Worker_hang then Some Pool.Hang
  else if fire Worker_crash_pre then Some Pool.Crash_pre
  else if fire Worker_crash_mid then Some Pool.Crash_mid
  else if fire Partial_pipe then Some Pool.Partial_write
  else None

let install = function
  | None -> Pool.clear_fault_hook ()
  | Some plan -> Pool.set_fault_hook (pool_hook plan)

let set p =
  state := Some p;
  install p

let clear () = set None

let from_env () =
  match Sys.getenv_opt "PQC_FAULT_PLAN" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s ->
    (match parse s with
     | Ok plan -> Some plan
     | Error e ->
       Printf.eprintf
         "partialqc: ignoring invalid PQC_FAULT_PLAN (%s); no faults \
          injected\n%!"
         e;
       None)

let current () =
  match !state with
  | Some p -> p
  | None ->
    let p = from_env () in
    set p;
    p

let active () = current () <> None

let fire site ~key =
  match current () with
  | None -> false
  | Some plan ->
    let hit = decide plan site ~key in
    if hit then begin
      Obs.count ("fault." ^ site_to_string site);
      (* Parent-side storage faults (truncate/enospc) fire in the
         process that owns the flight ring, so the last-events trail is
         dumped at the moment of injection — the same forensic record an
         abnormal worker exit leaves. *)
      let detail =
        Printf.sprintf "fault %s fired (key %d)" (site_to_string site) key
      in
      Obs.Flight.record ~kind:"fault"
        ~run_id:(Option.value ~default:"" (Obs.Ctx.current ()))
        detail;
      ignore
        (Obs.Flight.dump_auto ~reason:("fault." ^ site_to_string site) ())
    end;
    hit
