(** Regression comparison between two benchmark reports.

    [partialc bench diff OLD.json NEW.json] (and the CI [bench-regression]
    job) compares experiments keyed by (name, strategy, engine) and flags
    regressions:

    - pulse duration grew by more than [threshold_pct] (pulse durations
      are deterministic per strategy, so any growth is a real compiler
      change, not noise);
    - an experiment present in OLD disappeared from NEW;
    - NEW reports [equal_pulse = false] (the sequential/parallel
      determinism contract broke);
    - optionally, parallel wall-clock grew by more than
      [time_threshold_pct] (off by default — wall-clock is noisy in CI).

    Experiments only present in NEW are reported as additions, never as
    regressions. *)

type row = {
  key : string;  (** ["name/strategy/engine"]. *)
  metric : string;  (** What is being compared, e.g. ["pulse_duration_ns"]. *)
  old_value : float;
  new_value : float;
  delta_pct : float;  (** [(new - old) / old * 100.]; [nan] if old = 0. *)
  regression : bool;  (** Whether this row trips the gate. *)
  note : string;  (** Short annotation, e.g. ["+23.1% > 20.0%"]. *)
}

type t = {
  rows : row list;  (** Per-experiment comparison rows, stable order. *)
  missing : string list;  (** Keys in OLD with no NEW counterpart. *)
  added : string list;  (** Keys in NEW with no OLD counterpart. *)
  broken : string list;  (** NEW keys with [equal_pulse = false]. *)
  regressions : string list;
      (** Human-readable description of everything that trips the gate;
          empty means the diff passes. *)
}

val diff :
  ?threshold_pct:float ->
  ?time_threshold_pct:float ->
  old_report:Bench_report.t ->
  new_report:Bench_report.t ->
  unit ->
  t
(** Compare two reports.  [threshold_pct] defaults to 20 (pulse duration
    may grow by up to 20% before gating); [time_threshold_pct] defaults
    to none (wall-clock rows are informational only). *)

val render : t -> string
(** Delta table plus a one-line verdict, for humans. *)
