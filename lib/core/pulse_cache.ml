type entry = {
  key : string;
  duration_ns : float;
  grape_runs : int;
  grape_iterations : int;
  seconds : float;
  fidelity : float option;
  fallback : string option;
}

let version = 1
let header = Printf.sprintf "PQC-PULSE-CACHE v%d" version

(* FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the
   truncation and bit-flip corruption this file guards against (it is an
   integrity check, not a cryptographic one). *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let opt_float = function
  | Some f -> Printf.sprintf "%h" f
  | None -> "-"

let opt_string = function Some s -> s | None -> "-"

(* One tab-separated record per line.  The key is an OCaml-quoted string
   (keys may contain any byte); floats are hex literals for lossless
   round-trips. *)
let payload e =
  Printf.sprintf "%S\t%h\t%d\t%d\t%h\t%s\t%s" e.key e.duration_ns
    e.grape_runs e.grape_iterations e.seconds (opt_float e.fidelity)
    (opt_string e.fallback)

let parse_opt_float = function
  | "-" -> Some None
  | s -> (match float_of_string_opt s with
          | Some f -> Some (Some f)
          | None -> None)

let parse_payload s =
  match
    Scanf.sscanf s "%S\t%h\t%d\t%d\t%h\t%s@\t%s"
      (fun key duration_ns grape_runs grape_iterations seconds fid fb ->
        (key, duration_ns, grape_runs, grape_iterations, seconds, fid, fb))
  with
  | key, duration_ns, grape_runs, grape_iterations, seconds, fid, fb ->
    (match parse_opt_float fid with
     | None -> None
     | Some fidelity ->
       if Float.is_finite duration_ns && duration_ns >= 0.0 then
         Some { key; duration_ns; grape_runs; grape_iterations; seconds;
                fidelity;
                fallback = (if fb = "-" then None else Some fb) }
       else None)
  | exception _ -> None

let parse_line line =
  match String.index_opt line '\t' with
  | None -> None
  | Some i ->
    let crc = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    if String.equal (checksum rest) crc then parse_payload rest else None

let encode_entry e =
  let p = payload e in
  checksum p ^ "\t" ^ p

let decode_entry = parse_line

let save ~path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (encode_entry e);
          output_char oc '\n')
        entries);
  Sys.rename tmp path

type load_result = { entries : entry list; dropped : int }

let load ~path =
  if not (Sys.file_exists path) then { entries = []; dropped = 0 }
  else begin
    let ic = open_in path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    match List.rev !lines with
    | [] -> { entries = []; dropped = 0 }
    | first :: rest ->
      if not (String.equal first header) then
        (* Unknown version or clobbered header: nothing in the file can be
           trusted; count every record as dropped. *)
        { entries = []; dropped = List.length rest + 1 }
      else
        let dropped = ref 0 in
        let entries =
          List.filter_map
            (fun line ->
              match parse_line line with
              | Some e -> Some e
              | None ->
                (* Corrupt, truncated, or checksum-mismatched record:
                   drop it and keep loading the rest. *)
                incr dropped;
                None)
            rest
        in
        { entries; dropped = !dropped }
  end

(* Read-merge-write under an exclusive advisory lock on [path ^ ".lock"]:
   concurrent pools persisting to the same cache serialize here, so a
   merge sees every record an earlier merge wrote (the union survives)
   and the atomic [save] rename means a reader never observes a torn
   file even if the lock protocol is ignored. *)
let merge ~path entries =
  let lock_path = path ^ ".lock" in
  let fd = Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ()))
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      let { entries = existing; dropped = _ } = load ~path in
      (* Newest record wins on key collision: fresh entries replace their
         on-disk predecessors in place; genuinely new keys append in the
         order given. *)
      let fresh = Hashtbl.create (List.length entries * 2 + 16) in
      List.iter (fun e -> Hashtbl.replace fresh e.key e) entries;
      let kept =
        List.map
          (fun e ->
            match Hashtbl.find_opt fresh e.key with
            | Some latest ->
              Hashtbl.remove fresh e.key;
              latest
            | None -> e)
          existing
      in
      let appended =
        (* Keys not already on disk, appended once each (latest value)
           at their first position in [entries]. *)
        List.filter_map
          (fun e ->
            match Hashtbl.find_opt fresh e.key with
            | Some latest ->
              Hashtbl.remove fresh e.key;
              Some latest
            | None -> None)
          entries
      in
      save ~path (kept @ appended))
