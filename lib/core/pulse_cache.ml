module Obs = Pqc_obs.Obs

type entry = {
  key : string;
  duration_ns : float;
  grape_runs : int;
  grape_iterations : int;
  seconds : float;
  fidelity : float option;
  fallback : string option;
  run_id : string option;
      (* correlation id of the request that produced this pulse *)
}

let version = 1
let header = Printf.sprintf "PQC-PULSE-CACHE v%d" version
let journal_path path = path ^ ".journal"

(* FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the
   truncation and bit-flip corruption this file guards against (it is an
   integrity check, not a cryptographic one). *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let opt_float = function
  | Some f -> Printf.sprintf "%h" f
  | None -> "-"

let opt_string = function Some s -> s | None -> "-"

(* One tab-separated record per line.  The key is an OCaml-quoted string
   (keys may contain any byte); floats are hex literals for lossless
   round-trips.  The trailing field is the correlation run_id ("-" when
   the entry was produced outside any request context); readers accept
   the older 7-field records without it. *)
let payload e =
  Printf.sprintf "%S\t%h\t%d\t%d\t%h\t%s\t%s\t%s" e.key e.duration_ns
    e.grape_runs e.grape_iterations e.seconds (opt_float e.fidelity)
    (opt_string e.fallback)
    (opt_string e.run_id)

let parse_opt_float = function
  | "-" -> Some None
  | s -> (match float_of_string_opt s with
          | Some f -> Some (Some f)
          | None -> None)

let mk_entry key duration_ns grape_runs grape_iterations seconds fid fb rid =
  match parse_opt_float fid with
  | None -> None
  | Some fidelity ->
    if Float.is_finite duration_ns && duration_ns >= 0.0 then
      Some { key; duration_ns; grape_runs; grape_iterations; seconds;
             fidelity;
             fallback = (if fb = "-" then None else Some fb);
             run_id = (if rid = "-" then None else Some rid) }
    else None

(* The current 8-field format is tried first; a 7-field vintage line
   fails it (no tab after the fallback field) and falls through to the
   old shape with [run_id = None].  The order matters: a plain [%s]
   stops at the tab, so an 8-field line would *silently* satisfy the old
   pattern and lose its run_id if tried first. *)
let parse_payload s =
  match
    Scanf.sscanf s "%S\t%h\t%d\t%d\t%h\t%s@\t%s@\t%s"
      (fun key duration_ns grape_runs grape_iterations seconds fid fb rid ->
        mk_entry key duration_ns grape_runs grape_iterations seconds fid fb
          rid)
  with
  | r -> r
  | exception _ -> (
    match
      Scanf.sscanf s "%S\t%h\t%d\t%d\t%h\t%s@\t%s"
        (fun key duration_ns grape_runs grape_iterations seconds fid fb ->
          mk_entry key duration_ns grape_runs grape_iterations seconds fid fb
            "-")
    with
    | r -> r
    | exception _ -> None)

let parse_line line =
  match String.index_opt line '\t' with
  | None -> None
  | Some i ->
    let crc = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    if String.equal (checksum rest) crc then parse_payload rest else None

let encode_entry e =
  let p = payload e in
  checksum p ^ "\t" ^ p

let decode_entry = parse_line

(* --- Durability primitives --- *)

(* Directory fsync pins a rename/unlink to disk; some filesystems refuse
   it, in which case the rename is still atomic — we just lose the
   stronger power-failure guarantee, so errors are ignored. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Atomic, durable snapshot: temp file, fsync, rename, directory fsync.
   A crash at any point leaves either the old complete file or the new
   complete file — never a torn snapshot. *)
let write_snapshot ~path entries =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (encode_entry e);
          output_char oc '\n')
        entries;
      flush oc;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir path

(* Per-path operation counter, the deterministic key for the storage
   fault sites (so a seeded plan tears the same operation every run). *)
let op_counts : (string, int) Hashtbl.t = Hashtbl.create 8

let next_op path =
  let k = Option.value (Hashtbl.find_opt op_counts path) ~default:0 in
  Hashtbl.replace op_counts path (k + 1);
  k

(* Write-ahead append: once this returns, the records survive a crash
   (salvageable from the journal even if the snapshot rewrite that
   follows never happens).  The fault sites live here: ENOSPC fires
   before any byte is written (a full disk must not half-write), and
   the torn-write site truncates into the freshly appended tail exactly
   as a crash between write and fsync would. *)
let journal_append ~path entries =
  if entries <> [] then begin
    let jp = journal_path path in
    let op = next_op path in
    if Fault.fire Fault.Enospc ~key:op then
      raise (Unix.Unix_error (Unix.ENOSPC, "write", jp));
    let fd =
      Unix.openfile jp [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    let oc = Unix.out_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (encode_entry e);
            output_char oc '\n')
          entries;
        flush oc;
        Unix.fsync fd);
    if Fault.fire Fault.Cache_truncate ~key:op then begin
      let size = (Unix.stat jp).Unix.st_size in
      (* At least 2 bytes: cutting only the newline would leave the last
         record complete, which is no fault at all. *)
      let cut = 2 + (op * 7919) mod 16 in
      Unix.truncate jp (max 0 (size - cut))
    end
  end

(* --- Tolerant, salvaging reads --- *)

type load_result = { entries : entry list; dropped : int; salvaged : int }

(* [None] when the file does not exist (distinct from existing-but-empty). *)
let read_lines path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    Some (List.rev !lines)
  end

(* Classify record lines: invalid lines with at least one valid record
   after them are genuine corruption (dropped — a bit flip must not
   grow into silent tail loss), while an invalid tail with nothing
   valid after it is the signature of a torn or truncated write and is
   salvaged away: the valid prefix is exactly what survives. *)
let classify lines =
  let parsed = Array.of_list (List.map parse_line lines) in
  let last_valid = ref (-1) in
  Array.iteri (fun i p -> if p <> None then last_valid := i) parsed;
  let entries = ref [] and dropped = ref 0 and salvaged = ref 0 in
  Array.iteri
    (fun i p ->
      match p with
      | Some e -> entries := e :: !entries
      | None -> if i > !last_valid then incr salvaged else incr dropped)
    parsed;
  (List.rev !entries, !dropped, !salvaged)

(* Newest record wins on key collision: fresh entries replace their
   on-disk predecessors in place; genuinely new keys append once each
   (latest value) at their first position in [fresh]. *)
let apply_over existing fresh =
  let latest = Hashtbl.create (List.length fresh * 2 + 16) in
  List.iter (fun e -> Hashtbl.replace latest e.key e) fresh;
  let kept =
    List.map
      (fun e ->
        match Hashtbl.find_opt latest e.key with
        | Some v ->
          Hashtbl.remove latest e.key;
          v
        | None -> e)
      existing
  in
  let appended =
    List.filter_map
      (fun e ->
        match Hashtbl.find_opt latest e.key with
        | Some v ->
          Hashtbl.remove latest e.key;
          Some v
        | None -> None)
      fresh
  in
  kept @ appended

let load ~path =
  let entries, dropped, salvaged =
    match read_lines path with
    | None | Some [] -> ([], 0, 0)
    | Some (first :: rest) ->
      if not (String.equal first header) then
        (* Unknown version or clobbered header: nothing in the file can
           be trusted; count every record as dropped. *)
        ([], List.length rest + 1, 0)
      else classify rest
  in
  (* Replay the write-ahead journal (records only, no header) over the
     snapshot: a crash between journal append and compaction loses
     nothing, and replaying an already-compacted journal is idempotent
     (same records, newest-wins).  The journal's torn tail — the
     expected crash artifact — salvages like the snapshot's. *)
  let entries, dropped, salvaged =
    match read_lines (journal_path path) with
    | None | Some [] -> (entries, dropped, salvaged)
    | Some jlines ->
      let je, jd, js = classify jlines in
      if je <> [] then
        Obs.count ~by:(float_of_int (List.length je)) "cache.journal.replayed";
      (apply_over entries je, dropped + jd, salvaged + js)
  in
  if salvaged > 0 then Obs.count ~by:(float_of_int salvaged) "cache.salvaged";
  if dropped > 0 then Obs.count ~by:(float_of_int dropped) "cache.dropped";
  { entries; dropped; salvaged }

(* --- Writes --- *)

let remove_journal path =
  match Sys.remove (journal_path path) with
  | () -> fsync_dir path
  | exception Sys_error _ -> ()

let save ~path entries =
  (* Full replace: clear the journal first so previously journaled
     records cannot resurrect over the explicit new contents. *)
  remove_journal path;
  write_snapshot ~path entries

(* Fold journal + snapshot into a fresh snapshot, then retire the
   journal.  Order matters: the snapshot lands (atomically, durably)
   before the journal is unlinked, so every record is on disk in at
   least one of the two files at every instant. *)
let compact ~path entries =
  write_snapshot ~path entries;
  remove_journal path;
  Obs.count "cache.compaction"

(* Journal-append-then-compact under an exclusive advisory lock on
   [path ^ ".lock"]: concurrent pools persisting to the same cache
   serialize here, so a merge sees every record an earlier merge wrote
   (the union survives), while the journal + atomic snapshot mean a
   crash at any instant — even mid-write — costs at most the unsynced
   tail of the in-flight append. *)
let merge ~path entries =
  let lock_path = path ^ ".lock" in
  let fd = Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (* Fun.protect, not manual cleanup: the lock must release and the fd
     must close on every exit path, including a reader or codec raising
     mid-merge — a leaked lockf here would wedge every other pool
     persisting to this cache. *)
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ()))
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      journal_append ~path entries;
      (* Disk is the source of truth from here: whatever survived the
         append (all of it, absent injected faults) is what compacts. *)
      let { entries = merged; dropped = _; salvaged = _ } = load ~path in
      compact ~path merged)
