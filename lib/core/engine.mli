module Circuit = Pqc_quantum.Circuit
module Grape = Pqc_grape.Grape
module Hamiltonian = Pqc_grape.Hamiltonian
(** Pulse-duration engine: how strategies obtain the minimal GRAPE pulse
    duration (and compilation cost) of a block.

    [Model] prices blocks with the calibrated {!Pulse_model} and
    {!Latency_model} — instant, used for the full benchmark sweeps.
    [Numeric] runs the real {!Pqc_grape.Grape} optimizer — the ground
    truth, tractable on small blocks; it is what validates the model
    (EXPERIMENTS.md).  Results are memoized per bound block, and the
    memo table can persist across processes ({!persist}).

    Every search is fault-tolerant: divergent or non-finite GRAPE runs
    are retried under the engine's {!Resilience.policy} (reseeded, with
    a halved learning rate), wall-clock deadlines bound each search, and
    when all attempts fail the engine degrades to the gate-based
    lookup-table duration — always realizable — tagging the result's
    [fallback] field so nothing fails silently. *)

type cost = { grape_runs : int; grape_iterations : int; seconds : float }
(** Classical compilation work: optimize calls, total optimizer
    iterations, and (measured or modelled) wall-clock seconds. *)

val zero_cost : cost
val add_cost : cost -> cost -> cost

type block_result = {
  duration_ns : float;  (** Minimal pulse duration found/modelled. *)
  search_cost : cost;  (** Full minimal-time search, default hyperparams. *)
  fidelity : float option;  (** Achieved fidelity ([Numeric] only). *)
  fallback : Resilience.failure option;
      (** [Some f]: the search degraded to the gate-based lookup duration
          because of [f]; [None]: a genuine engine result. *)
  run_id : string option;
      (** Correlation id ({!Pqc_obs.Obs.Ctx}) ambient when this result
          was produced.  Memo and persistent-cache hits keep the id of
          the request that originally paid for the pulse — the cache
          lineage a provenance grep follows. *)
}

type t

val model : t
(** The calibrated analytic engine. *)

val numeric :
  ?settings:Grape.settings ->
  ?system_for:(int -> Hamiltonian.t) ->
  ?policy:Resilience.policy ->
  ?deadline_s:float ->
  ?cache_file:string ->
  unit -> t
(** The real GRAPE engine.  [settings] default to {!Grape.fast_settings};
    [system_for] maps block width to a system Hamiltonian (default: gmon
    on a line).

    [policy] governs divergence retries (default: environment-aware
    {!Resilience.policy_from_env}).  [deadline_s] is the wall-clock
    budget of one block search, retries included (default: the
    [PQC_SEARCH_DEADLINE_S] variable when set, else unbounded).
    [cache_file] names a persistent pulse cache (default: the
    [PQC_PULSE_CACHE] variable when set); it is loaded eagerly — corrupt
    entries dropped, see {!cache_dropped} — and written by {!persist}. *)

val is_numeric : t -> bool

type fault = Nan_fidelity | No_converge | Stall

val faulty : ?rate:float -> ?kinds:fault array -> seed:int -> t -> t
(** Seeded fault-injection wrapper for resilience testing: each
    {!search} on the wrapped engine fails with probability [rate]
    (default 1.0) with a kind drawn from [kinds] (default: all three).
    [Nan_fidelity] presents as {!Resilience.Non_finite}, [No_converge]
    as [Diverged], [Stall] as [Deadline_exceeded].  Injected failures
    pass through the same retry/degradation machinery as real ones, but
    their results are never cached.  Raises [Invalid_argument] on empty
    [kinds]. *)

val block_key : Circuit.t -> string
(** Canonical memoization key of a bound block: width, gate names, exact
    IEEE-754 angle bits, operand qubits.  Distinct bindings — however
    close — get distinct keys. *)

val search : t -> Circuit.t -> block_result
(** Minimal pulse duration of a parameter-free block (width <= 4, operands
    of two-qubit gates adjacent under the engine's topology).  Never
    raises on optimizer failure: after bounded retries it returns the
    gate-based duration with [fallback] set. *)

val persist_result : t -> (unit, Resilience.degradation) result
(** Write the memo table to the engine's [cache_file] via
    {!Pulse_cache.merge} (journaled, atomic; [Ok ()] immediately for
    [model] or when no cache file is configured).  An unwritable path or
    full disk never raises: the failure degrades to a one-line stderr
    warning, an [engine.persist.failed] counter, and an
    [Error] {!Resilience.degradation} with reason {!Resilience.Io_error}
    — the in-memory memo table is untouched. *)

val persist : t -> unit
(** {!persist_result} with the degradation discarded (the warning and
    counter still fire). *)

val cache_size : t -> int
(** Number of memoized block results (0 for [model]). *)

val cache_dropped : t -> int
(** Corrupt/unreadable entries dropped when the persistent cache was
    loaded at engine creation (mid-file damage — bit flips). *)

val cache_salvaged : t -> int
(** Torn-tail entries salvaged away when the persistent cache was loaded
    at engine creation (expected crash damage; see
    {!Pulse_cache.load_result}). *)

val tuned_run_cost : t -> Circuit.t -> duration:float -> cost
(** Cost of one GRAPE run at a known duration with per-slice tuned
    hyperparameters — flexible partial compilation's per-iteration work.
    Bounded by the engine's search deadline. *)

val hyperopt_cost : t -> Circuit.t -> duration:float -> cost
(** Offline hyperparameter-tuning cost for one slice (grid search).
    Bounded by the engine's search deadline. *)

(** {2 Batch compilation over the worker pool}

    The batch entry points compile a whole list of blocks at once,
    fanning independent searches out over [workers] forked processes
    ({!Pqc_parallel.Pool}) and reassembling results in input order.
    They are {e deterministic in the worker count}: for any [workers],
    the returned durations, fidelities, fallbacks and iteration counts
    are identical to the sequential run — including under {!faulty}
    injection, whose per-item streams are keyed on batch position rather
    than execution order.  Only measured wall-clock [seconds] fields may
    differ between runs. *)

type pool_stats = {
  workers : int;  (** Workers actually used (1 = sequential). *)
  dispatched : int;  (** Unique uncached blocks sent to the pool. *)
  cache_hits : int;
      (** Inputs served without dispatch: memo-table hits plus duplicate
          blocks within the batch. *)
  recovered : int;
      (** Items recomputed in-process after their worker died or shipped
          a corrupt record. *)
}

val zero_pool_stats : pool_stats
val add_pool_stats : pool_stats -> pool_stats -> pool_stats
(** Componentwise sum; [workers] is the max of the two. *)

val search_many :
  ?workers:int -> ?min_items:int -> t -> Circuit.t list ->
  block_result list * pool_stats * Resilience.degradation list
(** Batched {!search}: results in input order, one per circuit.
    [workers] defaults to {!Pqc_parallel.Pool.workers_from_env}
    ([PQC_WORKERS], default 1 — no fork, exact single-item behaviour).
    Memo-table hits and intra-batch duplicates are resolved in the
    parent before anything forks; only the remaining misses are sent to
    the pool, and when fewer than [min_items] of them remain (default
    {!Pqc_parallel.Pool.min_items_from_env}, [PQC_PAR_MIN_ITEMS]) they
    run sequentially in-process — a cache-hot batch never pays fork
    overhead.  Results travel back in the checksummed {!Pulse_cache}
    record format; any lost or corrupt record is recomputed in the
    parent and recorded as a [Worker_lost] degradation.  Genuine
    (non-injected) results are merged into the engine's memo table
    exactly as {!search} would. *)

type flex_result = {
  search : block_result;
  hyperopt : cost;  (** Offline {!hyperopt_cost} at the found duration. *)
  tuned : cost;  (** Per-iteration {!tuned_run_cost} at that duration. *)
}

val flex_many :
  ?workers:int -> ?min_items:int -> t -> Circuit.t list ->
  flex_result list * pool_stats * Resilience.degradation list
(** Batched flexible-partial precompute: per block, the minimal-time
    search plus hyperparameter tuning plus one tuned run, all executed
    inside the same worker so the pool parallelizes the whole per-slice
    pipeline (not just the search).  Same determinism, recovery and
    caching contract as {!search_many}. *)
