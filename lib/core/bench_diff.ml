module Table = Pqc_util.Table

type row = {
  key : string;
  metric : string;
  old_value : float;
  new_value : float;
  delta_pct : float;
  regression : bool;
  note : string;
}

type t = {
  rows : row list;
  missing : string list;
  added : string list;
  broken : string list;
  regressions : string list;
}

let key_of (e : Bench_report.experiment) =
  String.concat "/" [ e.name; e.strategy; e.engine ]

let pct ~old_value ~new_value =
  if old_value = 0. then Float.nan
  else (new_value -. old_value) /. old_value *. 100.

(* A metric row gates only when a threshold is set for it and the
   relative growth exceeds that threshold.  Shrinkage never gates. *)
let make_row ~key ~metric ~threshold ~old_value ~new_value =
  let delta_pct = pct ~old_value ~new_value in
  let regression, note =
    match threshold with
    | Some limit when Float.is_finite delta_pct && delta_pct > limit ->
      (true, Printf.sprintf "+%.1f%% > %.1f%%" delta_pct limit)
    | Some _ | None -> (false, "")
  in
  { key; metric; old_value; new_value; delta_pct; regression; note }

let diff ?(threshold_pct = 20.) ?time_threshold_pct ~old_report ~new_report ()
    =
  let olds = (old_report : Bench_report.t).experiments in
  let news = (new_report : Bench_report.t).experiments in
  let find es k = List.find_opt (fun e -> key_of e = k) es in
  let rows = ref [] and missing = ref [] and broken = ref [] in
  List.iter
    (fun (o : Bench_report.experiment) ->
      let k = key_of o in
      match find news k with
      | None -> missing := k :: !missing
      | Some n ->
        if not n.equal_pulse then broken := k :: !broken;
        rows :=
          make_row ~key:k ~metric:"parallel_s" ~threshold:time_threshold_pct
            ~old_value:o.parallel_s ~new_value:n.parallel_s
          :: make_row ~key:k ~metric:"pulse_duration_ns"
               ~threshold:(Some threshold_pct)
               ~old_value:o.pulse_duration_ns ~new_value:n.pulse_duration_ns
          :: !rows)
    olds;
  let added =
    List.filter_map
      (fun n ->
        let k = key_of n in
        if find olds k = None then Some k else None)
      news
  in
  let rows = List.rev !rows in
  let missing = List.rev !missing in
  let broken = List.rev !broken in
  let regressions =
    List.map (fun k -> Printf.sprintf "%s: missing from new report" k) missing
    @ List.map
        (fun k -> Printf.sprintf "%s: equal_pulse is false in new report" k)
        broken
    @ List.filter_map
        (fun r ->
          if r.regression then
            Some (Printf.sprintf "%s: %s %s" r.key r.metric r.note)
          else None)
        rows
  in
  { rows; missing; added; broken; regressions }

let render t =
  let tbl =
    Table.create [ "experiment"; "metric"; "old"; "new"; "delta"; "gate" ]
  in
  List.iter
    (fun r ->
      let delta =
        if Float.is_finite r.delta_pct then
          Printf.sprintf "%+.1f%%" r.delta_pct
        else "n/a"
      in
      Table.add_row tbl
        [ r.key; r.metric;
          Table.cell_f ~decimals:3 r.old_value;
          Table.cell_f ~decimals:3 r.new_value;
          delta;
          (if r.regression then "FAIL" else "ok") ])
    t.rows;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Table.render tbl);
  Buffer.add_char buf '\n';
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "missing: %s\n" k))
    t.missing;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "added:   %s\n" k))
    t.added;
  List.iter
    (fun k ->
      Buffer.add_string buf
        (Printf.sprintf "broken determinism contract: %s\n" k))
    t.broken;
  (match t.regressions with
  | [] -> Buffer.add_string buf "bench diff: PASS\n"
  | rs ->
    Buffer.add_string buf
      (Printf.sprintf "bench diff: FAIL (%d regression%s)\n" (List.length rs)
         (if List.length rs = 1 then "" else "s"));
    List.iter (fun r -> Buffer.add_string buf ("  - " ^ r ^ "\n")) rs);
  Buffer.contents buf
