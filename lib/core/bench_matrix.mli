(** Manifest-driven benchmark matrix.

    A workload manifest (JSON, parsed with {!Pqc_util.Jsonx}) declares
    axes — workloads (molecules or QAOA graph specs), topologies,
    strategies, worker counts, fault plans — and the matrix is their
    cartesian product.  {!run} expands the manifest and executes every
    cell through {!Pqc_parallel.Pool}, leaving on disk, per cell, a
    single-experiment schema-v{!Bench_report.schema_version}
    {!Bench_report} document, a serialized {!Pqc_obs.Obs.Metrics}
    registry, and (when the manifest asks for variational iterations) a
    {!Pqc_obs.Run_log} JSONL stream.  {!Bench_rollup} aggregates the
    results directory into one fleet-level report.

    Cell execution is self-contained — each cell resets and scopes its
    own telemetry, applies its own fault plan only around its parallel
    compile, and writes its outputs atomically — so a matrix run is
    deterministic in the {e driver's} worker count: the same manifest
    produces byte-identical per-cell reports (modulo wall-clock fields,
    see {!Bench_report.normalize}) whether cells are executed
    sequentially or fanned out over the pool.

    Manifest document (all keys except [workloads] and [strategies]
    optional):
    {v
    { "schema_version": 1,
      "name": "smoke",
      "engine": "model",            // or "numeric"
      "seed": 7,                    // theta + variational-loop seed
      "iterations": 12,             // objective evaluations per cell; 0 = none
      "max_width": 4,               // GRAPE blocking width
      "item_deadline_s": 5.0,       // required when a fault plan hangs workers
      "workloads": ["h2", "lih", "3reg6p1"],
      "topologies": ["line"],       // line | grid | clique
      "strategies": ["strict", "flexible"],
      "workers": [1, 4],
      "fault_plans": ["none", "seed=5,partial-pipe=0.5"] }
    v} *)

module Circuit = Pqc_quantum.Circuit

type workload =
  | Mol of Pqc_vqe.Molecule.t
  | Qaoa of { graph : Pqc_qaoa.Graph.t; p : int }

val workload_of_spec : string -> (workload, string) result
(** Parse a workload spec: a molecule name ([h2], [lih], ...) or a QAOA
    spec ["<kind><nodes>p<rounds>"] ([3reg6p2], [er8p1], [k4p3]) whose
    graph is drawn from the bench seed (2019), matching
    [partialc --benchmark]. *)

val circuit_of_spec : string -> (Circuit.t, string) result
(** The unprepared ansatz of a workload spec (UCCSD for molecules, the
    QAOA circuit for graph specs). *)

val workload_width : workload -> int

type manifest = {
  name : string;
  engine : string;  (** ["model"] or ["numeric"]. *)
  seed : int;
  iterations : int;  (** Variational objective evaluations per cell. *)
  max_width : int;
  item_deadline_s : float option;
  workloads : string list;
  topologies : string list;
  strategies : Compiler.strategy list;
  workers : int list;
  fault_plans : Fault.plan option list;  (** [None] = fault-free. *)
}

val manifest_of_json : string -> (manifest, string) result
(** Parse and validate a manifest document.  Validation is total:
    unknown workloads/topologies/strategies, malformed fault plans, an
    empty axis, a grid topology over an odd-width workload, or a
    hanging fault plan without [item_deadline_s] are all [Error] —
    every cell of an accepted manifest can execute. *)

val load_manifest : path:string -> (manifest, string) result
(** {!manifest_of_json} on a file's contents; I/O failures are
    [Error], never raised. *)

type cell = {
  index : int;  (** Position in expansion order. *)
  id : string;  (** Results subdirectory name; unique within the matrix. *)
  cell_name : string;  (** Experiment [name] (strategy lives in its own field). *)
  workload : string;
  topology : string;
  strategy : Compiler.strategy;
  cell_workers : int;  (** Workers of the cell's parallel compile. *)
  fault_plan : Fault.plan option;
}

val expand : manifest -> cell list
(** The cartesian product workloads x topologies x strategies x workers
    x fault_plans, in that nesting order — deterministic, so cell ids
    and indices are stable across runs and machines. *)

val cell_dir : out_dir:string -> cell -> string
val index_path : out_dir:string -> string

type outcome = { cell : cell; status : (unit, string) result }
(** [Error] on an execution failure {e or} a sequential/parallel pulse
    mismatch; the per-cell report (when one was produced) is on disk
    either way. *)

val run_cell : manifest -> out_dir:string -> cell -> (unit, string) result
(** Execute one cell in the current process: prepare the workload on the
    cell topology, compile sequentially then in parallel under the
    cell's fault plan with scoped telemetry, optionally run the
    variational loop against a {!Pqc_obs.Run_log} recorder, and write
    [report.json] / [metrics.reg] / [run.jsonl] under {!cell_dir}.
    Leaves global telemetry disabled and the ambient fault plan
    restored.  Never raises on cell failure. *)

val run : ?workers:int -> manifest -> out_dir:string -> outcome list
(** Expand the manifest, write the {!index_path} cell index, and
    execute every cell through {!Pqc_parallel.Pool.map} on [workers]
    (default [PQC_WORKERS]) driver processes.  Outcomes are in
    expansion order. *)
