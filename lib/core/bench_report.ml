(* v2: experiments gained a "trace" array of per-span rollups from the
   telemetry layer (empty when tracing was off for the run).
   v3: experiments gained a "metrics" array of histogram rollups
   (count/mean/percentiles per Obs.Metrics histogram, empty when
   metrics were off for the run).
   v4: experiments gained a "run_id" correlation id (Obs.Ctx) joining
   the experiment to its trace spans, run-log lines, cache entries and
   degradation records; "" when the run had no ambient context. *)
let schema_version = 4

type span_rollup = { span : string; count : int; total_s : float }

type metric_rollup = {
  metric : string;
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

type experiment = {
  name : string;
  strategy : string;
  engine : string;
  run_id : string;
  pulse_duration_ns : float;
  sequential_s : float;
  parallel_s : float;
  speedup : float;
  cache_hits : int;
  blocks_compiled : int;
  workers : int;
  equal_pulse : bool;
  trace : span_rollup list;
  metrics : metric_rollup list;
}

type t = { mode : string; workers : int; experiments : experiment list }

let json_string = Pqc_util.Jsonx.escape_string

(* JSON has no inf/nan tokens; a benchmark that produced one (e.g. a
   speedup with a zero-duration denominator) renders as null rather than
   emitting a document nothing can parse. *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let rollup_json r =
  String.concat ""
    [ "        { \"span\": "; json_string r.span;
      ", \"count\": "; string_of_int r.count;
      ", \"total_s\": "; json_float r.total_s; " }" ]

let trace_json = function
  | [] -> "[]"
  | rs ->
    String.concat ""
      [ "[\n"; String.concat ",\n" (List.map rollup_json rs); "\n      ]" ]

let metric_rollup_json ~indent m =
  String.concat ""
    [ indent; "{ \"metric\": "; json_string m.metric;
      ", \"count\": "; string_of_int m.count;
      ", \"mean\": "; json_float m.mean;
      ", \"p50\": "; json_float m.p50;
      ", \"p90\": "; json_float m.p90;
      ", \"p99\": "; json_float m.p99;
      ", \"max\": "; json_float m.max; " }" ]

let metrics_json = function
  | [] -> "[]"
  | ms ->
    String.concat ""
      [ "[\n";
        String.concat ",\n" (List.map (metric_rollup_json ~indent:"        ") ms);
        "\n      ]" ]

let experiment_json e =
  String.concat ""
    [ "    {\n";
      "      \"name\": "; json_string e.name; ",\n";
      "      \"strategy\": "; json_string e.strategy; ",\n";
      "      \"engine\": "; json_string e.engine; ",\n";
      "      \"run_id\": "; json_string e.run_id; ",\n";
      "      \"pulse_duration_ns\": "; json_float e.pulse_duration_ns; ",\n";
      "      \"sequential_s\": "; json_float e.sequential_s; ",\n";
      "      \"parallel_s\": "; json_float e.parallel_s; ",\n";
      "      \"speedup\": "; json_float e.speedup; ",\n";
      "      \"cache_hits\": "; string_of_int e.cache_hits; ",\n";
      "      \"blocks_compiled\": "; string_of_int e.blocks_compiled; ",\n";
      "      \"workers\": "; string_of_int e.workers; ",\n";
      "      \"equal_pulse\": "; string_of_bool e.equal_pulse; ",\n";
      "      \"trace\": "; trace_json e.trace; ",\n";
      "      \"metrics\": "; metrics_json e.metrics; "\n";
      "    }" ]

(* The diff and the rollup both key experiments by name/strategy/engine;
   '/' cannot appear in a strategy or engine token, so the key is
   unambiguous. *)
let experiment_key e = e.name ^ "/" ^ e.strategy ^ "/" ^ e.engine

let sorted t =
  { t with
    experiments =
      List.sort
        (fun a b -> String.compare (experiment_key a) (experiment_key b))
        t.experiments }

(* Wall-clock fields vary run to run even when the compilation itself is
   deterministic; zeroing them (while keeping every count, pulse duration
   and flag) leaves exactly the byte-stable part of a report, which is
   what the workers:1 == workers:4 determinism tests compare.  Trace
   rollups are re-sorted by span name: their native order (heaviest span
   first) is itself wall-clock-derived. *)
let normalize t =
  let span r = { r with total_s = 0.0 } in
  let metric m = { m with mean = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0; max = 0.0 } in
  let experiment e =
    { e with
      sequential_s = 0.0;
      parallel_s = 0.0;
      speedup = 0.0;
      trace =
        List.sort
          (fun a b -> String.compare a.span b.span)
          (List.map span e.trace);
      metrics = List.map metric e.metrics }
  in
  { t with experiments = List.map experiment t.experiments }

let to_json t =
  String.concat ""
    [ "{\n";
      "  \"schema_version\": "; string_of_int schema_version; ",\n";
      "  \"mode\": "; json_string t.mode; ",\n";
      "  \"workers\": "; string_of_int t.workers; ",\n";
      "  \"experiments\": [\n";
      String.concat ",\n" (List.map experiment_json t.experiments);
      "\n  ]\n";
      "}\n" ]

let write ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t));
  Sys.rename tmp path

(* ---- reader ----------------------------------------------------------

   Tolerant across schema versions: v1 documents have no "trace", v2
   none of "metrics" — both read back as [].  Anything missing from the
   v1 core is a hard error; the regression gate must not silently
   compare against a half-parsed report. *)

module J = Pqc_util.Jsonx

exception Malformed of string

let req what = function
  | Some v -> v
  | None -> raise (Malformed ("missing or mistyped " ^ what))

let get_float ctx key j =
  req (ctx ^ "." ^ key) (Option.bind (J.member key j) J.to_float)

let get_int ctx key j =
  req (ctx ^ "." ^ key) (Option.bind (J.member key j) J.to_int)

let get_string ctx key j =
  req (ctx ^ "." ^ key) (Option.bind (J.member key j) J.to_string)

let get_bool ctx key j =
  req (ctx ^ "." ^ key) (Option.bind (J.member key j) J.to_bool)

let rollup_of_json ctx j =
  { span = get_string ctx "span" j;
    count = get_int ctx "count" j;
    total_s = get_float ctx "total_s" j }

let metric_of_json ctx j =
  { metric = get_string ctx "metric" j;
    count = get_int ctx "count" j;
    mean = get_float ctx "mean" j;
    p50 = get_float ctx "p50" j;
    p90 = get_float ctx "p90" j;
    p99 = get_float ctx "p99" j;
    max = get_float ctx "max" j }

let optional_list key of_item j =
  match J.member key j with
  | None -> []
  | Some arr -> List.map of_item (req (key ^ " array") (J.to_list arr))

let experiment_of_json j =
  let ctx =
    match Option.bind (J.member "name" j) J.to_string with
    | Some n -> "experiment " ^ n
    | None -> "experiment"
  in
  { name = get_string ctx "name" j;
    strategy = get_string ctx "strategy" j;
    engine = get_string ctx "engine" j;
    (* v3 and earlier have no run_id; read as "" rather than failing. *)
    run_id =
      Option.value ~default:""
        (Option.bind (J.member "run_id" j) J.to_string);
    pulse_duration_ns = get_float ctx "pulse_duration_ns" j;
    sequential_s = get_float ctx "sequential_s" j;
    parallel_s = get_float ctx "parallel_s" j;
    speedup = get_float ctx "speedup" j;
    cache_hits = get_int ctx "cache_hits" j;
    blocks_compiled = get_int ctx "blocks_compiled" j;
    workers = get_int ctx "workers" j;
    equal_pulse = get_bool ctx "equal_pulse" j;
    trace = optional_list "trace" (rollup_of_json (ctx ^ ".trace")) j;
    metrics = optional_list "metrics" (metric_of_json (ctx ^ ".metrics")) j }

let of_json s =
  match J.parse s with
  | Error e -> Error e
  | Ok doc -> (
    try
      let version = get_int "report" "schema_version" doc in
      if version < 1 || version > schema_version then
        Error (Printf.sprintf "unsupported schema_version %d" version)
      else
        Ok
          { mode = get_string "report" "mode" doc;
            workers = get_int "report" "workers" doc;
            experiments =
              List.map experiment_of_json
                (req "experiments array"
                   (Option.bind (J.member "experiments" doc) J.to_list)) }
    with Malformed what -> Error what)

let metric_rollup_of_json ~what j =
  match metric_of_json what j with
  | m -> Ok m
  | exception Malformed e -> Error e

let read ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> (
    match of_json s with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e
