(* v2: experiments gained a "trace" array of per-span rollups from the
   telemetry layer (empty when tracing was off for the run). *)
let schema_version = 2

type span_rollup = { span : string; count : int; total_s : float }

type experiment = {
  name : string;
  strategy : string;
  engine : string;
  pulse_duration_ns : float;
  sequential_s : float;
  parallel_s : float;
  speedup : float;
  cache_hits : int;
  blocks_compiled : int;
  workers : int;
  equal_pulse : bool;
  trace : span_rollup list;
}

type t = { mode : string; workers : int; experiments : experiment list }

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no inf/nan tokens; a benchmark that produced one (e.g. a
   speedup with a zero-duration denominator) renders as null rather than
   emitting a document nothing can parse. *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let rollup_json r =
  String.concat ""
    [ "        { \"span\": "; json_string r.span;
      ", \"count\": "; string_of_int r.count;
      ", \"total_s\": "; json_float r.total_s; " }" ]

let trace_json = function
  | [] -> "[]"
  | rs ->
    String.concat ""
      [ "[\n"; String.concat ",\n" (List.map rollup_json rs); "\n      ]" ]

let experiment_json e =
  String.concat ""
    [ "    {\n";
      "      \"name\": "; json_string e.name; ",\n";
      "      \"strategy\": "; json_string e.strategy; ",\n";
      "      \"engine\": "; json_string e.engine; ",\n";
      "      \"pulse_duration_ns\": "; json_float e.pulse_duration_ns; ",\n";
      "      \"sequential_s\": "; json_float e.sequential_s; ",\n";
      "      \"parallel_s\": "; json_float e.parallel_s; ",\n";
      "      \"speedup\": "; json_float e.speedup; ",\n";
      "      \"cache_hits\": "; string_of_int e.cache_hits; ",\n";
      "      \"blocks_compiled\": "; string_of_int e.blocks_compiled; ",\n";
      "      \"workers\": "; string_of_int e.workers; ",\n";
      "      \"equal_pulse\": "; string_of_bool e.equal_pulse; ",\n";
      "      \"trace\": "; trace_json e.trace; "\n";
      "    }" ]

let to_json t =
  String.concat ""
    [ "{\n";
      "  \"schema_version\": "; string_of_int schema_version; ",\n";
      "  \"mode\": "; json_string t.mode; ",\n";
      "  \"workers\": "; string_of_int t.workers; ",\n";
      "  \"experiments\": [\n";
      String.concat ",\n" (List.map experiment_json t.experiments);
      "\n  ]\n";
      "}\n" ]

let write ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t));
  Sys.rename tmp path
