(* Re-export: the latency model moved into the analysis layer so the
   static cost model (Pqc_analysis.Cost) can price strategies without a
   dependency cycle.  Pqc_core.Latency_model remains the public name the
   engine and existing callers use. *)
include Pqc_analysis.Latency_model
