(* Re-export: the pulse model moved into the analysis layer so the static
   cost model (Pqc_analysis.Cost) can price blocks without a dependency
   cycle.  Pqc_core.Pulse_model remains the public name the engine and
   existing callers use. *)
include Pqc_analysis.Pulse_model
