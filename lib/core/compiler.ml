module Circuit = Pqc_quantum.Circuit
module Pass = Pqc_transpile.Pass
module Route = Pqc_transpile.Route
module Topology = Pqc_transpile.Topology
module Block = Pqc_transpile.Block
module Slice = Pqc_transpile.Slice
module Gate_times = Pqc_pulse.Gate_times
module Pulse = Pqc_pulse.Pulse

let prepare ?topology c =
  let topo =
    match topology with Some t -> t | None -> Topology.line (Circuit.n_qubits c)
  in
  let optimized = Pass.optimize c in
  let routed = (Route.route topo optimized).routed in
  Pass.optimize routed

let lookup_jobs c =
  Array.to_list (Circuit.instrs c)
  |> List.map (fun (i : Circuit.instr) ->
         { Strategy.label = Pqc_quantum.Gate.name i.gate;
           qubits = Array.to_list i.qubits;
           duration = Gate_times.instr_duration i })

let gate_based c ~theta =
  let bound = Circuit.bind c theta in
  let duration = Gate_times.circuit_duration bound in
  let segments =
    Array.to_list (Circuit.instrs bound) |> List.map Pulse.lookup_gate
  in
  { Strategy.strategy = "gate-based"; duration_ns = duration;
    precompute = Engine.zero_cost; per_iteration = Engine.zero_cost;
    pulse = Pulse.of_segments segments; degradations = [];
    pool = Engine.zero_pool_stats }

let block_label (b : Block.block) =
  Printf.sprintf "block[%s]"
    (String.concat "," (List.map string_of_int b.qubits))

(* One block's schedulable job from its engine result, accumulating the
   search cost and any per-block fallback into the caller's refs. *)
let job_of_result ~cost ~degs (b : Block.block) (r : Engine.block_result) =
  let label = block_label b in
  cost := Engine.add_cost !cost r.Engine.search_cost;
  (match r.Engine.fallback with
  | Some reason ->
    degs :=
      { Resilience.stage = "engine:" ^ label; reason;
        detail = "block search fell back to lookup-table duration";
        run_id = Pqc_obs.Obs.Ctx.current () }
      :: !degs
  | None -> ());
  { Strategy.label; qubits = b.qubits; duration = r.Engine.duration_ns }

(* Blocks of a (bound) circuit as schedulable jobs with engine durations —
   searched as one batch over the worker pool — plus the accumulated
   search cost, per-block fallbacks, and pool accounting. *)
let block_jobs ?workers ~max_width ~engine bound =
  let blocks = Block.partition ~max_width bound in
  let results, pstats, pool_degs =
    Engine.search_many ?workers engine (List.map Block.extract blocks)
  in
  let cost = ref Engine.zero_cost in
  let degs = ref [] in
  let jobs = List.map2 (job_of_result ~cost ~degs) blocks results in
  (jobs, !cost, List.rev !degs @ pool_degs, pstats)

let pulse_of_jobs jobs =
  Pulse.of_segments
    (List.map
       (fun (j : Strategy.job) ->
         Pulse.Optimized { label = j.label; duration = j.duration; samples = None })
       jobs)

let full_grape ?workers ?(max_width = 4) ~engine c ~theta =
  let bound = Circuit.bind c theta in
  let jobs, cost, degs, pstats = block_jobs ?workers ~max_width ~engine bound in
  { Strategy.strategy = "full-grape";
    duration_ns = Strategy.makespan ~n:(Circuit.n_qubits c) jobs;
    precompute = Engine.zero_cost;
    (* The binding changes every iteration, so the whole search repeats
       every iteration: this is the latency that makes out-of-the-box
       GRAPE untenable (Section 1). *)
    per_iteration = cost;
    pulse = pulse_of_jobs jobs;
    degradations = degs;
    pool = pstats }

let strict_jobs ?workers ~max_width ~engine ~theta slices =
  (* Fixed blocks from every slice are gathered into one engine batch, so
     the worker pool sees the whole strict precompute at once instead of
     one slice's blocks at a time. *)
  let tagged =
    List.map
      (fun (s : Slice.slice) ->
        match s.var with
        | None ->
          (* Fixed slice: GRAPE-precompiled offline, blocked to width. *)
          Either.Left (Block.partition ~max_width s.circuit)
        | Some _ ->
          (* Parametrized gate: lookup-table pulse at runtime. *)
          Either.Right (lookup_jobs (Circuit.bind s.circuit theta)))
      slices
  in
  let fixed =
    List.concat_map
      (function Either.Left bs -> bs | Either.Right _ -> [])
      tagged
  in
  let results, pstats, pool_degs =
    Engine.search_many ?workers engine (List.map Block.extract fixed)
  in
  let precompute = ref Engine.zero_cost in
  let degs = ref [] in
  let remaining = ref results in
  let jobs =
    List.concat_map
      (function
        | Either.Right js -> js
        | Either.Left bs ->
          List.map
            (fun b ->
              match !remaining with
              | r :: rest ->
                remaining := rest;
                job_of_result ~cost:precompute ~degs b r
              | [] -> assert false (* one result per fixed block *))
            bs)
      tagged
  in
  (jobs, !precompute, List.rev !degs @ pool_degs, pstats)

let strict_partial ?workers ?(max_width = 4) ~engine c ~theta =
  let n = Circuit.n_qubits c in
  (* Both slicings are zero-latency at runtime, so the compiler
     precompiles both offline and keeps whichever schedule is shorter
     (region slicing wins when parameters are dense, linear slicing when
     they are sparse enough that deep runs survive whole). *)
  let region_jobs, region_cost, region_degs, region_pool =
    strict_jobs ?workers ~max_width ~engine ~theta (Slice.strict c)
  in
  let linear_jobs, linear_cost, linear_degs, linear_pool =
    strict_jobs ?workers ~max_width ~engine ~theta (Slice.strict_linear c)
  in
  let region_span = Strategy.makespan ~n region_jobs in
  let linear_span = Strategy.makespan ~n linear_jobs in
  let jobs, precompute, raw, degs =
    if region_span <= linear_span then
      (region_jobs, region_cost, region_span, region_degs)
    else (linear_jobs, linear_cost, linear_span, linear_degs)
  in
  (* Strict partial compilation is never worse than gate-based: both have
     zero runtime latency, so the compiler keeps whichever schedule is
     shorter (relevant only when blocking serializes an unusually parallel
     circuit). *)
  let fallback = Gate_times.circuit_duration (Circuit.bind c theta) in
  { Strategy.strategy = "strict-partial";
    duration_ns = Float.min raw fallback;
    precompute;
    per_iteration = Engine.zero_cost;
    pulse = pulse_of_jobs jobs;
    degradations = degs;
    (* Both slicings were compiled, so both batches' work is reported
       even though only one schedule survives. *)
    pool = Engine.add_pool_stats region_pool linear_pool }

let flexible_partial ?workers ?(max_width = 4) ~engine c ~theta =
  let n = Circuit.n_qubits c in
  let slices = Slice.flexible c in
  let items =
    List.concat_map
      (fun (s : Slice.slice) ->
        Block.partition ~max_width s.circuit
        |> List.map (fun (b : Block.block) ->
               (s, b, Circuit.bind (Block.extract b) theta)))
      slices
  in
  (* Search + hyperparameter tuning + one tuned run per slice block, the
     whole per-block pipeline batched over the pool. *)
  let results, pstats, pool_degs =
    Engine.flex_many ?workers engine (List.map (fun (_, _, c) -> c) items)
  in
  let precompute = ref Engine.zero_cost in
  let per_iteration = ref Engine.zero_cost in
  let degs = ref [] in
  let jobs =
    List.map2
      (fun ((s : Slice.slice), (b : Block.block), _) (fr : Engine.flex_result) ->
        let r = fr.Engine.search in
        let label = Printf.sprintf "slice[t%s]"
            (match s.var with Some v -> string_of_int v | None -> "-")
        in
        (match r.Engine.fallback with
        | Some reason ->
          degs :=
            { Resilience.stage = "engine:" ^ label; reason;
              detail =
                "slice block search fell back to lookup-table duration";
              run_id = Pqc_obs.Obs.Ctx.current () }
            :: !degs
        | None -> ());
        (* Offline: the minimal-time search plus hyperparameter tuning,
           once per slice block. *)
        precompute :=
          Engine.add_cost !precompute
            (Engine.add_cost r.Engine.search_cost fr.Engine.hyperopt);
        (* Online: one tuned GRAPE run at the known duration. *)
        per_iteration := Engine.add_cost !per_iteration fr.Engine.tuned;
        { Strategy.label; qubits = b.qubits; duration = r.Engine.duration_ns })
      items results
  in
  { Strategy.strategy = "flexible-partial";
    duration_ns = Strategy.makespan ~n jobs;
    precompute = !precompute;
    per_iteration = !per_iteration;
    pulse = pulse_of_jobs jobs;
    degradations = List.rev !degs @ pool_degs;
    pool = pstats }

type strategy = Gate_based | Strict_partial | Flexible_partial | Full_grape

let all_strategies = [ Gate_based; Strict_partial; Flexible_partial; Full_grape ]

let strategy_name = function
  | Gate_based -> "gate-based"
  | Strict_partial -> "strict-partial"
  | Flexible_partial -> "flexible-partial"
  | Full_grape -> "full-grape"

let run_strategy ?workers ~max_width ~engine strategy c ~theta =
  Pqc_obs.Obs.Span.with_ ~name:"compiler.strategy"
    ~attrs:[ ("strategy", strategy_name strategy) ]
  @@ fun () ->
  match strategy with
  | Gate_based -> gate_based c ~theta
  | Strict_partial -> strict_partial ?workers ~max_width ~engine c ~theta
  | Flexible_partial -> flexible_partial ?workers ~max_width ~engine c ~theta
  | Full_grape -> full_grape ?workers ~max_width ~engine c ~theta

(* Graceful degradation ladder.  Gate-based is the terminal rung: pure
   table lookups, no optimizer, cannot fail. *)
let degrade_chain = function
  | Gate_based -> [ Gate_based ]
  | Strict_partial -> [ Strict_partial; Gate_based ]
  | Flexible_partial -> [ Flexible_partial; Strict_partial; Gate_based ]
  | Full_grape -> [ Full_grape; Strict_partial; Gate_based ]

let usable (r : Strategy.compiled) =
  Float.is_finite r.Strategy.duration_ns && r.Strategy.duration_ns >= 0.0

let analysis_target = function
  | Gate_based -> Pqc_analysis.Rule.Gate_based
  | Strict_partial -> Pqc_analysis.Rule.Strict_partial
  | Flexible_partial -> Pqc_analysis.Rule.Flexible_partial
  | Full_grape -> Pqc_analysis.Rule.Full_grape

let strategy_of_target = function
  | Pqc_analysis.Rule.Gate_based -> Gate_based
  | Pqc_analysis.Rule.Strict_partial -> Strict_partial
  | Pqc_analysis.Rule.Flexible_partial -> Flexible_partial
  | Pqc_analysis.Rule.Full_grape -> Full_grape

(* Fail-fast gate: no GRAPE time is spent on a circuit that violates the
   invariants the strategies rely on.  Errors abort (Runner.Rejected);
   warnings become degradation records so the accounting that already
   tracks engine fallbacks also shows what the analyzer flagged. *)
let analysis_gate ~max_width strategy c ~theta =
  Pqc_obs.Obs.Span.with_ ~name:"compiler.analysis" @@ fun () ->
  let report =
    Pqc_analysis.Runner.analyze ~theta_len:(Array.length theta) ~max_width
      ~target:(analysis_target strategy) c
  in
  if Pqc_analysis.Runner.has_errors report then
    raise (Pqc_analysis.Runner.Rejected report);
  List.map
    (fun d ->
      { Resilience.stage = "analysis"; reason = Resilience.Lint;
        detail = Pqc_analysis.Diagnostic.to_string d;
        run_id = Pqc_obs.Obs.Ctx.current () })
    (Pqc_analysis.Runner.warnings report)

let compile ?workers ?(max_width = 4) ?(analysis = true) ?advice ~engine
    strategy c ~theta =
  (* Every top-level compile gets a correlation id.  An ambient context
     (set by a batch driver like the bench matrix) wins; otherwise a
     fresh deterministic id is minted from the strategy name.  Direct
     strategy calls (strict_partial, ...) bypass this and run with
     whatever context the caller holds — None in tests, which keeps
     degradation strings and goldens byte-identical. *)
  let module Ctx = Pqc_obs.Obs.Ctx in
  let ctx =
    match Ctx.current () with
    | Some _ as c -> c
    | None -> Some (Ctx.mint ("compile:" ^ strategy_name strategy))
  in
  Ctx.with_ctx ctx @@ fun () ->
  (* When the static advisor recommends exactly the requested strategy,
     this is a no-op: same strategy, no extra degradation record, so the
     compiled result is bit-identical to the unadvised call (held by
     test).  Only a differing recommendation switches the strategy, and
     that switch is recorded like every other degradation. *)
  let strategy, advisor_degs =
    match advice with
    | None -> (strategy, [])
    | Some (a : Pqc_analysis.Cost.advice) ->
      let recommended = strategy_of_target a.Pqc_analysis.Cost.recommended in
      if recommended = strategy then (strategy, [])
      else
        ( recommended,
          [ { Resilience.stage = "advisor"; reason = Resilience.Lint;
              detail =
                Printf.sprintf "advisor switched %s to %s"
                  (strategy_name strategy) (strategy_name recommended);
              run_id = Pqc_obs.Obs.Ctx.current () } ] )
  in
  Pqc_obs.Obs.Span.with_ ~name:"compiler.compile"
    ~attrs:
      [ ("strategy", strategy_name strategy);
        ("qubits", string_of_int (Circuit.n_qubits c));
        ("gates", string_of_int (Circuit.length c)) ]
  @@ fun () ->
  let lint_degs =
    advisor_degs
    @ (if analysis then analysis_gate ~max_width strategy c ~theta else [])
  in
  let rec go degs = function
    | [] -> assert false (* chains always end in Gate_based *)
    | [ last ] ->
      let r = run_strategy ?workers ~max_width ~engine last c ~theta in
      { r with Strategy.degradations = degs @ r.Strategy.degradations }
    | s :: rest -> (
      match run_strategy ?workers ~max_width ~engine s c ~theta with
      | r when usable r ->
        { r with Strategy.degradations = degs @ r.Strategy.degradations }
      | _ ->
        Pqc_obs.Obs.count "compiler.degraded";
        go
          (degs
          @ [ { Resilience.stage = strategy_name s;
                reason = Resilience.Non_finite;
                detail = "strategy produced a non-finite pulse duration";
                run_id = Pqc_obs.Obs.Ctx.current () } ])
          rest
      | exception e ->
        Pqc_obs.Obs.count "compiler.degraded";
        go
          (degs
          @ [ { Resilience.stage = strategy_name s;
                reason = Resilience.Diverged;
                detail = "strategy raised: " ^ Printexc.to_string e;
                run_id = Pqc_obs.Obs.Ctx.current () } ])
          rest)
  in
  go lint_degs (degrade_chain strategy)
