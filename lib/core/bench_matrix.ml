module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
module Obs = Pqc_obs.Obs
module Run_log = Pqc_obs.Run_log
module Pool = Pqc_parallel.Pool
module Rng = Pqc_util.Rng
module J = Pqc_util.Jsonx

let ( let* ) = Result.bind

(* ---- workload specs -------------------------------------------------- *)

type workload =
  | Mol of Pqc_vqe.Molecule.t
  | Qaoa of { graph : Pqc_qaoa.Graph.t; p : int }

(* Graph workloads are drawn from the fixed bench seed so a spec string
   denotes one concrete graph everywhere: here, in partialc --benchmark,
   and across machines. *)
let bench_graph_seed = 2019

let workload_of_spec spec =
  match Pqc_vqe.Molecule.find spec with
  | Some m -> Ok (Mol m)
  | None ->
    let parse () =
      match String.split_on_char 'p' (String.lowercase_ascii spec) with
      | [ head; p ] ->
        let p = int_of_string p in
        let rng = Rng.create bench_graph_seed in
        let graph =
          if String.length head > 4 && String.sub head 0 4 = "3reg" then
            Pqc_qaoa.Graph.random_regular rng ~degree:3
              (int_of_string (String.sub head 4 (String.length head - 4)))
          else if String.length head > 2 && String.sub head 0 2 = "er" then
            Pqc_qaoa.Graph.erdos_renyi rng ~p:0.5
              (int_of_string (String.sub head 2 (String.length head - 2)))
          else if String.length head > 1 && head.[0] = 'k' then
            Pqc_qaoa.Graph.clique
              (int_of_string (String.sub head 1 (String.length head - 1)))
          else failwith "unknown workload"
        in
        if p < 1 then failwith "p < 1";
        Ok (Qaoa { graph; p })
      | _ -> failwith "unknown workload"
    in
    (try parse ()
     with _ ->
       Error
         (Printf.sprintf
            "unknown workload %S (molecules: h2 lih beh2 nah h2o; QAOA: \
             3reg6p2, er8p1, k4p3, ...)"
            spec))

let workload_circuit = function
  | Mol m -> Pqc_vqe.Uccsd.ansatz m
  | Qaoa { graph; p } -> Pqc_qaoa.Qaoa.circuit graph ~p

let circuit_of_spec spec =
  let* w = workload_of_spec spec in
  Ok (workload_circuit w)

let workload_width = function
  | Mol m -> m.Pqc_vqe.Molecule.n_qubits
  | Qaoa { graph; _ } -> graph.Pqc_qaoa.Graph.n

(* ---- manifest -------------------------------------------------------- *)

type manifest = {
  name : string;
  engine : string;
  seed : int;
  iterations : int;
  max_width : int;
  item_deadline_s : float option;
  workloads : string list;
  topologies : string list;
  strategies : Compiler.strategy list;
  workers : int list;
  fault_plans : Fault.plan option list;
}

let manifest_schema_version = 1

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "gate" | "gate-based" -> Ok Compiler.Gate_based
  | "strict" | "strict-partial" -> Ok Compiler.Strict_partial
  | "flexible" | "flexible-partial" -> Ok Compiler.Flexible_partial
  | "grape" | "full-grape" -> Ok Compiler.Full_grape
  | other ->
    Error
      (Printf.sprintf
         "unknown strategy %S (gate, strict, flexible, grape)" other)

let topology_for name n =
  match name with
  | "line" -> Ok (Topology.line n)
  | "clique" -> Ok (Topology.clique n)
  | "grid" ->
    if n >= 4 && n mod 2 = 0 then Ok (Topology.grid ~rows:2 ~cols:(n / 2))
    else
      Error
        (Printf.sprintf
           "topology grid needs an even workload width >= 4, got %d" n)
  | other ->
    Error (Printf.sprintf "unknown topology %S (line, grid, clique)" other)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let axis ~kind key of_item ~default doc =
  match J.member key doc with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "manifest: %s is required" key))
  | Some arr -> (
    match J.to_list arr with
    | None -> Error (Printf.sprintf "manifest: %s must be an array" key)
    | Some [] -> Error (Printf.sprintf "manifest: %s must be non-empty" key)
    | Some items ->
      map_result
        (fun j ->
          match of_item j with
          | Some v -> Ok v
          | None ->
            Error
              (Printf.sprintf "manifest: %s must be an array of %s" key kind))
        items)

let opt_int key ~default doc =
  match J.member key doc with
  | None -> Ok default
  | Some j -> (
    match J.to_int j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "manifest: %s must be an integer" key))

let manifest_of_json s =
  match J.parse s with
  | Error e -> Error ("manifest: " ^ e)
  | Ok doc ->
    let* version = opt_int "schema_version" ~default:1 doc in
    let* () =
      if version = manifest_schema_version then Ok ()
      else
        Error
          (Printf.sprintf "manifest: unsupported schema_version %d" version)
    in
    let name =
      Option.value
        (Option.bind (J.member "name" doc) J.to_string)
        ~default:"matrix"
    in
    let engine =
      Option.value
        (Option.bind (J.member "engine" doc) J.to_string)
        ~default:"model"
    in
    let* () =
      if engine = "model" || engine = "numeric" then Ok ()
      else Error (Printf.sprintf "manifest: unknown engine %S" engine)
    in
    let* seed = opt_int "seed" ~default:7 doc in
    let* iterations = opt_int "iterations" ~default:0 doc in
    let* () =
      if iterations >= 0 then Ok ()
      else Error "manifest: iterations must be >= 0"
    in
    let* max_width = opt_int "max_width" ~default:4 doc in
    let* () =
      if max_width >= 1 then Ok () else Error "manifest: max_width must be >= 1"
    in
    let item_deadline_s =
      match Option.bind (J.member "item_deadline_s" doc) J.to_float with
      | Some d when Float.is_finite d && d > 0.0 -> Some d
      | Some _ | None -> None
    in
    let* workloads =
      axis ~kind:"strings" "workloads" J.to_string ~default:None doc
    in
    let* parsed_workloads = map_result workload_of_spec workloads in
    let* topologies =
      axis ~kind:"strings" "topologies" J.to_string ~default:(Some [ "line" ])
        doc
    in
    let* strategy_names =
      axis ~kind:"strings" "strategies" J.to_string ~default:None doc
    in
    let* strategies = map_result strategy_of_string strategy_names in
    let* workers =
      axis ~kind:"integers" "workers" J.to_int ~default:(Some [ 1 ]) doc
    in
    let* () =
      if List.for_all (fun w -> w >= 1) workers then Ok ()
      else Error "manifest: workers must all be >= 1"
    in
    let* plan_specs =
      axis ~kind:"strings" "fault_plans" J.to_string ~default:(Some [ "none" ])
        doc
    in
    let* fault_plans =
      map_result
        (fun spec ->
          match String.trim spec with
          | "" | "none" -> Ok None
          | spec -> (
            match Fault.parse spec with
            | Ok p -> Ok (Some p)
            | Error e ->
              Error (Printf.sprintf "manifest: fault plan %S: %s" spec e)))
        plan_specs
    in
    (* A hanging worker is only recoverable when the pool has an item
       deadline to kill it against; without one the matrix would block
       forever, so reject the combination up front. *)
    let* () =
      let hangs =
        List.exists
          (function
            | Some p -> contains_sub (Fault.to_string p) "hang="
            | None -> false)
          fault_plans
      in
      if hangs && item_deadline_s = None then
        Error "manifest: fault plan hangs workers but no item_deadline_s set"
      else Ok ()
    in
    (* Every (workload, topology) pair must be constructible. *)
    let* () =
      List.fold_left
        (fun acc (_spec, w) ->
          let* () = acc in
          List.fold_left
            (fun acc t ->
              let* () = acc in
              let* _ = topology_for t (workload_width w) in
              Ok ())
            (Ok ()) topologies)
        (Ok ())
        (List.combine workloads parsed_workloads)
    in
    Ok
      { name; engine; seed; iterations; max_width; item_deadline_s; workloads;
        topologies; strategies; workers; fault_plans }

let load_manifest ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> (
    match manifest_of_json s with
    | Ok m -> Ok m
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

(* ---- expansion ------------------------------------------------------- *)

type cell = {
  index : int;
  id : string;
  cell_name : string;
  workload : string;
  topology : string;
  strategy : Compiler.strategy;
  cell_workers : int;
  fault_plan : Fault.plan option;
}

let expand m =
  let cells = ref [] in
  let index = ref 0 in
  List.iter
    (fun workload ->
      List.iter
        (fun topology ->
          List.iter
            (fun strategy ->
              List.iter
                (fun cell_workers ->
                  List.iteri
                    (fun fp fault_plan ->
                      let cell_name =
                        Printf.sprintf "%s+%s+w%d+fp%d" workload topology
                          cell_workers fp
                      in
                      let id =
                        cell_name ^ "+" ^ Compiler.strategy_name strategy
                      in
                      cells :=
                        { index = !index; id; cell_name; workload; topology;
                          strategy; cell_workers; fault_plan }
                        :: !cells;
                      incr index)
                    m.fault_plans)
                m.workers)
            m.strategies)
        m.topologies)
    m.workloads;
  List.rev !cells

let cell_dir ~out_dir cell = Filename.concat out_dir cell.id
let index_path ~out_dir = Filename.concat out_dir "cells.json"

(* ---- filesystem helpers ---------------------------------------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let write_index m ~out_dir cells =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" manifest_schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"manifest\": %s,\n" (Bench_report.json_string m.name));
  Buffer.add_string buf
    (Printf.sprintf "  \"engine\": %s,\n" (Bench_report.json_string m.engine));
  Buffer.add_string buf "  \"cells\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun c -> "    " ^ Bench_report.json_string c.id)
          cells));
  Buffer.add_string buf "\n  ]\n}\n";
  write_file ~path:(index_path ~out_dir) (Buffer.contents buf)

(* ---- cell execution -------------------------------------------------- *)

let theta_for seed c =
  let rng = Rng.create seed in
  let n = Circuit.n_params c in
  Array.init n (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))

(* Mirrors the bench harness's numeric settings: no wall-clock deadline
   (a deadline firing in one run but not another would break the
   byte-identical determinism contract); the iteration budget bounds the
   work instead. *)
let numeric_settings () =
  { Engine.Grape.fast_settings with
    Engine.Grape.dt = 1.0;
    max_iters = 60;
    target_fidelity = 0.98 }

let engine_for m =
  if m.engine = "numeric" then Engine.numeric ~settings:(numeric_settings ()) ()
  else Engine.model

let rollups_from_obs () =
  let trace =
    List.map
      (fun (span, count, total_s) -> { Bench_report.span; count; total_s })
      (Obs.rollup ())
  in
  let metrics =
    List.map
      (fun name ->
        let s = Option.get (Obs.Metrics.stats name) in
        let p50, p90, p99 = Obs.Metrics.percentiles name in
        let mean =
          if s.Obs.Metrics.count = 0 then Float.nan
          else s.Obs.Metrics.sum /. float_of_int s.Obs.Metrics.count
        in
        { Bench_report.metric = name; count = s.Obs.Metrics.count; mean;
          p50; p90; p99; max = s.Obs.Metrics.max })
      (Obs.Metrics.names ())
  in
  (trace, metrics)

let run_variational m cell ~workload ~compiled ~gate ~run_path =
  let info =
    { Run_log.strategy = compiled.Strategy.strategy;
      precompute_s = compiled.Strategy.precompute.Engine.seconds;
      compile_latency_s = compiled.Strategy.per_iteration.Engine.seconds;
      pulse_duration_ns = compiled.Strategy.duration_ns;
      gate_duration_ns = gate.Strategy.duration_ns;
      cache_hits = compiled.Strategy.pool.Engine.cache_hits;
      degradations = List.length compiled.Strategy.degradations }
  in
  match workload with
  | Mol mol ->
    let hamiltonian =
      Pqc_vqe.Chemistry.synthetic ~seed:7
        ~n_qubits:mol.Pqc_vqe.Molecule.n_qubits
    in
    let ansatz = Pqc_vqe.Uccsd.ansatz mol in
    Run_log.with_log ~info ~algo:"vqe" ~label:cell.cell_name
      ~path:(Some run_path) (fun recorder ->
        ignore
          (Pqc_vqe.Vqe.run ~max_evals:m.iterations ~seed:m.seed ?recorder
             ~hamiltonian ~ansatz ()))
  | Qaoa { graph; p } ->
    Run_log.with_log ~info ~algo:"qaoa" ~label:cell.cell_name
      ~path:(Some run_path) (fun recorder ->
        ignore
          (Pqc_qaoa.Qaoa.optimize ~max_evals:m.iterations ~seed:m.seed
             ?recorder graph ~p))

let run_cell m ~out_dir cell =
  try
    let dir = cell_dir ~out_dir cell in
    mkdir_p dir;
    (* The cell's correlation id is a pure function of the manifest name
       and the cell id — independent of which driver worker runs the
       cell and of the driver's worker count — so rollup byte-equality
       across driver parallelism levels is preserved.  Everything the
       cell produces (spans, run-log lines, cache entries, degradations,
       the report below) carries this id. *)
    let rid = m.name ^ "/" ^ cell.id in
    Pqc_obs.Obs.Ctx.with_ctx (Some rid) @@ fun () ->
    let workload =
      match workload_of_spec cell.workload with
      | Ok w -> w
      | Error e -> failwith e
    in
    let raw = workload_circuit workload in
    let topology =
      match topology_for cell.topology (Circuit.n_qubits raw) with
      | Ok t -> t
      | Error e -> failwith e
    in
    let c = Compiler.prepare ~topology raw in
    let theta = theta_for m.seed c in
    let compile ~workers =
      (* A fresh engine per compile: neither run may warm the other's
         cache, matching the bench harness's contract. *)
      let engine = engine_for m in
      let t0 = Pqc_obs.Obs.Clock.now () in
      let r =
        Compiler.compile ~workers ~max_width:m.max_width ~engine cell.strategy
          c ~theta
      in
      (r, Pqc_obs.Obs.Clock.now () -. t0)
    in
    let seq, sequential_s = compile ~workers:1 in
    (* Telemetry and the fault plan are both scoped to the parallel
       compile + variational loop: the sequential compile above is the
       fault-free reference, and global state is restored before this
       function returns so driver-level pooling sees a quiet process. *)
    Obs.reset ();
    Obs.enable ();
    let ambient_plan = Fault.current () in
    let finish () =
      Fault.set ambient_plan;
      Obs.disable ();
      Obs.reset ()
    in
    match
      Fault.set cell.fault_plan;
      let par, parallel_s = compile ~workers:cell.cell_workers in
      Fault.set ambient_plan;
      if m.iterations > 0 then begin
        let gate = Compiler.gate_based c ~theta in
        run_variational m cell ~workload ~compiled:par ~gate
          ~run_path:(Filename.concat dir "run.jsonl")
      end;
      (par, parallel_s)
    with
    | exception e ->
      finish ();
      raise e
    | par, parallel_s ->
      let trace, metrics = rollups_from_obs () in
      write_file
        ~path:(Filename.concat dir "metrics.reg")
        (Obs.Metrics.encode_all ());
      finish ();
      let equal_pulse =
        Float.equal seq.Strategy.duration_ns par.Strategy.duration_ns
      in
      let experiment =
        { Bench_report.name = cell.cell_name;
          strategy = Compiler.strategy_name cell.strategy;
          engine = m.engine;
          run_id = rid;
          pulse_duration_ns = par.Strategy.duration_ns;
          sequential_s;
          parallel_s;
          speedup = sequential_s /. parallel_s;
          cache_hits = par.Strategy.pool.Engine.cache_hits;
          blocks_compiled = par.Strategy.pool.Engine.dispatched;
          workers = cell.cell_workers;
          equal_pulse;
          trace;
          metrics }
      in
      let report =
        { Bench_report.mode = "matrix:" ^ m.name;
          workers = cell.cell_workers;
          experiments = [ experiment ] }
      in
      Bench_report.write ~path:(Filename.concat dir "report.json") report;
      if equal_pulse then Ok ()
      else Error "sequential and parallel pulse durations differ"
  with e -> Error (Printexc.to_string e)

(* ---- driver ---------------------------------------------------------- *)

type outcome = { cell : cell; status : (unit, string) result }

(* Pool payloads must be single-line; cell results live on disk, so only
   a status travels back (and in-parent recovery just re-runs the cell,
   which is idempotent: every file write is atomic). *)
let esc_line s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unesc_line s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | c ->
         Buffer.add_char buf '\\';
         Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let encode_status = function
  | Ok () -> "ok"
  | Error m -> "err:" ^ esc_line m

let decode_status s =
  if s = "ok" then Some (Ok ())
  else if String.length s >= 4 && String.sub s 0 4 = "err:" then
    Some (Error (unesc_line (String.sub s 4 (String.length s - 4))))
  else None

let run ?workers m ~out_dir =
  let workers =
    match workers with Some w -> w | None -> Pool.workers_from_env ()
  in
  mkdir_p out_dir;
  let cells = expand m in
  write_index m ~out_dir cells;
  (* The item deadline is read from the environment by the engine-level
     pools inside each cell, so it travels by env var; restore the
     ambient value afterwards ("" reads as unset). *)
  let saved_deadline = Sys.getenv_opt "PQC_ITEM_DEADLINE_S" in
  (match m.item_deadline_s with
  | Some d -> Unix.putenv "PQC_ITEM_DEADLINE_S" (Printf.sprintf "%g" d)
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match (m.item_deadline_s, saved_deadline) with
      | None, _ -> ()
      | Some _, Some v -> Unix.putenv "PQC_ITEM_DEADLINE_S" v
      | Some _, None -> Unix.putenv "PQC_ITEM_DEADLINE_S" "")
    (fun () ->
      let results, _stats =
        Pool.map ~workers ~min_items:1 ~encode:encode_status
          ~decode:decode_status
          (fun cell -> run_cell m ~out_dir cell)
          cells
      in
      List.map2
        (fun cell (status, _recovered) -> { cell; status })
        cells results)
