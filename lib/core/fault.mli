(** Seeded chaos fault injection at the process and storage seams.

    Where {!Engine.faulty} injects {e optimizer} failures (to exercise
    retry/degradation), this module injects {e infrastructure} failures
    — hung and crashing pool workers, torn pipe frames, truncated cache
    files, a full disk — to prove that supervision
    ({!Pqc_parallel.Pool}) and crash-consistency ({!Pulse_cache}) mask
    them completely: under any plan, batch results are bit-identical to
    the fault-free sequential run and the cache always reloads.

    A {e plan} is a seed plus a per-site firing rate.  Whether a site
    fires for a given key is a pure hash of (seed, site, key) — never of
    execution order, process, or worker count — so a chaos run is
    exactly reproducible from its spec string.

    Spec syntax (the [PQC_FAULT_PLAN] environment variable, or {!parse}):
    {v seed=42,hang=0.5,crash-pre=0.25,crash-mid=0.25,partial-pipe=0.5,truncate=1,enospc=1 v}
    Unknown sites, rates outside [0,1], or a plan whose every rate is 0
    are rejected; a malformed [PQC_FAULT_PLAN] warns once on stderr and
    injects nothing.

    Worker sites ([hang], [crash-pre], [crash-mid], [partial-pipe]) are
    keyed by the item's batch index and consulted only inside forked
    pool children (via {!Pqc_parallel.Pool.set_fault_hook}, installed by
    {!set}/{!current}).  Storage sites ([truncate], [enospc]) are keyed
    by a per-path operation counter and consulted by {!Pulse_cache}
    inside the parent.  Each in-parent firing bumps a
    [fault.<site>] counter in {!Pqc_obs.Obs}. *)

type site =
  | Worker_hang  (** Worker sleeps forever after claiming an item. *)
  | Worker_crash_pre  (** Worker dies before computing the item. *)
  | Worker_crash_mid  (** Worker dies halfway through its result frame. *)
  | Partial_pipe  (** Worker frames a truncated record and carries on. *)
  | Cache_truncate  (** Cache journal append is torn mid-record. *)
  | Enospc  (** Cache persist fails as if the disk were full. *)

val all_sites : site list
val site_to_string : site -> string
val site_of_string : string -> site option

type plan

val parse : string -> (plan, string) result
val to_string : plan -> string
(** Canonical spec of a plan ([seed=..] plus every nonzero rate);
    [parse (to_string p)] reproduces [p]'s decisions. *)

val decide : plan -> site -> key:int -> bool
(** Pure decision function: does [site] fire for [key] under [plan]?
    Free of side effects (no counters) — the form used inside forked
    workers. *)

val set : plan option -> unit
(** Make a plan active process-wide (installing the pool fault hook) or
    deactivate injection with [None].  Overrides [PQC_FAULT_PLAN]. *)

val clear : unit -> unit
(** [set None]. *)

val current : unit -> plan option
(** The active plan, lazily initialized from [PQC_FAULT_PLAN] on first
    use (also installing the pool hook). *)

val active : unit -> bool

val fire : site -> key:int -> bool
(** [decide] against the active plan (false when none), bumping the
    [fault.<site>] counter on a hit.  The storage seams call this. *)
