module Grape = Pqc_grape.Grape

type failure =
  | Non_finite | Diverged | Deadline_exceeded | Cache_corrupt | Lint
  | Worker_lost | Io_error

let failure_to_string = function
  | Non_finite -> "non-finite"
  | Diverged -> "diverged"
  | Deadline_exceeded -> "deadline-exceeded"
  | Cache_corrupt -> "cache-corrupt"
  | Lint -> "lint"
  | Worker_lost -> "worker-lost"
  | Io_error -> "io-error"

let failure_of_string = function
  | "non-finite" -> Some Non_finite
  | "diverged" -> Some Diverged
  | "deadline-exceeded" -> Some Deadline_exceeded
  | "cache-corrupt" -> Some Cache_corrupt
  | "lint" -> Some Lint
  | "worker-lost" -> Some Worker_lost
  | "io-error" -> Some Io_error
  | _ -> None

(* Deadlines and cache failures are not retryable: the former because the
   budget is already gone, the latter because re-reading the same bytes
   cannot help.  Lint findings are static properties of the circuit, so
   retrying cannot change them either.  A lost worker's items are already
   recomputed in-process by the pool, so there is nothing left to retry.
   IO failures (unwritable cache path, full disk) persist until the
   operator intervenes. *)
let retryable = function
  | Non_finite | Diverged -> true
  | Deadline_exceeded | Cache_corrupt | Lint | Worker_lost | Io_error -> false

(* --- Retry policy --- *)

type policy = {
  max_attempts : int;
  lr_shrink : float;
  iter_backoff : float;
  reseed_stride : int;
}

let default_policy =
  { max_attempts = 3; lr_shrink = 0.5; iter_backoff = 1.5;
    reseed_stride = 7919 }

let env_int key fallback =
  match Sys.getenv_opt key with
  | Some s -> (match int_of_string_opt (String.trim s) with
               | Some v when v > 0 -> v
               | _ -> fallback)
  | None -> fallback

let env_float key fallback =
  match Sys.getenv_opt key with
  | Some s -> (match float_of_string_opt (String.trim s) with
               | Some v when Float.is_finite v && v > 0.0 -> Some v
               | _ -> fallback)
  | None -> fallback

let policy_from_env () =
  { default_policy with
    max_attempts = env_int "PQC_RETRY_ATTEMPTS" default_policy.max_attempts;
    lr_shrink =
      Option.value
        (env_float "PQC_RETRY_LR_SHRINK" (Some default_policy.lr_shrink))
        ~default:default_policy.lr_shrink }

let retune policy ~attempt (s : Grape.settings) =
  if attempt <= 0 then s
  else
    let a = float_of_int attempt in
    { s with
      Grape.seed = s.Grape.seed + (attempt * policy.reseed_stride);
      max_iters =
        min Grape.max_steps
          (int_of_float
             (float_of_int s.Grape.max_iters *. (policy.iter_backoff ** a)));
      hyperparams =
        { s.Grape.hyperparams with
          Grape.learning_rate =
            s.Grape.hyperparams.Grape.learning_rate
            *. (policy.lr_shrink ** a) } }

(* --- Deadlines (wall clock) --- *)

type deadline = float option

let no_deadline = None
let now () = Pqc_obs.Obs.Clock.now ()
let deadline_after seconds = Some (now () +. Float.max 0.0 seconds)
let of_seconds = function None -> None | Some s -> deadline_after s
let expired = function None -> false | Some d -> now () > d
let absolute d = d

let remaining_s = function
  | None -> None
  | Some d -> Some (Float.max 0.0 (d -. now ()))

let deadline_seconds_from_env () = env_float "PQC_SEARCH_DEADLINE_S" None

(* --- Degradation accounting --- *)

type degradation = {
  stage : string;
  reason : failure;
  detail : string;
  run_id : string option;
      (* correlation id of the request being degraded, when known *)
}

(* The [None] rendering is byte-identical to the historical format —
   the workers:1 ≡ workers:N determinism suite compares these strings. *)
let degradation_to_string d =
  match d.run_id with
  | None ->
    Printf.sprintf "%s: %s (%s)" d.stage (failure_to_string d.reason) d.detail
  | Some rid ->
    Printf.sprintf "%s: %s (%s) [%s]" d.stage (failure_to_string d.reason)
      d.detail rid

(* --- Generic bounded retry loop --- *)

let with_retries policy deadline f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
      if retryable e && attempt + 1 < policy.max_attempts && not (expired deadline)
      then go (attempt + 1)
      else err
  in
  go 0
