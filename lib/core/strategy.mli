module Pulse = Pqc_pulse.Pulse
(** Shared result types and block-level scheduling for the compilation
    strategies. *)

type job = {
  label : string;
  qubits : int list;  (** Original-register qubits the job occupies. *)
  duration : float;  (** Pulse duration, ns. *)
}

val makespan : n:int -> job list -> float
(** ASAP schedule of jobs over the register: each job starts when all its
    qubits are free (jobs listed in a dependency-respecting order, as
    produced by slicing/blocking).  This is how block pulses from
    different slices overlap in time when they touch disjoint qubits. *)

type compiled = {
  strategy : string;
  duration_ns : float;  (** Pulse duration of the compiled circuit. *)
  precompute : Engine.cost;  (** One-off offline work (before iteration 1). *)
  per_iteration : Engine.cost;
      (** Compilation work repeated at {e every} variational iteration —
          the quantity partial compilation attacks. *)
  pulse : Pulse.t;  (** Segment-level pulse schedule. *)
  degradations : Resilience.degradation list;
      (** Every fallback taken while compiling: block searches that
          degraded to lookup-table durations, and whole strategies the
          compiler had to abandon.  Empty for a clean compile. *)
  pool : Engine.pool_stats;
      (** Worker-pool accounting for the batched block searches this
          compile dispatched ({!Engine.zero_pool_stats} for strategies
          that never touch the engine). *)
}

val speedup : baseline:compiled -> compiled -> float
(** [baseline.duration / c.duration]. *)

val degraded : compiled -> bool
(** Whether any fallback was taken. *)

val degradation_report : compiled -> string
(** Human-readable "; "-joined summary of {!field-degradations}. *)
