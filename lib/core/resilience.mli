module Grape = Pqc_grape.Grape
(** Fault tolerance for the compilation engine.

    GRAPE is numerically fragile and sits on the critical path of every
    variational iteration: a diverged or stalled pulse search must never
    kill the surrounding VQE/QAOA loop.  This module centralizes the
    pieces the engine and compiler use to survive it: a structured
    failure vocabulary, a bounded retry policy that reseeds the optimizer
    and shrinks its learning rate, wall-clock deadlines, and degradation
    records that make every fallback visible in the result accounting. *)

type failure =
  | Non_finite  (** NaN/inf fidelity or gradient during optimization. *)
  | Diverged  (** Search failed to converge within its probe budget. *)
  | Deadline_exceeded  (** Wall-clock budget expired. *)
  | Cache_corrupt  (** Persistent cache entry failed validation. *)
  | Lint  (** Static analysis warning recorded by the pre-GRAPE gate. *)
  | Worker_lost
      (** A pool worker died (or shipped a corrupt record) and its share
          was recomputed in-process by the parent. *)
  | Io_error
      (** A filesystem operation failed (unwritable cache path, full
          disk); the result stands, only persistence degraded. *)

val failure_to_string : failure -> string
val failure_of_string : string -> failure option

val retryable : failure -> bool
(** [Non_finite] and [Diverged] are worth retrying with fresh settings;
    [Deadline_exceeded], [Cache_corrupt], [Lint], [Worker_lost] and
    [Io_error] are not. *)

type policy = {
  max_attempts : int;  (** Total attempts, first try included. *)
  lr_shrink : float;
      (** Learning-rate multiplier applied per retry (default 0.5: halve
          on each divergence). *)
  iter_backoff : float;
      (** Exponential backoff on the probe iteration budget per retry
          (default 1.5). *)
  reseed_stride : int;  (** Seed increment per retry (a prime). *)
}

val default_policy : policy
(** 3 attempts, halve the learning rate, 1.5x the iteration budget,
    reseed by 7919 per retry. *)

val policy_from_env : unit -> policy
(** {!default_policy} overridden by [PQC_RETRY_ATTEMPTS] and
    [PQC_RETRY_LR_SHRINK] when set (invalid values are ignored). *)

val retune : policy -> attempt:int -> Grape.settings -> Grape.settings
(** Settings for retry number [attempt] (0 = first try, returned
    unchanged): reseeded RNG, shrunk learning rate, backed-off iteration
    budget (capped at {!Grape.max_steps}). *)

type deadline
(** A wall-clock deadline, or no deadline. *)

val no_deadline : deadline
val deadline_after : float -> deadline
(** [deadline_after s] expires [s] seconds from now (clamped at 0). *)

val of_seconds : float option -> deadline
(** [None] maps to {!no_deadline}. *)

val expired : deadline -> bool
val remaining_s : deadline -> float option

val absolute : deadline -> float option
(** The underlying absolute [Unix.gettimeofday] instant, in the form
    {!Grape.optimize}'s [?deadline] expects. *)

val deadline_seconds_from_env : unit -> float option
(** Per-search budget from [PQC_SEARCH_DEADLINE_S], if set and valid. *)

type degradation = {
  stage : string;  (** Where the fallback happened, e.g. ["flexible-partial"]. *)
  reason : failure;
  detail : string;
  run_id : string option;
      (** Correlation id of the degraded request ({!Pqc_obs.Obs.Ctx}),
          when one was ambient at the failure site. *)
}

val degradation_to_string : degradation -> string
(** Renders ["<stage>: <reason> (<detail>)"], with a trailing
    [" [<run_id>]"] only when a run_id is present — the [None] form is
    byte-identical to the historical format. *)

val with_retries :
  policy -> deadline -> (attempt:int -> ('a, failure) result) ->
  ('a, failure) result
(** Run [f ~attempt:0], retrying (attempt 1, 2, ...) while the failure is
    {!retryable}, attempts remain, and the deadline has not expired.
    Returns the first [Ok] or the last [Error]. *)
