(** Persistent, checksummed store for precompiled block-search results.

    Strict partial compilation's whole value is that Fixed-block GRAPE
    pulses are computed once; this file format makes that precompute
    survive process restarts.  The format is line-oriented text:

    {v
    PQC-PULSE-CACHE v1
    <fnv1a-64-hex>\t<quoted key>\t<duration>\t<runs>\t<iters>\t<seconds>\t<fidelity|->\t<fallback|->
    v}

    Every record line carries an FNV-1a checksum of its payload.  {!load}
    never raises on bad input: records that are truncated, bit-flipped,
    or otherwise unparseable are dropped (and counted), and a file whose
    version header does not match is treated as fully untrusted.  {!save}
    writes atomically (temp file + rename) so a crash mid-save cannot
    corrupt an existing cache. *)

type entry = {
  key : string;  (** Canonical block key ({!Engine.block_key}). *)
  duration_ns : float;
  grape_runs : int;
  grape_iterations : int;
  seconds : float;
  fidelity : float option;
  fallback : string option;
      (** Serialized {!Resilience.failure} when the result is a
          degraded (lookup-table) duration rather than a GRAPE pulse. *)
}

val version : int
val header : string

val checksum : string -> string
(** FNV-1a 64-bit of a payload string, as 16 hex digits (exposed for
    tests and external validators). *)

val encode_entry : entry -> string
(** One checksummed record line (no trailing newline) — the exact wire
    format of a cache file record.  Also used by the worker pool to ship
    block results over a pipe, so a bit flip in transit is caught by the
    same FNV-1a check that guards the file. *)

val decode_entry : string -> entry option
(** Inverse of {!encode_entry}: [None] on checksum mismatch, truncation,
    or an unparseable payload. *)

val save : path:string -> entry list -> unit
(** Atomic write: serializes to [path ^ ".tmp"], then renames. *)

val merge : path:string -> entry list -> unit
(** Read-merge-write under an exclusive lock on [path ^ ".lock"]: loads
    the current file, replaces colliding keys with the fresh entries
    (newest record wins), appends genuinely new keys, and saves
    atomically.  Concurrent merges from separate processes serialize on
    the lock, so no merge can clobber another's records. *)

type load_result = {
  entries : entry list;  (** Valid records, in file order. *)
  dropped : int;  (** Corrupt/truncated records skipped. *)
}

val load : path:string -> load_result
(** Never raises: a missing file is an empty cache; corrupt records are
    dropped entry-by-entry; a bad header drops everything. *)
