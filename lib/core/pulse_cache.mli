(** Persistent, checksummed, crash-consistent store for precompiled
    block-search results.

    Strict partial compilation's whole value is that Fixed-block GRAPE
    pulses are computed once; this file format makes that precompute
    survive process restarts {e and} process crashes.  The format is
    line-oriented text:

    {v
    PQC-PULSE-CACHE v1
    <fnv1a-64-hex>\t<quoted key>\t<duration>\t<runs>\t<iters>\t<seconds>\t<fidelity|->\t<fallback|->\t<run_id|->
    v}

    Every record line carries an FNV-1a checksum of its payload.  The
    trailing [run_id] field is the correlation id of the request that
    produced the pulse; {!decode_entry} also accepts the older 7-field
    records without it (read back as [run_id = None]).

    {b Crash consistency.} Writes follow a write-ahead discipline:
    {!merge} first appends the fresh records to [path ^ ".journal"]
    (fsynced — the durability point), then compacts journal + snapshot
    into a new snapshot via temp-file + fsync + atomic rename +
    directory fsync, and finally retires the journal.  At every instant
    each record is complete on disk in at least one of the two files,
    so a crash at any point costs at most the unsynced tail of the
    in-flight append.  {!load} replays a surviving journal over the
    snapshot (idempotently), salvages the valid prefix of a torn tail
    in either file, and never raises on bad input: records that are
    truncated, bit-flipped, or otherwise unparseable are dropped (and
    counted), and a file whose version header does not match is treated
    as fully untrusted.  Salvage and drop events surface as
    [cache.salvaged] / [cache.dropped] {!Pqc_obs.Obs} counters
    (journal replays as [cache.journal.replayed], compactions as
    [cache.compaction]).

    The {!Fault} chaos sites [truncate] and [enospc] hook the journal
    append, keyed by a per-path operation counter. *)

type entry = {
  key : string;  (** Canonical block key ({!Engine.block_key}). *)
  duration_ns : float;
  grape_runs : int;
  grape_iterations : int;
  seconds : float;
  fidelity : float option;
  fallback : string option;
      (** Serialized {!Resilience.failure} when the result is a
          degraded (lookup-table) duration rather than a GRAPE pulse. *)
  run_id : string option;
      (** Correlation id of the request that produced this pulse
          ({!Pqc_obs.Obs.Ctx}); [None] for entries produced outside any
          request context and for vintage 7-field records. *)
}

val version : int
val header : string

val journal_path : string -> string
(** [path ^ ".journal"] — the write-ahead journal beside a cache file. *)

val checksum : string -> string
(** FNV-1a 64-bit of a payload string, as 16 hex digits (exposed for
    tests and external validators). *)

val encode_entry : entry -> string
(** One checksummed record line (no trailing newline) — the exact wire
    format of a cache file record.  Also used by the worker pool to ship
    block results over a pipe, so a bit flip in transit is caught by the
    same FNV-1a check that guards the file. *)

val decode_entry : string -> entry option
(** Inverse of {!encode_entry}: [None] on checksum mismatch, truncation,
    or an unparseable payload. *)

val save : path:string -> entry list -> unit
(** Full atomic replace: clears the journal, then writes the snapshot
    (temp file, fsync, rename, directory fsync). *)

val merge : path:string -> entry list -> unit
(** Journal-append-then-compact under an exclusive lock on
    [path ^ ".lock"]: durably appends the fresh records to the journal,
    reloads (snapshot + journal, newest record wins on key collision,
    genuinely new keys append in order), writes the compacted snapshot
    atomically, and retires the journal.  Concurrent merges from
    separate processes serialize on the lock, so no merge can clobber
    another's records; the lock and its fd are released on {e every}
    exit path, exceptions included. *)

type load_result = {
  entries : entry list;  (** Valid records, in file order. *)
  dropped : int;
      (** Corrupt records inside the file body (bit flips, clobbered
          header) — real damage, skipped record-by-record. *)
  salvaged : int;
      (** Torn-tail records truncated away by a crash mid-write: the
          valid prefix before them loaded cleanly and nothing after
          them existed.  Expected (and fully masked) crash damage. *)
}

val load : path:string -> load_result
(** Never raises: a missing file is an empty cache; a surviving journal
    is replayed over the snapshot; torn tails are salvaged to the valid
    record prefix; corrupt mid-file records are dropped entry-by-entry;
    a bad header drops everything. *)
