module Pulse = Pqc_pulse.Pulse

type job = { label : string; qubits : int list; duration : float }

let makespan ~n jobs =
  let free = Array.make n 0.0 in
  List.fold_left
    (fun acc job ->
      let start = List.fold_left (fun t q -> Float.max t free.(q)) 0.0 job.qubits in
      let finish = start +. job.duration in
      List.iter (fun q -> free.(q) <- finish) job.qubits;
      Float.max acc finish)
    0.0 jobs

type compiled = {
  strategy : string;
  duration_ns : float;
  precompute : Engine.cost;
  per_iteration : Engine.cost;
  pulse : Pulse.t;
  degradations : Resilience.degradation list;
  pool : Engine.pool_stats;
}

let speedup ~baseline c = baseline.duration_ns /. c.duration_ns

let degraded c = c.degradations <> []

(* Repeated identical fallbacks (the same block degrading in both strict
   slicings, say) collapse to one line with a count. *)
let degradation_report c =
  let lines = List.map Resilience.degradation_to_string c.degradations in
  let counted =
    List.fold_left
      (fun acc line ->
        match acc with
        | (l, n) :: rest when l = line -> (l, n + 1) :: rest
        | _ -> (line, 1) :: acc)
      []
      (List.sort compare lines)
  in
  String.concat "; "
    (List.rev_map
       (fun (l, n) -> if n = 1 then l else Printf.sprintf "%s (x%d)" l n)
       counted)
