module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
(** The four compilation strategies (paper Sections 2.3, 5, 6, 7).

    All strategies consume a {e prepared} variational circuit (already
    optimized and routed — use {!prepare}) plus a concrete parameter
    binding, and report the compiled pulse duration together with the
    classical compilation cost split into one-off precompute and
    per-variational-iteration work:

    - {!gate_based}: per-gate lookup-table pulses, concatenated along the
      parallel schedule.  Zero compilation latency, longest pulses.
    - {!full_grape}: block into <= [max_width]-qubit subcircuits and run a
      full minimal-time GRAPE search per block, {e every iteration}
      (the binding changes every iteration).  Shortest pulses, untenable
      latency.
    - {!strict_partial}: GRAPE-precompile the parametrization-independent
      Fixed blocks once; at runtime concatenate them with lookup pulses
      for the theta gates.  Zero per-iteration latency, pulse speedup
      governed by Fixed-block depth.
    - {!flexible_partial}: slice by parameter monotonicity into
      single-parameter subcircuits, precompute per-slice GRAPE
      hyperparameters; per iteration, one tuned GRAPE run per block
      recovers full-GRAPE pulse durations at a fraction of its latency. *)

val prepare : ?topology:Topology.t -> Circuit.t -> Circuit.t
(** Optimization passes + routing (defaults to a line topology of the
    circuit's width) + a final optimization sweep — the paper's fair
    gate-based baseline pipeline. *)

val gate_based : Circuit.t -> theta:float array -> Strategy.compiled

(** The engine-backed strategies below take [?workers]: independent block
    searches are batched over {!Pqc_parallel.Pool} forked workers.
    Defaults to the [PQC_WORKERS] environment variable (1 when unset —
    fully sequential, no fork).  Results are deterministic in the worker
    count; a lost worker degrades to in-process recompute and is recorded
    in the result's [degradations] and [pool] fields. *)

val full_grape :
  ?workers:int -> ?max_width:int -> engine:Engine.t -> Circuit.t ->
  theta:float array -> Strategy.compiled
(** [max_width] defaults to 4 (Section 5.2). *)

val strict_partial :
  ?workers:int -> ?max_width:int -> engine:Engine.t -> Circuit.t ->
  theta:float array -> Strategy.compiled

val flexible_partial :
  ?workers:int -> ?max_width:int -> engine:Engine.t -> Circuit.t ->
  theta:float array -> Strategy.compiled
(** Requires parameter monotonicity (guaranteed for {!Pqc_vqe.Uccsd} and
    {!Pqc_qaoa.Qaoa} circuits). *)

type strategy = Gate_based | Strict_partial | Flexible_partial | Full_grape

val all_strategies : strategy list
(** In the paper's presentation order. *)

val strategy_name : strategy -> string

val degrade_chain : strategy -> strategy list
(** The graceful-degradation ladder {!compile} walks, requested strategy
    first: flexible -> strict -> gate-based (full GRAPE degrades through
    strict too).  Gate-based is the terminal rung — pure table lookups
    that cannot fail. *)

val strategy_of_target : Pqc_analysis.Rule.target -> strategy
(** Inverse of the strategy-to-analysis-target mapping. *)

val compile :
  ?workers:int -> ?max_width:int -> ?analysis:bool ->
  ?advice:Pqc_analysis.Cost.advice -> engine:Engine.t ->
  strategy -> Circuit.t -> theta:float array -> Strategy.compiled
(** Fault-tolerant compilation entry point: runs the requested strategy
    and, if it raises or yields a non-finite duration, walks
    {!degrade_chain} until a realizable pulse is produced (gate-based
    always is).  Every abandoned rung, and every engine-level block
    fallback, is recorded in the result's
    {!Strategy.compiled.degradations} — degradation is explicit, never
    silent.

    Unless [analysis] is [false], the static analyzer
    ({!Pqc_analysis.Runner}) gates the whole pipeline first: any [Error]
    diagnostic raises {!Pqc_analysis.Runner.Rejected} before a single
    GRAPE search starts, and [Warning] diagnostics are recorded as
    [Resilience.Lint] degradations in the result.

    When [advice] (from {!Pqc_analysis.Runner.advise}) is given and its
    recommendation differs from [strategy], the recommended strategy is
    compiled instead and the switch is recorded as an ["advisor"]
    degradation.  When the recommendation equals [strategy], the call is
    bit-identical to the unadvised one (held by test). *)
