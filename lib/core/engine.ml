module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Grape = Pqc_grape.Grape
module Hamiltonian = Pqc_grape.Hamiltonian
module Hyperopt = Pqc_hyperopt.Hyperopt
module Rng = Pqc_util.Rng
module Pool = Pqc_parallel.Pool
module Obs = Pqc_obs.Obs

type cost = { grape_runs : int; grape_iterations : int; seconds : float }

let zero_cost = { grape_runs = 0; grape_iterations = 0; seconds = 0.0 }

let add_cost a b =
  { grape_runs = a.grape_runs + b.grape_runs;
    grape_iterations = a.grape_iterations + b.grape_iterations;
    seconds = a.seconds +. b.seconds }

type block_result = {
  duration_ns : float;
  search_cost : cost;
  fidelity : float option;
  fallback : Resilience.failure option;
  run_id : string option;
      (* correlation id ambient when the result was produced; cache hits
         keep the id of the request that originally paid for the pulse *)
}

type numeric_config = {
  settings : Grape.settings;
  system_for : int -> Hamiltonian.t;
  cache : (string, block_result) Hashtbl.t;
  policy : Resilience.policy;
  deadline_s : float option;
  cache_file : string option;
  mutable cache_dropped : int;
  mutable cache_salvaged : int;
}

type fault = Nan_fidelity | No_converge | Stall

(* [fseed] keeps the original seed around so batch drivers can derive an
   independent, position-keyed injection stream per item: a shared
   mutable [frng] would make the injection pattern depend on execution
   order, which forked workers do not preserve. *)
type fault_plan = { frng : Rng.t; fseed : int; rate : float; kinds : fault array }

type t =
  | Model
  | Numeric of numeric_config
  | Faulty of fault_plan * t

let model = Model

(* --- Persistent cache plumbing --- *)

let entry_of_result key (r : block_result) =
  { Pulse_cache.key;
    duration_ns = r.duration_ns;
    grape_runs = r.search_cost.grape_runs;
    grape_iterations = r.search_cost.grape_iterations;
    seconds = r.search_cost.seconds;
    fidelity = r.fidelity;
    fallback = Option.map Resilience.failure_to_string r.fallback;
    run_id = r.run_id }

(* [None] when the fallback tag is not a failure we know — treat the
   record as corrupt rather than resurrecting it with wrong semantics. *)
let result_of_entry (e : Pulse_cache.entry) =
  let fallback =
    match e.fallback with
    | None -> Some None
    | Some s ->
      (match Resilience.failure_of_string s with
       | Some f -> Some (Some f)
       | None -> None)
  in
  Option.map
    (fun fallback ->
      { duration_ns = e.duration_ns;
        search_cost =
          { grape_runs = e.grape_runs;
            grape_iterations = e.grape_iterations;
            seconds = e.seconds };
        fidelity = e.fidelity;
        fallback;
        run_id = e.run_id })
    fallback

let load_cache cfg path =
  let { Pulse_cache.entries; dropped; salvaged } = Pulse_cache.load ~path in
  let unknown = ref 0 in
  List.iter
    (fun (e : Pulse_cache.entry) ->
      match result_of_entry e with
      | Some r -> Hashtbl.replace cfg.cache e.key r
      | None -> incr unknown)
    entries;
  cfg.cache_dropped <- dropped + !unknown;
  cfg.cache_salvaged <- salvaged

let numeric ?(settings = Grape.fast_settings) ?system_for ?policy ?deadline_s
    ?cache_file () =
  let system_for =
    match system_for with Some f -> f | None -> fun n -> Hamiltonian.gmon n
  in
  let policy =
    match policy with Some p -> p | None -> Resilience.policy_from_env ()
  in
  let deadline_s =
    match deadline_s with
    | Some _ as s -> s
    | None -> Resilience.deadline_seconds_from_env ()
  in
  let cache_file =
    match cache_file with
    | Some _ as f -> f
    | None -> Sys.getenv_opt "PQC_PULSE_CACHE"
  in
  let cfg =
    { settings; system_for; cache = Hashtbl.create 64; policy; deadline_s;
      cache_file; cache_dropped = 0; cache_salvaged = 0 }
  in
  (match cache_file with Some path -> load_cache cfg path | None -> ());
  Numeric cfg

let faulty ?(rate = 1.0) ?(kinds = [| Nan_fidelity; No_converge; Stall |])
    ~seed inner =
  if Array.length kinds = 0 then
    invalid_arg "Engine.faulty: kinds must be non-empty";
  Faulty ({ frng = Rng.create seed; fseed = seed; rate; kinds }, inner)

type base = Base_model | Base_numeric of numeric_config

(* The outermost fault plan wins; inner wrappers are inert. *)
let rec unwrap = function
  | Faulty (p, b) ->
    let _, base = unwrap b in
    (Some p, base)
  | Model -> (None, Base_model)
  | Numeric cfg -> (None, Base_numeric cfg)

let is_numeric t =
  match unwrap t with _, Base_numeric _ -> true | _, Base_model -> false

let persist_result t =
  match unwrap t with
  | _, Base_model -> Ok ()
  | _, Base_numeric cfg ->
    (match cfg.cache_file with
     | None -> Ok ()
     | Some path ->
       let entries =
         Hashtbl.fold (fun key r acc -> entry_of_result key r :: acc)
           cfg.cache []
       in
       (* Merge, not overwrite: two engines (or two worker pools) that
          persist to the same cache path must both survive on disk. *)
       Obs.Span.with_ ~name:"engine.persist"
         ~attrs:[ ("entries", string_of_int (List.length entries)) ]
         (fun () ->
           (* An unwritable or full cache path must not fail the compile
              that produced the results: the memo table is intact, only
              its persistence degraded. *)
           match Pulse_cache.merge ~path entries with
           | () -> Ok ()
           | exception ((Sys_error _ | Unix.Unix_error _) as exn) ->
             let detail =
               match exn with
               | Sys_error m -> m
               | Unix.Unix_error (e, op, arg) ->
                 Printf.sprintf "%s: %s (%s)" op (Unix.error_message e) arg
               | _ -> Printexc.to_string exn
             in
             Obs.count "engine.persist.failed";
             Printf.eprintf
               "partialqc: pulse cache %s not persisted: %s\n%!" path detail;
             Error
               { Resilience.stage = "persist"; reason = Resilience.Io_error;
                 detail; run_id = Obs.Ctx.current () }))

let persist t =
  match persist_result t with Ok () -> () | Error _ -> ()

let cache_size t =
  match unwrap t with
  | _, Base_model -> 0
  | _, Base_numeric cfg -> Hashtbl.length cfg.cache

let cache_dropped t =
  match unwrap t with
  | _, Base_model -> 0
  | _, Base_numeric cfg -> cfg.cache_dropped

let cache_salvaged t =
  match unwrap t with
  | _, Base_model -> 0
  | _, Base_numeric cfg -> cfg.cache_salvaged

(* Canonical key of a bound block, for memoization.  Angles are keyed on
   their exact IEEE-754 bits: a printf truncation here once made bindings
   closer than its precision collide and alias each other's pulses. *)
let block_key c =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int (Circuit.n_qubits c));
  Circuit.iter
    (fun (i : Circuit.instr) ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (Gate.name i.gate);
      (match Gate.param i.gate with
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf "(%Lx)" (Int64.bits_of_float (Param.bind p [||])))
      | None -> ());
      Array.iter (fun q -> Buffer.add_string buf (Printf.sprintf ",%d" q)) i.qubits)
    c;
  Buffer.contents buf

let require_bound c =
  if Circuit.depends c <> [] then
    invalid_arg "Engine: block still depends on parameters (bind theta first)"

let model_steps settings duration = max 2 (int_of_float (duration /. settings.Grape.dt))

let model_search c =
  let width = Circuit.n_qubits c in
  let duration = Pulse_model.block_duration c in
  let steps = model_steps Grape.fast_settings (Float.max duration 1.0) in
  let iters =
    Latency_model.probes_per_search * Latency_model.default_iterations width
  in
  { duration_ns = duration;
    search_cost =
      { grape_runs = Latency_model.probes_per_search;
        grape_iterations = iters;
        seconds =
          float_of_int iters
          *. Latency_model.seconds_per_iteration ~width ~steps };
    fidelity = None;
    fallback = None;
    run_id = Obs.Ctx.current () }

(* One numeric search attempt at the given (possibly retuned) settings. *)
let numeric_attempt cfg settings deadline c =
  let width = Circuit.n_qubits c in
  let sys = cfg.system_for width in
  let target = Circuit.unitary c in
  let upper = Float.max (Gate_times.circuit_duration c) (4.0 *. settings.Grape.dt) in
  match
    Grape.minimal_time ~settings ?deadline:(Resilience.absolute deadline)
      ~upper_bound:upper sys ~target
  with
  | Some s ->
    if not (Float.is_finite s.minimal.total_time) then
      Error Resilience.Non_finite
    else
      Ok { duration_ns = s.minimal.total_time;
           search_cost =
             { grape_runs = List.length s.probes;
               grape_iterations = s.grape_iterations_total;
               seconds =
                 (* Sum of per-probe wall time is not retained; the minimal
                    probe's rate scaled by total iterations is a faithful
                    estimate. *)
                 (if s.minimal.iterations > 0 then
                    s.minimal.wall_time_s /. float_of_int s.minimal.iterations
                    *. float_of_int s.grape_iterations_total
                  else s.minimal.wall_time_s) };
           fidelity = Some s.minimal.fidelity;
           fallback = None;
           run_id = Obs.Ctx.current () }
  | None ->
    (* Nothing converged within budget.  Distinguish running out of
       wall-clock from running out of probes so the degradation record
       says why. *)
    if Resilience.expired deadline then Error Resilience.Deadline_exceeded
    else Error Resilience.Diverged
  | exception Invalid_argument _ -> Error Resilience.Non_finite

let inject plan =
  match plan with
  | Some p when Rng.float p.frng 1.0 < p.rate -> Some (Rng.choice p.frng p.kinds)
  | _ -> None

(* Gate-based lookup duration: realizable by concatenation, always finite
   — the terminal rung of the degradation ladder. *)
let fallback_result c reason spent =
  { duration_ns = Gate_times.circuit_duration c;
    search_cost = spent;
    fidelity = None;
    fallback = Some reason;
    run_id = Obs.Ctx.current () }

(* [search] plus a flag telling whether the result was produced under an
   injected fault (and therefore must never be cached or persisted) —
   the batch drivers ship this flag over the worker pipe so the parent's
   merge step applies the same no-poison rule as the in-process path. *)
let search_flagged t c =
  require_bound c;
  if Circuit.length c = 0 then
    ({ duration_ns = 0.0; search_cost = zero_cost; fidelity = None;
       fallback = None; run_id = Obs.Ctx.current () },
     false)
  else
    let plan, base = unwrap t in
    let policy, deadline =
      match base with
      | Base_numeric cfg ->
        (cfg.policy, Resilience.of_seconds cfg.deadline_s)
      | Base_model -> (Resilience.default_policy, Resilience.no_deadline)
    in
    let cached_key =
      match base with
      | Base_numeric cfg ->
        let key = block_key c in
        (match Hashtbl.find_opt cfg.cache key with
         | Some r -> Either.Left r
         | None -> Either.Right (Some (cfg, key)))
      | Base_model -> Either.Right None
    in
    match cached_key with
    | Either.Left r ->
      Obs.count "engine.cache.hit";
      (r, false)
    | Either.Right store ->
      (match store with
      | Some _ -> Obs.count "engine.cache.miss"
      | None -> ());
      Obs.Span.with_ ~name:"engine.search"
        ~attrs:
          [ ("width", string_of_int (Circuit.n_qubits c));
            ("gates", string_of_int (Circuit.length c)) ]
      @@ fun () ->
      let injected = ref false in
      (* Real (non-injected) attempts that failed still burned optimizer
         time; surface at least the run count in the fallback's cost. *)
      let failed_runs = ref 0 in
      let attempt ~attempt =
        match inject plan with
        | Some Nan_fidelity -> injected := true; Error Resilience.Non_finite
        | Some No_converge -> injected := true; Error Resilience.Diverged
        | Some Stall -> injected := true; Error Resilience.Deadline_exceeded
        | None ->
          (match base with
           | Base_model -> Ok (model_search c)
           | Base_numeric cfg ->
             let settings = Resilience.retune cfg.policy ~attempt cfg.settings in
             match numeric_attempt cfg settings deadline c with
             | Ok _ as ok -> ok
             | Error _ as e -> incr failed_runs; e)
      in
      let r =
        match Resilience.with_retries policy deadline attempt with
        | Ok r -> r
        | Error reason ->
          fallback_result c reason { zero_cost with grape_runs = !failed_runs }
      in
      (* Injected faults are synthetic: caching their fallback would leak
         test poison into later, healthy searches.  Genuine results —
         including genuine degradations — are memoized as before. *)
      (match store with
       | Some (cfg, key) when not !injected -> Hashtbl.replace cfg.cache key r
       | _ -> ());
      (r, !injected)

let search t c = fst (search_flagged t c)

let tuned_run_cost t c ~duration =
  require_bound c;
  let width = Circuit.n_qubits c in
  match unwrap t with
  | _, Base_model ->
    let iters =
      float_of_int (Latency_model.default_iterations width)
      /. Latency_model.tuning_speedup width
    in
    let steps = model_steps Grape.fast_settings (Float.max duration 1.0) in
    { grape_runs = 1;
      grape_iterations = int_of_float iters;
      seconds = iters *. Latency_model.seconds_per_iteration ~width ~steps }
  | _, Base_numeric cfg ->
    let sys = cfg.system_for width in
    let target = Circuit.unitary c in
    let deadline = Resilience.of_seconds cfg.deadline_s in
    let r =
      Grape.optimize ~settings:cfg.settings
        ?deadline:(Resilience.absolute deadline) sys ~target
        ~total_time:duration
    in
    { grape_runs = 1; grape_iterations = r.iterations; seconds = r.wall_time_s }

let hyperopt_cost t c ~duration =
  require_bound c;
  let width = Circuit.n_qubits c in
  match unwrap t with
  | _, Base_model ->
    let iters =
      Latency_model.hyperopt_grid_evals * Latency_model.default_iterations width
    in
    let steps = model_steps Grape.fast_settings (Float.max duration 1.0) in
    { grape_runs = Latency_model.hyperopt_grid_evals;
      grape_iterations = iters;
      seconds =
        float_of_int iters *. Latency_model.seconds_per_iteration ~width ~steps }
  | _, Base_numeric cfg ->
    (* Wall clock, not [Sys.time] (process CPU time): hyperopt probes can
       block on deadlines or fault hooks, and CPU time would silently drop
       that.  Started before [system_for] so Hamiltonian construction is
       part of the reported cost, matching what a caller actually waits. *)
    let t0 = Obs.Clock.now () in
    let sys = cfg.system_for width in
    let obj =
      { Hyperopt.system = sys;
        (* The block is already bound; hyperopt probes perturb nothing, so
           reuse the same target for each probe angle. *)
        target_of = (fun _ -> Circuit.unitary c);
        total_time = duration;
        settings = cfg.settings }
    in
    let deadline = Resilience.of_seconds cfg.deadline_s in
    let lr_grid = Pqc_util.Stats.logspace (-1.0) 0.3 4 in
    let score =
      Hyperopt.grid_search ~lr_grid ~decay_grid:[| 0.998; 1.0 |]
        ~angles:[| 1.0 |] ?deadline:(Resilience.absolute deadline) obj
    in
    { grape_runs = 8;
      grape_iterations = int_of_float (8.0 *. score.Hyperopt.iterations);
      seconds = Obs.Clock.now () -. t0 }

(* --- Batch compilation over the worker pool --- *)

type pool_stats = {
  workers : int;
  dispatched : int;
  cache_hits : int;
  recovered : int;
}

let zero_pool_stats = { workers = 1; dispatched = 0; cache_hits = 0; recovered = 0 }

let add_pool_stats a b =
  { workers = max a.workers b.workers;
    dispatched = a.dispatched + b.dispatched;
    cache_hits = a.cache_hits + b.cache_hits;
    recovered = a.recovered + b.recovered }

(* Block results travel over the worker pipe in the pulse-cache record
   format, so they carry the same FNV-1a checksum on the wire as on
   disk.  A leading flag char marks results produced under an injected
   fault — those must never reach the cache. *)
let encode_search key (r, injected) =
  (if injected then "!" else "=")
  ^ Pulse_cache.encode_entry (entry_of_result key r)

let decode_search s =
  if String.length s < 2 then None
  else
    let injected =
      match s.[0] with '!' -> Some true | '=' -> Some false | _ -> None
    in
    Option.bind injected (fun injected ->
        Option.bind
          (Pulse_cache.decode_entry (String.sub s 1 (String.length s - 1)))
          (fun (e : Pulse_cache.entry) ->
            Option.map
              (fun r -> (e.key, (r, injected)))
              (result_of_entry e)))

let encode_cost (c : cost) =
  let p =
    Printf.sprintf "%d\t%d\t%h" c.grape_runs c.grape_iterations c.seconds
  in
  Pulse_cache.checksum p ^ "\t" ^ p

let decode_cost s =
  match String.index_opt s '\t' with
  | None -> None
  | Some i ->
    let crc = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if not (String.equal (Pulse_cache.checksum rest) crc) then None
    else
      (match
         Scanf.sscanf rest "%d\t%d\t%h" (fun gr gi sec -> (gr, gi, sec))
       with
      | gr, gi, sec when Float.is_finite sec ->
        Some { grape_runs = gr; grape_iterations = gi; seconds = sec }
      | _ -> None
      | exception _ -> None)

(* Each batch item gets its own injection stream, keyed on the plan seed
   and the item's input position: the pattern of injected faults is then
   a pure function of the batch, identical whether items run in one
   process or across any number of forked workers, in any order. *)
let item_engine t plan idx =
  match plan with
  | None -> t
  | Some p ->
    Faulty ({ p with frng = Rng.create (p.fseed + ((idx + 1) * 0x2545f491)) }, t)

(* Generic batch driver: dedup by block key, resolve memo hits in the
   parent, fan the rest out over the pool, verify each record landed on
   the key it was dispatched for, merge cacheable results back into the
   memo table, and reassemble per input order.  [compute] runs in forked
   children {e and} in the parent (sequential mode and recovery), so the
   two paths stay behaviorally identical by construction. *)
let run_batch (type r) ?workers ?min_items t circuits
    ~(compute : t -> Pqc_quantum.Circuit.t -> r)
    ~(encode : string -> r -> string)
    ~(decode : string -> (string * r) option)
    ~(cached : numeric_config -> string -> r option)
    ~(cacheable : r -> bool)
    ~(store : numeric_config -> string -> r -> unit) :
    r list * pool_stats * Resilience.degradation list =
  List.iter require_bound circuits;
  Obs.Span.with_ ~name:"engine.batch"
    ~attrs:[ ("items", string_of_int (List.length circuits)) ]
  @@ fun () ->
  let plan, base = unwrap t in
  let arr = Array.of_list circuits in
  let n = Array.length arr in
  let keys = Array.map block_key arr in
  let first = Hashtbl.create (2 * n + 16) in
  Array.iteri
    (fun i k -> if not (Hashtbl.mem first k) then Hashtbl.add first k i)
    keys;
  let results : r option array = Array.make n None in
  let cache_hits = ref 0 in
  let todo = ref [] in
  Array.iteri
    (fun i k ->
      if Hashtbl.find first k <> i then
        (* Duplicate block: assembled from its first occurrence below. *)
        incr cache_hits
      else if Circuit.length arr.(i) = 0 then
        (* Empty blocks are free; computing them in-process keeps them
           out of the cache, exactly as the single-item path does. *)
        results.(i) <- Some (compute t arr.(i))
      else
        let hit =
          match base with
          | Base_numeric cfg -> cached cfg k
          | Base_model -> None
        in
        match hit with
        | Some r ->
          incr cache_hits;
          results.(i) <- Some r
        | None -> todo := (i, k, arr.(i)) :: !todo)
    keys;
  let todo = List.rev !todo in
  if !cache_hits > 0 then
    Obs.count ~by:(float_of_int !cache_hits) "engine.batch.cache_hits";
  if todo <> [] then
    Obs.count ~by:(float_of_int (List.length todo)) "engine.batch.dispatched";
  (* Per-item correlation: each batch item derives "<run_id>#<idx>" from
     the ambient request context (captured here, in the parent, before
     any fork).  The derivation runs inside [f], which is the single
     code path shared by sequential mode, forked children and in-parent
     recovery — so the ids an item's spans, cache entries and records
     carry are identical under any worker count. *)
  let ambient = Obs.Ctx.current () in
  let item_ctx idx = Option.map (fun a -> Obs.Ctx.derive a idx) ambient in
  let item_rid idx =
    match item_ctx idx with
    | Some rid -> rid
    | None -> Printf.sprintf "item#%d" idx
  in
  let f (idx, _k, c) =
    Obs.Ctx.with_ctx (item_ctx idx) (fun () ->
        compute (item_engine t plan idx) c)
  in
  (* Force the chaos plan (PQC_FAULT_PLAN) to parse and install its pool
     hook before any fork, so seeded worker faults apply to this batch. *)
  ignore (Fault.current ());
  let todo_arr = Array.of_list todo in
  let pool_out, pstats =
    Pool.map ?workers ?min_items
      ~item_label:(fun i ->
        if i < 0 || i >= Array.length todo_arr then ""
        else
          let idx, _, _ = todo_arr.(i) in
          item_rid idx)
      ~encode:(fun (k, r) -> encode k r)
      ~decode
      (fun ((_, k, _) as item) -> (k, f item))
      todo
  in
  let degs = ref [] in
  let mismatched = ref 0 in
  List.iter2
    (fun ((idx, k, _c) as item) ((rk, r), pool_recovered) ->
      let r, recovered =
        if String.equal rk k then (r, pool_recovered)
        else begin
          (* The record checksums fine but answers a different key: the
             index framing was corrupted in transit.  Recompute rather
             than trust it. *)
          incr mismatched;
          (f item, true)
        end
      in
      if recovered then
        degs :=
          { Resilience.stage = "worker-pool"; reason = Resilience.Worker_lost;
            detail =
              Printf.sprintf
                "batch item %d recomputed in-process after its worker's \
                 record was lost or corrupt"
                idx;
            run_id = item_ctx idx }
          :: !degs;
      (match base with
      | Base_numeric cfg when cacheable r -> store cfg k r
      | _ -> ());
      results.(idx) <- Some r)
    todo pool_out;
  let out =
    List.init n (fun i ->
        match results.(Hashtbl.find first keys.(i)) with
        | Some r -> r
        | None -> assert false (* every first occurrence was resolved *))
  in
  let stats =
    { workers = pstats.Pool.workers;
      dispatched = List.length todo;
      cache_hits = !cache_hits;
      recovered = pstats.Pool.recovered + !mismatched }
  in
  (out, stats, List.rev !degs)

let search_many ?workers ?min_items t circuits =
  let rs, stats, degs =
    run_batch ?workers ?min_items t circuits
      ~compute:search_flagged
      ~encode:encode_search
      ~decode:decode_search
      ~cached:(fun cfg k ->
        Option.map (fun r -> (r, false)) (Hashtbl.find_opt cfg.cache k))
      ~cacheable:(fun (_, injected) -> not injected)
      ~store:(fun cfg k (r, _) -> Hashtbl.replace cfg.cache k r)
  in
  (List.map fst rs, stats, degs)

type flex_result = { search : block_result; hyperopt : cost; tuned : cost }

let flex_many ?workers ?min_items t circuits =
  let compute eng c =
    let r, injected = search_flagged eng c in
    let hyperopt = hyperopt_cost eng c ~duration:r.duration_ns in
    let tuned = tuned_run_cost eng c ~duration:r.duration_ns in
    ({ search = r; hyperopt; tuned }, injected)
  in
  let encode k ({ search = r; hyperopt; tuned }, injected) =
    String.concat "\x1f"
      [ encode_search k (r, injected); encode_cost hyperopt;
        encode_cost tuned ]
  in
  let decode s =
    match String.split_on_char '\x1f' s with
    | [ se; he; te ] ->
      Option.bind (decode_search se) (fun (k, (r, injected)) ->
          Option.bind (decode_cost he) (fun hyperopt ->
              Option.map
                (fun tuned ->
                  (k, ({ search = r; hyperopt; tuned }, injected)))
                (decode_cost te)))
    | _ -> None
  in
  let rs, stats, degs =
    run_batch ?workers ?min_items t circuits ~compute ~encode ~decode
      (* Hyperopt and tuned-run costs are never memoized, so every unique
         block dispatches; the search inside still hits the memo table
         the child inherited at fork time. *)
      ~cached:(fun _ _ -> None)
      ~cacheable:(fun (_, injected) -> not injected)
      ~store:(fun cfg k ({ search = r; _ }, _) -> Hashtbl.replace cfg.cache k r)
  in
  (List.map fst rs, stats, degs)
