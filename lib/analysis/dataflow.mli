module Circuit = Pqc_quantum.Circuit
(** Dataflow over the instruction stream: parameter def-use chains,
    per-qubit liveness, and a sound (incomplete) commutation relation
    between gates, plus the two transformations built on them —
    commutation-aware reslicing and measurement-cone reachability.

    Everything here is purely static: no GRAPE run, no unitary is built
    (except in the property tests, which verify {!reslice} against
    {!Circuit.unitary} on small random circuits). *)

type def_use = {
  var : int;  (** Parameter index theta_[var]. *)
  gates : int list;  (** Instruction indices using it, ascending. *)
  first : int;
  last : int;
  contiguous : bool;
      (** True when the parameter's gates form one run among the
          {e parametrized} gates — interleaved fixed gates do not break
          contiguity, another parameter's gate does (Section 7.1). *)
}

type liveness = {
  first_use : int option;
  last_use : int option;
  uses : int;
}

type t = {
  n : int;
  length : int;
  def_uses : def_use list;  (** Sorted by [var]; one entry per used theta. *)
  liveness : liveness array;  (** Indexed by qubit. *)
  monotone : bool;  (** All def-use chains contiguous = flexible-sliceable. *)
}

val of_circuit : Circuit.t -> t

val of_instrs : n:int -> Circuit.instr array -> t
(** Stream variant for contexts that never became a valid circuit. *)

val find_def_use : t -> int -> def_use option

val instr_equal : Circuit.instr -> Circuit.instr -> bool
(** Structural equality: same gate (including symbolic angle), same
    operands. *)

val commutes : Circuit.instr -> Circuit.instr -> bool
(** Sound, incomplete: [true] only when the two gates provably commute —
    disjoint supports, identical instructions, or agreeing
    diagonal/X-axis/Y-axis action on every shared qubit (which covers
    Rz-family vs CX controls, X-family vs CX targets, and all mutually
    diagonal pairs).  [false] means "not known to commute". *)

val dependency_edges : Circuit.instr array -> (int * int) list
(** Non-commutation edges [(i, j)] with [i < j]: the partial order any
    sound reordering must respect.  Any linear extension implements the
    original unitary (it differs only by adjacent commuting swaps). *)

val reslice : Circuit.t -> Circuit.t option
(** Greedy linear extension of the non-commutation DAG that tries to make
    every parameter's run contiguous.  [Some c'] is always
    unitary-equivalent to the input (property-tested) and satisfies
    {!Pqc_transpile.Slice.is_monotone}; [None] when the greedy order does
    not achieve monotonicity (the transformation never guesses).
    Deterministic: all ties break on the smallest original index. *)

val measurement_irrelevant : Circuit.instr array -> int -> bool
(** True when the instruction is diagonal and every later instruction
    sharing one of its qubits is diagonal too — the gate commutes to the
    end of the circuit, where a diagonal factor cannot change any
    computational-basis measurement probability. *)

val dead_params : Circuit.t -> (int * int list) list
(** Parameters whose every gate is {!measurement_irrelevant}: varying
    them cannot move any measured expectation value.  Pairs of parameter
    index and the offending instruction indices. *)
