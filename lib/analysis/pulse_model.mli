module Circuit = Pqc_quantum.Circuit
(** Calibrated analytic model of GRAPE minimal pulse durations.

    The paper spent 200,000 CPU-core-hours running GRAPE over every
    benchmark block; this model is the documented substitution (DESIGN.md)
    that lets the full benchmark sweeps run on one CPU while the real
    {!Pqc_grape.Grape} engine validates it on small blocks.

    The model prices a (parameter-bound) block by the paper's speedup
    sources (Section 5.1):

    - {b Control-field asymmetry}: per-qubit X- and Z-rotation content is
      priced at the Appendix-A drive rates (Z is 15x cheaper than X);
    - {b Fractional gates}: rotation angles are wrapped and priced
      proportionally, and CX·Rz(gamma)·CX sandwiches are recognized as
      fractional ZZ interactions costing time proportional to |gamma|
      rather than two full CXs;
    - {b Parallelism}: the block duration is the maximum over per-qubit
      lanes, where a lane overlaps its local-rotation and interaction
      content (GRAPE drives all channels simultaneously);
    - {b Any-unitary time cap}: an n-qubit block never needs more than
      T_cap(n) (Lloyd & Maity's O(4^N) bound, instantiated empirically:
      the paper observes 4-qubit QAOA blocks asymptote below 50 ns,
      Figure 2) — this produces the GRAPE asymptote as block depth grows.

    Calibration: single-gate prices reproduce our numeric GRAPE's
    minimal-time results (which themselves land on Table 1: Rx(pi) 2.5 ns,
    CX 3.8 ns, SWAP 7.6 ns); lane overlap and ZZ rates were fit against
    numeric runs on 1-3 qubit blocks (see EXPERIMENTS.md). *)

val cap : int -> float
(** [cap n] is T_cap for an [n]-qubit block (3, 12, 25, 50 ns for
    n = 1..4). *)

val block_duration : Circuit.t -> float
(** Modelled minimal GRAPE pulse duration (ns) for a parameter-free block
    of width <= 4.  Raises [Invalid_argument] on parametrized input (bind
    first) and asserts width <= 4. *)

val zz_rate : float
(** ns per radian of recognized fractional ZZ interaction. *)

val cx_interaction_time : float
(** Interaction price of one unrecognized CX (ns). *)
