module Circuit = Pqc_quantum.Circuit

type report = {
  diagnostics : Diagnostic.t list;
  errors : int;
  warnings : int;
  infos : int;
  rules_run : string list;
  skipped_structural : bool;
}

exception Rejected of report

let count sev diags =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) diags)

let make_report ~rules_run ~skipped_structural diags =
  let diagnostics = List.stable_sort Diagnostic.compare diags in
  { diagnostics;
    errors = count Diagnostic.Error diagnostics;
    warnings = count Diagnostic.Warning diagnostics;
    infos = count Diagnostic.Info diagnostics;
    rules_run;
    skipped_structural }

let has_errors r = r.errors > 0

let errors r =
  List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
    r.diagnostics

let warnings r =
  List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Warning)
    r.diagnostics

(* A rule must never take the pipeline down: a crashing check is itself
   reported as a finding against that rule. *)
let guarded id f =
  match f () with
  | diags -> diags
  | exception e ->
    [ Diagnostic.error ~rule:id
        (Printf.sprintf "rule crashed: %s" (Printexc.to_string e)) ]

let run ?(rules = Rules.all) ctx =
  let stream_rules, structural_rules, external_rules =
    List.fold_left
      (fun (s, t, e) (r : Rule.t) ->
        match r.check with
        | Rule.Stream _ -> (r :: s, t, e)
        | Rule.Structural _ -> (s, r :: t, e)
        | Rule.External _ -> (s, t, r :: e))
      ([], [], []) (List.rev rules)
  in
  (* One shared pass drives every stream rule. *)
  let checkers =
    List.map
      (fun (r : Rule.t) ->
        match r.check with
        | Rule.Stream mk -> (r.id, mk ctx)
        | Rule.Structural _ | Rule.External _ -> assert false)
      stream_rules
  in
  let acc = ref [] in
  Array.iteri
    (fun idx i ->
      List.iter
        (fun (id, (c : Rule.stream_checker)) ->
          acc := guarded id (fun () -> c.on_instr idx i) :: !acc)
        checkers)
    ctx.Rule.instrs;
  List.iter
    (fun (id, (c : Rule.stream_checker)) ->
      acc := guarded id (fun () -> c.finish ()) :: !acc)
    checkers;
  let stream_diags = List.concat (List.rev !acc) in
  let validity_ids =
    List.map (fun (r : Rule.t) -> r.id) Rules.validity_rules
  in
  let stream_valid =
    not
      (List.exists
         (fun (d : Diagnostic.t) ->
           Diagnostic.is_error d && List.mem d.rule validity_ids)
         stream_diags)
  in
  let structural_diags, skipped_structural =
    if not stream_valid then ([], structural_rules <> [])
    else
      match
        Circuit.of_instrs ctx.Rule.n (Array.to_list ctx.Rule.instrs)
      with
      | exception Invalid_argument msg ->
        (* The validity rules mirror Circuit.validate_instr, so this arm
           is unreachable unless they drift apart — report it loudly. *)
        ( [ Diagnostic.error ~rule:"PQC001"
              ("stream rejected by Circuit.of_instrs despite clean validity \
                rules: " ^ msg) ],
          structural_rules <> [] )
      | c ->
        ( List.concat_map
            (fun (r : Rule.t) ->
              match r.check with
              | Rule.Structural f -> guarded r.id (fun () -> f ctx c)
              | Rule.Stream _ | Rule.External _ -> assert false)
            structural_rules,
          false )
  in
  let external_diags =
    List.concat_map
      (fun (r : Rule.t) ->
        match r.check with
        | Rule.External f -> guarded r.id (fun () -> f ctx)
        | Rule.Stream _ | Rule.Structural _ -> assert false)
      external_rules
  in
  make_report
    ~rules_run:(List.map (fun (r : Rule.t) -> r.id) rules)
    ~skipped_structural
    (stream_diags @ structural_diags @ external_diags)

let analyze ?rules ?theta_len ?max_width ?topology ?cache_file ?target c =
  run ?rules
    (Rule.of_circuit ?theta_len ?max_width ?topology ?cache_file ?target c)

let check ?rules ?theta_len ?max_width ?topology ?cache_file ?target c =
  let report =
    analyze ?rules ?theta_len ?max_width ?topology ?cache_file ?target c
  in
  if has_errors report then raise (Rejected report);
  report

let summary r =
  Printf.sprintf "%d error%s, %d warning%s, %d info%s" r.errors
    (if r.errors = 1 then "" else "s")
    r.warnings
    (if r.warnings = 1 then "" else "s")
    r.infos
    (if r.infos = 1 then "" else "s")

let to_string r =
  let lines = List.map Diagnostic.to_string r.diagnostics in
  let skipped =
    if r.skipped_structural then
      [ "note: structural rules skipped (stream is not a well-formed \
         circuit)" ]
    else []
  in
  String.concat "\n" (lines @ skipped @ [ summary r ])

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"errors\":%d,\"warnings\":%d,\"infos\":%d,\
        \"skipped_structural\":%b}"
       r.errors r.warnings r.infos r.skipped_structural);
  Buffer.contents buf

let exit_code r = if has_errors r then 1 else 0

let () =
  Printexc.register_printer (function
    | Rejected r ->
      Some
        (Printf.sprintf "Pqc_analysis.Runner.Rejected (%s)" (summary r))
    | _ -> None)
