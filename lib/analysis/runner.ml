module Circuit = Pqc_quantum.Circuit

type report = {
  diagnostics : Diagnostic.t list;
  errors : int;
  warnings : int;
  infos : int;
  suppressed : int;
  rules_run : string list;
  skipped_structural : bool;
}

exception Rejected of report

type override = Off | Severity of Diagnostic.severity

let parse_overrides spec =
  let parse_one item =
    match String.index_opt item '=' with
    | None ->
      if String.length item > 1 && item.[0] = '-' then
        Ok (String.sub item 1 (String.length item - 1), Off)
      else Error (Printf.sprintf "override %S: expected RULE=LEVEL or -RULE" item)
    | Some eq ->
      let id = String.sub item 0 eq in
      let level = String.sub item (eq + 1) (String.length item - eq - 1) in
      if id = "" then Error (Printf.sprintf "override %S: empty rule id" item)
      else (
        match String.lowercase_ascii level with
        | "off" | "none" -> Ok (id, Off)
        | "error" -> Ok (id, Severity Diagnostic.Error)
        | "warning" -> Ok (id, Severity Diagnostic.Warning)
        | "info" -> Ok (id, Severity Diagnostic.Info)
        | _ ->
          Error
            (Printf.sprintf
               "override %S: unknown level %S (off|error|warning|info)" item
               level))
  in
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.fold_left
       (fun acc item ->
         match acc with
         | Error _ -> acc
         | Ok l -> (
           match parse_one (String.trim item) with
           | Ok o -> Ok (o :: l)
           | Error e -> Error e))
       (Ok [])
  |> Result.map List.rev

let count sev diags =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) diags)

(* Overrides apply at report time, after every rule has run: a disabled
   rule still executes (its crash would still surface), only its findings
   are dropped.  The first binding for an id wins, so CLI flags prepended
   before PQC_LINT_RULES take precedence. *)
let apply_overrides overrides diags =
  List.fold_left
    (fun (kept, suppressed) (d : Diagnostic.t) ->
      match List.assoc_opt d.rule overrides with
      | None -> (d :: kept, suppressed)
      | Some Off -> (kept, suppressed + 1)
      | Some (Severity s) -> ({ d with severity = s } :: kept, suppressed))
    ([], 0) diags
  |> fun (kept, suppressed) -> (List.rev kept, suppressed)

let make_report ?(overrides = []) ~rules_run ~skipped_structural diags =
  let diags, suppressed = apply_overrides overrides diags in
  let diagnostics = List.stable_sort Diagnostic.compare diags in
  { diagnostics;
    errors = count Diagnostic.Error diagnostics;
    warnings = count Diagnostic.Warning diagnostics;
    infos = count Diagnostic.Info diagnostics;
    suppressed;
    rules_run;
    skipped_structural }

let has_errors r = r.errors > 0

let errors r =
  List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
    r.diagnostics

let warnings r =
  List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Warning)
    r.diagnostics

(* A rule must never take the pipeline down: a crashing check is itself
   reported as an internal-error finding (PQC999, outside the catalog so
   it can never be confused with a real finding of the crashed rule),
   carrying the exception and a backtrace when the runtime recorded one. *)
let guarded id f =
  let recording = Printexc.backtrace_status () in
  if not recording then Printexc.record_backtrace true;
  let restore () = if not recording then Printexc.record_backtrace false in
  match f () with
  | diags -> restore (); diags
  | exception e ->
    let bt = Printexc.get_backtrace () in
    restore ();
    let bt =
      match String.trim bt with
      | "" -> "backtrace unavailable"
      | s -> s
    in
    [ Diagnostic.error ~rule:"PQC999"
        ~hint:"this is a bug in the analyzer, not in the analyzed circuit"
        (Printf.sprintf "rule %s crashed: %s\n%s" id (Printexc.to_string e)
           bt) ]

let run ?(rules = Rules.all) ?(overrides = []) ctx =
  Rules.assert_unique rules;
  let stream_rules, structural_rules, external_rules =
    List.fold_left
      (fun (s, t, e) (r : Rule.t) ->
        match r.check with
        | Rule.Stream _ -> (r :: s, t, e)
        | Rule.Structural _ -> (s, r :: t, e)
        | Rule.External _ -> (s, t, r :: e))
      ([], [], []) (List.rev rules)
  in
  (* One shared pass drives every stream rule. *)
  let checkers =
    List.map
      (fun (r : Rule.t) ->
        match r.check with
        | Rule.Stream mk -> (r.id, mk ctx)
        | Rule.Structural _ | Rule.External _ -> assert false)
      stream_rules
  in
  let acc = ref [] in
  Array.iteri
    (fun idx i ->
      List.iter
        (fun (id, (c : Rule.stream_checker)) ->
          acc := guarded id (fun () -> c.on_instr idx i) :: !acc)
        checkers)
    ctx.Rule.instrs;
  List.iter
    (fun (id, (c : Rule.stream_checker)) ->
      acc := guarded id (fun () -> c.finish ()) :: !acc)
    checkers;
  let stream_diags = List.concat (List.rev !acc) in
  let validity_ids =
    List.map (fun (r : Rule.t) -> r.id) Rules.validity_rules
  in
  let stream_valid =
    not
      (List.exists
         (fun (d : Diagnostic.t) ->
           Diagnostic.is_error d && List.mem d.rule validity_ids)
         stream_diags)
  in
  let structural_diags, skipped_structural =
    if not stream_valid then ([], structural_rules <> [])
    else
      match
        Circuit.of_instrs ctx.Rule.n (Array.to_list ctx.Rule.instrs)
      with
      | exception Invalid_argument msg ->
        (* The validity rules mirror Circuit.validate_instr, so this arm
           is unreachable unless they drift apart — report it loudly. *)
        ( [ Diagnostic.error ~rule:"PQC001"
              ("stream rejected by Circuit.of_instrs despite clean validity \
                rules: " ^ msg) ],
          structural_rules <> [] )
      | c ->
        ( List.concat_map
            (fun (r : Rule.t) ->
              match r.check with
              | Rule.Structural f -> guarded r.id (fun () -> f ctx c)
              | Rule.Stream _ | Rule.External _ -> assert false)
            structural_rules,
          false )
  in
  let external_diags =
    List.concat_map
      (fun (r : Rule.t) ->
        match r.check with
        | Rule.External f -> guarded r.id (fun () -> f ctx)
        | Rule.Stream _ | Rule.Structural _ -> assert false)
      external_rules
  in
  make_report ~overrides
    ~rules_run:(List.map (fun (r : Rule.t) -> r.id) rules)
    ~skipped_structural
    (stream_diags @ structural_diags @ external_diags)

let analyze ?rules ?overrides ?theta_len ?max_width ?topology ?cache_file
    ?target c =
  run ?rules ?overrides
    (Rule.of_circuit ?theta_len ?max_width ?topology ?cache_file ?target c)

let check ?rules ?overrides ?theta_len ?max_width ?topology ?cache_file
    ?target c =
  let report =
    analyze ?rules ?overrides ?theta_len ?max_width ?topology ?cache_file
      ?target c
  in
  if has_errors report then raise (Rejected report);
  report

let advise = Cost.advise

let summary r =
  Printf.sprintf "%d error%s, %d warning%s, %d info%s" r.errors
    (if r.errors = 1 then "" else "s")
    r.warnings
    (if r.warnings = 1 then "" else "s")
    r.infos
    (if r.infos = 1 then "" else "s")

let to_string r =
  let lines = List.map Diagnostic.to_string r.diagnostics in
  let skipped =
    if r.skipped_structural then
      [ "note: structural rules skipped (stream is not a well-formed \
         circuit)" ]
    else []
  in
  String.concat "\n" (lines @ skipped @ [ summary r ])

let to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"suppressed\":%d,\
        \"skipped_structural\":%b}"
       r.errors r.warnings r.infos r.suppressed r.skipped_structural);
  Buffer.contents buf

let exit_code r = if has_errors r then 1 else 0

let () =
  Printexc.register_printer (function
    | Rejected r ->
      Some
        (Printf.sprintf "Pqc_analysis.Runner.Rejected (%s)" (summary r))
    | _ -> None)
