(** Static audit of persistent pulse-cache files (rule PQC050).

    The engine's loader ({!Pqc_core.Pulse_cache.load}) is deliberately
    tolerant: corrupt records are dropped silently so a damaged cache can
    never take compilation down.  This audit is the loud counterpart — it
    scans a cache file {e without} loading it into an engine and reports
    every problem the loader would paper over: bad or wrong-version
    headers, checksum mismatches, records that parse but carry unusable
    durations, out-of-range fidelities, and key collisions.

    Diagnostic spans are 1-based line numbers into the cache file. *)

val rule_id : string
(** ["PQC050"]. *)

val audit : path:string -> Diagnostic.t list
(** Scan [path].  A missing file yields a single warning; an unreadable
    header yields a single error (per-record findings would be noise); an
    intact header yields one diagnostic per damaged or colliding record.
    Never raises. *)
