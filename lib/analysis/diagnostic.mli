(** Analysis diagnostics: one reportable finding of a static-analysis rule.

    A diagnostic names the rule that produced it, a severity, an optional
    source span, a human-readable message, and an optional fix hint.  Spans
    index the analyzed stream: instruction indices for circuit rules, line
    numbers for file-oriented rules such as the pulse-cache audit (line 1 is
    the first line). *)

type severity = Error | Warning | Info
(** [Error] aborts compilation before any GRAPE time is spent; [Warning] is
    recorded alongside {!Pqc_core.Strategy} degradations; [Info] is advisory
    lint output only. *)

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** 0 for [Error], 1 for [Warning], 2 for [Info]. *)

type span = { first : int; last : int }
(** Inclusive index range into the analyzed stream. *)

val point : int -> span
val span : first:int -> last:int -> span
(** Raises [Invalid_argument] when [last < first]. *)

type t = {
  rule : string;  (** Rule id, e.g. ["PQC020"]. *)
  severity : severity;
  span : span option;
  message : string;
  hint : string option;  (** How to fix the finding, when known. *)
}

val v : ?span:span -> ?hint:string -> rule:string -> severity:severity -> string -> t
val error : ?span:span -> ?hint:string -> rule:string -> string -> t
val warning : ?span:span -> ?hint:string -> rule:string -> string -> t
val info : ?span:span -> ?hint:string -> rule:string -> string -> t

val is_error : t -> bool

val compare : t -> t -> int
(** Severity first (errors lead), then span position, then rule id. *)

val to_string : t -> string
(** E.g. ["error PQC020@7: gates of t0 are not contiguous [hint: ...]"]. *)

val to_json : t -> string
(** One JSON object, e.g.
    [{"rule":"PQC020","severity":"error","span":{"first":7,"last":7},
      "message":"...","hint":"..."}]. *)

val json_escape : string -> string
(** JSON string-body escaping shared by every emitter in this library
    (runner report, SARIF). *)
