module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
(** Static-analysis rules over the circuit IR and compilation plan.

    A rule inspects an analysis {!ctx} and reports {!Diagnostic.t}s.  Rules
    come in three shapes: [Stream] rules fold over the raw instruction
    stream (and therefore work even on malformed input that cannot be a
    {!Circuit.t}), [Structural] rules need a validated circuit, and
    [External] rules inspect resources outside the circuit, such as
    persistent pulse-cache files.  The {!Runner} executes every stream rule
    in one shared pass. *)

type target = Gate_based | Strict_partial | Flexible_partial | Full_grape
(** The compilation strategy the analysis is gating, when known.  Some
    rules modulate severity on it: parameter monotonicity is fatal for
    flexible partial compilation but merely advisory for strict. *)

val target_to_string : target -> string

val grape_width_cap : int
(** Widest block the GRAPE engine can tractably compile (4, Section 5.2). *)

type ctx = {
  n : int;  (** Register width the stream claims to address. *)
  instrs : Circuit.instr array;  (** The instruction stream under analysis. *)
  theta_len : int option;
      (** Length of the parameter vector the caller will bind, when known. *)
  max_width : int;  (** Requested blocking budget (see {!grape_width_cap}). *)
  topology : Topology.t option;
      (** Device connectivity to check two-qubit operands against. *)
  cache_file : string option;  (** Pulse-cache file to audit. *)
  target : target option;
}

val of_instrs :
  ?theta_len:int ->
  ?max_width:int ->
  ?topology:Topology.t ->
  ?cache_file:string ->
  ?target:target ->
  n:int ->
  Circuit.instr list ->
  ctx
(** Context over a raw (possibly malformed) instruction stream.
    [max_width] defaults to {!grape_width_cap}.  Raises [Invalid_argument]
    when [n <= 0]. *)

val of_circuit :
  ?theta_len:int ->
  ?max_width:int ->
  ?topology:Topology.t ->
  ?cache_file:string ->
  ?target:target ->
  Circuit.t ->
  ctx
(** Context over a validated circuit. *)

type stream_checker = {
  on_instr : int -> Circuit.instr -> Diagnostic.t list;
      (** Called once per instruction with its index, in order. *)
  finish : unit -> Diagnostic.t list;
      (** Called after the last instruction. *)
}

val pure_stream : (int -> Circuit.instr -> Diagnostic.t list) -> stream_checker
(** A stateless stream checker with an empty [finish]. *)

type check =
  | Stream of (ctx -> stream_checker)
  | Structural of (ctx -> Circuit.t -> Diagnostic.t list)
  | External of (ctx -> Diagnostic.t list)

type t = {
  id : string;  (** Stable rule id, e.g. ["PQC020"]. *)
  title : string;  (** Short kebab-case name, e.g. ["param-monotonicity"]. *)
  doc : string;  (** One-line description for the rule catalog. *)
  check : check;
}
