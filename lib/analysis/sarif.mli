(** SARIF 2.1.0 export of an analysis {!Runner.report}.

    One run, one driver ([partialc-analysis]) whose rule table is the
    full {!Rules.catalog} plus the synthesized PQC000 (parse error) and
    PQC999 (crashed rule) ids, so every result's [ruleId] resolves to a
    [ruleIndex].  Severities map [Error] to ["error"], [Warning] to
    ["warning"], [Info] to ["note"].

    Instruction-index spans are not text positions; they are exported as
    [result.properties.firstInstruction]/[lastInstruction].  PQC000 spans
    are real source lines and become a [physicalLocation] region. *)

val of_report : ?uri:string -> Runner.report -> string
(** Serialize the report as one SARIF log.  [uri] is the analyzed file,
    attached as the artifact location of every result when present. *)
