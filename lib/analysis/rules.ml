module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology
module Block = Pqc_transpile.Block
module Slice = Pqc_transpile.Slice
open Rule

(* ------------------------------------------------------------------ *)
(* Validity: the stream must be constructible as a Circuit.t           *)
(* ------------------------------------------------------------------ *)

let operand_names i =
  String.concat "," (List.map string_of_int (Array.to_list i.Circuit.qubits))

let qubit_bounds =
  { id = "PQC001"; title = "qubit-bounds";
    doc = "every operand lies in [0, n)";
    check =
      Stream
        (fun ctx ->
          pure_stream (fun idx i ->
              Array.to_list i.Circuit.qubits
              |> List.filter_map (fun q ->
                     if q >= 0 && q < ctx.n then None
                     else
                       Some
                         (Diagnostic.error ~rule:"PQC001"
                            ~span:(Diagnostic.point idx)
                            ~hint:
                              (Printf.sprintf
                                 "register has qubits 0..%d" (ctx.n - 1))
                            (Printf.sprintf
                               "gate %s addresses qubit %d outside [0,%d)"
                               (Gate.name i.Circuit.gate) q ctx.n))))) }

let arity =
  { id = "PQC002"; title = "arity";
    doc = "operand count matches the gate's arity";
    check =
      Stream
        (fun _ctx ->
          pure_stream (fun idx i ->
              let want = Gate.arity i.Circuit.gate in
              let got = Array.length i.Circuit.qubits in
              if want = got then []
              else
                [ Diagnostic.error ~rule:"PQC002"
                    ~span:(Diagnostic.point idx)
                    (Printf.sprintf "gate %s expects %d operand%s, got %d (%s)"
                       (Gate.name i.Circuit.gate) want
                       (if want = 1 then "" else "s")
                       got (operand_names i)) ])) }

let duplicate_operand =
  { id = "PQC003"; title = "duplicate-operand";
    doc = "two-qubit gates address two distinct qubits";
    check =
      Stream
        (fun _ctx ->
          pure_stream (fun idx i ->
              if
                Array.length i.Circuit.qubits = 2
                && i.Circuit.qubits.(0) = i.Circuit.qubits.(1)
              then
                [ Diagnostic.error ~rule:"PQC003"
                    ~span:(Diagnostic.point idx)
                    (Printf.sprintf "gate %s applied to qubit %d twice"
                       (Gate.name i.Circuit.gate) i.Circuit.qubits.(0)) ]
              else [])) }

let validity_rules = [ qubit_bounds; arity; duplicate_operand ]

(* ------------------------------------------------------------------ *)
(* Parameters                                                          *)
(* ------------------------------------------------------------------ *)

let non_finite_angle =
  { id = "PQC010"; title = "non-finite-angle";
    doc = "gate angles are finite (no NaN/inf scale or offset)";
    check =
      Stream
        (fun _ctx ->
          pure_stream (fun idx i ->
              match Gate.param i.Circuit.gate with
              | None -> []
              | Some p ->
                if
                  Float.is_finite p.Param.scale
                  && Float.is_finite p.Param.offset
                then []
                else
                  [ Diagnostic.error ~rule:"PQC010"
                      ~span:(Diagnostic.point idx)
                      ~hint:"a NaN angle poisons GRAPE's target unitary"
                      (Format.asprintf "gate %s has non-finite angle %a"
                         (Gate.name i.Circuit.gate) Param.pp p) ])) }

let unbound_param =
  { id = "PQC011"; title = "unbound-param";
    doc = "parameter indices are non-negative and covered by theta";
    check =
      Stream
        (fun ctx ->
          pure_stream (fun idx i ->
              match Option.bind (Gate.param i.Circuit.gate) Param.depends_on with
              | None -> []
              | Some v when v < 0 ->
                [ Diagnostic.error ~rule:"PQC011"
                    ~span:(Diagnostic.point idx)
                    (Printf.sprintf "gate references parameter t%d" v) ]
              | Some v -> (
                match ctx.theta_len with
                | Some len when v >= len ->
                  [ Diagnostic.error ~rule:"PQC011"
                      ~span:(Diagnostic.point idx)
                      ~hint:
                        (Printf.sprintf
                           "binding would raise: theta has %d value%s" len
                           (if len = 1 then "" else "s"))
                      (Printf.sprintf
                         "gate depends on t%d but theta binds only t0..t%d" v
                         (len - 1)) ]
                | Some _ | None -> []))) }

(* ------------------------------------------------------------------ *)
(* The paper's slicing invariants                                      *)
(* ------------------------------------------------------------------ *)

let monotonicity =
  { id = "PQC020"; title = "param-monotonicity";
    doc = "each parameter's gates form one contiguous run (Section 7.1)";
    check =
      Stream
        (fun ctx ->
          let severity =
            (* Monotonicity is what makes flexible slicing sound; the other
               strategies never look at it. *)
            match ctx.target with
            | None | Some Flexible_partial -> Diagnostic.Error
            | Some (Gate_based | Strict_partial | Full_grape) ->
              Diagnostic.Warning
          in
          let closed = Hashtbl.create 8 in
          let current = ref None in
          { on_instr =
              (fun idx i ->
                match Option.bind (Gate.param i.Circuit.gate) Param.depends_on with
                | None -> []
                | Some v ->
                  if !current = Some v then []
                  else begin
                    let diags =
                      match Hashtbl.find_opt closed v with
                      | Some last ->
                        [ Diagnostic.v ~rule:"PQC020" ~severity
                            ~span:(Diagnostic.point idx)
                            ~hint:
                              "flexible partial compilation needs contiguous \
                               parameter runs; reorder commuting gates or \
                               fall back to strict slicing"
                            (Printf.sprintf
                               "gates of t%d are not contiguous (run already \
                                closed at instruction %d)" v last) ]
                      | None -> []
                    in
                    (match !current with
                    | Some w -> Hashtbl.replace closed w idx
                    | None -> ());
                    current := Some v;
                    diags
                  end);
            finish = (fun () -> []) }) }

let instr_equal (a : Circuit.instr) (b : Circuit.instr) =
  Gate.name a.gate = Gate.name b.gate
  && (match Gate.param a.gate, Gate.param b.gate with
     | Some p, Some q -> Param.equal p q
     | None, None -> true
     | Some _, None | None, Some _ -> false)
  && a.qubits = b.qubits

let instrs_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 instr_equal a b

let projection q instrs =
  Array.to_list instrs
  |> List.filter (fun (i : Circuit.instr) -> Array.mem q i.qubits)

let slice_reconciles ~linear original slices =
  let n = Circuit.n_qubits original in
  let rebuilt = Circuit.instrs (Slice.concat_all ~n slices) in
  let orig = Circuit.instrs original in
  if linear then instrs_equal orig rebuilt
  else
    (* Region slicing may reorder across qubits; the invariant it promises
       is per-qubit instruction order (which implies circuit equivalence)
       plus conservation of the instruction multiset. *)
    Array.length orig = Array.length rebuilt
    && List.for_all
         (fun q ->
           List.for_all2 instr_equal (projection q orig) (projection q rebuilt))
         (List.init n Fun.id)

let strict_slice =
  { id = "PQC021"; title = "strict-slice";
    doc = "strict slices reconcatenate to the circuit; Fixed slices carry \
           no parametrized gate";
    check =
      Structural
        (fun _ctx c ->
          let check_fixed kind slices =
            List.concat_map
              (fun (s : Slice.slice) ->
                match s.var with
                | Some _ -> []
                | None ->
                  if Circuit.parametrized_gate_count s.circuit = 0 then []
                  else
                    [ Diagnostic.error ~rule:"PQC021"
                        (Printf.sprintf
                           "%s slicing produced a Fixed slice containing %d \
                            parametrized gate(s); it cannot be precompiled"
                           kind
                           (Circuit.parametrized_gate_count s.circuit)) ])
              slices
          in
          let check_concat kind ~linear slices =
            if slice_reconciles ~linear c slices then []
            else
              [ Diagnostic.error ~rule:"PQC021"
                  ~hint:"slicer invariant violation — report upstream"
                  (Printf.sprintf
                     "%s slices do not reconcatenate to the input circuit"
                     kind) ]
          in
          let region = Slice.strict c and linear = Slice.strict_linear c in
          check_fixed "region" region
          @ check_fixed "linear" linear
          @ check_concat "region" ~linear:false region
          @ check_concat "linear" ~linear:true linear) }

let flexible_slice =
  { id = "PQC022"; title = "flexible-slice";
    doc = "flexible slices each depend on at most one parameter";
    check =
      Structural
        (fun _ctx c ->
          if not (Slice.is_monotone c) then
            (* PQC020 already pinpointed the violation; flexible slicing is
               undefined here. *)
            []
          else
            let slices = Slice.flexible c in
            let multi =
              List.concat_map
                (fun (s : Slice.slice) ->
                  match Circuit.depends s.circuit with
                  | [] | [ _ ] -> []
                  | vs ->
                    [ Diagnostic.error ~rule:"PQC022"
                        ~hint:"slicer invariant violation — report upstream"
                        (Printf.sprintf
                           "flexible slice depends on parameters {%s}"
                           (String.concat ","
                              (List.map (Printf.sprintf "t%d") vs))) ])
                slices
            in
            let concat =
              if slice_reconciles ~linear:true c slices then []
              else
                [ Diagnostic.error ~rule:"PQC022"
                    "flexible slices do not reconcatenate to the input \
                     circuit" ]
            in
            multi @ concat) }

(* ------------------------------------------------------------------ *)
(* Blocking and connectivity                                           *)
(* ------------------------------------------------------------------ *)

let block_width =
  { id = "PQC030"; title = "block-width";
    doc = "GRAPE subcircuits stay within the tractable width";
    check =
      Structural
        (fun ctx c ->
          if ctx.max_width < 2 then
            [ Diagnostic.error ~rule:"PQC030"
                ~hint:"Block.partition requires max_width >= 2"
                (Printf.sprintf "blocking budget %d is below the minimum of 2"
                   ctx.max_width) ]
          else begin
            let budget_warning =
              if ctx.max_width <= grape_width_cap then []
              else
                [ Diagnostic.warning ~rule:"PQC030"
                    ~hint:
                      (Printf.sprintf
                         "GRAPE convergence is exponential in width; keep \
                          blocks at %d qubits or fewer" grape_width_cap)
                    (Printf.sprintf
                       "blocking budget %d exceeds the GRAPE tractability \
                        cap of %d" ctx.max_width grape_width_cap) ]
            in
            let oversized =
              Block.partition_with_indices ~max_width:ctx.max_width c
              |> List.filter_map (fun ((b : Block.block), indices) ->
                     let width = List.length b.qubits in
                     if width <= grape_width_cap then None
                     else
                       let first = List.fold_left min max_int indices in
                       let last = List.fold_left max 0 indices in
                       Some
                         (Diagnostic.error ~rule:"PQC030"
                            ~span:(Diagnostic.span ~first ~last)
                            ~hint:
                              (Printf.sprintf
                                 "lower --max-width to %d or split the \
                                  entangling region" grape_width_cap)
                            (Printf.sprintf
                               "block on qubits {%s} is %d wide; GRAPE \
                                cannot compile blocks wider than %d"
                               (String.concat ","
                                  (List.map string_of_int b.qubits))
                               width grape_width_cap)))
            in
            budget_warning @ oversized
          end) }

let connectivity =
  { id = "PQC031"; title = "connectivity";
    doc = "two-qubit operands are adjacent on the device topology";
    check =
      Stream
        (fun ctx ->
          match ctx.topology with
          | None -> pure_stream (fun _ _ -> [])
          | Some topo when Topology.n_qubits topo < ctx.n ->
            let reported = ref false in
            pure_stream (fun _ _ ->
                if !reported then []
                else begin
                  reported := true;
                  [ Diagnostic.error ~rule:"PQC031"
                      (Printf.sprintf
                         "device has %d qubits but the circuit uses %d"
                         (Topology.n_qubits topo) ctx.n) ]
                end)
          | Some topo ->
            pure_stream (fun idx i ->
                if
                  Array.length i.Circuit.qubits = 2
                  && i.Circuit.qubits.(0) >= 0
                  && i.Circuit.qubits.(1) >= 0
                  && i.Circuit.qubits.(0) < ctx.n
                  && i.Circuit.qubits.(1) < ctx.n
                  && i.Circuit.qubits.(0) <> i.Circuit.qubits.(1)
                  && not
                       (Topology.connected topo i.Circuit.qubits.(0)
                          i.Circuit.qubits.(1))
                then
                  [ Diagnostic.error ~rule:"PQC031"
                      ~span:(Diagnostic.point idx)
                      ~hint:"run Compiler.prepare (routing) first"
                      (Printf.sprintf
                         "gate %s on qubits %s, which are not connected"
                         (Gate.name i.Circuit.gate) (operand_names i)) ]
                else [])) }

(* ------------------------------------------------------------------ *)
(* Lint: gates that waste pulse time                                   *)
(* ------------------------------------------------------------------ *)

(* Tracks, per qubit, the index of the last instruction touching it, so a
   checker can ask whether two instructions are adjacent in the per-qubit
   dependency order (nothing touching their operands ran in between). *)
let adjacency_tracker n =
  let last = Array.make n (-1) in
  let prev_of i (instr : Circuit.instr) =
    let p =
      Array.fold_left
        (fun acc q ->
          if q >= 0 && q < n then max acc last.(q) else acc)
        (-1) instr.qubits
    in
    Array.iter (fun q -> if q >= 0 && q < n then last.(q) <- i) instr.qubits;
    p
  in
  prev_of

let adjacent_inverse =
  { id = "PQC040"; title = "adjacent-inverse";
    doc = "adjacent mutually-inverse gate pairs cancel to identity";
    check =
      Stream
        (fun ctx ->
          let prev_of = adjacency_tracker ctx.n in
          let instrs = ctx.instrs in
          pure_stream (fun idx i ->
              let j = prev_of idx i in
              if j < 0 then []
              else
                let pj = instrs.(j) in
                if
                  pj.Circuit.qubits = i.Circuit.qubits
                  && (match Gate.inverse pj.Circuit.gate with
                     | Some inv -> inv = i.Circuit.gate
                     | None -> false)
                then
                  [ Diagnostic.info ~rule:"PQC040"
                      ~span:(Diagnostic.span ~first:j ~last:idx)
                      ~hint:"Pass.optimize removes the pair"
                      (Printf.sprintf
                         "%s at %d and %s at %d cancel to identity"
                         (Gate.name pj.Circuit.gate) j
                         (Gate.name i.Circuit.gate) idx) ]
                else [])) }

let mergeable_rotation =
  { id = "PQC041"; title = "mergeable-rotation";
    doc = "adjacent same-axis rotations merge; zero rotations are dead";
    check =
      Stream
        (fun ctx ->
          let prev_of = adjacency_tracker ctx.n in
          let instrs = ctx.instrs in
          let two_pi = 2.0 *. Float.pi in
          let is_zero_angle p =
            Param.is_const p
            &&
            let r = Float.rem (Param.bind p [||]) two_pi in
            Float.abs r < 1e-12 || Float.abs (Float.abs r -. two_pi) < 1e-12
          in
          pure_stream (fun idx i ->
              let dead =
                match Gate.param i.Circuit.gate with
                | Some p when is_zero_angle p ->
                  [ Diagnostic.info ~rule:"PQC041"
                      ~span:(Diagnostic.point idx)
                      ~hint:"Pass.optimize drops identity rotations"
                      (Printf.sprintf "%s rotates by a multiple of 2pi"
                         (Gate.name i.Circuit.gate)) ]
                | Some _ | None -> []
              in
              let j = prev_of idx i in
              let merge =
                if j < 0 then []
                else
                  let pj = instrs.(j) in
                  let same_rotation =
                    pj.Circuit.qubits = i.Circuit.qubits
                    &&
                    match pj.Circuit.gate, i.Circuit.gate with
                    | Gate.Rx a, Gate.Rx b
                    | Gate.Ry a, Gate.Ry b
                    | Gate.Rz a, Gate.Rz b -> Param.add a b <> None
                    | _, _ -> false
                  in
                  if same_rotation then
                    [ Diagnostic.info ~rule:"PQC041"
                        ~span:(Diagnostic.span ~first:j ~last:idx)
                        ~hint:"Pass.optimize merges the pair into one pulse"
                        (Printf.sprintf
                           "%s at %d and %d merge into a single rotation"
                           (Gate.name i.Circuit.gate) j idx) ]
                  else []
              in
              dead @ merge)) }

(* ------------------------------------------------------------------ *)
(* Dataflow and cost analyses                                          *)
(* ------------------------------------------------------------------ *)

let commutation_reslice =
  { id = "PQC060"; title = "commutation-reslice";
    doc = "a non-monotone circuit becomes monotone by reordering \
           commuting gates";
    check =
      Structural
        (fun _ctx c ->
          if Slice.is_monotone c then []
          else
            match Dataflow.reslice c with
            | None -> []
            | Some _ ->
              let df = Dataflow.of_circuit c in
              let vars =
                List.filter_map
                  (fun (d : Dataflow.def_use) ->
                    if d.contiguous then None
                    else Some (Printf.sprintf "t%d" d.var))
                  df.Dataflow.def_uses
              in
              [ Diagnostic.info ~rule:"PQC060"
                  ~hint:
                    "reorder commuting gates (Dataflow.reslice) to unlock \
                     flexible partial compilation"
                  (Printf.sprintf
                     "parameter run%s {%s} can be made contiguous by \
                      commutation-aware reslicing"
                     (if List.length vars = 1 then "" else "s")
                     (String.concat "," vars)) ]) }

let dead_parameter =
  { id = "PQC061"; title = "dead-parameter";
    doc = "a parameter's gates never reach a measurement-relevant cone";
    check =
      Structural
        (fun _ctx c ->
          Dataflow.dead_params c
          |> List.map (fun (v, gates) ->
                 let first = List.fold_left min max_int gates in
                 let last = List.fold_left max 0 gates in
                 Diagnostic.warning ~rule:"PQC061"
                   ~span:(Diagnostic.span ~first ~last)
                   ~hint:
                     "diagonal gates followed only by diagonal gates \
                      commute to the end of the circuit, where they \
                      cannot change measurement probabilities"
                   (Printf.sprintf
                      "parameter t%d cannot affect any measured \
                       expectation value" v))) }

let block_beats_grape =
  { id = "PQC062"; title = "block-gate-lookup";
    doc = "blocks where the predicted GRAPE pulse is no shorter than the \
           lookup table";
    check =
      Structural
        (fun ctx c ->
          Cost.block_advices ~max_width:ctx.max_width c
          |> List.filter_map (fun (b : Cost.block_advice) ->
                 if b.use_pulse || b.last - b.first < 1 then None
                 else
                   Some
                     (Diagnostic.info ~rule:"PQC062"
                        ~span:(Diagnostic.span ~first:b.first ~last:b.last)
                        ~hint:
                          "a hybrid gate-pulse compiler would keep this \
                           block gate-based"
                        (Printf.sprintf
                           "block on qubits {%s}: predicted GRAPE pulse \
                            %.2f ns does not beat the %.2f ns lookup \
                            table"
                           (String.concat ","
                              (List.map string_of_int b.qubits))
                           b.grape_ns b.gate_ns)))) }

(* ------------------------------------------------------------------ *)
(* Pulse-cache audit                                                   *)
(* ------------------------------------------------------------------ *)

let cache_audit =
  { id = Cache_audit.rule_id; title = "cache-audit";
    doc = "persistent pulse-cache files are intact (header, checksums, \
           unique keys)";
    check =
      External
        (fun ctx ->
          match ctx.cache_file with
          | None -> []
          | Some path -> Cache_audit.audit ~path) }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let assert_unique rules =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : Rule.t) ->
      if Hashtbl.mem seen r.id then
        invalid_arg (Printf.sprintf "duplicate rule id %s" r.id)
      else Hashtbl.add seen r.id ())
    rules

let all =
  [ qubit_bounds; arity; duplicate_operand; non_finite_angle; unbound_param;
    monotonicity; strict_slice; flexible_slice; block_width; connectivity;
    adjacent_inverse; mergeable_rotation; commutation_reslice; dead_parameter;
    block_beats_grape; cache_audit ]

let () = assert_unique all

let find id =
  List.find_opt (fun (r : Rule.t) -> r.id = id || r.title = id) all

let catalog () =
  List.map (fun (r : Rule.t) -> (r.id, r.title, r.doc)) all
