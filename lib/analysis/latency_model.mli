(** Calibrated model of GRAPE compilation latency.

    Compilation latency is the second axis of the paper's evaluation
    (Figure 7): how long the classical optimizer takes, not how long the
    pulse runs.  When the benchmark harness uses the analytic
    {!Pulse_model} engine, it still needs latency estimates; this module
    supplies them from constants measured against this repository's own
    numeric GRAPE engine on this machine (see EXPERIMENTS.md for the
    calibration runs).

    Structure of the estimates:
    - a full-GRAPE compilation of a block binary-searches the minimal
      pulse time ({!probes_per_search} optimize calls) with default
      hyperparameters ({!default_iterations} each);
    - a flexible-partial compilation of a block runs {e one} optimize call
      (the minimal time is known from precompute) with tuned
      hyperparameters, converging {!tuning_speedup}x faster;
    - each optimizer iteration costs {!seconds_per_iteration}, dominated
      by the forward/backward propagation over time slices. *)

val probes_per_search : int
(** Binary-search probes per minimal-time search (log2(bound / 0.3 ns)). *)

val default_iterations : int -> int
(** [default_iterations n]: iterations-to-convergence of one optimize call
    on an [n]-qubit block with default hyperparameters (convergence
    difficulty grows exponentially with width — Section 5.2). *)

val tuning_speedup : int -> float
(** Convergence speedup from per-slice tuned hyperparameters, measured
    with {!Pqc_hyperopt} (Section 7.2). *)

val seconds_per_iteration : width:int -> steps:int -> float
(** Wall-clock cost model of one GRAPE iteration at the given number of
    time slices. *)

val hyperopt_grid_evals : int
(** Optimize calls spent per slice during hyperparameter precompute (grid
    cells x probe angles). *)
