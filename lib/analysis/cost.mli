module Circuit = Pqc_quantum.Circuit
(** Static per-strategy cost model: predicted pulse duration and compile
    latency for each compilation strategy, without running GRAPE.

    The predictions mirror the calibrated model engine exactly — the same
    {!Pulse_model} block pricing, the same {!Latency_model} iteration
    counts, the same step discretization at {!model_dt} — so an estimate
    here equals what [Compiler.compile ~engine:Engine.model] reports
    (held by test); against the numeric engine they are the documented
    calibrated approximation (EXPERIMENTS.md). *)

val model_dt : float
(** Sample period (ns) the latency model discretizes pulses at; equal to
    [Grape.fast_settings.dt], which the model engine uses. *)

type estimate = {
  target : Rule.target;
  feasible : bool;
      (** False only for flexible partial compilation on a non-monotone
          circuit (the slicer would refuse). *)
  pulse_ns : float;  (** Predicted pulse duration ([infinity] if infeasible). *)
  precompute_s : float;  (** One-off offline compilation seconds. *)
  per_iteration_s : float;  (** Compilation seconds per variational iteration. *)
  blocks : int;  (** GRAPE blocks the strategy would compile. *)
}

type block_advice = {
  qubits : int list;
  first : int;  (** First original instruction index of the block. *)
  last : int;
  gate_ns : float;  (** Lookup-table critical path of the block. *)
  grape_ns : float;  (** Modelled GRAPE duration of the block. *)
  use_pulse : bool;
      (** True when GRAPE strictly beats the lookup table on this block —
          the hybrid gate-pulse decision bit (ROADMAP). *)
}

type advice = {
  recommended : Rule.target;
  estimates : estimate list;  (** One per strategy, presentation order. *)
  blocks : block_advice list;
  monotone : bool;
  resliceable : bool;
      (** Non-monotone but {!Dataflow.reslice} finds a monotone
          commutation-equivalent order. *)
}

val canonical_theta : Circuit.t -> float array
(** The binding used when none is supplied: pi/2 for every parameter
    (avoids zero-angle degeneracies). *)

val estimate : ?max_width:int -> ?theta:float array -> Circuit.t ->
  Rule.target -> estimate
(** Predict one strategy.  [max_width] defaults to
    {!Rule.grape_width_cap}; [theta] to {!canonical_theta}. *)

val block_advices : ?max_width:int -> ?theta:float array -> Circuit.t ->
  block_advice list
(** Per-block gate-vs-pulse pricing of the whole circuit's blocking. *)

val advise : ?max_width:int -> ?latency_budget_s:float ->
  ?theta:float array -> Circuit.t -> advice
(** Full advisory: all four estimates, the per-block decisions, and a
    recommendation — the shortest predicted pulse among feasible
    strategies whose per-iteration latency fits [latency_budget_s]
    (default 1 s); ties break toward lower latency, then lower
    precompute.  Gate-based always fits, so a recommendation always
    exists.  Deterministic: no randomness, no wall clock. *)

val estimate_to_string : estimate -> string
val advice_to_string : advice -> string
val advice_to_json : advice -> string
