module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times

(* Any-unitary time caps, ns.  1-3 qubit values bracket our numeric GRAPE's
   worst observed block times; the 4-qubit value instantiates the paper's
   empirical Figure 2 asymptote ("it asymptotes below 50 ns"). *)
let cap = function
  | 1 -> 3.0
  | 2 -> 9.0
  | 3 -> 20.0
  | 4 -> 50.0
  | n -> invalid_arg (Printf.sprintf "Pulse_model.cap: width %d out of range" n)

(* Local-rotation prices, ns per radian, from the Appendix-A drive bounds:
   an angle theta X-rotation takes theta / (2 * 2pi*0.1) ns, a Z rotation is
   15x faster (Table 1's Rx(pi) = 2.5 ns and Rz(pi) ~ 0.4 ns follow). *)
let x_rate = Gate_times.rx /. Float.pi
let z_rate = Gate_times.rz /. Float.pi

(* Interaction prices.  A lone CX matches our numeric GRAPE (3.8 ns); a
   recognized fractional ZZ(gamma) interaction costs time proportional to
   the angle — theoretical floor (gamma/2) / (2pi*0.05 GHz) = 1.59 gamma,
   plus dressing overhead fit against numeric 2-3 qubit runs. *)
let cx_interaction_time = Gate_times.cx
let zz_rate = 2.0

(* Calibration against the numeric engine (EXPERIMENTS.md): the first CX on
   a pair costs the full Table-1 time, but each further CX on the same pair
   compresses — GRAPE optimizes the pair's composite unitary, reusing the
   coupler ramp.  Accumulated pair interaction is further capped by the
   worst-case two-qubit composite time. *)
let cx_subsequent_time = 2.6
let pair_cap = 7.0

(* Fraction of the smaller of (local, interaction) lane content that cannot
   be overlapped with the larger; fit against numeric GRAPE on mixed
   blocks. *)
let overlap_residue = 0.25

let wrap_angle a =
  (* Wrap to (-pi, pi]: rotations are periodic and GRAPE takes the short
     way around. *)
  let two_pi = 2.0 *. Float.pi in
  let r = Float.rem a two_pi in
  let r = if r > Float.pi then r -. two_pi else r in
  if r <= -.Float.pi then r +. two_pi else r

let const_angle p =
  if not (Param.is_const p) then
    invalid_arg "Pulse_model: parametrized block (bind theta first)";
  Param.bind p [||]

(* A CX at instruction index [i] opens a potential CX . Rz(gamma) . CX
   fractional-ZZ sandwich: the matching CX must follow with only diagonal
   single-qubit gates on the target and nothing else on either operand in
   between.  Returns the index of the closing CX. *)
let find_zz_partner ops i =
  let open Circuit in
  let cx = ops.(i) in
  let a = cx.qubits.(0) and b = cx.qubits.(1) in
  let rec scan j =
    if j >= Array.length ops then None
    else begin
      let o = ops.(j) in
      if o.gate = Gate.CX && o.qubits.(0) = a && o.qubits.(1) = b then Some j
      else if
        Array.length o.qubits = 1
        && o.qubits.(0) = b
        && Gate.is_diagonal o.gate
      then scan (j + 1)
      else if Array.exists (fun q -> q = a || q = b) o.qubits then None
      else scan (j + 1)
    end
  in
  scan (i + 1)

type lane = { mutable local_t : float; mutable int_t : float }

(* Per-pair interaction accumulator, folded into lanes (with the pair cap)
   at the end. *)
type pairs = (int * int, float ref) Hashtbl.t

let pair_add (pairs : pairs) a b t =
  let key = if a < b then (a, b) else (b, a) in
  match Hashtbl.find_opt pairs key with
  | Some r -> r := !r +. t
  | None -> Hashtbl.replace pairs key (ref t)

(* First full-price CX on a pair, compressed price afterwards. *)
let pair_add_cx (pairs : pairs) a b =
  let key = if a < b then (a, b) else (b, a) in
  match Hashtbl.find_opt pairs key with
  | Some r -> r := !r +. cx_subsequent_time
  | None -> Hashtbl.replace pairs key (ref cx_interaction_time)

let block_duration c =
  let n = Circuit.n_qubits c in
  if n > 4 then invalid_arg "Pulse_model.block_duration: width > 4";
  let ops = Circuit.instrs c in
  if Array.length ops = 0 then 0.0
  else begin
    let lanes = Array.init n (fun _ -> { local_t = 0.0; int_t = 0.0 }) in
    let pairs : pairs = Hashtbl.create 8 in
    let consumed = Array.make (Array.length ops) false in
    let add_local q t = lanes.(q).local_t <- lanes.(q).local_t +. t in
    let price_1q (i : Circuit.instr) =
      let q = i.qubits.(0) in
      match i.gate with
      | Gate.Rz p -> add_local q (Float.abs (wrap_angle (const_angle p)) *. z_rate)
      | Gate.Z -> add_local q (Float.pi *. z_rate)
      | Gate.S | Gate.Sdg -> add_local q (Float.pi /. 2.0 *. z_rate)
      | Gate.T | Gate.Tdg -> add_local q (Float.pi /. 4.0 *. z_rate)
      | Gate.Rx p | Gate.Ry p ->
        add_local q (Float.abs (wrap_angle (const_angle p)) *. x_rate)
      | Gate.X | Gate.Y -> add_local q (Float.pi *. x_rate)
      | Gate.H ->
        (* Z(pi/2) X(pi/2) Z(pi/2), the asymmetry-optimal decomposition the
           paper's GRAPE rediscovers (Section 5.1). *)
        add_local q ((Float.pi /. 2.0 *. x_rate) +. (Float.pi *. z_rate))
      | Gate.CX | Gate.CZ | Gate.Swap | Gate.ISwap -> assert false
    in
    Array.iteri
      (fun i (instr : Circuit.instr) ->
        if not consumed.(i) then begin
          match instr.gate with
          | Gate.CX | Gate.CZ ->
            let a = instr.qubits.(0) and b = instr.qubits.(1) in
            let fractional =
              if instr.gate <> Gate.CX then None
              else
                match find_zz_partner ops i with
                | None -> None
                | Some j ->
                  (* Sum the diagonal rotation content between the CXs. *)
                  let gamma = ref 0.0 in
                  for k = i + 1 to j - 1 do
                    (match ops.(k).gate with
                    | Gate.Rz p -> gamma := !gamma +. const_angle p
                    | Gate.Z -> gamma := !gamma +. Float.pi
                    | Gate.S -> gamma := !gamma +. (Float.pi /. 2.0)
                    | Gate.Sdg -> gamma := !gamma -. (Float.pi /. 2.0)
                    | Gate.T -> gamma := !gamma +. (Float.pi /. 4.0)
                    | Gate.Tdg -> gamma := !gamma -. (Float.pi /. 4.0)
                    | _ -> ());
                    consumed.(k) <- true
                  done;
                  consumed.(j) <- true;
                  Some (Float.abs (wrap_angle !gamma))
            in
            (match fractional with
            | Some gamma -> pair_add pairs a b (gamma *. zz_rate)
            | None -> pair_add_cx pairs a b)
          | Gate.Swap | Gate.ISwap ->
            let t =
              match instr.gate with
              | Gate.Swap -> 2.0 *. cx_interaction_time
              | _ -> cx_interaction_time
            in
            pair_add pairs instr.qubits.(0) instr.qubits.(1) t
          | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.X | Gate.Y | Gate.Z
          | Gate.H | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg -> price_1q instr
        end)
      ops;
    Hashtbl.iter
      (fun (a, b) t ->
        let capped = Float.min !t pair_cap in
        lanes.(a).int_t <- lanes.(a).int_t +. capped;
        lanes.(b).int_t <- lanes.(b).int_t +. capped)
      pairs;
    let lane_time l =
      Float.max l.local_t l.int_t
      +. (overlap_residue *. Float.min l.local_t l.int_t)
    in
    let t_raw = Array.fold_left (fun acc l -> Float.max acc (lane_time l)) 0.0 lanes in
    (* GRAPE never does worse than the lookup table on the same block, and
       never needs more than the any-unitary cap. *)
    let gate_based = Gate_times.circuit_duration c in
    Float.min (Float.min t_raw (cap n)) gate_based
  end
