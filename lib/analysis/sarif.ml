(* SARIF 2.1.0 export of an analysis report.

   One run, one driver ("partialc-analysis").  The driver's rule table is
   the static catalog plus the two synthesized ids: PQC000 (parse error,
   emitted by the CLI front end) and PQC999 (crashed rule, emitted by
   Runner.guarded) — every result's ruleId therefore resolves to a
   ruleIndex.  Severity maps Error -> "error", Warning -> "warning",
   Info -> "note" (SARIF has no "info" level).

   Spans are instruction indices into the analyzed stream, not text
   positions, so they are exported under result.properties
   ({firstInstruction, lastInstruction}).  The one exception is PQC000,
   whose span is a real source line: it gets a physicalLocation region. *)

let esc = Diagnostic.json_escape

type rule_entry = { id : string; name : string; short : string }

let driver_rules () =
  List.map
    (fun (id, title, doc) -> { id; name = title; short = doc })
    (Rules.catalog ())
  @ [ { id = "PQC000"; name = "parse-error";
        short = "the input file could not be parsed" };
      { id = "PQC999"; name = "internal-error";
        short = "an analysis rule crashed; this is an analyzer bug" } ]

let level_of (s : Diagnostic.severity) =
  match s with
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let rule_json r =
  Printf.sprintf
    "{\"id\":\"%s\",\"name\":\"%s\",\
     \"shortDescription\":{\"text\":\"%s\"}}"
    (esc r.id) (esc r.name) (esc r.short)

let result_json ~uri ~index_of (d : Diagnostic.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\""
       (esc d.rule) (index_of d.rule) (level_of d.severity));
  Buffer.add_string buf
    (Printf.sprintf ",\"message\":{\"text\":\"%s\"}" (esc d.message));
  (match (d.rule, d.span, uri) with
  | "PQC000", Some s, Some u ->
    (* PQC000 spans are 1-based source lines of the parsed file. *)
    Buffer.add_string buf
      (Printf.sprintf
         ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
          {\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"endLine\":%d}}}]"
         (esc u) s.Diagnostic.first s.Diagnostic.last)
  | _, _, Some u ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
          {\"uri\":\"%s\"}}}]"
         (esc u))
  | _ -> ());
  let props =
    (match d.span with
    | Some s when d.rule <> "PQC000" ->
      [ Printf.sprintf "\"firstInstruction\":%d" s.Diagnostic.first;
        Printf.sprintf "\"lastInstruction\":%d" s.Diagnostic.last ]
    | _ -> [])
    @
    match d.hint with
    | Some h -> [ Printf.sprintf "\"hint\":\"%s\"" (esc h) ]
    | None -> []
  in
  if props <> [] then
    Buffer.add_string buf
      (Printf.sprintf ",\"properties\":{%s}" (String.concat "," props));
  Buffer.add_char buf '}';
  Buffer.contents buf

let of_report ?uri (r : Runner.report) =
  let rules = driver_rules () in
  let index_of id =
    let rec go i = function
      | [] -> -1 (* unreachable for catalog + PQC000/PQC999 ids *)
      | e :: rest -> if e.id = id then i else go (i + 1) rest
    in
    go 0 rules
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":\
     {\"name\":\"partialc-analysis\",\"version\":\"1.0.0\",\"rules\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (rule_json e))
    rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (result_json ~uri ~index_of d))
    r.Runner.diagnostics;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf
