module Gate = Pqc_quantum.Gate
module Param = Pqc_quantum.Param
module Circuit = Pqc_quantum.Circuit
module Slice = Pqc_transpile.Slice

(* ------------------------------------------------------------------ *)
(* Parameter def-use chains and per-qubit liveness                     *)
(* ------------------------------------------------------------------ *)

type def_use = {
  var : int;
  gates : int list;
  first : int;
  last : int;
  contiguous : bool;
}

type liveness = {
  first_use : int option;
  last_use : int option;
  uses : int;
}

type t = {
  n : int;
  length : int;
  def_uses : def_use list;
  liveness : liveness array;
  monotone : bool;
}

let instr_var (i : Circuit.instr) =
  Option.bind (Gate.param i.gate) Param.depends_on

(* One forward pass over the stream computes every fact at once; the
   per-qubit and per-parameter maps are join-semilattices (extend-only
   index sets), so a single pass is already the fixpoint. *)
let of_instrs ~n instrs =
  let uses : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let live = Array.make n { first_use = None; last_use = None; uses = 0 } in
  Array.iteri
    (fun idx (i : Circuit.instr) ->
      Array.iter
        (fun q ->
          if q >= 0 && q < n then
            live.(q) <-
              { first_use =
                  (match live.(q).first_use with
                  | None -> Some idx
                  | some -> some);
                last_use = Some idx;
                uses = live.(q).uses + 1 })
        i.qubits;
      match instr_var i with
      | None -> ()
      | Some v -> (
        match Hashtbl.find_opt uses v with
        | Some l -> l := idx :: !l
        | None ->
          Hashtbl.replace uses v (ref [ idx ]);
          order := v :: !order))
    instrs;
  (* Contiguity of one parameter's run is judged over parametrized gates
     only: interleaved fixed gates do not break flexible slicing, another
     parameter's gate does (Section 7.1). *)
  let param_seq =
    Array.to_list instrs |> List.filter_map instr_var
  in
  let contiguous_var v =
    (* [inside]: currently within v's run; [closed]: a run of v already
       ended, so seeing v again is a violation. *)
    let rec scan inside closed = function
      | [] -> true
      | w :: rest ->
        if w = v then (not closed) && scan true closed rest
        else scan false (closed || inside) rest
    in
    scan false false param_seq
  in
  let def_uses =
    List.rev !order
    |> List.map (fun v ->
           let gates = List.rev !(Hashtbl.find uses v) in
           { var = v;
             gates;
             first = List.hd gates;
             last = List.fold_left max 0 gates;
             contiguous = contiguous_var v })
    |> List.sort (fun a b -> Int.compare a.var b.var)
  in
  { n;
    length = Array.length instrs;
    def_uses;
    liveness = live;
    monotone = List.for_all (fun d -> d.contiguous) def_uses }

let of_circuit c = of_instrs ~n:(Circuit.n_qubits c) (Circuit.instrs c)

let find_def_use t v = List.find_opt (fun d -> d.var = v) t.def_uses

(* ------------------------------------------------------------------ *)
(* Commutation                                                         *)
(* ------------------------------------------------------------------ *)

let instr_equal (a : Circuit.instr) (b : Circuit.instr) =
  Gate.name a.gate = Gate.name b.gate
  && (match (Gate.param a.gate, Gate.param b.gate) with
     | Some p, Some q -> Param.equal p q
     | None, None -> true
     | Some _, None | None, Some _ -> false)
  && a.qubits = b.qubits

(* How a gate acts on one of its operand qubits.  [Diag]: the operator
   decomposes over that qubit's computational basis (Z-family, CZ, the
   control side of CX).  [X_like]/[Y_like]: the operator is a combination
   of I and that Pauli on the qubit (Rx/X on itself, the target side of
   CX).  [General]: no structure claimed (H, SWAP, iSWAP). *)
type action = Diag | X_like | Y_like | General

let action_on (i : Circuit.instr) q =
  match i.gate with
  | Gate.CX -> if q = i.qubits.(0) then Diag else X_like
  | Gate.CZ -> Diag
  | Gate.Swap | Gate.ISwap -> General
  | g ->
    if Gate.is_diagonal g then Diag
    else (
      match Gate.rotation_axis g with
      | Some `X -> X_like
      | Some `Y -> Y_like
      | Some `Z -> Diag
      | None -> General)

(* Sound but incomplete commutation check: adjacent gates commute when
   their supports are disjoint, when they are the same instruction, or
   when they agree on a non-[General] action for every shared qubit.  In
   the last case each operator splits as [A (x) I + B (x) P] per shared
   qubit (P = |z><z| projectors or the shared Pauli) with coefficients
   supported on the gates' private qubits, so all cross terms commute
   factor by factor. *)
let commutes (a : Circuit.instr) (b : Circuit.instr) =
  let shared =
    Array.to_list a.qubits |> List.filter (fun q -> Array.mem q b.qubits)
  in
  match shared with
  | [] -> true
  | _ ->
    instr_equal a b
    || List.for_all
         (fun q ->
           match (action_on a q, action_on b q) with
           | Diag, Diag | X_like, X_like | Y_like, Y_like -> true
           | (Diag | X_like | Y_like | General), _ -> false)
         shared

(* Non-commutation dependency edges i -> j (i < j): any linear extension
   of this DAG differs from the original order only by swaps of adjacent
   commuting gates, hence implements the same unitary. *)
let dependency_edges instrs =
  let len = Array.length instrs in
  let edges = ref [] in
  for j = len - 1 downto 1 do
    for i = j - 1 downto 0 do
      if not (commutes instrs.(i) instrs.(j)) then edges := (i, j) :: !edges
    done
  done;
  !edges

(* ------------------------------------------------------------------ *)
(* Commutation-aware reslicing                                         *)
(* ------------------------------------------------------------------ *)

(* Greedy Kahn linear extension of the non-commutation DAG, preferring to
   keep each parameter's gates contiguous: fixed gates are emitted as
   soon as they are ready; once a parameter's run opens, its remaining
   gates take priority until the run closes.  All ties break on the
   smallest original index, so the result is deterministic.  Returns the
   reordered circuit only when the greedy order is actually monotone —
   the transformation is conservative, never a guess. *)
let reslice c =
  let n = Circuit.n_qubits c in
  let instrs = Circuit.instrs c in
  let len = Array.length instrs in
  if len = 0 then None
  else begin
    let succs = Array.make len [] in
    let indeg = Array.make len 0 in
    List.iter
      (fun (i, j) ->
        succs.(i) <- j :: succs.(i);
        indeg.(j) <- indeg.(j) + 1)
      (dependency_edges instrs);
    let remaining = Hashtbl.create 8 in
    Array.iter
      (fun i ->
        match instr_var i with
        | None -> ()
        | Some v ->
          Hashtbl.replace remaining v
            (1 + Option.value ~default:0 (Hashtbl.find_opt remaining v)))
      instrs;
    let ready = Array.make len false in
    Array.iteri (fun i d -> if d = 0 then ready.(i) <- true) indeg;
    let emitted = Array.make len false in
    let out = ref [] in
    let open_var = ref None in
    let pick pred =
      let best = ref (-1) in
      for i = len - 1 downto 0 do
        if ready.(i) && (not emitted.(i)) && pred instrs.(i) then best := i
      done;
      !best
    in
    let emit i =
      emitted.(i) <- true;
      ready.(i) <- false;
      out := instrs.(i) :: !out;
      (match instr_var instrs.(i) with
      | None -> ()
      | Some v ->
        let left = Hashtbl.find remaining v - 1 in
        Hashtbl.replace remaining v left;
        open_var := if left = 0 then None else Some v);
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then ready.(j) <- true)
        succs.(i)
    in
    let steps = ref 0 in
    while !steps < len do
      incr steps;
      let next =
        (* 1. keep the open parameter's run going; *)
        let continue_run =
          match !open_var with
          | None -> -1
          | Some v -> pick (fun i -> instr_var i = Some v)
        in
        if continue_run >= 0 then continue_run
        else
          (* 2. fixed gates are always safe to emit; *)
          let fixed = pick (fun i -> instr_var i = None) in
          if fixed >= 0 then fixed
          else
            (* 3. open the next parameter run (or, when the open run is
               blocked, concede and let the final monotonicity check
               reject the order). *)
            pick (fun _ -> true)
      in
      if next >= 0 then emit next else steps := len (* cycle: bail out *)
    done;
    if Array.exists (fun e -> not e) emitted then None
    else
      let c' = Circuit.of_instrs n (List.rev !out) in
      if Slice.is_monotone c' then Some c' else None
  end

(* ------------------------------------------------------------------ *)
(* Measurement-relevant cone                                           *)
(* ------------------------------------------------------------------ *)

(* A diagonal gate is measurement-irrelevant when every later instruction
   sharing one of its qubits is also diagonal: the gate then commutes all
   the way to the end of the circuit, where a diagonal factor cannot
   change any computational-basis measurement probability. *)
let measurement_irrelevant instrs idx =
  let i = instrs.(idx) in
  Gate.is_diagonal i.Circuit.gate
  &&
  let len = Array.length instrs in
  let rec scan j =
    j >= len
    ||
    let o = instrs.(j) in
    (if Array.exists (fun q -> Array.mem q i.Circuit.qubits) o.Circuit.qubits
     then Gate.is_diagonal o.Circuit.gate
     else true)
    && scan (j + 1)
  in
  scan (idx + 1)

(* Parameters whose every gate is measurement-irrelevant: the whole
   parameter axis cannot move any measured expectation value. *)
let dead_params c =
  let instrs = Circuit.instrs c in
  let t = of_instrs ~n:(Circuit.n_qubits c) instrs in
  List.filter_map
    (fun d ->
      if
        d.gates <> []
        && List.for_all (fun idx -> measurement_irrelevant instrs idx) d.gates
      then Some (d.var, d.gates)
      else None)
    t.def_uses
