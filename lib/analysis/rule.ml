module Circuit = Pqc_quantum.Circuit
module Topology = Pqc_transpile.Topology

type target = Gate_based | Strict_partial | Flexible_partial | Full_grape

let target_to_string = function
  | Gate_based -> "gate-based"
  | Strict_partial -> "strict-partial"
  | Flexible_partial -> "flexible-partial"
  | Full_grape -> "full-grape"

(* GRAPE convergence time is exponential in block width; 4 qubits is the
   paper's tractability ceiling (Section 5.2). *)
let grape_width_cap = 4

type ctx = {
  n : int;
  instrs : Circuit.instr array;
  theta_len : int option;
  max_width : int;
  topology : Topology.t option;
  cache_file : string option;
  target : target option;
}

let of_instrs ?theta_len ?(max_width = grape_width_cap) ?topology ?cache_file
    ?target ~n instrs =
  if n <= 0 then invalid_arg "Rule.of_instrs: width must be positive";
  { n; instrs = Array.of_list instrs; theta_len; max_width; topology;
    cache_file; target }

let of_circuit ?theta_len ?max_width ?topology ?cache_file ?target c =
  of_instrs ?theta_len ?max_width ?topology ?cache_file ?target
    ~n:(Circuit.n_qubits c)
    (Array.to_list (Circuit.instrs c))

(* A stream checker observes each instruction once, in order; [finish]
   yields whatever it found.  The runner drives every stream rule through
   one shared pass over the instruction array. *)
type stream_checker = {
  on_instr : int -> Circuit.instr -> Diagnostic.t list;
  finish : unit -> Diagnostic.t list;
}

let pure_stream f = { on_instr = f; finish = (fun () -> []) }

type check =
  | Stream of (ctx -> stream_checker)
      (** Runs in the shared single pass over the instruction stream; never
          needs a validated circuit. *)
  | Structural of (ctx -> Circuit.t -> Diagnostic.t list)
      (** Needs a well-formed circuit; skipped when validity rules errored. *)
  | External of (ctx -> Diagnostic.t list)
      (** Independent of the instruction stream (e.g. cache-file audits). *)

type t = { id : string; title : string; doc : string; check : check }
