module Circuit = Pqc_quantum.Circuit
module Block = Pqc_transpile.Block
module Slice = Pqc_transpile.Slice
module Gate_times = Pqc_pulse.Gate_times
module Grape = Pqc_grape.Grape

(* The model engine discretizes a pulse of the predicted duration at the
   fast-settings sample period; the cost model must use the very same
   constant or its latency predictions drift from Engine.model's. *)
let model_dt = Grape.fast_settings.Grape.dt

type estimate = {
  target : Rule.target;
  feasible : bool;
  pulse_ns : float;
  precompute_s : float;
  per_iteration_s : float;
  blocks : int;
}

type block_advice = {
  qubits : int list;
  first : int;
  last : int;
  gate_ns : float;
  grape_ns : float;
  use_pulse : bool;
}

type advice = {
  recommended : Rule.target;
  estimates : estimate list;
  blocks : block_advice list;
  monotone : bool;
  resliceable : bool;
}

(* A representative binding for purely static analysis: pi/2 everywhere
   avoids the zero-angle degeneracies (an Rz(0) prices as free) without
   favouring any particular gate. *)
let canonical_theta c =
  Array.make (Circuit.n_params c) (Float.pi /. 2.0)

(* Mirrors Engine.model_steps at Grape.fast_settings. *)
let model_steps duration =
  max 2 (int_of_float (Float.max duration 1.0 /. model_dt))

(* Mirrors Engine.model_search: modelled minimal duration plus the
   modelled seconds of the minimal-time binary search (probes x default
   iterations, each priced per time slice).  Empty blocks are free, as in
   Engine.search. *)
let search_estimate c =
  if Circuit.length c = 0 then (0.0, 0.0)
  else if Circuit.n_qubits c > Rule.grape_width_cap then
    (* GRAPE cannot compile the block at all (PQC030 reports it); the
       model prices it as unattainable rather than raising. *)
    (Float.infinity, Float.infinity)
  else
    let width = Circuit.n_qubits c in
    let duration = Pulse_model.block_duration c in
    let steps = model_steps duration in
    let iters =
      Latency_model.probes_per_search * Latency_model.default_iterations width
    in
    ( duration,
      float_of_int iters *. Latency_model.seconds_per_iteration ~width ~steps )

(* Mirrors Engine.hyperopt_cost on the model engine. *)
let hyperopt_seconds ~width ~duration =
  let iters =
    Latency_model.hyperopt_grid_evals * Latency_model.default_iterations width
  in
  let steps = model_steps duration in
  float_of_int iters *. Latency_model.seconds_per_iteration ~width ~steps

(* Mirrors Engine.tuned_run_cost on the model engine. *)
let tuned_seconds ~width ~duration =
  let iters =
    float_of_int (Latency_model.default_iterations width)
    /. Latency_model.tuning_speedup width
  in
  let steps = model_steps duration in
  iters *. Latency_model.seconds_per_iteration ~width ~steps

(* Mirrors Strategy.makespan: per-qubit occupancy scheduling of block
   jobs (reimplemented here because the analysis layer sits below
   pqc_core). *)
let makespan ~n jobs =
  let free = Array.make n 0.0 in
  List.fold_left
    (fun acc (qubits, duration) ->
      let start =
        List.fold_left (fun t q -> Float.max t free.(q)) 0.0 qubits
      in
      let finish = start +. duration in
      List.iter (fun q -> free.(q) <- finish) qubits;
      Float.max acc finish)
    0.0 jobs

let block_jobs ~max_width bound =
  Block.partition ~max_width bound
  |> List.map (fun (b : Block.block) ->
         let d, s = search_estimate (Block.extract b) in
         (b.qubits, d, s))

let gate_estimate c ~theta =
  { target = Rule.Gate_based;
    feasible = true;
    pulse_ns = Gate_times.circuit_duration (Circuit.bind c theta);
    precompute_s = 0.0;
    per_iteration_s = 0.0;
    blocks = 0 }

let full_grape_estimate ~max_width c ~theta =
  let bound = Circuit.bind c theta in
  let jobs = block_jobs ~max_width bound in
  let per_iteration = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 jobs in
  { target = Rule.Full_grape;
    feasible = true;
    pulse_ns =
      makespan ~n:(Circuit.n_qubits c)
        (List.map (fun (q, d, _) -> (q, d)) jobs);
    precompute_s = 0.0;
    per_iteration_s = per_iteration;
    blocks = List.length jobs }

(* Mirrors Compiler.strict_jobs for one slicing: Fixed slices are blocked
   and priced by the search model, parametrized gates by the lookup
   table. *)
let strict_slicing_jobs ~max_width ~theta slices =
  let cost = ref 0.0 in
  let nblocks = ref 0 in
  let jobs =
    List.concat_map
      (fun (s : Slice.slice) ->
        match s.var with
        | None ->
          Block.partition ~max_width s.circuit
          |> List.map (fun (b : Block.block) ->
                 let d, sec = search_estimate (Block.extract b) in
                 cost := !cost +. sec;
                 incr nblocks;
                 (b.qubits, d))
        | Some _ ->
          Array.to_list (Circuit.instrs (Circuit.bind s.circuit theta))
          |> List.map (fun (i : Circuit.instr) ->
                 (Array.to_list i.qubits, Gate_times.instr_duration i)))
      slices
  in
  (jobs, !cost, !nblocks)

let strict_estimate ~max_width c ~theta =
  let n = Circuit.n_qubits c in
  let region_jobs, region_cost, region_blocks =
    strict_slicing_jobs ~max_width ~theta (Slice.strict c)
  in
  let linear_jobs, linear_cost, linear_blocks =
    strict_slicing_jobs ~max_width ~theta (Slice.strict_linear c)
  in
  let region_span = makespan ~n region_jobs in
  let linear_span = makespan ~n linear_jobs in
  let raw, precompute, blocks =
    if region_span <= linear_span then
      (region_span, region_cost, region_blocks)
    else (linear_span, linear_cost, linear_blocks)
  in
  let fallback = Gate_times.circuit_duration (Circuit.bind c theta) in
  { target = Rule.Strict_partial;
    feasible = true;
    pulse_ns = Float.min raw fallback;
    (* Both slicings are compiled offline (the shorter schedule wins), so
       both batches' search time is paid — mirror Compiler.strict_partial,
       which reports only the surviving slicing's cost in [precompute] but
       runs both.  We price the surviving slicing, matching the compiled
       result's accounting. *)
    precompute_s = precompute;
    per_iteration_s = 0.0;
    blocks }

let flexible_estimate ~max_width c ~theta =
  if not (Slice.is_monotone c) then
    { target = Rule.Flexible_partial;
      feasible = false;
      pulse_ns = Float.infinity;
      precompute_s = 0.0;
      per_iteration_s = 0.0;
      blocks = 0 }
  else
    let n = Circuit.n_qubits c in
    let items =
      List.concat_map
        (fun (s : Slice.slice) ->
          Block.partition ~max_width s.circuit
          |> List.map (fun (b : Block.block) ->
                 (b, Circuit.bind (Block.extract b) theta)))
        (Slice.flexible c)
    in
    let precompute = ref 0.0 in
    let per_iteration = ref 0.0 in
    let jobs =
      List.map
        (fun ((b : Block.block), bound) ->
          let d, search_s = search_estimate bound in
          let width = Circuit.n_qubits bound in
          if Circuit.length bound > 0 then begin
            precompute :=
              !precompute +. search_s +. hyperopt_seconds ~width ~duration:d;
            per_iteration :=
              !per_iteration +. tuned_seconds ~width ~duration:d
          end;
          (b.qubits, d))
        items
    in
    { target = Rule.Flexible_partial;
      feasible = true;
      pulse_ns = makespan ~n jobs;
      precompute_s = !precompute;
      per_iteration_s = !per_iteration;
      blocks = List.length items }

let estimate ?(max_width = Rule.grape_width_cap) ?theta c target =
  let theta =
    match theta with Some t -> t | None -> canonical_theta c
  in
  match target with
  | Rule.Gate_based -> gate_estimate c ~theta
  | Rule.Strict_partial -> strict_estimate ~max_width c ~theta
  | Rule.Flexible_partial -> flexible_estimate ~max_width c ~theta
  | Rule.Full_grape -> full_grape_estimate ~max_width c ~theta

let block_advices ?(max_width = Rule.grape_width_cap) ?theta c =
  let theta =
    match theta with Some t -> t | None -> canonical_theta c
  in
  let bound = Circuit.bind c theta in
  Block.partition_with_indices ~max_width bound
  |> List.map (fun ((b : Block.block), indices) ->
         let extracted = Block.extract b in
         let gate_ns = Gate_times.circuit_duration extracted in
         let grape_ns =
           if Circuit.n_qubits extracted > Rule.grape_width_cap then
             Float.infinity
           else Pulse_model.block_duration extracted
         in
         { qubits = b.qubits;
           first = List.fold_left min max_int indices;
           last = List.fold_left max 0 indices;
           gate_ns;
           grape_ns;
           (* Strictly better beyond float noise: a tie (the model caps
              GRAPE at the lookup-table time) means pulses buy nothing. *)
           use_pulse = grape_ns < gate_ns *. (1.0 -. 1e-9) })

let all_targets =
  [ Rule.Gate_based; Rule.Strict_partial; Rule.Flexible_partial;
    Rule.Full_grape ]

(* Recommendation: among strategies that are feasible and fit the
   per-iteration latency budget, the shortest predicted pulse wins; ties
   break toward lower latency, then lower precompute, then the paper's
   presentation order.  Gate-based is always admissible (zero latency),
   so a recommendation always exists. *)
let advise ?(max_width = Rule.grape_width_cap) ?(latency_budget_s = 1.0)
    ?theta c =
  let theta =
    match theta with Some t -> t | None -> canonical_theta c
  in
  let estimates = List.map (estimate ~max_width ~theta c) all_targets in
  let monotone = Slice.is_monotone c in
  let resliceable = (not monotone) && Dataflow.reslice c <> None in
  let admissible e = e.feasible && e.per_iteration_s <= latency_budget_s in
  let better a b =
    (* true when [a] beats [b] *)
    if a.pulse_ns <> b.pulse_ns then a.pulse_ns < b.pulse_ns
    else if a.per_iteration_s <> b.per_iteration_s then
      a.per_iteration_s < b.per_iteration_s
    else a.precompute_s < b.precompute_s
  in
  let recommended =
    List.fold_left
      (fun best e ->
        if not (admissible e) then best
        else
          match best with
          | None -> Some e
          | Some b -> if better e b then Some e else best)
      None estimates
  in
  let recommended =
    match recommended with
    | Some e -> e.target
    | None -> Rule.Gate_based (* unreachable: gate-based is admissible *)
  in
  { recommended;
    estimates;
    blocks = block_advices ~max_width ~theta c;
    monotone;
    resliceable }

(* --- rendering --- *)

let estimate_to_string e =
  if not e.feasible then
    Printf.sprintf "%-16s infeasible (non-monotone circuit)"
      (Rule.target_to_string e.target)
  else
    Printf.sprintf
      "%-16s pulse %8.1f ns   precompute %10.3f s   per-iter %10.3f s   \
       blocks %d"
      (Rule.target_to_string e.target)
      e.pulse_ns e.precompute_s e.per_iteration_s e.blocks

let advice_to_string a =
  let lines =
    [ Printf.sprintf "recommended: %s" (Rule.target_to_string a.recommended);
      Printf.sprintf "monotone: %b%s" a.monotone
        (if a.resliceable then " (reslicable by commutation)" else "") ]
    @ List.map estimate_to_string a.estimates
    @ List.map
        (fun b ->
          Printf.sprintf
            "block {%s} @%d-%d: gate %.2f ns, grape %.2f ns -> %s"
            (String.concat "," (List.map string_of_int b.qubits))
            b.first b.last b.gate_ns b.grape_ns
            (if b.use_pulse then "pulse" else "gate lookup"))
        a.blocks
  in
  String.concat "\n" lines

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let estimate_to_json e =
  Printf.sprintf
    "{\"strategy\":\"%s\",\"feasible\":%b,\"pulse_ns\":%s,\
     \"precompute_s\":%s,\"per_iteration_s\":%s,\"blocks\":%d}"
    (Rule.target_to_string e.target)
    e.feasible (json_float e.pulse_ns) (json_float e.precompute_s)
    (json_float e.per_iteration_s)
    e.blocks

let block_to_json b =
  Printf.sprintf
    "{\"qubits\":[%s],\"first\":%d,\"last\":%d,\"gate_ns\":%s,\
     \"grape_ns\":%s,\"use_pulse\":%b}"
    (String.concat "," (List.map string_of_int b.qubits))
    b.first b.last (json_float b.gate_ns) (json_float b.grape_ns) b.use_pulse

let advice_to_json a =
  Printf.sprintf
    "{\"recommended\":\"%s\",\"monotone\":%b,\"resliceable\":%b,\
     \"estimates\":[%s],\"blocks\":[%s]}"
    (Rule.target_to_string a.recommended)
    a.monotone a.resliceable
    (String.concat "," (List.map estimate_to_json a.estimates))
    (String.concat "," (List.map block_to_json a.blocks))
