let probes_per_search = 7

let default_iterations = function
  | 1 -> 150
  | 2 -> 300
  | 3 -> 600
  | _ -> 2400

let tuning_speedup = function
  | 1 -> 3.0
  | 2 -> 4.0
  | 3 -> 5.0
  | _ -> 6.0

(* Measured on this machine (numeric engine, dt = 0.25-0.5 ns): seconds per
   optimizer iteration per time slice, by block width.  Dominated by the
   O(dim^3) slice propagator exponentials. *)
let seconds_per_iteration_per_step = function
  | 1 -> 2.0e-6
  | 2 -> 1.0e-5
  | 3 -> 5.0e-5
  | _ -> 2.5e-4

let seconds_per_iteration ~width ~steps =
  float_of_int steps *. seconds_per_iteration_per_step (min width 4)

let hyperopt_grid_evals = 36
