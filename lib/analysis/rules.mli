(** The built-in rule catalog.

    Rule ids are stable and grouped by decade:
    - PQC00x — validity: {!qubit_bounds}, {!arity}, {!duplicate_operand}
    - PQC01x — parameters: {!non_finite_angle}, {!unbound_param}
    - PQC02x — slicing invariants: {!monotonicity}, {!strict_slice},
      {!flexible_slice}
    - PQC03x — blocking/topology: {!block_width}, {!connectivity}
    - PQC04x — lint: {!adjacent_inverse}, {!mergeable_rotation}
    - PQC05x — external resources: {!cache_audit}
    - PQC06x — dataflow/cost: {!commutation_reslice}, {!dead_parameter},
      {!block_beats_grape}

    PQC000 (parse error) and PQC999 (crashed rule) are synthesized by the
    driver and {!Runner.guarded} respectively and are not in the catalog. *)

val qubit_bounds : Rule.t
val arity : Rule.t
val duplicate_operand : Rule.t

val validity_rules : Rule.t list
(** The three rules above: an error from any of them means the stream
    cannot be a {!Pqc_quantum.Circuit.t}, so structural rules are skipped. *)

val non_finite_angle : Rule.t
val unbound_param : Rule.t
val monotonicity : Rule.t
(** Severity is [Error] when the context targets flexible partial
    compilation (or no target is given, as in lint), else [Warning]. *)

val strict_slice : Rule.t
val flexible_slice : Rule.t
val block_width : Rule.t
val connectivity : Rule.t
(** Runs only when the context carries a topology. *)

val adjacent_inverse : Rule.t
val mergeable_rotation : Rule.t

val commutation_reslice : Rule.t
(** Info when a non-monotone circuit has a monotone commutation-equivalent
    reordering ({!Dataflow.reslice}). *)

val dead_parameter : Rule.t
(** Warning per parameter whose gates never reach a measurement-relevant
    cone ({!Dataflow.dead_params}). *)

val block_beats_grape : Rule.t
(** Info per multi-gate block whose predicted GRAPE pulse does not beat
    the gate lookup table ({!Cost.block_advices}). *)

val cache_audit : Rule.t
(** Runs only when the context names a cache file; see {!Cache_audit}. *)

val assert_unique : Rule.t list -> unit
(** Raises [Invalid_argument] on a duplicate rule id.  Runs over {!all}
    at module initialization; {!Runner.run} applies it to whatever rule
    list it is given. *)

val all : Rule.t list
(** Every built-in rule, in id order. *)

val find : string -> Rule.t option
(** Look up by id (["PQC020"]) or title (["param-monotonicity"]). *)

val catalog : unit -> (string * string * string) list
(** [(id, title, doc)] for every rule — the lint [--rules] listing. *)
