type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type span = { first : int; last : int }

let point i = { first = i; last = i }
let span ~first ~last =
  if last < first then invalid_arg "Diagnostic.span: last < first";
  { first; last }

type t = {
  rule : string;
  severity : severity;
  span : span option;
  message : string;
  hint : string option;
}

let v ?span ?hint ~rule ~severity message =
  { rule; severity; span; message; hint }

let error ?span ?hint ~rule message = v ?span ?hint ~rule ~severity:Error message
let warning ?span ?hint ~rule message =
  v ?span ?hint ~rule ~severity:Warning message
let info ?span ?hint ~rule message = v ?span ?hint ~rule ~severity:Info message

let is_error d = d.severity = Error

(* Stable presentation order: severity first, then source position, then
   rule id, so reports are deterministic and the worst news leads. *)
let compare a b =
  let k = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if k <> 0 then k
  else
    let pos = function None -> max_int | Some s -> s.first in
    let k = Int.compare (pos a.span) (pos b.span) in
    if k <> 0 then k
    else
      let k = String.compare a.rule b.rule in
      if k <> 0 then k else String.compare a.message b.message

let span_to_string = function
  | None -> ""
  | Some { first; last } ->
    if first = last then Printf.sprintf "@%d" first
    else Printf.sprintf "@%d-%d" first last

let to_string d =
  let hint = match d.hint with None -> "" | Some h -> " [hint: " ^ h ^ "]" in
  Printf.sprintf "%s %s%s: %s%s"
    (severity_to_string d.severity)
    d.rule (span_to_string d.span) d.message hint

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\"" (json_escape d.rule)
       (severity_to_string d.severity));
  (match d.span with
  | None -> ()
  | Some { first; last } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"span\":{\"first\":%d,\"last\":%d}" first last));
  Buffer.add_string buf
    (Printf.sprintf ",\"message\":\"%s\"" (json_escape d.message));
  (match d.hint with
  | None -> ()
  | Some h ->
    Buffer.add_string buf (Printf.sprintf ",\"hint\":\"%s\"" (json_escape h)));
  Buffer.add_char buf '}';
  Buffer.contents buf
