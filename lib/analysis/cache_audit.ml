let rule_id = "PQC050"

(* The audit re-implements the cache wire format on purpose: it must judge
   files the engine's tolerant loader would silently repair, so it cannot
   share that loader.  The format (and the FNV-1a checksum) is pinned to
   [Pqc_core.Pulse_cache] by test_analysis's save-then-audit round-trip. *)
let supported_version = 1
let header_prefix = "PQC-PULSE-CACHE v"

let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

type record_fields = {
  key : string;
  duration_ns : float;
  fidelity : float option;
}

let parse_payload s =
  match
    Scanf.sscanf s "%S\t%h\t%d\t%d\t%h\t%s@\t%s"
      (fun key duration_ns _runs _iters _seconds fid _fb ->
        (key, duration_ns, fid))
  with
  | key, duration_ns, fid ->
    (match (if fid = "-" then Some None
            else Option.map Option.some (float_of_string_opt fid))
     with
     | None -> None
     | Some fidelity -> Some { key; duration_ns; fidelity })
  | exception _ -> None

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          lines := input_line ic :: !lines
        done
      with End_of_file -> ());
  List.rev !lines

let audit_header line =
  let plen = String.length header_prefix in
  if String.length line > plen && String.sub line 0 plen = header_prefix then
    match int_of_string_opt (String.sub line plen (String.length line - plen)) with
    | Some v when v = supported_version -> []
    | Some v ->
      [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point 1)
          ~hint:"regenerate the cache with this build's Engine.persist"
          (Printf.sprintf
             "unsupported cache version %d (this build reads v%d); the \
              engine will drop every record" v supported_version) ]
    | None ->
      [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point 1)
          (Printf.sprintf "malformed cache version in header %S" line) ]
  else
    [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point 1)
        ~hint:"the file is not a pulse cache, or its header was clobbered"
        (Printf.sprintf "bad cache header %S (expected %S%d)" line
           header_prefix supported_version) ]

let audit_record ~lineno ~seen line =
  match String.index_opt line '\t' with
  | None ->
    [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point lineno)
        ~hint:"record truncated? the engine will drop it on load"
        "cache record has no checksum field" ]
  | Some i ->
    let crc = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    if not (String.equal (checksum rest) crc) then
      [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point lineno)
          ~hint:"bit flip or partial write; delete the line or the file"
          (Printf.sprintf "cache record checksum mismatch (stored %s)" crc) ]
    else begin
      match parse_payload rest with
      | None ->
        [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point lineno)
            "cache record passes its checksum but does not parse" ]
      | Some r ->
        let dups =
          match Hashtbl.find_opt seen r.key with
          | Some prev ->
            [ Diagnostic.warning ~rule:rule_id
                ~span:(Diagnostic.point lineno)
                ~hint:"later records win on load; re-persist to deduplicate"
                (Printf.sprintf
                   "duplicate cache key (first seen on line %d)" prev) ]
          | None ->
            Hashtbl.replace seen r.key lineno;
            []
        in
        let bad_duration =
          if Float.is_finite r.duration_ns && r.duration_ns >= 0.0 then []
          else
            [ Diagnostic.error ~rule:rule_id ~span:(Diagnostic.point lineno)
                (Printf.sprintf "cache record has unusable duration %h"
                   r.duration_ns) ]
        in
        let odd_fidelity =
          match r.fidelity with
          | Some f when not (Float.is_finite f) || f < 0.0 || f > 1.0 +. 1e-9 ->
            [ Diagnostic.warning ~rule:rule_id ~span:(Diagnostic.point lineno)
                (Printf.sprintf "cache record reports fidelity %g outside [0,1]"
                   f) ]
          | Some _ | None -> []
        in
        dups @ bad_duration @ odd_fidelity
    end

let audit ~path =
  if not (Sys.file_exists path) then
    [ Diagnostic.warning ~rule:rule_id
        ~hint:"check PQC_PULSE_CACHE / --cache spelling"
        (Printf.sprintf "pulse-cache file %s does not exist" path) ]
  else
    match read_lines path with
    | exception Sys_error e ->
      [ Diagnostic.error ~rule:rule_id
          (Printf.sprintf "pulse-cache file %s unreadable: %s" path e) ]
    | [] ->
      [ Diagnostic.warning ~rule:rule_id ~span:(Diagnostic.point 1)
          (Printf.sprintf "pulse-cache file %s is empty (no header)" path) ]
    | header :: records ->
      let header_diags = audit_header header in
      (* An unreadable header means no record can be trusted; per-record
         findings would be noise. *)
      if header_diags <> [] then header_diags
      else begin
        let seen = Hashtbl.create 64 in
        List.concat
          (List.mapi
             (fun k line -> audit_record ~lineno:(k + 2) ~seen line)
             records)
      end
