module Circuit = Pqc_quantum.Circuit
(** Rule execution: drive a set of rules over an analysis context.

    Stream rules share one pass over the instruction array; structural
    rules run afterwards on the validated circuit (and are skipped, with a
    note in the report, when validity rules errored — a malformed stream
    cannot be a {!Circuit.t}); external rules (cache audit) always run.
    A crashing rule is converted into a PQC999 internal-error diagnostic
    carrying the exception and backtrace — analysis itself never raises,
    except for the explicit {!Rejected} gate in {!check} and the
    duplicate-rule-id rejection in {!run}. *)

type report = {
  diagnostics : Diagnostic.t list;  (** Sorted: errors first, then by span. *)
  errors : int;
  warnings : int;
  infos : int;
  suppressed : int;  (** Findings dropped by [Off] overrides. *)
  rules_run : string list;  (** Ids of the rules that were executed. *)
  skipped_structural : bool;
      (** True when validity errors forced structural rules to be skipped. *)
}

exception Rejected of report
(** Raised by {!check} (and by {!Pqc_core.Compiler.compile}'s fail-fast
    gate) when the report contains at least one error. *)

type override = Off | Severity of Diagnostic.severity
(** Per-rule report adjustment: [Off] suppresses the rule's findings
    (counted in [suppressed]); [Severity s] re-levels them.  Overrides
    apply after every rule has run, so a disabled rule's crash still
    surfaces as PQC999.  The first binding for an id wins — prepend CLI
    flags before [PQC_LINT_RULES] entries. *)

val parse_overrides : string -> ((string * override) list, string) result
(** Parse a comma-separated spec: ["PQC040=off"], ["-PQC040"],
    ["PQC030=error"], ["PQC030=warning"], ["PQC030=info"].  Whitespace
    around items is ignored; empty items are skipped. *)

val run : ?rules:Rule.t list -> ?overrides:(string * override) list ->
  Rule.ctx -> report
(** Execute [rules] (default {!Rules.all}) over the context.  Raises
    [Invalid_argument] when [rules] contains a duplicate id. *)

val analyze :
  ?rules:Rule.t list ->
  ?overrides:(string * override) list ->
  ?theta_len:int ->
  ?max_width:int ->
  ?topology:Pqc_transpile.Topology.t ->
  ?cache_file:string ->
  ?target:Rule.target ->
  Circuit.t ->
  report
(** Convenience: build a circuit context and {!run}. *)

val check :
  ?rules:Rule.t list ->
  ?overrides:(string * override) list ->
  ?theta_len:int ->
  ?max_width:int ->
  ?topology:Pqc_transpile.Topology.t ->
  ?cache_file:string ->
  ?target:Rule.target ->
  Circuit.t ->
  report
(** Like {!analyze} but raises {!Rejected} when the report has errors —
    the fail-fast gate used before spending GRAPE time. *)

val advise : ?max_width:int -> ?latency_budget_s:float ->
  ?theta:float array -> Circuit.t -> Cost.advice
(** {!Cost.advise}, re-exported as the analysis entry point used by
    [Compiler.compile ?advice] and [partialc analyze]. *)

val has_errors : report -> bool
val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list

val summary : report -> string
(** E.g. ["2 errors, 1 warning, 0 infos"]. *)

val to_string : report -> string
(** Human-readable: one line per diagnostic plus the summary. *)

val to_json : report -> string
(** Machine-readable report for [partialc lint --json] and CI. *)

val exit_code : report -> int
(** CI convention: [1] when the report has errors, else [0]. *)
