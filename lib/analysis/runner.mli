module Circuit = Pqc_quantum.Circuit
(** Rule execution: drive a set of rules over an analysis context.

    Stream rules share one pass over the instruction array; structural
    rules run afterwards on the validated circuit (and are skipped, with a
    note in the report, when validity rules errored — a malformed stream
    cannot be a {!Circuit.t}); external rules (cache audit) always run.
    A crashing rule is converted into an error diagnostic against that
    rule — analysis itself never raises, except for the explicit
    {!Rejected} gate in {!check}. *)

type report = {
  diagnostics : Diagnostic.t list;  (** Sorted: errors first, then by span. *)
  errors : int;
  warnings : int;
  infos : int;
  rules_run : string list;  (** Ids of the rules that were executed. *)
  skipped_structural : bool;
      (** True when validity errors forced structural rules to be skipped. *)
}

exception Rejected of report
(** Raised by {!check} (and by {!Pqc_core.Compiler.compile}'s fail-fast
    gate) when the report contains at least one error. *)

val run : ?rules:Rule.t list -> Rule.ctx -> report
(** Execute [rules] (default {!Rules.all}) over the context. *)

val analyze :
  ?rules:Rule.t list ->
  ?theta_len:int ->
  ?max_width:int ->
  ?topology:Pqc_transpile.Topology.t ->
  ?cache_file:string ->
  ?target:Rule.target ->
  Circuit.t ->
  report
(** Convenience: build a circuit context and {!run}. *)

val check :
  ?rules:Rule.t list ->
  ?theta_len:int ->
  ?max_width:int ->
  ?topology:Pqc_transpile.Topology.t ->
  ?cache_file:string ->
  ?target:Rule.target ->
  Circuit.t ->
  report
(** Like {!analyze} but raises {!Rejected} when the report has errors —
    the fail-fast gate used before spending GRAPE time. *)

val has_errors : report -> bool
val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list

val summary : report -> string
(** E.g. ["2 errors, 1 warning, 0 infos"]. *)

val to_string : report -> string
(** Human-readable: one line per diagnostic plus the summary. *)

val to_json : report -> string
(** Machine-readable report for [partialc lint --json] and CI. *)

val exit_code : report -> int
(** CI convention: [1] when the report has errors, else [0]. *)
