module Rng = Pqc_util.Rng
module Nelder_mead = Pqc_util.Nelder_mead
module Pauli = Pqc_quantum.Pauli
module Circuit = Pqc_quantum.Circuit
module Statevec = Pqc_quantum.Statevec
module Run_log = Pqc_obs.Run_log

type result = {
  energy : float;
  theta : float array;
  evaluations : int;
  history : float list;
}

let run ?(max_evals = 1500) ?(seed = 11) ?(optimizer = `Nelder_mead) ?recorder
    ~hamiltonian ~ansatz () =
  if Pauli.(hamiltonian.n_qubits) <> Circuit.n_qubits ansatz then
    invalid_arg "Vqe.run: Hamiltonian/ansatz width mismatch";
  let n_params = Circuit.n_params ansatz in
  let rng = Rng.create seed in
  let x0 =
    Array.init n_params (fun _ -> Rng.uniform rng ~lo:(-0.1) ~hi:0.1)
  in
  let energy theta =
    Pauli.expectation hamiltonian (Statevec.run ~theta ansatz)
  in
  (* Each objective evaluation is one variational iteration — exactly
     the event that would trigger a recompilation on real hardware, so
     exactly the event the run recorder logs.  The wrapper only observes
     the value on its way through; the optimizer sees it unchanged. *)
  let energy =
    match recorder with
    | None -> energy
    | Some r ->
      let evals = ref 0 in
      fun theta ->
        let e = energy theta in
        incr evals;
        Run_log.record r ~iteration:!evals ~energy:e;
        e
  in
  if n_params = 0 then
    { energy = energy [||]; theta = [||]; evaluations = 1; history = [] }
  else
    match optimizer with
    | `Nelder_mead ->
      let options =
        { Nelder_mead.default_options with max_evals; initial_step = 0.15 }
      in
      let r = Nelder_mead.minimize ~options ~f:energy ~x0 () in
      { energy = r.f; theta = r.x; evaluations = r.evals; history = r.history }
    | `Spsa ->
      let options =
        { Pqc_util.Spsa.default_options with max_iters = max_evals / 2; seed }
      in
      let r = Pqc_util.Spsa.minimize ~options ~f:energy ~x0 () in
      { energy = r.f; theta = r.best_x; evaluations = r.evals;
        history = r.history }
