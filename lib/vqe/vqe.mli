module Pauli = Pqc_quantum.Pauli
module Circuit = Pqc_quantum.Circuit
(** The end-to-end Variational Quantum Eigensolver loop (Section 4.1):
    guess parameters, prepare the ansatz state (on the classical
    state-vector simulator standing in for quantum hardware), measure
    <H>, and let Nelder-Mead pick the next guess. *)

type result = {
  energy : float;  (** Best <H> reached. *)
  theta : float array;  (** Parameters achieving it. *)
  evaluations : int;
      (** Number of variational iterations — each one would trigger a
          recompilation on real hardware, which is exactly the latency
          partial compilation attacks. *)
  history : float list;  (** Best-so-far energy per optimizer step. *)
}

val run :
  ?max_evals:int -> ?seed:int -> ?optimizer:[ `Nelder_mead | `Spsa ] ->
  ?recorder:Pqc_obs.Run_log.t ->
  hamiltonian:Pauli.t -> ansatz:Circuit.t -> unit -> result
(** Minimize the ansatz energy from a seeded random start ([optimizer]
    defaults to [`Nelder_mead]; [`Spsa] trades precision for robustness to
    measurement noise).  The ansatz width must match the Hamiltonian's.

    [recorder]: stream one {!Pqc_obs.Run_log} record per objective
    evaluation (iteration index, energy, wall-clock) as the run
    progresses.  Recording never changes the optimization: results are
    identical with or without it. *)
