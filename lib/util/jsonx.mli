(** Minimal JSON reader.

    The repository deliberately has no third-party JSON dependency; the
    writers ({!Pqc_core.Bench_report}, the Chrome trace export) emit
    documents by hand.  The regression-diff tooling needs to read them
    back, so this module provides a small, strict RFC 8259 parser for
    machine-generated documents: objects, arrays, strings (with the
    escape set our writers emit, including [\uXXXX]), numbers, booleans
    and [null].  It is not a streaming parser and holds the whole
    document in memory — bench reports and run logs are kilobytes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** Members in document order. *)

val escape_string : string -> string
(** Render a quoted JSON string literal for arbitrary bytes: the
    standard short escapes for quote, backslash, [\n], [\r], [\t],
    [\u00XX] for the remaining control bytes, and raw pass-through for
    everything else (so UTF-8 survives byte-for-byte).  Always parses
    back with {!parse}, and the parsed value equals the input exactly.
    Shared by the trace, run-log and bench-report writers so hostile
    names escape identically everywhere. *)

val parse : string -> (t, string) result
(** Parse one complete JSON document.  [Error msg] carries a one-line
    description with the byte offset of the failure.  Trailing
    whitespace is allowed; trailing garbage is an error. *)

(** {2 Accessors}

    Total accessors for walking parsed documents; all return [None] on
    a type or key mismatch rather than raising. *)

val member : string -> t -> t option
(** Object member lookup ([None] on non-objects and missing keys). *)

val to_float : t -> float option
(** [Num] as float; [Null] maps to [nan] (the writers render non-finite
    floats as [null]). *)

val to_int : t -> int option
(** [Num] with an integral value. *)

val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
