let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geometric_mean a =
  assert (Array.length a > 0);
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0.0 a in
  exp (log_sum /. float_of_int (Array.length a))

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

(* NaN is unordered: every [<] against it is false, so a NaN in the
   first slot used to poison minimum/maximum/median/argmin — a diverged
   GRAPE run (infidelity = NaN) could be crowned "best" by hyperopt.
   Order statistics skip NaNs; an all-NaN array has no order statistic
   and raises. *)
let drop_nans ~who a =
  let b = Array.of_seq (Seq.filter (fun x -> not (Float.is_nan x)) (Array.to_seq a)) in
  if Array.length b = 0 then
    invalid_arg (Printf.sprintf "Stats.%s: all values are NaN" who);
  b

let minimum a =
  assert (Array.length a > 0);
  let b = drop_nans ~who:"minimum" a in
  Array.fold_left min b.(0) b

let maximum a =
  assert (Array.length a > 0);
  let b = drop_nans ~who:"maximum" a in
  Array.fold_left max b.(0) b

let median a =
  assert (Array.length a > 0);
  let b = drop_nans ~who:"median" a in
  Array.sort compare b;
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let argmin a =
  assert (Array.length a > 0);
  let best = ref (-1) in
  for i = 0 to Array.length a - 1 do
    if (not (Float.is_nan a.(i))) && (!best < 0 || a.(i) < a.(!best)) then
      best := i
  done;
  if !best < 0 then invalid_arg "Stats.argmin: all values are NaN";
  !best

let linspace lo hi n =
  assert (n >= 2);
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (float_of_int i *. step))

let logspace lo hi n = Array.map (fun e -> 10.0 ** e) (linspace lo hi n)
