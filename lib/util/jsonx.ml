type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

(* Recursive-descent over a string with an explicit cursor.  The input
   documents are machine-written (bench reports, run logs), so the
   parser favors clear errors over recovery. *)
type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  let n = String.length c.src in
  while
    c.pos < n
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c.pos (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "invalid literal (expected %s)" word)

let hex4 c =
  if c.pos + 4 > String.length c.src then fail c.pos "truncated \\u escape";
  let s = String.sub c.src c.pos 4 in
  match int_of_string_opt ("0x" ^ s) with
  | Some v ->
    c.pos <- c.pos + 4;
    v
  | None -> fail c.pos "invalid \\u escape"

(* Encode a code point as UTF-8; surrogate pairs are combined by the
   caller.  Lone surrogates become U+FFFD, matching lenient decoders. *)
let add_utf8 buf cp =
  let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | None -> fail c.pos "truncated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = hex4 c in
          let cp =
            if
              hi >= 0xD800 && hi <= 0xDBFF
              && c.pos + 1 < String.length c.src
              && c.src.[c.pos] = '\\'
              && c.src.[c.pos + 1] = 'u'
            then begin
              c.pos <- c.pos + 2;
              let lo = hex4 c in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
              else 0xFFFD
            end
            else hi
          in
          add_utf8 buf cp
        | _ -> fail (c.pos - 1) "invalid escape"));
      go ()
    | Some ch when Char.code ch < 0x20 -> fail c.pos "raw control character"
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let n = String.length c.src in
  let advance_while p =
    while c.pos < n && p c.src.[c.pos] do
      c.pos <- c.pos + 1
    done
  in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  advance_while (fun ch -> ch >= '0' && ch <= '9');
  if peek c = Some '.' then begin
    c.pos <- c.pos + 1;
    advance_while (fun ch -> ch >= '0' && ch <= '9')
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    c.pos <- c.pos + 1;
    (match peek c with
    | Some ('+' | '-') -> c.pos <- c.pos + 1
    | _ -> ());
    advance_while (fun ch -> ch >= '0' && ch <= '9')
  | _ -> ());
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail start "invalid number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((key, v) :: acc)
        | _ -> fail c.pos "expected ',' or '}' in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c.pos "expected ',' or ']' in array"
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character %C" ch)

(* One escaper shared by every JSON writer in the tree (Obs trace
   export, Run_log, Bench_report).  Quote, backslash and control bytes
   are escaped (short escapes where RFC 8259 has them, [\u00XX]
   otherwise); every byte >= 0x20 passes through raw.  UTF-8 input
   therefore survives byte-for-byte through {!parse} — escaping high
   bytes as Latin-1 [\u00XX] would come back as a different (doubly
   encoded) byte sequence, breaking the round-trip the hostile-name
   tests pin. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length src then Ok v
    else Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "parse error at byte %d: %s" pos msg)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function Num f -> Some f | Null -> Some Float.nan | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
