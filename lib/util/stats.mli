(** Small summary-statistics helpers used by the benchmark harness and the
    hyperparameter optimizer. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values (used for aggregate speedup
    factors, which should be averaged multiplicatively). *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for arrays of length < 2. *)

val minimum : float array -> float
val maximum : float array -> float
(** Order statistics over the non-NaN values (NaN is unordered and would
    otherwise poison the fold). Require a non-empty array; raise
    [Invalid_argument] if every value is NaN. *)

val median : float array -> float
(** Median of the non-NaN values (averages the two central elements for
    even lengths). Raises [Invalid_argument] if every value is NaN. *)

val argmin : float array -> int
(** Index of the smallest non-NaN element (first occurrence). NaN entries
    are skipped; raises [Invalid_argument] if every value is NaN. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n] evenly spaced points from [lo] to [hi]
    inclusive. Requires [n >= 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace lo hi n] is [n] points geometrically spaced from [10^lo] to
    [10^hi] inclusive. *)
