(** Dense complex vectors, the state-vector representation for the quantum
    simulator.  Same interleaved flat-Bigarray layout as {!Cmat}. *)

type t

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The flat backing store: [2 * dim] float64s, interleaved. *)

val dim : t -> int

val create : int -> t
(** Zero vector. *)

val basis : int -> int -> t
(** [basis n k] is the [n]-dimensional computational basis vector |k>. *)

val copy : t -> t

val get : t -> int -> Complex.t
val set : t -> int -> Complex.t -> unit

val of_array : Complex.t array -> t
val to_array : t -> Complex.t array

val dot : t -> t -> Complex.t
(** [dot a b] is <a|b> (conjugate-linear in the first argument). *)

val norm : t -> float

val normalize : t -> t
(** Unit-norm copy; raises [Invalid_argument] on the zero vector. *)

val scale : Complex.t -> t -> t

val add : t -> t -> t

val max_abs_diff : t -> t -> float

val probability : t -> int -> float
(** [probability v k] is |v_k|^2, the Born-rule probability of outcome [k]. *)

(** Raw interleaved storage, exposed for the simulator's in-place gate
    kernels: real part of component [k] at index [2k], imaginary at [2k+1]. *)
val unsafe_data : t -> buffer

val blit : src:t -> dst:t -> unit
(** Copy contents; dimensions must match. *)
