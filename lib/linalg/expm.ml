module BA = Bigarray.Array1

type ws = {
  n : int;
  id : Cmat.t; (* identity, built once; expm_into only reads it *)
  scaled : Cmat.t; (* A / 2^s *)
  term : Cmat.t; (* current Taylor term *)
  term' : Cmat.t; (* next Taylor term scratch *)
  acc : Cmat.t; (* Taylor partial sum *)
  sq : Cmat.t; (* squaring scratch *)
}

let make_ws n =
  { n; id = Cmat.identity n; scaled = Cmat.create n n; term = Cmat.create n n;
    term' = Cmat.create n n; acc = Cmat.create n n; sq = Cmat.create n n }

(* With the norm scaled below 1/2, a degree-13 Taylor truncation has error
   bounded by (1/2)^14 / 14! ~ 7e-16, i.e. machine precision. *)
let taylor_order = 13

(* Fused Taylor step: term = c * term'; acc += term, in one pass over the
   buffers.  Per element this performs exactly the operations of
   [Cmat.scale_ri_into ~re:c ~im:0.0] followed by
   [Cmat.axpy_ri ~re:1.0 ~im:0.0], in the same order, so the fusion is
   bit-invisible; it just halves the loop overhead of the hot Taylor
   update at GRAPE's small slice dimensions. *)
(* One complex element of the fused Taylor update at flat offset [i]. *)
let[@inline] taylor_elem (td : Cmat.buffer) (sd : Cmat.buffer)
    (ad : Cmat.buffer) c i =
  let re = BA.unsafe_get sd i and im = BA.unsafe_get sd (i + 1) in
  let sre = (c *. re) -. (0.0 *. im) in
  let sim = (c *. im) +. (0.0 *. re) in
  BA.unsafe_set td i sre;
  BA.unsafe_set td (i + 1) sim;
  BA.unsafe_set ad i (BA.unsafe_get ad i +. ((1.0 *. sre) -. (0.0 *. sim)));
  BA.unsafe_set ad (i + 1)
    (BA.unsafe_get ad (i + 1) +. ((1.0 *. sim) +. (0.0 *. sre)))

let[@inline] taylor_step ~term ~term' ~acc c =
  let td = Cmat.data term and sd = Cmat.data term' and ad = Cmat.data acc in
  let len = BA.dim td in
  (* Elements are independent, so unrolling is bit-invisible.  len = 2n^2:
     the 2x2 case (the single-qubit GRAPE slice regime, where loop overhead
     rivals the arithmetic) is fully unrolled; even dimensions take the
     two-elements-per-round loop; odd dimensions leave one trailing
     element. *)
  if len = 8 then begin
    taylor_elem td sd ad c 0;
    taylor_elem td sd ad c 2;
    taylor_elem td sd ad c 4;
    taylor_elem td sd ad c 6
  end
  else begin
    let k = ref 0 in
    while !k + 4 <= len do
      let i = !k in
      taylor_elem td sd ad c i;
      taylor_elem td sd ad c (i + 2);
      k := i + 4
    done;
    if !k < len then taylor_elem td sd ad c !k
  end

(* One complex element of the Taylor update when the product value is already
   in registers: term[i] = c * p; acc[i] += term[i].  Same expressions as
   [taylor_elem], minus the load of the product from [term']. *)
let[@inline] taylor_upd (td : Cmat.buffer) (ad : Cmat.buffer) c i pr pi =
  let sre = (c *. pr) -. (0.0 *. pi) in
  let sim = (c *. pi) +. (0.0 *. pr) in
  BA.unsafe_set td i sre;
  BA.unsafe_set td (i + 1) sim;
  BA.unsafe_set ad i (BA.unsafe_get ad i +. ((1.0 *. sre) -. (0.0 *. sim)));
  BA.unsafe_set ad (i + 1)
    (BA.unsafe_get ad (i + 1) +. ((1.0 *. sim) +. (0.0 *. sre)))

(* Fused n = 4 Taylor iteration: term = (term * scaled) / k, acc += term,
   without materialising term'.  The product transcribes [Cmat.mul4]'s
   summation chains exactly (B hoisted up front, rows of A streamed); a row
   of the product is complete before that row of [term] is overwritten, so
   eliminating the intermediate is bit-invisible.  [k] crosses the call
   boundary as an int — a float argument would be boxed per call in vanilla
   ocamlopt. *)
let taylor_mul4 (td : Cmat.buffer) (sd : Cmat.buffer) (ad : Cmat.buffer) k =
  let c = 1.0 /. float_of_int k in
  let b00r = BA.unsafe_get sd 0 and b00i = BA.unsafe_get sd 1 in
  let b01r = BA.unsafe_get sd 2 and b01i = BA.unsafe_get sd 3 in
  let b02r = BA.unsafe_get sd 4 and b02i = BA.unsafe_get sd 5 in
  let b03r = BA.unsafe_get sd 6 and b03i = BA.unsafe_get sd 7 in
  let b10r = BA.unsafe_get sd 8 and b10i = BA.unsafe_get sd 9 in
  let b11r = BA.unsafe_get sd 10 and b11i = BA.unsafe_get sd 11 in
  let b12r = BA.unsafe_get sd 12 and b12i = BA.unsafe_get sd 13 in
  let b13r = BA.unsafe_get sd 14 and b13i = BA.unsafe_get sd 15 in
  let b20r = BA.unsafe_get sd 16 and b20i = BA.unsafe_get sd 17 in
  let b21r = BA.unsafe_get sd 18 and b21i = BA.unsafe_get sd 19 in
  let b22r = BA.unsafe_get sd 20 and b22i = BA.unsafe_get sd 21 in
  let b23r = BA.unsafe_get sd 22 and b23i = BA.unsafe_get sd 23 in
  let b30r = BA.unsafe_get sd 24 and b30i = BA.unsafe_get sd 25 in
  let b31r = BA.unsafe_get sd 26 and b31i = BA.unsafe_get sd 27 in
  let b32r = BA.unsafe_get sd 28 and b32i = BA.unsafe_get sd 29 in
  let b33r = BA.unsafe_get sd 30 and b33i = BA.unsafe_get sd 31 in
  for i = 0 to 3 do
    let ai = 8 * i in
    let a0r = BA.unsafe_get td ai and a0i = BA.unsafe_get td (ai + 1) in
    let a1r = BA.unsafe_get td (ai + 2) and a1i = BA.unsafe_get td (ai + 3) in
    let a2r = BA.unsafe_get td (ai + 4) and a2i = BA.unsafe_get td (ai + 5) in
    let a3r = BA.unsafe_get td (ai + 6) and a3i = BA.unsafe_get td (ai + 7) in
    let p0r =
      (((0.0 +. ((a0r *. b00r) -. (a0i *. b00i)))
        +. ((a1r *. b10r) -. (a1i *. b10i)))
       +. ((a2r *. b20r) -. (a2i *. b20i)))
      +. ((a3r *. b30r) -. (a3i *. b30i))
    in
    let p0i =
      (((0.0 +. ((a0r *. b00i) +. (a0i *. b00r)))
        +. ((a1r *. b10i) +. (a1i *. b10r)))
       +. ((a2r *. b20i) +. (a2i *. b20r)))
      +. ((a3r *. b30i) +. (a3i *. b30r))
    in
    let p1r =
      (((0.0 +. ((a0r *. b01r) -. (a0i *. b01i)))
        +. ((a1r *. b11r) -. (a1i *. b11i)))
       +. ((a2r *. b21r) -. (a2i *. b21i)))
      +. ((a3r *. b31r) -. (a3i *. b31i))
    in
    let p1i =
      (((0.0 +. ((a0r *. b01i) +. (a0i *. b01r)))
        +. ((a1r *. b11i) +. (a1i *. b11r)))
       +. ((a2r *. b21i) +. (a2i *. b21r)))
      +. ((a3r *. b31i) +. (a3i *. b31r))
    in
    let p2r =
      (((0.0 +. ((a0r *. b02r) -. (a0i *. b02i)))
        +. ((a1r *. b12r) -. (a1i *. b12i)))
       +. ((a2r *. b22r) -. (a2i *. b22i)))
      +. ((a3r *. b32r) -. (a3i *. b32i))
    in
    let p2i =
      (((0.0 +. ((a0r *. b02i) +. (a0i *. b02r)))
        +. ((a1r *. b12i) +. (a1i *. b12r)))
       +. ((a2r *. b22i) +. (a2i *. b22r)))
      +. ((a3r *. b32i) +. (a3i *. b32r))
    in
    let p3r =
      (((0.0 +. ((a0r *. b03r) -. (a0i *. b03i)))
        +. ((a1r *. b13r) -. (a1i *. b13i)))
       +. ((a2r *. b23r) -. (a2i *. b23i)))
      +. ((a3r *. b33r) -. (a3i *. b33i))
    in
    let p3i =
      (((0.0 +. ((a0r *. b03i) +. (a0i *. b03r)))
        +. ((a1r *. b13i) +. (a1i *. b13r)))
       +. ((a2r *. b23i) +. (a2i *. b23r)))
      +. ((a3r *. b33i) +. (a3i *. b33r))
    in
    taylor_upd td ad c ai p0r p0i;
    taylor_upd td ad c (ai + 2) p1r p1i;
    taylor_upd td ad c (ai + 4) p2r p2i;
    taylor_upd td ad c (ai + 6) p3r p3i
  done

(* Fully specialized n = 2 exponential: the single-qubit GRAPE slice regime,
   where buffer traffic and loop overhead rival the arithmetic.  The whole
   Taylor/squaring state lives in unboxed locals; every expression
   transcribes the generic path operation for operation ([mul2]'s summation
   chains, [taylor_elem]'s fused update, [Cmat.one_norm]'s column order), so
   the result is bit-identical to the generic code. *)
let expm2_into ~dst a =
  let ad = Cmat.data a in
  let x0r = BA.unsafe_get ad 0 and x0i = BA.unsafe_get ad 1 in
  let x1r = BA.unsafe_get ad 2 and x1i = BA.unsafe_get ad 3 in
  let x2r = BA.unsafe_get ad 4 and x2i = BA.unsafe_get ad 5 in
  let x3r = BA.unsafe_get ad 6 and x3i = BA.unsafe_get ad 7 in
  (* one_norm: column 0 is {x0, x2}, column 1 is {x1, x3}, rows ascending. *)
  let c0 =
    (0.0 +. sqrt ((x0r *. x0r) +. (x0i *. x0i)))
    +. sqrt ((x2r *. x2r) +. (x2i *. x2i))
  in
  let c1 =
    (0.0 +. sqrt ((x1r *. x1r) +. (x1i *. x1i)))
    +. sqrt ((x3r *. x3r) +. (x3i *. x3i))
  in
  let best = if c0 > 0.0 then c0 else 0.0 in
  let norm = if c1 > best then c1 else best in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (ceil (log (norm /. 0.5) /. log 2.0))
  in
  let inv = Float.ldexp 1.0 (-s) in
  (* scaled = inv * a (scale_ri_into with re = inv, im = 0). *)
  let y0r = (inv *. x0r) -. (0.0 *. x0i) and y0i = (inv *. x0i) +. (0.0 *. x0r) in
  let y1r = (inv *. x1r) -. (0.0 *. x1i) and y1i = (inv *. x1i) +. (0.0 *. x1r) in
  let y2r = (inv *. x2r) -. (0.0 *. x2i) and y2i = (inv *. x2i) +. (0.0 *. x2r) in
  let y3r = (inv *. x3r) -. (0.0 *. x3i) and y3i = (inv *. x3i) +. (0.0 *. x3r) in
  (* term = I, acc = I. *)
  let t0r = ref 1.0 and t0i = ref 0.0 and t1r = ref 0.0 and t1i = ref 0.0 in
  let t2r = ref 0.0 and t2i = ref 0.0 and t3r = ref 1.0 and t3i = ref 0.0 in
  let q0r = ref 1.0 and q0i = ref 0.0 and q1r = ref 0.0 and q1i = ref 0.0 in
  let q2r = ref 0.0 and q2i = ref 0.0 and q3r = ref 1.0 and q3i = ref 0.0 in
  for k = 1 to taylor_order do
    let c = 1.0 /. float_of_int k in
    (* term' = term * scaled: mul2 with b00=y0, b01=y1, b10=y2, b11=y3. *)
    let p0r =
      (0.0 +. ((!t0r *. y0r) -. (!t0i *. y0i)))
      +. ((!t1r *. y2r) -. (!t1i *. y2i))
    in
    let p0i =
      (0.0 +. ((!t0r *. y0i) +. (!t0i *. y0r)))
      +. ((!t1r *. y2i) +. (!t1i *. y2r))
    in
    let p1r =
      (0.0 +. ((!t0r *. y1r) -. (!t0i *. y1i)))
      +. ((!t1r *. y3r) -. (!t1i *. y3i))
    in
    let p1i =
      (0.0 +. ((!t0r *. y1i) +. (!t0i *. y1r)))
      +. ((!t1r *. y3i) +. (!t1i *. y3r))
    in
    let p2r =
      (0.0 +. ((!t2r *. y0r) -. (!t2i *. y0i)))
      +. ((!t3r *. y2r) -. (!t3i *. y2i))
    in
    let p2i =
      (0.0 +. ((!t2r *. y0i) +. (!t2i *. y0r)))
      +. ((!t3r *. y2i) +. (!t3i *. y2r))
    in
    let p3r =
      (0.0 +. ((!t2r *. y1r) -. (!t2i *. y1i)))
      +. ((!t3r *. y3r) -. (!t3i *. y3i))
    in
    let p3i =
      (0.0 +. ((!t2r *. y1i) +. (!t2i *. y1r)))
      +. ((!t3r *. y3i) +. (!t3i *. y3r))
    in
    (* term = c * term'; acc += term (taylor_elem, element for element). *)
    let s0r = (c *. p0r) -. (0.0 *. p0i) and s0i = (c *. p0i) +. (0.0 *. p0r) in
    t0r := s0r;
    t0i := s0i;
    q0r := !q0r +. ((1.0 *. s0r) -. (0.0 *. s0i));
    q0i := !q0i +. ((1.0 *. s0i) +. (0.0 *. s0r));
    let s1r = (c *. p1r) -. (0.0 *. p1i) and s1i = (c *. p1i) +. (0.0 *. p1r) in
    t1r := s1r;
    t1i := s1i;
    q1r := !q1r +. ((1.0 *. s1r) -. (0.0 *. s1i));
    q1i := !q1i +. ((1.0 *. s1i) +. (0.0 *. s1r));
    let s2r = (c *. p2r) -. (0.0 *. p2i) and s2i = (c *. p2i) +. (0.0 *. p2r) in
    t2r := s2r;
    t2i := s2i;
    q2r := !q2r +. ((1.0 *. s2r) -. (0.0 *. s2i));
    q2i := !q2i +. ((1.0 *. s2i) +. (0.0 *. s2r));
    let s3r = (c *. p3r) -. (0.0 *. p3i) and s3i = (c *. p3i) +. (0.0 *. p3r) in
    t3r := s3r;
    t3i := s3i;
    q3r := !q3r +. ((1.0 *. s3r) -. (0.0 *. s3i));
    q3i := !q3i +. ((1.0 *. s3i) +. (0.0 *. s3r))
  done;
  (* Squaring: acc = acc * acc, s times (mul2 with a = b = acc). *)
  for _ = 1 to s do
    let b0r = !q0r and b0i = !q0i and b1r = !q1r and b1i = !q1i in
    let b2r = !q2r and b2i = !q2i and b3r = !q3r and b3i = !q3i in
    let p0r =
      (0.0 +. ((b0r *. b0r) -. (b0i *. b0i))) +. ((b1r *. b2r) -. (b1i *. b2i))
    in
    let p0i =
      (0.0 +. ((b0r *. b0i) +. (b0i *. b0r))) +. ((b1r *. b2i) +. (b1i *. b2r))
    in
    let p1r =
      (0.0 +. ((b0r *. b1r) -. (b0i *. b1i))) +. ((b1r *. b3r) -. (b1i *. b3i))
    in
    let p1i =
      (0.0 +. ((b0r *. b1i) +. (b0i *. b1r))) +. ((b1r *. b3i) +. (b1i *. b3r))
    in
    let p2r =
      (0.0 +. ((b2r *. b0r) -. (b2i *. b0i))) +. ((b3r *. b2r) -. (b3i *. b2i))
    in
    let p2i =
      (0.0 +. ((b2r *. b0i) +. (b2i *. b0r))) +. ((b3r *. b2i) +. (b3i *. b2r))
    in
    let p3r =
      (0.0 +. ((b2r *. b1r) -. (b2i *. b1i))) +. ((b3r *. b3r) -. (b3i *. b3i))
    in
    let p3i =
      (0.0 +. ((b2r *. b1i) +. (b2i *. b1r))) +. ((b3r *. b3i) +. (b3i *. b3r))
    in
    q0r := p0r;
    q0i := p0i;
    q1r := p1r;
    q1i := p1i;
    q2r := p2r;
    q2i := p2i;
    q3r := p3r;
    q3i := p3i
  done;
  let dd = Cmat.data dst in
  BA.unsafe_set dd 0 !q0r;
  BA.unsafe_set dd 1 !q0i;
  BA.unsafe_set dd 2 !q1r;
  BA.unsafe_set dd 3 !q1i;
  BA.unsafe_set dd 4 !q2r;
  BA.unsafe_set dd 5 !q2i;
  BA.unsafe_set dd 6 !q3r;
  BA.unsafe_set dd 7 !q3i

let rec expm_into ws ~dst a =
  assert (Cmat.rows a = ws.n && Cmat.cols a = ws.n);
  assert (Cmat.rows dst = ws.n && Cmat.cols dst = ws.n);
  if ws.n = 2 then expm2_into ~dst a
  else expm_generic_into ws ~dst a

and expm_generic_into ws ~dst a =
  let ad = Cmat.data a in
  (* [Cmat.one_norm], written out over the flat buffer so the value never
     crosses a function boundary (a float return is boxed in vanilla
     ocamlopt; expm runs once per GRAPE slice per iteration and those boxes
     are pure minor-GC pressure).  Same accumulation order. *)
  let norm =
    let n = ws.n in
    let best = ref 0.0 in
    for j = 0 to n - 1 do
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        let k = 2 * ((i * n) + j) in
        let re = BA.unsafe_get ad k and im = BA.unsafe_get ad (k + 1) in
        s := !s +. sqrt ((re *. re) +. (im *. im))
      done;
      if !s > !best then best := !s
    done;
    !best
  in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (ceil (log (norm /. 0.5) /. log 2.0))
  in
  let inv = Float.ldexp 1.0 (-s) in
  (* scaled = inv * a, transcribing [Cmat.scale_ri_into ~re:inv ~im:0.0]. *)
  (let sd = Cmat.data ws.scaled in
   let len = BA.dim ad in
   let k = ref 0 in
   while !k < len do
     let i = !k in
     let re = BA.unsafe_get ad i and im = BA.unsafe_get ad (i + 1) in
     BA.unsafe_set sd i ((inv *. re) -. (0.0 *. im));
     BA.unsafe_set sd (i + 1) ((inv *. im) +. (0.0 *. re));
     k := i + 2
   done);
  (* Taylor: acc = I + B + B^2/2! + ... *)
  Cmat.blit ~src:ws.id ~dst:ws.acc;
  Cmat.blit ~src:ws.id ~dst:ws.term;
  (* Workspace matrices are all n x n and pairwise distinct, so the
     unchecked matmul entry is safe here and in the squaring loop. *)
  if ws.n = 4 then begin
    let td = Cmat.data ws.term
    and sd = Cmat.data ws.scaled
    and acd = Cmat.data ws.acc in
    for k = 1 to taylor_order do
      taylor_mul4 td sd acd k
    done
  end
  else
    for k = 1 to taylor_order do
      Cmat.mul_into_unchecked ~dst:ws.term' ws.term ws.scaled;
      taylor_step ~term:ws.term ~term':ws.term' ~acc:ws.acc
        (1.0 /. float_of_int k)
    done;
  (* Undo the scaling: square s times, ping-ponging between [acc] and [sq]
     instead of copying after every squaring. *)
  let src = ref ws.acc and tmp = ref ws.sq in
  for _ = 1 to s do
    Cmat.mul_into_unchecked ~dst:!tmp !src !src;
    let t = !src in
    src := !tmp;
    tmp := t
  done;
  Cmat.blit ~src:!src ~dst:dst

let expm a =
  let n = Cmat.rows a in
  assert (n = Cmat.cols a);
  let ws = make_ws n in
  let dst = Cmat.create n n in
  expm_into ws ~dst a;
  dst

let expm_i_hermitian ?(t = 1.0) h =
  expm (Cmat.scale { Complex.re = 0.0; im = -.t } h)
