(* Cyclic Jacobi for Hermitian matrices.  Each rotation zeroes one
   off-diagonal pair (p, q) by conjugating with the unitary

       J = I  with  J_pp = c,  J_pq = -conj(s),  J_qp = s,  J_qq = c

   where s carries the phase of a_pq.  Off-diagonal mass strictly
   decreases, giving the usual quadratic convergence over sweeps. *)

module BA = Bigarray.Array1

(* Flat-buffer core of one Jacobi rotation: mix the amplitude pair (x, y) at
   flat offsets [kx]/[ky] with

     x' = c*x + w*y        y' = c*y - u*x

   for real [c] and complex [w]/[u].  The formulas transcribe the previous
   Complex.add/mul/sub implementation operation for operation (including the
   conjugation sign being negated once, outside, exactly as [Complex.conj]
   did), so results are bit-identical to the boxed version. *)
let[@inline] mix (d : Cmat.buffer) kx ky c wre wim ure uim =
  let xre = BA.unsafe_get d kx and xim = BA.unsafe_get d (kx + 1) in
  let yre = BA.unsafe_get d ky and yim = BA.unsafe_get d (ky + 1) in
  BA.unsafe_set d kx ((c *. xre) +. ((wre *. yre) -. (wim *. yim)));
  BA.unsafe_set d (kx + 1) ((c *. xim) +. ((wre *. yim) +. (wim *. yre)));
  BA.unsafe_set d ky ((c *. yre) -. ((ure *. xre) -. (uim *. xim)));
  BA.unsafe_set d (ky + 1) ((c *. yim) -. ((ure *. xim) +. (uim *. xre)))

let rotate a v n p q =
  let apq = Cmat.get a p q in
  let norm_apq = Complex.norm apq in
  if norm_apq > 0.0 then begin
    let app = (Cmat.get a p p).re and aqq = (Cmat.get a q q).re in
    (* Angle of the real 2x2 problem after factoring out the phase. *)
    (* Zeroing (J† A J)_pq requires tan(2 theta) = 2|a_pq| / (a_pp - a_qq). *)
    let theta = 0.5 *. atan2 (2.0 *. norm_apq) (app -. aqq) in
    let c = cos theta and s_mag = sin theta in
    (* Phase of a_pq distributes onto the rotation. *)
    let phase = Complex.div apq { Complex.re = norm_apq; im = 0.0 } in
    let s = Complex.mul { Complex.re = s_mag; im = 0.0 } phase in
    let cre = s.re and cim = -.s.im in
    (* conj s *)
    let ad = Cmat.data a and vd = Cmat.data v in
    (* Columns p/q of [a] (Hermitian, rows mirrored below):
       a_kp' = c*a_kp + conj(s)*a_kq,  a_kq' = c*a_kq - s*a_kp. *)
    for k = 0 to n - 1 do
      let base = 2 * k * n in
      mix ad (base + (2 * p)) (base + (2 * q)) c cre cim s.re s.im
    done;
    (* Rows p/q: a_pk' = c*a_pk + s*a_qk,  a_qk' = c*a_qk - conj(s)*a_pk. *)
    let rp = 2 * p * n and rq = 2 * q * n in
    for k = 0 to n - 1 do
      mix ad (rp + (2 * k)) (rq + (2 * k)) c s.re s.im cre cim
    done;
    (* Eigenvector columns accumulate exactly like the columns of [a]. *)
    for k = 0 to n - 1 do
      let base = 2 * k * n in
      mix vd (base + (2 * p)) (base + (2 * q)) c cre cim s.re s.im
    done
  end

let off_diagonal_norm a n =
  let s = ref 0.0 in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      s := !s +. Complex.norm2 (Cmat.get a p q)
    done
  done;
  sqrt !s

let hermitian ?(tol = 1e-12) ?(max_sweeps = 50) input =
  let n = Cmat.rows input in
  if n <> Cmat.cols input then invalid_arg "Eigen.hermitian: square matrix required";
  (* Work on a symmetrized copy: the upper triangle is trusted, the lower
     mirrored, keeping the iteration exactly Hermitian. *)
  let a = Cmat.create n n in
  for p = 0 to n - 1 do
    Cmat.set a p p { Complex.re = (Cmat.get input p p).re; im = 0.0 };
    for q = p + 1 to n - 1 do
      let z = Cmat.get input p q in
      Cmat.set a p q z;
      Cmat.set a q p (Complex.conj z)
    done
  done;
  let v = Cmat.identity n in
  let sweeps = ref 0 in
  while off_diagonal_norm a n > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        rotate a v n p q
      done
    done
  done;
  (* Sort ascending, permuting eigenvector columns along. *)
  let order = Array.init n Fun.id in
  let eigenvalue k = (Cmat.get a k k).re in
  Array.sort (fun i j -> compare (eigenvalue i) (eigenvalue j)) order;
  let values = Array.map eigenvalue order in
  let vectors = Cmat.create n n in
  Array.iteri
    (fun dst src ->
      for k = 0 to n - 1 do
        Cmat.set vectors k dst (Cmat.get v k src)
      done)
    order;
  (values, vectors)

let smallest_eigenvalue a =
  let values, _ = hermitian a in
  values.(0)
