(** Dense complex matrices over a flat [Bigarray.Array1] of float64s.

    Storage is row-major with interleaved real/imaginary parts (entry (i, j)
    at flat indices [2*(i*cols + j)] and the one after), which keeps the
    GRAPE inner loops (matrix products and trace inner products on
    2^n-dimensional unitaries) allocation-free and cache-friendly.  The
    Bigarray backing stores elements unboxed and the hot kernels index it
    with [unsafe_get]/[unsafe_set], so there are no bounds checks and no
    per-element boxing on the fast path.

    {b Summation-order contract.}  Every kernel that reduces floats —
    [mul_into], [trace_of_product], [inner], [trace], norms — accumulates in
    a fixed ascending-index order, and the blocked matrix product tiles only
    the output (i, j) space while the inner k loop always runs its full
    range sequentially.  Results are therefore bit-for-bit reproducible
    across runs, worker counts and tile sizes; the workers:1 ≡ workers:4
    determinism suite relies on this. *)

type t

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The flat backing store: [2 * rows * cols] float64s, interleaved. *)

val rows : t -> int
val cols : t -> int

val create : int -> int -> t
(** [create r c] is the [r] x [c] zero matrix. *)

val data : t -> buffer
(** The raw interleaved buffer, for in-library kernels that need flat
    indexed access (e.g. the Jacobi eigensolver).  Mutating it mutates the
    matrix. *)

val identity : int -> t

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Copy contents; dimensions must match. *)

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val of_array : Complex.t array array -> t
(** Build from a rectangular array of rows. *)

val to_array : t -> Complex.t array array

val dims_equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b] stores [a + b] in [dst]; aliasing with [a]/[b] is
    allowed. *)

val scale : Complex.t -> t -> t

val scale_into : dst:t -> Complex.t -> t -> unit
(** [scale_into ~dst z a] stores [z * a] in [dst]; [dst == a] is allowed. *)

val scale_ri_into : dst:t -> re:float -> im:float -> t -> unit
(** [scale_into] with the scalar passed as two floats, so hot callers avoid
    allocating a [Complex.t] record per call.  Same arithmetic, same
    aliasing rule. *)

val axpy : alpha:Complex.t -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] accumulates [y <- y + alpha * x]. *)

val axpy_ri : re:float -> im:float -> x:t -> y:t -> unit
(** [axpy] with the scalar passed as two floats (no [Complex.t] record
    allocation at the call site).  Same arithmetic. *)

val mul : t -> t -> t
(** Matrix product (allocates the result). *)

val mul_into : dst:t -> t -> t -> unit
(** [mul_into ~dst a b] stores [a * b] in [dst].  [dst] must not alias [a] or
    [b]. *)

val trace_of_product_into : dst:float array -> t -> t -> unit
(** [trace_of_product] without the result record: writes the real part to
    [dst.(0)] and the imaginary part to [dst.(1)] ([dst] needs length >= 2).
    Allocation-free; same accumulation order. *)

val mul_into_unchecked : dst:t -> t -> t -> unit
(** [mul_into] without the shape/aliasing asserts, for hot loops whose
    operands are workspace matrices of known-compatible shape (e.g. the
    Taylor/squaring loops in {!Expm}).  Violating the [mul_into]
    preconditions here silently corrupts [dst] — prefer [mul_into] anywhere
    the shapes are not locally obvious.  Bit-identical results. *)

val dagger : t -> t
(** Conjugate transpose. *)

val dagger_into : dst:t -> t -> unit
(** [dst] must not alias the argument. *)

val transpose : t -> t

val conj : t -> t

val kron : t -> t -> t
(** Kronecker (tensor) product. *)

val trace : t -> Complex.t

val trace_of_product : t -> t -> Complex.t
(** [trace_of_product a b] is Tr(a b) computed entrywise in O(n^2), without
    forming the product. *)

val inner : t -> t -> Complex.t
(** [inner a b] is the Hilbert–Schmidt inner product Tr(a† b), computed
    without forming a†. *)

val frobenius_norm : t -> float

val one_norm : t -> float
(** Maximum absolute column sum; used to pick the expm scaling power. *)

val max_abs_diff : t -> t -> float
(** Entrywise max |a_ij - b_ij|; the metric used in approximate-equality
    tests. *)

val is_unitary : ?tol:float -> t -> bool
(** [is_unitary m] checks ||m† m - I||_max <= tol (default 1e-9). *)

val apply : t -> Cvec.t -> Cvec.t
(** Matrix-vector product. *)

val random_hermitian : Pqc_util.Rng.t -> int -> t
(** Random Hermitian matrix with independent Gaussian entries; handy for
    property tests of the exponential. *)

val pp : Format.formatter -> t -> unit
