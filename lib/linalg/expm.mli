(** Matrix exponential by scaling-and-squaring with a Taylor kernel.

    GRAPE propagates a product of slice exponentials exp(-i H_k dt).  The
    slice generators have small norm (dt is sub-nanosecond, amplitudes are
    bounded by the Appendix-A drive limits), so a modest-order Taylor series
    after norm scaling is both fast and accurate to near machine precision.

    A reusable workspace keeps the inner GRAPE loop allocation-free. *)

type ws
(** Scratch space for exponentials of [n] x [n] matrices. *)

val make_ws : int -> ws

val expm_into : ws -> dst:Cmat.t -> Cmat.t -> unit
(** [expm_into ws ~dst a] stores exp(a) in [dst].  [dst] must not alias [a].
    Dimensions must match the workspace.  Performs no per-call heap
    allocation: all scratch (including the identity seed of the Taylor
    series) lives in [ws]. *)

val expm : Cmat.t -> Cmat.t
(** One-shot exponential (allocates a workspace). *)

val expm_i_hermitian : ?t:float -> Cmat.t -> Cmat.t
(** [expm_i_hermitian ~t h] is exp(-i t h) for Hermitian [h] ([t] defaults to
    1), the time-evolution operator; the result is unitary up to numerical
    error. *)
