module BA = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) BA.t

type t = { r : int; c : int; d : buffer }
(* Row-major, interleaved: entry (i, j) has real part at d.{2*(i*c + j)} and
   imaginary part at the following index.  The backing store is a flat
   [Bigarray.Array1] of float64s: elements are unboxed, reads/writes in the
   kernels below use [unsafe_get]/[unsafe_set] (no bounds checks), and the
   buffer is shareable with C-layout consumers. *)

let rows m = m.r
let cols m = m.c

let ba_zeroed n =
  let d = BA.create Bigarray.Float64 Bigarray.C_layout n in
  BA.fill d 0.0;
  d

let create r c = { r; c; d = ba_zeroed (2 * r * c) }
let data m = m.d

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    BA.unsafe_set m.d (2 * ((i * n) + i)) 1.0
  done;
  m

let copy m =
  let d = BA.create Bigarray.Float64 Bigarray.C_layout (BA.dim m.d) in
  BA.blit m.d d;
  { m with d }

let dims_equal a b = a.r = b.r && a.c = b.c

let blit ~src ~dst =
  assert (dims_equal src dst);
  BA.blit src.d dst.d

let get m i j =
  let k = 2 * ((i * m.c) + j) in
  { Complex.re = BA.get m.d k; im = BA.get m.d (k + 1) }

let set m i j (z : Complex.t) =
  let k = 2 * ((i * m.c) + j) in
  BA.set m.d k z.re;
  BA.set m.d (k + 1) z.im

let of_array a =
  let r = Array.length a in
  assert (r > 0);
  let c = Array.length a.(0) in
  let m = create r c in
  for i = 0 to r - 1 do
    assert (Array.length a.(i) = c);
    for j = 0 to c - 1 do
      set m i j a.(i).(j)
    done
  done;
  m

let to_array m = Array.init m.r (fun i -> Array.init m.c (fun j -> get m i j))

let add_into ~dst a b =
  assert (dims_equal a b && dims_equal a dst);
  for k = 0 to BA.dim a.d - 1 do
    BA.unsafe_set dst.d k (BA.unsafe_get a.d k +. BA.unsafe_get b.d k)
  done

let add a b =
  let dst = create a.r a.c in
  add_into ~dst a b;
  dst

let sub a b =
  assert (dims_equal a b);
  let dst = create a.r a.c in
  for k = 0 to BA.dim a.d - 1 do
    BA.unsafe_set dst.d k (BA.unsafe_get a.d k -. BA.unsafe_get b.d k)
  done;
  dst

let scale_ri_into ~dst ~re:zre ~im:zim a =
  assert (dims_equal a dst);
  for k = 0 to (BA.dim a.d / 2) - 1 do
    let re = BA.unsafe_get a.d (2 * k) and im = BA.unsafe_get a.d ((2 * k) + 1) in
    BA.unsafe_set dst.d (2 * k) ((zre *. re) -. (zim *. im));
    BA.unsafe_set dst.d ((2 * k) + 1) ((zre *. im) +. (zim *. re))
  done

let scale_into ~dst (z : Complex.t) a = scale_ri_into ~dst ~re:z.re ~im:z.im a

let scale z a =
  let dst = create a.r a.c in
  scale_into ~dst z a;
  dst

let axpy_ri ~re:zre ~im:zim ~x ~y =
  assert (dims_equal x y);
  for k = 0 to (BA.dim x.d / 2) - 1 do
    let re = BA.unsafe_get x.d (2 * k) and im = BA.unsafe_get x.d ((2 * k) + 1) in
    BA.unsafe_set y.d (2 * k)
      (BA.unsafe_get y.d (2 * k) +. ((zre *. re) -. (zim *. im)));
    BA.unsafe_set y.d ((2 * k) + 1)
      (BA.unsafe_get y.d ((2 * k) + 1) +. ((zre *. im) +. (zim *. re)))
  done

let axpy ~alpha:(z : Complex.t) ~x ~y = axpy_ri ~re:z.re ~im:z.im ~x ~y

(* Tile edge for the blocked product, in elements.  48 columns of interleaved
   float64 pairs are 768 bytes, so an a-row segment plus the b-tile working
   set stays inside L1 even at the top of the tile range. *)
let mul_block = 48

(* One output tile: rows i_lo..i_hi x cols j_lo..j_hi of dst = a * b.  The k
   loop always runs its full range in ascending order, so every dst element
   accumulates in exactly the same float order as the naive triple loop —
   tiling changes which element is computed when, never the sum inside one
   element.  That is the summation-order contract the bit-for-bit
   determinism suite depends on. *)
let mul_tile (ad : buffer) (bd : buffer) (dd : buffer) p q i_lo i_hi j_lo j_hi =
  for i = i_lo to i_hi do
    let ai = 2 * i * p and di = 2 * i * q in
    for j = j_lo to j_hi do
      let sre = ref 0.0 and sim = ref 0.0 in
      let kb = ref (2 * j) in
      for k = 0 to p - 1 do
        let ka = ai + (2 * k) in
        let are = BA.unsafe_get ad ka and aim = BA.unsafe_get ad (ka + 1) in
        let bre = BA.unsafe_get bd !kb and bim = BA.unsafe_get bd (!kb + 1) in
        sre := !sre +. ((are *. bre) -. (aim *. bim));
        sim := !sim +. ((are *. bim) +. (aim *. bre));
        kb := !kb + (2 * q)
      done;
      let kd = di + (2 * j) in
      BA.unsafe_set dd kd !sre;
      BA.unsafe_set dd (kd + 1) !sim
    done
  done

(* Fully unrolled 2x2 product: the single-qubit (and qutrit-free) GRAPE
   block size.  Sums carry the same leading [0.0 +. t0] and ascending-k adds
   as the generic loop, so results are bit-identical. *)
let mul2 (ad : buffer) (bd : buffer) (dd : buffer) =
  let b00r = BA.unsafe_get bd 0 and b00i = BA.unsafe_get bd 1 in
  let b01r = BA.unsafe_get bd 2 and b01i = BA.unsafe_get bd 3 in
  let b10r = BA.unsafe_get bd 4 and b10i = BA.unsafe_get bd 5 in
  let b11r = BA.unsafe_get bd 6 and b11i = BA.unsafe_get bd 7 in
  for i = 0 to 1 do
    let ai = 4 * i in
    let a0r = BA.unsafe_get ad ai and a0i = BA.unsafe_get ad (ai + 1) in
    let a1r = BA.unsafe_get ad (ai + 2) and a1i = BA.unsafe_get ad (ai + 3) in
    BA.unsafe_set dd ai
      ((0.0 +. ((a0r *. b00r) -. (a0i *. b00i))) +. ((a1r *. b10r) -. (a1i *. b10i)));
    BA.unsafe_set dd (ai + 1)
      ((0.0 +. ((a0r *. b00i) +. (a0i *. b00r))) +. ((a1r *. b10i) +. (a1i *. b10r)));
    BA.unsafe_set dd (ai + 2)
      ((0.0 +. ((a0r *. b01r) -. (a0i *. b01i))) +. ((a1r *. b11r) -. (a1i *. b11i)));
    BA.unsafe_set dd (ai + 3)
      ((0.0 +. ((a0r *. b01i) +. (a0i *. b01r))) +. ((a1r *. b11i) +. (a1i *. b11r)))
  done

(* Fully unrolled 4x4 product (the two-qubit gmon block size, the hot case
   of the bench workloads): B is hoisted into locals once, each output sums
   in the exact ascending-k order of the generic loop. *)
let mul4 (ad : buffer) (bd : buffer) (dd : buffer) =
  let b00r = BA.unsafe_get bd 0 and b00i = BA.unsafe_get bd 1 in
  let b01r = BA.unsafe_get bd 2 and b01i = BA.unsafe_get bd 3 in
  let b02r = BA.unsafe_get bd 4 and b02i = BA.unsafe_get bd 5 in
  let b03r = BA.unsafe_get bd 6 and b03i = BA.unsafe_get bd 7 in
  let b10r = BA.unsafe_get bd 8 and b10i = BA.unsafe_get bd 9 in
  let b11r = BA.unsafe_get bd 10 and b11i = BA.unsafe_get bd 11 in
  let b12r = BA.unsafe_get bd 12 and b12i = BA.unsafe_get bd 13 in
  let b13r = BA.unsafe_get bd 14 and b13i = BA.unsafe_get bd 15 in
  let b20r = BA.unsafe_get bd 16 and b20i = BA.unsafe_get bd 17 in
  let b21r = BA.unsafe_get bd 18 and b21i = BA.unsafe_get bd 19 in
  let b22r = BA.unsafe_get bd 20 and b22i = BA.unsafe_get bd 21 in
  let b23r = BA.unsafe_get bd 22 and b23i = BA.unsafe_get bd 23 in
  let b30r = BA.unsafe_get bd 24 and b30i = BA.unsafe_get bd 25 in
  let b31r = BA.unsafe_get bd 26 and b31i = BA.unsafe_get bd 27 in
  let b32r = BA.unsafe_get bd 28 and b32i = BA.unsafe_get bd 29 in
  let b33r = BA.unsafe_get bd 30 and b33i = BA.unsafe_get bd 31 in
  for i = 0 to 3 do
    let ai = 8 * i in
    let a0r = BA.unsafe_get ad ai and a0i = BA.unsafe_get ad (ai + 1) in
    let a1r = BA.unsafe_get ad (ai + 2) and a1i = BA.unsafe_get ad (ai + 3) in
    let a2r = BA.unsafe_get ad (ai + 4) and a2i = BA.unsafe_get ad (ai + 5) in
    let a3r = BA.unsafe_get ad (ai + 6) and a3i = BA.unsafe_get ad (ai + 7) in
    BA.unsafe_set dd ai
      ((((0.0 +. ((a0r *. b00r) -. (a0i *. b00i)))
         +. ((a1r *. b10r) -. (a1i *. b10i)))
        +. ((a2r *. b20r) -. (a2i *. b20i)))
      +. ((a3r *. b30r) -. (a3i *. b30i)));
    BA.unsafe_set dd (ai + 1)
      ((((0.0 +. ((a0r *. b00i) +. (a0i *. b00r)))
         +. ((a1r *. b10i) +. (a1i *. b10r)))
        +. ((a2r *. b20i) +. (a2i *. b20r)))
      +. ((a3r *. b30i) +. (a3i *. b30r)));
    BA.unsafe_set dd (ai + 2)
      ((((0.0 +. ((a0r *. b01r) -. (a0i *. b01i)))
         +. ((a1r *. b11r) -. (a1i *. b11i)))
        +. ((a2r *. b21r) -. (a2i *. b21i)))
      +. ((a3r *. b31r) -. (a3i *. b31i)));
    BA.unsafe_set dd (ai + 3)
      ((((0.0 +. ((a0r *. b01i) +. (a0i *. b01r)))
         +. ((a1r *. b11i) +. (a1i *. b11r)))
        +. ((a2r *. b21i) +. (a2i *. b21r)))
      +. ((a3r *. b31i) +. (a3i *. b31r)));
    BA.unsafe_set dd (ai + 4)
      ((((0.0 +. ((a0r *. b02r) -. (a0i *. b02i)))
         +. ((a1r *. b12r) -. (a1i *. b12i)))
        +. ((a2r *. b22r) -. (a2i *. b22i)))
      +. ((a3r *. b32r) -. (a3i *. b32i)));
    BA.unsafe_set dd (ai + 5)
      ((((0.0 +. ((a0r *. b02i) +. (a0i *. b02r)))
         +. ((a1r *. b12i) +. (a1i *. b12r)))
        +. ((a2r *. b22i) +. (a2i *. b22r)))
      +. ((a3r *. b32i) +. (a3i *. b32r)));
    BA.unsafe_set dd (ai + 6)
      ((((0.0 +. ((a0r *. b03r) -. (a0i *. b03i)))
         +. ((a1r *. b13r) -. (a1i *. b13i)))
        +. ((a2r *. b23r) -. (a2i *. b23i)))
      +. ((a3r *. b33r) -. (a3i *. b33i)));
    BA.unsafe_set dd (ai + 7)
      ((((0.0 +. ((a0r *. b03i) +. (a0i *. b03r)))
         +. ((a1r *. b13i) +. (a1i *. b13r)))
        +. ((a2r *. b23i) +. (a2i *. b23r)))
      +. ((a3r *. b33i) +. (a3i *. b33r)))
  done

(* Precondition-free dispatch used by [mul_into] and by shape-safe internal
   hot loops ([mul_into_unchecked]).  Callers guarantee compatible shapes
   and no aliasing; violating either silently corrupts [dst]. *)
let mul_dispatch ~dst a b =
  let n = a.r and p = a.c and q = b.c in
  let ad = a.d and bd = b.d and dd = dst.d in
  if p = 4 && n = 4 && q = 4 then mul4 ad bd dd
  else if p = 2 && n = 2 && q = 2 then mul2 ad bd dd
  else if n <= mul_block && q <= mul_block then
    (* Small matrices (the GRAPE slice regime, dim <= 81) are a single tile:
       skip the blocking bookkeeping entirely. *)
    mul_tile ad bd dd p q 0 (n - 1) 0 (q - 1)
  else begin
    (* Cache-blocked over the i/j output tiles only (k never splits). *)
    let ii = ref 0 in
    while !ii < n do
      let i_hi = min n (!ii + mul_block) - 1 in
      let jj = ref 0 in
      while !jj < q do
        let j_hi = min q (!jj + mul_block) - 1 in
        mul_tile ad bd dd p q !ii i_hi !jj j_hi;
        jj := !jj + mul_block
      done;
      ii := !ii + mul_block
    done
  end

let mul_into_unchecked = mul_dispatch

let mul_into ~dst a b =
  assert (a.c = b.r && dst.r = a.r && dst.c = b.c);
  assert (dst != a && dst != b);
  mul_dispatch ~dst a b

let mul a b =
  let dst = create a.r b.c in
  mul_into ~dst a b;
  dst

let dagger_into ~dst a =
  assert (dst.r = a.c && dst.c = a.r && dst != a);
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      let ka = 2 * ((i * a.c) + j) and kd = 2 * ((j * dst.c) + i) in
      BA.unsafe_set dst.d kd (BA.unsafe_get a.d ka);
      BA.unsafe_set dst.d (kd + 1) (-.BA.unsafe_get a.d (ka + 1))
    done
  done

let dagger a =
  let dst = create a.c a.r in
  dagger_into ~dst a;
  dst

let transpose a =
  let dst = create a.c a.r in
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      set dst j i (get a i j)
    done
  done;
  dst

let conj a =
  let dst = copy a in
  for k = 0 to (BA.dim a.d / 2) - 1 do
    BA.unsafe_set dst.d ((2 * k) + 1) (-.BA.unsafe_get dst.d ((2 * k) + 1))
  done;
  dst

let kron a b =
  let dst = create (a.r * b.r) (a.c * b.c) in
  for ia = 0 to a.r - 1 do
    for ja = 0 to a.c - 1 do
      let za = get a ia ja in
      if za.re <> 0.0 || za.im <> 0.0 then
        for ib = 0 to b.r - 1 do
          for jb = 0 to b.c - 1 do
            let zb = get b ib jb in
            set dst ((ia * b.r) + ib) ((ja * b.c) + jb) (Complex.mul za zb)
          done
        done
    done
  done;
  dst

let trace m =
  assert (m.r = m.c);
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to m.r - 1 do
    let k = 2 * ((i * m.c) + i) in
    re := !re +. BA.unsafe_get m.d k;
    im := !im +. BA.unsafe_get m.d (k + 1)
  done;
  { Complex.re = !re; im = !im }

let trace_of_product a b =
  assert (a.c = b.r && b.c = a.r);
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      let ka = 2 * ((i * a.c) + j) and kb = 2 * ((j * b.c) + i) in
      let are = BA.unsafe_get a.d ka and aim = BA.unsafe_get a.d (ka + 1) in
      let bre = BA.unsafe_get b.d kb and bim = BA.unsafe_get b.d (kb + 1) in
      re := !re +. ((are *. bre) -. (aim *. bim));
      im := !im +. ((are *. bim) +. (aim *. bre))
    done
  done;
  { Complex.re = !re; im = !im }

(* Allocation-free [trace_of_product]: results land in [dst.(0)]/[dst.(1)]
   (a float array stores doubles unboxed, so the hot GRAPE gradient loop
   allocates no Complex.t record per control/step).  Same accumulation
   order as [trace_of_product]. *)
let trace_of_product_into ~(dst : float array) a b =
  assert (a.c = b.r && b.c = a.r && Array.length dst >= 2);
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to a.r - 1 do
    for j = 0 to a.c - 1 do
      let ka = 2 * ((i * a.c) + j) and kb = 2 * ((j * b.c) + i) in
      let are = BA.unsafe_get a.d ka and aim = BA.unsafe_get a.d (ka + 1) in
      let bre = BA.unsafe_get b.d kb and bim = BA.unsafe_get b.d (kb + 1) in
      re := !re +. ((are *. bre) -. (aim *. bim));
      im := !im +. ((are *. bim) +. (aim *. bre))
    done
  done;
  dst.(0) <- !re;
  dst.(1) <- !im

let inner a b =
  assert (dims_equal a b);
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to (BA.dim a.d / 2) - 1 do
    let are = BA.unsafe_get a.d (2 * k) and aim = BA.unsafe_get a.d ((2 * k) + 1) in
    let bre = BA.unsafe_get b.d (2 * k) and bim = BA.unsafe_get b.d ((2 * k) + 1) in
    (* conj(a) * b *)
    re := !re +. ((are *. bre) +. (aim *. bim));
    im := !im +. ((are *. bim) -. (aim *. bre))
  done;
  { Complex.re = !re; im = !im }

let frobenius_norm m =
  let s = ref 0.0 in
  for k = 0 to BA.dim m.d - 1 do
    let x = BA.unsafe_get m.d k in
    s := !s +. (x *. x)
  done;
  sqrt !s

let one_norm m =
  let best = ref 0.0 in
  for j = 0 to m.c - 1 do
    let s = ref 0.0 in
    for i = 0 to m.r - 1 do
      let k = 2 * ((i * m.c) + j) in
      let re = BA.unsafe_get m.d k and im = BA.unsafe_get m.d (k + 1) in
      s := !s +. sqrt ((re *. re) +. (im *. im))
    done;
    if !s > !best then best := !s
  done;
  !best

let max_abs_diff a b =
  assert (dims_equal a b);
  let best = ref 0.0 in
  for k = 0 to (BA.dim a.d / 2) - 1 do
    let dre = BA.unsafe_get a.d (2 * k) -. BA.unsafe_get b.d (2 * k) in
    let dim = BA.unsafe_get a.d ((2 * k) + 1) -. BA.unsafe_get b.d ((2 * k) + 1) in
    let m = sqrt ((dre *. dre) +. (dim *. dim)) in
    if m > !best then best := m
  done;
  !best

let is_unitary ?(tol = 1e-9) m =
  m.r = m.c && max_abs_diff (mul (dagger m) m) (identity m.r) <= tol

let apply m v =
  assert (m.c = Cvec.dim v);
  let out = Cvec.create m.r in
  for i = 0 to m.r - 1 do
    let s = ref Complex.zero in
    for j = 0 to m.c - 1 do
      s := Complex.add !s (Complex.mul (get m i j) (Cvec.get v j))
    done;
    Cvec.set out i !s
  done;
  out

let random_hermitian rng n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i { Complex.re = Pqc_util.Rng.gaussian rng; im = 0.0 };
    for j = i + 1 to n - 1 do
      let z = { Complex.re = Pqc_util.Rng.gaussian rng; im = Pqc_util.Rng.gaussian rng } in
      set m i j z;
      set m j i (Complex.conj z)
    done
  done;
  m

let pp fmt m =
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      let z = get m i j in
      Format.fprintf fmt "%+.3f%+.3fi " z.re z.im
    done;
    Format.pp_print_newline fmt ()
  done
