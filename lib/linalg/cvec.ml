module BA = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) BA.t

type t = { n : int; d : buffer }
(* Interleaved like Cmat: component k's real part at d.{2k}, imaginary part
   at d.{2k+1}, stored unboxed in a flat float64 Bigarray. *)

let dim v = v.n

let create n =
  let d = BA.create Bigarray.Float64 Bigarray.C_layout (2 * n) in
  BA.fill d 0.0;
  { n; d }

let basis n k =
  assert (k >= 0 && k < n);
  let v = create n in
  BA.set v.d (2 * k) 1.0;
  v

let copy v =
  let d = BA.create Bigarray.Float64 Bigarray.C_layout (2 * v.n) in
  BA.blit v.d d;
  { v with d }

let get v k = { Complex.re = BA.get v.d (2 * k); im = BA.get v.d ((2 * k) + 1) }

let set v k (z : Complex.t) =
  BA.set v.d (2 * k) z.re;
  BA.set v.d ((2 * k) + 1) z.im

let of_array a =
  let v = create (Array.length a) in
  Array.iteri (fun k z -> set v k z) a;
  v

let to_array v = Array.init v.n (get v)

let dot a b =
  assert (a.n = b.n);
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to a.n - 1 do
    let are = BA.unsafe_get a.d (2 * k) and aim = BA.unsafe_get a.d ((2 * k) + 1) in
    let bre = BA.unsafe_get b.d (2 * k) and bim = BA.unsafe_get b.d ((2 * k) + 1) in
    re := !re +. ((are *. bre) +. (aim *. bim));
    im := !im +. ((are *. bim) -. (aim *. bre))
  done;
  { Complex.re = !re; im = !im }

let norm v = sqrt (dot v v).re

let scale (z : Complex.t) v =
  let out = create v.n in
  for k = 0 to v.n - 1 do
    set out k (Complex.mul z (get v k))
  done;
  out

let normalize v =
  let n = norm v in
  if n = 0.0 then invalid_arg "Cvec.normalize: zero vector";
  scale { Complex.re = 1.0 /. n; im = 0.0 } v

let add a b =
  assert (a.n = b.n);
  let out = create a.n in
  for k = 0 to BA.dim a.d - 1 do
    BA.unsafe_set out.d k (BA.unsafe_get a.d k +. BA.unsafe_get b.d k)
  done;
  out

let max_abs_diff a b =
  assert (a.n = b.n);
  let best = ref 0.0 in
  for k = 0 to a.n - 1 do
    let m = Complex.norm (Complex.sub (get a k) (get b k)) in
    if m > !best then best := m
  done;
  !best

let probability v k =
  let re = BA.get v.d (2 * k) and im = BA.get v.d ((2 * k) + 1) in
  (re *. re) +. (im *. im)

let unsafe_data v = v.d

let blit ~src ~dst =
  assert (src.n = dst.n);
  BA.blit src.d dst.d
