module Circuit = Pqc_quantum.Circuit
(** Subcircuit aggregation ("blocking") for optimal control.

    GRAPE's convergence time scales exponentially with circuit width, so
    circuits wider than 4 qubits must be partitioned into blocks of
    manageable width before pulse optimization (Section 5.2, following the
    aggregation methodology of Shi et al. [44]).  The greedy scheme here
    keeps one open block per qubit and extends it while the union of operand
    sets stays within the width budget; block creation order is a valid
    linearization of the block dependency DAG (an instruction can only ever
    join the block that currently owns all its operands, so no block depends
    on a later one). *)

type block = {
  qubits : int list;  (** Sorted original qubit indices the block touches. *)
  circuit : Circuit.t;  (** Block contents over the original register. *)
}

val partition : max_width:int -> Circuit.t -> block list
(** Blocks in a dependency-respecting order; concatenating them (in order)
    reproduces a circuit equivalent to the input (property-tested). *)

val partition_with_indices :
  max_width:int -> Circuit.t -> (block * int list) list
(** Like {!partition}, but each block carries the original instruction
    indices of its contents (in emission order) — used by the static
    analyzer to report block findings with source spans. *)

val extract : block -> Circuit.t
(** The block as a standalone circuit over [List.length qubits] qubits,
    operands renamed by rank — the form handed to GRAPE. *)

val depends : block -> (int option, int list) result
(** The single variational parameter the block depends on: [Ok None] for
    fixed blocks, [Ok (Some v)] for single-parameter blocks, and
    [Error vs] listing every parameter when the block depends on several —
    the caller decides whether that is a slicing bug (flexible partial
    compilation requires single-parameter dependence) or expected. *)

val concat_all : n:int -> block list -> Circuit.t
(** Re-assemble blocks into one circuit over the original [n]-qubit
    register (for round-trip testing). *)
