module Circuit = Pqc_quantum.Circuit

type block = { qubits : int list; circuit : Circuit.t }

type open_block = {
  id : int;
  mutable qset : int list; (* sorted *)
  mutable rev_instrs : Circuit.instr list;
  mutable rev_indices : int list; (* original instruction indices *)
}

let sorted_union a b =
  List.sort_uniq compare (List.rev_append a b)

(* Merge adjacent blocks in the emitted linear order while the union stays
   within the width budget.  Sound because the blocks are adjacent in a
   valid linearization: fusing consecutive elements preserves the relative
   order of everything else (this is the aggregation step that lets a
   4-qubit circuit collapse into a single GRAPE block no matter how its
   gates interleave). *)
let merge_adjacent ~max_width blocks =
  let fuse (a, ai) (b, bi) =
    ( { qubits = sorted_union a.qubits b.qubits;
        circuit = Pqc_quantum.Circuit.concat a.circuit b.circuit },
      ai @ bi )
  in
  let shares_qubit (a, _) (b, _) =
    List.exists (fun q -> List.mem q b.qubits) a.qubits
  in
  let rec pass acc = function
    | a :: b :: rest
      when shares_qubit a b
           && List.length (sorted_union (fst a).qubits (fst b).qubits)
              <= max_width ->
      (* Fuse only dependent neighbours: fusing disjoint blocks would
         serialize work the scheduler could otherwise overlap. *)
      pass acc (fuse a b :: rest)
    | a :: rest -> pass (a :: acc) rest
    | [] -> List.rev acc
  in
  let rec fixpoint blocks =
    let merged = pass [] blocks in
    if List.length merged = List.length blocks then merged else fixpoint merged
  in
  fixpoint blocks

let partition_with_indices ~max_width c =
  if max_width < 2 then invalid_arg "Block.partition: max_width must be >= 2";
  let n = Circuit.n_qubits c in
  let owner = Array.make n None in
  let blocks = ref [] (* reversed creation order *) in
  let next_id = ref 0 in
  let fresh qset instr idx =
    let b =
      { id = !next_id; qset; rev_instrs = [ instr ]; rev_indices = [ idx ] }
    in
    incr next_id;
    blocks := b :: !blocks;
    b
  in
  let index = ref (-1) in
  Circuit.iter
    (fun (instr : Circuit.instr) ->
      incr index;
      let idx = !index in
      let qs = List.sort compare (Array.to_list instr.qubits) in
      let owners =
        List.sort_uniq compare
          (List.filter_map (fun q -> Option.map (fun b -> b.id) owner.(q)) qs)
      in
      let extend b =
        b.qset <- sorted_union b.qset qs;
        b.rev_instrs <- instr :: b.rev_instrs;
        b.rev_indices <- idx :: b.rev_indices;
        List.iter (fun q -> owner.(q) <- Some b) qs
      in
      let target =
        match owners with
        | [] -> None
        | [ id ] ->
          let b =
            List.find (fun q -> owner.(q) <> None) qs |> fun q ->
            Option.get owner.(q)
          in
          assert (b.id = id);
          if List.length (sorted_union b.qset qs) <= max_width then Some b
          else None
        | _ :: _ :: _ -> None
      in
      match target with
      | Some b -> extend b
      | None ->
        let b = fresh qs instr idx in
        List.iter (fun q -> owner.(q) <- Some b) qs)
    c;
  List.rev_map
    (fun b ->
      ( { qubits = b.qset;
          circuit = Circuit.of_instrs n (List.rev b.rev_instrs) },
        List.rev b.rev_indices ))
    !blocks
  |> merge_adjacent ~max_width

let partition_with_indices ~max_width c =
  Pqc_obs.Obs.Span.with_ ~name:"block.partition"
    ~attrs:
      [ ("max_width", string_of_int max_width);
        ("gates", string_of_int (Circuit.length c)) ]
    (fun () -> partition_with_indices ~max_width c)

let partition ~max_width c =
  List.map fst (partition_with_indices ~max_width c)

let extract b =
  let rank =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i q -> Hashtbl.replace tbl q i) b.qubits;
    fun q -> Hashtbl.find tbl q
  in
  Circuit.relabel b.circuit ~n:(List.length b.qubits) ~mapping:rank

let depends b =
  match Circuit.depends b.circuit with
  | [] -> Ok None
  | [ v ] -> Ok (Some v)
  | _ :: _ :: _ as vs -> Error vs

let concat_all ~n blocks =
  let builder = Circuit.Builder.create n in
  List.iter (fun b -> Circuit.Builder.add_circuit builder b.circuit) blocks;
  Circuit.Builder.to_circuit builder
