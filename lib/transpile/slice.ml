module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit

type slice = { var : int option; circuit : Circuit.t }

let close n rev_instrs var acc =
  match rev_instrs with
  | [] -> acc
  | _ :: _ -> { var; circuit = Circuit.of_instrs n (List.rev rev_instrs) } :: acc

let strict_linear c =
  let n = Circuit.n_qubits c in
  let acc = ref [] and fixed_run = ref [] in
  Circuit.iter
    (fun (i : Circuit.instr) ->
      match Gate.depends_on i.gate with
      | None -> fixed_run := i :: !fixed_run
      | Some v ->
        acc := close n !fixed_run None !acc;
        fixed_run := [];
        acc := { var = Some v; circuit = Circuit.of_instrs n [ i ] } :: !acc)
    c;
  acc := close n !fixed_run None !acc;
  List.rev !acc

let strict_linear c =
  Pqc_obs.Obs.Span.with_ ~name:"slice.strict_linear"
    ~attrs:[ ("gates", string_of_int (Circuit.length c)) ]
    (fun () -> strict_linear c)

(* The paper's Figure 3b semantics: a parametrized gate seals only its own
   qubit's timeline, so Fixed subcircuits are two-dimensional regions of the
   circuit DAG, maximal under the rule that a fixed gate extends the open
   region owning its qubits.  Regions are emitted in creation order, which
   is a valid linearization by the same monotone-ownership argument as
   {!Block.partition} (per-qubit gate order is preserved, so the
   concatenation is circuit-equivalent — property-tested). *)
type region_owner = Unowned | Open_region of int | Sealed

let strict c =
  let n = Circuit.n_qubits c in
  let owner = Array.make n Unowned in
  let regions = Hashtbl.create 16 in
  (* Output slots, reversed; fixed regions are filled as they grow. *)
  let out = ref [] in
  let next_id = ref 0 in
  let fresh_region instr =
    let id = !next_id in
    incr next_id;
    Hashtbl.replace regions id (ref [ instr ]);
    out := `Region id :: !out;
    id
  in
  Circuit.iter
    (fun (i : Circuit.instr) ->
      match Gate.depends_on i.gate with
      | Some _ ->
        out := `Theta i :: !out;
        Array.iter (fun q -> owner.(q) <- Sealed) i.qubits
      | None ->
        let owners =
          Array.to_list i.qubits
          |> List.map (fun q -> owner.(q))
          |> List.sort_uniq compare
        in
        let id =
          match owners with
          | [ Open_region id ] | [ Unowned; Open_region id ] ->
            let r = Hashtbl.find regions id in
            r := i :: !r;
            id
          | [ Unowned ] | [] | [ Sealed ] | [ Unowned; Sealed ] | _ :: _ :: _ ->
            fresh_region i
        in
        Array.iter (fun q -> owner.(q) <- Open_region id) i.qubits)
    c;
  List.rev !out
  |> List.map (fun slot ->
         match slot with
         | `Theta (i : Circuit.instr) ->
           { var = Gate.depends_on i.gate; circuit = Circuit.of_instrs n [ i ] }
         | `Region id ->
           let r = Hashtbl.find regions id in
           { var = None; circuit = Circuit.of_instrs n (List.rev !r) })

let strict c =
  Pqc_obs.Obs.Span.with_ ~name:"slice.strict"
    ~attrs:[ ("gates", string_of_int (Circuit.length c)) ]
    (fun () -> strict c)

let is_monotone c =
  let seen = Hashtbl.create 8 in
  let current = ref None in
  let ok = ref true in
  Circuit.iter
    (fun (i : Circuit.instr) ->
      match Gate.depends_on i.gate with
      | None -> ()
      | Some v ->
        if !current <> Some v then begin
          if Hashtbl.mem seen v then ok := false;
          Hashtbl.replace seen v ();
          current := Some v
        end)
    c;
  !ok

let flexible c =
  if not (is_monotone c) then
    invalid_arg "Slice.flexible: circuit is not parameter-monotone";
  let n = Circuit.n_qubits c in
  let acc = ref [] and run = ref [] and cur = ref None in
  Circuit.iter
    (fun (i : Circuit.instr) ->
      match Gate.depends_on i.gate with
      | None -> run := i :: !run
      | Some v ->
        (match !cur with
        | None -> cur := Some v
        | Some w when w = v -> ()
        | Some _ ->
          acc := close n !run !cur !acc;
          run := [];
          cur := Some v);
        run := i :: !run)
    c;
  acc := close n !run !cur !acc;
  List.rev !acc

let flexible c =
  Pqc_obs.Obs.Span.with_ ~name:"slice.flexible"
    ~attrs:[ ("gates", string_of_int (Circuit.length c)) ]
    (fun () -> flexible c)

let concat_all ~n slices =
  let b = Circuit.Builder.create n in
  List.iter (fun s -> Circuit.Builder.add_circuit b s.circuit) slices;
  Circuit.Builder.to_circuit b

let fixed_gate_fraction c =
  let total = Circuit.length c in
  if total = 0 then 1.0
  else
    float_of_int (total - Circuit.parametrized_gate_count c) /. float_of_int total
