module Cmat = Pqc_linalg.Cmat
module Grape = Pqc_grape.Grape
module Hamiltonian = Pqc_grape.Hamiltonian
(** Hyperparameter optimization for GRAPE (Section 7.2).

    Flexible partial compilation precomputes, for each single-parameter
    subcircuit, an (ADAM learning rate, decay) pair that makes GRAPE
    converge in as few iterations as possible.  Because there is no closed
    form relating hyperparameters to convergence, the search is
    derivative-free: a coarse logarithmic grid refined around the best
    cell, scored by iterations-to-target-fidelity (failures score as the
    iteration cap plus an infidelity tie-breaker).

    The paper's key empirical observation (Figure 4) — that the
    best-performing learning-rate region is {e robust to the concrete
    angle} bound to the subcircuit's parameter — is what makes offline
    tuning sound: {!robustness} measures it directly. *)

type objective = {
  system : Hamiltonian.t;
  target_of : float -> Cmat.t;
      (** Target unitary as a function of the slice's single angle. *)
  total_time : float;  (** Pulse duration to optimize at. *)
  settings : Grape.settings;  (** Base settings; hyperparams overridden. *)
}

type score = {
  hyperparams : Grape.hyperparams;
  iterations : float;  (** Mean iterations-to-convergence over probe angles. *)
  converged_all : bool;
  mean_fidelity : float;
}

val evaluate :
  ?deadline:float -> objective -> angles:float array -> Grape.hyperparams ->
  score
(** Run GRAPE at each probe angle with the given hyperparameters.
    [deadline] (absolute wall-clock) is threaded into each GRAPE run. *)

val grid_search :
  ?workers:int -> ?lr_grid:float array -> ?decay_grid:float array ->
  ?angles:float array -> ?deadline:float -> objective -> score
(** Exhaustive search over the hyperparameter grid (defaults: 6 logarithmic
    learning rates in [0.03, 3], decays {0.995, 0.999, 1.0}; probe angles
    {0.5, 2.0}).  Returns the best score: fewest mean iterations among
    fully-converged cells, falling back to highest mean fidelity.

    With a [deadline] (absolute wall-clock), at least one candidate is
    always scored; the rest of the grid is skipped once the deadline
    expires, so a bounded search still returns usable hyperparameters.

    [workers] (default 1, deliberately {e not} [PQC_WORKERS]: this runs
    inside pool workers during flexible-partial precompute, and nested
    forking should be explicit) scores grid cells on forked
    {!Pqc_parallel.Pool} workers when > 1.  The winner is identical to
    the sequential search, except that an expired deadline skips no cell
    — each GRAPE run is still individually deadline-bounded. *)

type robustness_point = {
  angle : float;
  error_by_lr : (float * float) list;  (** (learning rate, final infidelity). *)
}

val robustness :
  ?lr_grid:float array -> objective -> angles:float array -> robustness_point list
(** The Figure 4 experiment: GRAPE error as a function of learning rate,
    repeated for several bindings of the slice's angle.  Robustness means
    the minimizing learning-rate region coincides across angles. *)

val best_lr_stability : robustness_point list -> float
(** Ratio in [0, 1]: fraction of probe angles whose per-angle best learning
    rate lies within one grid step of the overall winner (1.0 = perfectly
    robust, the paper's claim). *)
