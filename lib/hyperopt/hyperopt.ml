module Cmat = Pqc_linalg.Cmat
module Stats = Pqc_util.Stats
module Grape = Pqc_grape.Grape
module Hamiltonian = Pqc_grape.Hamiltonian

type objective = {
  system : Hamiltonian.t;
  target_of : float -> Cmat.t;
  total_time : float;
  settings : Grape.settings;
}

type score = {
  hyperparams : Grape.hyperparams;
  iterations : float;
  converged_all : bool;
  mean_fidelity : float;
}

let evaluate ?deadline obj ~angles hyperparams =
  let settings = { obj.settings with Grape.hyperparams } in
  let runs =
    Array.map
      (fun angle ->
        Grape.optimize ~settings ?deadline obj.system
          ~target:(obj.target_of angle) ~total_time:obj.total_time)
      angles
  in
  let iters =
    Array.map (fun (r : Grape.result) -> float_of_int r.iterations) runs
  in
  let fids = Array.map (fun (r : Grape.result) -> r.fidelity) runs in
  { hyperparams;
    iterations = Stats.mean iters;
    converged_all = Array.for_all (fun (r : Grape.result) -> r.converged) runs;
    mean_fidelity = Stats.mean fids }

let default_lr_grid = Stats.logspace (-1.5) 0.5 6
let default_decay_grid = [| 0.995; 0.999; 1.0 |]
let default_angles = [| 0.5; 2.0 |]

(* Fewest iterations among fully converged candidates; otherwise the highest
   mean fidelity (every candidate timed out, pick the least-bad). *)
let better a b =
  match a.converged_all, b.converged_all with
  | true, false -> a
  | false, true -> b
  | true, true -> if a.iterations <= b.iterations then a else b
  | false, false -> if a.mean_fidelity >= b.mean_fidelity then a else b

(* Grid cells ship back from workers as one checksum-free but strictly
   parsed line; a cell that fails to round-trip is simply re-evaluated
   in the parent by the pool's recovery path. *)
let encode_score s =
  Printf.sprintf "%h\t%h\t%h\t%B\t%h" s.hyperparams.Grape.learning_rate
    s.hyperparams.Grape.decay s.iterations s.converged_all s.mean_fidelity

let decode_score line =
  match
    Scanf.sscanf line "%h\t%h\t%h\t%B\t%h"
      (fun learning_rate decay iterations converged_all mean_fidelity ->
        { hyperparams = { Grape.learning_rate; decay }; iterations;
          converged_all; mean_fidelity })
  with
  | s -> Some s
  | exception _ -> None

let grid_search ?(workers = 1) ?(lr_grid = default_lr_grid)
    ?(decay_grid = default_decay_grid) ?(angles = default_angles) ?deadline
    obj =
  let expired () =
    match deadline with Some d -> Pqc_obs.Obs.Clock.now () > d | None -> false
  in
  if workers <= 1 then begin
    let best = ref None in
    Array.iter
      (fun learning_rate ->
        Array.iter
          (fun decay ->
            (* Always score at least one candidate so callers get a usable
               hyperparameter set even with an already-expired deadline; the
               remaining grid is skipped once the budget runs out. *)
            if !best = None || not (expired ()) then begin
              let s = evaluate ?deadline obj ~angles { Grape.learning_rate; decay } in
              best :=
                Some (match !best with None -> s | Some b -> better s b)
            end)
          decay_grid)
      lr_grid;
    Option.get !best
  end
  else begin
    (* Parallel mode scores the whole grid (each GRAPE run still honours
       [deadline] individually) and folds [better] in grid order, so the
       winner ties break exactly as they do sequentially. *)
    let cells =
      Array.to_list lr_grid
      |> List.concat_map (fun learning_rate ->
             Array.to_list decay_grid
             |> List.map (fun decay -> { Grape.learning_rate; decay }))
    in
    let scores, _stats =
      Pqc_parallel.Pool.map ~workers ~encode:encode_score ~decode:decode_score
        (fun hp -> evaluate ?deadline obj ~angles hp)
        cells
    in
    match List.map fst scores with
    | [] -> invalid_arg "Hyperopt.grid_search: empty hyperparameter grid"
    | s :: rest ->
      (* The sequential loop calls [better candidate incumbent], letting a
         later cell win exact ties; keep that argument order here. *)
      List.fold_left (fun acc s -> better s acc) s rest
  end

type robustness_point = {
  angle : float;
  error_by_lr : (float * float) list;
}

let robustness ?(lr_grid = default_lr_grid) obj ~angles =
  Array.to_list angles
  |> List.map (fun angle ->
         let error_by_lr =
           Array.to_list lr_grid
           |> List.map (fun lr ->
                  let settings =
                    { obj.settings with
                      Grape.hyperparams =
                        { Grape.learning_rate = lr;
                          decay = obj.settings.Grape.hyperparams.Grape.decay } }
                  in
                  let r =
                    Grape.optimize ~settings obj.system
                      ~target:(obj.target_of angle) ~total_time:obj.total_time
                  in
                  (lr, 1.0 -. r.fidelity))
           |> List.sort compare
         in
         { angle; error_by_lr })

let best_lr_stability points =
  match points with
  | [] -> 1.0
  | _ :: _ ->
    let best_lr p =
      let errors = Array.of_list (List.map snd p.error_by_lr) in
      fst (List.nth p.error_by_lr (Stats.argmin errors))
    in
    let lrs = List.map best_lr points in
    (* Overall winner: the learning rate minimizing total error. *)
    let overall =
      let totals = Hashtbl.create 8 in
      List.iter
        (fun p ->
          List.iter
            (fun (lr, e) ->
              (* A diverged run reports a NaN error; NaN totals sort first
                 under polymorphic compare and would crown the diverged
                 learning rate.  Treat divergence as infinitely bad. *)
              let e = if Float.is_nan e then Float.infinity else e in
              Hashtbl.replace totals lr
                (e +. Option.value ~default:0.0 (Hashtbl.find_opt totals lr)))
            p.error_by_lr)
        points;
      let pairs = Hashtbl.fold (fun lr e acc -> (lr, e) :: acc) totals [] in
      fst (List.hd (List.sort (fun (_, a) (_, b) -> compare a b) pairs))
    in
    (* "Within one grid step" on a log grid: ratio at most one grid spacing. *)
    let sorted_grid =
      List.sort_uniq compare
        (List.concat_map (fun p -> List.map fst p.error_by_lr) points)
    in
    let step_ratio =
      match sorted_grid with
      | a :: b :: _ -> (b /. a) *. 1.01
      | [ _ ] | [] -> 1.01
    in
    let close lr =
      let r = if lr > overall then lr /. overall else overall /. lr in
      r <= step_ratio
    in
    let good = List.length (List.filter close lrs) in
    float_of_int good /. float_of_int (List.length lrs)
